module parlap

go 1.22
