package parlap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parlap/internal/apps"
	"parlap/internal/decomp"
	"parlap/internal/gen"
	"parlap/internal/lowstretch"
	"parlap/internal/matrix"
	"parlap/internal/solver"
)

// TestPipelineDecompToTreeToSolver exercises the full stack the way the
// paper composes it: Section 4's decomposition drives Section 5's tree
// construction, which feeds Section 6's sparsifier and solver.
func TestPipelineDecompToTreeToSolver(t *testing.T) {
	g := gen.WithExponentialWeights(gen.Torus2D(24, 24), 8, 4, 1)
	// Stage 1: decomposition invariants.
	rng := rand.New(rand.NewSource(2))
	res := decomp.SplitGraph(g, 12, decomp.PracticalParams(), rng, nil)
	for _, r := range decomp.StrongRadius(g, res) {
		if r > 12 {
			t.Fatalf("stage 1: radius %d > 12", r)
		}
	}
	// Stage 2: low-stretch subgraph over the length view.
	lengths := make([]Edge, g.M())
	for i, e := range g.Edges {
		lengths[i] = Edge{U: e.U, V: e.V, W: 1 / e.W}
	}
	lg := NewGraph(g.N, lengths)
	sub, _ := lowstretch.LSSubgraph(lg, lowstretch.PracticalParams(), rng, nil)
	st := lowstretch.SubgraphStretchSampled(lg, sub.EdgeIDs(), 200, rng)
	if math.IsInf(st.Max, 1) {
		t.Fatal("stage 2: subgraph does not span")
	}
	// Stage 3: solve on the conductance graph.
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N)
	r2 := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = r2.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	x, stats := s.Solve(b, 1e-8)
	if !stats.Converged {
		t.Fatalf("stage 3: solver did not converge (%v)", stats.Residual)
	}
	if res := s.Residual(x, b); res > 1e-6 {
		t.Fatalf("stage 3: residual %v", res)
	}
}

// TestSolverPropertyRandomGraphs drives the full solver over random
// connected weighted graphs: the returned solution must always satisfy the
// residual contract.
func TestSolverPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + int(seed%101+101)%101
		g := gen.WithUniformWeights(gen.GNP(n, 0.05, seed), 0.1, 10, seed+1)
		s, err := solver.New(g, solver.DefaultChainParams(), nil)
		if err != nil {
			return false
		}
		b := make([]float64, g.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		matrix.ProjectOutConstant(b)
		x, _ := s.Solve(b, 1e-7)
		return s.Residual(x, b) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSolverAgainstDenseOnWeightedGraphs cross-validates the chain solver
// against the dense pseudo-inverse on small random weighted graphs.
func TestSolverAgainstDenseOnWeightedGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.WithUniformWeights(gen.GNP(50, 0.1, seed), 0.5, 5, seed+1)
		lap := matrix.LaplacianOf(g)
		comp, k := g.ConnectedComponents()
		lf, err := matrix.NewLaplacianFactor(lap, comp, k)
		if err != nil {
			return false
		}
		s, err := solver.New(g, solver.DefaultChainParams(), nil)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 2))
		b := make([]float64, g.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		matrix.ProjectOutConstantMasked(b, comp, k)
		want := lf.Solve(b)
		got, _ := s.Solve(b, 1e-10)
		matrix.ProjectOutConstantMasked(got, comp, k)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxFlowNeverExceedsExact is the safety direction of the [CKM+10]
// approximation across random instances: the electrical-flow answer is
// always feasible, hence ≤ the exact max-flow value.
func TestMaxFlowNeverExceedsExact(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.WithUniformWeights(gen.GNP(30, 0.2, seed), 1, 5, seed+1)
		s, tt := 0, g.N-1
		exact := apps.MaxFlowExact(g, s, tt)
		res, err := apps.ApproxMaxFlow(g, s, tt, 0.15, 10)
		if err != nil {
			return false
		}
		if res.Value > exact+1e-6 {
			return false
		}
		return apps.MaxCongestion(g, res.Flow) <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestEffectiveResistanceTriangleInequality: effective resistance is a
// metric, so R(u,w) ≤ R(u,v) + R(v,w) must hold for solver-computed values.
func TestEffectiveResistanceTriangleInequality(t *testing.T) {
	g := gen.GNP(80, 0.1, 9)
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		u, v, w := rng.Intn(g.N), rng.Intn(g.N), rng.Intn(g.N)
		if u == v || v == w || u == w {
			continue
		}
		ruv := apps.EffectiveResistance(s, g.N, u, v, 1e-10)
		rvw := apps.EffectiveResistance(s, g.N, v, w, 1e-10)
		ruw := apps.EffectiveResistance(s, g.N, u, w, 1e-10)
		if ruw > ruv+rvw+1e-8 {
			t.Fatalf("triangle inequality violated: R(%d,%d)=%v > %v + %v",
				u, w, ruw, ruv, rvw)
		}
	}
}

// TestStretchSolverConnection validates the identity the solver's sampling
// relies on: for tree edges, stretch 1 and effective resistance equals the
// tree-path resistance.
func TestStretchSolverConnection(t *testing.T) {
	g := gen.WithUniformWeights(gen.Grid2D(8, 8), 1, 3, 11)
	// Length view tree.
	lengths := make([]Edge, g.M())
	for i, e := range g.Edges {
		lengths[i] = Edge{U: e.U, V: e.V, W: 1 / e.W}
	}
	lg := NewGraph(g.N, lengths)
	tree := lg.MSTKruskal()
	ti := lowstretch.NewTreeIndex(lg, tree)
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rayleigh monotonicity: R_eff in g ≤ tree-path resistance.
	for _, id := range tree[:10] {
		e := g.Edges[id]
		reff := apps.EffectiveResistance(s, g.N, e.U, e.V, 1e-10)
		pathR := ti.Dist(e.U, e.V)
		if reff > pathR+1e-8 {
			t.Fatalf("edge %d: R_eff %v exceeds tree path resistance %v", id, reff, pathR)
		}
	}
}
