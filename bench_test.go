// Top-level benchmarks: one per experiment in EXPERIMENTS.md (E1–E10).
// The paper (SPAA 2011) has no empirical tables; each bench regenerates the
// measurable claim of the corresponding theorem/lemma. Run with
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline quantity (cut
// fraction, average stretch, iterations, ...) so `-bench` output doubles as
// the experiment record.
package parlap

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"parlap/internal/apps"
	"parlap/internal/decomp"
	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/lowstretch"
	"parlap/internal/matrix"
	"parlap/internal/solver"
	"parlap/internal/wd"
)

func benchRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	return b
}

// BenchmarkE1Decomposition measures Partition on a 128×128 grid with ρ=32
// and reports the maximum strong radius (Theorem 4.1(2): must stay ≤ ρ).
func BenchmarkE1Decomposition(b *testing.B) {
	g := gen.Grid2D(128, 128)
	rng := rand.New(rand.NewSource(1))
	maxR := 0
	for i := 0; i < b.N; i++ {
		res := decomp.SplitGraph(g, 32, decomp.PracticalParams(), rng, nil)
		radii := decomp.StrongRadius(g, res)
		for _, r := range radii {
			if r > maxR {
				maxR = r
			}
		}
	}
	b.ReportMetric(float64(maxR), "maxRadius")
}

// BenchmarkE2CutFraction reports ρ·cutFraction for ρ = 32 on a torus
// (Theorem 4.1(3): cut fraction ∝ 1/ρ makes this roughly constant in ρ).
func BenchmarkE2CutFraction(b *testing.B) {
	g := gen.Torus2D(96, 96)
	rng := rand.New(rand.NewSource(2))
	rho := 32
	frac := 0.0
	for i := 0; i < b.N; i++ {
		res := decomp.SplitGraph(g, rho, decomp.PracticalParams(), rng, nil)
		frac = float64(decomp.CountCut(g, res.Comp, nil, 1).Total) / float64(g.M())
	}
	b.ReportMetric(frac*float64(rho), "rho*cutFrac")
}

// BenchmarkE3Overlap reports the maximum per-vertex ball coverage
// (Lemma 4.4 bounds it by O(log²n)).
func BenchmarkE3Overlap(b *testing.B) {
	g := gen.Grid2D(64, 64)
	p := decomp.PracticalParams()
	p.CountCoverage = true
	rng := rand.New(rand.NewSource(3))
	maxC := 0
	for i := 0; i < b.N; i++ {
		res := decomp.SplitGraph(g, 32, p, rng, nil)
		for _, c := range res.Coverage {
			if int(c) > maxC {
				maxC = int(c)
			}
		}
	}
	b.ReportMetric(float64(maxC), "maxCoverage")
}

// BenchmarkE4AKPWStretch builds the AKPW tree of a weighted grid and
// reports the average stretch (Theorem 5.1's headline quantity).
func BenchmarkE4AKPWStretch(b *testing.B) {
	g := gen.WithExponentialWeights(gen.Grid2D(64, 64), 32, 4, 4)
	rng := rand.New(rand.NewSource(4))
	avg := 0.0
	for i := 0; i < b.N; i++ {
		tree, _ := lowstretch.AKPW(g, lowstretch.PracticalParams(), rng, nil)
		_, st := lowstretch.TreeStretch(g, tree)
		avg = st.Average
	}
	b.ReportMetric(avg, "avgStretch")
}

// BenchmarkE5Subgraph builds the Theorem 5.9 ultra-sparse subgraph and
// reports extra edges beyond the spanning tree.
func BenchmarkE5Subgraph(b *testing.B) {
	g := gen.WithExponentialWeights(gen.Torus2D(64, 64), 16, 6, 5)
	extra := 0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(5))
		p := lowstretch.ParamsForBeta(g.N, 4, 2, false)
		sub, _ := lowstretch.LSSubgraph(g, p, rng, nil)
		extra = len(sub.EdgeIDs()) - (g.N - 1)
	}
	b.ReportMetric(float64(extra), "extraEdges")
}

// BenchmarkE6WellSpaced runs the Lemma 5.7 transform and reports the
// removed-edge fraction (bounded by θ = 0.25).
func BenchmarkE6WellSpaced(b *testing.B) {
	g := gen.WithExponentialWeights(gen.GNP(20000, 3e-4, 6), 4, 48, 6)
	removed := 0
	for i := 0; i < b.N; i++ {
		ws := lowstretch.WellSpace(g, 4, 2, 0.25)
		removed = len(ws.Removed)
	}
	b.ReportMetric(float64(removed)/float64(g.M()), "removedFrac")
}

// BenchmarkE7Elimination eliminates a tree-plus-64-edges graph and reports
// rounds (Lemma 6.5: O(log n)).
func BenchmarkE7Elimination(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 14
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: rng.Intn(i), V: i, W: 1})
	}
	for i := 0; i < 64; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, W: 1})
		}
	}
	g := NewGraph(n, edges)
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el := solver.GreedyElimination(g, rng, nil)
		rounds = el.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE8Sparsify runs IncrementalSparsify at κ=100 and reports the
// shrink factor m/|E(H)| (Lemma 6.1's size bound).
func BenchmarkE8Sparsify(b *testing.B) {
	g := gen.Torus2D(96, 96)
	shrink := 0.0
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(8))
		res := solver.IncrementalSparsify(g, solver.DefaultSparsifyParams(), rng, nil)
		shrink = float64(g.M()) / float64(res.H.M())
	}
	b.ReportMetric(shrink, "shrink")
}

// BenchmarkE9Solver solves a 128×128 grid Laplacian to 1e-8 and reports
// PCG iterations (Theorem 1.1: iterations scale with log(1/ε), work near-
// linearly in m).
func BenchmarkE9Solver(b *testing.B) {
	g := gen.Grid2D(128, 128)
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N, 9)
	iters := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := s.Solve(rhs, 1e-8)
		iters = st.Iterations
	}
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkE9SolverIllConditioned is the baseline-contrast case: the chain
// solver on an exponential-weight grid where CG needs >10⁴ iterations.
func BenchmarkE9SolverIllConditioned(b *testing.B) {
	g := gen.WithExponentialWeights(gen.Grid2D(64, 64), 8, 8, 9)
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N, 10)
	iters := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := s.Solve(rhs, 1e-8)
		iters = st.Iterations
	}
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkE9BaselineCG is the same ill-conditioned system under plain CG,
// for the who-wins comparison.
func BenchmarkE9BaselineCG(b *testing.B) {
	g := gen.WithExponentialWeights(gen.Grid2D(64, 64), 8, 8, 9)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	rhs := benchRHS(g.N, 10)
	iters := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := solver.CG(lap, rhs, comp, k, 1e-8, 60000, nil)
		iters = st.Iterations
	}
	b.ReportMetric(float64(iters), "iters")
}

// BenchmarkE9ChainBuild isolates preconditioner-chain construction cost.
func BenchmarkE9ChainBuild(b *testing.B) {
	g := gen.Grid2D(128, 128)
	for i := 0; i < b.N; i++ {
		if _, err := solver.BuildChain(g, solver.DefaultChainParams(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Speedup runs the same solve under the current GOMAXPROCS;
// compare runs with -cpu 1,2,4,8 for the parallel speedup row.
func BenchmarkE9Speedup(b *testing.B) {
	g := gen.Grid2D(128, 128)
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		b.Fatal(err)
	}
	rhs := benchRHS(g.N, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Solve(rhs, 1e-6)
	}
}

// scalingWorkerSet is the worker grid for the Workers-knob scaling
// benchmarks: 1 (sequential reference), 2, 4 and the machine's GOMAXPROCS,
// deduplicated and sorted ascending.
func scalingWorkerSet() []int {
	set := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range set {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// scalingGraphs returns the three topologies of the scaling suite: a mesh
// (bounded degree, long diameter), a random-regular expander (low diameter,
// uniform degree) and a preferential-attachment graph (heavy-tailed hubs,
// where chunked load-balance is stressed). Under -short (the CI benchmark
// smoke) the instances shrink so one pass stays in CI budget.
func scalingGraphs() []struct {
	name string
	g    *graph.Graph
} {
	if testing.Short() {
		return []struct {
			name string
			g    *graph.Graph
		}{
			{"grid-96x96", gen.Grid2D(96, 96)},
			{"regular-4000x8", gen.RandomRegular(4000, 8, 21)},
			{"pa-4000x4", gen.PreferentialAttachment(4000, 4, 22)},
		}
	}
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"grid-256x256", gen.Grid2D(256, 256)},
		{"regular-20000x8", gen.RandomRegular(20000, 8, 21)},
		{"pa-20000x4", gen.PreferentialAttachment(20000, 4, 22)},
	}
}

// BenchmarkScalingSolve measures a full Solve at 1/2/4/GOMAXPROCS workers
// on each scaling topology. The chain is built (with the same worker count)
// outside the timed region; compare workers-1 vs workers-4 for the
// parallel-speedup headline. Results are bitwise identical across the
// worker axis, so every variant does the same arithmetic.
func BenchmarkScalingSolve(b *testing.B) {
	for _, tc := range scalingGraphs() {
		rhs := benchRHS(tc.g.N, 31)
		for _, w := range scalingWorkerSet() {
			b.Run(fmt.Sprintf("%s/workers-%d", tc.name, w), func(b *testing.B) {
				s, err := solver.NewWithOptions(tc.g, solver.DefaultChainParams(),
					solver.Options{Workers: w}, nil)
				if err != nil {
					b.Fatal(err)
				}
				iters := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st := s.Solve(rhs, 1e-6)
					iters = st.Iterations
				}
				b.ReportMetric(float64(iters), "iters")
			})
		}
	}
}

// BenchmarkScalingChainBuild isolates preconditioner-chain construction
// (CSR builds, elimination sweeps, calibration) across the worker axis.
func BenchmarkScalingChainBuild(b *testing.B) {
	g := gen.Grid2D(256, 256)
	if testing.Short() {
		g = gen.Grid2D(96, 96)
	}
	for _, w := range scalingWorkerSet() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.BuildChainOpts(g, solver.DefaultChainParams(),
					solver.Options{Workers: w}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingCSRBuild measures the parallel triplet→CSR construction
// (parallel merge sort + pack + scan) across the worker axis.
func BenchmarkScalingCSRBuild(b *testing.B) {
	g := gen.Grid2D(256, 256)
	m := g.M()
	rows := make([]int, 0, 4*m)
	cols := make([]int, 0, 4*m)
	vals := make([]float64, 0, 4*m)
	for _, e := range g.Edges {
		rows = append(rows, e.U, e.V, e.U, e.V)
		cols = append(cols, e.V, e.U, e.U, e.V)
		vals = append(vals, -e.W, -e.W, e.W, e.W)
	}
	for _, w := range scalingWorkerSet() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.NewSparseFromTripletsW(w, g.N, rows, cols, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingKernels measures the per-iteration vector kernels (the
// innermost hot path of Chebyshev/PCG) across the worker axis.
func BenchmarkScalingKernels(b *testing.B) {
	n := 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%1024) * 0.001
		y[i] = float64(i%512) * 0.002
	}
	for _, w := range scalingWorkerSet() {
		b.Run(fmt.Sprintf("dot/workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = matrix.DotW(w, x, y)
			}
		})
		b.Run(fmt.Sprintf("axpy/workers-%d", w), func(b *testing.B) {
			dst := make([]float64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.AxpyIntoW(w, dst, 1.0001, x, y)
			}
		})
	}
}

// BenchmarkE10Sparsifier builds a Spielman–Srivastava sparsifier with
// q = 8n samples and reports the probe distortion.
func BenchmarkE10Sparsifier(b *testing.B) {
	g := gen.GNP(600, 0.02, 12)
	dist := 0.0
	for i := 0; i < b.N; i++ {
		h, err := apps.SpectralSparsifier(g, 8*g.N, 0, 12)
		if err != nil {
			b.Fatal(err)
		}
		dist = apps.QuadFormDistortion(g, h, 20, 13)
	}
	b.ReportMetric(dist, "distortion")
}

// BenchmarkE10MaxFlow runs the electrical-flow approximate max-flow and
// reports the achieved fraction of the exact (Dinic) optimum.
func BenchmarkE10MaxFlow(b *testing.B) {
	g := gen.WithUniformWeights(gen.Grid2D(10, 10), 1, 4, 13)
	s, t := 0, g.N-1
	exact := apps.MaxFlowExact(g, s, t)
	ratio := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := apps.ApproxMaxFlow(g, s, t, 0.1, 20)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Value / exact
	}
	b.ReportMetric(ratio, "vsExact")
}

// BenchmarkAblationTreeVsSubgraph contrasts preconditioning with a
// low-stretch *subgraph* (the paper's contribution) against the same chain
// using only the spanning-tree part of Ĝ — the design choice Section 6
// motivates (Lemma 6.2's "subgraph suffices" observation).
func BenchmarkAblationTreeVsSubgraph(b *testing.B) {
	g := gen.WithExponentialWeights(gen.Grid2D(48, 48), 8, 6, 14)
	rhs := benchRHS(g.N, 15)
	run := func(b *testing.B, beta float64, lambda int) {
		p := solver.DefaultChainParams()
		p.Sparsify.Beta = beta
		p.Sparsify.Lambda = lambda
		s, err := solver.New(g, p, nil)
		if err != nil {
			b.Fatal(err)
		}
		iters := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st := s.Solve(rhs, 1e-8)
			iters = st.Iterations
		}
		b.ReportMetric(float64(iters), "iters")
	}
	b.Run("subgraph-beta4", func(b *testing.B) { run(b, 4, 2) })
	b.Run("tree-like-beta64", func(b *testing.B) { run(b, 64, 4) })
}

// BenchmarkWDAccounting verifies the analytic work/depth layer is cheap:
// the same decomposition with and without a recorder.
func BenchmarkWDAccounting(b *testing.B) {
	g := gen.Grid2D(96, 96)
	rng := rand.New(rand.NewSource(16))
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			decomp.SplitGraph(g, 32, decomp.PracticalParams(), rng, nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		var rec wd.Recorder
		for i := 0; i < b.N; i++ {
			decomp.SplitGraph(g, 32, decomp.PracticalParams(), rng, &rec)
		}
	})
}
