package parlap

import (
	"math"
	"math/rand"
	"testing"

	"parlap/internal/matrix"
)

func TestPublicAPISolve(t *testing.T) {
	g := Grid2D(20, 20)
	s, err := NewSolver(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, stats := s.Solve(b, 1e-8)
	if !stats.Converged {
		t.Fatalf("not converged: %+v", stats)
	}
	if res := s.Residual(x, b); res > 1e-6 {
		t.Fatalf("residual %v", res)
	}
}

func TestPublicAPISDD(t *testing.T) {
	g := GNP(200, 0.05, 2)
	lap := Laplacian(g)
	s, err := NewSDDSolver(lap)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	x, _ := s.Solve(b, 1e-9)
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}

func TestPublicAPIWorkersKnob(t *testing.T) {
	g := Grid2D(24, 24)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	var xs [][]float64
	for _, w := range []int{1, 0, 4} {
		s, err := NewSolverWithOptions(g, DefaultOptions(), Options{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		x, stats := s.Solve(b, 1e-8)
		if !stats.Converged {
			t.Fatalf("workers=%d: not converged: %+v", w, stats)
		}
		xs = append(xs, x)
	}
	for i := range xs[0] {
		if xs[0][i] != xs[1][i] || xs[0][i] != xs[2][i] {
			t.Fatalf("solutions diverge across Workers settings at %d", i)
		}
	}
}

func TestPublicAPIPartition(t *testing.T) {
	g := Grid2D(32, 32)
	d := Partition(g, 16, 3)
	if d.NumComp < 1 {
		t.Fatal("no components")
	}
	seen := make([]bool, d.NumComp)
	for _, c := range d.Comp {
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("component %d empty", c)
		}
	}
}

func TestPublicAPILowStretch(t *testing.T) {
	g := Grid2D(24, 24)
	tree := LowStretchTree(g, 4)
	if len(tree) != g.N-1 {
		t.Fatalf("tree has %d edges, want %d", len(tree), g.N-1)
	}
	avg := AverageStretch(g, tree)
	if avg < 1 || avg > 100 {
		t.Fatalf("implausible average stretch %v", avg)
	}
	sub := LowStretchSubgraph(g, 4, 5)
	if len(sub) < g.N-1 {
		t.Fatalf("subgraph too small: %d", len(sub))
	}
}

func TestPublicAPINewSparse(t *testing.T) {
	a, err := NewSparse(2, []int{0, 1, 0, 1}, []int{0, 1, 1, 0}, []float64{2, 2, -1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsSDD(1e-12) {
		t.Fatal("expected SDD")
	}
}

func TestPublicAPIRecorder(t *testing.T) {
	g := Grid2D(16, 16)
	var rec Recorder
	s, err := NewSolverWith(g, DefaultOptions(), &rec)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N)
	b[0], b[g.N-1] = 1, -1
	matrix.ProjectOutConstant(b)
	_, _ = s.Solve(b, 1e-6)
	if rec.Work() == 0 || rec.Depth() == 0 {
		t.Fatalf("recorder empty: %s", rec.String())
	}
}

func TestPublicAPIGraphBuilders(t *testing.T) {
	g := NewGraph(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}})
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("NewGraph wrong: n=%d m=%d", g.N, g.M())
	}
	if g3 := Grid3D(2, 2, 2); g3.N != 8 {
		t.Fatalf("Grid3D n=%d", g3.N)
	}
}
