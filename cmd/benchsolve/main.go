// Command benchsolve runs the solve-path benchmark matrix and emits a
// machine-readable BENCH_solve.json: chain-build time, single-solve latency
// and iteration count, and batched per-RHS latency, per topology. CI runs it
// on every push so the bench trajectory of the solve path is recorded next
// to the test results; compare files across commits to see the trend.
//
//	go run ./cmd/benchsolve -out BENCH_solve.json          # testbed + grid2d:128x128
//	go run ./cmd/benchsolve -quick -out BENCH_solve.json   # same specs, CI-sized reps
//	go run ./cmd/benchsolve -full -out BENCH_solve.json    # adds grid2d:256x256 (slow)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"parlap/internal/gen"
	"parlap/internal/matrix"
	"parlap/internal/solver"
)

var (
	outPath   = flag.String("out", "BENCH_solve.json", "output file")
	quick     = flag.Bool("quick", false, "CI-sized repetitions")
	full      = flag.Bool("full", false, "also run grid2d:256x256 (minutes on one core)")
	eps       = flag.Float64("eps", 1e-6, "relative residual target")
	batchK    = flag.Int("batch", 8, "batch width for the batched-solve row")
	seed      = flag.Int64("seed", 1, "graph + RHS seed")
	workers   = flag.Int("workers", 0, "solver worker count (0 = GOMAXPROCS); iteration counts are identical for every value")
	precision = flag.String("precision", "f64", "chain value storage: f64 or f32 (per-level quality gate)")
	reorder   = flag.Bool("reorder", false, "build chains with the cache-aware Cuthill-McKee level layout")
)

// result is one topology's row.
type result struct {
	Topology     string  `json:"topology"`
	N            int     `json:"n"`
	M            int     `json:"m"`
	ChainBuildMS float64 `json:"chain_build_ms"`
	Levels       int     `json:"levels"`
	EdgeCounts   []int   `json:"edge_counts"`
	SolveMS      float64 `json:"solve_ms_median"`
	Iterations   int     `json:"iterations"`
	Residual     float64 `json:"residual"`
	BatchWidth   int     `json:"batch_width"`
	BatchPerRHS  float64 `json:"batch_ms_per_rhs"`
	BatchSpeedup float64 `json:"batch_per_rhs_speedup"`
	// Batch is the per-RHS batch sweep: one row per batch width k, each
	// solving the same k right-hand sides batched and individually, so the
	// per-RHS speedup trajectory of the block engine is recorded per commit
	// (CI extracts it into the BENCH_batch artifact).
	Batch []batchRow `json:"batch"`
	// Schedule is the calibrated per-level κ schedule (measured spectral
	// bounds, measured condition numbers, Chebyshev iteration counts) — the
	// quantities the ROADMAP's numerical-scaling item tracks.
	Schedule []solver.LevelSchedule `json:"schedule"`
}

// batchRow is one batch width's measurement: k right-hand sides solved in
// one block batch vs the same k solved one at a time.
type batchRow struct {
	K        int     `json:"k"`
	PerRHSMS float64 `json:"ms_per_rhs"`
	Speedup  float64 `json:"per_rhs_speedup"`
}

type doc struct {
	GeneratedUnix int64 `json:"generated_unix"`
	// Provenance stamp: which build of the code, toolchain, and machine
	// produced these numbers — what makes cross-commit comparison of bench
	// artifacts (CI's perf-regression gate) trustworthy.
	GitSHA     string   `json:"git_sha,omitempty"`
	GoVersion  string   `json:"go_version"`
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Eps        float64  `json:"eps"`
	Quick      bool     `json:"quick"`
	Precision  string   `json:"precision"`
	Reorder    bool     `json:"reorder,omitempty"`
	Results    []result `json:"results"`
}

// gitSHA resolves the commit being benchmarked: CI's $GITHUB_SHA when set,
// otherwise git itself; empty (omitted from the JSON) outside a checkout.
func gitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func meanFreeRHS(n int, rng *rand.Rand) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	return b
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func main() {
	flag.Parse()
	// The first three specs are the convergence-regression testbed: the
	// solver test suite pins their outer PCG iteration counts (see
	// internal/solver convergence tests), and this command records the same
	// counts in BENCH_solve.json so the κ-schedule trajectory is tracked in
	// CI rather than one-off notes. Keep the two lists in sync.
	// grid2d:128x128 runs on EVERY invocation (including CI's -quick) so the
	// iteration-vs-n trajectory the ROADMAP worries about is recorded per
	// commit; -full adds grid2d:256x256 for the long trajectory.
	specs := []string{"grid2d:64x64", "regular:4000:8", "pa:4000:4", "grid2d:128x128"}
	reps := 5
	if *quick {
		reps = 3
	}
	if *full {
		specs = append(specs, "grid2d:256x256")
	}
	prec, err := solver.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsolve:", err)
		os.Exit(1)
	}
	out := doc{
		GeneratedUnix: time.Now().Unix(),
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Eps:           *eps,
		Quick:         *quick,
		Precision:     prec.String(),
		Reorder:       *reorder,
	}
	for _, spec := range specs {
		g, err := gen.FromSpec(spec, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsolve: %s: %v\n", spec, err)
			os.Exit(1)
		}
		params := solver.DefaultChainParams()
		params.Precision = prec
		params.ReorderLevels = *reorder
		t0 := time.Now()
		s, err := solver.NewWithOptions(g, params, solver.Options{Workers: *workers}, nil)
		buildMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsolve: %s: chain build: %v\n", spec, err)
			os.Exit(1)
		}
		rng := rand.New(rand.NewSource(*seed + 7))
		b := meanFreeRHS(g.N, rng)
		var solveTimes []float64
		var st solver.SolveStats
		var x []float64
		for r := 0; r < reps; r++ {
			t0 = time.Now()
			x, st = s.Solve(b, *eps)
			solveTimes = append(solveTimes, float64(time.Since(t0).Microseconds())/1000)
		}
		res := s.Residual(x, b)
		// Batched vs single on the SAME right-hand-side set per width, so
		// each speedup isolates the chain-pass sharing (per-RHS convergence
		// variance cancels: each column costs identical iterations either
		// way). The sweep widths cover the streaming window sizes the block
		// engine targets; the legacy batch_* fields report the -batch width.
		ks := []int{1, 4, 8, 16}
		if *batchK != 1 && *batchK != 4 && *batchK != 8 && *batchK != 16 {
			ks = append(ks, *batchK)
		}
		var sweep []batchRow
		batchMS, singlesMS := 0.0, 0.0
		for _, k := range ks {
			bs := make([][]float64, k)
			for c := range bs {
				bs[c] = meanFreeRHS(g.N, rng)
			}
			t0 = time.Now()
			for _, bc := range bs {
				_, _ = s.Solve(bc, *eps)
			}
			sMS := float64(time.Since(t0).Microseconds()) / 1000
			t0 = time.Now()
			_, _ = s.SolveBatch(bs, *eps)
			bMS := float64(time.Since(t0).Microseconds()) / 1000
			br := batchRow{K: k, PerRHSMS: bMS / float64(k)}
			if bMS > 0 {
				br.Speedup = sMS / bMS
			}
			sweep = append(sweep, br)
			if k == *batchK {
				batchMS, singlesMS = bMS, sMS
			}
		}
		row := result{
			Topology:     spec,
			N:            g.N,
			M:            g.M(),
			ChainBuildMS: buildMS,
			Levels:       s.Chain.Depth(),
			EdgeCounts:   s.Chain.EdgeCounts(),
			SolveMS:      median(solveTimes),
			Iterations:   st.Iterations,
			Residual:     res,
			BatchWidth:   *batchK,
			BatchPerRHS:  batchMS / float64(*batchK),
			Batch:        sweep,
			Schedule:     s.Chain.Schedule(),
		}
		if batchMS > 0 {
			row.BatchSpeedup = singlesMS / batchMS
		}
		out.Results = append(out.Results, row)
		fmt.Printf("%-18s n=%-6d m=%-6d build=%8.1fms solve=%8.1fms iters=%-5d residual=%.2e batch/RHS=%8.1fms (%.2fx)\n",
			spec, g.N, g.M(), buildMS, row.SolveMS, st.Iterations, res, row.BatchPerRHS, row.BatchSpeedup)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsolve:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchsolve:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsolve:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d topologies)\n", *outPath, len(out.Results))
}
