// Command sddsolve solves an SDD linear system A·x = b with the parlap
// preconditioner-chain solver.
//
// The matrix comes from a symmetric MatrixMarket file (-matrix), a weighted
// edge list interpreted as a graph Laplacian (-graph), or a built-in
// generator (-gen grid2d:ROWSxCOLS, grid3d:XxYxZ, gnp:N:P, torus:RxC).
// The right-hand side is read one number per line from -rhs, or generated
// (-b random|ends).
//
// Examples:
//
//	sddsolve -gen grid2d:200x200 -b random -eps 1e-8 -stats
//	sddsolve -matrix system.mtx -rhs b.txt -out x.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/graphio"
	"parlap/internal/matrix"
	"parlap/internal/solver"
	"parlap/internal/wd"
)

var (
	matrixPath = flag.String("matrix", "", "MatrixMarket file with an SDD matrix")
	graphPath  = flag.String("graph", "", "edge-list file (graph Laplacian)")
	genSpec    = flag.String("gen", "", "generator spec: grid2d:RxC | grid3d:XxYxZ | torus:RxC | gnp:N:P")
	rhsPath    = flag.String("rhs", "", "right-hand side file (one value per line)")
	bMode      = flag.String("b", "random", "generated rhs when -rhs is absent: random | ends")
	outPath    = flag.String("out", "", "write the solution here (default: stdout summary only)")
	eps        = flag.Float64("eps", 1e-8, "relative residual target")
	seed       = flag.Int64("seed", 1, "random seed")
	stats      = flag.Bool("stats", false, "print chain shape and work/depth accounting")
	chebyshev  = flag.Bool("chebyshev", false, "use the paper-faithful Chebyshev outer loop instead of PCG")
	workers    = flag.Int("workers", 0, "worker goroutines for parallel kernels (0 = GOMAXPROCS, 1 = sequential)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sddsolve:", err)
		os.Exit(1)
	}
}

func run() error {
	var rec wd.Recorder
	var lapSolver *solver.Solver
	var sddSolver *solver.SDDSolver
	var n int

	switch {
	case *matrixPath != "":
		f, err := os.Open(*matrixPath)
		if err != nil {
			return err
		}
		defer f.Close()
		a, err := graphio.ReadMatrixMarket(f)
		if err != nil {
			return err
		}
		n = a.N
		sddSolver, err = solver.NewSDDWithOptions(a, solver.DefaultChainParams(), solver.Options{Workers: *workers}, &rec)
		if err != nil {
			return err
		}
	case *graphPath != "" || *genSpec != "":
		g, err := loadGraph()
		if err != nil {
			return err
		}
		n = g.N
		lapSolver, err = solver.NewWithOptions(g, solver.DefaultChainParams(), solver.Options{Workers: *workers}, &rec)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -matrix, -graph, -gen is required")
	}

	b, err := loadRHS(n)
	if err != nil {
		return err
	}

	t0 := time.Now()
	var x []float64
	var st solver.SolveStats
	switch {
	case lapSolver != nil && *chebyshev:
		x, st = lapSolver.SolveChebyshev(b, *eps)
	case lapSolver != nil:
		x, st = lapSolver.Solve(b, *eps)
	default:
		x, st = sddSolver.Solve(b, *eps)
	}
	wall := time.Since(t0)

	fmt.Printf("n=%d  iterations=%d  converged=%v  residual=%.3g  wall=%v\n",
		n, st.Iterations, st.Converged, st.Residual, wall.Round(time.Millisecond))
	if *stats {
		fmt.Printf("analytic work=%d depth=%d\n", rec.Work(), rec.Depth())
		if lapSolver != nil {
			fmt.Printf("chain edge counts: %v (bottom n=%d)\n",
				lapSolver.Chain.EdgeCounts(), lapSolver.Chain.BottomG.N)
			for i, l := range lapSolver.Chain.Levels {
				fmt.Printf("  level %d: kappa=%g chebIts=%d spec=[%.3g, %.3g] sampled=%d\n",
					i+1, l.Kappa, l.ChebIts, l.EigLo, l.EigHi, l.Spars.Sampled)
			}
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for _, v := range x {
			fmt.Fprintf(w, "%.17g\n", v)
		}
		return w.Flush()
	}
	return nil
}

func loadGraph() (*graph.Graph, error) {
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graphio.ReadEdgeList(f)
	}
	return gen.FromSpec(*genSpec, *seed)
}

func loadRHS(n int) ([]float64, error) {
	if *rhsPath != "" {
		f, err := os.Open(*rhsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		var b []float64
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				return nil, fmt.Errorf("bad rhs value %q", line)
			}
			b = append(b, v)
		}
		if len(b) != n {
			return nil, fmt.Errorf("rhs has %d values for n=%d", len(b), n)
		}
		return b, sc.Err()
	}
	b := make([]float64, n)
	switch *bMode {
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		matrix.ProjectOutConstant(b)
	case "ends":
		b[0] = 1
		b[n-1] = -1
	default:
		return nil, fmt.Errorf("unknown -b mode %q", *bMode)
	}
	return b, nil
}
