// Command lowstretch builds a low-stretch spanning tree (AKPW, Theorem 5.1)
// or an ultra-sparse low-stretch subgraph (Theorem 5.9) of a graph and
// reports its stretch statistics.
//
// Examples:
//
//	lowstretch -gen grid2d:128x128 -mode tree
//	lowstretch -gen torus:64x64 -mode subgraph -beta 4 -lambda 2
//	lowstretch -graph edges.txt -mode tree -compare-mst
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/graphio"
	"parlap/internal/lowstretch"
	"parlap/internal/wd"
)

var (
	graphPath  = flag.String("graph", "", "edge-list file")
	genSpec    = flag.String("gen", "grid2d:64x64", "generator spec (see gen.FromSpec)")
	mode       = flag.String("mode", "tree", "tree (AKPW) | subgraph (LSSubgraph)")
	beta       = flag.Float64("beta", 4, "subgraph sparsity/stretch knob β")
	lambda     = flag.Int("lambda", 2, "subgraph live-class count λ")
	seed       = flag.Int64("seed", 1, "random seed")
	compareMST = flag.Bool("compare-mst", false, "also report the MST's stretch for contrast")
	samples    = flag.Int("samples", 500, "sampled edges for subgraph stretch estimation")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lowstretch:", err)
		os.Exit(1)
	}
}

func run() error {
	var g *graph.Graph
	var err error
	if *graphPath != "" {
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		g, err = graphio.ReadEdgeList(f)
	} else {
		g, err = gen.FromSpec(*genSpec, *seed)
	}
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d spread=%.3g\n", g.N, g.M(), g.WeightSpread())
	rng := rand.New(rand.NewSource(*seed))
	var rec wd.Recorder
	switch *mode {
	case "tree":
		tree, stats := lowstretch.AKPW(g, lowstretch.PracticalParams(), rng, &rec)
		_, st := lowstretch.TreeStretch(g, tree)
		fmt.Printf("AKPW tree: %d edges, %d iterations, %d patch edges\n",
			len(tree), stats.Iterations, stats.PatchEdges)
		fmt.Printf("stretch: avg=%.3f max=%.1f total=%.0f\n", st.Average, st.Max, st.Total)
		fmt.Printf("analytic work=%d depth=%d\n", rec.Work(), rec.Depth())
	case "subgraph":
		p := lowstretch.ParamsForBeta(g.N, *beta, *lambda, false)
		sub, stats := lowstretch.LSSubgraph(g, p, rng, &rec)
		ids := sub.EdgeIDs()
		st := lowstretch.SubgraphStretchSampled(g, ids, *samples, rng)
		fmt.Printf("LSSubgraph (beta=%g lambda=%d): %d edges = (n-1) + %d extra\n",
			*beta, *lambda, len(ids), len(ids)-(g.N-1))
		fmt.Printf("sampled stretch: avg=%.3f max=%.1f\n", st.Average, st.Max)
		fmt.Printf("iterations=%d analytic work=%d depth=%d\n",
			stats.Iterations, rec.Work(), rec.Depth())
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if *compareMST {
		mst := g.MSTKruskal()
		_, st := lowstretch.TreeStretch(g, mst)
		fmt.Printf("MST baseline stretch: avg=%.3f max=%.1f\n", st.Average, st.Max)
	}
	return nil
}
