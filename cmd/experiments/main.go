// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (the paper has no empirical tables of its own — each theorem/lemma's
// quantitative claim is validated here; see DESIGN.md §4 for the index).
//
// Usage:
//
//	go run ./cmd/experiments            # run all experiments
//	go run ./cmd/experiments -exp E2    # one experiment
//	go run ./cmd/experiments -quick     # smaller instances (CI-sized)
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"parlap/internal/apps"
	"parlap/internal/decomp"
	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/lowstretch"
	"parlap/internal/matrix"
	"parlap/internal/solver"
	"parlap/internal/wd"
)

var (
	expFlag   = flag.String("exp", "all", "experiment id (E1..E10) or 'all'")
	quickFlag = flag.Bool("quick", false, "smaller instances")
	seedFlag  = flag.Int64("seed", 1, "random seed")
)

func main() {
	flag.Parse()
	run := map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5,
		"E6": e6, "E7": e7, "E8": e8, "E9": e9, "E10": e10,
	}
	if *expFlag == "all" {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
			run[id]()
		}
		return
	}
	f, ok := run[strings.ToUpper(*expFlag)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	f()
}

func header(id, claim string) {
	fmt.Printf("\n== %s — %s ==\n", id, claim)
}

func scaled(full, quick int) int {
	if *quickFlag {
		return quick
	}
	return full
}

// E1 — Theorem 4.1(1,2): strong radius ≤ ρ, centers inside components.
func e1() {
	header("E1", "Thm 4.1(1,2): strong radius <= rho on every component")
	fmt.Printf("%-14s %6s %6s %10s %10s %10s\n", "graph", "rho", "comps", "maxRadius", "ok(r<=rho)", "ctrInside")
	side := scaled(128, 32)
	graphs := map[string]*graph.Graph{
		"grid2d":   gen.Grid2D(side, side),
		"gnp":      gen.GNP(side*side/2, 4.0/float64(side*side/2), *seedFlag),
		"rand-reg": gen.RandomRegular(side*side/2, 4, *seedFlag),
	}
	for _, name := range []string{"grid2d", "gnp", "rand-reg"} {
		g := graphs[name]
		for _, rho := range []int{8, 16, 32, 64} {
			rng := rand.New(rand.NewSource(*seedFlag))
			res := decomp.SplitGraph(g, rho, decomp.PracticalParams(), rng, nil)
			radii := decomp.StrongRadius(g, res)
			maxR := 0
			for _, r := range radii {
				if r > maxR {
					maxR = r
				}
			}
			centersOK := true
			for c, s := range res.Centers {
				if int(res.Comp[s]) != c {
					centersOK = false
				}
			}
			fmt.Printf("%-14s %6d %6d %10d %10v %10v\n",
				name, rho, res.NumComp, maxR, maxR <= rho, centersOK)
		}
	}
}

// E2 — Theorem 4.1(3): cut fraction decays like 1/ρ; multi-class balance.
func e2() {
	header("E2", "Thm 4.1(3): inter-component edge fraction ~ 1/rho")
	side := scaled(160, 48)
	g := gen.Torus2D(side, side)
	fmt.Printf("torus %dx%d (m=%d), practical constants, 3 reps/row\n", side, side, g.M())
	fmt.Printf("%6s %12s %14s\n", "rho", "cutFrac", "rho*cutFrac")
	rng := rand.New(rand.NewSource(*seedFlag))
	for _, rho := range []int{4, 8, 16, 32, 64, 128} {
		total := 0
		reps := 3
		for r := 0; r < reps; r++ {
			res := decomp.SplitGraph(g, rho, decomp.PracticalParams(), rng, nil)
			total += decomp.CountCut(g, res.Comp, nil, 1).Total
		}
		frac := float64(total) / float64(reps*g.M())
		fmt.Printf("%6d %12.4f %14.3f\n", rho, frac, float64(rho)*frac)
	}
	// Multi-class: k classes must each meet the validation threshold.
	k := 4
	class := make([]int, g.M())
	for i := range class {
		class[i] = i % k
	}
	pr, err := decomp.Partition(g, class, k, 32, decomp.PracticalParams(), rng, nil)
	status := "ok"
	if err != nil {
		status = err.Error()
	}
	fmt.Printf("multi-class k=%d rho=32: trials=%d perClassCut=%v validation=%s\n",
		k, pr.Trials, pr.Cut.PerClass, status)
}

// E3 — Lemma 4.4: per-vertex ball coverage is polylogarithmic.
func e3() {
	header("E3", "Lem 4.4: #covering (center,iter) pairs per vertex = O(log^2 n)")
	fmt.Printf("%-10s %8s %10s %10s %12s\n", "graph", "n", "maxCover", "avgCover", "log2(n)^2")
	for _, side := range []int{16, 32, 64, scaled(128, 64)} {
		g := gen.Grid2D(side, side)
		p := decomp.PracticalParams()
		p.CountCoverage = true
		rng := rand.New(rand.NewSource(*seedFlag))
		res := decomp.SplitGraph(g, 32, p, rng, nil)
		maxC, sum := 0, 0
		for _, c := range res.Coverage {
			if int(c) > maxC {
				maxC = int(c)
			}
			sum += int(c)
		}
		l := math.Log2(float64(g.N))
		fmt.Printf("grid-%-5d %8d %10d %10.2f %12.1f\n",
			side, g.N, maxC, float64(sum)/float64(g.N), l*l)
	}
}

// E4 — Theorem 5.1: AKPW average stretch grows slowly with n.
func e4() {
	header("E4", "Thm 5.1: AKPW spanning tree, average stretch vs n (sub-polynomial growth)")
	fmt.Printf("%-12s %8s %8s %10s %10s %8s\n", "graph", "n", "m", "avgStr", "maxStr", "iters")
	sides := []int{16, 32, 64}
	if !*quickFlag {
		sides = append(sides, 128)
	}
	for _, side := range sides {
		for _, weighted := range []bool{false, true} {
			g := gen.Grid2D(side, side)
			name := "grid"
			if weighted {
				g = gen.WithExponentialWeights(g, 32, 4, *seedFlag)
				name = "grid-wexp"
			}
			rng := rand.New(rand.NewSource(*seedFlag))
			tree, stats := lowstretch.AKPW(g, lowstretch.PracticalParams(), rng, nil)
			_, st := lowstretch.TreeStretch(g, tree)
			fmt.Printf("%-12s %8d %8d %10.2f %10.1f %8d\n",
				name+fmt.Sprint(side), g.N, g.M(), st.Average, st.Max, stats.Iterations)
		}
	}
}

// E5 — Theorem 5.9: LSSubgraph edges/stretch trade-off via β and λ.
func e5() {
	header("E5", "Thm 5.9: ultra-sparse subgraph, edge count vs stretch as beta/lambda vary")
	side := scaled(64, 32)
	g := gen.WithExponentialWeights(gen.Torus2D(side, side), 16, 6, *seedFlag)
	fmt.Printf("torus %dx%d wexp (n=%d m=%d)\n", side, side, g.N, g.M())
	fmt.Printf("%6s %7s %10s %12s %10s\n", "beta", "lambda", "extraEdges", "avgStretch", "maxStretch")
	rngSample := rand.New(rand.NewSource(*seedFlag + 7))
	for _, lambda := range []int{1, 2, 3} {
		for _, beta := range []float64{2, 4, 8, 16} {
			rng := rand.New(rand.NewSource(*seedFlag))
			p := lowstretch.ParamsForBeta(g.N, beta, lambda, false)
			sub, _ := lowstretch.LSSubgraph(g, p, rng, nil)
			ids := sub.EdgeIDs()
			st := lowstretch.SubgraphStretchSampled(g, ids, 400, rngSample)
			fmt.Printf("%6.0f %7d %10d %12.2f %10.1f\n",
				beta, lambda, len(ids)-(g.N-1), st.Average, st.Max)
		}
	}
}

// E6 — Lemma 5.7: well-spacing removes ≤ θ·m edges.
func e6() {
	header("E6", "Lem 5.7: well-spacing transform removes at most theta*m edges")
	n := scaled(20000, 3000)
	g := gen.WithExponentialWeights(gen.GNP(n, 6.0/float64(n), *seedFlag), 4, 48, *seedFlag)
	fmt.Printf("gnp n=%d m=%d with 48 weight classes (z=4)\n", g.N, g.M())
	fmt.Printf("%8s %6s %10s %10s %10s\n", "theta", "tau", "removed", "budget", "specials")
	for _, theta := range []float64{0.1, 0.25, 0.5} {
		for _, tau := range []int{2, 4} {
			ws := lowstretch.WellSpace(g, 4, tau, theta)
			fmt.Printf("%8.2f %6d %10d %10.0f %10d\n",
				theta, tau, len(ws.Removed), theta*float64(g.M()), len(ws.Special))
		}
	}
}

// E7 — Lemma 6.5: elimination size and round count.
func e7() {
	header("E7", "Lem 6.5: greedy elimination reaches the 2-core in O(log n) rounds")
	fmt.Printf("%-16s %8s %8s %9s %8s %10s\n", "graph", "n", "extra", "reduced", "rounds", "log2(n)")
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	if *quickFlag {
		sizes = []int{1 << 8, 1 << 10}
	}
	for _, n := range sizes {
		for _, extra := range []int{0, 16, 64} {
			rng := rand.New(rand.NewSource(*seedFlag))
			var edges []graph.Edge
			for i := 1; i < n; i++ {
				edges = append(edges, graph.Edge{U: rng.Intn(i), V: i, W: 1})
			}
			for i := 0; i < extra; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					edges = append(edges, graph.Edge{U: u, V: v, W: 1})
				}
			}
			g := graph.FromEdges(n, edges)
			el := solver.GreedyElimination(g, rng, nil)
			fmt.Printf("tree+%-11d %8d %8d %9d %8d %10.1f\n",
				extra, n, extra, el.Reduced.N, el.Rounds, math.Log2(float64(n)))
		}
	}
}

// E8 — Lemma 6.1: sparsifier edge counts and empirical condition quality.
func e8() {
	header("E8", "Lem 6.1: incremental sparsifier size |E(H)| and spectral sandwich")
	side := scaled(80, 32)
	g := gen.Torus2D(side, side)
	fmt.Printf("torus %dx%d (m=%d)\n", side, side, g.M())
	// maxRayleigh(G/H) probes xᵀGx/xᵀHx on random mean-zero vectors: values
	// ≤ 1 are consistent with G ⪯ H (the lower sandwich of Lemma 6.1); the
	// κ-scaled subgraph inside H drives the ratio toward 1/κ.
	fmt.Printf("%8s %10s %10s %12s %16s\n", "kappa", "m(H)", "sampled", "avgStretch", "maxRayleigh(G/H)")
	for _, kappa := range []float64{16, 64, 256, 1024} {
		rng := rand.New(rand.NewSource(*seedFlag))
		p := solver.DefaultSparsifyParams()
		p.Kappa = kappa
		res := solver.IncrementalSparsify(g, p, rng, nil)
		// Power iteration for λmax(H⁻¹G) via dense pseudo-inverse on small
		// instances is too slow; report the random-probe Rayleigh range.
		lg := matrix.LaplacianOf(g)
		lh := matrix.LaplacianOf(res.H)
		maxRatio := 0.0
		for t := 0; t < 30; t++ {
			x := make([]float64, g.N)
			rr := rand.New(rand.NewSource(int64(t)))
			for i := range x {
				x[i] = rr.NormFloat64()
			}
			matrix.ProjectOutConstant(x)
			r := lg.QuadForm(x) / lh.QuadForm(x)
			if r > maxRatio {
				maxRatio = r
			}
		}
		fmt.Printf("%8.0f %10d %10d %12.2f %16.3f\n",
			kappa, res.H.M(), res.Sampled, res.StretchS, maxRatio)
	}
}

// E9 — Theorem 1.1: solver scaling in m and 1/ε; baselines; speedup.
func e9() {
	header("E9", "Thm 1.1: near-linear work scaling, log(1/eps) dependence, baseline comparison")
	fmt.Printf("-- (a) scaling in m (unit 2D grids, eps=1e-8) --\n")
	fmt.Printf("%8s %8s %8s %10s %14s %14s %12s\n", "n", "m", "iters", "wallMs", "work", "work/m", "depth")
	sides := []int{32, 64, 128}
	if !*quickFlag {
		sides = append(sides, 256)
	}
	for _, side := range sides {
		g := gen.Grid2D(side, side)
		var rec wd.Recorder
		s, err := solver.New(g, solver.DefaultChainParams(), &rec)
		if err != nil {
			fmt.Println("  build error:", err)
			continue
		}
		b := randB(g.N, *seedFlag)
		rec.Reset()
		t0 := time.Now()
		_, st := s.Solve(b, 1e-8)
		ms := time.Since(t0).Milliseconds()
		fmt.Printf("%8d %8d %8d %10d %14d %14.1f %12d\n",
			g.N, g.M(), st.Iterations, ms, rec.Work(), float64(rec.Work())/float64(g.M()), rec.Depth())
	}
	fmt.Printf("-- (b) scaling in eps (grid %d^2) --\n", scaled(128, 64))
	side := scaled(128, 64)
	g := gen.Grid2D(side, side)
	s, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		fmt.Println("  build error:", err)
		return
	}
	b := randB(g.N, *seedFlag)
	fmt.Printf("%10s %8s %12s\n", "eps", "iters", "residual")
	for _, eps := range []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10} {
		_, st := s.Solve(b, eps)
		fmt.Printf("%10.0e %8d %12.2e\n", eps, st.Iterations, st.Residual)
	}
	fmt.Printf("-- (c) vs baselines on ill-conditioned graphs (eps=1e-8) --\n")
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid-expw(z8)", gen.WithExponentialWeights(gen.Grid2D(side, side), 8, 8, *seedFlag)},
		{"path-cliques", gen.PathOfCliques(6, scaled(600, 200))},
		{"torus-expw(z4)", gen.WithExponentialWeights(gen.Torus2D(side, side), 4, 12, *seedFlag)},
	}
	fmt.Printf("%-16s %10s %12s %12s %12s\n", "graph", "CG its", "Jacobi its", "chain its", "chainCheb")
	for _, cse := range cases {
		lap := matrix.LaplacianOf(cse.g)
		comp, k := cse.g.ConnectedComponents()
		bb := randB(cse.g.N, *seedFlag+1)
		_, cgSt := solver.CG(lap, bb, comp, k, 1e-8, 60000, nil)
		_, jSt := solver.JacobiPCG(lap, bb, comp, k, 1e-8, 60000, nil)
		sw, err := solver.New(cse.g, solver.DefaultChainParams(), nil)
		if err != nil {
			fmt.Printf("%-16s chain build error: %v\n", cse.name, err)
			continue
		}
		_, chSt := sw.Solve(bb, 1e-8)
		_, cbSt := sw.SolveChebyshev(bb, 1e-8)
		fmt.Printf("%-16s %10d %12d %12d %12d\n",
			cse.name, cgSt.Iterations, jSt.Iterations, chSt.Iterations, cbSt.Iterations)
	}
	fmt.Printf("-- (d) parallel wall-clock speedup (grid %d^2, one solve) --\n", side)
	orig := runtime.GOMAXPROCS(0)
	if orig == 1 {
		fmt.Println("   (single-core machine: wall-clock speedup not measurable here;")
		fmt.Println("    the analytic depth column in (a) is the machine-independent")
		fmt.Println("    parallelism signal — depth/work ratios stay far below 1)")
	}
	fmt.Printf("%8s %10s\n", "procs", "wallMs")
	seen := map[int]bool{}
	for _, p := range []int{1, 2, 4, orig} {
		if p > orig || seen[p] {
			continue
		}
		seen[p] = true
		runtime.GOMAXPROCS(p)
		t0 := time.Now()
		_, _ = s.Solve(b, 1e-8)
		fmt.Printf("%8d %10d\n", p, time.Since(t0).Milliseconds())
	}
	runtime.GOMAXPROCS(orig)
}

// E10 — applications: sparsifier quality, approximate max flow vs Dinic.
func e10() {
	header("E10", "Applications: [SS08] sparsifier and [CKM+10] approx max-flow vs exact")
	n := scaled(600, 200)
	g := gen.GNP(n, 12.0/float64(n), *seedFlag)
	fmt.Printf("-- (a) spectral sparsifier on gnp n=%d m=%d --\n", g.N, g.M())
	fmt.Printf("%8s %8s %12s\n", "q/n", "m_H", "distortion")
	for _, mult := range []int{4, 8, 16} {
		h, err := apps.SpectralSparsifier(g, mult*g.N, 0, *seedFlag)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Printf("%8d %8d %12.3f\n", mult, h.M(), apps.QuadFormDistortion(g, h, 25, *seedFlag))
	}
	fmt.Printf("-- (b) approximate max flow vs Dinic --\n")
	fmt.Printf("%-14s %10s %10s %8s %8s\n", "graph", "exact", "approx", "ratio", "solves")
	cases := map[string]*graph.Graph{
		"grid8x8":   gen.WithUniformWeights(gen.Grid2D(8, 8), 1, 4, *seedFlag),
		"barbell":   gen.Barbell(6, 4),
		"gnp-small": gen.GNP(60, 0.15, *seedFlag),
	}
	for _, name := range []string{"grid8x8", "barbell", "gnp-small"} {
		cg := cases[name]
		s, t := 0, cg.N-1
		exact := apps.MaxFlowExact(cg, s, t)
		res, err := apps.ApproxMaxFlow(cg, s, t, 0.1, 25)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Printf("%-14s %10.3f %10.3f %8.3f %8d\n",
			name, exact, res.Value, res.Value/exact, res.Solves)
	}
}

func randB(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	return b
}
