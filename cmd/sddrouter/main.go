// Command sddrouter is the cluster front door for a fleet of sddserver
// shards: a thin reverse proxy that assigns each graph to a node with a
// consistent-hash ring over the canonical graph id and fails over to the
// next live node on the ring when the owner is unreachable.
//
// Placement is computed from the request itself: POST /graphs bodies are
// hashed with the same canonical-id function the shards use, and
// /graphs/{id}/... routes shard by the id in the path — so a graph's
// registration, solves, streams, and stats all land on the same node, and
// every router instance agrees on which node that is without coordination.
//
// Failover expects the shards to share a snapshot store (sddserver's
// -chain-dir on shared storage, or -chain-s3-*): the replica that inherits
// a dead node's graph restores the chain from the store on first use and
// answers bit-identically. Idempotent requests — registrations, and solves
// whose bodies fit -retry-buffer-bytes — are retried on the failover node
// when the owner refuses connections; streaming solves are pinned to one
// node for the connection's lifetime.
//
// The router health-probes every node in the background (-probe-*), routes
// around nodes that fail their probes, and serves its own endpoints:
//
//	GET /healthz   router + per-node health
//	GET /metrics   per-node request/error/retry counters and ring state
//	GET /ring      node health; with ?key=<graph id>, that key's owner and
//	               failover order
//
// Example:
//
//	sddrouter -addr :8080 \
//	  -node shard-a=http://10.0.0.1:8080 -node shard-b=http://10.0.0.2:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parlap/internal/cluster"
	"parlap/internal/service"
)

// nodeList collects repeated -node flags.
type nodeList []cluster.Node

func (nl *nodeList) String() string {
	parts := make([]string, len(*nl))
	for i, n := range *nl {
		parts[i] = n.Name + "=" + n.URL
	}
	return strings.Join(parts, ",")
}

func (nl *nodeList) Set(s string) error {
	n, err := cluster.ParseNode(s)
	if err != nil {
		return err
	}
	*nl = append(*nl, n)
	return nil
}

var (
	addr          = flag.String("addr", ":8080", "listen address")
	vnodes        = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = 64)")
	probeInterval = flag.Duration("probe-interval", 5*time.Second, "health-probe interval for a healthy node")
	probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe request timeout")
	probeBackoff  = flag.Duration("probe-max-backoff", 30*time.Second, "probe-interval cap for a failing node (exponential backoff up to this)")
	probeJitter   = flag.Float64("probe-jitter", 0.2, "fractional jitter applied to every probe wait (negative = none)")
	retryBuffer   = flag.Int64("retry-buffer-bytes", 8<<20, "largest solve body buffered for replay on a failover node; larger bodies are forwarded one-shot")
	drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight proxied requests")
	logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of logfmt text")
)

func main() {
	var nodes nodeList
	flag.Var(&nodes, "node", "shard as name=url (repeatable; at least one required)")
	flag.Parse()
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "at least one -node name=url is required")
		os.Exit(1)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Nodes:       nodes,
		VNodes:      *vnodes,
		RegisterKey: service.RegisterKey,
		Probe: cluster.ProbeConfig{
			Interval:   *probeInterval,
			Timeout:    *probeTimeout,
			MaxBackoff: *probeBackoff,
			Jitter:     *probeJitter,
		},
		RetryBufferBytes: *retryBuffer,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer rt.Close()
	logger.Info("routing", "addr", *addr, "nodes", nodes.String())
	// Same timeout posture as the shards: no write timeout (proxied streams
	// stay open as long as the client feeds them), bounded header reads, and
	// an idle timeout so abandoned keep-alive connections do not accumulate.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		logger.Warn("drain_failed", "err", err)
	}
	logger.Info("shut_down_cleanly")
}
