// Command sddserver is the long-lived solver service: it keeps a bounded
// LRU cache of built preconditioner chains keyed by a canonical graph hash
// and serves single and batched solves over HTTP/JSON, so one expensive
// near-linear-work chain construction is amortized over arbitrarily many
// cheap right-hand-side solves — the paper's core economics, made into a
// server.
//
// API (see internal/service):
//
//	POST /graphs                    {"spec":"grid2d:64x64","seed":1} or {"edgelist":"0 1 1\n..."}
//	GET  /graphs                    cached graph ids, MRU first
//	POST /graphs/{id}/solve         {"b":[...]} or {"batch":[[...],[...]]}, optional "eps"
//	POST /graphs/{id}/solve/stream  ndjson: one JSON array per line in, one
//	                                {"row","x","iterations","converged","residual"}
//	                                line per solution out; ?eps= sets the target.
//	                                Arbitrarily large batches stream through
//	                                -stream-window-sized admitted solve windows.
//	GET  /graphs/{id}/stats         chain shape, build time, cache/solve counters,
//	                                per-stage solve timings
//	GET  /healthz                   service-wide health and cache statistics
//	GET  /metrics                   Prometheus text exposition: solve/stream/cache
//	                                counters, latency histograms end-to-end and per
//	                                stage, Go runtime stats
//
// Observability: every request gets an X-Request-ID echoed in error
// envelopes and structured logs (-log-json switches them to JSON lines);
// POST .../solve?debug=timings returns the request's stage trace; and
// -pprof-addr serves net/http/pprof on a separate listener.
//
// With -chain-dir (local directory) or -chain-s3-endpoint/-chain-s3-bucket
// (any S3-compatible object store, e.g. minio) the server persists built
// chains as content-addressed snapshots (internal/chainio) and restores
// them on boot, on cache miss, and on demand when a solve arrives for a
// graph another node built against the same store; SIGINT/SIGTERM drain
// in-flight requests and run a final snapshot pass before exit. In a
// multi-node deployment give each server a -node-id and front the fleet
// with cmd/sddrouter.
//
// Example:
//
//	sddserver -addr :8080 -max-graphs 32 -max-inflight 8 -chain-dir /var/lib/sddserver/chains
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parlap/internal/chainio"
	"parlap/internal/service"
	"parlap/internal/solver"
)

var (
	addr          = flag.String("addr", ":8080", "listen address")
	maxGraphs     = flag.Int("max-graphs", 16, "chain-cache capacity in entries (LRU eviction beyond it)")
	maxCacheBytes = flag.Int64("max-cache-bytes", 2<<30, "chain-cache capacity in estimated bytes (evicts alongside -max-graphs)")
	maxInflight   = flag.Int("max-inflight", 4, "concurrently executing solves; more requests queue")
	maxPerGraph   = flag.Int("max-inflight-per-graph", 0, "solve slots one graph may hold while others wait (0 = max-inflight/2)")
	workers       = flag.Int("workers", 0, "global worker budget split across solve slots (0 = GOMAXPROCS)")
	defaultEps    = flag.Float64("eps", 1e-8, "default relative residual target when a request omits eps")
	maxBatch      = flag.Int("max-batch", 64, "maximum right-hand sides per solve request")
	streamWindow  = flag.Int("stream-window", 0, "RHS rows per admitted window of a streaming solve (0 = max-batch)")
	maxRowBytes   = flag.Int("max-stream-row-bytes", 0, "byte cap for one ndjson RHS row (0 = 16 MiB)")
	maxBuilds     = flag.Int("max-builds", 2, "concurrently executing chain builds; more registrations queue")
	maxVerts      = flag.Int("max-vertices", 2_000_000, "reject graphs larger than this many vertices")
	maxEdges      = flag.Int("max-edges", 16_000_000, "reject graphs larger than this many edges")
	kappa         = flag.Float64("kappa", 0, "override the sparsifier's condition target κ (0 = default)")
	kappaGrowth   = flag.Float64("kappa-growth", 0, "override the per-level κ growth factor (0 = default 2)")
	maxLevels     = flag.Int("max-levels", 0, "override the chain length cap (0 = default 8)")
	chebSlack     = flag.Float64("cheb-slack", 0, "override the static κ·slack safety envelope on the Chebyshev lower bound (0 = default 1.5)")
	budgetLiftN   = flag.Int("budget-lift-n", 0, "top-level vertex count past which the Chebyshev work budget lifts to the full measured sqrt(kappa) schedule (0 = default 65536, negative = never lift)")
	chainPrec     = flag.String("chain-precision", "f64", "value storage for chain sparsifier levels: f64, or f32 (halves level bandwidth; a per-level quality gate falls back to f64 where measured kappa degrades)")
	chainReorder  = flag.Bool("chain-reorder", false, "relabel chain levels with a cache-aware Cuthill-McKee ordering at build time")
	chainDir      = flag.String("chain-dir", "", "directory for persisted chain snapshots; enables restore-on-boot/miss and snapshot-on-shutdown (empty = no persistence)")
	s3Endpoint    = flag.String("chain-s3-endpoint", "", "S3-compatible endpoint URL for chain snapshots (e.g. http://minio:9000); mutually exclusive with -chain-dir")
	s3Bucket      = flag.String("chain-s3-bucket", "", "S3 bucket holding chain snapshots (required with -chain-s3-endpoint)")
	s3Region      = flag.String("chain-s3-region", "", "S3 signing region (empty = us-east-1)")
	s3Prefix      = flag.String("chain-s3-prefix", "", "key prefix for snapshot objects in the bucket")
	s3AccessKey   = flag.String("chain-s3-access-key", "", "S3 access key id (empty = $AWS_ACCESS_KEY_ID)")
	s3SecretKey   = flag.String("chain-s3-secret-key", "", "S3 secret access key (empty = $AWS_SECRET_ACCESS_KEY)")
	snapOnBuild   = flag.Bool("snapshot-on-build", true, "with a snapshot store: also persist each chain right after it builds (write-behind), not only at shutdown")
	nodeID        = flag.String("node-id", "", "shard name reported in /healthz for multi-node deployments (empty = unnamed)")
	drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests and the shutdown snapshot pass")
	pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it off any public interface)")
	logJSON       = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of logfmt text")
)

func main() {
	flag.Parse()
	// Structured logging: one handler for the binary's own lifecycle events
	// and the service's per-request/build/snapshot logs alike, so a log
	// pipeline sees a single stream keyed by request_id.
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)
	// Chain-schedule knobs thread through service.Config so operators can
	// tune cached chains (κ schedule, depth, calibration envelope) without
	// rebuilding the binary; the calibrated result is visible per graph in
	// GET /graphs/{id}/stats under "schedule".
	chain := solver.DefaultChainParams()
	if *kappa > 0 {
		chain.Sparsify.Kappa = *kappa
	}
	if *kappaGrowth > 0 {
		chain.KappaGrowth = *kappaGrowth
	}
	if *maxLevels > 0 {
		chain.MaxLevels = *maxLevels
	}
	if *chebSlack > 0 {
		chain.ChebSlack = *chebSlack
	}
	if *budgetLiftN != 0 {
		chain.BudgetLiftVertices = *budgetLiftN
	}
	prec, err := solver.ParsePrecision(*chainPrec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	chain.Precision = prec
	chain.ReorderLevels = *chainReorder
	var store chainio.BlobStore
	storeDesc := ""
	switch {
	case *chainDir != "" && *s3Endpoint != "":
		fmt.Fprintln(os.Stderr, "set at most one of -chain-dir and -chain-s3-endpoint")
		os.Exit(1)
	case *chainDir != "":
		ds, err := chainio.NewDirStore(*chainDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store, storeDesc = ds, *chainDir
	case *s3Endpoint != "":
		ak, sk := *s3AccessKey, *s3SecretKey
		if ak == "" {
			ak = os.Getenv("AWS_ACCESS_KEY_ID")
		}
		if sk == "" {
			sk = os.Getenv("AWS_SECRET_ACCESS_KEY")
		}
		s3, err := chainio.NewS3Store(chainio.S3Config{
			Endpoint:  *s3Endpoint,
			Region:    *s3Region,
			Bucket:    *s3Bucket,
			Prefix:    *s3Prefix,
			AccessKey: ak,
			SecretKey: sk,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store, storeDesc = s3, *s3Endpoint+"/"+*s3Bucket
	}
	srv := service.New(service.Config{
		MaxGraphs:           *maxGraphs,
		MaxCacheBytes:       *maxCacheBytes,
		MaxInflight:         *maxInflight,
		MaxInflightPerGraph: *maxPerGraph,
		Workers:             *workers,
		DefaultEps:          *defaultEps,
		MaxBatch:            *maxBatch,
		StreamWindow:        *streamWindow,
		MaxStreamRowBytes:   *maxRowBytes,
		MaxConcurrentBuilds: *maxBuilds,
		MaxGraphVertices:    *maxVerts,
		MaxGraphEdges:       *maxEdges,
		Chain:               &chain,
		Snapshots:           store,
		SnapshotOnBuild:     *snapOnBuild,
		Logger:              logger,
		NodeID:              *nodeID,
	})
	if store != nil {
		// Warm start: load every persisted chain before accepting traffic,
		// so the first solve after a restart is a cache hit, not a rebuild.
		restored, err := srv.RestoreAll(context.Background())
		if err != nil {
			logger.Warn("snapshot_restore_failed", "err", err)
		}
		logger.Info("snapshot_restore", "restored", restored, "store", storeDesc)
	}
	if *pprofAddr != "" {
		// Profiling endpoints on their own listener (own mux, never the
		// default one), so /debug/pprof can stay bound to localhost while the
		// API listens publicly.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: *pprofAddr, Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof_listening", "addr", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof_server_failed", "err", err)
			}
		}()
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	logger.Info("listening",
		"addr", *addr,
		"max_graphs", *maxGraphs,
		"solve_slots", *maxInflight,
		"workers", w,
	)
	// No write timeout: streaming solves legitimately hold a response open
	// for as long as the client keeps sending rows. IdleTimeout is what
	// actually bounds idle keep-alive connections — without it every client
	// that forgets to close leaks a connection (and its buffers) forever.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections, drains
	// in-flight solves, then runs the shutdown snapshot pass — so a routine
	// redeploy never truncates a response mid-stream or loses a built chain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via the default handler
	logger.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		logger.Warn("drain_failed", "err", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("snapshot_pass_failed", "err", err)
	}
	logger.Info("shut_down_cleanly")
}
