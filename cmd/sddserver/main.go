// Command sddserver is the long-lived solver service: it keeps a bounded
// LRU cache of built preconditioner chains keyed by a canonical graph hash
// and serves single and batched solves over HTTP/JSON, so one expensive
// near-linear-work chain construction is amortized over arbitrarily many
// cheap right-hand-side solves — the paper's core economics, made into a
// server.
//
// API (see internal/service):
//
//	POST /graphs                    {"spec":"grid2d:64x64","seed":1} or {"edgelist":"0 1 1\n..."}
//	GET  /graphs                    cached graph ids, MRU first
//	POST /graphs/{id}/solve         {"b":[...]} or {"batch":[[...],[...]]}, optional "eps"
//	POST /graphs/{id}/solve/stream  ndjson: one JSON array per line in, one
//	                                {"row","x","iterations","converged","residual"}
//	                                line per solution out; ?eps= sets the target.
//	                                Arbitrarily large batches stream through
//	                                -stream-window-sized admitted solve windows.
//	GET  /graphs/{id}/stats         chain shape, build time, cache/solve counters
//	GET  /healthz                   service-wide health and cache statistics
//
// With -chain-dir the server persists built chains as content-addressed
// snapshots (internal/chainio) and restores them on boot and on cache miss,
// so a restart warm-starts instead of rebuilding; SIGINT/SIGTERM drain
// in-flight requests and run a final snapshot pass before exit.
//
// Example:
//
//	sddserver -addr :8080 -max-graphs 32 -max-inflight 8 -chain-dir /var/lib/sddserver/chains
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parlap/internal/chainio"
	"parlap/internal/service"
	"parlap/internal/solver"
)

var (
	addr          = flag.String("addr", ":8080", "listen address")
	maxGraphs     = flag.Int("max-graphs", 16, "chain-cache capacity in entries (LRU eviction beyond it)")
	maxCacheBytes = flag.Int64("max-cache-bytes", 2<<30, "chain-cache capacity in estimated bytes (evicts alongside -max-graphs)")
	maxInflight   = flag.Int("max-inflight", 4, "concurrently executing solves; more requests queue")
	maxPerGraph   = flag.Int("max-inflight-per-graph", 0, "solve slots one graph may hold while others wait (0 = max-inflight/2)")
	workers       = flag.Int("workers", 0, "global worker budget split across solve slots (0 = GOMAXPROCS)")
	defaultEps    = flag.Float64("eps", 1e-8, "default relative residual target when a request omits eps")
	maxBatch      = flag.Int("max-batch", 64, "maximum right-hand sides per solve request")
	streamWindow  = flag.Int("stream-window", 0, "RHS rows per admitted window of a streaming solve (0 = max-batch)")
	maxRowBytes   = flag.Int("max-stream-row-bytes", 0, "byte cap for one ndjson RHS row (0 = 16 MiB)")
	maxBuilds     = flag.Int("max-builds", 2, "concurrently executing chain builds; more registrations queue")
	maxVerts      = flag.Int("max-vertices", 2_000_000, "reject graphs larger than this many vertices")
	maxEdges      = flag.Int("max-edges", 16_000_000, "reject graphs larger than this many edges")
	kappa         = flag.Float64("kappa", 0, "override the sparsifier's condition target κ (0 = default)")
	kappaGrowth   = flag.Float64("kappa-growth", 0, "override the per-level κ growth factor (0 = default 2)")
	maxLevels     = flag.Int("max-levels", 0, "override the chain length cap (0 = default 8)")
	chebSlack     = flag.Float64("cheb-slack", 0, "override the static κ·slack safety envelope on the Chebyshev lower bound (0 = default 1.5)")
	chainDir      = flag.String("chain-dir", "", "directory for persisted chain snapshots; enables restore-on-boot/miss and snapshot-on-shutdown (empty = no persistence)")
	snapOnBuild   = flag.Bool("snapshot-on-build", true, "with -chain-dir: also persist each chain right after it builds (write-behind), not only at shutdown")
	drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests and the shutdown snapshot pass")
)

func main() {
	flag.Parse()
	// Chain-schedule knobs thread through service.Config so operators can
	// tune cached chains (κ schedule, depth, calibration envelope) without
	// rebuilding the binary; the calibrated result is visible per graph in
	// GET /graphs/{id}/stats under "schedule".
	chain := solver.DefaultChainParams()
	if *kappa > 0 {
		chain.Sparsify.Kappa = *kappa
	}
	if *kappaGrowth > 0 {
		chain.KappaGrowth = *kappaGrowth
	}
	if *maxLevels > 0 {
		chain.MaxLevels = *maxLevels
	}
	if *chebSlack > 0 {
		chain.ChebSlack = *chebSlack
	}
	var store chainio.BlobStore
	if *chainDir != "" {
		ds, err := chainio.NewDirStore(*chainDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		store = ds
	}
	srv := service.New(service.Config{
		MaxGraphs:           *maxGraphs,
		MaxCacheBytes:       *maxCacheBytes,
		MaxInflight:         *maxInflight,
		MaxInflightPerGraph: *maxPerGraph,
		Workers:             *workers,
		DefaultEps:          *defaultEps,
		MaxBatch:            *maxBatch,
		StreamWindow:        *streamWindow,
		MaxStreamRowBytes:   *maxRowBytes,
		MaxConcurrentBuilds: *maxBuilds,
		MaxGraphVertices:    *maxVerts,
		MaxGraphEdges:       *maxEdges,
		Chain:               &chain,
		Snapshots:           store,
		SnapshotOnBuild:     *snapOnBuild,
	})
	if store != nil {
		// Warm start: load every persisted chain before accepting traffic,
		// so the first solve after a restart is a cache hit, not a rebuild.
		restored, err := srv.RestoreAll(context.Background())
		if err != nil {
			log.Printf("sddserver: snapshot restore: %v", err)
		}
		log.Printf("sddserver: restored %d chain(s) from %s", restored, *chainDir)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	log.Printf("sddserver listening on %s (cache %d graphs, %d solve slots, %d workers)",
		*addr, *maxGraphs, *maxInflight, w)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections, drains
	// in-flight solves, then runs the shutdown snapshot pass — so a routine
	// redeploy never truncates a response mid-stream or loses a built chain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately via the default handler
	log.Printf("sddserver: draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("sddserver: drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sddserver: snapshot pass: %v", err)
	}
	log.Printf("sddserver: shut down cleanly")
}
