// Command decompose runs the Section 4 parallel low-diameter decomposition
// on a graph and reports component statistics (counts, radii, cut edges).
//
// Examples:
//
//	decompose -gen grid2d:128x128 -rho 32
//	decompose -graph edges.txt -rho 16 -paper
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"parlap/internal/decomp"
	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/graphio"
	"parlap/internal/wd"
)

var (
	graphPath = flag.String("graph", "", "edge-list file")
	genSpec   = flag.String("gen", "grid2d:64x64", "generator spec (see gen.FromSpec)")
	rho       = flag.Int("rho", 32, "radius parameter ρ")
	paper     = flag.Bool("paper", false, "use the paper's exact constants instead of the practical preset")
	seed      = flag.Int64("seed", 1, "random seed")
	verbose   = flag.Bool("v", false, "print per-component rows")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "decompose:", err)
		os.Exit(1)
	}
}

func run() error {
	var g *graph.Graph
	var err error
	if *graphPath != "" {
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		g, err = graphio.ReadEdgeList(f)
	} else {
		g, err = gen.FromSpec(*genSpec, *seed)
	}
	if err != nil {
		return err
	}
	p := decomp.PracticalParams()
	if *paper {
		p = decomp.PaperParams()
	}
	rng := rand.New(rand.NewSource(*seed))
	var rec wd.Recorder
	pr, verr := decomp.Partition(g, nil, 1, *rho, p, rng, &rec)
	if verr != nil {
		fmt.Fprintln(os.Stderr, "warning:", verr)
	}
	radii := decomp.StrongRadius(g, pr.Result)
	maxR, sumR := 0, 0
	sizes := make([]int, pr.NumComp)
	for _, c := range pr.Comp {
		sizes[c]++
	}
	for _, r := range radii {
		if r > maxR {
			maxR = r
		}
		sumR += r
	}
	fmt.Printf("graph: n=%d m=%d\n", g.N, g.M())
	fmt.Printf("rho=%d (schedule T=%d R=%d), trials=%d\n", *rho, pr.T, pr.R, pr.Trials)
	fmt.Printf("components=%d  maxStrongRadius=%d  avgRadius=%.2f\n",
		pr.NumComp, maxR, float64(sumR)/float64(pr.NumComp))
	fmt.Printf("cut edges=%d (%.2f%% of m)\n", pr.Cut.Total, 100*float64(pr.Cut.Total)/float64(max(1, g.M())))
	fmt.Printf("analytic work=%d depth=%d\n", rec.Work(), rec.Depth())
	if *verbose {
		order := make([]int, pr.NumComp)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
		fmt.Printf("%8s %10s %8s %8s %6s\n", "comp", "center", "size", "radius", "iter")
		for _, c := range order {
			fmt.Printf("%8d %10d %8d %8d %6d\n",
				c, pr.Centers[c], sizes[c], radii[c], pr.CompIter[c])
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
