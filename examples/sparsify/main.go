// Sparsify: spectral graph sparsification by effective resistances [SS08],
// computed with O(log n) parlap solves — the paper's first application.
//
// Run with: go run ./examples/sparsify
package main

import (
	"fmt"
	"log"

	"parlap/internal/apps"
	"parlap/internal/gen"
)

func main() {
	g := gen.GNP(1000, 0.05, 3)
	fmt.Printf("input:      n=%d, m=%d\n", g.N, g.M())

	for _, mult := range []int{4, 8, 16} {
		q := mult * g.N
		h, err := apps.SpectralSparsifier(g, q, 0, 11)
		if err != nil {
			log.Fatal(err)
		}
		d := apps.QuadFormDistortion(g, h, 30, 13)
		fmt.Printf("q=%2d·n:     m_H=%5d (%.1f%% of m), quad-form distortion %.3f\n",
			mult, h.M(), 100*float64(h.M())/float64(g.M()), d)
	}
}
