// Heat: harmonic interpolation (a discrete Dirichlet problem) on a grid —
// hold the top edge at +1 and the bottom edge at −1 and solve for the
// steady-state temperature everywhere else. This is the vision/graphics
// style workload (colorization, matting) the paper cites for SDD solvers.
//
// Run with: go run ./examples/heat
package main

import (
	"fmt"
	"log"

	"parlap/internal/apps"
	"parlap/internal/gen"
)

func main() {
	const rows, cols = 24, 48
	g := gen.Grid2D(rows, cols)

	boundary := map[int]float64{}
	for c := 0; c < cols; c++ {
		boundary[c] = 1                // top row: hot
		boundary[(rows-1)*cols+c] = -1 // bottom row: cold
	}

	x, err := apps.HarmonicInterpolation(g, boundary, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harmonic residual: %.2g\n", apps.HarmonicResidual(g, boundary, x))

	// Render as ASCII isotherms.
	shades := []byte("@#%*+=-:. ")
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			v := x[r*cols+c] // in [-1, 1]
			idx := int((1 - v) / 2 * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[c] = shades[idx]
		}
		fmt.Println(string(line))
	}
}
