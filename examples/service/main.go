// Example service is the build-once / solve-many client for sddserver, and
// doubles as the CI smoke check: it waits for the server, registers a graph
// (twice, to demonstrate the chain cache), solves several right-hand sides
// one at a time and then again as one batch, verifies the batch answers are
// bitwise identical to the single-solve answers, and checks the reported
// residuals against a threshold. Exit status is non-zero on any failure, so
// it can gate CI.
//
// With -load N it switches to load-generator mode: after registering, C
// concurrent workers (-concurrency) fire N solve requests at the cached
// chain, latencies land in the same log-bucketed histogram the server's
// /metrics uses (internal/obs), and the run prints p50/p95/p99/mean plus
// one ?debug=timings stage breakdown — the latency-harness half of the
// observability story, suitable as a CI benchmark artifact.
//
// Usage (against a running server):
//
//	go run ./cmd/sddserver -addr 127.0.0.1:8080 &
//	go run ./examples/service -addr http://127.0.0.1:8080 -spec grid2d:64x64 -rhs 4
//	go run ./examples/service -addr http://127.0.0.1:8080 -spec grid2d:64x64 -load 200 -concurrency 4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parlap/internal/obs"
)

var (
	addr        = flag.String("addr", "http://127.0.0.1:8080", "sddserver base URL")
	spec        = flag.String("spec", "grid2d:64x64", "generator spec to register")
	seed        = flag.Int64("seed", 1, "generator + RHS seed")
	numRHS      = flag.Int("rhs", 4, "number of right-hand sides")
	eps         = flag.Float64("eps", 1e-6, "relative residual target")
	maxResidual = flag.Float64("max-residual", 1e-5, "fail if any reported residual exceeds this")
	waitFor     = flag.Duration("wait", 15*time.Second, "how long to poll /healthz for server start-up")
	// Warm-restart smoke support: dump the single-solve solutions to a file
	// in one server lifetime, require bitwise-equal solutions against that
	// file in the next, and assert the second lifetime actually restored its
	// chain from a snapshot instead of rebuilding.
	dumpX       = flag.String("dump-x", "", "write the single-solve solutions to this JSON file")
	requireX    = flag.String("require-x", "", "fail unless the single-solve solutions are bitwise identical to this JSON file (from -dump-x)")
	minSnapHits = flag.Int64("min-snapshot-hits", 0, "fail unless /healthz reports at least this many snapshot hits")
	snapHealthz = flag.String("snapshot-healthz", "", "base URL whose /healthz the -min-snapshot-hits check reads (default -addr; set to a specific shard when -addr points at sddrouter)")
	// Load-generator mode.
	load        = flag.Int("load", 0, "fire this many solve requests and report latency percentiles (0 = run the smoke checks instead)")
	concurrency = flag.Int("concurrency", 4, "concurrent load-generator workers (with -load)")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "service example: "+format+"\n", args...)
	os.Exit(1)
}

func postJSON(url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(r.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", url, r.Status, e.Error)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func getJSON(url string, resp any) error {
	r, err := http.Get(url)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, r.Status)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

type registerResp struct {
	ID      string  `json:"id"`
	N       int     `json:"n"`
	M       int     `json:"m"`
	Cached  bool    `json:"cached"`
	BuildMS float64 `json:"build_ms"`
	Levels  int     `json:"levels"`
}

type solveStats struct {
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Residual   float64 `json:"residual"`
}

type solveTimings struct {
	TotalMS   float64   `json:"total_ms"`
	QueueMS   float64   `json:"queue_ms"`
	PCGMS     float64   `json:"pcg_ms"`
	PrecondMS float64   `json:"precond_ms"`
	BottomMS  float64   `json:"bottom_ms"`
	Levels    int       `json:"levels"`
	ChebMS    []float64 `json:"cheb_ms_per_level"`
	ForwardMS []float64 `json:"forward_ms_per_level"`
	BackMS    []float64 `json:"back_ms_per_level"`
}

type solveResp struct {
	X          []float64     `json:"x"`
	Stats      *solveStats   `json:"stats"`
	Xs         [][]float64   `json:"xs"`
	BatchStats []solveStats  `json:"batch_stats"`
	Timings    *solveTimings `json:"timings"`
}

func main() {
	flag.Parse()

	// Wait for the server.
	deadline := time.Now().Add(*waitFor)
	for {
		var health struct {
			Status string `json:"status"`
		}
		err := getJSON(*addr+"/healthz", &health)
		if err == nil && health.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			fatalf("server at %s not healthy after %s: %v", *addr, *waitFor, err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Register: the first call pays for the chain build, the second hits
	// the cache (same canonical hash).
	var reg registerResp
	if err := postJSON(*addr+"/graphs", map[string]any{"spec": *spec, "seed": *seed}, &reg); err != nil {
		fatalf("register: %v", err)
	}
	fmt.Printf("registered %s: id=%s n=%d m=%d levels=%d build=%.1fms cached=%v\n",
		*spec, reg.ID, reg.N, reg.M, reg.Levels, reg.BuildMS, reg.Cached)
	var reg2 registerResp
	if err := postJSON(*addr+"/graphs", map[string]any{"spec": *spec, "seed": *seed}, &reg2); err != nil {
		fatalf("re-register: %v", err)
	}
	if !reg2.Cached || reg2.ID != reg.ID {
		fatalf("second registration was not a cache hit (cached=%v id=%s want %s)", reg2.Cached, reg2.ID, reg.ID)
	}
	fmt.Printf("re-registered: cache hit, chain built exactly once\n")

	if *load > 0 {
		runLoad(reg)
		return
	}

	// Random mean-free right-hand sides.
	rng := rand.New(rand.NewSource(*seed + 1000))
	bs := make([][]float64, *numRHS)
	for c := range bs {
		b := make([]float64, reg.N)
		mean := 0.0
		for i := range b {
			b[i] = rng.NormFloat64()
			mean += b[i]
		}
		mean /= float64(reg.N)
		for i := range b {
			b[i] -= mean
		}
		bs[c] = b
	}

	// Solve one at a time (build-once / solve-many: each call reuses the
	// cached chain).
	singles := make([][]float64, *numRHS)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", *addr, reg.ID)
	t0 := time.Now()
	for c, b := range bs {
		var resp solveResp
		if err := postJSON(solveURL, map[string]any{"b": b, "eps": *eps}, &resp); err != nil {
			fatalf("solve %d: %v", c, err)
		}
		if resp.Stats == nil || !resp.Stats.Converged {
			fatalf("solve %d did not converge: %+v", c, resp.Stats)
		}
		if resp.Stats.Residual > *maxResidual {
			fatalf("solve %d residual %.3e exceeds %g", c, resp.Stats.Residual, *maxResidual)
		}
		fmt.Printf("solve %d: iters=%d residual=%.3e\n", c, resp.Stats.Iterations, resp.Stats.Residual)
		singles[c] = resp.X
	}
	singleDur := time.Since(t0)

	// The same right-hand sides as one batched request: one preconditioner-
	// chain pass per iteration serves the whole batch, and the answers are
	// bitwise identical to the single solves.
	var batch solveResp
	t0 = time.Now()
	if err := postJSON(solveURL, map[string]any{"batch": bs, "eps": *eps}, &batch); err != nil {
		fatalf("batch solve: %v", err)
	}
	batchDur := time.Since(t0)
	if len(batch.Xs) != *numRHS {
		fatalf("batch returned %d solutions, want %d", len(batch.Xs), *numRHS)
	}
	for c := range batch.Xs {
		if st := batch.BatchStats[c]; st.Residual > *maxResidual {
			fatalf("batch column %d residual %.3e exceeds %g", c, st.Residual, *maxResidual)
		}
		if len(batch.Xs[c]) != len(singles[c]) {
			fatalf("batch column %d length mismatch", c)
		}
		for i := range batch.Xs[c] {
			if batch.Xs[c][i] != singles[c][i] {
				fatalf("batch column %d differs from single solve at entry %d: %g vs %g",
					c, i, batch.Xs[c][i], singles[c][i])
			}
		}
	}
	fmt.Printf("batch of %d: bitwise identical to single solves (%s batched vs %s single)\n",
		*numRHS, batchDur.Round(time.Millisecond), singleDur.Round(time.Millisecond))

	// The same right-hand sides once more, streamed as ndjson rows: the
	// windowed streaming path must return the same bitwise answers in input
	// order.
	var ndjson bytes.Buffer
	for _, b := range bs {
		row, err := json.Marshal(b)
		if err != nil {
			fatalf("encode stream row: %v", err)
		}
		ndjson.Write(row)
		ndjson.WriteByte('\n')
	}
	streamURL := fmt.Sprintf("%s/graphs/%s/solve/stream?eps=%g", *addr, reg.ID, *eps)
	resp, err := http.Post(streamURL, "application/x-ndjson", &ndjson)
	if err != nil {
		fatalf("stream solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("stream solve: %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	streamed := 0
	for dec.More() {
		var row struct {
			Row       int       `json:"row"`
			X         []float64 `json:"x"`
			Converged bool      `json:"converged"`
			Residual  float64   `json:"residual"`
			Error     string    `json:"error"`
		}
		if err := dec.Decode(&row); err != nil {
			fatalf("stream row decode: %v", err)
		}
		if row.Error != "" {
			fatalf("stream error row: %s", row.Error)
		}
		if row.Row != streamed {
			fatalf("stream rows out of order: got %d want %d", row.Row, streamed)
		}
		if row.Residual > *maxResidual {
			fatalf("stream row %d residual %.3e exceeds %g", row.Row, row.Residual, *maxResidual)
		}
		if len(row.X) != len(singles[streamed]) {
			fatalf("stream row %d has %d entries, single solve has %d", streamed, len(row.X), len(singles[streamed]))
		}
		for i := range row.X {
			if row.X[i] != singles[streamed][i] {
				fatalf("stream row %d differs from single solve at entry %d: %g vs %g",
					streamed, i, row.X[i], singles[streamed][i])
			}
		}
		streamed++
	}
	if streamed != *numRHS {
		fatalf("stream returned %d rows, want %d", streamed, *numRHS)
	}
	fmt.Printf("stream of %d: bitwise identical to single solves, rows in order\n", streamed)

	// Chain-cache accounting.
	var stats struct {
		CacheHits int64 `json:"cache_hits"`
		Solves    int64 `json:"solves"`
		RHSServed int64 `json:"rhs_served"`
	}
	if err := getJSON(fmt.Sprintf("%s/graphs/%s/stats", *addr, reg.ID), &stats); err != nil {
		fatalf("stats: %v", err)
	}
	if stats.CacheHits < 1 {
		fatalf("stats report %d cache hits, want >= 1", stats.CacheHits)
	}
	fmt.Printf("stats: cache_hits=%d solves=%d rhs_served=%d\n", stats.CacheHits, stats.Solves, stats.RHSServed)

	// Warm-restart verification: solutions dumped in a previous server
	// lifetime must match this lifetime's bit for bit (JSON float64
	// round-trips exactly, so file comparison is bitwise), and the restart
	// must have been served from the snapshot store, not a rebuild.
	if *dumpX != "" {
		data, err := json.Marshal(singles)
		if err != nil {
			fatalf("encode -dump-x: %v", err)
		}
		if err := os.WriteFile(*dumpX, data, 0o644); err != nil {
			fatalf("write -dump-x: %v", err)
		}
		fmt.Printf("dumped %d solution vectors to %s\n", len(singles), *dumpX)
	}
	if *requireX != "" {
		data, err := os.ReadFile(*requireX)
		if err != nil {
			fatalf("read -require-x: %v", err)
		}
		var want [][]float64
		if err := json.Unmarshal(data, &want); err != nil {
			fatalf("decode -require-x: %v", err)
		}
		if len(want) != len(singles) {
			fatalf("-require-x holds %d vectors, this run solved %d", len(want), len(singles))
		}
		for c := range want {
			if len(want[c]) != len(singles[c]) {
				fatalf("-require-x vector %d has %d entries, this run %d", c, len(want[c]), len(singles[c]))
			}
			for i := range want[c] {
				if math.Float64bits(want[c][i]) != math.Float64bits(singles[c][i]) {
					fatalf("solution %d differs from %s at entry %d: %x vs %x — restored chain is not bit-identical",
						c, *requireX, i, math.Float64bits(singles[c][i]), math.Float64bits(want[c][i]))
				}
			}
		}
		fmt.Printf("solutions bitwise identical to %s across the restart\n", *requireX)
	}
	checkSnapHits()
	fmt.Println("OK")
}

func checkSnapHits() {
	if *minSnapHits > 0 {
		base := *addr
		if *snapHealthz != "" {
			base = *snapHealthz
		}
		var health struct {
			SnapshotHits   int64 `json:"snapshot_hits"`
			SnapshotErrors int64 `json:"snapshot_errors"`
		}
		if err := getJSON(base+"/healthz", &health); err != nil {
			fatalf("healthz: %v", err)
		}
		if health.SnapshotHits < *minSnapHits {
			fatalf("snapshot_hits=%d, want >= %d — the server rebuilt instead of restoring", health.SnapshotHits, *minSnapHits)
		}
		fmt.Printf("snapshot_hits=%d (errors=%d): chain served from the snapshot store\n",
			health.SnapshotHits, health.SnapshotErrors)
	}
}

// runLoad is the load-generator mode: -concurrency workers fire -load solve
// requests at the cached chain, each latency lands in the same log-bucketed
// histogram the server's /metrics exports (internal/obs), and the run
// reports client-observed percentiles plus one ?debug=timings stage
// breakdown. Output is stable line-per-fact text, suitable as a CI
// artifact.
func runLoad(reg registerResp) {
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", *addr, reg.ID)
	// A small pool of distinct mean-free right-hand sides, cycled across
	// requests: varied enough to defeat any hypothetical answer caching,
	// cheap enough to generate at any -load.
	const pool = 8
	rng := rand.New(rand.NewSource(*seed + 2000))
	bs := make([][]float64, pool)
	for c := range bs {
		b := make([]float64, reg.N)
		mean := 0.0
		for i := range b {
			b[i] = rng.NormFloat64()
			mean += b[i]
		}
		mean /= float64(reg.N)
		for i := range b {
			b[i] -= mean
		}
		bs[c] = b
	}
	// One warm-up request so pooled workspaces exist before timing starts.
	var warm solveResp
	if err := postJSON(solveURL, map[string]any{"b": bs[0], "eps": *eps}, &warm); err != nil {
		fatalf("warm-up solve: %v", err)
	}

	var hist obs.Histogram
	var next, failures atomic.Int64
	errc := make(chan error, *concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *load {
					return
				}
				var resp solveResp
				ts := time.Now()
				err := postJSON(solveURL, map[string]any{"b": bs[i%pool], "eps": *eps}, &resp)
				if err == nil && (resp.Stats == nil || !resp.Stats.Converged || resp.Stats.Residual > *maxResidual) {
					err = fmt.Errorf("bad solve stats %+v", resp.Stats)
				}
				if err != nil {
					failures.Add(1)
					select {
					case errc <- fmt.Errorf("load request %d: %v", i, err):
					default:
					}
					continue
				}
				hist.ObserveSince(ts)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if n := failures.Load(); n > 0 {
		fatalf("%d/%d load requests failed; first: %v", n, *load, <-errc)
	}

	snap := hist.Snapshot()
	if snap.Count != int64(*load) {
		fatalf("recorded %d latencies, want %d", snap.Count, *load)
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("load: %d requests, %d concurrent, graph %s (n=%d m=%d levels=%d)\n",
		*load, *concurrency, *spec, reg.N, reg.M, reg.Levels)
	fmt.Printf("latency_ms: p50=%.3f p95=%.3f p99=%.3f mean=%.3f min=%.3f max=%.3f\n",
		ms(snap.Quantile(0.50)), ms(snap.Quantile(0.95)), ms(snap.Quantile(0.99)),
		snap.Mean()/1e6, ms(snap.Min), ms(snap.Max))
	fmt.Printf("throughput: %.1f req/s over %s\n",
		float64(*load)/wall.Seconds(), wall.Round(time.Millisecond))

	// One traced request: the server-side stage breakdown for the same
	// solve the percentiles above measured from the outside.
	var dbg solveResp
	if err := postJSON(solveURL+"?debug=timings", map[string]any{"b": bs[0], "eps": *eps}, &dbg); err != nil {
		fatalf("debug=timings solve: %v", err)
	}
	tm := dbg.Timings
	if tm == nil || tm.TotalMS <= 0 {
		fatalf("?debug=timings returned no stage trace (got %+v)", tm)
	}
	perLevel := func(v []float64) string {
		parts := make([]string, len(v))
		for i, x := range v {
			parts[i] = fmt.Sprintf("%.3f", x)
		}
		return strings.Join(parts, ",")
	}
	fmt.Printf("timings_ms: total=%.3f queue=%.3f pcg=%.3f precond=%.3f bottom=%.3f levels=%d\n",
		tm.TotalMS, tm.QueueMS, tm.PCGMS, tm.PrecondMS, tm.BottomMS, tm.Levels)
	fmt.Printf("timings_ms_per_level: cheb=[%s] forward=[%s] back=[%s]\n",
		perLevel(tm.ChebMS), perLevel(tm.ForwardMS), perLevel(tm.BackMS))
	checkSnapHits()
	fmt.Println("OK")
}
