// Maxflow: approximate maximum flow via electrical flows [CKM+10] — the
// flow application highlighted in the paper's introduction — compared
// against an exact Dinic baseline.
//
// Run with: go run ./examples/maxflow
package main

import (
	"fmt"

	"parlap/internal/apps"
	"parlap/internal/gen"
)

func main() {
	// A capacitated grid: corner to corner.
	g := gen.WithUniformWeights(gen.Grid2D(12, 12), 1, 4, 7)
	s, t := 0, g.N-1

	exact := apps.MaxFlowExact(g, s, t)
	fmt.Printf("exact max flow (Dinic):        %.4f\n", exact)

	res, err := apps.ApproxMaxFlow(g, s, t, 0.1, 30)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("electrical-flow approximation: %.4f  (%.1f%% of optimal)\n",
		res.Value, 100*res.Value/exact)
	fmt.Printf("Laplacian solves used:         %d\n", res.Solves)
	fmt.Printf("max congestion of returned flow: %.4f (feasible ≤ 1)\n",
		apps.MaxCongestion(g, res.Flow))
	fmt.Printf("conservation error:            %.2g\n",
		apps.FlowConservationError(g, res.Flow, s, t))
}
