// Quickstart: build a graph, solve a Laplacian system, check the residual.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parlap"
)

func main() {
	// A 100×100 unit grid: the canonical SDD benchmark (a discrete Poisson
	// problem).
	g := parlap.Grid2D(100, 100)
	fmt.Printf("graph: n=%d vertices, m=%d edges\n", g.N, g.M())

	s, err := parlap.NewSolver(g)
	if err != nil {
		log.Fatal(err)
	}

	// Random mean-zero right-hand side (Laplacians are singular on the
	// all-ones vector; the solver projects automatically, but a mean-zero b
	// is the well-posed formulation).
	rng := rand.New(rand.NewSource(42))
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	x, stats := s.Solve(b, 1e-8)
	fmt.Printf("solved in %d PCG iterations (converged=%v)\n", stats.Iterations, stats.Converged)
	fmt.Printf("relative residual: %.3g\n", s.Residual(x, b))

	// The same through the general SDD interface: L is SDD, so NewSDDSolver
	// recognizes the Laplacian structure and skips the Gremban reduction.
	lap := parlap.Laplacian(g)
	sdd, err := parlap.NewSDDSolver(lap)
	if err != nil {
		log.Fatal(err)
	}
	x2, _ := sdd.Solve(b, 1e-8)
	diff := 0.0
	for i := range x {
		if d := x[i] - x2[i]; d > diff || -d > diff {
			if d < 0 {
				d = -d
			}
			diff = d
		}
	}
	fmt.Printf("Laplacian vs SDD interface max deviation: %.3g\n", diff)
}
