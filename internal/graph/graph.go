// Package graph provides the weighted undirected multigraph substrate used
// by every algorithm in parlap: an edge-list builder, a CSR (compressed
// sparse row) adjacency view, connectivity, traversals, minimum spanning
// trees and graph contraction.
//
// Vertices are integers in [0, N). Edges carry a float64 weight, interpreted
// throughout as a *length* for distance computations and as a *conductance*
// when the graph is viewed as a Laplacian (the two views agree with the
// paper, which measures stretch with weights-as-lengths of the reciprocal
// conductance; see lowstretch for the exact convention used there).
package graph

import (
	"fmt"
	"math"
	"sort"

	"parlap/internal/par"
)

// Edge is an undirected edge {U, V} with weight W. Self-loops (U == V) are
// permitted in intermediate multigraphs but dropped by contraction helpers.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted multigraph in CSR form. The CSR stores
// each undirected edge twice (once per direction); EdgeID maps each
// directed half-edge back to its undirected edge index so algorithms can
// refer to the original edge list (e.g. edge classes in the AKPW bucketing).
type Graph struct {
	N     int    // number of vertices
	Edges []Edge // undirected edge list, length M

	// CSR arrays: for vertex u, half-edges are indices Off[u]..Off[u+1].
	Off    []int     // length N+1
	Adj    []int     // neighbor vertex per half-edge, length 2M
	Wt     []float64 // weight per half-edge, length 2M
	EdgeID []int     // undirected edge index per half-edge, length 2M
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Edges) }

// Validate checks structural invariants; it is used by tests and the CLI
// loaders, not on hot paths.
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= g.N || e.V < 0 || e.V >= g.N {
			return fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
		if math.IsNaN(e.W) || e.W < 0 {
			return fmt.Errorf("graph: edge %d has invalid weight %v", i, e.W)
		}
	}
	if len(g.Off) != g.N+1 {
		return fmt.Errorf("graph: Off length %d, want %d", len(g.Off), g.N+1)
	}
	if len(g.Adj) != 2*g.M() || len(g.Wt) != 2*g.M() || len(g.EdgeID) != 2*g.M() {
		return fmt.Errorf("graph: CSR arrays have inconsistent lengths")
	}
	return nil
}

// FromEdges builds a Graph (with CSR) from an edge list over n vertices.
// The edge slice is retained, not copied.
func FromEdges(n int, edges []Edge) *Graph { return FromEdgesW(0, n, edges) }

// FromEdgesW is FromEdges with an explicit worker count for the CSR build
// (0 = GOMAXPROCS, 1 = sequential) — the hook the solver uses to keep
// construction single-goroutine end-to-end under Options{Workers: 1}.
func FromEdgesW(workers, n int, edges []Edge) *Graph {
	g := &Graph{N: n, Edges: edges}
	g.buildCSRW(workers)
	return g
}

// buildCSRW (re)builds the CSR arrays from g.Edges using the offset-
// precomputed pack of par.HalfEdgePackW: per-chunk degree counts, a prefix
// sum, and per-(chunk, vertex) starting offsets make the half-edge scatter
// conflict-free without atomics. The layout matches the classic sequential
// cursor scatter for every worker count.
func (g *Graph) buildCSRW(workers int) {
	n, m := g.N, len(g.Edges)
	var pos []int
	g.Off, pos = par.HalfEdgePackW(workers, n, m, func(i int) (int, int) {
		e := g.Edges[i]
		return e.U, e.V
	})
	g.Adj = make([]int, 2*m)
	g.Wt = make([]float64, 2*m)
	g.EdgeID = make([]int, 2*m)
	par.ForChunkedW(workers, m, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			e := g.Edges[id]
			cu, cv := pos[2*id], pos[2*id+1]
			g.Adj[cu], g.Wt[cu], g.EdgeID[cu] = e.V, e.W, id
			g.Adj[cv], g.Wt[cv], g.EdgeID[cv] = e.U, e.W, id
		}
	})
}

// MemoryBytes estimates the graph's retained footprint: the edge list plus
// the CSR arrays. Used by serving layers that budget cache memory in bytes.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.Edges))*24 +
		int64(len(g.Off)+len(g.Adj)+len(g.EdgeID))*8 +
		int64(len(g.Wt))*8
}

// Degree returns the number of half-edges at u (self-loops count twice).
func (g *Graph) Degree(u int) int { return g.Off[u+1] - g.Off[u] }

// Neighbors calls fn(v, w, edgeID) for each half-edge (u,v).
func (g *Graph) Neighbors(u int, fn func(v int, w float64, id int)) {
	for i := g.Off[u]; i < g.Off[u+1]; i++ {
		fn(g.Adj[i], g.Wt[i], g.EdgeID[i])
	}
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	return par.SumFloat64(len(g.Edges), func(i int) float64 { return g.Edges[i].W })
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return FromEdges(g.N, edges)
}

// InducedSubgraph returns the subgraph induced by keep (a vertex predicate),
// along with the mapping old->new vertex ids (-1 when dropped). Edge IDs in
// the result refer to the new edge list; origEdge maps new edge index ->
// original edge index.
func (g *Graph) InducedSubgraph(keep func(v int) bool) (sub *Graph, vmap []int, origEdge []int) {
	vmap = make([]int, g.N)
	next := 0
	for v := 0; v < g.N; v++ {
		if keep(v) {
			vmap[v] = next
			next++
		} else {
			vmap[v] = -1
		}
	}
	var edges []Edge
	for id, e := range g.Edges {
		if vmap[e.U] >= 0 && vmap[e.V] >= 0 {
			edges = append(edges, Edge{vmap[e.U], vmap[e.V], e.W})
			origEdge = append(origEdge, id)
		}
	}
	return FromEdges(next, edges), vmap, origEdge
}

// Contract collapses vertices according to comp (vertex -> component id in
// [0, numComp)), discarding self-loops and keeping parallel edges, exactly
// as AKPW iteration requires. origEdge maps contracted edge index to the
// original edge index in g.
func (g *Graph) Contract(comp []int, numComp int) (contracted *Graph, origEdge []int) {
	return g.ContractW(0, comp, numComp)
}

// ContractW is Contract with an explicit worker count for the contracted
// graph's CSR build.
func (g *Graph) ContractW(workers int, comp []int, numComp int) (contracted *Graph, origEdge []int) {
	var edges []Edge
	for id, e := range g.Edges {
		cu, cv := comp[e.U], comp[e.V]
		if cu == cv {
			continue
		}
		edges = append(edges, Edge{cu, cv, e.W})
		origEdge = append(origEdge, id)
	}
	return FromEdgesW(workers, numComp, edges), origEdge
}

// ConnectedComponents labels each vertex with a component id in [0, count)
// using repeated BFS. Runs in O(n+m).
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, g.N)
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for i := g.Off[u]; i < g.Off[u+1]; i++ {
				v := g.Adj[i]
				if comp[v] < 0 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph is considered connected).
func (g *Graph) IsConnected() bool {
	if g.N == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// SortEdgesByWeight returns the edge indices sorted by nondecreasing weight.
func (g *Graph) SortEdgesByWeight() []int {
	idx := make([]int, len(g.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := g.Edges[idx[a]], g.Edges[idx[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return idx[a] < idx[b]
	})
	return idx
}

// WeightSpread returns max/min over positive edge weights (the paper's Δ).
// Returns 1 for graphs with no edges.
func (g *Graph) WeightSpread() float64 {
	if len(g.Edges) == 0 {
		return 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range g.Edges {
		if e.W < lo {
			lo = e.W
		}
		if e.W > hi {
			hi = e.W
		}
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
