package graph

import (
	"sort"

	"parlap/internal/par"
	"parlap/internal/wd"
)

// MSTKruskal returns the edge ids of a minimum spanning forest (weights as
// lengths), computed by Kruskal's algorithm. Deterministic: ties broken by
// edge id.
func (g *Graph) MSTKruskal() []int {
	order := g.SortEdgesByWeight()
	uf := NewUnionFind(g.N)
	var tree []int
	for _, id := range order {
		e := g.Edges[id]
		if e.U != e.V && uf.Union(e.U, e.V) {
			tree = append(tree, id)
			if len(tree) == g.N-1 {
				break
			}
		}
	}
	sort.Ints(tree)
	return tree
}

// MSTBoruvka returns the edge ids of a minimum spanning forest using
// Borůvka's algorithm with parallel minimum-edge selection per component —
// the classically parallel MST with O(log n) rounds. Ties are broken by
// (weight, edge id), which also guarantees termination on equal weights.
//
// The recorder is charged work = half-edges scanned per round and depth = 1
// per round.
func (g *Graph) MSTBoruvka(rec *wd.Recorder) []int {
	n := len(g.Edges)
	uf := NewUnionFind(g.N)
	inTree := make([]bool, n)
	comp := make([]int32, g.N) // root label per vertex, refreshed each round
	type cand struct {
		w  float64
		id int32
	}
	better := func(a cand, b cand) bool {
		return a.w < b.w || (a.w == b.w && a.id < b.id)
	}
	for round := 0; ; round++ {
		// Refresh read-only component labels so the parallel scan does not
		// race on union-find path compression.
		for v := 0; v < g.N; v++ {
			comp[v] = int32(uf.Find(v))
		}
		if uf.Count() <= 1 || n == 0 {
			break
		}
		// Lightest outgoing edge per component root: chunk-local minima
		// merged sequentially (deterministic tie-break by edge id).
		chunks := par.Workers() * 4
		if chunks > n {
			chunks = n
		}
		chunk := (n + chunks - 1) / chunks
		numChunks := (n + chunk - 1) / chunk
		locals := make([]map[int32]cand, numChunks)
		par.For(numChunks, func(c int) {
			lo, hi := c*chunk, (c+1)*chunk
			if hi > n {
				hi = n
			}
			l := make(map[int32]cand)
			for id := lo; id < hi; id++ {
				e := g.Edges[id]
				cu, cv := comp[e.U], comp[e.V]
				if cu == cv {
					continue
				}
				cd := cand{e.W, int32(id)}
				for _, side := range [2]int32{cu, cv} {
					if best, ok := l[side]; !ok || better(cd, best) {
						l[side] = cd
					}
				}
			}
			locals[c] = l
		})
		cheapest := make(map[int32]cand)
		for _, l := range locals {
			for c, cd := range l {
				if best, ok := cheapest[c]; !ok || better(cd, best) {
					cheapest[c] = cd
				}
			}
		}
		rec.Add(int64(n), 1)
		progress := false
		for _, cd := range cheapest {
			e := g.Edges[cd.id]
			if uf.Union(e.U, e.V) {
				inTree[cd.id] = true
				progress = true
			}
		}
		if !progress {
			break // remaining components are mutually disconnected
		}
	}
	var tree []int
	for id, in := range inTree {
		if in {
			tree = append(tree, id)
		}
	}
	return tree
}

// SpanningForestEdges returns edge ids of an arbitrary spanning forest
// (BFS-based), useful where minimality is not needed.
func (g *Graph) SpanningForestEdges() []int {
	visited := make([]bool, g.N)
	var tree []int
	for s := 0; s < g.N; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack := []int{s}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := g.Off[u]; i < g.Off[u+1]; i++ {
				v := g.Adj[i]
				if !visited[v] {
					visited[v] = true
					tree = append(tree, g.EdgeID[i])
					stack = append(stack, v)
				}
			}
		}
	}
	sort.Ints(tree)
	return tree
}
