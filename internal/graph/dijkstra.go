package graph

import (
	"container/heap"
	"math"
)

// distHeap is a binary heap of (vertex, distance) keyed by distance.
type distHeapItem struct {
	v int
	d float64
}

type distHeap []distHeapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distHeapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path lengths (weights as lengths)
// from s. Unreachable vertices get +Inf. Lazy-deletion binary heap,
// O((n+m) log n).
func (g *Graph) Dijkstra(s int) []float64 {
	return g.DijkstraBounded(s, math.Inf(1))
}

// DijkstraBounded is Dijkstra truncated at distance bound: vertices farther
// than bound keep +Inf. Used for per-edge stretch queries, where the search
// can stop once the endpoint's distance is settled.
func (g *Graph) DijkstraBounded(s int, bound float64) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	h := &distHeap{{s, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distHeapItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		if it.d > bound {
			break
		}
		u := it.v
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := g.Adj[i]
			nd := it.d + g.Wt[i]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, distHeapItem{v, nd})
			}
		}
	}
	return dist
}

// DijkstraTo returns the shortest-path length from s to t (weights as
// lengths), terminating early once t is settled. +Inf if unreachable.
func (g *Graph) DijkstraTo(s, t int) float64 {
	dist := make(map[int]float64, 64)
	done := make(map[int]bool, 64)
	dist[s] = 0
	h := &distHeap{{s, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distHeapItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == t {
			return it.d
		}
		u := it.v
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := g.Adj[i]
			if done[v] {
				continue
			}
			nd := it.d + g.Wt[i]
			if old, ok := dist[v]; !ok || nd < old {
				dist[v] = nd
				heap.Push(h, distHeapItem{v, nd})
			}
		}
	}
	return math.Inf(1)
}
