package graph

import (
	"container/heap"
	"math"
)

// distHeap is a binary heap of (vertex, distance) keyed by distance.
type distHeapItem struct {
	v int
	d float64
}

type distHeap []distHeapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distHeapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path lengths (weights as lengths)
// from s. Unreachable vertices get +Inf. Lazy-deletion binary heap,
// O((n+m) log n).
func (g *Graph) Dijkstra(s int) []float64 {
	return g.DijkstraBounded(s, math.Inf(1))
}

// DijkstraBounded is Dijkstra truncated at distance bound: vertices farther
// than bound keep +Inf. Used for per-edge stretch queries, where the search
// can stop once the endpoint's distance is settled.
func (g *Graph) DijkstraBounded(s int, bound float64) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	h := &distHeap{{s, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distHeapItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		if it.d > bound {
			break
		}
		u := it.v
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := g.Adj[i]
			nd := it.d + g.Wt[i]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(h, distHeapItem{v, nd})
			}
		}
	}
	return dist
}

// DistBuffer is reusable scratch state for point-to-point shortest-path
// queries: epoch-stamped dist/done slices (a slot is valid only when its
// stamp equals the current epoch, so clearing between queries is a single
// counter increment, not an O(n) wipe or a fresh map) plus a reusable heap.
// It replaces the per-call map[int]float64/map[int]bool tables that made
// every stretch-scorer query allocate. A DistBuffer belongs to one
// goroutine; create one per worker and reuse it across queries.
type DistBuffer struct {
	dist      []float64
	distStamp []uint32
	doneStamp []uint32
	epoch     uint32
	heap      distHeap
}

// NewDistBuffer returns a DistBuffer sized for g's vertex set.
func (g *Graph) NewDistBuffer() *DistBuffer {
	return &DistBuffer{
		dist:      make([]float64, g.N),
		distStamp: make([]uint32, g.N),
		doneStamp: make([]uint32, g.N),
	}
}

// next advances the epoch, invalidating every slot in O(1). On the (rare)
// wraparound the stamp arrays are wiped so stale stamps from 2³² queries ago
// cannot alias the fresh epoch.
func (b *DistBuffer) next() {
	if b.epoch == math.MaxUint32 {
		for i := range b.distStamp {
			b.distStamp[i] = 0
			b.doneStamp[i] = 0
		}
		b.epoch = 0
	}
	b.epoch++
	b.heap = b.heap[:0]
}

// DijkstraTo returns the shortest-path length from s to t (weights as
// lengths), terminating early once t is settled. +Inf if unreachable.
// It allocates a fresh DistBuffer; loops over many queries should hold a
// per-goroutine buffer and call DijkstraToBuf instead.
func (g *Graph) DijkstraTo(s, t int) float64 {
	return g.DijkstraToBuf(g.NewDistBuffer(), s, t)
}

// DijkstraToBuf is DijkstraTo using buf for all per-query state; no
// allocations beyond heap growth, which the buffer retains across calls.
func (g *Graph) DijkstraToBuf(buf *DistBuffer, s, t int) float64 {
	buf.next()
	ep := buf.epoch
	buf.dist[s] = 0
	buf.distStamp[s] = ep
	buf.heap = append(buf.heap, distHeapItem{s, 0})
	h := &buf.heap
	for h.Len() > 0 {
		it := heap.Pop(h).(distHeapItem)
		if buf.doneStamp[it.v] == ep {
			continue
		}
		buf.doneStamp[it.v] = ep
		if it.v == t {
			return it.d
		}
		u := it.v
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := g.Adj[i]
			if buf.doneStamp[v] == ep {
				continue
			}
			nd := it.d + g.Wt[i]
			if buf.distStamp[v] != ep || nd < buf.dist[v] {
				buf.dist[v] = nd
				buf.distStamp[v] = ep
				heap.Push(h, distHeapItem{v, nd})
			}
		}
	}
	return math.Inf(1)
}
