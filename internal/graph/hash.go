package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// CanonicalID returns the canonical content address of g: a SHA-256 over the
// vertex count and the (u ≤ v)-normalized, sorted edge multiset with exact
// float64 weight bits, truncated to 128 bits (collision-infeasible; 64 bits
// would be birthday-searchable). Two graphs hash equal iff they describe the
// same weighted multigraph up to edge order and endpoint orientation, which
// makes the id a safe key for caches AND for persisted chain snapshots: a
// snapshot addressed by this id can only ever be replayed against the graph
// it was built from.
func CanonicalID(g *Graph) string {
	type key struct {
		u, v int
		w    float64
	}
	ks := make([]key, 0, len(g.Edges))
	for _, e := range g.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		ks = append(ks, key{u, v, e.W})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].u != ks[j].u {
			return ks[i].u < ks[j].u
		}
		if ks[i].v != ks[j].v {
			return ks[i].v < ks[j].v
		}
		return math.Float64bits(ks[i].w) < math.Float64bits(ks[j].w)
	})
	h := sha256.New()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(g.N))
	h.Write(buf[:8])
	for _, k := range ks {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(k.u))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(k.v))
		binary.LittleEndian.PutUint64(buf[16:24], math.Float64bits(k.w))
		h.Write(buf[:])
	}
	return "g" + hex.EncodeToString(h.Sum(nil))[:32]
}
