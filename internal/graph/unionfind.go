package graph

// UnionFind is a union-by-rank + path-halving disjoint-set forest. It is not
// safe for concurrent mutation; parallel MST code partitions work so each
// instance is touched by one goroutine at a time.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set, halving the path as it goes.
func (uf *UnionFind) Find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		uf.parent[p] = uf.parent[uf.parent[p]]
		p = uf.parent[p]
	}
	return int(p)
}

// Union merges the sets containing x and y; returns true if they were
// distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Labels returns a dense labeling comp[v] in [0, k) of the current sets,
// where k is the number of sets.
func (uf *UnionFind) Labels() (comp []int, k int) {
	n := len(uf.parent)
	comp = make([]int, n)
	remap := make(map[int]int, uf.count)
	for v := 0; v < n; v++ {
		r := uf.Find(v)
		id, ok := remap[r]
		if !ok {
			id = len(remap)
			remap[r] = id
		}
		comp[v] = id
	}
	return comp, len(remap)
}
