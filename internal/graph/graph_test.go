package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func triangle() *Graph {
	return FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}})
}

func TestFromEdgesCSR(t *testing.T) {
	g := triangle()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	// Each undirected edge appears exactly twice across half-edges.
	count := make(map[int]int)
	for _, id := range g.EdgeID {
		count[id]++
	}
	for id := 0; id < 3; id++ {
		if count[id] != 2 {
			t.Fatalf("edge %d has %d half-edges", id, count[id])
		}
	}
}

func TestNeighbors(t *testing.T) {
	g := triangle()
	var seen []int
	var wts []float64
	g.Neighbors(0, func(v int, w float64, id int) {
		seen = append(seen, v)
		wts = append(wts, w)
	})
	sort.Ints(seen)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("neighbors of 0 = %v", seen)
	}
	totalW := wts[0] + wts[1]
	if totalW != 4 { // weights 1 and 3
		t.Fatalf("neighbor weights sum = %v, want 4", totalW)
	}
}

func TestValidateRejectsBadEdges(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1, 1}})
	g.Edges[0].V = 5 // corrupt after construction
	if err := g.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
	g2 := FromEdges(2, []Edge{{0, 1, math.NaN()}})
	if err := g2.Validate(); err == nil {
		t.Fatal("expected NaN weight error")
	}
}

func TestTotalWeight(t *testing.T) {
	if w := triangle().TotalWeight(); w != 6 {
		t.Fatalf("TotalWeight = %v, want 6", w)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.Edges[0].W = 99
	if g.Edges[0].W == 99 {
		t.Fatal("clone shares edge storage")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	comp, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("vertices 0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Fatal("vertices 3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("vertex 5 should be isolated")
	}
	if g.IsConnected() {
		t.Fatal("graph should not be connected")
	}
	if !triangle().IsConnected() {
		t.Fatal("triangle should be connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}})
	sub, vmap, orig := g.InducedSubgraph(func(v int) bool { return v != 3 })
	if sub.N != 3 {
		t.Fatalf("sub.N = %d, want 3", sub.N)
	}
	if sub.M() != 2 {
		t.Fatalf("sub.M = %d, want 2", sub.M())
	}
	if vmap[3] != -1 {
		t.Fatal("dropped vertex should map to -1")
	}
	for _, id := range orig {
		e := g.Edges[id]
		if e.U == 3 || e.V == 3 {
			t.Fatal("edge incident to dropped vertex survived")
		}
	}
}

func TestContract(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 3, 4}})
	comp := []int{0, 0, 1, 1}
	c, orig := g.Contract(comp, 2)
	if c.N != 2 {
		t.Fatalf("contracted N = %d, want 2", c.N)
	}
	// Edges {1,2} and {0,3} survive as parallel edges between supernodes.
	if c.M() != 2 {
		t.Fatalf("contracted M = %d, want 2", c.M())
	}
	for _, id := range orig {
		e := g.Edges[id]
		if comp[e.U] == comp[e.V] {
			t.Fatal("intra-component edge survived contraction")
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	n := 10
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{i, i + 1, 1}
	}
	g := FromEdges(n, edges)
	res := g.BFS([]int{0}, -1, nil)
	for v := 0; v < n; v++ {
		if int(res.Dist[v]) != v {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	// One expansion per non-empty frontier: frontiers exist at distances
	// 0..n-1, so n expansions (the last discovers nothing).
	if res.Levels != n {
		t.Fatalf("levels = %d, want %d", res.Levels, n)
	}
}

func TestBFSMaxDist(t *testing.T) {
	n := 10
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{i, i + 1, 1}
	}
	g := FromEdges(n, edges)
	res := g.BFS([]int{0}, 3, nil)
	for v := 0; v < n; v++ {
		want := v
		if v > 3 {
			want = -1
		}
		if int(res.Dist[v]) != want {
			t.Fatalf("bounded dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}
}

func TestBFSMultiSource(t *testing.T) {
	n := 11
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{i, i + 1, 1}
	}
	g := FromEdges(n, edges)
	res := g.BFS([]int{0, 10}, -1, nil)
	if res.Dist[5] != 5 {
		t.Fatalf("dist[5] = %d, want 5", res.Dist[5])
	}
	if res.Dist[2] != 2 || res.Dist[8] != 2 {
		t.Fatal("multi-source distances wrong near sources")
	}
}

func TestBFSParentsFormTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 300
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{rng.Intn(i), i, 1})
	}
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{u, v, 1})
		}
	}
	g := FromEdges(n, edges)
	res := g.BFS([]int{0}, -1, nil)
	for v := 1; v < n; v++ {
		p := int(res.Parent[v])
		if p < 0 {
			t.Fatalf("vertex %d unreachable in connected graph", v)
		}
		if res.Dist[v] != res.Dist[p]+1 {
			t.Fatalf("parent dist mismatch at %d", v)
		}
		eid := int(res.ParentEdge[v])
		e := g.Edges[eid]
		if (e.U != v || e.V != p) && (e.U != p || e.V != v) {
			t.Fatalf("ParentEdge of %d does not connect to parent", v)
		}
	}
}

// TestBFSLargeParallelMatchesSequential cross-checks the parallel frontier
// expansion against a simple sequential BFS on a graph large enough to
// trigger the parallel path.
func TestBFSLargeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20000
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{rng.Intn(i), i, 1})
	}
	for i := 0; i < 80000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{u, v, 1})
		}
	}
	g := FromEdges(n, edges)
	res := g.BFS([]int{0}, -1, nil)
	// Sequential reference.
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := g.Off[u]; i < g.Off[u+1]; i++ {
			v := g.Adj[i]
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for v := 0; v < n; v++ {
		if int(res.Dist[v]) != dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], dist[v])
		}
	}
}

func TestEccentricity(t *testing.T) {
	n := 16
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{i, i + 1, 1}
	}
	g := FromEdges(n, edges)
	if ecc := g.Eccentricity(0); ecc != n-1 {
		t.Fatalf("ecc(0) = %d, want %d", ecc, n-1)
	}
	if ecc := g.Eccentricity(n / 2); ecc != n/2 {
		t.Fatalf("ecc(mid) = %d, want %d", ecc, n/2)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("count = %d, want 5", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Fatal("union of distinct sets returned false")
	}
	if uf.Union(0, 1) {
		t.Fatal("repeated union returned true")
	}
	uf.Union(2, 3)
	uf.Union(1, 2)
	if !uf.Connected(0, 3) {
		t.Fatal("0 and 3 should be connected")
	}
	if uf.Connected(0, 4) {
		t.Fatal("0 and 4 should be disjoint")
	}
	if uf.Count() != 2 {
		t.Fatalf("count = %d, want 2", uf.Count())
	}
	comp, k := uf.Labels()
	if k != 2 {
		t.Fatalf("labels count = %d, want 2", k)
	}
	if comp[0] != comp[3] || comp[0] == comp[4] {
		t.Fatalf("bad labels %v", comp)
	}
}

func TestUnionFindProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		n := 64
		uf := NewUnionFind(n)
		type pair struct{ a, b int }
		var merged []pair
		for _, op := range ops {
			a, b := int(op)%n, int(op>>8)%n
			uf.Union(a, b)
			merged = append(merged, pair{a, b})
		}
		// Reference: naive label propagation.
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for changed := true; changed; {
			changed = false
			for _, p := range merged {
				la, lb := label[p.a], label[p.b]
				if la != lb {
					m := la
					if lb < m {
						m = lb
					}
					for i := range label {
						if label[i] == la || label[i] == lb {
							label[i] = m
						}
					}
					changed = true
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (label[i] == label[j]) != uf.Connected(i, j) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func mstWeight(g *Graph, tree []int) float64 {
	w := 0.0
	for _, id := range tree {
		w += g.Edges[id].W
	}
	return w
}

func TestMSTKruskalSimple(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 3, 10}, {0, 2, 10}})
	tree := g.MSTKruskal()
	if len(tree) != 3 {
		t.Fatalf("tree size = %d, want 3", len(tree))
	}
	if w := mstWeight(g, tree); w != 6 {
		t.Fatalf("MST weight = %v, want 6", w)
	}
}

func TestMSTBoruvkaMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(100)
		var edges []Edge
		for i := 1; i < n; i++ {
			edges = append(edges, Edge{rng.Intn(i), i, 1 + rng.Float64()*10})
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, Edge{u, v, 1 + rng.Float64()*10})
			}
		}
		g := FromEdges(n, edges)
		wk := mstWeight(g, g.MSTKruskal())
		wb := mstWeight(g, g.MSTBoruvka(nil))
		if math.Abs(wk-wb) > 1e-9 {
			t.Fatalf("trial %d: Kruskal %v vs Borůvka %v", trial, wk, wb)
		}
	}
}

func TestMSTBoruvkaForest(t *testing.T) {
	// Two disjoint triangles: MSF has 4 edges.
	g := FromEdges(6, []Edge{
		{0, 1, 1}, {1, 2, 2}, {0, 2, 3},
		{3, 4, 1}, {4, 5, 2}, {3, 5, 3},
	})
	tree := g.MSTBoruvka(nil)
	if len(tree) != 4 {
		t.Fatalf("forest size = %d, want 4", len(tree))
	}
	if w := mstWeight(g, tree); w != 6 {
		t.Fatalf("forest weight = %v, want 6", w)
	}
}

func TestMSTEqualWeights(t *testing.T) {
	// All weights equal: any spanning tree is minimal; algorithms must
	// terminate and produce n-1 edges.
	g := FromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 0, 1}, {0, 2, 1}})
	if len(g.MSTKruskal()) != 4 {
		t.Fatal("Kruskal wrong size on equal weights")
	}
	if len(g.MSTBoruvka(nil)) != 4 {
		t.Fatal("Borůvka wrong size on equal weights")
	}
}

func TestSpanningForestEdges(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}})
	forest := g.SpanningForestEdges()
	if len(forest) != 3 { // 2 for the triangle component + 1 for {3,4}
		t.Fatalf("forest size = %d, want 3", len(forest))
	}
	uf := NewUnionFind(6)
	for _, id := range forest {
		e := g.Edges[id]
		if !uf.Union(e.U, e.V) {
			t.Fatal("forest contains a cycle")
		}
	}
}

func TestDijkstraOnWeightedPath(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 2.5}, {1, 2, 0.5}, {2, 3, 1}})
	d := g.Dijkstra(0)
	want := []float64{0, 2.5, 3, 4}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	// Direct heavy edge vs two light hops.
	g := FromEdges(3, []Edge{{0, 2, 10}, {0, 1, 1}, {1, 2, 1}})
	d := g.Dijkstra(0)
	if d[2] != 2 {
		t.Fatalf("d[2] = %v, want 2", d[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}})
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("d[2] = %v, want +Inf", d[2])
	}
}

func TestDijkstraToEarlyExit(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {0, 4, 10}})
	if d := g.DijkstraTo(0, 4); d != 4 {
		t.Fatalf("DijkstraTo = %v, want 4", d)
	}
	if d := g.DijkstraTo(0, 0); d != 0 {
		t.Fatalf("DijkstraTo self = %v, want 0", d)
	}
}

func TestDijkstraBounded(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}})
	d := g.DijkstraBounded(0, 2)
	if d[2] != 2 {
		t.Fatalf("d[2] = %v, want 2", d[2])
	}
	if !math.IsInf(d[4], 1) {
		t.Fatalf("d[4] = %v, want +Inf beyond bound", d[4])
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{rng.Intn(i), i, 1})
	}
	for i := 0; i < 1000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{u, v, 1})
		}
	}
	g := FromEdges(n, edges)
	d := g.Dijkstra(0)
	bfs := g.BFS([]int{0}, -1, nil)
	for v := 0; v < n; v++ {
		if int(d[v]) != int(bfs.Dist[v]) {
			t.Fatalf("Dijkstra %v != BFS %d at %d", d[v], bfs.Dist[v], v)
		}
	}
}

func TestWeightSpread(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 2}, {1, 2, 8}})
	if s := g.WeightSpread(); s != 4 {
		t.Fatalf("spread = %v, want 4", s)
	}
	if s := FromEdges(2, nil).WeightSpread(); s != 1 {
		t.Fatalf("empty spread = %v, want 1", s)
	}
}

func TestSortEdgesByWeight(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 3}, {1, 2, 1}, {2, 3, 2}})
	idx := g.SortEdgesByWeight()
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("sorted idx = %v, want %v", idx, want)
		}
	}
}

// TestDijkstraToBufReuse drives one DistBuffer through many queries on a
// random graph and checks every answer against the full Dijkstra — stale
// epochs from earlier queries must never leak into later ones.
func TestDijkstraToBufReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 120
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: rng.Intn(i), V: i, W: 0.5 + rng.Float64()})
	}
	for k := 0; k < 80; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, W: 0.5 + 2*rng.Float64()})
		}
	}
	// A disconnected island exercises the +Inf (unreachable) path.
	g := FromEdges(n+2, append(edges, Edge{U: n, V: n + 1, W: 1}))
	buf := g.NewDistBuffer()
	for q := 0; q < 200; q++ {
		s, tt := rng.Intn(g.N), rng.Intn(g.N)
		want := g.Dijkstra(s)[tt]
		if got := g.DijkstraToBuf(buf, s, tt); got != want {
			t.Fatalf("query %d (%d->%d): got %v, want %v", q, s, tt, got, want)
		}
	}
}

// TestBuildCSRWorkerEquivalence pins the packed CSR layout across the
// worker axis: the offset-precomputed parallel scatter must reproduce the
// sequential cursor layout array-for-array.
func TestBuildCSRWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 400
	edges := make([]Edge, 9000)
	for i := range edges {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if i%17 == 0 {
			v = u // self-loops take two consecutive slots
		}
		edges[i] = Edge{U: u, V: v, W: rng.Float64()}
	}
	ref := FromEdgesW(1, n, edges)
	for _, w := range []int{0, 2, 4} {
		g := FromEdgesW(w, n, edges)
		if len(g.Off) != len(ref.Off) || len(g.Adj) != len(ref.Adj) {
			t.Fatalf("workers=%d: CSR shape differs", w)
		}
		for i := range ref.Off {
			if g.Off[i] != ref.Off[i] {
				t.Fatalf("workers=%d: Off[%d] differs", w, i)
			}
		}
		for i := range ref.Adj {
			if g.Adj[i] != ref.Adj[i] || g.Wt[i] != ref.Wt[i] || g.EdgeID[i] != ref.EdgeID[i] {
				t.Fatalf("workers=%d: half-edge %d differs", w, i)
			}
		}
	}
}
