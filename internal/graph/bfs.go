package graph

import (
	"sync"
	"sync/atomic"

	"parlap/internal/par"
	"parlap/internal/wd"
)

// BFSResult holds hop distances from a source set. Dist[v] == -1 means
// unreachable. Parent[v] is the predecessor vertex (-1 for sources and
// unreachable vertices) and ParentEdge[v] the undirected edge id used to
// reach v (-1 likewise), so BFS trees can be read off directly.
type BFSResult struct {
	Dist       []int32
	Parent     []int32
	ParentEdge []int32
	Levels     int // number of frontier expansions performed
	EdgesSeen  int // half-edges scanned (the paper's m' work term)
}

// BFS runs a level-synchronous breadth-first search from the given sources
// out to at most maxDist hops (maxDist < 0 means unbounded). Each level's
// frontier is expanded in parallel; ownership conflicts are resolved with
// CAS so the result is a valid BFS tree (parents may differ run to run, but
// distances are deterministic).
//
// The recorder, if non-nil, is charged work = half-edges scanned and
// depth = levels (the O(r log n) PRAM depth of parallel ball growing, with
// the log n broadcast factor omitted as a unit; see wd package docs).
func (g *Graph) BFS(sources []int, maxDist int, rec *wd.Recorder) *BFSResult {
	res := &BFSResult{
		Dist:       make([]int32, g.N),
		Parent:     make([]int32, g.N),
		ParentEdge: make([]int32, g.N),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
		res.ParentEdge[i] = -1
	}
	frontier := make([]int, 0, len(sources))
	for _, s := range sources {
		if res.Dist[s] < 0 {
			res.Dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	dist := int32(0)
	var edgesSeen int64
	for len(frontier) > 0 {
		if maxDist >= 0 && int(dist) >= maxDist {
			break
		}
		dist++
		next := g.expandFrontier(frontier, dist, res, &edgesSeen)
		res.Levels++
		frontier = next
	}
	res.EdgesSeen = int(edgesSeen)
	rec.Add(int64(res.EdgesSeen)+int64(len(sources)), int64(res.Levels))
	return res
}

// expandFrontier visits all half-edges out of the frontier and claims
// unvisited endpoints at distance dist. Claiming uses CompareAndSwap on the
// distance encoded as int32 via an atomic view of the slice.
func (g *Graph) expandFrontier(frontier []int, dist int32, res *BFSResult, edgesSeen *int64) []int {
	nf := len(frontier)
	if nf == 0 {
		return nil
	}
	// Small frontiers: sequential expansion avoids goroutine overhead.
	totalDeg := 0
	for _, u := range frontier {
		totalDeg += g.Off[u+1] - g.Off[u]
	}
	*edgesSeen += int64(totalDeg)
	if totalDeg < par.SequentialThreshold {
		var next []int
		for _, u := range frontier {
			for i := g.Off[u]; i < g.Off[u+1]; i++ {
				v := g.Adj[i]
				if res.Dist[v] < 0 {
					res.Dist[v] = dist
					res.Parent[v] = int32(u)
					res.ParentEdge[v] = int32(g.EdgeID[i])
					next = append(next, v)
				}
			}
		}
		return next
	}
	numChunks := par.Workers() * 4
	if numChunks > nf {
		numChunks = nf
	}
	chunk := (nf + numChunks - 1) / numChunks
	numChunks = (nf + chunk - 1) / chunk
	locals := make([][]int, numChunks)
	var wg sync.WaitGroup
	for c := 0; c < numChunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > nf {
			hi = nf
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var local []int
			for fi := lo; fi < hi; fi++ {
				u := frontier[fi]
				for i := g.Off[u]; i < g.Off[u+1]; i++ {
					v := g.Adj[i]
					if atomic.LoadInt32(&res.Dist[v]) < 0 &&
						atomic.CompareAndSwapInt32(&res.Dist[v], -1, dist) {
						res.Parent[v] = int32(u)
						res.ParentEdge[v] = int32(g.EdgeID[i])
						local = append(local, v)
					}
				}
			}
			locals[c] = local
		}(c, lo, hi)
	}
	wg.Wait()
	var next []int
	for _, l := range locals {
		next = append(next, l...)
	}
	return next
}

// Eccentricity returns the maximum hop distance from s to any reachable
// vertex.
func (g *Graph) Eccentricity(s int) int {
	res := g.BFS([]int{s}, -1, nil)
	ecc := 0
	for _, d := range res.Dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}
