package gen

import (
	"math"
	"testing"

	"parlap/internal/graph"
)

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4)
	if g.N != 12 {
		t.Fatalf("N = %d, want 12", g.N)
	}
	// 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(2, 3, 4)
	if g.N != 24 {
		t.Fatalf("N = %d, want 24", g.N)
	}
	// Edges: x-dir (2-1)*3*4=12, y-dir 2*(3-1)*4=16, z-dir 2*3*(4-1)=18.
	if g.M() != 46 {
		t.Fatalf("M = %d, want 46", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("3d grid not connected")
	}
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(4, 5)
	if g.N != 20 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M() != 40 { // 2 edges per vertex
		t.Fatalf("M = %d, want 40", g.M())
	}
	// Torus is vertex-transitive with degree 4.
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestPathCycleStar(t *testing.T) {
	if g := Path(10); g.M() != 9 || !g.IsConnected() {
		t.Fatal("bad path")
	}
	if g := Cycle(10); g.M() != 10 || !g.IsConnected() {
		t.Fatal("bad cycle")
	}
	g := Star(10)
	if g.M() != 9 || g.Degree(0) != 9 {
		t.Fatal("bad star")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("M = %d, want 15", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("degree = %d", g.Degree(v))
		}
	}
}

func TestWheel(t *testing.T) {
	g := Wheel(7) // hub + 6 rim
	if g.N != 7 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Degree(0) != 6 {
		t.Fatalf("hub degree = %d, want 6", g.Degree(0))
	}
	for v := 1; v < 7; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("rim degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
}

func TestGNPConnectedAndDeterministic(t *testing.T) {
	g1 := GNP(200, 0.05, 7)
	g2 := GNP(200, 0.05, 7)
	if g1.M() != g2.M() {
		t.Fatal("GNP not deterministic for fixed seed")
	}
	if !g1.IsConnected() {
		t.Fatal("GNP should be connected by construction")
	}
	if GNP(200, 0.05, 8).M() == g1.M() {
		// Different seeds can collide in edge count but the graphs should
		// not be identical edge-by-edge; check a weaker distinctness.
		same := true
		g3 := GNP(200, 0.05, 8)
		for i := range g1.Edges {
			if i >= len(g3.Edges) || g1.Edges[i] != g3.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
	// Density sanity: expected edges ≈ n + C(n,2)p.
	expect := 200.0 + 0.05*199*200/2
	if math.Abs(float64(g1.M())-expect) > expect/2 {
		t.Fatalf("GNP edge count %d far from expectation %v", g1.M(), expect)
	}
}

func TestGNPNoDuplicateEdges(t *testing.T) {
	g := GNP(100, 0.1, 3)
	seen := make(map[[2]int]bool)
	for _, e := range g.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if u == v {
			t.Fatal("self loop in GNP")
		}
		if seen[[2]int{u, v}] {
			t.Fatalf("duplicate edge (%d,%d)", u, v)
		}
		seen[[2]int{u, v}] = true
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(100, 4, 5)
	if g.N != 100 {
		t.Fatalf("N = %d", g.N)
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > 4 {
			t.Fatalf("degree(%d) = %d exceeds 4", v, g.Degree(v))
		}
	}
	// With two permutation cycles nearly all degrees should be 4.
	deg4 := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) == 4 {
			deg4++
		}
	}
	if deg4 < 90 {
		t.Fatalf("only %d vertices have full degree", deg4)
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 3)
	if !g.IsConnected() {
		t.Fatal("barbell not connected")
	}
	// Two K5 (10 edges each) + path of 3 edges.
	if g.M() != 23 {
		t.Fatalf("M = %d, want 23", g.M())
	}
}

func TestPathOfCliques(t *testing.T) {
	g := PathOfCliques(4, 3)
	if g.N != 12 {
		t.Fatalf("N = %d", g.N)
	}
	// 3 cliques of 6 edges + 2 connectors.
	if g.M() != 20 {
		t.Fatalf("M = %d, want 20", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("not connected")
	}
}

func TestWithUniformWeights(t *testing.T) {
	g := WithUniformWeights(Path(100), 2, 5, 9)
	for _, e := range g.Edges {
		if e.W < 2 || e.W >= 5 {
			t.Fatalf("weight %v out of [2,5)", e.W)
		}
	}
	// Determinism.
	g2 := WithUniformWeights(Path(100), 2, 5, 9)
	for i := range g.Edges {
		if g.Edges[i].W != g2.Edges[i].W {
			t.Fatal("weights not deterministic")
		}
	}
}

func TestWithExponentialWeights(t *testing.T) {
	g := WithExponentialWeights(Path(1000), 2, 5, 4)
	seen := make(map[float64]int)
	for _, e := range g.Edges {
		seen[e.W]++
	}
	if len(seen) != 5 {
		t.Fatalf("weight classes = %d, want 5", len(seen))
	}
	for w := range seen {
		k := math.Log2(w)
		if math.Abs(k-math.Round(k)) > 1e-12 {
			t.Fatalf("weight %v is not a power of 2", w)
		}
	}
}

func TestGeneratorsValidate(t *testing.T) {
	gs := []*graph.Graph{
		Grid2D(5, 5), Grid3D(3, 3, 3), Torus2D(4, 4), Path(10), Cycle(10),
		Star(10), Complete(5), Wheel(8), GNP(50, 0.1, 1),
		RandomRegular(50, 4, 1), Barbell(4, 2), PathOfCliques(3, 4),
	}
	for i, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
	}
}
