// Package gen constructs the benchmark graph families used across the
// experiment suite: meshes, random graphs, and pathological families from
// the solver literature. All generators are deterministic given their
// arguments (random families take an explicit seed).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"parlap/internal/graph"
)

// Grid2D returns the rows×cols 4-neighbor grid with unit weights.
// Vertex (r, c) has index r*cols + c.
func Grid2D(rows, cols int) *graph.Graph {
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: v, V: v + 1, W: 1})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: v, V: v + cols, W: 1})
			}
		}
	}
	return graph.FromEdges(rows*cols, edges)
}

// Grid3D returns the x×y×z 6-neighbor grid with unit weights.
func Grid3D(x, y, z int) *graph.Graph {
	idx := func(i, j, k int) int { return (i*y+j)*z + k }
	var edges []graph.Edge
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				v := idx(i, j, k)
				if k+1 < z {
					edges = append(edges, graph.Edge{U: v, V: idx(i, j, k+1), W: 1})
				}
				if j+1 < y {
					edges = append(edges, graph.Edge{U: v, V: idx(i, j+1, k), W: 1})
				}
				if i+1 < x {
					edges = append(edges, graph.Edge{U: v, V: idx(i+1, j, k), W: 1})
				}
			}
		}
	}
	return graph.FromEdges(x*y*z, edges)
}

// Torus2D returns the rows×cols grid with wraparound edges.
func Torus2D(rows, cols int) *graph.Graph {
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			edges = append(edges, graph.Edge{U: v, V: r*cols + (c+1)%cols, W: 1})
			edges = append(edges, graph.Edge{U: v, V: ((r+1)%rows)*cols + c, W: 1})
		}
	}
	return graph.FromEdges(rows*cols, edges)
}

// Path returns the n-vertex path with unit weights.
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	return graph.FromEdges(n, edges)
}

// Cycle returns the n-vertex cycle with unit weights.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: (i + 1) % n, W: 1})
	}
	return graph.FromEdges(n, edges)
}

// Star returns the n-vertex star centered at vertex 0.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: 1})
	}
	return graph.FromEdges(n, edges)
}

// Complete returns K_n with unit weights.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: 1})
		}
	}
	return graph.FromEdges(n, edges)
}

// Wheel returns a cycle on vertices 1..n-1 plus a hub (vertex 0) connected
// to every rim vertex.
func Wheel(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: 1})
		next := i + 1
		if next == n {
			next = 1
		}
		if next != i {
			edges = append(edges, graph.Edge{U: i, V: next, W: 1})
		}
	}
	return graph.FromEdges(n, edges)
}

// GNP returns an Erdős–Rényi G(n, p) graph with unit weights, conditioned
// to be connected by adding a random spanning path over a permutation first
// (a standard trick that preserves the degree profile for p ≫ 1/n while
// guaranteeing connectivity for solver benchmarks).
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	var edges []graph.Edge
	seen := make(map[[2]int]bool)
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
	}
	for i := 0; i+1 < n; i++ {
		addEdge(perm[i], perm[i+1])
	}
	// Batagelj–Brandes geometric skipping: enumerate pairs (u, v) with
	// v < u in O(n²p) expected work. Row u has u candidate partners.
	if p > 0 {
		logq := math.Log1p(-p)
		u, v := 1, -1
		for u < n {
			skip := 1
			if p < 1 {
				skip = 1 + int(math.Log(1-rng.Float64())/logq)
			}
			v += skip
			for u < n && v >= u {
				v -= u
				u++
			}
			if u < n {
				addEdge(u, v)
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// RandomRegular returns an approximately d-regular graph built from d/2
// random permutation cycles (d must be even). Multi-edges are dropped, so
// degrees can be slightly below d.
func RandomRegular(n, d int, seed int64) *graph.Graph {
	if d%2 != 0 {
		d++
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool)
	var edges []graph.Edge
	for r := 0; r < d/2; r++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u, v := perm[i], perm[(i+1)%n]
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	return graph.FromEdges(n, edges)
}

// PreferentialAttachment returns a Barabási–Albert graph: vertices arrive
// one at a time and attach m unit-weight edges to existing vertices chosen
// proportionally to degree (the repeated-endpoint trick: sampling a uniform
// endpoint of the current edge multiset is degree-proportional sampling).
// The result is connected with a heavy-tailed degree profile — the "hub"
// regime where grid intuition fails and solver scaling benchmarks need a
// separate data point.
func PreferentialAttachment(n, m int, seed int64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// endpoints flattens the running edge list; its length is 2·edges and a
	// uniform sample from it is a degree-proportional vertex.
	endpoints := make([]int, 0, 2*m*n)
	var edges []graph.Edge
	seen := make(map[[2]int]bool)
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		endpoints = append(endpoints, u, v)
	}
	// Seed clique on the first min(m+1, n) vertices.
	core := m + 1
	if core > n {
		core = n
	}
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			addEdge(i, j)
		}
	}
	for v := core; v < n; v++ {
		for t := 0; t < m; t++ {
			u := endpoints[rng.Intn(len(endpoints))]
			addEdge(v, u)
		}
	}
	return graph.FromEdges(n, edges)
}

// Barbell returns two K_k cliques joined by a path of length pathLen.
func Barbell(k, pathLen int) *graph.Graph {
	var edges []graph.Edge
	n := 2*k + pathLen - 1
	clique := func(base int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
	}
	clique(0)
	// Path from vertex k-1 through pathLen-1 intermediates to the second
	// clique's vertex 0.
	prev := k - 1
	for i := 0; i < pathLen-1; i++ {
		edges = append(edges, graph.Edge{U: prev, V: k + i, W: 1})
		prev = k + i
	}
	secondBase := k + pathLen - 1
	edges = append(edges, graph.Edge{U: prev, V: secondBase, W: 1})
	clique(secondBase)
	return graph.FromEdges(n, edges)
}

// WithUniformWeights returns a copy of g with edge weights drawn uniformly
// from [lo, hi).
func WithUniformWeights(g *graph.Graph, lo, hi float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = graph.Edge{U: e.U, V: e.V, W: lo + rng.Float64()*(hi-lo)}
	}
	return graph.FromEdges(g.N, edges)
}

// WithExponentialWeights returns a copy of g whose edge weights are z^k for
// k drawn uniformly from {0, ..., classes-1}: the multi-weight-class regime
// that exercises the AKPW bucketing and the well-spacing transform.
func WithExponentialWeights(g *graph.Graph, z float64, classes int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, len(g.Edges))
	for i, e := range g.Edges {
		k := rng.Intn(classes)
		edges[i] = graph.Edge{U: e.U, V: e.V, W: math.Pow(z, float64(k))}
	}
	return graph.FromEdges(g.N, edges)
}

// PathOfCliques returns count cliques of size k strung on a path: a
// moderately ill-conditioned family where low-stretch structure matters.
func PathOfCliques(k, count int) *graph.Graph {
	var edges []graph.Edge
	for c := 0; c < count; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
		if c+1 < count {
			edges = append(edges, graph.Edge{U: base + k - 1, V: base + k, W: 1})
		}
	}
	return graph.FromEdges(k*count, edges)
}

// FromSpec builds a graph from a compact textual spec, shared by the CLI
// tools:
//
//	grid2d:RxC    grid3d:XxYxZ    torus:RxC    path:N    cycle:N
//	gnp:N:P       regular:N:D     cliques:K:COUNT    pa:N:M
//
// Random families use the given seed.
func FromSpec(spec string, seed int64) (*graph.Graph, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("gen: bad spec %q (want kind:args)", spec)
	}
	kind, arg := parts[0], parts[1]
	dims := func(want int) ([]int, error) {
		fields := strings.Split(arg, "x")
		if len(fields) != want {
			return nil, fmt.Errorf("gen: %q wants %d dimensions, got %q", kind, want, arg)
		}
		out := make([]int, want)
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("gen: bad dimension %q", f)
			}
			out[i] = v
		}
		return out, nil
	}
	intArg := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("gen: bad count %q", s)
		}
		return v, nil
	}
	switch kind {
	case "grid2d":
		d, err := dims(2)
		if err != nil {
			return nil, err
		}
		return Grid2D(d[0], d[1]), nil
	case "grid3d":
		d, err := dims(3)
		if err != nil {
			return nil, err
		}
		return Grid3D(d[0], d[1], d[2]), nil
	case "torus":
		d, err := dims(2)
		if err != nil {
			return nil, err
		}
		return Torus2D(d[0], d[1]), nil
	case "path":
		n, err := intArg(arg)
		if err != nil {
			return nil, err
		}
		return Path(n), nil
	case "cycle":
		n, err := intArg(arg)
		if err != nil {
			return nil, err
		}
		return Cycle(n), nil
	case "gnp":
		fields := strings.Split(arg, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("gen: gnp wants N:P, got %q", arg)
		}
		n, err := intArg(fields[0])
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("gen: bad gnp probability %q", fields[1])
		}
		return GNP(n, p, seed), nil
	case "regular":
		fields := strings.Split(arg, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("gen: regular wants N:D, got %q", arg)
		}
		n, err := intArg(fields[0])
		if err != nil {
			return nil, err
		}
		d, err := intArg(fields[1])
		if err != nil {
			return nil, err
		}
		return RandomRegular(n, d, seed), nil
	case "pa":
		fields := strings.Split(arg, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("gen: pa wants N:M, got %q", arg)
		}
		n, err := intArg(fields[0])
		if err != nil {
			return nil, err
		}
		m, err := intArg(fields[1])
		if err != nil {
			return nil, err
		}
		return PreferentialAttachment(n, m, seed), nil
	case "cliques":
		fields := strings.Split(arg, ":")
		if len(fields) != 2 {
			return nil, fmt.Errorf("gen: cliques wants K:COUNT, got %q", arg)
		}
		k, err := intArg(fields[0])
		if err != nil {
			return nil, err
		}
		c, err := intArg(fields[1])
		if err != nil {
			return nil, err
		}
		return PathOfCliques(k, c), nil
	default:
		return nil, fmt.Errorf("gen: unknown generator %q", kind)
	}
}
