package gen

import (
	"testing"
)

func TestFromSpecValid(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"grid2d:4x5", 20},
		{"grid3d:2x3x4", 24},
		{"torus:3x3", 9},
		{"path:7", 7},
		{"cycle:8", 8},
		{"gnp:50:0.1", 50},
		{"regular:30:4", 30},
		{"cliques:3:5", 15},
	}
	for _, c := range cases {
		g, err := FromSpec(c.spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.N != c.n {
			t.Fatalf("%s: n=%d, want %d", c.spec, g.N, c.n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
	}
}

func TestFromSpecInvalid(t *testing.T) {
	for _, spec := range []string{
		"", "grid2d", "grid2d:4", "grid2d:4x5x6", "grid2d:0x5", "grid2d:axb",
		"gnp:50", "gnp:50:2", "gnp:x:0.1", "regular:30", "cliques:3",
		"nosuch:1x1", "path:0", "path:-3",
	} {
		if _, err := FromSpec(spec, 1); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

func TestFromSpecSeedDeterminism(t *testing.T) {
	a, _ := FromSpec("gnp:100:0.05", 7)
	b, _ := FromSpec("gnp:100:0.05", 7)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}
