package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Expo writes Prometheus text exposition format (version 0.0.4) by hand —
// no client library, no registry. The caller drives the order, so output is
// deterministic: Header once per metric family, then one Sample per series.
type Expo struct {
	w   *bufio.Writer
	err error
}

// NewExpo wraps w. Call Flush when done; the first write error is sticky
// and returned there.
func NewExpo(w io.Writer) *Expo { return &Expo{w: bufio.NewWriter(w)} }

// Label is one exposition label pair.
type Label struct{ K, V string }

// Header emits the # HELP / # TYPE preamble for a metric family.
// typ is "counter", "gauge" or "histogram".
func (e *Expo) Header(name, help, typ string) {
	e.ws("# HELP ", name, " ", help, "\n# TYPE ", name, " ", typ, "\n")
}

// Sample emits one series sample. Labels may be nil.
func (e *Expo) Sample(name string, labels []Label, v float64) {
	e.ws(name)
	e.labels(labels)
	e.ws(" ", formatFloat(v), "\n")
}

// Int emits one integer-valued series sample.
func (e *Expo) Int(name string, labels []Label, v int64) {
	e.ws(name)
	e.labels(labels)
	e.ws(" ", strconv.FormatInt(v, 10), "\n")
}

// Histogram emits a full histogram family body (le-bucketed cumulative
// counts on the fixed PromBoundsSeconds ladder, plus _sum and _count) for a
// nanosecond-sample snapshot, converting to seconds. Header must have been
// written by the caller (type "histogram"); extra labels are appended to
// every series.
func (e *Expo) Histogram(name string, labels []Label, s Snapshot) {
	boundsNS := make([]int64, len(PromBoundsSeconds))
	for i, b := range PromBoundsSeconds {
		boundsNS[i] = int64(b * 1e9)
	}
	cum := s.CumulativeNS(boundsNS)
	lbls := make([]Label, len(labels)+1)
	copy(lbls, labels)
	for i, b := range PromBoundsSeconds {
		lbls[len(labels)] = Label{"le", formatFloat(b)}
		e.Int(name+"_bucket", lbls, cum[i])
	}
	lbls[len(labels)] = Label{"le", "+Inf"}
	e.Int(name+"_bucket", lbls, s.Count)
	e.Sample(name+"_sum", labels, float64(s.Sum)/1e9)
	e.Int(name+"_count", labels, s.Count)
}

// Flush flushes the buffered output and returns the first error seen.
func (e *Expo) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *Expo) ws(parts ...string) {
	if e.err != nil {
		return
	}
	for _, p := range parts {
		if _, err := e.w.WriteString(p); err != nil {
			e.err = err
			return
		}
	}
}

func (e *Expo) labels(labels []Label) {
	if len(labels) == 0 {
		return
	}
	e.ws("{")
	for i, l := range labels {
		if i > 0 {
			e.ws(",")
		}
		e.ws(l.K, `="`, escapeLabel(l.V), `"`)
	}
	e.ws("}")
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the shortest round-trip way (matching how
// Prometheus itself formats, e.g. "0.0001" not "1e-04").
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
