package obs

import (
	"math"
	"sync"
	"testing"
)

// Bucket boundaries: every bucket is [BucketLower(i), BucketUpper(i)), the
// sequence tiles [0, MaxInt64] monotonically, and bucketIndex agrees with
// the bounds at and on either side of every boundary.
func TestBucketBoundaries(t *testing.T) {
	if BucketLower(0) != 0 {
		t.Fatalf("BucketLower(0) = %d, want 0", BucketLower(0))
	}
	for i := 0; i < numBuckets-1; i++ {
		lo, hi := BucketLower(i), BucketUpper(i)
		if hi <= lo {
			t.Fatalf("bucket %d: empty range [%d, %d)", i, lo, hi)
		}
		if got := BucketLower(i + 1); got != hi {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d", i, hi, i+1, got)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d (lower bound)", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Fatalf("bucketIndex(%d) = %d, want %d (last value)", hi-1, got, i)
		}
		if got := bucketIndex(hi); got != i+1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d (next bucket)", hi, got, i+1)
		}
	}
	if got := bucketIndex(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", got, numBuckets-1)
	}
}

func TestObserveCountsAndExtremes(t *testing.T) {
	var h Histogram
	samples := []int64{0, 1, 3, 4, 5, 100, 1_000, 1_000_000, 123_456_789, -7}
	var wantSum int64
	for _, v := range samples {
		h.Observe(v)
		if v < 0 {
			v = 0
		}
		wantSum += v
	}
	s := h.Snapshot()
	if s.Count != int64(len(samples)) {
		t.Fatalf("count %d, want %d", s.Count, len(samples))
	}
	if s.Sum != wantSum {
		t.Fatalf("sum %d, want %d", s.Sum, wantSum)
	}
	if s.Min != 0 || s.Max != 123_456_789 {
		t.Fatalf("min/max = %d/%d, want 0/123456789", s.Min, s.Max)
	}
	var bucketed int64
	for _, c := range s.Buckets {
		bucketed += c
	}
	if bucketed != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketed, s.Count)
	}
	// Each sample landed in the bucket whose range contains it.
	for _, v := range samples {
		if v < 0 {
			v = 0
		}
		i := bucketIndex(v)
		if s.Buckets[i] == 0 {
			t.Fatalf("sample %d: bucket %d [%d,%d) empty", v, i, BucketLower(i), BucketUpper(i))
		}
	}
}

// Concurrent recording across shards must lose nothing on merge.
func TestConcurrentRecordMerge(t *testing.T) {
	var h Histogram
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG+i) * 37)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("count %d, want %d", s.Count, want)
	}
	n := int64(goroutines * perG)
	if want := 37 * n * (n - 1) / 2; s.Sum != want {
		t.Fatalf("sum %d, want %d", s.Sum, want)
	}
	if s.Max != 37*(n-1) || s.Min != 0 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, 37*(n-1))
	}
}

// Quantiles of a uniform sample must land within the containing bucket's
// relative error (one quarter-octave, ~25%).
func TestQuantileEstimates(t *testing.T) {
	var h Histogram
	const n = 100_000
	for i := 1; i <= n; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := float64(s.Quantile(q))
		want := q * n
		if rel := math.Abs(got-want) / want; rel > 0.26 {
			t.Fatalf("q%.2f = %.0f, want ~%.0f (rel err %.3f > 0.26)", q, got, want, rel)
		}
	}
	if got := s.Quantile(1); got != s.Max {
		t.Fatalf("q1 = %d, want max %d", got, s.Max)
	}
	var empty Snapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
}

// A single-valued histogram must report that value at every quantile.
func TestQuantileSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(12_345)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 12_345 {
			t.Fatalf("q%g = %d, want 12345", q, got)
		}
	}
}

// The record path must be allocation-free: it is called from inside the
// solver's zero-alloc apply path accounting.
func TestObserveZeroAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(98_765)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f objects/op, want 0", allocs)
	}
}

// CumulativeNS: counts are cumulative over the bound ladder and bounded by
// Count, with straddling buckets attributed upward (conservative).
func TestCumulative(t *testing.T) {
	var h Histogram
	h.Observe(50_000)      // 50µs: internal bucket well under 100µs
	h.Observe(150_000)     // 150µs: ≤ 250µs bound
	h.Observe(2_000_000)   // 2ms: ≤ 2.5ms bound
	h.Observe(30_000_000_000) // 30s: beyond the ladder → only +Inf
	s := h.Snapshot()
	boundsNS := make([]int64, len(PromBoundsSeconds))
	for i, b := range PromBoundsSeconds {
		boundsNS[i] = int64(b * 1e9)
	}
	cum := s.CumulativeNS(boundsNS)
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decreased at bound %d: %v", i, cum)
		}
	}
	if last := cum[len(cum)-1]; last != 3 {
		t.Fatalf("ladder total %d, want 3 (the 30s sample is +Inf-only)", last)
	}
	if cum[0] != 1 { // only the 50µs sample fits ≤ 100µs
		t.Fatalf("first bound count %d, want 1 (%v)", cum[0], cum)
	}
}
