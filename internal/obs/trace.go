package obs

// SolveTrace is the fixed-slot stage timer one solve (or one streaming
// window) carries through the serving path: where the request's wall time
// went, from admission queue to the per-level chain kernels. It is a plain
// value with fixed-size arrays — embedding it in a pooled per-solve
// workspace costs zero allocations, and copying it out to a caller is a
// struct assignment. All fields are nanoseconds unless noted.
//
// Attribution is exclusive within the preconditioner: ChebNS[i] counts level
// i's Chebyshev vector kernels and mat-vecs but NOT the recursive
// preconditioner applications it makes (those land in the deeper levels'
// slots), FwdNS/BackNS count level i's elimination replay and
// back-substitution, and BottomNS the dense bottom solves — so
// ΣCheb + ΣFwd + ΣBack + Bottom ≈ PrecondNS, and the per-stage series
// partition the apply time instead of double-counting the recursion.
type SolveTrace struct {
	// QueueNS is time spent waiting in the solve admission queue (filled by
	// the serving layer, not the solver).
	QueueNS int64
	// WorkspaceNS is the pooled-workspace acquire (and lazy growth) time.
	WorkspaceNS int64
	// OuterNS is the outer PCG driver's total wall time, INCLUDING the
	// preconditioner applications it makes; OuterNS − PrecondNS is the
	// driver's own mat-vec/dot/axpy time.
	OuterNS int64
	// PrecondNS is the total time inside whole-chain preconditioner
	// applications.
	PrecondNS int64
	// BottomNS is the total time in dense bottom-level direct solves.
	BottomNS int64
	// TotalNS is the end-to-end request time (filled by the serving layer).
	TotalNS int64
	// ChebNS, FwdNS and BackNS are per-chain-level totals (level 0 = top);
	// chains deeper than TraceLevels fold the excess into the last slot.
	ChebNS [TraceLevels]int64
	FwdNS  [TraceLevels]int64
	BackNS [TraceLevels]int64
	// Levels is the chain depth the solve ran against (may exceed
	// TraceLevels, in which case the arrays are folded).
	Levels int
}

// TraceLevels is the number of per-level slots; chains are depth ≤ 12 by
// construction (ChainParams.MaxLevels), so folding never triggers in
// practice.
const TraceLevels = 16

// LevelIndex clamps a chain level to a trace slot.
func LevelIndex(level int) int {
	if level >= TraceLevels {
		return TraceLevels - 1
	}
	return level
}

// Reset zeroes the trace in place (no allocation).
func (t *SolveTrace) Reset() { *t = SolveTrace{} }

// Stage enumerates the serving path's timed stages.
type Stage int

const (
	StageQueue     Stage = iota // admission queue wait
	StageWorkspace              // pooled workspace acquire
	StagePCG                    // outer PCG driver, excluding preconditioner applications
	StagePrecond                // whole-chain preconditioner applications (inclusive)
	StageCheb                   // per-level Chebyshev sweeps, summed (exclusive of recursion)
	StageForward                // elimination forward replays, summed
	StageBack                   // elimination back-substitutions, summed
	StageBottom                 // dense bottom direct solves
	StageTotal                  // end-to-end request time
	NumStages
)

var stageNames = [NumStages]string{
	"queue", "workspace", "pcg", "precond", "cheb", "forward", "back",
	"bottom", "total",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage in exposition order.
func Stages() [NumStages]Stage {
	var out [NumStages]Stage
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageNS aggregates the trace's time for one stage (see the Stage
// constants for semantics). StagePCG subtracts the preconditioner time from
// the outer driver so the top-level stages partition TotalNS − QueueNS
// (up to timer skew).
func (t *SolveTrace) StageNS(s Stage) int64 {
	switch s {
	case StageQueue:
		return t.QueueNS
	case StageWorkspace:
		return t.WorkspaceNS
	case StagePCG:
		if d := t.OuterNS - t.PrecondNS; d > 0 {
			return d
		}
		return 0
	case StagePrecond:
		return t.PrecondNS
	case StageCheb:
		return sumLevels(&t.ChebNS)
	case StageForward:
		return sumLevels(&t.FwdNS)
	case StageBack:
		return sumLevels(&t.BackNS)
	case StageBottom:
		return t.BottomNS
	case StageTotal:
		return t.TotalNS
	}
	return 0
}

func sumLevels(a *[TraceLevels]int64) int64 {
	var s int64
	for _, v := range a {
		s += v
	}
	return s
}
