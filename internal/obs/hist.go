// Package obs is the telemetry layer: log-bucketed latency histograms with
// lock-free sharded atomic recording, fixed-slot per-solve stage traces, and
// a hand-rolled Prometheus text exposition writer. Everything is stdlib-only
// and allocation-free on the record path, so the solver's zero-alloc
// steady-state apply path can carry stage timers and the serving layer can
// observe every solve without perturbing either arithmetic (telemetry never
// touches data values) or the allocation wall.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the sub-bucket resolution: 1<<subBits sub-buckets per
	// power of two, so bucket boundaries are at most 2^(1/4)·~1.25× apart —
	// quantile estimates are within ~25% of the true value by construction.
	subBits  = 2
	subCount = 1 << subBits
	// numBuckets covers the full non-negative int64 nanosecond range:
	// values 0..subCount-1 get unit buckets, then subCount sub-buckets per
	// remaining octave.
	numBuckets = subCount + (63-subBits)*subCount
	// numShards spreads concurrent recording across independent counter
	// arrays (merged only at scrape time). The shard is picked by hashing
	// the recorded value itself — no shared round-robin state, so two
	// concurrent Observe calls rarely touch the same cache lines.
	numShards = 8
)

// shard is one independently updated counter set.
type shard struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (latencies in nanoseconds, by convention). The zero value is ready to use.
// Observe is lock-free and allocation-free; Snapshot merges the shards into
// a consistent-enough view for exposition and quantile estimation.
type Histogram struct {
	shards [numShards]shard
	max    atomic.Int64
	// minPlus1 stores min+1 so the zero value means "no samples yet"
	// (a recorded 0 is then stored as 1).
	minPlus1 atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBits
	sub := int(v>>(uint(exp)-subBits)) & (subCount - 1)
	return ((exp - subBits + 1) << subBits) | sub
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	e := i >> subBits // exp - subBits + 1
	s := i & (subCount - 1)
	return int64(subCount+s) << uint(e-1)
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i+1 >= numBuckets {
		return math.MaxInt64
	}
	return BucketLower(i + 1)
}

// shardOf hashes the sample value to a shard. Multiplying by a 64-bit odd
// constant (Fibonacci hashing) spreads consecutive nanosecond timestamps
// across shards without any shared state.
func shardOf(v int64) int {
	return int((uint64(v) * 0x9E3779B97F4A7C15) >> (64 - 3))
}

// Observe records one sample. Negative samples clamp to zero (a latency
// measured across a clock step). Safe for any number of concurrent callers;
// performs zero heap allocations.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	sh := &h.shards[shardOf(v)]
	sh.count.Add(1)
	sh.sum.Add(v)
	sh.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.minPlus1.Load()
		if (old != 0 && v+1 >= old) || h.minPlus1.CompareAndSwap(old, v+1) {
			break
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Nanoseconds()) }

// Snapshot is a merged, point-in-time view of a Histogram.
type Snapshot struct {
	Count   int64
	Sum     int64
	Min     int64 // 0 when Count == 0
	Max     int64
	Buckets [numBuckets]int64
}

// Snapshot merges the shards. Concurrent Observe calls may or may not be
// included — each sample is internally consistent in Count/Sum/Buckets up to
// the usual scrape-time skew of one in-flight update.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		for b := range sh.buckets {
			if c := sh.buckets[b].Load(); c != 0 {
				s.Buckets[b] += c
			}
		}
	}
	s.Max = h.max.Load()
	if mp := h.minPlus1.Load(); mp > 0 {
		s.Min = mp - 1
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) in sample units by
// linear interpolation inside the containing log bucket, clamped to the
// observed min/max. Returns 0 when the snapshot is empty.
func (s *Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		c := s.Buckets[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum < target {
			continue
		}
		lo, hi := BucketLower(i), BucketUpper(i)
		if hi > s.Max+1 {
			hi = s.Max + 1
		}
		if lo < s.Min {
			lo = s.Min
		}
		frac := float64(target-(cum-c)) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		if v > s.Max {
			v = s.Max
		}
		if v < s.Min {
			v = s.Min
		}
		return v
	}
	return s.Max
}

// Mean returns the mean sample, 0 when empty.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// PromBoundsSeconds are the fixed latency bucket boundaries (seconds) used
// for Prometheus exposition of nanosecond histograms: a 1-2.5-5 ladder from
// 100µs to 10s. Internal recording keeps finer (quarter-octave) resolution
// for quantiles; exposition collapses onto this fixed ladder so the series
// boundaries never change between scrapes. A sample whose internal bucket
// straddles a boundary is attributed to the next bucket up (a conservative
// overestimate of at most one quarter-octave).
var PromBoundsSeconds = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CumulativeNS returns, for each bound (in nanoseconds), the number of
// samples whose internal bucket lies entirely at or below it. The final
// +Inf bucket is Count.
func (s *Snapshot) CumulativeNS(boundsNS []int64) []int64 {
	out := make([]int64, len(boundsNS))
	for i := 0; i < numBuckets; i++ {
		c := s.Buckets[i]
		if c == 0 {
			continue
		}
		upper := BucketUpper(i) - 1 // largest value the bucket can hold
		for bi, bound := range boundsNS {
			if upper <= bound {
				out[bi] += c
				break
			}
		}
	}
	// Make cumulative.
	for bi := 1; bi < len(out); bi++ {
		out[bi] += out[bi-1]
	}
	return out
}
