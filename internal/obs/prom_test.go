package obs

import (
	"strings"
	"testing"
)

// Golden exposition: a counter, a gauge with labels, and a histogram with
// known samples must render byte-for-byte to the Prometheus text format.
func TestExpoGolden(t *testing.T) {
	var h Histogram
	h.Observe(50_000)    // 50µs  → ≤ 0.0001 bucket
	h.Observe(2_000_000) // 2ms   → ≤ 0.0025 bucket
	h.Observe(2_000_000)

	var b strings.Builder
	e := NewExpo(&b)
	e.Header("parlap_solves_total", "Solve requests served.", "counter")
	e.Int("parlap_solves_total", nil, 42)
	e.Header("parlap_cache_bytes", "Estimated cached chain bytes.", "gauge")
	e.Int("parlap_cache_bytes", []Label{{"tier", "hot"}}, 1024)
	e.Header("parlap_solve_duration_seconds", "End-to-end solve latency.", "histogram")
	e.Histogram("parlap_solve_duration_seconds", nil, h.Snapshot())
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	want := `# HELP parlap_solves_total Solve requests served.
# TYPE parlap_solves_total counter
parlap_solves_total 42
# HELP parlap_cache_bytes Estimated cached chain bytes.
# TYPE parlap_cache_bytes gauge
parlap_cache_bytes{tier="hot"} 1024
# HELP parlap_solve_duration_seconds End-to-end solve latency.
# TYPE parlap_solve_duration_seconds histogram
parlap_solve_duration_seconds_bucket{le="0.0001"} 1
parlap_solve_duration_seconds_bucket{le="0.00025"} 1
parlap_solve_duration_seconds_bucket{le="0.0005"} 1
parlap_solve_duration_seconds_bucket{le="0.001"} 1
parlap_solve_duration_seconds_bucket{le="0.0025"} 3
parlap_solve_duration_seconds_bucket{le="0.005"} 3
parlap_solve_duration_seconds_bucket{le="0.01"} 3
parlap_solve_duration_seconds_bucket{le="0.025"} 3
parlap_solve_duration_seconds_bucket{le="0.05"} 3
parlap_solve_duration_seconds_bucket{le="0.1"} 3
parlap_solve_duration_seconds_bucket{le="0.25"} 3
parlap_solve_duration_seconds_bucket{le="0.5"} 3
parlap_solve_duration_seconds_bucket{le="1"} 3
parlap_solve_duration_seconds_bucket{le="2.5"} 3
parlap_solve_duration_seconds_bucket{le="5"} 3
parlap_solve_duration_seconds_bucket{le="10"} 3
parlap_solve_duration_seconds_bucket{le="+Inf"} 3
parlap_solve_duration_seconds_sum 0.00405
parlap_solve_duration_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestEscapeLabel(t *testing.T) {
	var b strings.Builder
	e := NewExpo(&b)
	e.Int("m", []Label{{"k", "a\"b\\c\nd"}}, 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "m{k=\"a\\\"b\\\\c\\nd\"} 1\n"
	if got := b.String(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad or duplicate name %q", st, name)
		}
		seen[name] = true
	}
}

// StageNS must partition the preconditioner time: the exclusive stages sum
// to PrecondNS when the trace was filled consistently, and StagePCG is the
// outer driver net of preconditioning.
func TestTraceStageAggregation(t *testing.T) {
	tr := SolveTrace{
		QueueNS:     10,
		WorkspaceNS: 5,
		OuterNS:     1000,
		PrecondNS:   700,
		BottomNS:    100,
		Levels:      2,
	}
	tr.ChebNS[0], tr.ChebNS[1] = 200, 100
	tr.FwdNS[0], tr.FwdNS[1] = 80, 70
	tr.BackNS[0], tr.BackNS[1] = 90, 60
	tr.TotalNS = 1015
	if got := tr.StageNS(StagePCG); got != 300 {
		t.Fatalf("pcg = %d, want 300", got)
	}
	sum := tr.StageNS(StageCheb) + tr.StageNS(StageForward) +
		tr.StageNS(StageBack) + tr.StageNS(StageBottom)
	if sum != tr.PrecondNS {
		t.Fatalf("exclusive stages sum to %d, want PrecondNS %d", sum, tr.PrecondNS)
	}
	tr.Reset()
	if tr.OuterNS != 0 || tr.ChebNS[0] != 0 {
		t.Fatal("Reset did not zero the trace")
	}
}
