// Package graphio reads and writes the graph formats used by the command-
// line tools: a whitespace edge-list format and symmetric Matrix Market
// coordinate files (the format SDD solver suites conventionally exchange).
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parlap/internal/graph"
	"parlap/internal/matrix"
)

// ReadEdgeList parses a graph from lines of the form "u v [w]" (0-based
// vertex ids, optional float weight defaulting to 1). Lines starting with
// '#' or '%' are comments. An optional first line "n m" presizes the graph;
// otherwise n is inferred as max id + 1.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var edges []graph.Edge
	n := 0
	first := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if first && len(fields) == 2 {
			// Could be a header "n m" — treat as a header only if parsing
			// the rest as an edge would be ambiguous; we adopt the
			// convention that a 2-field first line IS the header.
			a, err1 := strconv.Atoi(fields[0])
			b, err2 := strconv.Atoi(fields[1])
			if err1 == nil && err2 == nil && a >= 0 && b >= 0 {
				n = a
				_ = b
				first = false
				continue
			}
		}
		first = false
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[1])
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graphio: line %d: bad weight %q", lineNo, fields[2])
			}
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative vertex id", lineNo)
		}
		if u >= n {
			n = u + 1
		}
		if v >= n {
			n = v + 1
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.FromEdges(n, edges)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeList writes "n m" followed by one "u v w" line per edge.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.N, g.M())
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a symmetric real coordinate Matrix Market file
// into a sparse matrix. Only the lower (or upper) triangle need be stored;
// the symmetric counterpart entries are mirrored.
func ReadMatrixMarket(r io.Reader) (*matrix.Sparse, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graphio: empty MatrixMarket input")
	}
	header := strings.ToLower(strings.TrimSpace(sc.Text()))
	if !strings.HasPrefix(header, "%%matrixmarket") {
		return nil, fmt.Errorf("graphio: missing MatrixMarket banner")
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("graphio: only coordinate format supported")
	}
	symmetric := strings.Contains(header, "symmetric")
	var n, m, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &nnz); err != nil {
			return nil, fmt.Errorf("graphio: bad size line %q: %v", line, err)
		}
		break
	}
	if n != m {
		return nil, fmt.Errorf("graphio: matrix is %dx%d, want square", n, m)
	}
	var rows, cols []int
	var vals []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		var i, j int
		var v float64
		if _, err := fmt.Sscan(line, &i, &j, &v); err != nil {
			return nil, fmt.Errorf("graphio: bad entry %q: %v", line, err)
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("graphio: entry (%d,%d) out of range", i, j)
		}
		rows = append(rows, i-1)
		cols = append(cols, j-1)
		vals = append(vals, v)
		if symmetric && i != j {
			rows = append(rows, j-1)
			cols = append(cols, i-1)
			vals = append(vals, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return matrix.NewSparseFromTriplets(n, rows, cols, vals)
}

// WriteMatrixMarket writes a sparse symmetric matrix in coordinate format,
// storing the lower triangle (including the diagonal).
func WriteMatrixMarket(w io.Writer, a *matrix.Sparse) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real symmetric")
	nnz := 0
	for r := 0; r < a.N; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if int(a.Col[i]) <= r {
				nnz++
			}
		}
	}
	fmt.Fprintf(bw, "%d %d %d\n", a.N, a.N, nnz)
	for r := 0; r < a.N; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if int(a.Col[i]) <= r {
				fmt.Fprintf(bw, "%d %d %.17g\n", r+1, int(a.Col[i])+1, a.Val[i])
			}
		}
	}
	return bw.Flush()
}
