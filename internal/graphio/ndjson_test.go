package graphio

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// The ndjson codec fronts the streaming solve endpoint, so its contract is
// locked from both directions: every malformed input class is rejected with
// a row-numbered error, and encode→decode recovers vectors bitwise
// (the property the service's bitwise-streaming guarantee rests on).

func TestVectorRowRoundTripBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vecs := [][]float64{
		{},
		{0, -0, 1, -1},
		{math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
		{1e-7, 1e21, -2.5e-9, 3.141592653589793},
	}
	big := make([]float64, 2000)
	for i := range big {
		big[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
	vecs = append(vecs, big)
	for vi, x := range vecs {
		row := AppendVectorRow(nil, x)
		got, err := ParseVectorRow(row)
		if err != nil {
			t.Fatalf("vec %d: %v (row %q)", vi, err, row)
		}
		if len(got) != len(x) {
			t.Fatalf("vec %d: length %d != %d", vi, len(got), len(x))
		}
		for i := range x {
			if math.Float64bits(got[i]) != math.Float64bits(x[i]) {
				t.Fatalf("vec %d entry %d: %x != %x (row %s)", vi, i,
					math.Float64bits(got[i]), math.Float64bits(x[i]), row)
			}
		}
	}
}

func TestVectorScannerStream(t *testing.T) {
	in := "[1,2,3]\n\n  [4.5,-6,7e2]  \n[0,0,0]"
	sc := NewVectorScanner(strings.NewReader(in), 3, 0)
	var rows [][]float64
	for {
		x, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, x)
	}
	if len(rows) != 3 || sc.Rows() != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[1][2] != 700 {
		t.Fatalf("row 1 entry 2 = %g, want 700", rows[1][2])
	}
}

func TestVectorScannerRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not-json":        "[1,2\n",
		"nan-literal":     "[NaN,1]\n",
		"inf-literal":     "[Infinity]\n",
		"overflow":        "[1e999]\n",
		"string-entry":    "[1,\"x\",2]\n",
		"object-row":      "{\"b\":[1,2]}\n",
		"null-row":        "null\n",
		"trailing-data":   "[1,2][3,4]\n",
		"trailing-tokens": "[1,2] 77\n",
		"wrong-dim":       "[1,2,3,4]\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			sc := NewVectorScanner(strings.NewReader(in), 2, 0)
			if name == "wrong-dim" {
				// dim enforcement only; the row itself is valid JSON.
				if _, err := sc.Next(); err == nil {
					t.Fatal("wrong-length row accepted")
				}
				return
			}
			if x, err := sc.Next(); err == nil {
				t.Fatalf("malformed row accepted: %v", x)
			}
		})
	}
}

func TestVectorScannerGoodRowsThenBad(t *testing.T) {
	in := "[1,2]\n[3,4]\n[bad\n"
	sc := NewVectorScanner(strings.NewReader(in), 2, 0)
	for i := 0; i < 2; i++ {
		if _, err := sc.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	_, err := sc.Next()
	if err == nil || !strings.Contains(err.Error(), "row 3") {
		t.Fatalf("want row-numbered error for row 3, got %v", err)
	}
}

func TestVectorScannerRowByteLimit(t *testing.T) {
	long := "[" + strings.Repeat("1,", 5000) + "1]\n"
	sc := NewVectorScanner(strings.NewReader(long), 0, 64)
	_, err := sc.Next()
	if !errors.Is(err, ErrRowTooLarge) {
		t.Fatalf("want ErrRowTooLarge, got %v", err)
	}
	// A generous limit accepts the same row.
	sc = NewVectorScanner(strings.NewReader(long), 0, 1<<20)
	x, err := sc.Next()
	if err != nil || len(x) != 5001 {
		t.Fatalf("want 5001 entries, got %d (%v)", len(x), err)
	}
}
