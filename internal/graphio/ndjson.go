package graphio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// The ndjson vector codec: one JSON array of finite numbers per line, the
// wire format of the solver service's streaming batch endpoint. The encoder
// uses Go's shortest round-trip float formatting, so
// ParseVectorRow(AppendVectorRow(nil, x)) returns x bitwise — the property
// the streaming tests pin (streamed solutions must equal independent solves
// bit for bit after one encode/decode round trip on each side).

// DefaultMaxRowBytes bounds one ndjson row (16 MiB ≈ a 700k-entry vector);
// oversized rows fail with an explicit error instead of a silent truncation.
const DefaultMaxRowBytes = 16 << 20

// ErrRowTooLarge reports an ndjson row exceeding the scanner's byte limit.
var ErrRowTooLarge = fmt.Errorf("graphio: ndjson row exceeds the row byte limit")

// VectorScanner reads ndjson vector rows ("[1.5,2,-3e4]\n" …) from a
// stream. Blank lines are skipped; every other line must be exactly one
// JSON array of finite numbers (NaN and ±Inf are not valid JSON and are
// rejected, as is any trailing data after the array on the same line).
type VectorScanner struct {
	r *bufio.Reader
	// Dim, when > 0, requires every row to have exactly Dim entries.
	dim     int
	maxRow  int
	rows    int
	partial []byte
}

// NewVectorScanner wraps r. dim > 0 enforces a fixed row length (the
// graph's vertex count); maxRowBytes <= 0 means DefaultMaxRowBytes.
func NewVectorScanner(r io.Reader, dim, maxRowBytes int) *VectorScanner {
	if maxRowBytes <= 0 {
		maxRowBytes = DefaultMaxRowBytes
	}
	return &VectorScanner{r: bufio.NewReaderSize(r, 64<<10), dim: dim, maxRow: maxRowBytes}
}

// Rows returns the number of vector rows decoded so far.
func (s *VectorScanner) Rows() int { return s.rows }

// Next returns the next vector row, or io.EOF after the last one. Any
// malformed row stops the stream with a descriptive error (the row number
// is 1-based over non-blank rows).
func (s *VectorScanner) Next() ([]float64, error) {
	for {
		line, err := s.readLine()
		if err != nil {
			return nil, err
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		x, perr := ParseVectorRow(line)
		if perr != nil {
			return nil, fmt.Errorf("graphio: ndjson row %d: %w", s.rows+1, perr)
		}
		if s.dim > 0 && len(x) != s.dim {
			return nil, fmt.Errorf("graphio: ndjson row %d has %d entries, want %d", s.rows+1, len(x), s.dim)
		}
		s.rows++
		return x, nil
	}
}

// readLine reads one \n-terminated line (or the final unterminated line),
// enforcing the row byte limit.
func (s *VectorScanner) readLine() ([]byte, error) {
	s.partial = s.partial[:0]
	for {
		chunk, err := s.r.ReadSlice('\n')
		s.partial = append(s.partial, chunk...)
		if len(s.partial) > s.maxRow {
			return nil, fmt.Errorf("%w (%d bytes > %d)", ErrRowTooLarge, len(s.partial), s.maxRow)
		}
		switch err {
		case nil:
			return s.partial, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(s.partial) == 0 {
				return nil, io.EOF
			}
			return s.partial, nil
		default:
			return nil, err
		}
	}
}

// ParseVectorRow decodes one ndjson row: exactly one JSON array of finite
// numbers, nothing after it. NaN/Inf (not valid JSON), out-of-range
// literals like 1e999, non-numeric elements and trailing data are all
// rejected.
func ParseVectorRow(line []byte) ([]float64, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	var x []float64
	if err := dec.Decode(&x); err != nil {
		return nil, fmt.Errorf("bad vector row: %w", err)
	}
	if x == nil {
		return nil, fmt.Errorf("bad vector row: null is not a vector")
	}
	// json.Decode stops at the end of the first value; anything else on the
	// line (a second array, stray tokens) is a malformed row.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("trailing data after vector row")
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("entry %d is not finite (%v)", i, v)
		}
	}
	return x, nil
}

// AppendVectorRow appends x as one JSON array (no trailing newline) to dst.
// Floats use strconv's shortest round-trip formatting: decoding the output
// recovers every entry bitwise. Non-finite entries cannot be represented in
// JSON; callers must not pass them (solver outputs are finite).
func AppendVectorRow(dst []byte, x []float64) []byte {
	dst = append(dst, '[')
	for i, v := range x {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONFloat(dst, v)
	}
	return append(dst, ']')
}

// appendJSONFloat mirrors encoding/json's float64 encoding (shortest
// round-trip form, with the e-notation adjustment JSON requires).
func appendJSONFloat(dst []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// WriteVectorRow writes x as one ndjson line (array + newline).
func WriteVectorRow(w io.Writer, x []float64) error {
	buf := AppendVectorRow(make([]byte, 0, 16*len(x)+2), x)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return err
}
