package graphio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/matrix"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.WithUniformWeights(gen.Grid2D(5, 7), 0.5, 3, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.M() != g.M() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", g2.N, g2.M(), g.N, g.M())
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, g.Edges[i], g2.Edges[i])
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := `# a comment
% another
0 1 2.5

1 2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d", g.N, g.M())
	}
	if g.Edges[0].W != 2.5 || g.Edges[1].W != 1 {
		t.Fatalf("weights wrong: %+v", g.Edges)
	}
}

func TestReadEdgeListHeader(t *testing.T) {
	in := "10 1\n0 1 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Fatalf("header n ignored: %d", g.N)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 1 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := gen.GNP(30, 0.2, 2)
	a := matrix.LaplacianOf(g)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	a2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a2.N != a.N || a2.NNZ() != a.NNZ() {
		t.Fatalf("size mismatch: n %d vs %d, nnz %d vs %d", a2.N, a.N, a2.NNZ(), a.NNZ())
	}
	// Compare by applying to a probe vector.
	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y1, y2 := a.Apply(x), a2.Apply(x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("apply mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestMatrixMarketRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"not a banner\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n5 5 1\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestMatrixMarketGeneralNonSymmetric(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 2\n1 2 -1\n2 2 2\n"
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// General mode must not mirror entries.
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
}
