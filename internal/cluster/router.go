package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parlap/internal/obs"
)

// Config assembles a Router.
type Config struct {
	// Nodes is the static shard list. Required, non-empty.
	Nodes []Node
	// VNodes is the virtual nodes per shard on the ring (0 → 64).
	VNodes int
	// RegisterKey maps a POST /graphs body to the canonical graph id that
	// shards it — the same id the owning node will answer with, so a graph
	// registers on exactly the node its later solves route to. Required.
	RegisterKey func(body []byte) (string, error)
	// RetryBufferBytes caps how large a request body the router buffers to
	// make it replayable on a failover node. Bodies over the cap are
	// forwarded streaming to a single node with no retry. 0 → 8 MiB.
	RetryBufferBytes int64
	// Probe tunes the health prober.
	Probe ProbeConfig
	// Client performs proxy and probe requests. Nil → a client with no
	// overall timeout (streams must be allowed to run; probes carry their
	// own per-request timeout).
	Client *http.Client
	// Logger receives structured router logs. Nil → slog.Default().
	Logger *slog.Logger
}

// nodeCounters is the per-node datapath telemetry.
type nodeCounters struct {
	requests atomic.Int64 // proxy attempts sent to this node
	errors   atomic.Int64 // attempts that died in transport
	retries  atomic.Int64 // requests routed PAST this node: skipped while
	// marked down, or retried elsewhere after a transport failure here
}

// Router is the cluster's front door: it owns a Ring and a Prober and
// reverse-proxies each request to the shard that owns its graph, failing
// over along the ring's deterministic order when the owner is unreachable.
// Only transport-level failures (refused connections, resets, timeouts)
// trigger failover; an HTTP error from a live node is the answer, not a
// reason to ask someone else.
type Router struct {
	ring   *Ring
	prober *Prober
	cfg    Config
	client *http.Client
	log    *slog.Logger
	start  time.Time

	counters map[string]*nodeCounters

	ridSeq    atomic.Int64
	ridPrefix string

	mu   sync.Mutex
	http map[routeCode]int64
}

type routeCode struct {
	route string
	code  int
}

// NewRouter validates cfg, builds the ring, and starts the health prober.
// Callers must Close the router to stop probing.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.RegisterKey == nil {
		return nil, fmt.Errorf("cluster: Config.RegisterKey is required")
	}
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.RetryBufferBytes <= 0 {
		cfg.RetryBufferBytes = 8 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	rt := &Router{
		ring:      ring,
		prober:    NewProber(ring.Nodes(), cfg.Probe, client, log),
		cfg:       cfg,
		client:    client,
		log:       log,
		start:     time.Now(),
		counters:  make(map[string]*nodeCounters, len(cfg.Nodes)),
		ridPrefix: fmt.Sprintf("rtr%d", time.Now().UnixNano()%1e9),
		http:      make(map[routeCode]int64),
	}
	for _, n := range ring.Nodes() {
		rt.counters[n.Name] = &nodeCounters{}
	}
	rt.prober.Start()
	return rt, nil
}

// Close stops the health prober.
func (rt *Router) Close() { rt.prober.Stop() }

// Prober exposes the router's health prober (tests and /healthz).
func (rt *Router) Prober() *Prober { return rt.prober }

// Ring exposes the router's ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler returns the router's HTTP handler. Graph routes are proxied; the
// router answers /healthz, /metrics and /ring itself.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graphs", rt.route("register", rt.handleRegister))
	mux.HandleFunc("GET /graphs", rt.route("list", rt.handleListMerge))
	mux.HandleFunc("/graphs/{id}", rt.route("graph", rt.handleGraph))
	mux.HandleFunc("/graphs/{id}/{rest...}", rt.route("graph", rt.handleGraph))
	mux.HandleFunc("GET /healthz", rt.route("healthz", rt.handleHealthz))
	mux.HandleFunc("GET /metrics", rt.route("metrics", rt.handleMetrics))
	mux.HandleFunc("GET /ring", rt.route("ring", rt.handleRing))
	mux.HandleFunc("/", rt.route("not_found", func(w http.ResponseWriter, r *http.Request) {
		rt.writeError(w, r, http.StatusNotFound, "no such route: %s %s", r.Method, r.URL.Path)
	}))
	return mux
}

// --- request plumbing (mirrors the service's route wrapper) ---

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// ValidRequestID reports whether an inbound X-Request-ID is safe to adopt:
// bounded length, conservative charset (it lands in logs and headers
// verbatim).
func ValidRequestID(rid string) bool {
	if rid == "" || len(rid) > 64 {
		return false
	}
	for i := 0; i < len(rid); i++ {
		c := rid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// route wraps a handler with request-id adoption/minting, the route/status
// counter, and one structured log line per request. An inbound X-Request-ID
// (from a client correlating its own calls) is kept if it is sane; the
// proxy path forwards it to the shard, so one id names the request across
// router and node logs.
func (rt *Router) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if !ValidRequestID(rid) {
			rid = fmt.Sprintf("%s-%06d", rt.ridPrefix, rt.ridSeq.Add(1))
			r.Header.Set("X-Request-ID", rid)
		}
		w.Header().Set("X-Request-ID", rid)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		code := sw.code()
		rt.mu.Lock()
		rt.http[routeCode{name, code}]++
		rt.mu.Unlock()
		rt.log.Info("router_request",
			"request_id", rid,
			"route", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", code,
			"duration_ms", float64(time.Since(t0).Microseconds())/1000,
		)
	}
}

type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: r.Header.Get("X-Request-ID"),
	})
}

// --- proxying ---

// readForRetry reads up to the retry buffer cap from body. If the body fits,
// it is fully buffered and replayable on a failover node; if not, the
// buffered prefix plus the unread remainder must be forwarded as a one-shot
// stream.
func (rt *Router) readForRetry(body io.Reader) (buf []byte, replayable bool, err error) {
	buf, err = io.ReadAll(io.LimitReader(body, rt.cfg.RetryBufferBytes+1))
	if err != nil {
		return nil, false, err
	}
	return buf, int64(len(buf)) <= rt.cfg.RetryBufferBytes, nil
}

// hopByHop lists the connection-scoped headers a proxy must not forward.
var hopByHop = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyProxyHeaders(dst, src http.Header) {
	for k, vs := range src {
		dst[k] = append([]string(nil), vs...)
	}
	for _, k := range hopByHop {
		dst.Del(k)
	}
}

// candidates picks the attempt order for key: live nodes along the ring's
// failover order, counting each skipped-down node as a request routed past
// it. When every node looks down the full order is used anyway — the prober
// may simply be behind, and a refused connection tells us no slower than a
// skipped attempt would.
func (rt *Router) candidates(key string) []Node {
	order := rt.ring.Order(key)
	live := make([]Node, 0, len(order))
	for _, n := range order {
		if rt.prober.Alive(n.Name) {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return order
	}
	if len(live) < len(order) {
		for _, n := range order {
			if !rt.prober.Alive(n.Name) {
				rt.counters[n.Name].retries.Add(1)
			} else {
				break // only nodes skipped before the first live one were routed past
			}
		}
	}
	return live
}

// proxy forwards the request to the first reachable candidate. body is the
// buffered request body (nil for bodyless methods); replayable says whether
// a failed attempt may be retried on the next candidate. extra is appended
// to r.Body when the body did not fit the retry buffer.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, key string, body []byte, replayable bool, extra io.Reader) {
	nodes := rt.candidates(key)
	var lastErr error
	var lastNode string
	for i, n := range nodes {
		c := rt.counters[n.Name]
		var rdr io.Reader
		var clen int64
		if body != nil {
			rdr, clen = bytes.NewReader(body), int64(len(body))
			if extra != nil {
				rdr, clen = io.MultiReader(bytes.NewReader(body), extra), -1
			}
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, n.URL+r.URL.RequestURI(), rdr)
		if err != nil {
			rt.writeError(w, r, http.StatusInternalServerError, "building upstream request: %v", err)
			return
		}
		copyProxyHeaders(req.Header, r.Header)
		req.ContentLength = clen
		c.requests.Add(1)
		resp, err := rt.client.Do(req)
		if err != nil {
			c.errors.Add(1)
			rt.prober.ReportFailure(n.Name, err)
			lastErr, lastNode = err, n.Name
			if r.Context().Err() != nil {
				break // the client went away; retrying is noise
			}
			if replayable && i+1 < len(nodes) {
				c.retries.Add(1)
				rt.log.Warn("proxy_failover",
					"request_id", r.Header.Get("X-Request-ID"),
					"from", n.Name, "to", nodes[i+1].Name, "err", err)
				continue
			}
			break
		}
		rt.relay(w, resp)
		return
	}
	rt.writeError(w, r, http.StatusBadGateway,
		"upstream %s unreachable: %v", lastNode, lastErr)
}

// relay copies the upstream response through, flushing after every chunk so
// streamed ndjson rows reach the client as the shard emits them.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyProxyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// --- handlers ---

// maxRegisterBytes matches the shards' own request-body cap: a register
// body must be read in full here regardless of the retry buffer, because
// the shard key is a hash of the graph it carries.
const maxRegisterBytes = 1 << 29

// handleRegister shards POST /graphs by the canonical id of the graph in
// the body — computed here with the same hash the owning node will answer
// with — and proxies with failover (registration is idempotent: re-sending
// the same graph is a cache hit, not a duplicate). The body is always fully
// buffered (the key needs it), so registers are always replayable.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRegisterBytes+1))
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if len(body) > maxRegisterBytes {
		rt.writeError(w, r, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", int64(maxRegisterBytes))
		return
	}
	key, err := rt.cfg.RegisterKey(body)
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, "bad graph payload: %v", err)
		return
	}
	rt.proxy(w, r, key, body, true, nil)
}

// handleGraph shards /graphs/{id}/... by the id in the path. Bodyless
// methods and solve bodies that fit the retry buffer fail over; streaming
// solves are pinned to one node for the connection's lifetime.
func (rt *Router) handleGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Method == http.MethodGet || r.Method == http.MethodHead || r.Body == nil || r.Body == http.NoBody {
		rt.proxy(w, r, id, nil, true, nil)
		return
	}
	if r.PathValue("rest") == "solve/stream" {
		// Full duplex: the inbound body must stay readable while response
		// rows flow back.
		_ = http.NewResponseController(w).EnableFullDuplex()
		rt.proxyStream(w, r, id)
		return
	}
	body, replayable, err := rt.readForRetry(r.Body)
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if !replayable {
		rt.proxy(w, r, id, body, false, r.Body)
		return
	}
	rt.proxy(w, r, id, body, true, nil)
}

// proxyStream forwards a streaming solve without buffering: the request body
// flows to the shard as the client produces it, so there is nothing to
// replay and no failover — the stream is pinned to the first live candidate.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, key string) {
	nodes := rt.candidates(key)
	n := nodes[0]
	c := rt.counters[n.Name]
	req, err := http.NewRequestWithContext(r.Context(), r.Method, n.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		rt.writeError(w, r, http.StatusInternalServerError, "building upstream request: %v", err)
		return
	}
	copyProxyHeaders(req.Header, r.Header)
	req.ContentLength = -1
	c.requests.Add(1)
	resp, err := rt.client.Do(req)
	if err != nil {
		c.errors.Add(1)
		rt.prober.ReportFailure(n.Name, err)
		rt.writeError(w, r, http.StatusBadGateway, "upstream %s unreachable: %v", n.Name, err)
		return
	}
	rt.relay(w, resp)
}

// handleListMerge answers GET /graphs by asking every live node and merging:
// the cluster's cached-graph list is the union of the shards'.
func (rt *Router) handleListMerge(w http.ResponseWriter, r *http.Request) {
	seen := make(map[string]bool)
	var merged []string
	asked := 0
	for _, n := range rt.ring.Nodes() {
		if !rt.prober.Alive(n.Name) {
			continue
		}
		c := rt.counters[n.Name]
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n.URL+"/graphs", nil)
		if err != nil {
			continue
		}
		req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		c.requests.Add(1)
		resp, err := rt.client.Do(req)
		if err != nil {
			c.errors.Add(1)
			rt.prober.ReportFailure(n.Name, err)
			continue
		}
		var page struct {
			Graphs []string `json:"graphs"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&page)
		resp.Body.Close()
		if err != nil {
			continue
		}
		asked++
		for _, id := range page.Graphs {
			if !seen[id] {
				seen[id] = true
				merged = append(merged, id)
			}
		}
	}
	if asked == 0 {
		rt.writeError(w, r, http.StatusBadGateway, "no shard reachable")
		return
	}
	sort.Strings(merged)
	if merged == nil {
		merged = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"graphs": merged})
}

// ringInfo is the GET /ring reply.
type ringInfo struct {
	Key   string       `json:"key,omitempty"`
	Owner string       `json:"owner,omitempty"`
	Order []string     `json:"order,omitempty"`
	Nodes []NodeStatus `json:"nodes"`
}

// handleRing reports ring placement: without a key, just node health; with
// ?key=<graph id>, the owner and full failover order for that key.
func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	info := ringInfo{Nodes: rt.prober.Status()}
	sort.Slice(info.Nodes, func(i, j int) bool { return info.Nodes[i].Name < info.Nodes[j].Name })
	if key := r.URL.Query().Get("key"); key != "" {
		info.Key = key
		order := rt.ring.Order(key)
		info.Owner = order[0].Name
		for _, n := range order {
			info.Order = append(info.Order, n.Name)
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// routerHealth is the GET /healthz reply.
type routerHealth struct {
	Status    string       `json:"status"`
	UptimeSec float64      `json:"uptime_seconds"`
	Nodes     []NodeStatus `json:"nodes"`
}

// handleHealthz: the router is "ok" while at least one shard is believed
// alive, "degraded" otherwise (it still serves — the prober may be wrong).
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodes := rt.prober.Status()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	status := "degraded"
	for _, n := range nodes {
		if n.Alive {
			status = "ok"
			break
		}
	}
	writeJSON(w, http.StatusOK, routerHealth{
		Status:    status,
		UptimeSec: time.Since(rt.start).Seconds(),
		Nodes:     nodes,
	})
}

// handleMetrics exposes the router's own counters in the same hand-rolled
// Prometheus text format the shards use; series are ordered by node name so
// scrapes are deterministic.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	nodes := rt.ring.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := obs.NewExpo(w)
	e.Header("parlap_router_uptime_seconds", "Seconds since the router started.", "gauge")
	e.Sample("parlap_router_uptime_seconds", nil, time.Since(rt.start).Seconds())

	e.Header("parlap_router_requests_total", "Proxy attempts sent to each node.", "counter")
	for _, n := range nodes {
		e.Int("parlap_router_requests_total", []obs.Label{{K: "node", V: n.Name}}, rt.counters[n.Name].requests.Load())
	}
	e.Header("parlap_router_proxy_errors_total", "Proxy attempts that failed in transport, by node.", "counter")
	for _, n := range nodes {
		e.Int("parlap_router_proxy_errors_total", []obs.Label{{K: "node", V: n.Name}}, rt.counters[n.Name].errors.Load())
	}
	e.Header("parlap_router_retries_total", "Requests routed past a node: skipped while down or failed over after a transport error.", "counter")
	for _, n := range nodes {
		e.Int("parlap_router_retries_total", []obs.Label{{K: "node", V: n.Name}}, rt.counters[n.Name].retries.Load())
	}
	e.Header("parlap_router_node_up", "Prober's current belief about each node (1 alive, 0 down).", "gauge")
	for _, n := range nodes {
		up := int64(0)
		if rt.prober.Alive(n.Name) {
			up = 1
		}
		e.Int("parlap_router_node_up", []obs.Label{{K: "node", V: n.Name}}, up)
	}

	rt.mu.Lock()
	keys := make([]routeCode, 0, len(rt.http))
	counts := make(map[routeCode]int64, len(rt.http))
	for k, v := range rt.http {
		keys = append(keys, k)
		counts[k] = v
	}
	rt.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	e.Header("parlap_router_http_requests_total", "Finished router HTTP requests by route and status.", "counter")
	for _, k := range keys {
		e.Int("parlap_router_http_requests_total",
			[]obs.Label{{K: "route", V: k.route}, {K: "code", V: strconv.Itoa(k.code)}},
			counts[k])
	}
	if err := e.Flush(); err != nil {
		rt.log.Warn("metrics_write_failed", "err", err)
	}
}
