package cluster

import (
	"fmt"
	"testing"
)

func testNodes(names ...string) []Node {
	out := make([]Node, len(names))
	for i, n := range names {
		out[i] = Node{Name: n, URL: "http://" + n + ":8080"}
	}
	return out
}

// TestRingDeterministic: two rings built from the same configuration place
// every key identically — owner and full failover order — which is what
// lets independent router instances agree on shard assignment with no
// coordination.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing(testNodes("a", "b", "c"), 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(testNodes("a", "b", "c"), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("g%032d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %s differs between identical rings", key)
		}
		o1, o2 := r1.Order(key), r2.Order(key)
		if len(o1) != 3 || len(o2) != 3 {
			t.Fatalf("order length %d/%d, want 3", len(o1), len(o2))
		}
		seen := map[string]bool{}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("order of %s differs at position %d", key, j)
			}
			seen[o1[j].Name] = true
		}
		if len(seen) != 3 {
			t.Fatalf("order of %s repeats a node: %v", key, o1)
		}
		if o1[0] != r1.Owner(key) {
			t.Fatalf("order of %s does not start at its owner", key)
		}
	}
}

// TestRingBalance: with the default vnode count, no node's share of the
// keyspace is degenerate.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(testNodes("a", "b", "c"), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("g%032x", i)).Name]++
	}
	for name, c := range counts {
		if frac := float64(c) / keys; frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.0f%% of the keyspace", name, frac*100)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
}

// TestRingStability: removing one node must not move keys between the
// surviving nodes — the consistent-hashing property that makes failover
// reassign only the dead node's share.
func TestRingStability(t *testing.T) {
	full, err := NewRing(testNodes("a", "b", "c"), 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(testNodes("a", "b"), 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("g%032d", i)
		before := full.Owner(key).Name
		after := reduced.Owner(key).Name
		if before == "c" {
			continue // c's keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes after removing c", moved)
	}
}

// TestRingFailoverSuccession: a key's failover order on the full ring,
// restricted to surviving nodes, starts with the owner the reduced ring
// assigns — the router's "next live node on the ring" is exactly where the
// key would land if the dead node were removed.
func TestRingFailoverSuccession(t *testing.T) {
	full, err := NewRing(testNodes("a", "b", "c"), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("g%032d", i)
		order := full.Order(key)
		dead := order[0].Name
		var survivors []Node
		for _, n := range testNodes("a", "b", "c") {
			if n.Name != dead {
				survivors = append(survivors, n)
			}
		}
		reduced, err := NewRing(survivors, 64)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := reduced.Owner(key).Name, order[1].Name; got != want {
			t.Fatalf("key %s: reduced-ring owner %s, full-ring successor %s", key, got, want)
		}
	}
}

func TestNewRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]Node{{Name: "a"}, {Name: "a"}}, 4); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewRing([]Node{{URL: "http://x"}}, 4); err == nil {
		t.Error("unnamed node accepted")
	}
}

func TestParseNode(t *testing.T) {
	n, err := ParseNode("shard-a=http://127.0.0.1:8921/")
	if err != nil || n.Name != "shard-a" || n.URL != "http://127.0.0.1:8921" {
		t.Fatalf("ParseNode = %+v, %v", n, err)
	}
	n, err = ParseNode("http://127.0.0.1:9000")
	if err != nil || n.Name != "http://127.0.0.1:9000" {
		t.Fatalf("bare-url ParseNode = %+v, %v", n, err)
	}
	for _, bad := range []string{"", "a=", "=http://x", "a=ftp://x"} {
		if _, err := ParseNode(bad); err == nil {
			t.Errorf("ParseNode(%q) accepted", bad)
		}
	}
}
