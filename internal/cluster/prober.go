package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ProbeConfig tunes the background health prober.
type ProbeConfig struct {
	// Interval between probes of a healthy node. Default 5s.
	Interval time.Duration
	// Timeout for one probe request. Default 2s.
	Timeout time.Duration
	// MaxBackoff caps the probe interval for a failing node: after each
	// consecutive failure the next probe waits Interval·2^failures, clamped
	// here, so a dead node costs a bounded trickle of connection attempts
	// instead of a steady hammer. Default 30s.
	MaxBackoff time.Duration
	// Jitter spreads each wait uniformly over ±Jitter fraction of its
	// nominal value so a fleet of routers does not probe in lockstep.
	// Default 0.2; set negative for none.
	Jitter float64
	// Path is the health endpoint probed on each node. Default "/healthz".
	Path string
}

func (c *ProbeConfig) withDefaults() ProbeConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 5 * time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Second
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 30 * time.Second
	}
	if out.Jitter == 0 {
		out.Jitter = 0.2
	}
	if out.Path == "" {
		out.Path = "/healthz"
	}
	return out
}

// NodeStatus is one node's health as the prober last saw it.
type NodeStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Alive    bool   `json:"alive"`
	Failures int    `json:"consecutive_failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// Prober probes each node's health endpoint on its own schedule: a jittered
// fixed interval while the node answers, exponential backoff while it does
// not. Nodes start optimistically alive — a request racing the first probe
// goes to its owner, and a transport failure there both fails over and
// reports the node down. ReportFailure lets the router feed those
// observations back so the datapath, not just the probe loop, can take a
// node out of rotation.
type Prober struct {
	cfg    ProbeConfig
	client *http.Client
	log    *slog.Logger

	mu    sync.Mutex
	state map[string]*nodeState

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

type nodeState struct {
	node     Node
	alive    bool
	failures int
	lastErr  string
	kick     chan struct{} // wakes the probe loop for an immediate recheck
}

// NewProber builds a prober over nodes. client may be nil (per-probe timeout
// is applied via context either way). Call Start to begin probing; a prober
// that is never started leaves every node permanently alive.
func NewProber(nodes []Node, cfg ProbeConfig, client *http.Client, log *slog.Logger) *Prober {
	if client == nil {
		client = http.DefaultClient
	}
	if log == nil {
		log = slog.Default()
	}
	p := &Prober{
		cfg:    cfg.withDefaults(),
		client: client,
		log:    log,
		state:  make(map[string]*nodeState, len(nodes)),
		stop:   make(chan struct{}),
	}
	for _, n := range nodes {
		p.state[n.Name] = &nodeState{node: n, alive: true, kick: make(chan struct{}, 1)}
	}
	return p
}

// Start launches one probe goroutine per node. Safe to call once; Stop ends
// them.
func (p *Prober) Start() {
	p.startOnce.Do(func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		for _, st := range p.state {
			p.wg.Add(1)
			go p.loop(st)
		}
	})
}

// Stop ends probing and waits for the probe goroutines to exit.
func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Alive reports whether the prober currently believes the named node is up.
// Unknown names are dead.
func (p *Prober) Alive(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state[name]
	return st != nil && st.alive
}

// ReportFailure records a datapath transport failure against a node: it is
// marked down immediately (so the very next request routes around it) and
// its probe loop is kicked to recheck, which is what brings it back.
func (p *Prober) ReportFailure(name string, err error) {
	p.mu.Lock()
	st := p.state[name]
	if st == nil {
		p.mu.Unlock()
		return
	}
	wasAlive := st.alive
	st.alive = false
	st.failures++
	if err != nil {
		st.lastErr = err.Error()
	}
	p.mu.Unlock()
	if wasAlive {
		p.log.Warn("node_down", "node", name, "source", "datapath", "err", st.lastErr)
	}
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// Status returns a snapshot of every node's health, in no particular order.
func (p *Prober) Status() []NodeStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeStatus, 0, len(p.state))
	for _, st := range p.state {
		out = append(out, NodeStatus{
			Name:     st.node.Name,
			URL:      st.node.URL,
			Alive:    st.alive,
			Failures: st.failures,
			LastErr:  st.lastErr,
		})
	}
	return out
}

// loop probes one node until Stop.
func (p *Prober) loop(st *nodeState) {
	defer p.wg.Done()
	for {
		ok, err := p.probe(st.node)
		p.mu.Lock()
		wasAlive := st.alive
		if ok {
			st.alive = true
			st.failures = 0
			st.lastErr = ""
		} else {
			st.alive = false
			st.failures++
			st.lastErr = err.Error()
		}
		failures := st.failures
		p.mu.Unlock()
		if ok && !wasAlive {
			p.log.Info("node_up", "node", st.node.Name)
		} else if !ok && wasAlive {
			p.log.Warn("node_down", "node", st.node.Name, "source", "probe", "err", err)
		}

		wait := p.cfg.Interval
		if !ok {
			// Exponential backoff: interval·2^(failures-1), capped.
			for i := 1; i < failures && wait < p.cfg.MaxBackoff; i++ {
				wait *= 2
			}
			if wait > p.cfg.MaxBackoff {
				wait = p.cfg.MaxBackoff
			}
		}
		timer := time.NewTimer(jitter(wait, p.cfg.Jitter))
		select {
		case <-p.stop:
			timer.Stop()
			return
		case <-st.kick:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// probe makes one health request. Any 2xx body is healthy; everything else —
// refused connection, timeout, 5xx — is not.
func (p *Prober) probe(n Node) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+p.cfg.Path, nil)
	if err != nil {
		return false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return false, fmt.Errorf("probe %s: status %d", n.Name, resp.StatusCode)
	}
	return true, nil
}

// jitter spreads d uniformly over [d·(1-f), d·(1+f)]. The randomness only
// desynchronizes probe schedules; nothing downstream depends on it.
func jitter(d time.Duration, f float64) time.Duration {
	if f <= 0 || d <= 0 {
		return d
	}
	lo := float64(d) * (1 - f)
	span := float64(d) * 2 * f
	return time.Duration(lo + rand.Float64()*span)
}
