// Package cluster is the horizontal-scale slice of the serving tier: a
// consistent-hash ring assigning graphs to nodes by canonical id, a
// background health prober, and a reverse-proxy router that sends each
// request to the owning shard and fails over to the next live node on the
// ring when the owner is down. Nodes share nothing but a snapshot store
// (chainio.BlobStore): the replica that inherits a graph warms its chain
// from the store instead of rebuilding, so failover costs a snapshot decode,
// not an O(m log m) build.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Node is one serving shard: a stable name (the hash identity — renaming a
// node reshuffles its share of the keyspace) and its base URL.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParseNode parses "name=url" (or a bare url, which names itself).
func ParseNode(s string) (Node, error) {
	name, u, ok := strings.Cut(s, "=")
	if !ok {
		name, u = s, s
	}
	name = strings.TrimSpace(name)
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if name == "" || u == "" {
		return Node{}, fmt.Errorf("cluster: bad node %q (want name=url)", s)
	}
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return Node{}, fmt.Errorf("cluster: node %s: url %q must be http(s)", name, u)
	}
	return Node{Name: name, URL: u}, nil
}

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is a consistent-hash ring over a static node list. Each node
// contributes vnodes points (hash of "name#i"); a key is owned by the first
// point clockwise from the key's own hash. Order walks on from there,
// yielding each distinct node once — a deterministic failover sequence that
// every router instance computes identically.
type Ring struct {
	nodes  []Node
	points []point
}

// NewRing builds a ring. vnodes <= 0 defaults to 64, enough to keep the
// keyspace split within a few percent of even for small clusters. Node names
// must be unique.
func NewRing(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]Node(nil), nodes...),
		points: make([]point, 0, len(nodes)*vnodes),
	}
	for i, n := range r.nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node %d has no name", i)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hashKey(fmt.Sprintf("%s#%d", n.Name, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full-64-bit hash collision between different nodes is
		// astronomically unlikely; break it by node index so the ring is
		// still deterministic if it happens.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// hashKey maps a string to a ring position. SHA-256 rather than a fast
// non-crypto hash: ring placement happens once per request on strings a few
// dozen bytes long, and the uniformity guarantee is worth more than the
// nanoseconds.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's node list in configuration order.
func (r *Ring) Nodes() []Node { return append([]Node(nil), r.nodes...) }

// succ returns the index into points of the first point at or after h,
// wrapping at the top of the ring.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the node that owns key.
func (r *Ring) Owner(key string) Node {
	return r.nodes[r.points[r.succ(hashKey(key))].node]
}

// Order returns every node exactly once, starting with key's owner and
// continuing clockwise around the ring: the deterministic failover order.
// Two routers with the same configuration produce the same sequence, so a
// graph's failover replica is well-defined cluster-wide.
func (r *Ring) Order(key string) []Node {
	out := make([]Node, 0, len(r.nodes))
	taken := make([]bool, len(r.nodes))
	for i, n := r.succ(hashKey(key)), 0; n < len(r.nodes); i++ {
		p := r.points[i%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, r.nodes[p.node])
			n++
		}
	}
	return out
}
