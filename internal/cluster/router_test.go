package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parlap/internal/chainio"
	"parlap/internal/service"
)

// Router integration tests: two real service shards sharing a snapshot
// store behind one router. The failover test is the package's reason to
// exist — kill the shard that owns a graph, solve again through the router,
// and the replica must answer from a snapshot restore with the bitwise-
// identical solution.

type testCluster struct {
	router *Router
	front  *httptest.Server
	shards map[string]*httptest.Server
	srvs   map[string]*service.Server
	store  *chainio.DirStore
}

func newTestCluster(t *testing.T, names ...string) *testCluster {
	t.Helper()
	store, err := chainio.NewDirStore(filepath.Join(t.TempDir(), "chains"))
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{
		shards: make(map[string]*httptest.Server),
		srvs:   make(map[string]*service.Server),
		store:  store,
	}
	var nodes []Node
	for _, name := range names {
		srv := service.New(service.Config{
			Workers:         2,
			NodeID:          name,
			Snapshots:       store,
			SnapshotOnBuild: true,
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		tc.srvs[name] = srv
		tc.shards[name] = ts
		nodes = append(nodes, Node{Name: name, URL: ts.URL})
	}
	rt, err := NewRouter(Config{
		Nodes:       nodes,
		RegisterKey: service.RegisterKey,
		Probe: ProbeConfig{
			Interval:   50 * time.Millisecond,
			Timeout:    time.Second,
			MaxBackoff: 200 * time.Millisecond,
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

// solveBody is a mean-free single right-hand side for an n-vertex graph.
func solveBody(n int) string {
	b := make([]float64, n)
	b[0], b[n-1] = 1, -1
	data, _ := json.Marshal(map[string]any{"b": b})
	return string(data)
}

func TestRouterFailoverWarmRestore(t *testing.T) {
	tc := newTestCluster(t, "shard-a", "shard-b")

	// Register through the router; the body's canonical id decides the shard.
	var reg struct {
		ID string `json:"id"`
	}
	postJSON(t, tc.front.URL+"/graphs", `{"spec":"grid2d:12x12","seed":1}`, &reg)
	if reg.ID == "" {
		t.Fatal("register returned no id")
	}
	owner := tc.router.Ring().Owner(reg.ID).Name
	replica := tc.router.Ring().Order(reg.ID)[1].Name

	// The graph must have landed on the owner, not anywhere else.
	if got := tc.srvs[owner].Health().Graphs; got != 1 {
		t.Fatalf("owner %s caches %d graphs, want 1", owner, got)
	}
	if got := tc.srvs[replica].Health().Graphs; got != 0 {
		t.Fatalf("replica %s caches %d graphs before failover, want 0", replica, got)
	}

	var ref struct {
		X []float64 `json:"x"`
	}
	solveURL := tc.front.URL + "/graphs/" + reg.ID + "/solve"
	postJSON(t, solveURL, solveBody(144), &ref)
	if len(ref.X) != 144 {
		t.Fatalf("solve returned %d entries", len(ref.X))
	}

	// Wait for the owner's write-behind snapshot to publish — the failover
	// replica restores from it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := tc.store.Get(reg.ID); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write-behind snapshot never appeared in the shared store")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the owner and solve again through the router: the request fails
	// over to the replica, which warms the chain from the shared store and
	// answers bit-identically.
	tc.shards[owner].CloseClientConnections()
	tc.shards[owner].Close()
	var failover struct {
		X []float64 `json:"x"`
	}
	postJSON(t, solveURL, solveBody(144), &failover)
	if len(failover.X) != len(ref.X) {
		t.Fatalf("failover solve returned %d entries, want %d", len(failover.X), len(ref.X))
	}
	for i := range ref.X {
		if math.Float64bits(failover.X[i]) != math.Float64bits(ref.X[i]) {
			t.Fatalf("failover solution differs at entry %d: %x vs %x",
				i, math.Float64bits(failover.X[i]), math.Float64bits(ref.X[i]))
		}
	}

	// The answer came from a snapshot restore on the replica, and the
	// router counted the request routed past the dead owner.
	if h := tc.srvs[replica].Health(); h.SnapshotHits < 1 {
		t.Fatalf("replica snapshot_hits = %d, want >= 1", h.SnapshotHits)
	}
	if n := tc.router.counters[owner].retries.Load(); n < 1 {
		t.Fatalf("router retries for dead owner = %d, want >= 1", n)
	}

	// The ring endpoint reports the owner down (ReportFailure marked it the
	// moment the proxy attempt died).
	resp, err := http.Get(tc.front.URL + "/ring?key=" + reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Owner string `json:"owner"`
		Nodes []struct {
			Name  string `json:"name"`
			Alive bool   `json:"alive"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Owner != owner {
		t.Fatalf("/ring owner = %s, want %s", info.Owner, owner)
	}
	for _, n := range info.Nodes {
		if n.Name == owner && n.Alive {
			t.Fatalf("/ring still reports dead owner %s alive", owner)
		}
	}

	// The merged list still shows the graph (now cached on the replica).
	var list struct {
		Graphs []string `json:"graphs"`
	}
	resp, err = http.Get(tc.front.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Graphs) != 1 || list.Graphs[0] != reg.ID {
		t.Fatalf("merged list = %v, want [%s]", list.Graphs, reg.ID)
	}
}

// TestRouterRequestIDPropagation: a sane client X-Request-ID survives the
// hop — router and shard both adopt it, and it comes back on the response.
func TestRouterRequestIDPropagation(t *testing.T) {
	tc := newTestCluster(t, "solo")
	req, _ := http.NewRequest(http.MethodPost, tc.front.URL+"/graphs",
		strings.NewReader(`{"spec":"grid2d:4x4","seed":1}`))
	req.Header.Set("X-Request-ID", "client-rid-42")
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "client-rid-42" {
		t.Fatalf("X-Request-ID = %q, want the client's id back", got)
	}
	// A garbage id is replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, tc.front.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" || strings.Contains(got, " ") {
		t.Fatalf("unsafe inbound id handled wrong: %q", got)
	}
}

// TestRouterStream: streaming solves proxy through with rows flowing back.
func TestRouterStream(t *testing.T) {
	tc := newTestCluster(t, "solo")
	var reg struct {
		ID string `json:"id"`
	}
	postJSON(t, tc.front.URL+"/graphs", `{"spec":"grid2d:6x6","seed":1}`, &reg)

	n := 36
	var body bytes.Buffer
	for r := 0; r < 3; r++ {
		b := make([]float64, n)
		b[r], b[n-1-r] = 1, -1
		row, _ := json.Marshal(b)
		body.Write(row)
		body.WriteByte('\n')
	}
	resp, err := http.Post(tc.front.URL+"/graphs/"+reg.ID+"/solve/stream",
		"application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row struct {
			Row       int  `json:"row"`
			Converged bool `json:"converged"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v: %s", rows, err, sc.Text())
		}
		if row.Row != rows || !row.Converged {
			t.Fatalf("row %d = %+v", rows, row)
		}
		rows++
	}
	if rows != 3 {
		t.Fatalf("stream returned %d rows, want 3", rows)
	}
}

// TestRouterAllShardsDown: when no shard is reachable the router answers
// 502 with the JSON error envelope, not a hang or a panic.
func TestRouterAllShardsDown(t *testing.T) {
	tc := newTestCluster(t, "a", "b")
	for _, ts := range tc.shards {
		ts.Close()
	}
	resp, err := http.Post(tc.front.URL+"/graphs/gdead/solve",
		"application/json", strings.NewReader(`{"b":[1,-1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var envelope struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error == "" || envelope.RequestID == "" {
		t.Fatalf("bad error envelope: %+v", envelope)
	}
}

// TestRouterBadRegisterBody: a body the shard key cannot be computed from
// is rejected at the router with 400 — it never reaches a shard.
func TestRouterBadRegisterBody(t *testing.T) {
	tc := newTestCluster(t, "solo")
	for _, body := range []string{`{"spec":"nope:1"}`, `not json`, `{}`} {
		resp, err := http.Post(tc.front.URL+"/graphs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if reqs := tc.router.counters["solo"].requests.Load(); reqs != 0 {
		t.Fatalf("bad register bodies reached the shard: %d requests", reqs)
	}
}

// TestRouterMetrics: the exposition carries the per-node series.
func TestRouterMetrics(t *testing.T) {
	tc := newTestCluster(t, "m1")
	postJSON(t, tc.front.URL+"/graphs", `{"spec":"grid2d:4x4","seed":1}`, nil)
	resp, err := http.Get(tc.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		`parlap_router_requests_total{node="m1"} 1`,
		`parlap_router_node_up{node="m1"} 1`,
		`parlap_router_retries_total{node="m1"} 0`,
		`parlap_router_http_requests_total{route="register",code="200"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
