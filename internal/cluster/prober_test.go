package cluster

import (
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// waitAlive spins until the prober's belief about name matches want.
func waitAlive(t *testing.T, p *Prober, name string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Alive(name) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s never became alive=%v", name, want)
}

// TestProberDownAndRecovery: a node that starts failing its health checks
// is marked down within a probe interval or two, and marked up again once
// it recovers — with the failure backoff capped so recovery is not
// unboundedly delayed.
func TestProberDownAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	p := NewProber([]Node{{Name: "n1", URL: ts.URL}}, ProbeConfig{
		Interval:   20 * time.Millisecond,
		Timeout:    time.Second,
		MaxBackoff: 100 * time.Millisecond,
	}, nil, quietLogger())
	p.Start()
	defer p.Stop()

	waitAlive(t, p, "n1", true)
	healthy.Store(false)
	waitAlive(t, p, "n1", false)
	// While down, Status carries the failure detail.
	var st NodeStatus
	for _, s := range p.Status() {
		if s.Name == "n1" {
			st = s
		}
	}
	if st.Alive || st.Failures == 0 || st.LastErr == "" {
		t.Fatalf("down status = %+v", st)
	}
	healthy.Store(true)
	waitAlive(t, p, "n1", true)
}

// TestProberReportFailure: a datapath-reported transport failure takes the
// node out of rotation immediately — before any probe has run — and the
// kicked probe loop brings it back once the node answers.
func TestProberReportFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	p := NewProber([]Node{{Name: "n1", URL: ts.URL}}, ProbeConfig{
		Interval: time.Hour, // only the kick can recheck within the test
		Timeout:  time.Second,
	}, nil, quietLogger())

	if !p.Alive("n1") {
		t.Fatal("nodes must start optimistically alive")
	}
	p.ReportFailure("n1", errors.New("connection refused"))
	if p.Alive("n1") {
		t.Fatal("ReportFailure did not mark the node down")
	}
	p.ReportFailure("unknown", nil) // must not panic
	p.Start()
	defer p.Stop()
	waitAlive(t, p, "n1", true)
}
