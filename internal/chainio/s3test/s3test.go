// Package s3test is an in-process fake S3 server for tests: an
// httptest.Server speaking just enough of the S3 REST API for
// chainio.S3Store — path-style PutObject/GetObject/DeleteObject and
// ListObjectsV2 with pagination — and verifying the SigV4 signature of
// every request with chainio.VerifySigV4 before acting on it, so the
// client's signing is tested byte-for-byte, not trusted. Nothing here
// needs external infrastructure.
package s3test

import (
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"

	"parlap/internal/chainio"
)

// Server is one fake S3 endpoint holding one bucket in memory.
type Server struct {
	ts *httptest.Server

	// Bucket/Region/AccessKey/SecretKey are the expected request shape;
	// requests for another bucket 404 and bad signatures 403.
	Bucket    string
	Region    string
	AccessKey string
	SecretKey string
	// MaxKeys caps one ListObjectsV2 page (forces pagination when small).
	MaxKeys int

	mu          sync.Mutex
	objects     map[string][]byte
	authErrs    int
	puts, gets  int
	lists, dels int
}

// New starts a fake S3 server with the given bucket and credentials.
// Callers must Close it.
func New(bucket, region, accessKey, secretKey string) *Server {
	s := &Server{
		Bucket:    bucket,
		Region:    region,
		AccessKey: accessKey,
		SecretKey: secretKey,
		MaxKeys:   1000,
		objects:   make(map[string][]byte),
	}
	s.ts = httptest.NewServer(http.HandlerFunc(s.handle))
	return s
}

// URL returns the endpoint base URL for S3Config.Endpoint.
func (s *Server) URL() string { return s.ts.URL }

// Close shuts the server down.
func (s *Server) Close() { s.ts.Close() }

// AuthFailures reports how many requests were rejected for bad signatures.
func (s *Server) AuthFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.authErrs
}

// Counts reports how many put/get/list/delete operations were served.
func (s *Server) Counts() (puts, gets, lists, dels int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.gets, s.lists, s.dels
}

// Object returns the stored bytes for key (bucket-relative) and whether it
// exists.
func (s *Server) Object(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.objects[key]
	return append([]byte(nil), data...), ok
}

// SetObject plants an object directly, bypassing the API — for seeding
// corrupt blobs and foreign keys.
func (s *Server) SetObject(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = append([]byte(nil), data...)
}

func xmlError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	fmt.Fprintf(w, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><Error><Code>%s</Code><Message>%s</Message></Error>", code, msg)
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		xmlError(w, http.StatusBadRequest, "IncompleteBody", err.Error())
		return
	}
	if err := chainio.VerifySigV4(r, body, s.AccessKey, s.SecretKey, s.Region); err != nil {
		s.mu.Lock()
		s.authErrs++
		s.mu.Unlock()
		xmlError(w, http.StatusForbidden, "SignatureDoesNotMatch", err.Error())
		return
	}
	bucket, key, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
	if bucket != s.Bucket {
		xmlError(w, http.StatusNotFound, "NoSuchBucket", bucket)
		return
	}
	switch {
	case r.Method == http.MethodGet && key == "":
		s.handleList(w, r)
	case r.Method == http.MethodPut && key != "":
		s.mu.Lock()
		s.objects[key] = body
		s.puts++
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	case r.Method == http.MethodGet && key != "":
		s.mu.Lock()
		data, ok := s.objects[key]
		s.gets++
		s.mu.Unlock()
		if !ok {
			xmlError(w, http.StatusNotFound, "NoSuchKey", key)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case r.Method == http.MethodDelete && key != "":
		s.mu.Lock()
		delete(s.objects, key)
		s.dels++
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		xmlError(w, http.StatusMethodNotAllowed, "MethodNotAllowed", r.Method)
	}
}

// listPage mirrors the ListObjectsV2 response shape.
type listPage struct {
	XMLName               xml.Name   `xml:"ListBucketResult"`
	Name                  string     `xml:"Name"`
	Prefix                string     `xml:"Prefix"`
	KeyCount              int        `xml:"KeyCount"`
	MaxKeys               int        `xml:"MaxKeys"`
	IsTruncated           bool       `xml:"IsTruncated"`
	NextContinuationToken string     `xml:"NextContinuationToken,omitempty"`
	Contents              []listItem `xml:"Contents"`
}

type listItem struct {
	Key  string `xml:"Key"`
	Size int    `xml:"Size"`
}

// handleList serves ListObjectsV2: keys sorted lexicographically (as S3
// guarantees), filtered by prefix, paginated at MaxKeys per page with the
// last key of a truncated page as the (opaque to clients) continuation
// token.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("list-type") != "2" {
		xmlError(w, http.StatusBadRequest, "InvalidRequest", "only list-type=2 is supported")
		return
	}
	prefix := q.Get("prefix")
	after := q.Get("continuation-token")
	s.mu.Lock()
	s.lists++
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) && (after == "" || k > after) {
			keys = append(keys, k)
		}
	}
	maxKeys := s.MaxKeys
	sizes := make(map[string]int, len(keys))
	for _, k := range keys {
		sizes[k] = len(s.objects[k])
	}
	s.mu.Unlock()
	sort.Strings(keys)
	page := listPage{Name: s.Bucket, Prefix: prefix, MaxKeys: maxKeys}
	if len(keys) > maxKeys {
		keys = keys[:maxKeys]
		page.IsTruncated = true
		page.NextContinuationToken = keys[len(keys)-1]
	}
	for _, k := range keys {
		page.Contents = append(page.Contents, listItem{Key: k, Size: sizes[k]})
	}
	page.KeyCount = len(keys)
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, xml.Header)
	_ = xml.NewEncoder(w).Encode(page)
}
