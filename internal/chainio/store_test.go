package chainio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestDirStoreRoundTrip(t *testing.T) {
	ds, err := NewDirStore(filepath.Join(t.TempDir(), "chains"))
	if err != nil {
		t.Fatal(err)
	}
	id := "g0123456789abcdef0123456789abcdef"
	if _, err := ds.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: got %v, want ErrNotFound", err)
	}
	blob := []byte("payload-v1")
	if err := ds.Put(id, blob); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get(id)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Put overwrites atomically.
	if err := ds.Put(id, []byte("payload-v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = ds.Get(id)
	if string(got) != "payload-v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	ids, err := ds.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := ds.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: got %v, want ErrNotFound", err)
	}
	ids, _ = ds.List()
	if len(ids) != 0 {
		t.Fatalf("List after delete = %v", ids)
	}
}

func TestDirStoreRejectsUnsafeIDs(t *testing.T) {
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "../escape", "a/b", "a\\b", ".hidden", "sp ace"} {
		if err := ds.Put(id, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", id)
		}
		if _, err := ds.Get(id); err == nil {
			t.Fatalf("Get(%q) accepted", id)
		}
	}
}

// TestDirStoreSweepsStaleStagingFiles: a crash between CreateTemp and the
// deferred Remove strands ".{id}.tmp-*" files forever; re-opening the store
// must sweep them while leaving published snapshots and foreign files alone.
func TestDirStoreSweepsStaleStagingFiles(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("gabc", []byte("published")); err != nil {
		t.Fatal(err)
	}
	// Plant staging files exactly as CreateTemp("."+id+".tmp-*") names them,
	// plus a dotfile that is NOT a staging file and must survive.
	stale := []string{".gdef.tmp-123456", ".gabc.tmp-0", ".g0123456789abcdef0123456789abcdef.tmp-99"}
	for _, name := range stale {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ".keepme"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirStore(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale staging file %s survived the sweep (stat err: %v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".keepme")); err != nil {
		t.Errorf("non-staging dotfile swept: %v", err)
	}
	if got, err := ds.Get("gabc"); err != nil || string(got) != "published" {
		t.Fatalf("published snapshot damaged by sweep: %q, %v", got, err)
	}
}

func TestDirStoreListSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("gabc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Leftover temp files, unrelated files, and subdirectories are not
	// snapshots.
	os.WriteFile(filepath.Join(dir, ".gdef.chain.tmp-1"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	os.Mkdir(filepath.Join(dir, "sub.chain"), 0o755)
	ids, err := ds.List()
	if err != nil || len(ids) != 1 || ids[0] != "gabc" {
		t.Fatalf("List = %v, %v; want [gabc]", ids, err)
	}
}
