package chainio

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// S3Store is a BlobStore over any S3-compatible object store (AWS S3, minio,
// Ceph RGW, …), written against the stdlib only: SigV4 request signing and
// the four operations the snapshot layer needs — PutObject, GetObject,
// DeleteObject, ListObjectsV2. It is the shared-remote-memory backend of the
// multi-node tier: every shard write-behinds built chains to one bucket, and
// a cold or failover replica warms a chain from the bucket instead of
// rebuilding (the restore path guarantees the result is bit-identical to a
// fresh build, so sharing the store never changes answers).
//
// Objects are stored under Prefix + id + ".chain", addressed by the same
// canonical graph hash as DirStore files. Put overwrites are atomic on the
// S3 side (last complete PUT wins; readers never see a torn object), which
// satisfies the BlobStore contract.
type S3Store struct {
	endpoint  *url.URL
	region    string
	bucket    string
	prefix    string
	accessKey string
	secretKey string
	client    *http.Client
	now       func() time.Time // clock hook; tests pin it for stable signatures
}

// S3Config configures an S3Store. Endpoint, Bucket, AccessKey and SecretKey
// are required; the rest default sensibly.
type S3Config struct {
	// Endpoint is the server base URL, e.g. "http://127.0.0.1:9000" for a
	// local minio or "https://s3.us-east-1.amazonaws.com". Requests are
	// path-style (endpoint/bucket/key), which every S3-compatible store
	// accepts and which needs no per-bucket DNS.
	Endpoint string
	// Region is the SigV4 signing region. Default "us-east-1" (what minio
	// and most S3 clones expect unless configured otherwise).
	Region string
	// Bucket must already exist; the store does not create it.
	Bucket string
	// Prefix is prepended to every object key (a trailing "/" is added when
	// missing), so one bucket can hold several deployments' snapshots.
	Prefix string
	// AccessKey / SecretKey are the SigV4 credentials.
	AccessKey string
	SecretKey string
	// Client is the HTTP client to use; nil means http.DefaultClient.
	Client *http.Client
}

// NewS3Store validates cfg and returns a store. It performs no I/O — a
// misconfigured endpoint surfaces on the first operation, counted by the
// serving layer as a snapshot error (never an outage).
func NewS3Store(cfg S3Config) (*S3Store, error) {
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("chainio: s3: empty endpoint")
	}
	u, err := url.Parse(cfg.Endpoint)
	if err != nil {
		return nil, fmt.Errorf("chainio: s3: bad endpoint: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("chainio: s3: endpoint scheme must be http or https, got %q", u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("chainio: s3: endpoint %q has no host", cfg.Endpoint)
	}
	if p := strings.TrimSuffix(u.Path, "/"); p != "" {
		return nil, fmt.Errorf("chainio: s3: endpoint must not carry a path (got %q)", u.Path)
	}
	if cfg.Bucket == "" {
		return nil, fmt.Errorf("chainio: s3: empty bucket")
	}
	for i := 0; i < len(cfg.Bucket); i++ {
		c := cfg.Bucket[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '.') {
			return nil, fmt.Errorf("chainio: s3: bucket %q has invalid character %q", cfg.Bucket, c)
		}
	}
	if cfg.AccessKey == "" || cfg.SecretKey == "" {
		return nil, fmt.Errorf("chainio: s3: access key and secret key are required")
	}
	region := cfg.Region
	if region == "" {
		region = "us-east-1"
	}
	prefix := cfg.Prefix
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &S3Store{
		endpoint:  u,
		region:    region,
		bucket:    cfg.Bucket,
		prefix:    prefix,
		accessKey: cfg.AccessKey,
		secretKey: cfg.SecretKey,
		client:    client,
		now:       time.Now,
	}, nil
}

// key maps a snapshot id to its object key.
func (s *S3Store) key(id string) (string, error) {
	if !validID(id) {
		return "", fmt.Errorf("chainio: invalid snapshot id %q", id)
	}
	return s.prefix + id + snapshotExt, nil
}

// do signs and executes one S3 request. key == "" addresses the bucket
// itself (ListObjectsV2). The response body is the caller's to close.
func (s *S3Store) do(method, key string, query url.Values, body []byte) (*http.Response, error) {
	path := "/" + s.bucket
	if key != "" {
		path += "/" + key
	}
	canonicalURI := uriEncode(path, false)
	rawQuery := canonicalQuery(query)
	u := s.endpoint.Scheme + "://" + s.endpoint.Host + canonicalURI
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequest(method, u, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("chainio: s3: building request: %w", err)
	}
	sum := sha256.Sum256(body)
	payloadHash := hex.EncodeToString(sum[:])
	amzDate := s.now().UTC().Format(amzDateFormat)
	req.Header.Set("x-amz-date", amzDate)
	req.Header.Set("x-amz-content-sha256", payloadHash)
	headers := map[string]string{
		"host":                 s.endpoint.Host,
		"x-amz-content-sha256": payloadHash,
		"x-amz-date":           amzDate,
	}
	signed := signedHeaderNames(headers)
	sig := SignV4(method, canonicalURI, query, headers, payloadHash, amzDate, s.region, s.secretKey)
	scope := amzDate[:8] + "/" + s.region + "/s3/aws4_request"
	req.Header.Set("Authorization", fmt.Sprintf(
		"AWS4-HMAC-SHA256 Credential=%s/%s, SignedHeaders=%s, Signature=%s",
		s.accessKey, scope, strings.Join(signed, ";"), sig))
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("chainio: s3: %s %s: %w", method, path, err)
	}
	return resp, nil
}

// drainClose discards and closes a response body so the connection is
// reusable.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	_ = resp.Body.Close()
}

// httpError renders a non-2xx S3 response as an error, including the start
// of the XML error document the server sent.
func httpError(op string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	_ = resp.Body.Close()
	return fmt.Errorf("chainio: s3: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(snippet)))
}

func (s *S3Store) Put(id string, data []byte) error {
	k, err := s.key(id)
	if err != nil {
		return err
	}
	resp, err := s.do(http.MethodPut, k, nil, data)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return httpError("PutObject "+id, resp)
	}
	drainClose(resp)
	return nil
}

func (s *S3Store) Get(id string) ([]byte, error) {
	k, err := s.key(id)
	if err != nil {
		return nil, err
	}
	resp, err := s.do(http.MethodGet, k, nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		drainClose(resp)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("GetObject "+id, resp)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("chainio: s3: reading object %s: %w", id, err)
	}
	return data, nil
}

// Delete removes the snapshot. Unlike DirStore, it does not report
// ErrNotFound for an absent id: S3 DELETE is idempotent and answers 204
// whether or not the object existed, and a pre-flight existence check would
// only add a race.
func (s *S3Store) Delete(id string) error {
	k, err := s.key(id)
	if err != nil {
		return err
	}
	resp, err := s.do(http.MethodDelete, k, nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return httpError("DeleteObject "+id, resp)
	}
	drainClose(resp)
	return nil
}

// listBucketResult is the subset of the ListObjectsV2 response the store
// consumes.
type listBucketResult struct {
	XMLName               xml.Name `xml:"ListBucketResult"`
	IsTruncated           bool     `xml:"IsTruncated"`
	NextContinuationToken string   `xml:"NextContinuationToken"`
	Contents              []struct {
		Key string `xml:"Key"`
	} `xml:"Contents"`
}

func (s *S3Store) List() ([]string, error) {
	ids := []string{}
	token := ""
	for {
		query := url.Values{"list-type": {"2"}}
		if s.prefix != "" {
			query.Set("prefix", s.prefix)
		}
		if token != "" {
			query.Set("continuation-token", token)
		}
		resp, err := s.do(http.MethodGet, "", query, nil)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, httpError("ListObjectsV2", resp)
		}
		var page listBucketResult
		err = xml.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&page)
		_ = resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("chainio: s3: decoding ListObjectsV2 response: %w", err)
		}
		for _, obj := range page.Contents {
			name := strings.TrimPrefix(obj.Key, s.prefix)
			if !strings.HasSuffix(name, snapshotExt) || strings.Contains(name, "/") {
				continue // foreign object sharing the prefix
			}
			id := strings.TrimSuffix(name, snapshotExt)
			if validID(id) {
				ids = append(ids, id)
			}
		}
		if !page.IsTruncated || page.NextContinuationToken == "" {
			break
		}
		token = page.NextContinuationToken
	}
	sort.Strings(ids)
	return ids, nil
}

// --- SigV4 signing core ---

// amzDateFormat is the ISO8601 basic timestamp SigV4 uses.
const amzDateFormat = "20060102T150405Z"

// SignV4 computes the AWS Signature Version 4 of one S3 request from its
// canonical parts: method, the already-URI-encoded path, the query, the
// signed headers (lowercase name → value; "host" included), the hex SHA-256
// of the payload, the x-amz-date timestamp, the signing region, and the
// secret key. Exported so a fake S3 server in tests can recompute the
// signature of an incoming request and verify it byte-for-byte instead of
// trusting the client; VerifySigV4 packages exactly that check.
func SignV4(method, canonicalURI string, query url.Values, headers map[string]string, payloadHash, amzDate, region, secretKey string) string {
	names := signedHeaderNames(headers)
	var cr strings.Builder
	cr.WriteString(method)
	cr.WriteByte('\n')
	cr.WriteString(canonicalURI)
	cr.WriteByte('\n')
	cr.WriteString(canonicalQuery(query))
	cr.WriteByte('\n')
	for _, n := range names {
		cr.WriteString(n)
		cr.WriteByte(':')
		cr.WriteString(strings.TrimSpace(headers[n]))
		cr.WriteByte('\n')
	}
	cr.WriteByte('\n')
	cr.WriteString(strings.Join(names, ";"))
	cr.WriteByte('\n')
	cr.WriteString(payloadHash)
	crSum := sha256.Sum256([]byte(cr.String()))

	date := amzDate[:8]
	scope := date + "/" + region + "/s3/aws4_request"
	stringToSign := "AWS4-HMAC-SHA256\n" + amzDate + "\n" + scope + "\n" + hex.EncodeToString(crSum[:])

	k := hmacSHA256([]byte("AWS4"+secretKey), date)
	k = hmacSHA256(k, region)
	k = hmacSHA256(k, "s3")
	k = hmacSHA256(k, "aws4_request")
	return hex.EncodeToString(hmacSHA256(k, stringToSign))
}

// VerifySigV4 checks the SigV4 signature of an incoming S3 request against
// the expected credentials: it parses the Authorization header, rebuilds the
// canonical request from the request line, the listed signed headers, and
// the payload hash header (which must match the actual body, passed in by
// the caller since the request body may already be consumed), recomputes the
// signature, and compares. It is the verification half of SignV4, intended
// for in-process fake S3 servers in tests.
func VerifySigV4(r *http.Request, body []byte, accessKey, secretKey, region string) error {
	auth := r.Header.Get("Authorization")
	const prefix = "AWS4-HMAC-SHA256 "
	if !strings.HasPrefix(auth, prefix) {
		return fmt.Errorf("chainio: s3: missing or non-SigV4 Authorization header %q", auth)
	}
	parts := map[string]string{}
	for _, f := range strings.Split(auth[len(prefix):], ",") {
		f = strings.TrimSpace(f)
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("chainio: s3: malformed Authorization field %q", f)
		}
		parts[k] = v
	}
	cred := strings.Split(parts["Credential"], "/")
	if len(cred) != 5 || cred[0] != accessKey {
		return fmt.Errorf("chainio: s3: wrong access key in credential %q", parts["Credential"])
	}
	if cred[2] != region || cred[3] != "s3" || cred[4] != "aws4_request" {
		return fmt.Errorf("chainio: s3: wrong credential scope %q", parts["Credential"])
	}
	amzDate := r.Header.Get("x-amz-date")
	if amzDate == "" || !strings.HasPrefix(amzDate, cred[1]) {
		return fmt.Errorf("chainio: s3: x-amz-date %q does not match credential date %q", amzDate, cred[1])
	}
	sum := sha256.Sum256(body)
	payloadHash := hex.EncodeToString(sum[:])
	if got := r.Header.Get("x-amz-content-sha256"); got != payloadHash {
		return fmt.Errorf("chainio: s3: payload hash %q does not match body hash %s", got, payloadHash)
	}
	headers := map[string]string{}
	for _, n := range strings.Split(parts["SignedHeaders"], ";") {
		if n == "host" {
			headers[n] = r.Host
			continue
		}
		headers[n] = r.Header.Get(n)
	}
	want := SignV4(r.Method, uriEncode(r.URL.Path, false), r.URL.Query(), headers, payloadHash, amzDate, region, secretKey)
	if !hmac.Equal([]byte(want), []byte(parts["Signature"])) {
		return fmt.Errorf("chainio: s3: signature mismatch: got %s want %s", parts["Signature"], want)
	}
	return nil
}

func hmacSHA256(key []byte, msg string) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(msg))
	return h.Sum(nil)
}

// signedHeaderNames returns the sorted lowercase names of the headers to
// sign.
func signedHeaderNames(headers map[string]string) []string {
	names := make([]string, 0, len(headers))
	for n := range headers {
		names = append(names, strings.ToLower(n))
	}
	sort.Strings(names)
	return names
}

// uriEncode is the SigV4 canonical URI encoding: every byte percent-encoded
// except the unreserved set, with "/" kept literal in paths.
func uriEncode(s string, encodeSlash bool) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			b.WriteByte(c)
		case c == '/' && !encodeSlash:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// canonicalQuery renders query parameters in SigV4 canonical form: sorted by
// name then value, each URI-encoded with "/" escaped.
func canonicalQuery(q url.Values) string {
	if len(q) == 0 {
		return ""
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		vals := append([]string(nil), q[k]...)
		sort.Strings(vals)
		for _, v := range vals {
			parts = append(parts, uriEncode(k, true)+"="+uriEncode(v, true))
		}
	}
	return strings.Join(parts, "&")
}

var _ BlobStore = (*S3Store)(nil)
