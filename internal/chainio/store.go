package chainio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNotFound reports that a store holds no snapshot for the requested id.
var ErrNotFound = errors.New("chainio: snapshot not found")

// BlobStore is the storage a serving layer persists snapshots through. Ids
// are canonical graph hashes ("g" + 32 hex digits); payloads are opaque
// snapshot blobs. Implementations must make Put atomic with respect to
// concurrent Gets of the same id (readers see the old blob or the new one,
// never a torn write) and return ErrNotFound from Get for unknown ids.
type BlobStore interface {
	Put(id string, data []byte) error
	Get(id string) ([]byte, error)
	List() ([]string, error)
	Delete(id string) error
}

// snapshotExt names snapshot files in a DirStore.
const snapshotExt = ".chain"

// DirStore is a BlobStore over a local directory: one <id>.chain file per
// snapshot, written via temp-file-and-rename. The staged file is fsynced
// before the rename and the directory is fsynced after it, so a crash
// mid-Put never leaves a torn blob under a valid name, and once Put has
// returned the published blob survives power loss.
type DirStore struct {
	dir string
}

// NewDirStore creates the directory if needed, sweeps staging files stranded
// by a crash mid-Put (a temp file between CreateTemp and the deferred Remove
// has no owner left to clean it up), and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("chainio: empty snapshot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chainio: creating snapshot directory: %w", err)
	}
	ds := &DirStore{dir: dir}
	if err := ds.sweepStaging(); err != nil {
		return nil, err
	}
	return ds, nil
}

// sweepStaging removes stale Put staging files (".{id}.tmp-*"). Only this
// process family writes them, and any found at open time belong to a Put
// that died before publishing — a concurrent Put's live staging file cannot
// exist yet when the store for its directory is first opened.
func (ds *DirStore) sweepStaging() error {
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		return fmt.Errorf("chainio: sweeping snapshot directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp-") {
			continue
		}
		if err := os.Remove(filepath.Join(ds.dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("chainio: removing stale staging file %s: %w", name, err)
		}
	}
	return nil
}

// Dir reports the directory the store persists into.
func (ds *DirStore) Dir() string { return ds.dir }

func (ds *DirStore) path(id string) (string, error) {
	if !validID(id) {
		return "", fmt.Errorf("chainio: invalid snapshot id %q", id)
	}
	return filepath.Join(ds.dir, id+snapshotExt), nil
}

// validID accepts only ids that are safe as file names: non-empty, no path
// separators or traversal, nothing hidden.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

func (ds *DirStore) Put(id string, data []byte) error {
	p, err := ds.path(id)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ds.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("chainio: staging snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("chainio: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("chainio: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("chainio: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("chainio: publishing snapshot: %w", err)
	}
	// The rename published the blob in memory, but the directory entry is
	// not durable until the directory itself is fsynced: without this a
	// power loss right after Put could lose the published snapshot entirely
	// (file data synced, name never recorded).
	d, err := os.Open(ds.dir)
	if err != nil {
		return fmt.Errorf("chainio: opening snapshot directory for sync: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("chainio: syncing snapshot directory: %w", serr)
	}
	return nil
}

func (ds *DirStore) Get(id string) ([]byte, error) {
	p, err := ds.path(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("chainio: reading snapshot: %w", err)
	}
	return data, nil
}

func (ds *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(ds.dir)
	if err != nil {
		return nil, fmt.Errorf("chainio: listing snapshots: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapshotExt) || strings.HasPrefix(name, ".") {
			continue
		}
		id := strings.TrimSuffix(name, snapshotExt)
		if validID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func (ds *DirStore) Delete(id string) error {
	p, err := ds.path(id)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return fmt.Errorf("chainio: deleting snapshot: %w", err)
	}
	return nil
}
