// Package chainio persists built preconditioner chains: a versioned binary
// snapshot format for a fully built solver.Solver, content-addressed by the
// canonical graph hash, plus the pluggable blob storage the serving layer
// writes snapshots through (store.go).
//
// The economics motivating it are the paper's: chain construction is the
// expensive near-linear-work step, every subsequent solve is cheap — so a
// chain that dies with its process turns every restart under load into a
// rebuild stampede. A snapshot captures exactly the state that cannot be
// recomputed cheaply (per-level graphs and sparsifier outputs with exact
// float64 weight bits, elimination op logs, the calibrated Chebyshev
// schedule, the dense bottom factor, ChainParams) and leaves everything
// deterministic-and-cheap (CSRs, component indexes, reverse indexes,
// grounding bookkeeping) to be recomputed on restore by the same
// fixed-schedule passes the build ran — so a restored chain produces
// bit-identical solves to the original for every Workers setting.
//
// Wire layout (all integers little-endian, floats as IEEE-754 bit patterns):
//
//	magic   [8]byte "PLCHSNP\x00"
//	version uint32  (see Version; anything else is rejected)
//	id      uint16 length + bytes (the canonical graph hash, "g" + 32 hex)
//	body    ChainParams, MaxIter, the input graph, per-level payloads,
//	        the bottom graph and its grounded dense LDL^T factor
//	trailer [32]byte SHA-256 over every preceding byte
//
// Truncation, bit corruption (checksum mismatch), unknown versions, and
// id/content mismatches (the embedded graph re-hashed through
// graph.CanonicalID must equal the stored id) are all rejected with typed
// errors — never a panic, never a silently-wrong chain.
package chainio

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/solver"
)

const (
	// Version is the current snapshot format version. Version 3 appended
	// ChainParams.Precision + ReorderLevels to the parameter record and the
	// per-level precision-gate outcome (ValF32, KappaF64) plus the
	// Cuthill–McKee permutation; version 2 appended
	// ChainParams.BudgetLiftVertices (the size-adaptive Chebyshev schedule
	// policy). Earlier snapshots are rejected rather than guessed at —
	// rebuilding a chain is cheap next to silently restoring a different
	// schedule or layout.
	Version = 3

	magicLen   = 8
	trailerLen = sha256.Size
	// headerLen is magic + version + id length prefix.
	headerLen = magicLen + 4 + 2
)

var magic = [magicLen]byte{'P', 'L', 'C', 'H', 'S', 'N', 'P', 0}

// ErrCorrupt rejects snapshots whose bytes fail structural validation:
// truncation, checksum mismatch, bad magic, or an inconsistent payload.
var ErrCorrupt = errors.New("chainio: corrupt snapshot")

// ErrVersion rejects snapshots written by an unknown format version.
var ErrVersion = errors.New("chainio: unsupported snapshot version")

// ErrWrongGraph rejects snapshots whose content address does not match the
// requested graph (or whose embedded graph does not re-hash to its own id).
var ErrWrongGraph = errors.New("chainio: snapshot is for a different graph")

// Encode serializes a built solver into a self-verifying snapshot blob
// addressed by id (the graph's canonical hash, as from graph.CanonicalID).
func Encode(s *solver.Solver, id string) ([]byte, error) {
	if len(id) > math.MaxUint16 {
		return nil, fmt.Errorf("chainio: id %q too long", id)
	}
	d := s.Snapshot()
	var buf bytes.Buffer
	buf.Grow(1 << 16)
	buf.Write(magic[:])
	w := writer{&buf}
	w.u32(Version)
	w.u16(uint16(len(id)))
	buf.WriteString(id)

	encodeParams(w, &d.Params)
	w.i64(int64(d.MaxIter))
	encodeGraph(w, d.G)
	w.u32(uint32(len(d.Levels)))
	for i := range d.Levels {
		lvl := &d.Levels[i]
		encodeGraph(w, lvl.G)
		encodeGraph(w, lvl.H)
		w.u64(uint64(len(lvl.Subgraph)))
		for _, e := range lvl.Subgraph {
			w.i64(int64(e))
		}
		w.i64(int64(lvl.Sampled))
		w.f64(lvl.StretchS)
		w.u64(uint64(len(lvl.Ops)))
		for j := range lvl.Ops {
			op := &lvl.Ops[j]
			w.u8(uint8(op.Kind))
			w.i32(op.V)
			w.i32(op.A)
			w.i32(op.B)
			w.f64(op.W1)
			w.f64(op.W2)
		}
		w.u64(uint64(len(lvl.RoundEnd)))
		for _, e := range lvl.RoundEnd {
			w.i64(int64(e))
		}
		w.f64(lvl.Kappa)
		w.i64(int64(lvl.ChebIts))
		w.f64(lvl.EigHi)
		w.f64(lvl.EigLo)
		w.f64(lvl.KappaMeasured)
		w.bool(lvl.Calibrated)
		w.bool(lvl.ValF32)
		w.f64(lvl.KappaF64)
		w.u64(uint64(len(lvl.Perm)))
		for _, v := range lvl.Perm {
			w.i32(v)
		}
	}
	encodeGraph(w, d.BottomG)
	l, diag := d.Bottom.Parts()
	w.i64(int64(d.Bottom.Dim()))
	for _, v := range l {
		w.f64(v)
	}
	for _, v := range diag {
		w.f64(v)
	}

	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// Decode parses, verifies and reassembles a snapshot blob into a ready-to-
// solve Solver running with opt's execution policy. wantID, when non-empty,
// must match the snapshot's stored id; the embedded graph is additionally
// re-hashed and must match the stored id, so a blob renamed onto the wrong
// key can never serve a wrong chain. Verification order: length, checksum,
// magic, version, id — so corruption is reported as corruption even when it
// hits the header fields themselves.
func Decode(data []byte, wantID string, opt solver.Options) (*solver.Solver, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any valid snapshot", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &reader{data: body}
	if !bytes.Equal(r.bytes(magicLen), magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("%w: got version %d, this build reads %d", ErrVersion, v, Version)
	}
	id := string(r.bytes(int(r.u16())))
	if wantID != "" && id != wantID {
		return nil, fmt.Errorf("%w: snapshot addresses %q, want %q", ErrWrongGraph, id, wantID)
	}

	d := &solver.SnapshotData{}
	decodeParams(r, &d.Params)
	d.MaxIter = int(r.i64())
	d.G = decodeGraph(r)
	nLevels := r.u32()
	if r.err == nil && uint64(nLevels) > uint64(r.remaining()) {
		r.fail("level count %d exceeds payload", nLevels)
	}
	for i := 0; r.err == nil && i < int(nLevels); i++ {
		lvl := solver.SnapshotLevel{}
		lvl.G = decodeGraph(r)
		lvl.H = decodeGraph(r)
		nSub := r.count(8)
		lvl.Subgraph = make([]int, 0, nSub)
		for j := 0; r.err == nil && j < nSub; j++ {
			lvl.Subgraph = append(lvl.Subgraph, int(r.i64()))
		}
		lvl.Sampled = int(r.i64())
		lvl.StretchS = r.f64()
		nOps := r.count(29) // kind u8 + three i32 + two f64 per op
		lvl.Ops = make([]solver.ElimOp, 0, nOps)
		for j := 0; r.err == nil && j < nOps; j++ {
			var op solver.ElimOp
			k := r.u8()
			if k > 2 {
				r.fail("op kind %d unknown", k)
				break
			}
			op.Kind = solver.ElimKind(k)
			op.V = r.i32()
			op.A = r.i32()
			op.B = r.i32()
			op.W1 = r.f64()
			op.W2 = r.f64()
			lvl.Ops = append(lvl.Ops, op)
		}
		nRounds := r.count(8)
		lvl.RoundEnd = make([]int, 0, nRounds)
		for j := 0; r.err == nil && j < nRounds; j++ {
			lvl.RoundEnd = append(lvl.RoundEnd, int(r.i64()))
		}
		lvl.Kappa = r.f64()
		lvl.ChebIts = int(r.i64())
		lvl.EigHi = r.f64()
		lvl.EigLo = r.f64()
		lvl.KappaMeasured = r.f64()
		lvl.Calibrated = r.bool()
		lvl.ValF32 = r.bool()
		lvl.KappaF64 = r.f64()
		nPerm := r.count(4)
		if nPerm > 0 {
			lvl.Perm = make([]int32, 0, nPerm)
			for j := 0; r.err == nil && j < nPerm; j++ {
				lvl.Perm = append(lvl.Perm, r.i32())
			}
			// Permutation validity (range + bijection) is checked by
			// AssembleSnapshot against the level's vertex count.
		}
		d.Levels = append(d.Levels, lvl)
	}
	d.BottomG = decodeGraph(r)
	bn := r.i64()
	// Cap before squaring (overflow) and before allocating (a corrupt
	// dimension must not drive the n² allocation it claims to need).
	if r.err == nil && (bn < 0 || bn > 1<<20 || (bn*bn+bn)*8 > int64(r.remaining())) {
		r.fail("bottom factor dimension %d exceeds payload", bn)
	}
	if r.err == nil {
		l := make([]float64, bn*bn)
		for j := range l {
			l[j] = r.f64()
		}
		diag := make([]float64, bn)
		for j := range diag {
			diag[j] = r.f64()
		}
		if r.err == nil {
			f, err := matrix.NewDenseFactorFromParts(int(bn), l, diag)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			d.Bottom = f
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.remaining())
	}

	// Content addressing: the embedded graph must hash to the stored id, so
	// a snapshot can only ever be replayed against the graph it was built
	// from, no matter what key the blob was filed under.
	if got := graph.CanonicalID(d.G); got != id {
		return nil, fmt.Errorf("%w: embedded graph hashes to %q, snapshot claims %q", ErrWrongGraph, got, id)
	}
	s, err := solver.AssembleSnapshot(d, opt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}

// SnapshotID parses just enough of a snapshot blob to report its stored
// content address, without verifying or decoding the payload.
func SnapshotID(data []byte) (string, error) {
	if len(data) < headerLen {
		return "", fmt.Errorf("%w: too short for a header", ErrCorrupt)
	}
	if !bytes.Equal(data[:magicLen], magic[:]) {
		return "", fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	idLen := int(binary.LittleEndian.Uint16(data[magicLen+4:]))
	if len(data) < headerLen+idLen {
		return "", fmt.Errorf("%w: truncated id", ErrCorrupt)
	}
	return string(data[headerLen : headerLen+idLen]), nil
}

func encodeParams(w writer, p *solver.ChainParams) {
	w.f64(p.Sparsify.Kappa)
	w.f64(p.Sparsify.OversampleC)
	w.f64(p.Sparsify.Beta)
	w.i64(int64(p.Sparsify.Lambda))
	w.bool(p.Sparsify.PaperConstants)
	// Sparsify.Workers is runtime execution policy, not chain identity; the
	// restoring process supplies its own.
	w.i64(int64(p.BottomSizeEdges))
	w.i64(int64(p.BottomFloor))
	w.i64(int64(p.MaxBottomVertices))
	w.i64(int64(p.MaxLevels))
	w.f64(p.ShrinkRetry)
	w.f64(p.KappaGrowth)
	w.f64(p.ChebSlack)
	w.i64(int64(p.MaxChebIts))
	w.i64(int64(p.MinChebIts))
	w.i64(int64(p.CalibIters))
	w.f64(p.EigSafety)
	w.f64(p.ChebBudget)
	w.i64(p.Seed)
	w.i64(int64(p.BudgetLiftVertices))
	w.u8(uint8(p.Precision))
	w.bool(p.ReorderLevels)
}

func decodeParams(r *reader, p *solver.ChainParams) {
	p.Sparsify.Kappa = r.f64()
	p.Sparsify.OversampleC = r.f64()
	p.Sparsify.Beta = r.f64()
	p.Sparsify.Lambda = int(r.i64())
	p.Sparsify.PaperConstants = r.bool()
	p.BottomSizeEdges = int(r.i64())
	p.BottomFloor = int(r.i64())
	p.MaxBottomVertices = int(r.i64())
	p.MaxLevels = int(r.i64())
	p.ShrinkRetry = r.f64()
	p.KappaGrowth = r.f64()
	p.ChebSlack = r.f64()
	p.MaxChebIts = int(r.i64())
	p.MinChebIts = int(r.i64())
	p.CalibIters = int(r.i64())
	p.EigSafety = r.f64()
	p.ChebBudget = r.f64()
	p.Seed = r.i64()
	p.BudgetLiftVertices = int(r.i64())
	prec := r.u8()
	if prec > uint8(solver.PrecisionF32) {
		r.fail("unknown chain precision %d", prec)
	}
	p.Precision = solver.Precision(prec)
	p.ReorderLevels = r.bool()
}

func encodeGraph(w writer, g *graph.Graph) {
	w.i64(int64(g.N))
	w.u64(uint64(len(g.Edges)))
	for _, e := range g.Edges {
		w.i64(int64(e.U))
		w.i64(int64(e.V))
		w.f64(e.W)
	}
}

// maxSnapshotVertices is a format-level cap on one graph's vertex count —
// far above anything the solver serves (elimination ops index vertices with
// int32 anyway), and low enough that a corrupted count is rejected here
// instead of driving a multi-gigabyte CSR allocation.
const maxSnapshotVertices = 1 << 27

func decodeGraph(r *reader) *graph.Graph {
	n := int(r.i64())
	m := r.count(24)
	if r.err == nil && (n < 0 || n > maxSnapshotVertices) {
		r.fail("implausible vertex count %d", n)
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; r.err == nil && i < m; i++ {
		u := int(r.i64())
		v := int(r.i64())
		wt := r.f64()
		// CSR construction indexes by endpoint unchecked; reject here so a
		// corrupt edge can only ever produce an error, not a panic.
		if u < 0 || u >= n || v < 0 || v >= n {
			r.fail("edge %d endpoints (%d, %d) out of range for %d vertices", i, u, v, n)
			break
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: wt})
	}
	if r.err != nil {
		return &graph.Graph{}
	}
	return graph.FromEdgesW(1, n, edges)
}

// writer appends fixed-width little-endian fields to a buffer. Writes to a
// bytes.Buffer cannot fail, so it carries no error state.
type writer struct{ buf *bytes.Buffer }

func (w writer) u8(v uint8) { w.buf.WriteByte(v) }
func (w writer) bool(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}
func (w writer) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.buf.Write(b[:])
}
func (w writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}
func (w writer) i32(v int32) { w.u32(uint32(v)) }
func (w writer) i64(v int64) { w.u64(uint64(v)) }
func (w writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}

// reader consumes fixed-width fields with bounds checking: the first
// out-of-bounds read (or explicit fail) latches err and every subsequent
// read returns zero, so decode loops can run straight-line and check err
// once per section. Checksum verification runs before any reader is built,
// so latched errors indicate a crafted or internally inconsistent payload.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.remaining() < n {
		r.fail("truncated payload (want %d bytes at offset %d of %d)", n, r.off, len(r.data))
		return make([]byte, n&0xffff)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// count reads a u64 element count and sanity-checks it against the bytes
// actually remaining (elemSize bytes per element), so a corrupt count can
// never drive an enormous allocation.
func (r *reader) count(elemSize int) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.remaining()/elemSize) {
		r.fail("count %d exceeds remaining payload", v)
		return 0
	}
	return int(v)
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
