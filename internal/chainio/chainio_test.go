package chainio

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/solver"
)

// testbedGraphs mirrors the solver fuzz suite's families: the graphs the
// service actually meets, including a disconnected union (multi-component
// restores exercise the recomputed grounding bookkeeping).
func testbedGraphs() []struct {
	name string
	g    *graph.Graph
} {
	g1 := gen.Grid2D(6, 7)
	g2 := gen.PreferentialAttachment(90, 2, 7)
	var edges []graph.Edge
	edges = append(edges, g1.Edges...)
	for _, e := range g2.Edges {
		edges = append(edges, graph.Edge{U: e.U + g1.N, V: e.V + g1.N, W: e.W})
	}
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"grid2d:12x9", gen.Grid2D(12, 9)},
		{"regular:220:4", gen.RandomRegular(220, 4, 11)},
		{"pa:300:3", gen.PreferentialAttachment(300, 3, 12)},
		{fmt.Sprintf("union(n=%d+%d)", g1.N, g2.N), graph.FromEdges(g1.N+g2.N, edges)},
	}
}

func buildSolver(t *testing.T, g *graph.Graph, workers int) *solver.Solver {
	t.Helper()
	params := solver.DefaultChainParams()
	params.Seed = 42
	s, err := solver.NewWithOptions(g, params, solver.Options{Workers: workers}, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func randomRHS(n int, seed int64, cols int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	bs := make([][]float64, cols)
	for c := range bs {
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		bs[c] = b
	}
	return bs
}

func assertBitwiseEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: differs at entry %d: %x vs %x",
				label, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestRoundTripBitwise is the keystone: a restored chain must produce
// bit-identical Solve and SolveBatch results to the original, for every
// testbed family and every Workers setting — a snapshot is a cache, not an
// approximation.
func TestRoundTripBitwise(t *testing.T) {
	const eps = 1e-8
	for _, tb := range testbedGraphs() {
		t.Run(tb.name, func(t *testing.T) {
			orig := buildSolver(t, tb.g, 0)
			id := graph.CanonicalID(tb.g)
			data, err := Encode(orig, id)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			bs := randomRHS(tb.g.N, 0x5eed, 3)
			xRef, stRef := orig.Solve(bs[0], eps)
			xsRef, _ := orig.SolveBatch(bs, eps)
			for _, w := range []int{1, 2, 4} {
				restored, err := Decode(data, id, solver.Options{Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: decode: %v", w, err)
				}
				x, st := restored.Solve(bs[0], eps)
				if st.Iterations != stRef.Iterations {
					t.Fatalf("workers=%d: %d iterations vs %d", w, st.Iterations, stRef.Iterations)
				}
				assertBitwiseEqual(t, fmt.Sprintf("workers=%d solve", w), xRef, x)
				xs, _ := restored.SolveBatch(bs, eps)
				for c := range xsRef {
					assertBitwiseEqual(t, fmt.Sprintf("workers=%d batch col %d", w, c), xsRef[c], xs[c])
				}
			}
		})
	}
}

// TestRoundTripPreservesShape locks the cheap structural invariants: same
// chain depth, same per-level edge counts and schedule, same memory-model
// surface (MaxIter).
func TestRoundTripPreservesShape(t *testing.T) {
	g := gen.Grid2D(10, 10)
	orig := buildSolver(t, g, 1)
	id := graph.CanonicalID(g)
	data, err := Encode(orig, id)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Decode(data, id, solver.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Chain.Depth() != orig.Chain.Depth() {
		t.Fatalf("depth %d vs %d", restored.Chain.Depth(), orig.Chain.Depth())
	}
	ec, eo := restored.Chain.EdgeCounts(), orig.Chain.EdgeCounts()
	if len(ec) != len(eo) {
		t.Fatalf("edge-count levels %d vs %d", len(ec), len(eo))
	}
	for i := range eo {
		if ec[i] != eo[i] {
			t.Fatalf("level %d edge count %d vs %d", i, ec[i], eo[i])
		}
	}
	if restored.MaxIter != orig.MaxIter {
		t.Fatalf("MaxIter %d vs %d", restored.MaxIter, orig.MaxIter)
	}
	so, sr := orig.Chain.Schedule(), restored.Chain.Schedule()
	for i := range so {
		if so[i] != sr[i] {
			t.Fatalf("schedule level %d differs: %+v vs %+v", i, sr[i], so[i])
		}
	}
}

// reseal recomputes the checksum trailer after a deliberate mutation, so
// tests can reach the validation layers underneath it.
func reseal(data []byte) {
	sum := sha256.Sum256(data[:len(data)-trailerLen])
	copy(data[len(data)-trailerLen:], sum[:])
}

// TestCorruptionRejected is the fuzz sweep the issue asks for: bit flips,
// truncations, version skew, and wrong-graph blobs must all fail with a
// clean typed error — never a panic, never a silently-wrong chain.
func TestCorruptionRejected(t *testing.T) {
	g := gen.Grid2D(8, 8)
	s := buildSolver(t, g, 1)
	id := graph.CanonicalID(g)
	data, err := Encode(s, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, id, solver.Options{Workers: 1}); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	decode := func(b []byte) error {
		_, err := Decode(b, id, solver.Options{Workers: 1})
		return err
	}

	t.Run("bit-flips", func(t *testing.T) {
		// Without a resealed trailer every flip must trip the checksum.
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), data...)
			pos := rng.Intn(len(mut))
			mut[pos] ^= 1 << rng.Intn(8)
			if err := decode(mut); err == nil {
				t.Fatalf("flip at byte %d accepted", pos)
			}
		}
	})

	t.Run("bit-flips-resealed", func(t *testing.T) {
		// Resealing the trailer gets past the checksum; the structural and
		// semantic validation underneath must still reject or, at minimum,
		// never panic — and a flip inside the input graph must be caught by
		// the content-address recheck.
		rng := rand.New(rand.NewSource(100))
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), data...)
			pos := rng.Intn(len(mut) - trailerLen)
			mut[pos] ^= 1 << rng.Intn(8)
			reseal(mut)
			_ = decode(mut) // must not panic; error or not depends on the bit
		}
	})

	t.Run("truncations", func(t *testing.T) {
		for _, n := range []int{0, 1, headerLen - 1, headerLen, len(data) / 2, len(data) - trailerLen, len(data) - 1} {
			if err := decode(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), data...), 0xde, 0xad)
		if err := decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[magicLen] = Version + 1 // version u32 LE low byte
		reseal(mut)
		if err := decode(mut); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		mut := append([]byte(nil), data...)
		mut[0] ^= 0xff
		reseal(mut)
		if err := decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("wrong-id-requested", func(t *testing.T) {
		other := graph.CanonicalID(gen.Grid2D(3, 3))
		if _, err := Decode(data, other, solver.Options{Workers: 1}); !errors.Is(err, ErrWrongGraph) {
			t.Fatalf("got %v, want ErrWrongGraph", err)
		}
	})

	t.Run("tampered-id-resealed", func(t *testing.T) {
		// Rewrite the stored id (and reseal) so header checks pass: the
		// embedded graph no longer hashes to the stored id, which the
		// content-address recheck must catch.
		mut := append([]byte(nil), data...)
		pos := headerLen // first id byte is 'g'; flip a hex digit after it
		if mut[pos+1] == 'a' {
			mut[pos+1] = 'b'
		} else {
			mut[pos+1] = 'a'
		}
		reseal(mut)
		if _, err := Decode(mut, "", solver.Options{Workers: 1}); !errors.Is(err, ErrWrongGraph) {
			t.Fatalf("got %v, want ErrWrongGraph", err)
		}
	})

	t.Run("empty", func(t *testing.T) {
		if err := decode(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestSnapshotID parses the header-only accessor.
func TestSnapshotID(t *testing.T) {
	g := gen.Grid2D(5, 5)
	s := buildSolver(t, g, 1)
	id := graph.CanonicalID(g)
	data, err := Encode(s, id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SnapshotID(data)
	if err != nil || got != id {
		t.Fatalf("SnapshotID = %q, %v; want %q", got, err, id)
	}
	if _, err := SnapshotID(data[:4]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: got %v, want ErrCorrupt", err)
	}
}
