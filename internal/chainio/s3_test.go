package chainio_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"parlap/internal/chainio"
	"parlap/internal/chainio/s3test"
)

func newTestStore(t *testing.T, fake *s3test.Server, prefix string) *chainio.S3Store {
	t.Helper()
	store, err := chainio.NewS3Store(chainio.S3Config{
		Endpoint:  fake.URL(),
		Region:    fake.Region,
		Bucket:    fake.Bucket,
		Prefix:    prefix,
		AccessKey: fake.AccessKey,
		SecretKey: fake.SecretKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestS3StoreRoundTrip drives Put/Get/List/Delete through the fake S3
// server, which verifies the SigV4 signature of every request before acting
// on it — a zero-auth-failure run proves the client signs correctly.
func TestS3StoreRoundTrip(t *testing.T) {
	fake := s3test.New("chains", "us-east-1", "AKIDEXAMPLE", "secret-key-for-tests")
	defer fake.Close()
	store := newTestStore(t, fake, "snapshots")

	id := "g0123456789abcdef0123456789abcdef"
	if _, err := store.Get(id); !errors.Is(err, chainio.ErrNotFound) {
		t.Fatalf("Get on empty bucket: got %v, want ErrNotFound", err)
	}
	blob := []byte("payload-v1")
	if err := store.Put(id, blob); err != nil {
		t.Fatal(err)
	}
	// The object landed under prefix/id.chain (prefix normalized to a
	// trailing slash).
	if data, ok := fake.Object("snapshots/" + id + ".chain"); !ok || string(data) != "payload-v1" {
		t.Fatalf("object not stored under expected key: %q, %v", data, ok)
	}
	got, err := store.Get(id)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite.
	if err := store.Put(id, []byte("payload-v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ = store.Get(id); string(got) != "payload-v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	ids, err := store.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := store.Delete(id); err != nil {
		t.Fatal(err)
	}
	// S3 deletes are idempotent: deleting an absent key is not an error
	// (documented divergence from DirStore).
	if err := store.Delete(id); err != nil {
		t.Fatalf("second Delete: %v", err)
	}
	if ids, _ = store.List(); len(ids) != 0 {
		t.Fatalf("List after delete = %v", ids)
	}
	if n := fake.AuthFailures(); n != 0 {
		t.Fatalf("%d requests failed SigV4 verification", n)
	}
}

// TestS3StoreListPaginatesAndFilters: List must walk continuation tokens
// across truncated pages and skip objects that are not snapshots.
func TestS3StoreListPaginatesAndFilters(t *testing.T) {
	fake := s3test.New("chains", "eu-west-1", "AKID2", "another-secret")
	defer fake.Close()
	fake.MaxKeys = 2 // force pagination
	store := newTestStore(t, fake, "p/")

	var want []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("g%032d", i)
		if err := store.Put(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	// Foreign objects under the same prefix, and snapshots under another
	// prefix, must not surface.
	fake.SetObject("p/notes.txt", []byte("x"))
	fake.SetObject("p/sub/gdeadbeef.chain", []byte("x"))
	fake.SetObject("other/gfeedface.chain", []byte("x"))

	ids, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("List = %v, want %v", ids, want)
	}
	_, _, lists, _ := fake.Counts()
	if lists < 3 {
		t.Fatalf("List made %d requests; want >= 3 (pagination at MaxKeys=2 over 7 keys)", lists)
	}
}

// TestS3StoreRejectsBadSignature: a store holding the wrong secret must be
// rejected by the server's SigV4 verification, and the client must surface
// the 403.
func TestS3StoreRejectsBadSignature(t *testing.T) {
	fake := s3test.New("chains", "us-east-1", "AKID", "right-secret")
	defer fake.Close()
	store, err := chainio.NewS3Store(chainio.S3Config{
		Endpoint:  fake.URL(),
		Region:    fake.Region,
		Bucket:    fake.Bucket,
		AccessKey: fake.AccessKey,
		SecretKey: "wrong-secret",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("gabc", []byte("x")); err == nil {
		t.Fatal("Put with wrong secret succeeded")
	}
	if n := fake.AuthFailures(); n == 0 {
		t.Fatal("server did not record a signature failure")
	}
	if _, ok := fake.Object("gabc.chain"); ok {
		t.Fatal("object stored despite bad signature")
	}
}

// TestS3StoreRejectsWrongRegionScope: the credential scope is part of the
// signature; signing for another region must not verify.
func TestS3StoreRejectsWrongRegionScope(t *testing.T) {
	fake := s3test.New("chains", "us-east-1", "AKID", "secret")
	defer fake.Close()
	store, err := chainio.NewS3Store(chainio.S3Config{
		Endpoint:  fake.URL(),
		Region:    "ap-south-2",
		Bucket:    fake.Bucket,
		AccessKey: fake.AccessKey,
		SecretKey: fake.SecretKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("gabc", []byte("x")); err == nil {
		t.Fatal("Put signed for the wrong region succeeded")
	}
}

func TestS3StoreConfigValidation(t *testing.T) {
	base := chainio.S3Config{
		Endpoint: "http://127.0.0.1:9000", Bucket: "b",
		AccessKey: "a", SecretKey: "s",
	}
	cases := []struct {
		name   string
		mutate func(*chainio.S3Config)
	}{
		{"empty endpoint", func(c *chainio.S3Config) { c.Endpoint = "" }},
		{"bad scheme", func(c *chainio.S3Config) { c.Endpoint = "ftp://x" }},
		{"endpoint with path", func(c *chainio.S3Config) { c.Endpoint = "http://x/base" }},
		{"empty bucket", func(c *chainio.S3Config) { c.Bucket = "" }},
		{"bad bucket chars", func(c *chainio.S3Config) { c.Bucket = "Bad_Bucket" }},
		{"missing creds", func(c *chainio.S3Config) { c.SecretKey = "" }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := chainio.NewS3Store(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := chainio.NewS3Store(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestS3StoreRejectsUnsafeIDs mirrors the DirStore id validation: the same
// ids must be refused before any request is made.
func TestS3StoreRejectsUnsafeIDs(t *testing.T) {
	fake := s3test.New("chains", "us-east-1", "AKID", "secret")
	defer fake.Close()
	store := newTestStore(t, fake, "")
	for _, id := range []string{"", "../escape", "a/b", "sp ace"} {
		if err := store.Put(id, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", id)
		}
		if _, err := store.Get(id); err == nil {
			t.Errorf("Get(%q) accepted", id)
		}
	}
}
