package chainio

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/solver"
)

// Format-v3 coverage: chains carrying the new per-level payload — float32
// value storage (gate outcome + f64 baseline κ) and Cuthill–McKee
// permutations — must round-trip bit-identically (restore re-applies
// permute-then-convert in build order), and blobs with corrupted v3 fields
// must be rejected as cleanly as any other corruption.

func buildVariantSolver(t *testing.T, g *graph.Graph, prec solver.Precision, reorder bool, workers int) *solver.Solver {
	t.Helper()
	params := solver.DefaultChainParams()
	params.Seed = 42
	params.Precision = prec
	params.ReorderLevels = reorder
	s, err := solver.NewWithOptions(g, params, solver.Options{Workers: workers}, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

func TestRoundTripBitwiseV3Variants(t *testing.T) {
	const eps = 1e-8
	variants := []struct {
		name    string
		prec    solver.Precision
		reorder bool
	}{
		{"f32", solver.PrecisionF32, false},
		{"f64+reorder", solver.PrecisionF64, true},
		{"f32+reorder", solver.PrecisionF32, true},
	}
	for _, tb := range testbedGraphs() {
		for _, v := range variants {
			t.Run(tb.name+"/"+v.name, func(t *testing.T) {
				orig := buildVariantSolver(t, tb.g, v.prec, v.reorder, 0)
				id := graph.CanonicalID(tb.g)
				data, err := Encode(orig, id)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				bs := randomRHS(tb.g.N, 0x5eed, 3)
				xRef, stRef := orig.Solve(bs[0], eps)
				xsRef, _ := orig.SolveBatch(bs, eps)
				for _, w := range []int{1, 2, 4} {
					restored, err := Decode(data, id, solver.Options{Workers: w})
					if err != nil {
						t.Fatalf("workers=%d: decode: %v", w, err)
					}
					// The restored chain must carry the same gate and layout
					// outcomes, not just solve identically.
					if restored.Chain.F32Levels() != orig.Chain.F32Levels() {
						t.Fatalf("workers=%d: restored %d f32 levels, want %d",
							w, restored.Chain.F32Levels(), orig.Chain.F32Levels())
					}
					if restored.Chain.ReorderedLevels() != orig.Chain.ReorderedLevels() {
						t.Fatalf("workers=%d: restored %d reordered levels, want %d",
							w, restored.Chain.ReorderedLevels(), orig.Chain.ReorderedLevels())
					}
					so, sr := orig.Chain.Schedule(), restored.Chain.Schedule()
					for i := range so {
						if so[i] != sr[i] {
							t.Fatalf("workers=%d: schedule level %d differs: %+v vs %+v", w, i, sr[i], so[i])
						}
					}
					x, st := restored.Solve(bs[0], eps)
					if st.Iterations != stRef.Iterations {
						t.Fatalf("workers=%d: %d iterations vs %d", w, st.Iterations, stRef.Iterations)
					}
					assertBitwiseEqual(t, fmt.Sprintf("workers=%d solve", w), xRef, x)
					xs, _ := restored.SolveBatch(bs, eps)
					for c := range xsRef {
						assertBitwiseEqual(t, fmt.Sprintf("workers=%d batch col %d", w, c), xsRef[c], xs[c])
					}
				}
			})
		}
	}
}

// TestCorruptionRejectedV3 re-runs the corruption sweep over a blob whose
// payload exercises every v3 field (f32 flags, baseline κs, permutation
// arrays): bit flips must trip the checksum, resealed flips must never panic
// (a flipped permutation entry has to be caught by the bijection check, a
// flipped level-0 flag by the exemption check), and truncations inside the
// new fields must fail with ErrCorrupt.
func TestCorruptionRejectedV3(t *testing.T) {
	g := gen.Grid2D(20, 20)
	s := buildVariantSolver(t, g, solver.PrecisionF32, true, 1)
	if s.Chain.F32Levels() == 0 || s.Chain.ReorderedLevels() == 0 {
		t.Fatal("testbed blob does not exercise the v3 fields")
	}
	id := graph.CanonicalID(g)
	data, err := Encode(s, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, id, solver.Options{Workers: 1}); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	decode := func(b []byte) error {
		_, err := Decode(b, id, solver.Options{Workers: 1})
		return err
	}

	t.Run("bit-flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(101))
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), data...)
			pos := rng.Intn(len(mut))
			mut[pos] ^= 1 << rng.Intn(8)
			if err := decode(mut); err == nil {
				t.Fatalf("flip at byte %d accepted", pos)
			}
		}
	})

	t.Run("bit-flips-resealed", func(t *testing.T) {
		rng := rand.New(rand.NewSource(102))
		for trial := 0; trial < 300; trial++ {
			mut := append([]byte(nil), data...)
			pos := rng.Intn(len(mut) - trailerLen)
			mut[pos] ^= 1 << rng.Intn(8)
			reseal(mut)
			_ = decode(mut) // must not panic; error or not depends on the bit
		}
	})

	t.Run("truncations", func(t *testing.T) {
		rng := rand.New(rand.NewSource(103))
		cuts := []int{0, headerLen, len(data) / 2, len(data) - trailerLen, len(data) - 1}
		for trial := 0; trial < 20; trial++ {
			cuts = append(cuts, headerLen+rng.Intn(len(data)-headerLen))
		}
		for _, n := range cuts {
			if err := decode(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
			}
		}
	})
}
