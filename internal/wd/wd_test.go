package wd

import (
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.AddWork(5)
	r.AddDepth(3)
	r.Add(1, 1)
	r.Reset()
	if r.Work() != 0 || r.Depth() != 0 {
		t.Fatal("nil recorder should report zeros")
	}
	if r.String() != "wd(nil)" {
		t.Fatalf("nil String = %q", r.String())
	}
}

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	r.AddWork(10)
	r.AddDepth(2)
	r.Add(5, 1)
	if r.Work() != 15 {
		t.Fatalf("work = %d, want 15", r.Work())
	}
	if r.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", r.Depth())
	}
	r.Reset()
	if r.Work() != 0 || r.Depth() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add(1, 1)
			}
		}()
	}
	wg.Wait()
	if r.Work() != 100000 || r.Depth() != 100000 {
		t.Fatalf("concurrent adds lost updates: %s", r.String())
	}
}

func TestRecorderString(t *testing.T) {
	var r Recorder
	r.Add(7, 2)
	if got := r.String(); got != "work=7 depth=2" {
		t.Fatalf("String = %q", got)
	}
}
