// Package wd provides work/depth accounting in the PRAM sense used by the
// paper: work is the total operation count, depth is the longest chain of
// sequential dependencies. Algorithms in parlap optionally accept a
// *Recorder; a nil Recorder is valid and records nothing, so instrumentation
// costs a single nil check on hot paths.
//
// The accounting is analytical, not wall-clock: an algorithm that performs a
// level-synchronous BFS with L levels scanning E edges reports work=E and
// depth=L (times any per-level log factors it wishes to charge). This mirrors
// how the paper states its bounds, and makes the measured quantities directly
// comparable to the theorems regardless of GOMAXPROCS.
package wd

import (
	"fmt"
	"sync/atomic"
)

// Recorder accumulates work and depth counters. The zero value is ready to
// use. All methods are safe for concurrent use and are no-ops on a nil
// receiver.
type Recorder struct {
	work  atomic.Int64
	depth atomic.Int64
}

// AddWork charges w units of work.
func (r *Recorder) AddWork(w int64) {
	if r == nil {
		return
	}
	r.work.Add(w)
}

// AddDepth charges d units of depth (a sequential chain of length d).
func (r *Recorder) AddDepth(d int64) {
	if r == nil {
		return
	}
	r.depth.Add(d)
}

// Add charges both work and depth.
func (r *Recorder) Add(work, depth int64) {
	if r == nil {
		return
	}
	r.work.Add(work)
	r.depth.Add(depth)
}

// Work returns the accumulated work.
func (r *Recorder) Work() int64 {
	if r == nil {
		return 0
	}
	return r.work.Load()
}

// Depth returns the accumulated depth.
func (r *Recorder) Depth() int64 {
	if r == nil {
		return 0
	}
	return r.depth.Load()
}

// Reset zeroes both counters.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.work.Store(0)
	r.depth.Store(0)
}

// String reports the counters, implementing fmt.Stringer.
func (r *Recorder) String() string {
	if r == nil {
		return "wd(nil)"
	}
	return fmt.Sprintf("work=%d depth=%d", r.Work(), r.Depth())
}
