package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/wd"
)

// checkDecomposition verifies the structural invariants of Theorem 4.1(1,2):
// every vertex belongs to exactly one component, each component's center is
// inside it, and the strong radius (in the induced subgraph) is at most rho.
func checkDecomposition(t *testing.T, g *graph.Graph, res *Result, rho int) {
	t.Helper()
	if len(res.Comp) != g.N {
		t.Fatalf("Comp has %d entries for %d vertices", len(res.Comp), g.N)
	}
	for v := 0; v < g.N; v++ {
		if res.Comp[v] < 0 || int(res.Comp[v]) >= res.NumComp {
			t.Fatalf("vertex %d has invalid component %d", v, res.Comp[v])
		}
	}
	if len(res.Centers) != res.NumComp {
		t.Fatalf("%d centers for %d components", len(res.Centers), res.NumComp)
	}
	for c, s := range res.Centers {
		if int(res.Comp[s]) != c {
			t.Fatalf("center %d of component %d lies in component %d (violates Thm 4.1(1))", s, c, res.Comp[s])
		}
	}
	radii := StrongRadius(g, res)
	for c, r := range radii {
		if r > rho {
			t.Fatalf("component %d has strong radius %d > ρ=%d (violates Thm 4.1(2))", c, r, rho)
		}
	}
	// Strong-radius computation must also certify connectivity: every vertex
	// reachable from its center within the component. Recompute reachability.
	seen := make([]bool, g.N)
	for c := 0; c < res.NumComp; c++ {
		s := int(res.Centers[c])
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := g.Off[u]; i < g.Off[u+1]; i++ {
				v := g.Adj[i]
				if !seen[v] && res.Comp[v] == res.Comp[s] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	for v := 0; v < g.N; v++ {
		if !seen[v] {
			t.Fatalf("vertex %d not reachable from its center within its component", v)
		}
	}
}

func TestSplitGraphGrid(t *testing.T) {
	g := gen.Grid2D(32, 32)
	rng := rand.New(rand.NewSource(1))
	for _, rho := range []int{4, 8, 16, 64} {
		res := SplitGraph(g, rho, PracticalParams(), rng, nil)
		checkDecomposition(t, g, res, rho)
	}
}

func TestSplitGraphPaperParams(t *testing.T) {
	g := gen.Grid2D(16, 16)
	rng := rand.New(rand.NewSource(2))
	res := SplitGraph(g, 12, PaperParams(), rng, nil)
	checkDecomposition(t, g, res, 12)
}

func TestSplitGraphGNP(t *testing.T) {
	g := gen.GNP(500, 0.01, 3)
	rng := rand.New(rand.NewSource(4))
	res := SplitGraph(g, 6, PracticalParams(), rng, nil)
	checkDecomposition(t, g, res, 6)
}

func TestSplitGraphDisconnected(t *testing.T) {
	// Two far-apart paths plus isolated vertices.
	var edges []graph.Edge
	for i := 0; i+1 < 10; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	for i := 20; i+1 < 30; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
	}
	g := graph.FromEdges(35, edges)
	rng := rand.New(rand.NewSource(5))
	res := SplitGraph(g, 4, PracticalParams(), rng, nil)
	checkDecomposition(t, g, res, 4)
}

func TestSplitGraphSingletonAndTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g1 := graph.FromEdges(1, nil)
	res := SplitGraph(g1, 3, PracticalParams(), rng, nil)
	if res.NumComp != 1 || res.Comp[0] != 0 {
		t.Fatalf("singleton decomposition wrong: %+v", res)
	}
	g2 := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}})
	res2 := SplitGraph(g2, 1, PracticalParams(), rng, nil)
	checkDecomposition(t, g2, res2, 1)
}

func TestSplitGraphRhoOne(t *testing.T) {
	// ρ=1: components are stars of radius ≤ 1.
	g := gen.Grid2D(10, 10)
	rng := rand.New(rand.NewSource(7))
	res := SplitGraph(g, 1, PracticalParams(), rng, nil)
	checkDecomposition(t, g, res, 1)
}

func TestSplitGraphCoversAllVerticesProperty(t *testing.T) {
	f := func(seed int64, rawRho uint8) bool {
		rho := 1 + int(rawRho)%20
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNP(120, 0.02, seed)
		res := SplitGraph(g, rho, PracticalParams(), rng, nil)
		// Every vertex assigned; every center owns itself.
		for v := 0; v < g.N; v++ {
			if res.Comp[v] < 0 || int(res.Comp[v]) >= res.NumComp {
				return false
			}
		}
		for c, s := range res.Centers {
			if int(res.Comp[s]) != c {
				return false
			}
		}
		radii := StrongRadius(g, res)
		for _, r := range radii {
			if r > rho {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitGraphWorkDepthAccounting(t *testing.T) {
	g := gen.Grid2D(40, 40)
	rng := rand.New(rand.NewSource(8))
	var rec wd.Recorder
	SplitGraph(g, 16, PracticalParams(), rng, &rec)
	if rec.Work() == 0 {
		t.Fatal("no work recorded")
	}
	if rec.Depth() == 0 {
		t.Fatal("no depth recorded")
	}
	// Depth must stay well below n for a parallel ball growing: bounded by
	// Σ_t r(t) ≈ T·ρ levels, far under n=1600.
	if rec.Depth() > int64(g.N)/2 {
		t.Fatalf("depth %d suspiciously large", rec.Depth())
	}
}

func TestCountCut(t *testing.T) {
	g := gen.Path(6)
	comp := []int32{0, 0, 0, 1, 1, 1}
	st := CountCut(g, comp, nil, 1)
	if st.Total != 1 || st.PerClass[0] != 1 {
		t.Fatalf("cut = %+v, want 1", st)
	}
	// Two classes: color edges alternately.
	class := make([]int, g.M())
	for i := range class {
		class[i] = i % 2
	}
	st2 := CountCut(g, comp, class, 2)
	if st2.Total != 1 {
		t.Fatalf("total = %d", st2.Total)
	}
	// Edge 2 = {2,3} is the cut edge; its class is 0.
	if st2.PerClass[0] != 1 || st2.PerClass[1] != 0 {
		t.Fatalf("per-class = %v", st2.PerClass)
	}
}

func TestPartitionValidates(t *testing.T) {
	g := gen.Grid2D(24, 24)
	rng := rand.New(rand.NewSource(9))
	pr, err := Partition(g, nil, 1, 16, PracticalParams(), rng, nil)
	if err != nil {
		t.Fatalf("partition failed validation: %v", err)
	}
	checkDecomposition(t, g, pr.Result, 16)
	if pr.Trials < 1 {
		t.Fatalf("trials = %d", pr.Trials)
	}
	if pr.Cut.Total > g.M() {
		t.Fatalf("cut %d exceeds edge count", pr.Cut.Total)
	}
}

func TestPartitionMultiClass(t *testing.T) {
	g := gen.Grid2D(20, 20)
	class := make([]int, g.M())
	for i := range class {
		class[i] = i % 3
	}
	rng := rand.New(rand.NewSource(10))
	pr, err := Partition(g, class, 3, 24, PracticalParams(), rng, nil)
	if err != nil {
		t.Fatalf("multi-class partition failed: %v", err)
	}
	sum := 0
	for _, c := range pr.Cut.PerClass {
		sum += c
	}
	if sum != pr.Cut.Total {
		t.Fatalf("per-class cuts %v do not sum to total %d", pr.Cut.PerClass, pr.Cut.Total)
	}
}

func TestPartitionImpossibleThresholdReturnsBest(t *testing.T) {
	g := gen.Grid2D(16, 16)
	p := PracticalParams()
	p.CutConst = 1e-9 // unachievable: any cut edge fails validation
	p.MaxRetries = 3
	rng := rand.New(rand.NewSource(11))
	pr, err := Partition(g, nil, 1, 4, p, rng, nil)
	if err == nil {
		t.Fatal("expected validation error with impossible threshold")
	}
	if pr == nil {
		t.Fatal("best attempt not returned on failure")
	}
	checkDecomposition(t, g, pr.Result, 4)
}

func TestCutFractionDecreasesWithRho(t *testing.T) {
	// Theorem 4.1(3) in empirical form: cut fraction ∝ 1/ρ. Demand strict
	// improvement from ρ=4 to ρ=64 on a torus (no boundary effects).
	g := gen.Torus2D(48, 48)
	rng := rand.New(rand.NewSource(12))
	frac := func(rho int) float64 {
		total := 0
		const reps = 3
		for r := 0; r < reps; r++ {
			res := SplitGraph(g, rho, PracticalParams(), rng, nil)
			total += CountCut(g, res.Comp, nil, 1).Total
		}
		return float64(total) / float64(reps*g.M())
	}
	f4, f64 := frac(4), frac(64)
	if f64 >= f4 {
		t.Fatalf("cut fraction did not decrease: ρ=4→%.3f ρ=64→%.3f", f4, f64)
	}
	if f64 > 0.5 {
		t.Fatalf("ρ=64 cut fraction %.3f too large", f64)
	}
}

func TestCoverageCounts(t *testing.T) {
	g := gen.Grid2D(20, 20)
	p := PracticalParams()
	p.CountCoverage = true
	rng := rand.New(rand.NewSource(13))
	res := SplitGraph(g, 8, p, rng, nil)
	if res.Coverage == nil {
		t.Fatal("coverage not recorded")
	}
	// Every vertex is covered at least once (it got assigned to some ball).
	for v, c := range res.Coverage {
		if c < 1 {
			t.Fatalf("vertex %d covered %d times", v, c)
		}
	}
}

func TestCompIterMonotoneAndValid(t *testing.T) {
	g := gen.Grid2D(24, 24)
	rng := rand.New(rand.NewSource(14))
	res := SplitGraph(g, 8, PracticalParams(), rng, nil)
	for c, it := range res.CompIter {
		if it < 1 || int(it) > res.T {
			t.Fatalf("component %d created at invalid iteration %d (T=%d)", c, it, res.T)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := gen.Grid2D(20, 20)
	run := func() []int32 {
		rng := rand.New(rand.NewSource(99))
		return SplitGraph(g, 8, PracticalParams(), rng, nil).Comp
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			// Component *ids* may be permuted only if map iteration differed;
			// compare partition structure instead.
			same := func(x, y []int32) bool {
				m := make(map[int32]int32)
				for j := range x {
					if v, ok := m[x[j]]; ok {
						if v != y[j] {
							return false
						}
					} else {
						m[x[j]] = y[j]
					}
				}
				return true
			}
			if !same(a, b) || !same(b, a) {
				t.Fatal("decomposition not deterministic for fixed seed")
			}
			return
		}
	}
}
