// Package decomp implements the paper's Section 4: parallel low-diameter
// graph decomposition with strong-diameter guarantees.
//
// splitGraph (Algorithm 4.1) partitions an unweighted graph into components
// of strong hop-radius at most ρ by growing balls from randomly sampled
// centers with random integer "jitters" δs ∈ [0, R]: vertex u is assigned to
// the center s minimizing dist(u, s) + δs, with ties broken toward the
// smaller center id. The center schedule grows geometrically across
// T iterations (Cohen-style repeated sampling) while the ball radius
// r(t) = (T−t+1)·R shrinks, guaranteeing full coverage.
//
// A key implementation observation: u lies in *some* jittered ball at
// iteration t exactly when min_s dist(u,s)+δs ≤ r(t), so the whole iteration
// is a single multi-source delayed BFS — center s activates at time δs, all
// growth stops at time r(t). Each vertex settles once, with the
// lexicographic (arrival time, owner id) minimum; by the standard shifted
// -BFS argument this computes argmin_s dist(u,s)+δs exactly, and the
// shortest-path closure of Lemma 4.3 makes every component's strong radius
// ≤ r(t) ≤ ρ by construction.
//
// Partition (Algorithm 4.2) runs splitGraph over the union of k edge
// classes and retries until every class has at most |Ei|·c1·k·log³n/ρ
// inter-component edges (Theorem 4.1(3)).
package decomp

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"parlap/internal/graph"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// Params controls the decomposition's constants. The zero value is invalid;
// use PaperParams or PracticalParams. Every constant keeps the paper's
// functional form; the presets differ only in scale, as the proof constants
// (σt = 12·…, c1 = 272, T = 2·log n) target asymptotic regimes where
// ρ ≫ log³n, unreachable at benchmark sizes.
type Params struct {
	// TScale sets the iteration count T = max(2, ⌈TScale·log₂ n⌉).
	// Paper: 2.
	TScale float64
	// SigmaScale sets the center sample size
	// σt = ⌈SigmaScale · n^(t/T−1) · |V(t)| · log₂ n⌉. Paper: 12.
	SigmaScale float64
	// CutConst and CutLogPower set the per-class validation threshold
	// |Ei| · CutConst · k · (log₂ n)^CutLogPower / ρ. Paper: 272 and 3.
	CutConst    float64
	CutLogPower int
	// MaxRetries bounds Partition's resampling loop (expected 4 in the
	// paper's analysis).
	MaxRetries int
	// CountCoverage, when true, additionally computes for every vertex the
	// number of (center, iteration) pairs whose radius-r(t) ball covers it
	// (the quantity bounded by Lemma 4.4). This costs the paper's full
	// O(m log² n) ball-growing work and is used only by experiment E3.
	CountCoverage bool
	// Workers selects the goroutine count of the decomposition's parallel
	// kernels (frontier expansion, coverage counting, cut validation):
	// 0 = GOMAXPROCS, 1 = the sequential reference path (no goroutines).
	// Results are identical for every setting: each BFS round resolves
	// ownership by a commutative minimum (min center id) and packs the next
	// frontier in flat candidate order, so the assignment AND the frontier
	// order are schedule-free.
	Workers int
}

// PaperParams returns the constants exactly as in Algorithm 4.1/4.2.
func PaperParams() Params {
	return Params{TScale: 2, SigmaScale: 12, CutConst: 272, CutLogPower: 3, MaxRetries: 40}
}

// PracticalParams returns scaled-down constants that keep every functional
// form (geometric center schedule, shrinking radius, jitter range ρ/T, 1/ρ
// cut-fraction decay) while producing non-trivial components at n ≤ 10⁶.
func PracticalParams() Params {
	return Params{TScale: 0.5, SigmaScale: 0.25, CutConst: 8, CutLogPower: 1, MaxRetries: 40}
}

// Result is a decomposition of the vertex set into components.
type Result struct {
	Comp     []int32 // vertex -> component id in [0, NumComp)
	NumComp  int
	Centers  []int32 // component id -> its center vertex
	CompIter []int32 // component id -> iteration (1-based) that created it
	// Coverage[v] counts (center, iteration) pairs with v ∈ B(t)(s, r(t));
	// non-nil only when Params.CountCoverage was set.
	Coverage []int32

	T, R int // the schedule actually used
}

// log2 returns log base 2 of n, at least 1.
func log2(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// SplitGraph partitions g into components of strong hop-radius at most rho.
// Edge weights are ignored (the paper's decomposition is on unweighted
// graphs; AKPW applies it to weight-class unions). rng drives all sampling;
// rec, if non-nil, is charged work = half-edges scanned and depth = BFS
// levels executed.
func SplitGraph(g *graph.Graph, rho int, p Params, rng *rand.Rand, rec *wd.Recorder) *Result {
	n := g.N
	if rho < 1 {
		rho = 1
	}
	// A radius beyond n−1 cannot bind (hop diameter < n); clamping keeps the
	// time loop O(n) when callers pass paper-scale ρ on small graphs.
	if rho > n {
		rho = n
	}
	T := int(math.Ceil(p.TScale * log2(n)))
	if T < 2 {
		T = 2
	}
	// The strong-radius bound is r(1) = T·R ≤ ρ, so T may never exceed ρ
	// (the paper's regime has ρ ≫ log n ≥ T/2, where this never binds).
	if T > rho {
		T = rho
	}
	R := rho / T
	if R < 1 {
		R = 1
	}
	res := &Result{
		Comp: make([]int32, n),
		T:    T, R: R,
	}
	if p.CountCoverage {
		res.Coverage = make([]int32, n)
	}
	// value[v] < 0 means v is alive (unassigned); otherwise it stores the
	// globally unique stamp of the BFS level that claimed it (stamps are
	// unique across iterations so same-level owner merging never confuses
	// claims from different iterations). ownerCenter[v] holds the winning
	// center's vertex id.
	value := make([]int32, n)
	ownerCenter := make([]int32, n)
	stamp := int32(0)
	for i := range value {
		value[i] = -1
		ownerCenter[i] = math.MaxInt32
	}
	aliveCount := n
	alive := make([]int, n)
	var iterStampEnd []int32 // stamp high-water mark after each iteration
	for t := 1; t <= T && aliveCount > 0; t++ {
		// Gather alive vertices.
		alive = alive[:0]
		for v := 0; v < n; v++ {
			if value[v] < 0 {
				alive = append(alive, v)
			}
		}
		aliveCount = len(alive)
		if aliveCount == 0 {
			break
		}
		rt := (T - t + 1) * R
		// Sample centers.
		var centers []int
		sigma := int(math.Ceil(p.SigmaScale * math.Pow(float64(n), float64(t)/float64(T)-1) *
			float64(aliveCount) * log2(n)))
		if t == T || sigma >= aliveCount {
			centers = alive
		} else {
			if sigma < 1 {
				sigma = 1
			}
			// Partial Fisher-Yates over a copy of the alive list.
			tmp := make([]int, aliveCount)
			copy(tmp, alive)
			for i := 0; i < sigma; i++ {
				j := i + rng.Intn(aliveCount-i)
				tmp[i], tmp[j] = tmp[j], tmp[i]
			}
			centers = tmp[:sigma]
		}
		jitter := make([]int, len(centers))
		for i := range jitter {
			jitter[i] = rng.Intn(R + 1)
		}
		if p.CountCoverage {
			countCoverage(p.Workers, g, value, centers, rt, res.Coverage)
		}
		claimed := jitteredBFS(p.Workers, g, value, ownerCenter, centers, jitter, rt, &stamp, rec)
		aliveCount -= claimed
		iterStampEnd = append(iterStampEnd, stamp)
	}
	// Densify component ids: one component per center that owns vertices.
	compOf := make(map[int32]int32)
	for v := 0; v < n; v++ {
		c := ownerCenter[v]
		if _, ok := compOf[c]; !ok {
			id := int32(len(compOf))
			compOf[c] = id
			res.Centers = append(res.Centers, c)
		}
		res.Comp[v] = compOf[c]
	}
	res.NumComp = len(res.Centers)
	res.CompIter = make([]int32, res.NumComp)
	for c, s := range res.Centers {
		st := value[s]
		it := int32(1)
		for i, end := range iterStampEnd {
			if st <= end {
				it = int32(i + 1)
				break
			}
		}
		res.CompIter[c] = it
	}
	return res
}

// bfsRoundState is the per-call scratch of jitteredBFS's deterministic
// frontier rounds: the round-winner owner (resolved by atomic minimum — the
// fixed min-center-id priority rule) and the round-winner ticket (the flat
// candidate index that gets to emit the vertex into the next frontier).
// Entries are idle (MaxInt32 / MaxInt64) except transiently during a round;
// the pack pass resets exactly the entries its round touched.
type bfsRoundState struct {
	owner  []int32
	ticket []int64
}

func newBFSRoundState(n int) *bfsRoundState {
	st := &bfsRoundState{
		owner:  make([]int32, n),
		ticket: make([]int64, n),
	}
	for i := range st.owner {
		st.owner[i] = math.MaxInt32
		st.ticket[i] = math.MaxInt64
	}
	return st
}

// jitteredBFS runs one iteration's delayed multi-source BFS on the alive
// subgraph (value[v] < 0). Center i activates at time jitter[i]; all growth
// stops after time rt. stamp supplies globally unique per-level claim ids.
// Returns the number of vertices claimed. workers selects the frontier-
// expansion parallelism (0 = GOMAXPROCS, 1 = sequential — no goroutines).
//
// Each level is a deterministic frontier round in the edgeMap-with-
// reservation style of GBBS: a reserve pass resolves every ownership
// conflict by the fixed (arrival level, min center id) rule, and a commit
// pass packs the claimed vertices into the next frontier with precomputed
// offsets (counts → prefix sum → conflict-free scatter), so the frontier's
// *order* — not just the final assignment — is identical for every worker
// count and schedule.
func jitteredBFS(workers int, g *graph.Graph, value, ownerCenter []int32, centers, jitter []int, rt int, stamp *int32, rec *wd.Recorder) int {
	// Bucket center activations by time.
	maxJ := 0
	for _, d := range jitter {
		if d > maxJ {
			maxJ = d
		}
	}
	activate := make([][]int, maxJ+1)
	for i, s := range centers {
		activate[jitter[i]] = append(activate[jitter[i]], s)
	}
	st := newBFSRoundState(g.N)
	var frontier []int
	claimed := 0
	var edgesSeen int64
	levels := 0
	for tau := 0; tau <= rt; tau++ {
		var act []int
		if tau < len(activate) {
			act = activate[tau]
		}
		if len(frontier) == 0 && len(act) == 0 {
			// Nothing active: jump straight to the next activation time, or
			// stop if none remains.
			next := -1
			for tt := tau + 1; tt < len(activate); tt++ {
				if len(activate[tt]) > 0 {
					next = tt
					break
				}
			}
			if next < 0 || next > rt {
				break
			}
			tau = next - 1
			continue
		}
		levels++
		*stamp++
		next := expandRound(workers, g, value, ownerCenter, st, frontier, act, *stamp, &edgesSeen)
		claimed += len(next)
		frontier = next
	}
	rec.Add(edgesSeen+int64(len(centers)), int64(levels))
	return claimed
}

// expandRound claims, at one BFS level, (a) activated centers not yet
// settled and (b) alive neighbors of the previous frontier, and returns the
// claimed vertices as the next frontier.
//
// The round's candidates form a flat index space: tickets [0, len(act))
// are the activations (each center its own owner candidate) and ticket
// len(act)+j is the j-th half-edge out of the frontier in (frontier
// position, adjacency slot) order. Three passes over that space:
//
//  1. reserve — for every candidate whose target is alive, fold the
//     candidate's owner into st.owner[v] and its ticket into st.ticket[v]
//     by (atomic) minimum. Min is commutative and associative, so the
//     winners are schedule-free: the owner implements the lexicographic
//     (arrival level, min center id) rule and the ticket elects one
//     deterministic emitter per claimed vertex.
//  2. count+scatter — the winning candidate of each vertex writes the
//     claim (value ← stamp, ownerCenter ← round winner) and packs v into
//     the next frontier at an offset precomputed by per-chunk counts and a
//     prefix sum, so the scatter is conflict-free and the output order is
//     the ticket order, independent of workers.
//  3. reset — the emitted vertices return their round state to idle.
func expandRound(workers int, g *graph.Graph, value, ownerCenter []int32, st *bfsRoundState, frontier, act []int, stamp int32, edgesSeen *int64) []int {
	nf := len(frontier)
	// Flat candidate space: activations first, then frontier half-edges in
	// (frontier position, adjacency slot) order. degOff[fi] is the flat
	// ticket of frontier[fi]'s first half-edge, biased by len(act).
	na := len(act)
	degs := make([]int, nf)
	par.ForW(workers, nf, func(fi int) {
		u := frontier[fi]
		degs[fi] = g.Off[u+1] - g.Off[u]
	})
	degOff := par.ScanW(workers, degs)
	totalDeg := degOff[nf]
	*edgesSeen += int64(totalDeg)
	total := na + totalDeg

	// scan walks candidates [lo, hi) in flat order, calling visit(j, v,
	// owner) for each claimable candidate (activations, then half-edges;
	// self-loops skipped). One binary search locates the chunk's first
	// frontier position; the walk advances it.
	scan := func(lo, hi int, visit func(j, v int, owner int32)) {
		j := lo
		for ; j < hi && j < na; j++ {
			visit(j, act[j], int32(act[j]))
		}
		if j >= hi {
			return
		}
		// Largest fi with degOff[fi] <= j-na: the frontier position whose
		// half-edge run contains the first edge candidate of this chunk.
		fi := sort.SearchInts(degOff, j-na+1) - 1
		for ; j < hi; j++ {
			e := j - na
			for degOff[fi+1] <= e {
				fi++
			}
			u := frontier[fi]
			v := g.Adj[g.Off[u]+(e-degOff[fi])]
			if v == u {
				continue
			}
			visit(j, v, ownerCenter[u])
		}
	}

	p := workers
	if p <= 0 {
		p = par.Workers()
	}
	if p == 1 || total < par.SequentialThreshold {
		// Sequential reference: same three passes, plain minima, no
		// goroutines (the Workers:1 contract).
		scan(0, total, func(j, v int, owner int32) {
			if value[v] >= 0 {
				return
			}
			if owner < st.owner[v] {
				st.owner[v] = owner
			}
			if int64(j) < st.ticket[v] {
				st.ticket[v] = int64(j)
			}
		})
		var next []int
		scan(0, total, func(j, v int, _ int32) {
			if st.ticket[v] == int64(j) {
				value[v] = stamp
				ownerCenter[v] = st.owner[v]
				next = append(next, v)
			}
		})
		for _, v := range next {
			st.owner[v] = math.MaxInt32
			st.ticket[v] = math.MaxInt64
		}
		return next
	}

	// The chunk decomposition only affects scheduling: the reserve pass is a
	// commutative min and the pack's scatter order is the flat candidate
	// order regardless of chunk boundaries.
	numChunks := p * 4
	if numChunks > total {
		numChunks = total
	}
	chunkSize := (total + numChunks - 1) / numChunks
	numChunks = (total + chunkSize - 1) / chunkSize
	bounds := func(c int) (int, int) {
		lo, hi := c*chunkSize, (c+1)*chunkSize
		if hi > total {
			hi = total
		}
		return lo, hi
	}

	// Pass 1: reserve. Alive targets (value[v] < 0; value is only written in
	// pass 2, after the barrier) min-merge the candidate's owner and ticket.
	par.TasksW(workers, numChunks, func(c int) {
		lo, hi := bounds(c)
		scan(lo, hi, func(j, v int, owner int32) {
			if value[v] >= 0 {
				return
			}
			atomicMin32(&st.owner[v], owner)
			atomicMin64(&st.ticket[v], int64(j))
		})
	})

	// Pass 2: count winners per chunk, prefix-sum, then conflict-free
	// scatter. A candidate wins iff its ticket is the vertex's round minimum
	// (unique per vertex; entries from earlier rounds are reset to idle, so
	// no stale ticket can match). The winner also writes the claim — a
	// single writer per vertex.
	counts := make([]int, numChunks)
	par.TasksW(workers, numChunks, func(c int) {
		lo, hi := bounds(c)
		cnt := 0
		scan(lo, hi, func(j, v int, _ int32) {
			if st.ticket[v] == int64(j) {
				cnt++
			}
		})
		counts[c] = cnt
	})
	offsets := par.ScanW(workers, counts)
	next := make([]int, offsets[numChunks])
	par.TasksW(workers, numChunks, func(c int) {
		lo, hi := bounds(c)
		at := offsets[c]
		scan(lo, hi, func(j, v int, _ int32) {
			if st.ticket[v] == int64(j) {
				value[v] = stamp
				ownerCenter[v] = st.owner[v]
				next[at] = v
				at++
			}
		})
	})
	// Pass 3: reset the touched round state (exactly the claimed vertices:
	// every reserved vertex was alive, so it was claimed this round).
	par.ForW(workers, len(next), func(i int) {
		v := next[i]
		st.owner[v] = math.MaxInt32
		st.ticket[v] = math.MaxInt64
	})
	return next
}

// atomicMin32 folds v into *addr by minimum with a CAS loop.
func atomicMin32(addr *int32, v int32) {
	for {
		cur := atomic.LoadInt32(addr)
		if cur <= v || atomic.CompareAndSwapInt32(addr, cur, v) {
			return
		}
	}
}

// atomicMin64 folds v into *addr by minimum with a CAS loop.
func atomicMin64(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if cur <= v || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// countCoverage increments cover[v] for every alive vertex v within hop
// distance rt of each center, on the alive subgraph — the (s,t) pair count
// of Lemma 4.4. Runs one bounded BFS per center, in parallel across centers.
func countCoverage(workers int, g *graph.Graph, value []int32, centers []int, rt int, cover []int32) {
	par.ForW(workers, len(centers), func(ci int) {
		s := centers[ci]
		if value[s] >= 0 {
			return // dead center: its ball is empty by convention
		}
		dist := make(map[int]int, 64)
		dist[s] = 0
		frontier := []int{s}
		atomic.AddInt32(&cover[s], 1)
		for d := 1; d <= rt && len(frontier) > 0; d++ {
			var next []int
			for _, u := range frontier {
				for i := g.Off[u]; i < g.Off[u+1]; i++ {
					v := g.Adj[i]
					if value[v] >= 0 || v == u {
						continue
					}
					if _, seen := dist[v]; !seen {
						dist[v] = d
						atomic.AddInt32(&cover[v], 1)
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
	})
}

// CutStats reports the inter-component edges of a decomposition, overall and
// per edge class.
type CutStats struct {
	Total    int   // undirected edges with endpoints in different components
	PerClass []int // indexed by class
}

// CountCut computes cut statistics for a decomposition. class[i] gives the
// class of edge i in [0, k); pass nil for single-class graphs.
func CountCut(g *graph.Graph, comp []int32, class []int, k int) CutStats {
	return CountCutW(0, g, comp, class, k)
}

// CountCutW is CountCut with an explicit worker count.
func CountCutW(workers int, g *graph.Graph, comp []int32, class []int, k int) CutStats {
	if k < 1 {
		k = 1
	}
	st := CutStats{PerClass: make([]int, k)}
	m := len(g.Edges)
	// Parallel chunked count (integer sums: order-independent).
	p := workers
	if p <= 0 {
		p = par.Workers()
	}
	chunks := p * 4
	if chunks > m {
		chunks = m
	}
	if chunks == 0 {
		return st
	}
	chunk := (m + chunks - 1) / chunks
	numChunks := (m + chunk - 1) / chunk
	locals := make([][]int, numChunks)
	totals := make([]int, numChunks)
	par.ForW(workers, numChunks, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > m {
			hi = m
		}
		l := make([]int, k)
		tot := 0
		for id := lo; id < hi; id++ {
			e := g.Edges[id]
			if comp[e.U] != comp[e.V] {
				tot++
				cl := 0
				if class != nil {
					cl = class[id]
				}
				l[cl]++
			}
		}
		locals[c] = l
		totals[c] = tot
	})
	for c := 0; c < numChunks; c++ {
		st.Total += totals[c]
		for i := 0; i < k; i++ {
			st.PerClass[i] += locals[c][i]
		}
	}
	return st
}

// PartitionResult couples a decomposition with its validation statistics.
type PartitionResult struct {
	*Result
	Cut    CutStats
	Trials int // splitGraph attempts consumed (≥ 1)
}

// Partition implements Algorithm 4.2: run SplitGraph treating all k classes
// as one, then validate that every class has at most
// |Ei|·CutConst·k·log^CutLogPower(n)/ρ edges between components, retrying
// with fresh randomness otherwise. class[i] ∈ [0,k) labels edge i; a nil
// class slice means k = 1.
//
// If MaxRetries attempts all fail validation, the best attempt (smallest
// maximum class violation ratio) is returned along with a non-nil error;
// callers at practical scales treat the threshold as advisory.
func Partition(g *graph.Graph, class []int, k int, rho int, p Params, rng *rand.Rand, rec *wd.Recorder) (*PartitionResult, error) {
	if k < 1 {
		k = 1
	}
	classSize := make([]int, k)
	if class == nil {
		classSize[0] = len(g.Edges)
	} else {
		for _, c := range class {
			classSize[c]++
		}
	}
	threshold := func(sz int) float64 {
		return float64(sz) * p.CutConst * float64(k) *
			math.Pow(log2(g.N), float64(p.CutLogPower)) / float64(rho)
	}
	maxRetries := p.MaxRetries
	if maxRetries < 1 {
		maxRetries = 1
	}
	var best *PartitionResult
	bestRatio := math.Inf(1)
	for trial := 1; trial <= maxRetries; trial++ {
		res := SplitGraph(g, rho, p, rng, rec)
		cut := CountCutW(p.Workers, g, res.Comp, class, k)
		worst := 0.0
		for i := 0; i < k; i++ {
			if classSize[i] == 0 {
				continue
			}
			th := threshold(classSize[i])
			ratio := 0.0
			if th > 0 {
				ratio = float64(cut.PerClass[i]) / th
			} else if cut.PerClass[i] > 0 {
				ratio = math.Inf(1)
			}
			if ratio > worst {
				worst = ratio
			}
		}
		pr := &PartitionResult{Result: res, Cut: cut, Trials: trial}
		if worst <= 1 {
			return pr, nil
		}
		if worst < bestRatio {
			bestRatio = worst
			best = pr
		}
	}
	return best, fmt.Errorf("decomp: validation failed after %d trials (worst ratio %.3g)", maxRetries, bestRatio)
}

// StrongRadius returns, for each component, the hop eccentricity of its
// center within the induced subgraph — the quantity bounded by ρ in
// Theorem 4.1(2). O(n+m) total via one BFS per component on the component-
// restricted adjacency.
func StrongRadius(g *graph.Graph, res *Result) []int {
	radii := make([]int, res.NumComp)
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	for c := 0; c < res.NumComp; c++ {
		s := int(res.Centers[c])
		dist[s] = 0
		frontier := []int{s}
		maxd := 0
		var visited []int
		visited = append(visited, s)
		for d := int32(1); len(frontier) > 0; d++ {
			var next []int
			for _, u := range frontier {
				for i := g.Off[u]; i < g.Off[u+1]; i++ {
					v := g.Adj[i]
					if res.Comp[v] != res.Comp[s] || dist[v] >= 0 {
						continue
					}
					dist[v] = d
					maxd = int(d)
					next = append(next, v)
					visited = append(visited, v)
				}
			}
			frontier = next
		}
		radii[c] = maxd
		for _, v := range visited {
			dist[v] = -1
		}
	}
	return radii
}
