package decomp

import (
	"parlap/internal/graph"
)

// BFSTrees returns, for a decomposition of g, the edge ids of a breadth-
// first spanning tree of every component, rooted at the component's center.
// Paths in these trees realize the strong-radius guarantee: every vertex is
// within ρ tree hops of its center. The returned ids index g.Edges.
//
// Implemented as one multi-source BFS from all centers simultaneously, with
// expansion confined to each vertex's own component.
func BFSTrees(g *graph.Graph, res *Result) []int {
	n := g.N
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	frontier := make([]int, 0, res.NumComp)
	for _, s := range res.Centers {
		dist[s] = 0
		frontier = append(frontier, int(s))
	}
	var tree []int
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			cu := res.Comp[u]
			for i := g.Off[u]; i < g.Off[u+1]; i++ {
				v := g.Adj[i]
				if v == u || dist[v] >= 0 || res.Comp[v] != cu {
					continue
				}
				dist[v] = dist[u] + 1
				tree = append(tree, g.EdgeID[i])
				next = append(next, v)
			}
		}
		frontier = next
	}
	return tree
}
