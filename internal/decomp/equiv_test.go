package decomp

import (
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
)

// The decomposition was the last construction stage whose parallel path
// could differ from the sequential reference in anything (even frontier
// order). After the deterministic-frontier-rounds rewrite, Workers is pure
// schedule: for identical rng streams, every field of the Result — the
// assignment, the component numbering, the centers, the creation iterations
// — must be identical for every worker count.

func equivGraphs() map[string]*graph.Graph {
	union := func(gs ...*graph.Graph) *graph.Graph {
		n := 0
		var edges []graph.Edge
		for _, g := range gs {
			for _, e := range g.Edges {
				edges = append(edges, graph.Edge{U: e.U + n, V: e.V + n, W: e.W})
			}
			n += g.N
		}
		return graph.FromEdges(n, edges)
	}
	return map[string]*graph.Graph{
		// Large enough that BFS rounds exceed the sequential threshold, so
		// the chunked reserve/commit path actually runs under workers > 1.
		"grid":         gen.Grid2D(80, 80),
		"gnp":          gen.GNP(3000, 0.003, 5),
		"pa":           gen.PreferentialAttachment(5000, 4, 7),
		"regular":      gen.RandomRegular(4000, 6, 11),
		"disconnected": union(gen.Grid2D(40, 40), gen.Cycle(900), gen.PreferentialAttachment(1500, 2, 3)),
		"star":         gen.Star(4000),
	}
}

func splitWith(g *graph.Graph, workers int, rho int, seed int64) *Result {
	p := PracticalParams()
	p.Workers = workers
	rng := rand.New(rand.NewSource(seed))
	return SplitGraph(g, rho, p, rng, nil)
}

func sameResult(t *testing.T, name string, workers int, ref, got *Result) {
	t.Helper()
	if got.NumComp != ref.NumComp || got.T != ref.T || got.R != ref.R {
		t.Fatalf("%s workers=%d: shape differs (%d comps T=%d R=%d vs %d T=%d R=%d)",
			name, workers, got.NumComp, got.T, got.R, ref.NumComp, ref.T, ref.R)
	}
	for v := range ref.Comp {
		if got.Comp[v] != ref.Comp[v] {
			t.Fatalf("%s workers=%d: vertex %d in component %d, sequential says %d",
				name, workers, v, got.Comp[v], ref.Comp[v])
		}
	}
	for c := range ref.Centers {
		if got.Centers[c] != ref.Centers[c] || got.CompIter[c] != ref.CompIter[c] {
			t.Fatalf("%s workers=%d: component %d center/iter (%d,%d) vs (%d,%d)",
				name, workers, c, got.Centers[c], got.CompIter[c], ref.Centers[c], ref.CompIter[c])
		}
	}
}

func TestSplitGraphWorkerEquivalence(t *testing.T) {
	for name, g := range equivGraphs() {
		for _, rho := range []int{3, 10, 40} {
			ref := splitWith(g, 1, rho, 42)
			checkDecomposition(t, g, ref, rho)
			for _, w := range []int{0, 2, 4} {
				sameResult(t, name, w, ref, splitWith(g, w, rho, 42))
			}
		}
	}
}

func TestPartitionWorkerEquivalence(t *testing.T) {
	for name, g := range equivGraphs() {
		// Two edge classes split by index parity, exercising the per-class
		// validation across workers too.
		class := make([]int, len(g.Edges))
		for i := range class {
			class[i] = i % 2
		}
		run := func(workers int) *PartitionResult {
			p := PracticalParams()
			p.Workers = workers
			rng := rand.New(rand.NewSource(77))
			pr, _ := Partition(g, class, 2, 12, p, rng, nil) // threshold advisory at this scale
			return pr
		}
		ref := run(1)
		for _, w := range []int{0, 2, 4} {
			got := run(w)
			sameResult(t, name, w, ref.Result, got.Result)
			if got.Trials != ref.Trials || got.Cut.Total != ref.Cut.Total {
				t.Fatalf("%s workers=%d: trials/cut (%d,%d) vs (%d,%d)",
					name, w, got.Trials, got.Cut.Total, ref.Trials, ref.Cut.Total)
			}
			for i := range ref.Cut.PerClass {
				if got.Cut.PerClass[i] != ref.Cut.PerClass[i] {
					t.Fatalf("%s workers=%d: class %d cut %d vs %d",
						name, w, i, got.Cut.PerClass[i], ref.Cut.PerClass[i])
				}
			}
		}
	}
}
