package decomp

import (
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
)

func TestBFSTreesSpanComponentsWithinRadius(t *testing.T) {
	g := gen.Grid2D(24, 24)
	rng := rand.New(rand.NewSource(1))
	res := SplitGraph(g, 8, PracticalParams(), rng, nil)
	tree := BFSTrees(g, res)
	// The trees form a forest with exactly one tree per component.
	uf := graph.NewUnionFind(g.N)
	for _, id := range tree {
		e := g.Edges[id]
		if res.Comp[e.U] != res.Comp[e.V] {
			t.Fatalf("tree edge %d crosses components", id)
		}
		if !uf.Union(e.U, e.V) {
			t.Fatalf("tree edge %d closes a cycle", id)
		}
	}
	if uf.Count() != res.NumComp {
		t.Fatalf("forest has %d trees, want %d", uf.Count(), res.NumComp)
	}
	// Tree depth from each center is within the component's strong radius:
	// replay BFS over tree edges only.
	adj := make([][]int32, g.N)
	for _, id := range tree {
		e := g.Edges[id]
		adj[e.U] = append(adj[e.U], int32(e.V))
		adj[e.V] = append(adj[e.V], int32(e.U))
	}
	depth := make([]int, g.N)
	for i := range depth {
		depth[i] = -1
	}
	var frontier []int
	for _, s := range res.Centers {
		depth[s] = 0
		frontier = append(frontier, int(s))
	}
	maxDepth := 0
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range adj[u] {
				if depth[v] < 0 {
					depth[v] = depth[u] + 1
					if depth[v] > maxDepth {
						maxDepth = depth[v]
					}
					next = append(next, int(v))
				}
			}
		}
		frontier = next
	}
	for v := 0; v < g.N; v++ {
		if depth[v] < 0 {
			t.Fatalf("vertex %d not reached by its component's BFS tree", v)
		}
	}
	if maxDepth > 8 {
		t.Fatalf("tree depth %d exceeds rho=8", maxDepth)
	}
}

func TestBFSTreesSingletons(t *testing.T) {
	// A graph with no edges: every vertex its own component, empty forest.
	g := graph.FromEdges(5, nil)
	rng := rand.New(rand.NewSource(2))
	res := SplitGraph(g, 3, PracticalParams(), rng, nil)
	if res.NumComp != 5 {
		t.Fatalf("components = %d, want 5", res.NumComp)
	}
	if tree := BFSTrees(g, res); len(tree) != 0 {
		t.Fatalf("edgeless graph produced %d tree edges", len(tree))
	}
}
