package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// randomReorderSparse builds a random symmetric Laplacian-shaped test matrix
// (off-diagonal negatives, row sums on the diagonal) over n vertices.
func randomReorderSparse(t *testing.T, n int, rng *rand.Rand) *Sparse {
	t.Helper()
	var rows, cols []int
	var vals []float64
	add := func(r, c int, v float64) {
		rows = append(rows, r)
		cols = append(cols, c)
		vals = append(vals, v)
	}
	edge := func(u, v int) {
		w := 0.1 + rng.Float64()
		add(u, v, -w)
		add(v, u, -w)
		add(u, u, w)
		add(v, v, w)
	}
	for v := 1; v < n; v++ {
		u := rng.Intn(v) // connected: spanning-tree backbone + extras
		edge(u, v)
		if rng.Intn(3) == 0 && v >= 2 {
			if u2 := rng.Intn(v); u2 != u {
				edge(u2, v)
			}
		}
	}
	a, err := NewSparseFromTriplets(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCMOrderIsDeterministicPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		a := randomReorderSparse(t, n, rng)
		perm := CMOrder(a)
		if !IsPermutation(perm, n) {
			t.Fatalf("n=%d: CMOrder is not a permutation", n)
		}
		again := CMOrder(a)
		for j := range perm {
			if perm[j] != again[j] {
				t.Fatalf("n=%d: CMOrder not deterministic at %d", n, j)
			}
		}
	}
}

// PermuteSparse must produce exactly P·A·Pᵀ: entry (i, j) of the permuted
// matrix equals entry (perm[i], perm[j]) of the original, with exact bits,
// sorted columns, and the diagonal relabeled alongside.
func TestPermuteSparseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(120)
		a := randomReorderSparse(t, n, rng)
		perm := CMOrder(a)
		for _, w := range []int{1, 4} {
			p := PermuteSparse(w, a, perm)
			if p.NNZ() != a.NNZ() {
				t.Fatalf("nnz %d vs %d", p.NNZ(), a.NNZ())
			}
			entry := func(s *Sparse, r, c int) (float64, bool) {
				for i := s.Off[r]; i < s.Off[r+1]; i++ {
					if int(s.Col[i]) == c {
						return s.Val[i], true
					}
				}
				return 0, false
			}
			for j := 0; j < n; j++ {
				for i := p.Off[j]; i < p.Off[j+1]; i++ {
					if i > p.Off[j] && p.Col[i-1] >= p.Col[i] {
						t.Fatalf("workers=%d: row %d columns not strictly sorted", w, j)
					}
					want, found := entry(a, int(perm[j]), int(perm[p.Col[i]]))
					if !found || math.Float64bits(want) != math.Float64bits(p.Val[i]) {
						t.Fatalf("workers=%d: entry (%d,%d) mismatch", w, j, p.Col[i])
					}
				}
				if math.Float64bits(p.Diag[j]) != math.Float64bits(a.Diag[perm[j]]) {
					t.Fatalf("workers=%d: diag %d mismatch", w, j)
				}
			}
		}
	}
}

// Gather then scatter (and the block forms) must be exact inverses, bitwise
// identical for every worker count.
func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 257
	a := randomReorderSparse(t, n, rng)
	perm := CMOrder(a)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, w := range []int{1, 3} {
		g := make([]float64, n)
		back := make([]float64, n)
		GatherW(w, g, x, perm)
		ScatterW(w, back, g, perm)
		for i := range x {
			if math.Float64bits(back[i]) != math.Float64bits(x[i]) {
				t.Fatalf("workers=%d: gather/scatter not inverse at %d", w, i)
			}
		}
		const k = 3
		var bx, bg, bb Block
		bx.Reshape(n, k)
		bg.Reshape(n, k)
		bb.Reshape(n, k)
		for c := 0; c < k; c++ {
			col := make([]float64, n)
			for i := range col {
				col[i] = rng.NormFloat64()
			}
			bx.SetCol(c, col)
		}
		GatherBlockW(w, &bg, &bx, perm)
		ScatterBlockW(w, &bb, &bg, perm)
		for i := range bx.Data() {
			if math.Float64bits(bb.Data()[i]) != math.Float64bits(bx.Data()[i]) {
				t.Fatalf("workers=%d: block gather/scatter not inverse at %d", w, i)
			}
		}
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int32{2, 0, 1}, 3) {
		t.Fatal("valid permutation rejected")
	}
	for _, bad := range [][]int32{{0, 0, 1}, {0, 1, 3}, {0, -1, 2}, {0, 1}} {
		if IsPermutation(bad, 3) {
			t.Fatalf("invalid permutation %v accepted", bad)
		}
	}
}
