package matrix

import (
	"math/rand"
	"testing"

	"parlap/internal/graph"
)

// The batch kernels' contract is bitwise: column c of any batched operation
// must equal the single-vector kernel applied to column c. These tests
// compare with == (no tolerances).

func randCols(n, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, k)
	for c := range xs {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		xs[c] = x
	}
	return xs
}

func randLap(n int, seed int64) *Sparse {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: rng.Intn(i), V: i, W: rng.Float64() + 0.1})
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v, W: rng.Float64()})
		}
	}
	return LaplacianOf(graph.FromEdges(n, edges))
}

func requireBitwise(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d differs: %g vs %g", name, i, got[i], want[i])
		}
	}
}

func TestMulVecBatchBitwise(t *testing.T) {
	a := randLap(700, 1)
	for _, k := range []int{1, 2, 5} {
		xs := randCols(a.N, k, 2)
		ys := make([][]float64, k)
		for c := range ys {
			ys[c] = make([]float64, a.N)
		}
		for _, w := range []int{1, 0, 3} {
			a.MulVecBatchW(w, xs, ys)
			for c := 0; c < k; c++ {
				ref := make([]float64, a.N)
				a.MulVecW(1, xs[c], ref)
				requireBitwise(t, "mulvec", ys[c], ref)
			}
		}
	}
}

func TestDotNormBatchBitwise(t *testing.T) {
	n, k := 5000, 4
	xs := randCols(n, k, 3)
	ys := randCols(n, k, 4)
	for _, w := range []int{1, 0, 2} {
		dots := DotBatchW(w, xs, ys)
		norms := Norm2BatchW(w, xs)
		for c := 0; c < k; c++ {
			if dots[c] != DotW(1, xs[c], ys[c]) {
				t.Fatalf("dot column %d differs under workers=%d", c, w)
			}
			if norms[c] != Norm2W(1, xs[c]) {
				t.Fatalf("norm column %d differs under workers=%d", c, w)
			}
		}
	}
}

func TestAxpySubBatchBitwise(t *testing.T) {
	n, k := 4000, 3
	xs := randCols(n, k, 5)
	ys := randCols(n, k, 6)
	alphas := []float64{0.5, -1.25, 3.75}
	dsts := make([][]float64, k)
	diffs := make([][]float64, k)
	for c := range dsts {
		dsts[c] = make([]float64, n)
		diffs[c] = make([]float64, n)
	}
	AxpyBatchW(0, dsts, alphas, xs, ys)
	SubIntoBatchW(0, diffs, xs, ys)
	for c := 0; c < k; c++ {
		ref := make([]float64, n)
		AxpyIntoW(1, ref, alphas[c], xs[c], ys[c])
		requireBitwise(t, "axpy", dsts[c], ref)
		SubIntoW(1, ref, xs[c], ys[c])
		requireBitwise(t, "sub", diffs[c], ref)
	}
}

func TestProjectBatchBitwise(t *testing.T) {
	n, k := 6000, 3
	// Single-component case.
	xs := randCols(n, k, 7)
	refs := CopyVecBatch(xs)
	comp := make([]int, n)
	ProjectOutConstantMaskedBatchW(0, xs, comp, 1)
	for c := 0; c < k; c++ {
		ProjectOutConstantMaskedW(1, refs[c], comp, 1)
		requireBitwise(t, "project-1comp", xs[c], refs[c])
	}
	// Multi-component case.
	for i := range comp {
		comp[i] = i % 4
	}
	xs = randCols(n, k, 8)
	refs = CopyVecBatch(xs)
	ProjectOutConstantMaskedBatchW(2, xs, comp, 4)
	for c := 0; c < k; c++ {
		ProjectOutConstantMaskedW(1, refs[c], comp, 4)
		requireBitwise(t, "project-4comp", xs[c], refs[c])
	}
}

func TestDenseSolveBatchBitwise(t *testing.T) {
	a := randLap(120, 9)
	g := GraphOf(a)
	comp, numComp := g.ConnectedComponents()
	lf, err := NewLaplacianFactor(a, comp, numComp)
	if err != nil {
		t.Fatal(err)
	}
	bs := randCols(a.N, 4, 10)
	xs := lf.SolveBatch(bs)
	for c := range bs {
		requireBitwise(t, "laplacian-factor", xs[c], lf.Solve(bs[c]))
	}
}
