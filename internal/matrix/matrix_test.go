package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parlap/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: i, V: i + 1, W: 1}
	}
	return graph.FromEdges(n, edges)
}

func TestLaplacianOfTriangle(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3}})
	l := LaplacianOf(g)
	if l.N != 3 {
		t.Fatalf("N = %d", l.N)
	}
	wantDiag := []float64{4, 3, 5}
	for i, w := range wantDiag {
		if l.Diag[i] != w {
			t.Fatalf("diag[%d] = %v, want %v", i, l.Diag[i], w)
		}
	}
	// Row sums must vanish.
	ones := []float64{1, 1, 1}
	y := l.Apply(ones)
	for i, v := range y {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("L·1 [%d] = %v, want 0", i, v)
		}
	}
}

func TestLaplacianQuadFormEqualsEdgeSum(t *testing.T) {
	// xᵀLx = Σ_e w_e (x_u − x_v)²: the defining identity.
	rng := rand.New(rand.NewSource(3))
	n := 50
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: rng.Intn(i), V: i, W: rng.Float64() + 0.1})
	}
	g := graph.FromEdges(n, edges)
	l := LaplacianOf(g)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := l.QuadForm(x)
	want := 0.0
	for _, e := range g.Edges {
		d := x[e.U] - x[e.V]
		want += e.W * d * d
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("quad form %v != edge sum %v", got, want)
	}
}

func TestGraphOfRoundTrip(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1.5}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 0.5}})
	g2 := GraphOf(LaplacianOf(g))
	if g2.N != g.N || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", g2.N, g2.M(), g.N, g.M())
	}
	if math.Abs(g2.TotalWeight()-g.TotalWeight()) > 1e-12 {
		t.Fatalf("round trip changed weight")
	}
}

func TestLaplacianMergesParallelEdges(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 2}})
	l := LaplacianOf(g)
	if l.Diag[0] != 3 {
		t.Fatalf("diag = %v, want 3", l.Diag[0])
	}
	if l.NNZ() != 4 { // 2 diag + 2 off-diag entries
		t.Fatalf("nnz = %d, want 4", l.NNZ())
	}
}

func TestTripletsRejectBadInput(t *testing.T) {
	if _, err := NewSparseFromTriplets(2, []int{0}, []int{5}, []float64{1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := NewSparseFromTriplets(2, []int{0, 1}, []int{1}, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestMulVecIdentityLike(t *testing.T) {
	a, err := NewSparseFromTriplets(3,
		[]int{0, 1, 2}, []int{0, 1, 2}, []float64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	y := a.Apply([]float64{1, 1, 1})
	want := []float64{2, 3, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestIsSDD(t *testing.T) {
	g := pathGraph(5)
	l := LaplacianOf(g)
	if !l.IsSDD(1e-12) {
		t.Fatal("Laplacian should be SDD")
	}
	// Perturb a diagonal to violate dominance.
	bad, _ := NewSparseFromTriplets(2,
		[]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, []float64{0.5, -1, -1, 2})
	if bad.IsSDD(1e-12) {
		t.Fatal("matrix with deficient diagonal passed IsSDD")
	}
	// Asymmetric matrix must fail.
	asym, _ := NewSparseFromTriplets(2,
		[]int{0, 0, 1}, []int{0, 1, 1}, []float64{2, -1, 2})
	if asym.IsSDD(1e-12) {
		t.Fatal("asymmetric matrix passed IsSDD")
	}
}

func TestIsLaplacian(t *testing.T) {
	if !IsLaplacian(LaplacianOf(pathGraph(4)), 1e-10) {
		t.Fatal("Laplacian not recognized")
	}
	// SDD but not Laplacian: positive off-diagonal.
	a, _ := NewSparseFromTriplets(2,
		[]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, []float64{2, 1, 1, 2})
	if IsLaplacian(a, 1e-10) {
		t.Fatal("positive off-diagonal accepted as Laplacian")
	}
}

func TestVectorKernels(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if d := Dot(x, y); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
	dst := make([]float64, 3)
	AxpyInto(dst, 2, x, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	SubInto(dst, y, x)
	for i := range dst {
		if dst[i] != 3 {
			t.Fatalf("Sub[%d] = %v, want 3", i, dst[i])
		}
	}
	AddInto(dst, x, x)
	for i := range dst {
		if dst[i] != 2*x[i] {
			t.Fatalf("Add[%d] = %v", i, dst[i])
		}
	}
	ScaleInto(dst, 10, x)
	for i := range dst {
		if dst[i] != 10*x[i] {
			t.Fatalf("Scale[%d] = %v", i, dst[i])
		}
	}
}

func TestProjectOutConstant(t *testing.T) {
	x := []float64{1, 2, 3, 6}
	ProjectOutConstant(x)
	if m := Mean(x); math.Abs(m) > 1e-15 {
		t.Fatalf("mean after projection = %v", m)
	}
}

func TestProjectOutConstantMasked(t *testing.T) {
	x := []float64{1, 3, 10, 30}
	comp := []int{0, 0, 1, 1}
	ProjectOutConstantMasked(x, comp, 2)
	if x[0] != -1 || x[1] != 1 || x[2] != -10 || x[3] != 10 {
		t.Fatalf("masked projection wrong: %v", x)
	}
}

func TestDenseFactorSolves(t *testing.T) {
	// SPD matrix: A = [[4,1,0],[1,3,1],[0,1,2]].
	a := []float64{4, 1, 0, 1, 3, 1, 0, 1, 2}
	f, err := NewDenseFactor(3, a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := f.Solve(b)
	// Verify A x = b.
	for i := 0; i < 3; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			s += a[i*3+j] * x[j]
		}
		if math.Abs(s-b[i]) > 1e-10 {
			t.Fatalf("residual %v at row %d", s-b[i], i)
		}
	}
}

func TestDenseFactorRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, −1
	if _, err := NewDenseFactor(2, a); err == nil {
		t.Fatal("indefinite matrix factored without error")
	}
}

func TestDenseFactorSizeMismatch(t *testing.T) {
	if _, err := NewDenseFactor(2, []float64{1}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestLaplacianFactorSolvesGrid(t *testing.T) {
	g := pathGraph(6)
	l := LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	lf, err := NewLaplacianFactor(l, comp, k)
	if err != nil {
		t.Fatal(err)
	}
	// Right-hand side in range(L): mean zero.
	b := []float64{1, -1, 2, -2, 3, -3}
	x := lf.Solve(b)
	y := l.Apply(x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-8 {
			t.Fatalf("L x − b = %v at %d", y[i]-b[i], i)
		}
	}
	// Solution is mean-centered (pseudo-inverse representative).
	if m := Mean(x); math.Abs(m) > 1e-10 {
		t.Fatalf("solution mean = %v", m)
	}
}

func TestLaplacianFactorDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}})
	l := LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	if k != 2 {
		t.Fatalf("components = %d", k)
	}
	lf, err := NewLaplacianFactor(l, comp, k)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -1, 2, -2}
	x := lf.Solve(b)
	y := l.Apply(x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-9 {
			t.Fatalf("residual %v at %d", y[i]-b[i], i)
		}
	}
}

func TestLaplacianFactorProjectsOffRangeRHS(t *testing.T) {
	g := pathGraph(4)
	l := LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	lf, _ := NewLaplacianFactor(l, comp, k)
	// b with nonzero mean: solver should solve against the projected b.
	b := []float64{5, 1, 1, 1}
	x := lf.Solve(b)
	y := l.Apply(x)
	ProjectOutConstant(b)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-9 {
			t.Fatalf("residual vs projected b: %v at %d", y[i]-b[i], i)
		}
	}
}

func TestGrembanLaplacianInput(t *testing.T) {
	// A Laplacian is SDD; the reduction must still work (slack = 0).
	g := pathGraph(4)
	l := LaplacianOf(g)
	gr, err := NewGrembanReduction(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gr.G.N != 8 {
		t.Fatalf("double cover has %d vertices, want 8", gr.G.N)
	}
	// Solve via dense factor on the double cover and check A x = b.
	comp, k := gr.G.ConnectedComponents()
	lf, err := NewLaplacianFactor(gr.L, comp, k)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3, -2}
	x := gr.Project(lf.Solve(gr.Lift(b)))
	y := l.Apply(x)
	// b may be off range(L); compare against projected b.
	bp := CopyVec(b)
	ProjectOutConstant(bp)
	for i := range bp {
		if math.Abs(y[i]-bp[i]) > 1e-8 {
			t.Fatalf("Gremban solve residual %v at %d", y[i]-bp[i], i)
		}
	}
}

func TestGrembanPositiveOffDiagonal(t *testing.T) {
	// SDD with positive off-diagonals and slack: A = [[3,1],[1,2]].
	a, err := NewSparseFromTriplets(2,
		[]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, []float64{3, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := NewGrembanReduction(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	comp, k := gr.G.ConnectedComponents()
	lf, err := NewLaplacianFactor(gr.L, comp, k)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 1}
	x := gr.Project(lf.Solve(gr.Lift(b)))
	// A is nonsingular: exact solve expected. A x = b.
	y := a.Apply(x)
	for i := range b {
		if math.Abs(y[i]-b[i]) > 1e-8 {
			t.Fatalf("residual %v at %d (x=%v)", y[i]-b[i], i, x)
		}
	}
}

func TestGrembanRejectsNonSDD(t *testing.T) {
	a, _ := NewSparseFromTriplets(2,
		[]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, []float64{1, -5, -5, 1})
	if _, err := NewGrembanReduction(a, 0); err == nil {
		t.Fatal("non-SDD accepted")
	}
}

func TestGrembanRandomSDDProperty(t *testing.T) {
	// Property: for random SDD matrices with strictly positive slack
	// (hence nonsingular), the Gremban route solves A x = b exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		dense := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.6 {
					v := (rng.Float64() - 0.5) * 4
					dense[i*n+j] = v
					dense[j*n+i] = v
				}
			}
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					s += math.Abs(dense[i*n+j])
				}
			}
			dense[i*n+i] = s + 0.5 + rng.Float64()
		}
		var rows, cols []int
		var vals []float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dense[i*n+j] != 0 {
					rows = append(rows, i)
					cols = append(cols, j)
					vals = append(vals, dense[i*n+j])
				}
			}
		}
		a, err := NewSparseFromTriplets(n, rows, cols, vals)
		if err != nil {
			return false
		}
		gr, err := NewGrembanReduction(a, 0)
		if err != nil {
			return false
		}
		comp, k := gr.G.ConnectedComponents()
		lf, err := NewLaplacianFactor(gr.L, comp, k)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := gr.Project(lf.Solve(gr.Lift(b)))
		y := a.Apply(x)
		for i := range b {
			if math.Abs(y[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestANormNonNegative(t *testing.T) {
	l := LaplacianOf(pathGraph(5))
	x := []float64{1, 1, 1, 1, 1} // null space: A-norm 0
	if n := ANorm(l, x); n != 0 {
		t.Fatalf("ANorm of null vector = %v", n)
	}
}
