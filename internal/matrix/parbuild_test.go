package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
)

// naiveFromTriplets is the reference CSR builder: dense accumulation, no
// parallelism. Duplicate order differs from the parallel sort's, so float
// comparisons against it use a relative tolerance.
func naiveFromTriplets(n int, rows, cols []int, vals []float64) map[[2]int]float64 {
	acc := make(map[[2]int]float64)
	for i := range rows {
		acc[[2]int{rows[i], cols[i]}] += vals[i]
	}
	return acc
}

func randomTriplets(n, m int, seed int64) (rows, cols []int, vals []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows = make([]int, m)
	cols = make([]int, m)
	vals = make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = rng.Intn(n)
		cols[i] = rng.Intn(n)
		vals[i] = rng.NormFloat64()
	}
	return rows, cols, vals
}

func sameSparse(t *testing.T, a, b *Sparse, label string) {
	t.Helper()
	if a.N != b.N || a.NNZ() != b.NNZ() {
		t.Fatalf("%s: shape mismatch: (%d,%d) vs (%d,%d)", label, a.N, a.NNZ(), b.N, b.NNZ())
	}
	for i := range a.Off {
		if a.Off[i] != b.Off[i] {
			t.Fatalf("%s: Off[%d] = %d vs %d", label, i, a.Off[i], b.Off[i])
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatalf("%s: Col[%d] = %d vs %d", label, i, a.Col[i], b.Col[i])
		}
		if a.Val[i] != b.Val[i] {
			t.Fatalf("%s: Val[%d] = %v vs %v (not bitwise identical)", label, i, a.Val[i], b.Val[i])
		}
	}
	for i := range a.Diag {
		if a.Diag[i] != b.Diag[i] {
			t.Fatalf("%s: Diag[%d] = %v vs %v", label, i, a.Diag[i], b.Diag[i])
		}
	}
}

func TestNewSparseFromTripletsWorkerEquivalence(t *testing.T) {
	// Sizes straddle the sort grain so both the sequential-leaf path and
	// the multi-round merge path are exercised; heavy duplication stresses
	// the run-merge.
	for _, m := range []int{0, 1, 17, 4095, 4096, 4097, 60000} {
		n := 97
		rows, cols, vals := randomTriplets(n, m, int64(m)+1)
		ref, err := NewSparseFromTripletsW(1, n, rows, cols, vals)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 4, 8} {
			got, err := NewSparseFromTripletsW(w, n, rows, cols, vals)
			if err != nil {
				t.Fatal(err)
			}
			sameSparse(t, ref, got, fmt.Sprintf("m=%d workers=%d", m, w))
		}
		// Against the naive accumulator, within roundoff.
		acc := naiveFromTriplets(n, rows, cols, vals)
		nnz := 0
		for r := 0; r < n; r++ {
			for i := ref.Off[r]; i < ref.Off[r+1]; i++ {
				nnz++
				want := acc[[2]int{r, int(ref.Col[i])}]
				if math.Abs(ref.Val[i]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("m=%d: entry (%d,%d) = %v, naive %v", m, r, ref.Col[i], ref.Val[i], want)
				}
			}
		}
		if nnz != len(acc) {
			t.Fatalf("m=%d: nnz %d, naive %d", m, nnz, len(acc))
		}
	}
}

func TestNewSparseFromTripletsCSRInvariants(t *testing.T) {
	n := 61
	rows, cols, vals := randomTriplets(n, 30000, 9)
	a, err := NewSparseFromTriplets(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off[0] != 0 || a.Off[n] != a.NNZ() {
		t.Fatalf("Off endpoints wrong: %d, %d (nnz %d)", a.Off[0], a.Off[n], a.NNZ())
	}
	for r := 0; r < n; r++ {
		if a.Off[r] > a.Off[r+1] {
			t.Fatalf("Off not monotone at %d", r)
		}
		for i := a.Off[r] + 1; i < a.Off[r+1]; i++ {
			if a.Col[i-1] >= a.Col[i] {
				t.Fatalf("row %d: columns not strictly increasing at %d", r, i)
			}
		}
	}
}

func TestNewSparseFromTripletsErrors(t *testing.T) {
	if _, err := NewSparseFromTriplets(4, []int{0}, []int{0, 1}, []float64{1}); err == nil {
		t.Fatal("mismatched slice lengths not rejected")
	}
	// Out-of-range detection must fire on the parallel path too: put the
	// bad triplet deep inside a large batch.
	m := 20000
	rows, cols, vals := randomTriplets(10, m, 11)
	rows[m-3] = 10 // out of range
	for _, w := range []int{1, 4} {
		if _, err := NewSparseFromTripletsW(w, 10, rows, cols, vals); err == nil {
			t.Fatalf("workers=%d: out-of-range triplet not rejected", w)
		}
	}
}

func TestLaplacianOfWorkerEquivalence(t *testing.T) {
	g := gen.WithExponentialWeights(gen.Torus2D(48, 48), 8, 5, 3)
	ref := LaplacianOfW(1, g)
	for _, w := range []int{0, 2, 8} {
		sameSparse(t, ref, LaplacianOfW(w, g), "laplacian")
	}
	// Row sums of a Laplacian vanish.
	ones := make([]float64, g.N)
	for i := range ones {
		ones[i] = 1
	}
	y := ref.Apply(ones)
	for i, v := range y {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("L·1 nonzero at %d: %v", i, v)
		}
	}
}

func TestVectorKernelWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 50000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	dotRef := DotW(1, x, y)
	normRef := Norm2W(1, x)
	for _, w := range []int{0, 2, 4, 8} {
		if d := DotW(w, x, y); d != dotRef {
			t.Fatalf("workers=%d: Dot %v != %v (bitwise)", w, d, dotRef)
		}
		if nn := Norm2W(w, x); nn != normRef {
			t.Fatalf("workers=%d: Norm2 %v != %v (bitwise)", w, nn, normRef)
		}
		dst1 := make([]float64, n)
		dstW := make([]float64, n)
		AxpyIntoW(1, dst1, 1.5, x, y)
		AxpyIntoW(w, dstW, 1.5, x, y)
		for i := range dst1 {
			if dst1[i] != dstW[i] {
				t.Fatalf("workers=%d: Axpy diverges at %d", w, i)
			}
		}
		a1 := append([]float64(nil), x...)
		aw := append([]float64(nil), x...)
		ProjectOutConstantW(1, a1)
		ProjectOutConstantW(w, aw)
		for i := range a1 {
			if a1[i] != aw[i] {
				t.Fatalf("workers=%d: projection diverges at %d", w, i)
			}
		}
	}
}
