package matrix

import (
	"fmt"
	"math"

	"parlap/internal/par"
)

// DenseFactor is an LDLᵀ factorization of a symmetric positive
// (semi)definite matrix, used as the bottom-level direct solver of the
// preconditioner chain (Fact 6.4). For a connected Laplacian the caller
// grounds one vertex (drops its row and column) to obtain a positive
// definite system; NewLaplacianFactor handles that bookkeeping.
type DenseFactor struct {
	n int
	l []float64 // row-major unit lower triangle (diag implicit 1)
	d []float64 // diagonal of D
}

// MemoryBytes returns the factor's retained footprint (the packed L and D).
func (f *DenseFactor) MemoryBytes() int64 {
	return int64(len(f.l)+len(f.d)) * 8
}

// NewDenseFactor factors the dense symmetric matrix a (row-major n×n) as
// L·D·Lᵀ without pivoting. It returns an error when a zero (or negative
// beyond roundoff) pivot is hit, which for our use signals a singular
// grounded Laplacian.
func NewDenseFactor(n int, a []float64) (*DenseFactor, error) {
	return NewDenseFactorW(0, n, a)
}

// NewDenseFactorW is NewDenseFactor with an explicit worker count for the
// column-update sweeps (0 = GOMAXPROCS, 1 = sequential).
func NewDenseFactorW(workers, n int, a []float64) (*DenseFactor, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("matrix: dense factor needs %d entries, got %d", n*n, len(a))
	}
	l := make([]float64, n*n)
	copy(l, a)
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		// d[j] = a[j][j] - Σ_{k<j} l[j][k]^2 d[k]
		s := l[j*n+j]
		for k := 0; k < j; k++ {
			s -= l[j*n+k] * l[j*n+k] * d[k]
		}
		d[j] = s
		if s <= 0 || math.IsNaN(s) {
			if s > -1e-10*math.Abs(l[j*n+j])-1e-300 {
				// Semi-definite pivot breakdown: treat as singular direction.
				d[j] = math.Inf(1) // column contributes zero to the solve
				for i := j + 1; i < n; i++ {
					l[i*n+j] = 0
				}
				continue
			}
			return nil, fmt.Errorf("matrix: non-PSD pivot %g at column %d", s, j)
		}
		// Column update, parallel over rows below j.
		par.ForChunkedW(workers, n-j-1, func(lo, hi int) {
			for off := lo; off < hi; off++ {
				i := j + 1 + off
				s := l[i*n+j]
				for k := 0; k < j; k++ {
					s -= l[i*n+k] * l[j*n+k] * d[k]
				}
				l[i*n+j] = s / d[j]
			}
		})
	}
	return &DenseFactor{n: n, l: l, d: d}, nil
}

// Solve solves A x = b given the factorization, overwriting nothing;
// it returns a fresh solution vector.
func (f *DenseFactor) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	copy(x, b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.l[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Diagonal solve D z = y.
	for i := 0; i < n; i++ {
		if math.IsInf(f.d[i], 1) {
			x[i] = 0
		} else {
			x[i] /= f.d[i]
		}
	}
	// Backward solve Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.l[k*n+i] * x[k]
		}
		x[i] = s
	}
	return x
}

// SolveBatch solves A x = b for every column of bs with one traversal of
// the factor's triangle per substitution sweep. Column c of the result is
// bitwise identical to Solve(bs[c]): each column performs the same
// subtractions on the same values in the same order — only the L-entry loads
// are shared.
func (f *DenseFactor) SolveBatch(bs [][]float64) [][]float64 {
	k := len(bs)
	if k == 1 {
		return [][]float64{f.Solve(bs[0])}
	}
	n := f.n
	xs := make([][]float64, k)
	for c := range xs {
		xs[c] = CopyVec(bs[c])
	}
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l := f.l[i*n+j]
			for c := 0; c < k; c++ {
				xs[c][i] -= l * xs[c][j]
			}
		}
	}
	// Diagonal solve D z = y.
	for i := 0; i < n; i++ {
		if math.IsInf(f.d[i], 1) {
			for c := 0; c < k; c++ {
				xs[c][i] = 0
			}
		} else {
			d := f.d[i]
			for c := 0; c < k; c++ {
				xs[c][i] /= d
			}
		}
	}
	// Backward solve Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			l := f.l[j*n+i]
			for c := 0; c < k; c++ {
				xs[c][i] -= l * xs[c][j]
			}
		}
	}
	return xs
}

// LaplacianFactor is a dense pseudo-inverse applier for a Laplacian: it
// grounds the last vertex of each connected component and factors the
// remaining principal submatrix, then solves and re-centers per component.
type LaplacianFactor struct {
	n        int
	factor   *DenseFactor
	keep     []int // original indices kept in the grounded system
	pos      []int // original index -> grounded position (-1 if grounded out)
	comp     []int
	numComp  int
	compIdx  *CompIndex // component-sorted index cached for the projections
	grounded []int      // one grounded vertex per component
}

// MemoryBytes returns the factor's retained footprint: the dense LDLᵀ
// factor (the O(n²) bulk of a chain's bottom level) plus the index maps.
func (lf *LaplacianFactor) MemoryBytes() int64 {
	b := int64(len(lf.keep)+len(lf.pos)+len(lf.comp)+len(lf.grounded)) * 8
	if lf.compIdx != nil {
		b += lf.compIdx.MemoryBytes()
	}
	if lf.factor != nil {
		b += lf.factor.MemoryBytes()
	}
	return b
}

// NewLaplacianFactor densifies the Laplacian a and prepares a direct
// pseudo-inverse solver. comp must label a's connected components (as from
// graph.ConnectedComponents on the underlying graph).
func NewLaplacianFactor(a *Sparse, comp []int, numComp int) (*LaplacianFactor, error) {
	return NewLaplacianFactorW(0, a, comp, numComp)
}

// NewLaplacianFactorW is NewLaplacianFactor with an explicit worker count
// for the factorization sweeps.
func NewLaplacianFactorW(workers int, a *Sparse, comp []int, numComp int) (*LaplacianFactor, error) {
	n := a.N
	grounded := make([]int, numComp)
	for c := range grounded {
		grounded[c] = -1
	}
	// Ground the highest-indexed vertex in each component.
	for v := n - 1; v >= 0; v-- {
		c := comp[v]
		if grounded[c] < 0 {
			grounded[c] = v
		}
	}
	pos := make([]int, n)
	var keep []int
	for v := 0; v < n; v++ {
		if grounded[comp[v]] == v {
			pos[v] = -1
			continue
		}
		pos[v] = len(keep)
		keep = append(keep, v)
	}
	k := len(keep)
	dense := make([]float64, k*k)
	for _, v := range keep {
		r := pos[v]
		for i := a.Off[v]; i < a.Off[v+1]; i++ {
			cIdx := a.Col[i]
			if pos[cIdx] >= 0 {
				dense[r*k+pos[cIdx]] = a.Val[i]
			}
		}
	}
	f, err := NewDenseFactorW(workers, k, dense)
	if err != nil {
		return nil, err
	}
	return &LaplacianFactor{
		n: n, factor: f, keep: keep, pos: pos,
		comp: comp, numComp: numComp,
		compIdx:  NewCompIndexW(workers, comp, numComp),
		grounded: grounded,
	}, nil
}

// Solve returns x with L x = b restricted to range(L): the right-hand side
// is first projected per component (mean removed), the grounded system is
// solved, and the result is re-centered so each component of x sums to zero
// (the canonical pseudo-inverse representative).
func (lf *LaplacianFactor) Solve(b []float64) []float64 { return lf.SolveW(0, b) }

// SolveW is Solve with an explicit worker count for the projection passes
// (the substitution sweeps are inherently sequential). Results are bitwise
// identical for every workers value.
func (lf *LaplacianFactor) SolveW(workers int, b []float64) []float64 {
	rb := CopyVec(b)
	ProjectOutConstantMaskedIdxW(workers, rb, lf.compIdx)
	gb := make([]float64, len(lf.keep))
	for i, v := range lf.keep {
		gb[i] = rb[v]
	}
	gx := lf.factor.Solve(gb)
	x := make([]float64, lf.n)
	for i, v := range lf.keep {
		x[v] = gx[i]
	}
	// Grounded vertices already hold 0; re-center per component.
	ProjectOutConstantMaskedIdxW(workers, x, lf.compIdx)
	return x
}

// SolveBatch applies the pseudo-inverse to every column of bs, sharing the
// dense factor traversal across columns. Column c is bitwise identical to
// Solve(bs[c]).
func (lf *LaplacianFactor) SolveBatch(bs [][]float64) [][]float64 {
	return lf.SolveBatchW(0, bs)
}

// SolveBatchW is SolveBatch with an explicit worker count for the
// projection passes.
func (lf *LaplacianFactor) SolveBatchW(workers int, bs [][]float64) [][]float64 {
	k := len(bs)
	if k == 1 {
		return [][]float64{lf.SolveW(workers, bs[0])}
	}
	rbs := CopyVecBatch(bs)
	ProjectOutConstantMaskedBatchIdxW(workers, rbs, lf.compIdx)
	gbs := make([][]float64, k)
	for c := range gbs {
		gb := make([]float64, len(lf.keep))
		for i, v := range lf.keep {
			gb[i] = rbs[c][v]
		}
		gbs[c] = gb
	}
	gxs := lf.factor.SolveBatch(gbs)
	xs := make([][]float64, k)
	for c := range xs {
		x := make([]float64, lf.n)
		for i, v := range lf.keep {
			x[v] = gxs[c][i]
		}
		xs[c] = x
	}
	ProjectOutConstantMaskedBatchIdxW(workers, xs, lf.compIdx)
	return xs
}
