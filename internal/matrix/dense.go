package matrix

import (
	"fmt"
	"math"

	"parlap/internal/par"
)

// DenseFactor is an LDLᵀ factorization of a symmetric positive
// (semi)definite matrix, used as the bottom-level direct solver of the
// preconditioner chain (Fact 6.4). For a connected Laplacian the caller
// grounds one vertex (drops its row and column) to obtain a positive
// definite system; NewLaplacianFactor handles that bookkeeping.
type DenseFactor struct {
	n int
	l []float64 // row-major unit lower triangle (diag implicit 1)
	d []float64 // diagonal of D
}

// MemoryBytes returns the factor's retained footprint (the packed L and D).
func (f *DenseFactor) MemoryBytes() int64 {
	return int64(len(f.l)+len(f.d)) * 8
}

// NewDenseFactor factors the dense symmetric matrix a (row-major n×n) as
// L·D·Lᵀ without pivoting. It returns an error when a zero (or negative
// beyond roundoff) pivot is hit, which for our use signals a singular
// grounded Laplacian.
func NewDenseFactor(n int, a []float64) (*DenseFactor, error) {
	return NewDenseFactorW(0, n, a)
}

// NewDenseFactorW is NewDenseFactor with an explicit worker count for the
// column-update sweeps (0 = GOMAXPROCS, 1 = sequential).
func NewDenseFactorW(workers, n int, a []float64) (*DenseFactor, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("matrix: dense factor needs %d entries, got %d", n*n, len(a))
	}
	l := make([]float64, n*n)
	copy(l, a)
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		// d[j] = a[j][j] - Σ_{k<j} l[j][k]^2 d[k]
		s := l[j*n+j]
		for k := 0; k < j; k++ {
			s -= l[j*n+k] * l[j*n+k] * d[k]
		}
		d[j] = s
		if s <= 0 || math.IsNaN(s) {
			if s > -1e-10*math.Abs(l[j*n+j])-1e-300 {
				// Semi-definite pivot breakdown: treat as singular direction.
				d[j] = math.Inf(1) // column contributes zero to the solve
				for i := j + 1; i < n; i++ {
					l[i*n+j] = 0
				}
				continue
			}
			return nil, fmt.Errorf("matrix: non-PSD pivot %g at column %d", s, j)
		}
		// Column update, parallel over rows below j.
		par.ForChunkedW(workers, n-j-1, func(lo, hi int) {
			for off := lo; off < hi; off++ {
				i := j + 1 + off
				s := l[i*n+j]
				for k := 0; k < j; k++ {
					s -= l[i*n+k] * l[j*n+k] * d[k]
				}
				l[i*n+j] = s / d[j]
			}
		})
	}
	return &DenseFactor{n: n, l: l, d: d}, nil
}

// Dim returns the factored system size.
func (f *DenseFactor) Dim() int { return f.n }

// Parts exposes the factor's packed unit lower triangle and diagonal for
// snapshot serialization. The returned slices are the factor's own backing
// arrays — callers must treat them as read-only.
func (f *DenseFactor) Parts() (l, d []float64) { return f.l, f.d }

// NewDenseFactorFromParts reassembles a DenseFactor from snapshot data: the
// packed row-major unit lower triangle l (n×n, upper entries ignored) and
// the diagonal d (length n), exactly as returned by Parts. The slices are
// retained, not copied. Used by the chain snapshot restore path; solving
// with a reassembled factor is bit-for-bit the original's arithmetic because
// the substitution sweeps read only these arrays.
func NewDenseFactorFromParts(n int, l, d []float64) (*DenseFactor, error) {
	if n < 0 || len(l) != n*n || len(d) != n {
		return nil, fmt.Errorf("matrix: dense factor parts want %d+%d entries, got %d+%d", n*n, n, len(l), len(d))
	}
	return &DenseFactor{n: n, l: l, d: d}, nil
}

// Solve solves A x = b given the factorization, overwriting nothing;
// it returns a fresh solution vector.
func (f *DenseFactor) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveInto(b, x)
	return x
}

// SolveInto solves A x = b into the caller-provided x (length n, fully
// overwritten; x may alias b). It allocates nothing — the workspace form of
// Solve for the chain's allocation-free apply path.
func (f *DenseFactor) SolveInto(b, x []float64) {
	n := f.n
	copy(x, b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.l[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Diagonal solve D z = y.
	for i := 0; i < n; i++ {
		if math.IsInf(f.d[i], 1) {
			x[i] = 0
		} else {
			x[i] /= f.d[i]
		}
	}
	// Backward solve Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.l[k*n+i] * x[k]
		}
		x[i] = s
	}
}

// SolveBatch solves A x = b for every column of bs with one traversal of
// the factor's triangle per substitution sweep. Column c of the result is
// bitwise identical to Solve(bs[c]): each column performs the same
// subtractions on the same values in the same order — only the L-entry loads
// are shared.
func (f *DenseFactor) SolveBatch(bs [][]float64) [][]float64 {
	xs := make([][]float64, len(bs))
	for c := range xs {
		xs[c] = make([]float64, f.n)
	}
	f.SolveBatchInto(bs, xs)
	return xs
}

// SolveBatchInto is SolveBatch into caller-provided columns (each length n,
// fully overwritten; xs[c] may alias bs[c]). Column c is bitwise identical
// to SolveInto on bs[c]; nothing is allocated.
func (f *DenseFactor) SolveBatchInto(bs, xs [][]float64) {
	k := len(bs)
	if k == 1 {
		f.SolveInto(bs[0], xs[0])
		return
	}
	n := f.n
	for c := range xs {
		copy(xs[c], bs[c])
	}
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l := f.l[i*n+j]
			for c := 0; c < k; c++ {
				xs[c][i] -= l * xs[c][j]
			}
		}
	}
	// Diagonal solve D z = y.
	for i := 0; i < n; i++ {
		if math.IsInf(f.d[i], 1) {
			for c := 0; c < k; c++ {
				xs[c][i] = 0
			}
		} else {
			d := f.d[i]
			for c := 0; c < k; c++ {
				xs[c][i] /= d
			}
		}
	}
	// Backward solve Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			l := f.l[j*n+i]
			for c := 0; c < k; c++ {
				xs[c][i] -= l * xs[c][j]
			}
		}
	}
}

// SolveBlockInto is SolveInto over a contiguous n×k Block: lane c is
// bitwise identical to SolveInto on lane c (x may alias b; nothing is
// allocated). The substitution sweeps visit rows in the single kernel's
// order and fan across the k adjacent lane values at each L entry.
func (f *DenseFactor) SolveBlockInto(b, x *Block) {
	k := b.K()
	if k == 1 {
		f.SolveInto(b.Vec(), x.Vec())
		return
	}
	n := f.n
	x.CopyFrom(b)
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for j := 0; j < i; j++ {
			l := f.l[i*n+j]
			xj := x.Row(j)
			for c := 0; c < k; c++ {
				xi[c] -= l * xj[c]
			}
		}
	}
	// Diagonal solve D z = y.
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		if math.IsInf(f.d[i], 1) {
			for c := 0; c < k; c++ {
				xi[c] = 0
			}
		} else {
			d := f.d[i]
			for c := 0; c < k; c++ {
				xi[c] /= d
			}
		}
	}
	// Backward solve Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			l := f.l[j*n+i]
			xj := x.Row(j)
			for c := 0; c < k; c++ {
				xi[c] -= l * xj[c]
			}
		}
	}
}

// LaplacianFactor is a dense pseudo-inverse applier for a Laplacian: it
// grounds the last vertex of each connected component and factors the
// remaining principal submatrix, then solves and re-centers per component.
type LaplacianFactor struct {
	n        int
	factor   *DenseFactor
	keep     []int // original indices kept in the grounded system
	pos      []int // original index -> grounded position (-1 if grounded out)
	comp     []int
	numComp  int
	compIdx  *CompIndex // component-sorted index cached for the projections
	grounded []int      // one grounded vertex per component
}

// MemoryBytes returns the factor's retained footprint: the dense LDLᵀ
// factor (the O(n²) bulk of a chain's bottom level) plus the index maps.
func (lf *LaplacianFactor) MemoryBytes() int64 {
	b := int64(len(lf.keep)+len(lf.pos)+len(lf.comp)+len(lf.grounded)) * 8
	if lf.compIdx != nil {
		b += lf.compIdx.MemoryBytes()
	}
	if lf.factor != nil {
		b += lf.factor.MemoryBytes()
	}
	return b
}

// NewLaplacianFactor densifies the Laplacian a and prepares a direct
// pseudo-inverse solver. comp must label a's connected components (as from
// graph.ConnectedComponents on the underlying graph).
func NewLaplacianFactor(a *Sparse, comp []int, numComp int) (*LaplacianFactor, error) {
	return NewLaplacianFactorW(0, a, comp, numComp)
}

// NewLaplacianFactorW is NewLaplacianFactor with an explicit worker count
// for the factorization sweeps.
func NewLaplacianFactorW(workers int, a *Sparse, comp []int, numComp int) (*LaplacianFactor, error) {
	n := a.N
	grounded := make([]int, numComp)
	for c := range grounded {
		grounded[c] = -1
	}
	// Ground the highest-indexed vertex in each component.
	for v := n - 1; v >= 0; v-- {
		c := comp[v]
		if grounded[c] < 0 {
			grounded[c] = v
		}
	}
	pos := make([]int, n)
	var keep []int
	for v := 0; v < n; v++ {
		if grounded[comp[v]] == v {
			pos[v] = -1
			continue
		}
		pos[v] = len(keep)
		keep = append(keep, v)
	}
	k := len(keep)
	dense := make([]float64, k*k)
	for _, v := range keep {
		r := pos[v]
		for i := a.Off[v]; i < a.Off[v+1]; i++ {
			cIdx := a.Col[i]
			if pos[cIdx] >= 0 {
				dense[r*k+pos[cIdx]] = a.Val[i]
			}
		}
	}
	f, err := NewDenseFactorW(workers, k, dense)
	if err != nil {
		return nil, err
	}
	return &LaplacianFactor{
		n: n, factor: f, keep: keep, pos: pos,
		comp: comp, numComp: numComp,
		compIdx:  NewCompIndexW(workers, comp, numComp),
		grounded: grounded,
	}, nil
}

// Factor exposes the grounded dense factor for snapshot serialization.
func (lf *LaplacianFactor) Factor() *DenseFactor { return lf.factor }

// NewLaplacianFactorFromFactor reassembles a LaplacianFactor from snapshot
// data: the component labeling of the n-vertex bottom graph and its grounded
// DenseFactor. The grounding bookkeeping (one grounded vertex per component,
// keep/pos maps, component index) is recomputed by the same deterministic
// sweep NewLaplacianFactorW runs, so a restored factor solves bit-for-bit
// like the original; only the O(k³) factorization itself is skipped.
func NewLaplacianFactorFromFactor(workers, n int, comp []int, numComp int, f *DenseFactor) (*LaplacianFactor, error) {
	if len(comp) != n {
		return nil, fmt.Errorf("matrix: component labels cover %d vertices, graph has %d", len(comp), n)
	}
	grounded := make([]int, numComp)
	for c := range grounded {
		grounded[c] = -1
	}
	for v := n - 1; v >= 0; v-- {
		c := comp[v]
		if c < 0 || c >= numComp {
			return nil, fmt.Errorf("matrix: component label %d out of range [0,%d)", c, numComp)
		}
		if grounded[c] < 0 {
			grounded[c] = v
		}
	}
	pos := make([]int, n)
	var keep []int
	for v := 0; v < n; v++ {
		if grounded[comp[v]] == v {
			pos[v] = -1
			continue
		}
		pos[v] = len(keep)
		keep = append(keep, v)
	}
	if f.Dim() != len(keep) {
		return nil, fmt.Errorf("matrix: dense factor dimension %d, grounded system has %d vertices", f.Dim(), len(keep))
	}
	return &LaplacianFactor{
		n: n, factor: f, keep: keep, pos: pos,
		comp: comp, numComp: numComp,
		compIdx:  NewCompIndexW(workers, comp, numComp),
		grounded: grounded,
	}, nil
}

// Solve returns x with L x = b restricted to range(L): the right-hand side
// is first projected per component (mean removed), the grounded system is
// solved, and the result is re-centered so each component of x sums to zero
// (the canonical pseudo-inverse representative).
func (lf *LaplacianFactor) Solve(b []float64) []float64 { return lf.SolveW(0, b) }

// SolveW is Solve with an explicit worker count for the projection passes
// (the substitution sweeps are inherently sequential). Results are bitwise
// identical for every workers value.
func (lf *LaplacianFactor) SolveW(workers int, b []float64) []float64 {
	x := make([]float64, lf.n)
	lf.SolveIntoW(workers, b, x, make([]float64, len(lf.keep)))
	return x
}

// SolveIntoW is SolveW into a caller-provided solution vector x (length n,
// fully overwritten) using scratch g (length GroundedLen()). b is not
// modified and must not alias x. Nothing is allocated (for a connected
// component structure), making the chain's bottom solve workspace-resident;
// the arithmetic is bitwise identical to SolveW.
func (lf *LaplacianFactor) SolveIntoW(workers int, b, x, g []float64) {
	// x doubles as the projected copy of b before the grounded gather.
	copy(x, b)
	ProjectOutConstantMaskedIdxW(workers, x, lf.compIdx)
	for i, v := range lf.keep {
		g[i] = x[v]
	}
	lf.factor.SolveInto(g, g)
	for i := range x {
		x[i] = 0
	}
	for i, v := range lf.keep {
		x[v] = g[i]
	}
	// Grounded vertices already hold 0; re-center per component.
	ProjectOutConstantMaskedIdxW(workers, x, lf.compIdx)
}

// GroundedLen returns the size of the grounded system — the scratch length
// SolveIntoW and SolveBatchIntoW require.
func (lf *LaplacianFactor) GroundedLen() int { return len(lf.keep) }

// N returns the full (ungrounded) system size.
func (lf *LaplacianFactor) N() int { return lf.n }

// SolveBatch applies the pseudo-inverse to every column of bs, sharing the
// dense factor traversal across columns. Column c is bitwise identical to
// Solve(bs[c]).
func (lf *LaplacianFactor) SolveBatch(bs [][]float64) [][]float64 {
	return lf.SolveBatchW(0, bs)
}

// SolveBatchW is SolveBatch with an explicit worker count for the
// projection passes.
func (lf *LaplacianFactor) SolveBatchW(workers int, bs [][]float64) [][]float64 {
	k := len(bs)
	xs := make([][]float64, k)
	gs := make([][]float64, k)
	for c := range xs {
		xs[c] = make([]float64, lf.n)
		gs[c] = make([]float64, len(lf.keep))
	}
	lf.SolveBatchIntoW(workers, bs, xs, gs)
	return xs
}

// SolveBatchIntoW is SolveBatchW into caller-provided solution columns xs
// (each length n, fully overwritten) with scratch columns gs (each length
// GroundedLen()). Column c is bitwise identical to SolveIntoW on bs[c].
func (lf *LaplacianFactor) SolveBatchIntoW(workers int, bs, xs, gs [][]float64) {
	k := len(bs)
	if k == 1 {
		lf.SolveIntoW(workers, bs[0], xs[0], gs[0])
		return
	}
	for c := range xs {
		copy(xs[c], bs[c])
	}
	ProjectOutConstantMaskedBatchIdxW(workers, xs, lf.compIdx)
	for c := 0; c < k; c++ {
		for i, v := range lf.keep {
			gs[c][i] = xs[c][v]
		}
	}
	lf.factor.SolveBatchInto(gs, gs)
	for c := 0; c < k; c++ {
		x := xs[c]
		for i := range x {
			x[i] = 0
		}
		for i, v := range lf.keep {
			x[v] = gs[c][i]
		}
	}
	ProjectOutConstantMaskedBatchIdxW(workers, xs, lf.compIdx)
}

// SolveBlockIntoW is SolveIntoW over a contiguous n×k Block: lane c is
// bitwise identical to SolveIntoW on lane c. x (n×k, fully overwritten) and
// the grounded scratch g (GroundedLen()×k) must not alias b; scratch
// (length >= 2k) serves the in-place projections. Nothing is allocated for
// a connected bottom graph.
func (lf *LaplacianFactor) SolveBlockIntoW(workers int, b, x, g *Block, scratch []float64) {
	k := b.K()
	if k == 1 {
		lf.SolveIntoW(workers, b.Vec(), x.Vec(), g.Vec())
		return
	}
	x.CopyFrom(b)
	ProjectOutConstantMaskedBlockIdxW(workers, x, lf.compIdx, scratch)
	for i, v := range lf.keep {
		copy(g.Row(i), x.Row(v))
	}
	lf.factor.SolveBlockInto(g, g)
	x.Zero()
	for i, v := range lf.keep {
		copy(x.Row(v), g.Row(i))
	}
	// Grounded vertices already hold 0; re-center per component.
	ProjectOutConstantMaskedBlockIdxW(workers, x, lf.compIdx, scratch)
}
