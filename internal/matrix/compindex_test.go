package matrix

import (
	"math/rand"
	"testing"
)

// The masked projection is the last per-iteration kernel that touched
// components with a scalar loop; these tests pin the segmented-reduction
// replacement: the index layout, worker-count bitwise equivalence (case (c)
// of the sequential-bottleneck list), and batch-vs-single column parity.

func randomPartition(rng *rand.Rand, n, numComp int) []int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = rng.Intn(numComp)
	}
	// Guarantee every component non-empty (ConnectedComponents-style labels).
	for c := 0; c < numComp && c < n; c++ {
		comp[c] = c
	}
	return comp
}

func TestCompIndexLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 5000} {
		for _, k := range []int{1, 2, 5} {
			comp := randomPartition(rng, n, k)
			ci := NewCompIndexW(0, comp, k)
			if ci.NumComp != k || ci.SegOff[len(ci.SegOff)-1] != n {
				t.Fatalf("n=%d k=%d: bad index shape", n, k)
			}
			if k == 1 {
				continue // single-component index skips the pack by design
			}
			seen := make([]bool, n)
			for c := 0; c < k; c++ {
				for i := ci.SegOff[c]; i < ci.SegOff[c+1]; i++ {
					v := ci.Order[i]
					if comp[v] != c {
						t.Fatalf("vertex %d in segment %d but comp=%d", v, c, comp[v])
					}
					if seen[v] {
						t.Fatalf("vertex %d appears twice", v)
					}
					seen[v] = true
					if i > ci.SegOff[c] && ci.Order[i] <= ci.Order[i-1] {
						t.Fatalf("segment %d not in ascending vertex order at %d", c, i)
					}
				}
			}
			for v, ok := range seen {
				if !ok {
					t.Fatalf("vertex %d missing from index", v)
				}
			}
		}
	}
}

func TestProjectOutConstantMaskedWorkerBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{5, 300, 9000} {
		for _, k := range []int{1, 2, 4, 17} {
			if k > n {
				continue
			}
			comp := randomPartition(rng, n, k)
			base := make([]float64, n)
			for i := range base {
				// Nonzero per-component means: the exact case the masked
				// projection exists for.
				base[i] = rng.NormFloat64() + float64(comp[i]*3)
			}
			ref := append([]float64(nil), base...)
			ProjectOutConstantMaskedW(1, ref, comp, k)
			// Means are actually removed.
			sums := make([]float64, k)
			cnt := make([]int, k)
			for i, c := range comp {
				sums[c] += ref[i]
				cnt[c]++
			}
			for c := range sums {
				if cnt[c] > 0 && abs64(sums[c])/float64(cnt[c]) > 1e-12 {
					t.Fatalf("n=%d k=%d: component %d mean %.3e not removed", n, k, c, sums[c]/float64(cnt[c]))
				}
			}
			for _, w := range []int{0, 2, 3, 8} {
				got := append([]float64(nil), base...)
				ProjectOutConstantMaskedW(w, got, comp, k)
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("n=%d k=%d workers=%d: entry %d %.17g != %.17g", n, k, w, i, got[i], ref[i])
					}
				}
			}
			// Cached-index form must agree with the on-the-fly form bitwise.
			ci := NewCompIndexW(0, comp, k)
			got := append([]float64(nil), base...)
			ProjectOutConstantMaskedIdxW(3, got, ci)
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("n=%d k=%d: Idx form diverges at %d", n, k, i)
				}
			}
		}
	}
}

func TestProjectOutConstantMaskedBatchColumnParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, k, cols := 7000, 6, 5
	comp := randomPartition(rng, n, k)
	ci := NewCompIndexW(0, comp, k)
	xs := make([][]float64, cols)
	refs := make([][]float64, cols)
	for c := range xs {
		xs[c] = make([]float64, n)
		for i := range xs[c] {
			xs[c][i] = rng.NormFloat64() + float64((comp[i]+c)%k)
		}
		refs[c] = append([]float64(nil), xs[c]...)
	}
	ProjectOutConstantMaskedBatchIdxW(2, xs, ci)
	for c := range refs {
		ProjectOutConstantMaskedIdxW(1, refs[c], ci)
		for i := range refs[c] {
			if xs[c][i] != refs[c][i] {
				t.Fatalf("col %d entry %d: batch %.17g != single %.17g", c, i, xs[c][i], refs[c][i])
			}
		}
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
