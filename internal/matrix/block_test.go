package matrix

import (
	"fmt"
	"math/rand"
	"testing"

	"parlap/internal/par"
)

// The Block kernels carry the same bitwise contract as the [][]float64
// batch kernels: lane c of every block operation must equal (==, no
// tolerance) the single-vector kernel applied to lane c, for every worker
// count. These tests drive each kernel across k × Workers and compare
// against the single kernels directly.

func blockFromCols(xs [][]float64) *Block {
	n, k := len(xs[0]), len(xs)
	b := NewBlock(n, k)
	for c, x := range xs {
		b.SetCol(c, x)
	}
	return b
}

func colsFromBlock(b *Block) [][]float64 {
	out := make([][]float64, b.K())
	for c := range out {
		out[c] = make([]float64, b.N())
		b.ColInto(c, out[c])
	}
	return out
}

var blockTestWidths = []int{1, 2, 5, 8}
var blockTestWorkers = []int{1, 2, 4}

func TestBlockRoundTrip(t *testing.T) {
	xs := randCols(137, 5, 11)
	b := blockFromCols(xs)
	for c, x := range xs {
		got := make([]float64, len(x))
		b.ColInto(c, got)
		requireBitwise(t, fmt.Sprintf("col %d", c), got, x)
	}
	for v := 0; v < b.N(); v++ {
		row := b.Row(v)
		for c := range xs {
			if row[c] != xs[c][v] {
				t.Fatalf("Row(%d)[%d] = %g, want %g", v, c, row[c], xs[c][v])
			}
		}
	}
}

func TestBlockReshapeReusesBacking(t *testing.T) {
	b := NewBlock(100, 8)
	data := &b.Data()[0]
	b.Reshape(100, 3)
	if &b.Data()[0] != data {
		t.Fatal("Reshape to smaller width reallocated")
	}
	b.Reshape(100, 8)
	if &b.Data()[0] != data {
		t.Fatal("Reshape back to capacity reallocated")
	}
	if b.Cap() < 800 {
		t.Fatalf("Cap = %d, want >= 800", b.Cap())
	}
}

func TestBlockKeepLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(8)
		xs := randCols(n, k, int64(trial))
		var keep []int
		for c := 0; c < k; c++ {
			if rng.Intn(3) > 0 {
				keep = append(keep, c)
			}
		}
		b := blockFromCols(xs)
		b.KeepLanes(keep)
		if b.K() != len(keep) {
			t.Fatalf("K = %d after KeepLanes(%v)", b.K(), keep)
		}
		for j, c := range keep {
			got := make([]float64, n)
			b.ColInto(j, got)
			requireBitwise(t, fmt.Sprintf("trial %d lane %d<-%d", trial, j, c), got, xs[c])
		}
	}
}

func TestMulVecBlockBitwise(t *testing.T) {
	a := randLap(700, 1)
	for _, k := range blockTestWidths {
		xs := randCols(a.N, k, 2)
		for _, w := range blockTestWorkers {
			x := blockFromCols(xs)
			y := NewBlock(a.N, k)
			a.MulVecBlockW(w, x, y)
			for c := 0; c < k; c++ {
				want := make([]float64, a.N)
				a.MulVecW(w, xs[c], want)
				got := make([]float64, a.N)
				y.ColInto(c, got)
				requireBitwise(t, fmt.Sprintf("k=%d w=%d col %d", k, w, c), got, want)
			}
		}
	}
}

func TestMulVecAxpyBlockBitwise(t *testing.T) {
	a := randLap(650, 3)
	for _, k := range blockTestWidths {
		xs := randCols(a.N, k, 4)
		ys := randCols(a.N, k, 5)
		alpha := -0.37
		for _, w := range blockTestWorkers {
			x, y := blockFromCols(xs), blockFromCols(ys)
			ap := NewBlock(a.N, k)
			a.MulVecAxpyBlockW(w, x, ap, alpha, y)
			for c := 0; c < k; c++ {
				wantAp := make([]float64, a.N)
				a.MulVecW(w, xs[c], wantAp)
				wantY := CopyVec(ys[c])
				AxpyIntoW(w, wantY, alpha, wantAp, wantY)
				gotAp, gotY := make([]float64, a.N), make([]float64, a.N)
				ap.ColInto(c, gotAp)
				y.ColInto(c, gotY)
				requireBitwise(t, fmt.Sprintf("ap k=%d w=%d col %d", k, w, c), gotAp, wantAp)
				requireBitwise(t, fmt.Sprintf("y k=%d w=%d col %d", k, w, c), gotY, wantY)
			}
		}
	}
}

func TestDotNorm2BlockBitwise(t *testing.T) {
	// Spans the ReduceGrain boundary so the chunked fold is exercised.
	for _, n := range []int{1, 100, par.ReduceGrain, par.ReduceGrain + 1, 3*par.ReduceGrain + 17} {
		for _, k := range blockTestWidths {
			xs, ys := randCols(n, k, 6), randCols(n, k, 7)
			for _, w := range blockTestWorkers {
				x, y := blockFromCols(xs), blockFromCols(ys)
				out := make([]float64, k)
				tmp := make([]float64, k)
				DotBlockIntoW(w, x, y, out, tmp)
				for c := 0; c < k; c++ {
					if want := DotW(w, xs[c], ys[c]); out[c] != want {
						t.Fatalf("dot n=%d k=%d w=%d col %d: %g vs %g", n, k, w, c, out[c], want)
					}
				}
				Norm2BlockIntoW(w, x, out, tmp)
				for c := 0; c < k; c++ {
					if want := Norm2W(w, xs[c]); out[c] != want {
						t.Fatalf("norm n=%d k=%d w=%d col %d: %g vs %g", n, k, w, c, out[c], want)
					}
				}
			}
		}
	}
}

func TestDotBatchIntoBitwise(t *testing.T) {
	for _, n := range []int{1, par.ReduceGrain + 1, 3*par.ReduceGrain + 17} {
		for _, k := range blockTestWidths {
			xs, ys := randCols(n, k, 8), randCols(n, k, 9)
			for _, w := range blockTestWorkers {
				out, tmp := make([]float64, k), make([]float64, k)
				DotBatchIntoW(w, xs, ys, out, tmp)
				for c := 0; c < k; c++ {
					if want := DotW(w, xs[c], ys[c]); out[c] != want {
						t.Fatalf("dot n=%d k=%d w=%d col %d: %g vs %g", n, k, w, c, out[c], want)
					}
				}
				Norm2BatchIntoW(w, xs, out, tmp)
				for c := 0; c < k; c++ {
					if want := Norm2W(w, xs[c]); out[c] != want {
						t.Fatalf("norm n=%d k=%d w=%d col %d: %g vs %g", n, k, w, c, out[c], want)
					}
				}
			}
		}
	}
}

func TestAxpySubChebBlockBitwise(t *testing.T) {
	n := 3*par.ReduceGrain + 5
	for _, k := range blockTestWidths {
		xs, ys, zs := randCols(n, k, 10), randCols(n, k, 11), randCols(n, k, 12)
		alphas := make([]float64, k)
		for c := range alphas {
			alphas[c] = 0.1 * float64(c+1)
		}
		for _, w := range blockTestWorkers {
			x, y := blockFromCols(xs), blockFromCols(ys)
			dst := NewBlock(n, k)
			AxpyBlockW(w, dst, alphas, x, y)
			for c := 0; c < k; c++ {
				want := make([]float64, n)
				AxpyIntoW(w, want, alphas[c], xs[c], ys[c])
				got := make([]float64, n)
				dst.ColInto(c, got)
				requireBitwise(t, fmt.Sprintf("axpy k=%d w=%d col %d", k, w, c), got, want)
			}
			SubIntoBlockW(w, dst, x, y)
			for c := 0; c < k; c++ {
				want := make([]float64, n)
				SubIntoW(w, want, xs[c], ys[c])
				got := make([]float64, n)
				dst.ColInto(c, got)
				requireBitwise(t, fmt.Sprintf("sub k=%d w=%d col %d", k, w, c), got, want)
			}
			for _, first := range []bool{true, false} {
				p, z, xb := blockFromCols(ys), blockFromCols(zs), blockFromCols(xs)
				const beta, alpha = 0.83, -1.21
				ChebUpdateBlockW(w, p, z, beta, xb, alpha, first)
				for c := 0; c < k; c++ {
					wantP := CopyVec(ys[c])
					if first {
						copy(wantP, zs[c])
					} else {
						AxpyIntoW(w, wantP, beta, wantP, zs[c])
					}
					wantX := CopyVec(xs[c])
					AxpyIntoW(w, wantX, alpha, wantP, wantX)
					gotP, gotX := make([]float64, n), make([]float64, n)
					p.ColInto(c, gotP)
					xb.ColInto(c, gotX)
					requireBitwise(t, fmt.Sprintf("cheb p first=%v k=%d w=%d col %d", first, k, w, c), gotP, wantP)
					requireBitwise(t, fmt.Sprintf("cheb x first=%v k=%d w=%d col %d", first, k, w, c), gotX, wantX)
				}
			}
		}
	}
}

func TestProjectBlockBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 2*par.ReduceGrain + 31
	for _, numComp := range []int{1, 3} {
		comp := randomPartition(rng, n, numComp)
		ci := NewCompIndexW(0, comp, numComp)
		for _, k := range blockTestWidths {
			xs := randCols(n, k, int64(14+numComp))
			for _, w := range blockTestWorkers {
				x := blockFromCols(xs)
				scratch := make([]float64, 2*k)
				ProjectOutConstantMaskedBlockIdxW(w, x, ci, scratch)
				for c := 0; c < k; c++ {
					want := CopyVec(xs[c])
					ProjectOutConstantMaskedIdxW(w, want, ci)
					got := make([]float64, n)
					x.ColInto(c, got)
					requireBitwise(t, fmt.Sprintf("proj comps=%d k=%d w=%d col %d", numComp, k, w, c), got, want)
				}
			}
		}
	}
}

// BenchmarkBlockLayout is the microbench behind the Block layout decision
// (ISSUE 8 / README "Batch engine"): one inner-iteration-shaped pass —
// SpMM followed by the fused direction/iterate update — over (a) the old
// [][]float64 k-slice columns, (b) a column-major contiguous block
// (lane-contiguous, data[c*n+v]), and (c) the vertex-major interleaved
// Block (data[v*k+c]). Vertex-major wins because every kernel walks the
// CSR structure in vertex order and touches all k lanes at each stop.
func BenchmarkBlockLayout(b *testing.B) {
	a := randLap(40000, 21)
	n := a.N
	for _, k := range []int{4, 8, 16} {
		xs, ys := randCols(n, k, 22), randCols(n, k, 23)
		b.Run(fmt.Sprintf("k=%d/slices", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulVecBatchW(1, xs, ys)
				alphas := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}[:k]
				AxpyBatchW(1, xs, alphas, ys, xs)
			}
		})
		b.Run(fmt.Sprintf("k=%d/colmajor", k), func(b *testing.B) {
			x, y := make([]float64, n*k), make([]float64, n*k)
			for c := range xs {
				copy(x[c*n:(c+1)*n], xs[c])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < k; c++ {
					xc, yc := x[c*n:(c+1)*n], y[c*n:(c+1)*n]
					for r := 0; r < n; r++ {
						s := 0.0
						for j := a.Off[r]; j < a.Off[r+1]; j++ {
							s += a.Val[j] * xc[a.Col[j]]
						}
						yc[r] = s
					}
					for r := 0; r < n; r++ {
						xc[r] = 0.5*yc[r] + xc[r]
					}
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/vertexmajor", k), func(b *testing.B) {
			x, y := blockFromCols(xs), blockFromCols(ys)
			alphas := make([]float64, k)
			for c := range alphas {
				alphas[c] = 0.5
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulVecBlockW(1, x, y)
				AxpyBlockW(1, x, alphas, y, x)
			}
		})
	}
}
