package matrix

import (
	"math"

	"parlap/internal/par"
)

// Batched (multi-right-hand-side) vector kernels. Each operates on k column
// vectors at once and shares the *index traversal* — the CSR walk, the
// elimination-log replay upstream in the solver, the chunk schedule — across
// columns, while keeping every column's floating-point operations in exactly
// the order of the corresponding single-vector kernel. Column c of every
// batch kernel is therefore bitwise identical to the plain kernel applied to
// column c alone; the batch forms buy memory-traffic amortization (one pass
// over A's values serves k RHS), never different arithmetic.

// MulVecBatchW computes ys[c] = A·xs[c] for every column c, traversing the
// CSR structure once per row. Column results are bitwise identical to
// MulVecW on each column.
func (a *Sparse) MulVecBatchW(workers int, xs, ys [][]float64) {
	k := len(xs)
	if k == 0 {
		return
	}
	if k == 1 {
		a.MulVecW(workers, xs[0], ys[0])
		return
	}
	par.ForChunkedW(workers, a.N, func(lo, hi int) {
		acc := make([]float64, k)
		for r := lo; r < hi; r++ {
			for c := range acc {
				acc[c] = 0
			}
			for i := a.Off[r]; i < a.Off[r+1]; i++ {
				v, col := a.Val[i], a.Col[i]
				for c := 0; c < k; c++ {
					acc[c] += v * xs[c][col]
				}
			}
			for c := 0; c < k; c++ {
				ys[c][r] = acc[c]
			}
		}
	})
}

// DotBatchW returns out[c] = xs[c]·ys[c], one pass over the index space.
// Each column folds through the same fixed-grain tree as DotW, so out[c] is
// bitwise identical to DotW(workers, xs[c], ys[c]).
func DotBatchW(workers int, xs, ys [][]float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	n := len(xs[0])
	return par.SumFloat64BatchW(workers, n, len(xs), func(i, c int) float64 {
		return xs[c][i] * ys[c][i]
	})
}

// Norm2BatchW returns the Euclidean norm of every column.
func Norm2BatchW(workers int, xs [][]float64) []float64 {
	out := DotBatchW(workers, xs, xs)
	for c := range out {
		out[c] = math.Sqrt(out[c])
	}
	return out
}

// AxpyBatchW computes dsts[c] = alphas[c]·xs[c] + ys[c] elementwise (dsts[c]
// may alias xs[c] or ys[c]).
func AxpyBatchW(workers int, dsts [][]float64, alphas []float64, xs, ys [][]float64) {
	k := len(dsts)
	if k == 0 {
		return
	}
	par.ForChunkedW(workers, len(dsts[0]), func(lo, hi int) {
		for c := 0; c < k; c++ {
			a, d, x, y := alphas[c], dsts[c], xs[c], ys[c]
			for i := lo; i < hi; i++ {
				d[i] = a*x[i] + y[i]
			}
		}
	})
}

// SubIntoBatchW computes dsts[c] = xs[c] − ys[c].
func SubIntoBatchW(workers int, dsts, xs, ys [][]float64) {
	k := len(dsts)
	if k == 0 {
		return
	}
	par.ForChunkedW(workers, len(dsts[0]), func(lo, hi int) {
		for c := 0; c < k; c++ {
			d, x, y := dsts[c], xs[c], ys[c]
			for i := lo; i < hi; i++ {
				d[i] = x[i] - y[i]
			}
		}
	})
}

// CopyVecBatch returns a fresh deep copy of every column.
func CopyVecBatch(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for c, x := range xs {
		out[c] = CopyVec(x)
	}
	return out
}

// ProjectOutConstantMaskedBatchW subtracts each column's per-component mean
// in place; column behaviour is bitwise identical to
// ProjectOutConstantMaskedW on that column. Repeated callers should build a
// CompIndex once and use ProjectOutConstantMaskedBatchIdxW.
func ProjectOutConstantMaskedBatchW(workers int, xs [][]float64, comp []int, numComp int) {
	if len(xs) == 0 {
		return
	}
	ProjectOutConstantMaskedBatchIdxW(workers, xs, NewCompIndexW(workers, comp, numComp))
}
