package matrix

import (
	"math"

	"parlap/internal/par"
)

// Batched (multi-right-hand-side) vector kernels. Each operates on k column
// vectors at once and shares the *index traversal* — the CSR walk, the
// elimination-log replay upstream in the solver, the chunk schedule — across
// columns, while keeping every column's floating-point operations in exactly
// the order of the corresponding single-vector kernel. Column c of every
// batch kernel is therefore bitwise identical to the plain kernel applied to
// column c alone; the batch forms buy memory-traffic amortization (one pass
// over A's values serves k RHS), never different arithmetic.

// MulVecBatchW computes ys[c] = A·xs[c] for every column c, traversing the
// CSR structure once per row. Column results are bitwise identical to
// MulVecW on each column.
func (a *Sparse) MulVecBatchW(workers int, xs, ys [][]float64) {
	k := len(xs)
	if k == 0 {
		return
	}
	if k == 1 {
		a.MulVecW(workers, xs[0], ys[0])
		return
	}
	f32 := a.Val == nil
	par.ForChunkedW(workers, a.N, func(lo, hi int) {
		acc := make([]float64, k)
		for r := lo; r < hi; r++ {
			for c := range acc {
				acc[c] = 0
			}
			for i := a.Off[r]; i < a.Off[r+1]; i++ {
				var v float64
				if f32 {
					v = float64(a.Val32[i])
				} else {
					v = a.Val[i]
				}
				col := a.Col[i]
				for c := 0; c < k; c++ {
					acc[c] += v * xs[c][col]
				}
			}
			for c := 0; c < k; c++ {
				ys[c][r] = acc[c]
			}
		}
	})
}

// DotBatchW returns out[c] = xs[c]·ys[c], one pass over the index space.
// Each column folds through the same fixed-grain tree as DotW, so out[c] is
// bitwise identical to DotW(workers, xs[c], ys[c]).
func DotBatchW(workers int, xs, ys [][]float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	n := len(xs[0])
	return par.SumFloat64BatchW(workers, n, len(xs), func(i, c int) float64 {
		return xs[c][i] * ys[c][i]
	})
}

// Norm2BatchW returns the Euclidean norm of every column.
func Norm2BatchW(workers int, xs [][]float64) []float64 {
	out := DotBatchW(workers, xs, xs)
	for c := range out {
		out[c] = math.Sqrt(out[c])
	}
	return out
}

// DotBatchIntoW is DotBatchW into caller-provided storage: out (length >= k)
// receives the per-column dots and tmp (length >= k) is chunk-partial
// scratch. The workers==1 path allocates nothing, which is what lets hot
// drivers call it per iteration; results stay bitwise identical to DotW per
// column (same fixed-grain chunk fold).
func DotBatchIntoW(workers int, xs, ys [][]float64, out, tmp []float64) {
	k := len(xs)
	if k == 0 {
		return
	}
	if k == 1 {
		out[0] = DotW(workers, xs[0], ys[0])
		return
	}
	n := len(xs[0])
	if par.Sequential(workers) {
		tmp = tmp[:k]
		for c := range tmp {
			out[c] = 0
		}
		for lo := 0; lo < n; lo += par.ReduceGrain {
			hi := lo + par.ReduceGrain
			if hi > n {
				hi = n
			}
			for c := range tmp {
				tmp[c] = 0
			}
			for c := 0; c < k; c++ {
				x, y := xs[c], ys[c]
				s := tmp[c]
				for i := lo; i < hi; i++ {
					s += x[i] * y[i]
				}
				tmp[c] = s
			}
			if lo == 0 {
				copy(out[:k], tmp)
			} else {
				for c := 0; c < k; c++ {
					out[c] += tmp[c]
				}
			}
		}
		return
	}
	copy(out[:k], par.SumFloat64BatchW(workers, n, k, func(i, c int) float64 {
		return xs[c][i] * ys[c][i]
	}))
}

// Norm2BatchIntoW computes each column's Euclidean norm into out; see
// DotBatchIntoW for the scratch contract.
func Norm2BatchIntoW(workers int, xs [][]float64, out, tmp []float64) {
	DotBatchIntoW(workers, xs, xs, out, tmp)
	for c := range xs {
		out[c] = math.Sqrt(out[c])
	}
}

// AxpyBatchW computes dsts[c] = alphas[c]·xs[c] + ys[c] elementwise (dsts[c]
// may alias xs[c] or ys[c]).
func AxpyBatchW(workers int, dsts [][]float64, alphas []float64, xs, ys [][]float64) {
	k := len(dsts)
	if k == 0 {
		return
	}
	par.ForChunkedW(workers, len(dsts[0]), func(lo, hi int) {
		for c := 0; c < k; c++ {
			a, d, x, y := alphas[c], dsts[c], xs[c], ys[c]
			for i := lo; i < hi; i++ {
				d[i] = a*x[i] + y[i]
			}
		}
	})
}

// SubIntoBatchW computes dsts[c] = xs[c] − ys[c].
func SubIntoBatchW(workers int, dsts, xs, ys [][]float64) {
	k := len(dsts)
	if k == 0 {
		return
	}
	par.ForChunkedW(workers, len(dsts[0]), func(lo, hi int) {
		for c := 0; c < k; c++ {
			d, x, y := dsts[c], xs[c], ys[c]
			for i := lo; i < hi; i++ {
				d[i] = x[i] - y[i]
			}
		}
	})
}

// CopyVecBatch returns a fresh deep copy of every column.
func CopyVecBatch(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for c, x := range xs {
		out[c] = CopyVec(x)
	}
	return out
}

// CopyVecBatchInto copies every column of src into the matching
// (pre-allocated, same-length) column of dst — the allocation-free form of
// CopyVecBatch for pooled column sets.
func CopyVecBatchInto(dst, src [][]float64) {
	for c := range src {
		copy(dst[c], src[c])
	}
}

// ProjectOutConstantMaskedBatchW subtracts each column's per-component mean
// in place; column behaviour is bitwise identical to
// ProjectOutConstantMaskedW on that column. Repeated callers should build a
// CompIndex once and use ProjectOutConstantMaskedBatchIdxW.
func ProjectOutConstantMaskedBatchW(workers int, xs [][]float64, comp []int, numComp int) {
	if len(xs) == 0 {
		return
	}
	ProjectOutConstantMaskedBatchIdxW(workers, xs, NewCompIndexW(workers, comp, numComp))
}
