package matrix

import (
	"fmt"
	"sort"

	"parlap/internal/par"
)

// Cache-aware level reordering. Elimination leaves each level's vertices in
// whatever order the greedy rounds produced, so the Chebyshev CSR sweeps
// walk x with poor locality. CMOrder computes a deterministic Cuthill–McKee
// BFS relabeling that clusters each vertex near its neighbours; the level
// apply runs in the permuted space and pays one gather on the way in and
// one scatter on the way out (pooled workspace scratch, see
// solver.chebLevel). The permutation is pure data movement — it changes no
// floating-point operation's operands or order — so worker equivalence and
// block-vs-single equivalence are untouched.

// CMOrder returns a Cuthill–McKee ordering of a's adjacency structure:
// perm[j] = the original index of the vertex placed at position j
// (new → old). The traversal is fully deterministic: components are seeded
// in ascending (degree, id) order and BFS frontiers expand neighbours in
// ascending (degree, id) order, independent of Workers.
func CMOrder(a *Sparse) []int32 {
	n := a.N
	deg := func(v int) int { return a.Off[v+1] - a.Off[v] }
	// Seeds: every vertex, sorted by (degree, id); unvisited ones become
	// component starts in this order, so each component starts from its
	// minimum-degree vertex.
	seeds := make([]int32, n)
	for v := range seeds {
		seeds[v] = int32(v)
	}
	sort.Slice(seeds, func(i, j int) bool {
		di, dj := deg(int(seeds[i])), deg(int(seeds[j]))
		if di != dj {
			return di < dj
		}
		return seeds[i] < seeds[j]
	})
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	var frontier []int32
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		perm = append(perm, s)
		for head := len(perm) - 1; head < len(perm); head++ {
			u := int(perm[head])
			frontier = frontier[:0]
			for i := a.Off[u]; i < a.Off[u+1]; i++ {
				c := a.Col[i]
				if int(c) == u || visited[c] {
					continue
				}
				visited[c] = true
				frontier = append(frontier, c)
			}
			sort.Slice(frontier, func(i, j int) bool {
				di, dj := deg(int(frontier[i])), deg(int(frontier[j]))
				if di != dj {
					return di < dj
				}
				return frontier[i] < frontier[j]
			})
			perm = append(perm, frontier...)
		}
	}
	return perm
}

// PermuteSparse returns P·A·Pᵀ for the relabeling x_new[j] = x_old[perm[j]]:
// row j of the result is row perm[j] of a with columns relabeled and
// re-sorted. Values keep a's storage precision. The input must be a
// float64-valued matrix (the chain permutes before any f32 conversion).
func PermuteSparse(workers int, a *Sparse, perm []int32) *Sparse {
	n := a.N
	if len(perm) != n {
		panic(fmt.Sprintf("matrix: PermuteSparse perm length %d != n %d", len(perm), n))
	}
	inv := make([]int32, n)
	for j, v := range perm {
		inv[v] = int32(j)
	}
	p := &Sparse{N: n}
	p.Off = make([]int, n+1)
	for j := 0; j < n; j++ {
		old := int(perm[j])
		p.Off[j+1] = p.Off[j] + (a.Off[old+1] - a.Off[old])
	}
	nnz := p.Off[n]
	p.Col = make([]int32, nnz)
	p.Val = make([]float64, nnz)
	p.Diag = make([]float64, n)
	par.ForChunkedW(workers, n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			old := int(perm[j])
			at := p.Off[j]
			for i := a.Off[old]; i < a.Off[old+1]; i++ {
				p.Col[at] = inv[a.Col[i]]
				p.Val[at] = a.Val[i]
				at++
			}
			// Insertion sort the row by column: level rows are short and
			// near-sorted after a bandwidth-reducing relabeling.
			row := p.Col[p.Off[j]:at]
			val := p.Val[p.Off[j]:at]
			for i := 1; i < len(row); i++ {
				c, v := row[i], val[i]
				k := i - 1
				for k >= 0 && row[k] > c {
					row[k+1], val[k+1] = row[k], val[k]
					k--
				}
				row[k+1], val[k+1] = c, v
			}
			p.Diag[j] = a.Diag[old]
		}
	})
	return p
}

// GatherW computes dst[j] = src[perm[j]] — natural space into permuted
// space for a new→old permutation. Disjoint element copies, so any chunking
// is bitwise identical; the workers==1 path is allocation-free.
func GatherW(workers int, dst, src []float64, perm []int32) {
	if par.Sequential(workers) {
		gatherRange(dst, src, perm, 0, len(perm))
		return
	}
	par.ForChunkedW(workers, len(perm), func(lo, hi int) {
		gatherRange(dst, src, perm, lo, hi)
	})
}

func gatherRange(dst, src []float64, perm []int32, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[j] = src[perm[j]]
	}
}

// ScatterW computes dst[perm[j]] = src[j] — permuted space back to natural
// space. perm is a permutation, so writes are disjoint.
func ScatterW(workers int, dst, src []float64, perm []int32) {
	if par.Sequential(workers) {
		scatterRange(dst, src, perm, 0, len(perm))
		return
	}
	par.ForChunkedW(workers, len(perm), func(lo, hi int) {
		scatterRange(dst, src, perm, lo, hi)
	})
}

func scatterRange(dst, src []float64, perm []int32, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[perm[j]] = src[j]
	}
}

// GatherBlockW is GatherW over vertex-major blocks: row j of dst becomes
// row perm[j] of src.
func GatherBlockW(workers int, dst, src *Block, perm []int32) {
	k := dst.k
	if par.Sequential(workers) {
		gatherBlockRange(dst.data, src.data, perm, k, 0, len(perm))
		return
	}
	par.ForChunkedW(workers, len(perm), func(lo, hi int) {
		gatherBlockRange(dst.data, src.data, perm, k, lo, hi)
	})
}

func gatherBlockRange(dst, src []float64, perm []int32, k, lo, hi int) {
	for j := lo; j < hi; j++ {
		copy(dst[j*k:(j+1)*k], src[int(perm[j])*k:int(perm[j])*k+k])
	}
}

// ScatterBlockW is ScatterW over vertex-major blocks: row perm[j] of dst
// becomes row j of src.
func ScatterBlockW(workers int, dst, src *Block, perm []int32) {
	k := dst.k
	if par.Sequential(workers) {
		scatterBlockRange(dst.data, src.data, perm, k, 0, len(perm))
		return
	}
	par.ForChunkedW(workers, len(perm), func(lo, hi int) {
		scatterBlockRange(dst.data, src.data, perm, k, lo, hi)
	})
}

func scatterBlockRange(dst, src []float64, perm []int32, k, lo, hi int) {
	for j := lo; j < hi; j++ {
		copy(dst[int(perm[j])*k:int(perm[j])*k+k], src[j*k:(j+1)*k])
	}
}

// IsPermutation reports whether perm is a permutation of 0..n-1. Snapshot
// restore validates persisted permutations with it before trusting them in
// unchecked gather/scatter kernels.
func IsPermutation(perm []int32, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
