// Package matrix provides the linear-algebra substrate for the solver:
// sparse symmetric matrices in CSR form, graph-Laplacian conversions, the
// Gremban reduction from general SDD systems to Laplacians, parallel vector
// kernels, and the dense LDLᵀ factorization used at the bottom of the
// preconditioner chain (Fact 6.4 of the paper).
package matrix

import (
	"fmt"
	"math"
	"sync/atomic"

	"parlap/internal/graph"
	"parlap/internal/par"
)

// Sparse is a square sparse matrix in CSR form. Symmetric matrices store
// both triangles so MulVec needs no transpose pass.
type Sparse struct {
	N    int
	Off  []int     // length N+1
	Col  []int     // length nnz
	Val  []float64 // length nnz
	Diag []float64 // cached diagonal, length N
}

// NNZ returns the number of stored entries.
func (a *Sparse) NNZ() int { return len(a.Col) }

// MemoryBytes estimates the matrix's retained footprint (CSR arrays plus
// the cached diagonal).
func (a *Sparse) MemoryBytes() int64 {
	return int64(len(a.Off)+len(a.Col))*8 + int64(len(a.Val)+len(a.Diag))*8
}

// entry is a builder triplet.
type entry struct {
	r, c int
	v    float64
}

// entryLess orders triplets by (row, col).
func entryLess(a, b entry) bool {
	if a.r != b.r {
		return a.r < b.r
	}
	return a.c < b.c
}

// parSortEntries sorts ents by (row, col) with par's fixed-grain parallel
// merge sort, whose leaf layout depends only on len(ents) — so the order
// duplicate triplets are summed in is identical for every Workers setting.
func parSortEntries(workers int, ents []entry) {
	par.SortW(workers, ents, entryLess)
}

// NewSparseFromTriplets builds a CSR matrix from (row, col, val) triplets,
// summing duplicates. Triplets are provided via parallel slices.
func NewSparseFromTriplets(n int, rows, cols []int, vals []float64) (*Sparse, error) {
	return NewSparseFromTripletsW(0, n, rows, cols, vals)
}

// NewSparseFromTripletsW is NewSparseFromTriplets with an explicit worker
// count (0 = GOMAXPROCS, 1 = sequential). The build is fully parallel —
// validation, sort, duplicate merge, row-offset scan and diagonal extraction
// — and returns the identical matrix for every worker count.
func NewSparseFromTripletsW(workers, n int, rows, cols []int, vals []float64) (*Sparse, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("matrix: triplet slices have mismatched lengths")
	}
	m := len(rows)
	// Parallel range validation: min-reduce the first offending index.
	bad := par.ReduceIntW(workers, m, m, func(i int) int {
		if rows[i] < 0 || rows[i] >= n || cols[i] < 0 || cols[i] >= n {
			return i
		}
		return m
	}, func(a, b int) int {
		if a < b {
			return a
		}
		return b
	})
	if bad < m {
		return nil, fmt.Errorf("matrix: triplet %d out of range", bad)
	}
	ents := make([]entry, m)
	par.ForW(workers, m, func(i int) {
		ents[i] = entry{rows[i], cols[i], vals[i]}
	})
	parSortEntries(workers, ents)
	// Pack run heads: one output entry per distinct (row, col).
	heads := par.FilterIndexW(workers, m, func(i int) bool {
		return i == 0 || ents[i].r != ents[i-1].r || ents[i].c != ents[i-1].c
	})
	nnz := len(heads)
	a := &Sparse{N: n}
	a.Col = make([]int, nnz)
	a.Val = make([]float64, nnz)
	rowCnt := make([]int64, n)
	// Merge each duplicate run in sorted order (runs are disjoint) and
	// histogram rows. Integer increments commute exactly, so the atomic
	// counts are deterministic under any schedule.
	par.ForW(workers, nnz, func(j int) {
		lo := heads[j]
		hi := m
		if j+1 < nnz {
			hi = heads[j+1]
		}
		s := 0.0
		for i := lo; i < hi; i++ {
			s += ents[i].v
		}
		a.Col[j] = ents[lo].c
		a.Val[j] = s
		atomic.AddInt64(&rowCnt[ents[lo].r], 1)
	})
	counts := make([]int, n)
	par.ForW(workers, n, func(r int) { counts[r] = int(rowCnt[r]) })
	a.Off = par.ScanW(workers, counts)
	a.Diag = make([]float64, n)
	par.ForW(workers, n, func(r int) {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if a.Col[i] == r {
				a.Diag[r] = a.Val[i]
			}
		}
	})
	return a, nil
}

// LaplacianOf builds the graph Laplacian L(g): L[i][i] = weighted degree,
// L[i][j] = -w(i,j) summed over parallel edges. Self-loops are ignored (they
// cancel in a Laplacian).
func LaplacianOf(g *graph.Graph) *Sparse { return LaplacianOfW(0, g) }

// LaplacianOfW is LaplacianOf with an explicit worker count. Triplet
// generation packs the contributing edges in parallel and scatters each
// edge's four stencil entries at a fixed offset.
func LaplacianOfW(workers int, g *graph.Graph) *Sparse {
	n := g.N
	live := par.FilterIndexW(workers, len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U != e.V && e.W != 0
	})
	rows := make([]int, 4*len(live))
	cols := make([]int, 4*len(live))
	vals := make([]float64, 4*len(live))
	par.ForW(workers, len(live), func(j int) {
		e := g.Edges[live[j]]
		at := 4 * j
		rows[at], cols[at], vals[at] = e.U, e.V, -e.W
		rows[at+1], cols[at+1], vals[at+1] = e.V, e.U, -e.W
		rows[at+2], cols[at+2], vals[at+2] = e.U, e.U, e.W
		rows[at+3], cols[at+3], vals[at+3] = e.V, e.V, e.W
	})
	a, err := NewSparseFromTripletsW(workers, n, rows, cols, vals)
	if err != nil {
		panic("matrix: internal Laplacian build error: " + err.Error())
	}
	return a
}

// GraphOf recovers the weighted graph from a Laplacian-structured matrix
// (strictly negative off-diagonals become edges). It inverts LaplacianOf up
// to parallel-edge merging.
func GraphOf(a *Sparse) *graph.Graph { return GraphOfW(0, a) }

// GraphOfW is GraphOf with an explicit worker count for the CSR build.
func GraphOfW(workers int, a *Sparse) *graph.Graph {
	var edges []graph.Edge
	for r := 0; r < a.N; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := a.Col[i]
			if c > r && a.Val[i] < 0 {
				edges = append(edges, graph.Edge{U: r, V: c, W: -a.Val[i]})
			}
		}
	}
	return graph.FromEdgesW(workers, a.N, edges)
}

// MulVec computes y = A·x in parallel over rows.
func (a *Sparse) MulVec(x, y []float64) { a.MulVecW(0, x, y) }

// MulVecW is MulVec with an explicit worker count. Rows are independent, so
// the workers==1 fast path (no closure, no goroutines, no allocation) is
// bitwise identical to every parallel schedule.
func (a *Sparse) MulVecW(workers int, x, y []float64) {
	if par.Sequential(workers) {
		for r := 0; r < a.N; r++ {
			s := 0.0
			for i := a.Off[r]; i < a.Off[r+1]; i++ {
				s += a.Val[i] * x[a.Col[i]]
			}
			y[r] = s
		}
		return
	}
	par.ForChunkedW(workers, a.N, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s := 0.0
			for i := a.Off[r]; i < a.Off[r+1]; i++ {
				s += a.Val[i] * x[a.Col[i]]
			}
			y[r] = s
		}
	})
}

// Apply allocates and returns A·x.
func (a *Sparse) Apply(x []float64) []float64 {
	y := make([]float64, a.N)
	a.MulVec(x, y)
	return y
}

// IsSDD reports whether the matrix is symmetric diagonally dominant:
// symmetric with A[i][i] >= Σ_{j≠i} |A[i][j]| (up to tol relative slack).
func (a *Sparse) IsSDD(tol float64) bool {
	// Symmetry check via entry lookup.
	get := func(r, c int) float64 {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if a.Col[i] == c {
				return a.Val[i]
			}
		}
		return 0
	}
	for r := 0; r < a.N; r++ {
		offSum := 0.0
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := a.Col[i]
			if c == r {
				continue
			}
			if math.Abs(a.Val[i]-get(c, r)) > tol*(1+math.Abs(a.Val[i])) {
				return false
			}
			offSum += math.Abs(a.Val[i])
		}
		if a.Diag[r] < offSum-tol*(1+offSum) {
			return false
		}
	}
	return true
}

// QuadForm returns xᵀAx.
func (a *Sparse) QuadForm(x []float64) float64 {
	return Dot(x, a.Apply(x))
}
