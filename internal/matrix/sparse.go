// Package matrix provides the linear-algebra substrate for the solver:
// sparse symmetric matrices in CSR form, graph-Laplacian conversions, the
// Gremban reduction from general SDD systems to Laplacians, parallel vector
// kernels, and the dense LDLᵀ factorization used at the bottom of the
// preconditioner chain (Fact 6.4 of the paper).
package matrix

import (
	"fmt"
	"math"
	"sort"

	"parlap/internal/graph"
	"parlap/internal/par"
)

// Sparse is a square sparse matrix in CSR form. Symmetric matrices store
// both triangles so MulVec needs no transpose pass.
type Sparse struct {
	N    int
	Off  []int     // length N+1
	Col  []int     // length nnz
	Val  []float64 // length nnz
	Diag []float64 // cached diagonal, length N
}

// NNZ returns the number of stored entries.
func (a *Sparse) NNZ() int { return len(a.Col) }

// entry is a builder triplet.
type entry struct {
	r, c int
	v    float64
}

// NewSparseFromTriplets builds a CSR matrix from (row, col, val) triplets,
// summing duplicates. Triplets are provided via parallel slices.
func NewSparseFromTriplets(n int, rows, cols []int, vals []float64) (*Sparse, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("matrix: triplet slices have mismatched lengths")
	}
	ents := make([]entry, len(rows))
	for i := range rows {
		if rows[i] < 0 || rows[i] >= n || cols[i] < 0 || cols[i] >= n {
			return nil, fmt.Errorf("matrix: triplet %d out of range", i)
		}
		ents[i] = entry{rows[i], cols[i], vals[i]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].r != ents[b].r {
			return ents[a].r < ents[b].r
		}
		return ents[a].c < ents[b].c
	})
	// Merge duplicates.
	merged := ents[:0]
	for _, e := range ents {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.r == e.r && last.c == e.c {
				last.v += e.v
				continue
			}
		}
		merged = append(merged, e)
	}
	a := &Sparse{N: n}
	a.Off = make([]int, n+1)
	for _, e := range merged {
		a.Off[e.r+1]++
	}
	for i := 0; i < n; i++ {
		a.Off[i+1] += a.Off[i]
	}
	a.Col = make([]int, len(merged))
	a.Val = make([]float64, len(merged))
	for i, e := range merged {
		a.Col[i] = e.c
		a.Val[i] = e.v
	}
	a.Diag = make([]float64, n)
	for r := 0; r < n; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if a.Col[i] == r {
				a.Diag[r] = a.Val[i]
			}
		}
	}
	return a, nil
}

// LaplacianOf builds the graph Laplacian L(g): L[i][i] = weighted degree,
// L[i][j] = -w(i,j) summed over parallel edges. Self-loops are ignored (they
// cancel in a Laplacian).
func LaplacianOf(g *graph.Graph) *Sparse {
	n := g.N
	var rows, cols []int
	var vals []float64
	for _, e := range g.Edges {
		if e.U == e.V || e.W == 0 {
			continue
		}
		rows = append(rows, e.U, e.V, e.U, e.V)
		cols = append(cols, e.V, e.U, e.U, e.V)
		vals = append(vals, -e.W, -e.W, e.W, e.W)
	}
	a, err := NewSparseFromTriplets(n, rows, cols, vals)
	if err != nil {
		panic("matrix: internal Laplacian build error: " + err.Error())
	}
	return a
}

// GraphOf recovers the weighted graph from a Laplacian-structured matrix
// (strictly negative off-diagonals become edges). It inverts LaplacianOf up
// to parallel-edge merging.
func GraphOf(a *Sparse) *graph.Graph {
	var edges []graph.Edge
	for r := 0; r < a.N; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := a.Col[i]
			if c > r && a.Val[i] < 0 {
				edges = append(edges, graph.Edge{U: r, V: c, W: -a.Val[i]})
			}
		}
	}
	return graph.FromEdges(a.N, edges)
}

// MulVec computes y = A·x in parallel over rows.
func (a *Sparse) MulVec(x, y []float64) {
	par.ForChunked(a.N, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s := 0.0
			for i := a.Off[r]; i < a.Off[r+1]; i++ {
				s += a.Val[i] * x[a.Col[i]]
			}
			y[r] = s
		}
	})
}

// Apply allocates and returns A·x.
func (a *Sparse) Apply(x []float64) []float64 {
	y := make([]float64, a.N)
	a.MulVec(x, y)
	return y
}

// IsSDD reports whether the matrix is symmetric diagonally dominant:
// symmetric with A[i][i] >= Σ_{j≠i} |A[i][j]| (up to tol relative slack).
func (a *Sparse) IsSDD(tol float64) bool {
	// Symmetry check via entry lookup.
	get := func(r, c int) float64 {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if a.Col[i] == c {
				return a.Val[i]
			}
		}
		return 0
	}
	for r := 0; r < a.N; r++ {
		offSum := 0.0
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := a.Col[i]
			if c == r {
				continue
			}
			if math.Abs(a.Val[i]-get(c, r)) > tol*(1+math.Abs(a.Val[i])) {
				return false
			}
			offSum += math.Abs(a.Val[i])
		}
		if a.Diag[r] < offSum-tol*(1+offSum) {
			return false
		}
	}
	return true
}

// QuadForm returns xᵀAx.
func (a *Sparse) QuadForm(x []float64) float64 {
	return Dot(x, a.Apply(x))
}
