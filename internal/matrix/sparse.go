// Package matrix provides the linear-algebra substrate for the solver:
// sparse symmetric matrices in CSR form, graph-Laplacian conversions, the
// Gremban reduction from general SDD systems to Laplacians, parallel vector
// kernels, and the dense LDLᵀ factorization used at the bottom of the
// preconditioner chain (Fact 6.4 of the paper).
package matrix

import (
	"fmt"
	"math"
	"sync/atomic"

	"parlap/internal/graph"
	"parlap/internal/par"
)

// Sparse is a square sparse matrix in CSR form. Symmetric matrices store
// both triangles so MulVec needs no transpose pass.
//
// Column indices are int32: every matrix in the preconditioner chain has
// n « 2³¹, and the apply path is memory-bandwidth-bound, so halving the
// index traffic is a direct win. Values are float64 by default; a matrix
// can opt into float32 storage (ConvertValues32) in which case Val is nil
// and the kernels read Val32, widening each coefficient to float64 before
// the (unchanged, fixed-grain) accumulation — so worker equivalence and
// block-vs-single equivalence hold at either precision.
type Sparse struct {
	N     int
	Off   []int     // length N+1
	Col   []int32   // length nnz
	Val   []float64 // length nnz, nil when values are stored as float32
	Val32 []float32 // length nnz when f32 storage is active, else nil
	Diag  []float64 // cached diagonal, length N (always float64)
}

// NNZ returns the number of stored entries.
func (a *Sparse) NNZ() int { return len(a.Col) }

// MemoryBytes estimates the matrix's retained footprint (CSR arrays plus
// the cached diagonal), honouring the compact index and value widths.
func (a *Sparse) MemoryBytes() int64 {
	return int64(len(a.Off))*8 + int64(len(a.Col))*4 +
		int64(len(a.Val))*8 + int64(len(a.Val32))*4 + int64(len(a.Diag))*8
}

// ValuesF32 reports whether the matrix stores its coefficients as float32.
func (a *Sparse) ValuesF32() bool { return a.Val == nil && a.Val32 != nil }

// ConvertValues32 switches the matrix to float32 value storage (round to
// nearest), dropping the float64 array. The caller may retain the returned
// prior Val slice to undo the conversion via RestoreValues64.
func (a *Sparse) ConvertValues32() []float64 {
	if a.Val == nil {
		return nil
	}
	v32 := make([]float32, len(a.Val))
	for i, v := range a.Val {
		v32[i] = float32(v)
	}
	saved := a.Val
	a.Val32 = v32
	a.Val = nil
	return saved
}

// RestoreValues64 undoes ConvertValues32 with the slice it returned.
func (a *Sparse) RestoreValues64(saved []float64) {
	a.Val = saved
	a.Val32 = nil
}

// value returns entry i's coefficient regardless of storage precision.
// Cold-path accessor; the hot kernels branch once per call instead.
func (a *Sparse) value(i int) float64 {
	if a.Val != nil {
		return a.Val[i]
	}
	return float64(a.Val32[i])
}

// entry is a builder triplet.
type entry struct {
	r, c int
	v    float64
}

// entryLess orders triplets by (row, col).
func entryLess(a, b entry) bool {
	if a.r != b.r {
		return a.r < b.r
	}
	return a.c < b.c
}

// parSortEntries sorts ents by (row, col) with par's fixed-grain parallel
// merge sort, whose leaf layout depends only on len(ents) — so the order
// duplicate triplets are summed in is identical for every Workers setting.
func parSortEntries(workers int, ents []entry) {
	par.SortW(workers, ents, entryLess)
}

// NewSparseFromTriplets builds a CSR matrix from (row, col, val) triplets,
// summing duplicates. Triplets are provided via parallel slices.
func NewSparseFromTriplets(n int, rows, cols []int, vals []float64) (*Sparse, error) {
	return NewSparseFromTripletsW(0, n, rows, cols, vals)
}

// NewSparseFromTripletsW is NewSparseFromTriplets with an explicit worker
// count (0 = GOMAXPROCS, 1 = sequential). The build is fully parallel —
// validation, sort, duplicate merge, row-offset scan and diagonal extraction
// — and returns the identical matrix for every worker count.
func NewSparseFromTripletsW(workers, n int, rows, cols []int, vals []float64) (*Sparse, error) {
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("matrix: triplet slices have mismatched lengths")
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("matrix: n=%d exceeds the int32 column index range", n)
	}
	m := len(rows)
	// Parallel range validation: min-reduce the first offending index.
	bad := par.ReduceIntW(workers, m, m, func(i int) int {
		if rows[i] < 0 || rows[i] >= n || cols[i] < 0 || cols[i] >= n {
			return i
		}
		return m
	}, func(a, b int) int {
		if a < b {
			return a
		}
		return b
	})
	if bad < m {
		return nil, fmt.Errorf("matrix: triplet %d out of range", bad)
	}
	ents := make([]entry, m)
	par.ForW(workers, m, func(i int) {
		ents[i] = entry{rows[i], cols[i], vals[i]}
	})
	parSortEntries(workers, ents)
	// Pack run heads: one output entry per distinct (row, col).
	heads := par.FilterIndexW(workers, m, func(i int) bool {
		return i == 0 || ents[i].r != ents[i-1].r || ents[i].c != ents[i-1].c
	})
	nnz := len(heads)
	a := &Sparse{N: n}
	a.Col = make([]int32, nnz)
	a.Val = make([]float64, nnz)
	rowCnt := make([]int64, n)
	// Merge each duplicate run in sorted order (runs are disjoint) and
	// histogram rows. Integer increments commute exactly, so the atomic
	// counts are deterministic under any schedule.
	par.ForW(workers, nnz, func(j int) {
		lo := heads[j]
		hi := m
		if j+1 < nnz {
			hi = heads[j+1]
		}
		s := 0.0
		for i := lo; i < hi; i++ {
			s += ents[i].v
		}
		a.Col[j] = int32(ents[lo].c)
		a.Val[j] = s
		atomic.AddInt64(&rowCnt[ents[lo].r], 1)
	})
	counts := make([]int, n)
	par.ForW(workers, n, func(r int) { counts[r] = int(rowCnt[r]) })
	a.Off = par.ScanW(workers, counts)
	a.Diag = make([]float64, n)
	par.ForW(workers, n, func(r int) {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if int(a.Col[i]) == r {
				a.Diag[r] = a.Val[i]
			}
		}
	})
	return a, nil
}

// LaplacianOf builds the graph Laplacian L(g): L[i][i] = weighted degree,
// L[i][j] = -w(i,j) summed over parallel edges. Self-loops are ignored (they
// cancel in a Laplacian).
func LaplacianOf(g *graph.Graph) *Sparse { return LaplacianOfW(0, g) }

// LaplacianOfW is LaplacianOf with an explicit worker count. Triplet
// generation packs the contributing edges in parallel and scatters each
// edge's four stencil entries at a fixed offset.
func LaplacianOfW(workers int, g *graph.Graph) *Sparse {
	n := g.N
	live := par.FilterIndexW(workers, len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U != e.V && e.W != 0
	})
	rows := make([]int, 4*len(live))
	cols := make([]int, 4*len(live))
	vals := make([]float64, 4*len(live))
	par.ForW(workers, len(live), func(j int) {
		e := g.Edges[live[j]]
		at := 4 * j
		rows[at], cols[at], vals[at] = e.U, e.V, -e.W
		rows[at+1], cols[at+1], vals[at+1] = e.V, e.U, -e.W
		rows[at+2], cols[at+2], vals[at+2] = e.U, e.U, e.W
		rows[at+3], cols[at+3], vals[at+3] = e.V, e.V, e.W
	})
	a, err := NewSparseFromTripletsW(workers, n, rows, cols, vals)
	if err != nil {
		panic("matrix: internal Laplacian build error: " + err.Error())
	}
	return a
}

// GraphOf recovers the weighted graph from a Laplacian-structured matrix
// (strictly negative off-diagonals become edges). It inverts LaplacianOf up
// to parallel-edge merging.
func GraphOf(a *Sparse) *graph.Graph { return GraphOfW(0, a) }

// GraphOfW is GraphOf with an explicit worker count for the CSR build.
func GraphOfW(workers int, a *Sparse) *graph.Graph {
	var edges []graph.Edge
	for r := 0; r < a.N; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := int(a.Col[i])
			if c > r && a.value(i) < 0 {
				edges = append(edges, graph.Edge{U: r, V: c, W: -a.value(i)})
			}
		}
	}
	return graph.FromEdgesW(workers, a.N, edges)
}

// MulVec computes y = A·x in parallel over rows.
func (a *Sparse) MulVec(x, y []float64) { a.MulVecW(0, x, y) }

// MulVecW is MulVec with an explicit worker count. Rows are independent, so
// the workers==1 fast path (no closure, no goroutines, no allocation) is
// bitwise identical to every parallel schedule. A float32-valued matrix
// widens each coefficient before the same left-to-right row accumulation,
// so the f32 path keeps the identical determinism walls.
func (a *Sparse) MulVecW(workers int, x, y []float64) {
	if par.Sequential(workers) {
		if a.Val == nil {
			mulVecRowsF32(a, x, y, 0, a.N)
			return
		}
		mulVecRows(a, x, y, 0, a.N)
		return
	}
	if a.Val == nil {
		par.ForChunkedW(workers, a.N, func(lo, hi int) {
			mulVecRowsF32(a, x, y, lo, hi)
		})
		return
	}
	par.ForChunkedW(workers, a.N, func(lo, hi int) {
		mulVecRows(a, x, y, lo, hi)
	})
}

// mulVecRows is the f64 row kernel shared by the sequential fast path and
// each parallel chunk (named, not a closure: the sequential call must not
// allocate).
func mulVecRows(a *Sparse, x, y []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		s := 0.0
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			s += a.Val[i] * x[a.Col[i]]
		}
		y[r] = s
	}
}

// mulVecRowsF32 is the float32-valued twin of mulVecRows.
func mulVecRowsF32(a *Sparse, x, y []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		s := 0.0
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			s += float64(a.Val32[i]) * x[a.Col[i]]
		}
		y[r] = s
	}
}

// Apply allocates and returns A·x.
func (a *Sparse) Apply(x []float64) []float64 {
	y := make([]float64, a.N)
	a.MulVec(x, y)
	return y
}

// IsSDD reports whether the matrix is symmetric diagonally dominant:
// symmetric with A[i][i] >= Σ_{j≠i} |A[i][j]| (up to tol relative slack).
func (a *Sparse) IsSDD(tol float64) bool {
	// Symmetry check via entry lookup.
	get := func(r, c int) float64 {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if int(a.Col[i]) == c {
				return a.value(i)
			}
		}
		return 0
	}
	for r := 0; r < a.N; r++ {
		offSum := 0.0
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := int(a.Col[i])
			if c == r {
				continue
			}
			v := a.value(i)
			if math.Abs(v-get(c, r)) > tol*(1+math.Abs(v)) {
				return false
			}
			offSum += math.Abs(v)
		}
		if a.Diag[r] < offSum-tol*(1+offSum) {
			return false
		}
	}
	return true
}

// QuadForm returns xᵀAx.
func (a *Sparse) QuadForm(x []float64) float64 {
	return Dot(x, a.Apply(x))
}
