package matrix

import (
	"math"

	"parlap/internal/par"
)

// Every vector kernel comes in a plain form (default worker count) and a
// W-suffixed form taking the solver's Options.Workers knob (0 = GOMAXPROCS,
// 1 = sequential). Reductions use par's fixed-grain deterministic trees, so
// the W forms return bitwise-identical values for every worker count.
//
// Each W kernel takes an explicit workers==1 fast path with inline loops:
// the closures the parallel primitives require escape to the heap at every
// call, so the fast paths are what make a steady-state preconditioner
// application allocation-free at Workers:1. Reduction fast paths fold the
// same par.ReduceGrain chunks in chunk order as the parallel tree, keeping
// the sequential result bitwise identical to every other worker count.

// Dot returns the inner product of x and y, computed with a deterministic
// chunked parallel reduction.
func Dot(x, y []float64) float64 { return DotW(0, x, y) }

// DotW is Dot with an explicit worker count.
func DotW(workers int, x, y []float64) float64 {
	if par.Sequential(workers) {
		n := len(x)
		var acc float64
		for lo := 0; lo < n; lo += par.ReduceGrain {
			hi := lo + par.ReduceGrain
			if hi > n {
				hi = n
			}
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			if lo == 0 {
				acc = s
			} else {
				acc += s
			}
		}
		return acc
	}
	return par.SumFloat64W(workers, len(x), func(i int) float64 { return x[i] * y[i] })
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Norm2W is Norm2 with an explicit worker count.
func Norm2W(workers int, x []float64) float64 { return math.Sqrt(DotW(workers, x, x)) }

// AxpyInto computes dst = a*x + y elementwise (dst may alias x or y).
func AxpyInto(dst []float64, a float64, x, y []float64) { AxpyIntoW(0, dst, a, x, y) }

// AxpyIntoW is AxpyInto with an explicit worker count.
func AxpyIntoW(workers int, dst []float64, a float64, x, y []float64) {
	if par.Sequential(workers) {
		for i := range dst {
			dst[i] = a*x[i] + y[i]
		}
		return
	}
	par.ForChunkedW(workers, len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a*x[i] + y[i]
		}
	})
}

// ScaleInto computes dst = a*x.
func ScaleInto(dst []float64, a float64, x []float64) { ScaleIntoW(0, dst, a, x) }

// ScaleIntoW is ScaleInto with an explicit worker count.
func ScaleIntoW(workers int, dst []float64, a float64, x []float64) {
	if par.Sequential(workers) {
		for i := range dst {
			dst[i] = a * x[i]
		}
		return
	}
	par.ForChunkedW(workers, len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a * x[i]
		}
	})
}

// SubInto computes dst = x - y.
func SubInto(dst, x, y []float64) { SubIntoW(0, dst, x, y) }

// SubIntoW is SubInto with an explicit worker count.
func SubIntoW(workers int, dst, x, y []float64) {
	if par.Sequential(workers) {
		for i := range dst {
			dst[i] = x[i] - y[i]
		}
		return
	}
	par.ForChunkedW(workers, len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = x[i] - y[i]
		}
	})
}

// AddInto computes dst = x + y.
func AddInto(dst, x, y []float64) { AddIntoW(0, dst, x, y) }

// AddIntoW is AddInto with an explicit worker count.
func AddIntoW(workers int, dst, x, y []float64) {
	if par.Sequential(workers) {
		for i := range dst {
			dst[i] = x[i] + y[i]
		}
		return
	}
	par.ForChunkedW(workers, len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = x[i] + y[i]
		}
	})
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Mean returns the arithmetic mean of x (0 for empty x).
func Mean(x []float64) float64 { return MeanW(0, x) }

// MeanW is Mean with an explicit worker count.
func MeanW(workers int, x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if par.Sequential(workers) {
		n := len(x)
		var acc float64
		for lo := 0; lo < n; lo += par.ReduceGrain {
			hi := lo + par.ReduceGrain
			if hi > n {
				hi = n
			}
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			if lo == 0 {
				acc = s
			} else {
				acc += s
			}
		}
		return acc / float64(n)
	}
	return par.SumFloat64W(workers, len(x), func(i int) float64 { return x[i] }) / float64(len(x))
}

// ProjectOutConstant subtracts the mean from x in place, projecting onto the
// space orthogonal to the all-ones vector — the range of a connected
// Laplacian. Solver iterations call this to keep iterates well-posed.
func ProjectOutConstant(x []float64) { ProjectOutConstantW(0, x) }

// ProjectOutConstantW is ProjectOutConstant with an explicit worker count.
func ProjectOutConstantW(workers int, x []float64) {
	mu := MeanW(workers, x)
	if par.Sequential(workers) {
		for i := range x {
			x[i] -= mu
		}
		return
	}
	par.ForChunkedW(workers, len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] -= mu
		}
	})
}

// ProjectOutConstantMasked subtracts the mean computed over each component
// of a partition: comp[v] gives the component of v and counts the component
// sizes. Used when the Laplacian's graph is disconnected (null space is
// per-component constants).
func ProjectOutConstantMasked(x []float64, comp []int, numComp int) {
	ProjectOutConstantMaskedW(0, x, comp, numComp)
}

// ProjectOutConstantMaskedW is ProjectOutConstantMasked with an explicit
// worker count. The single-component case (the common one on solver hot
// paths) reduces with the deterministic parallel tree; the multi-component
// case builds a component-sorted index and runs the flat segmented parallel
// reduction of ProjectOutConstantMaskedIdxW. Hot paths that project against
// the same partition repeatedly should build the CompIndex once (solver
// chain levels cache one) and call the Idx form directly.
func ProjectOutConstantMaskedW(workers int, x []float64, comp []int, numComp int) {
	if numComp == 1 {
		ProjectOutConstantW(workers, x)
		return
	}
	ProjectOutConstantMaskedIdxW(workers, x, NewCompIndexW(workers, comp, numComp))
}

// ANorm returns ‖x‖_A = sqrt(xᵀAx), clamping tiny negative values caused by
// roundoff on semidefinite A.
func ANorm(a *Sparse, x []float64) float64 {
	q := a.QuadForm(x)
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q)
}
