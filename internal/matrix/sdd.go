package matrix

import (
	"fmt"
	"math"

	"parlap/internal/graph"
)

// GrembanReduction maps a general SDD system A x = b to a Laplacian system
// on a double cover of A's entry graph ([Gre96, §7.1], cited by the paper as
// the O(m)-work, polylog-depth reduction):
//
//   - a negative off-diagonal A[i][j] = -w becomes edges (i,j) and (i',j'),
//   - a positive off-diagonal A[i][j] = +w becomes edges (i,j') and (i',j),
//   - diagonal slack s_i = A[i][i] − Σ_{j≠i}|A[i][j]| becomes edge (i,i')
//     of weight s_i/2,
//
// where i' = i+n is vertex i's mirror. Then L·[x; −x] = [b; −b], so solving
// the Laplacian system with right-hand side [b; −b] and averaging
// x = (y₁ − y₂)/2 recovers the SDD solution.
type GrembanReduction struct {
	N int // original dimension
	G *graph.Graph
	L *Sparse
}

// NewGrembanReduction validates that a is SDD and constructs the double
// cover. Entries smaller than dropTol (relative) are treated as zero.
func NewGrembanReduction(a *Sparse, dropTol float64) (*GrembanReduction, error) {
	return NewGrembanReductionW(0, a, dropTol)
}

// NewGrembanReductionW is NewGrembanReduction with an explicit worker count
// for the double cover's CSR and Laplacian builds.
func NewGrembanReductionW(workers int, a *Sparse, dropTol float64) (*GrembanReduction, error) {
	if !a.IsSDD(1e-9) {
		return nil, fmt.Errorf("matrix: input is not symmetric diagonally dominant")
	}
	n := a.N
	var edges []graph.Edge
	slack := make([]float64, n)
	copy(slack, a.Diag)
	for r := 0; r < n; r++ {
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			c := int(a.Col[i])
			if c == r {
				continue
			}
			v := a.Val[i]
			if math.Abs(v) <= dropTol {
				continue
			}
			slack[r] -= math.Abs(v)
			if c < r {
				continue // each undirected pair handled once, from the lower id
			}
			if v < 0 {
				w := -v
				edges = append(edges,
					graph.Edge{U: r, V: c, W: w},
					graph.Edge{U: r + n, V: c + n, W: w})
			} else {
				edges = append(edges,
					graph.Edge{U: r, V: c + n, W: v},
					graph.Edge{U: r + n, V: c, W: v})
			}
		}
	}
	for i := 0; i < n; i++ {
		if slack[i] < 0 {
			if slack[i] > -1e-9*(1+a.Diag[i]) {
				slack[i] = 0
			} else {
				return nil, fmt.Errorf("matrix: negative diagonal slack %g at row %d", slack[i], i)
			}
		}
		if slack[i] > 0 {
			edges = append(edges, graph.Edge{U: i, V: i + n, W: slack[i] / 2})
		}
	}
	g := graph.FromEdgesW(workers, 2*n, edges)
	return &GrembanReduction{N: n, G: g, L: LaplacianOfW(workers, g)}, nil
}

// Lift maps the SDD right-hand side b to the double-cover right-hand side
// [b; −b].
func (gr *GrembanReduction) Lift(b []float64) []float64 {
	out := make([]float64, 2*gr.N)
	for i, v := range b {
		out[i] = v
		out[i+gr.N] = -v
	}
	return out
}

// Project maps a double-cover solution y back to the SDD solution
// x_i = (y_i − y_{i+n})/2.
func (gr *GrembanReduction) Project(y []float64) []float64 {
	out := make([]float64, gr.N)
	for i := range out {
		out[i] = (y[i] - y[i+gr.N]) / 2
	}
	return out
}

// IsLaplacian reports whether a already has Laplacian structure: zero row
// sums (within tol) and non-positive off-diagonals, in which case the
// Gremban reduction is unnecessary.
func IsLaplacian(a *Sparse, tol float64) bool {
	for r := 0; r < a.N; r++ {
		sum := 0.0
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			if int(a.Col[i]) != r && a.Val[i] > tol {
				return false
			}
			sum += a.Val[i]
		}
		if math.Abs(sum) > tol*(1+math.Abs(a.Diag[r])) {
			return false
		}
	}
	return true
}
