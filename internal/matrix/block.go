package matrix

import (
	"math"

	"parlap/internal/par"
)

// Block is a dense n×k multi-vector: k right-hand-side columns over n
// vertices in ONE contiguous []float64 backing, laid out vertex-major
// (interleaved) — the value of column c at vertex v lives at data[v*k+c],
// so the k values a kernel touches while visiting a vertex or CSR row are
// adjacent in memory. This is the layout the batch engine's microbenchmark
// (BenchmarkBlockLayout) picked over column-major: every chain kernel walks
// the STRUCTURE (CSR rows, elimination ops, component order) in vertex
// order and fans out across columns at each stop, so vertex-major turns the
// k-slice pointer chase of [][]float64 into one streaming read per vertex.
//
// A Block is resized in place by Reshape, which reuses the backing array
// whenever capacity allows; contents are undefined after a reshape and
// every kernel fully overwrites its output, which is what lets pooled
// workspace blocks change width between batches without reallocation.
//
// The batch-solve contract is layout-independent: lane c of every Block
// kernel performs, per element, exactly the floating-point operations of
// the corresponding single-vector kernel in the same order, so block solves
// stay bitwise identical to k independent single solves.
type Block struct {
	n, k int
	data []float64
}

// NewBlock returns a zeroed n×k block.
func NewBlock(n, k int) *Block {
	return &Block{n: n, k: k, data: make([]float64, n*k)}
}

// N returns the vector length (vertex count).
func (b *Block) N() int { return b.n }

// K returns the number of columns (lanes).
func (b *Block) K() int { return b.k }

// Data exposes the interleaved backing array (length n*k, lane c of vertex
// v at index v*k+c). Intended for kernels and tests; treat as owned by the
// Block.
func (b *Block) Data() []float64 { return b.data }

// Cap returns the backing array's capacity in float64s — the retained
// footprint a byte-budgeted pool accounts for (Reshape never shrinks it).
func (b *Block) Cap() int { return cap(b.data) }

// Row returns vertex v's k contiguous lane values.
func (b *Block) Row(v int) []float64 { return b.data[v*b.k : (v+1)*b.k] }

// Vec views a single-column block (k == 1) as a plain vector. It panics on
// wider blocks — the k==1 fast paths delegating to single-vector kernels
// are the only intended callers.
func (b *Block) Vec() []float64 {
	if b.k != 1 {
		panic("matrix: Block.Vec on multi-column block")
	}
	return b.data[:b.n]
}

// Reshape resizes the block to n×k in place, reusing the backing array when
// its capacity allows (no allocation) and growing it otherwise. Contents
// are UNDEFINED afterwards — callers must fully overwrite before reading,
// which every chain kernel does. Works on the zero value.
func (b *Block) Reshape(n, k int) {
	need := n * k
	if cap(b.data) < need {
		b.data = make([]float64, need)
	} else {
		b.data = b.data[:need]
	}
	b.n, b.k = n, k
}

// Zero clears every element.
func (b *Block) Zero() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// CopyFrom copies src's contents (same shape required).
func (b *Block) CopyFrom(src *Block) {
	copy(b.data, src.data)
}

// SetCol scatters the plain vector x (length n) into column c.
func (b *Block) SetCol(c int, x []float64) {
	k := b.k
	for v := range x {
		b.data[v*k+c] = x[v]
	}
}

// ColInto gathers column c into the plain vector dst (length n).
func (b *Block) ColInto(c int, dst []float64) {
	k := b.k
	for v := range dst {
		dst[v] = b.data[v*k+c]
	}
}

// KeepLanes compacts the block in place to the lanes listed in keep, which
// must be strictly ascending: lane j of the result is lane keep[j] of the
// input. Surviving lanes' values are MOVED, never recomputed — compaction
// is pure data movement, so it cannot perturb any lane's arithmetic (the
// active-column dropout guarantee of the batched PCG driver). The in-place
// front-to-back sweep is safe because ascending keep makes every write land
// at or before the position it reads (v*newK+j <= v*oldK+keep[j]).
func (b *Block) KeepLanes(keep []int) {
	oldK, newK := b.k, len(keep)
	if newK == oldK {
		return // ascending keep of full width is the identity
	}
	for v := 0; v < b.n; v++ {
		src := b.data[v*oldK:]
		dst := b.data[v*newK:]
		for j, kj := range keep {
			dst[j] = src[kj]
		}
	}
	b.k = newK
	b.data = b.data[:b.n*newK]
}

// MulVecBlockW computes y = A·x lane-wise: lane c of y is bitwise identical
// to MulVecW on lane c of x. One CSR traversal serves all k lanes, and the
// interleaved layout makes the k reads per visited column index adjacent.
// y must not alias x.
func (a *Sparse) MulVecBlockW(workers int, x, y *Block) {
	k := x.k
	if k == 1 {
		a.MulVecW(workers, x.Vec(), y.Vec())
		return
	}
	// Named row helpers, closures only on the parallel branch (sequential
	// zero-alloc wall); the f32-valued twin widens each coefficient before
	// the identical per-lane accumulation.
	if par.Sequential(workers) {
		if a.Val == nil {
			a.mulVecBlockRowsF32(x, y, k, 0, a.N)
			return
		}
		a.mulVecBlockRows(x, y, k, 0, a.N)
		return
	}
	if a.Val == nil {
		par.ForChunkedW(workers, a.N, func(lo, hi int) {
			a.mulVecBlockRowsF32(x, y, k, lo, hi)
		})
		return
	}
	par.ForChunkedW(workers, a.N, func(lo, hi int) {
		a.mulVecBlockRows(x, y, k, lo, hi)
	})
}

func (a *Sparse) mulVecBlockRows(x, y *Block, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		yr := y.data[r*k : (r+1)*k]
		for c := range yr {
			yr[c] = 0
		}
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			v := a.Val[i]
			at := int(a.Col[i]) * k
			xr := x.data[at : at+k]
			for c := 0; c < k; c++ {
				yr[c] += v * xr[c]
			}
		}
	}
}

func (a *Sparse) mulVecBlockRowsF32(x, y *Block, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		yr := y.data[r*k : (r+1)*k]
		for c := range yr {
			yr[c] = 0
		}
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			v := float64(a.Val32[i])
			at := int(a.Col[i]) * k
			xr := x.data[at : at+k]
			for c := 0; c < k; c++ {
				yr[c] += v * xr[c]
			}
		}
	}
}

// MulVecAxpyBlockW fuses the Chebyshev residual update into the mat-vec:
// ap = A·x, then y = alpha·ap + y, in ONE pass over the rows — the n×k
// working set is swept once instead of twice. Row r's ap values depend only
// on x (which the kernel never writes) and y's update touches only row r,
// so the fusion is bitwise identical to MulVec followed by Axpy per lane.
// ap and y must not alias x or each other.
func (a *Sparse) MulVecAxpyBlockW(workers int, x, ap *Block, alpha float64, y *Block) {
	k := x.k
	if k == 1 {
		a.MulVecW(workers, x.Vec(), ap.Vec())
		AxpyIntoW(workers, y.Vec(), alpha, ap.Vec(), y.Vec())
		return
	}
	// Named helper, closure only on the parallel branch: an escaping func
	// value heap-allocates at its declaration, which would break the
	// sequential path's zero-allocation guarantee.
	if par.Sequential(workers) {
		if a.Val == nil {
			a.mulVecAxpyBlockRowsF32(x, ap, alpha, y, k, 0, a.N)
			return
		}
		a.mulVecAxpyBlockRows(x, ap, alpha, y, k, 0, a.N)
		return
	}
	if a.Val == nil {
		par.ForChunkedW(workers, a.N, func(lo, hi int) {
			a.mulVecAxpyBlockRowsF32(x, ap, alpha, y, k, lo, hi)
		})
		return
	}
	par.ForChunkedW(workers, a.N, func(lo, hi int) {
		a.mulVecAxpyBlockRows(x, ap, alpha, y, k, lo, hi)
	})
}

func (a *Sparse) mulVecAxpyBlockRows(x, ap *Block, alpha float64, y *Block, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		apr := ap.data[r*k : (r+1)*k]
		for c := range apr {
			apr[c] = 0
		}
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			v := a.Val[i]
			at := int(a.Col[i]) * k
			xr := x.data[at : at+k]
			for c := 0; c < k; c++ {
				apr[c] += v * xr[c]
			}
		}
		yr := y.data[r*k : (r+1)*k]
		for c := 0; c < k; c++ {
			yr[c] = alpha*apr[c] + yr[c]
		}
	}
}

func (a *Sparse) mulVecAxpyBlockRowsF32(x, ap *Block, alpha float64, y *Block, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		apr := ap.data[r*k : (r+1)*k]
		for c := range apr {
			apr[c] = 0
		}
		for i := a.Off[r]; i < a.Off[r+1]; i++ {
			v := float64(a.Val32[i])
			at := int(a.Col[i]) * k
			xr := x.data[at : at+k]
			for c := 0; c < k; c++ {
				apr[c] += v * xr[c]
			}
		}
		yr := y.data[r*k : (r+1)*k]
		for c := 0; c < k; c++ {
			yr[c] = alpha*apr[c] + yr[c]
		}
	}
}

// DotBlockIntoW computes out[c] = x[:,c]·y[:,c] for every lane in one pass.
// Each lane folds through exactly DotW's fixed-grain chunk tree, so out[c]
// is bitwise identical to DotW on lane c. tmp (length >= k) is the
// sequential path's chunk-partial scratch; out must hold k values. The
// workers==1 path allocates nothing.
func DotBlockIntoW(workers int, x, y *Block, out, tmp []float64) {
	k := x.k
	if k == 1 {
		out[0] = DotW(workers, x.Vec(), y.Vec())
		return
	}
	n := x.n
	if par.Sequential(workers) {
		tmp = tmp[:k]
		for lo := 0; lo < n; lo += par.ReduceGrain {
			hi := lo + par.ReduceGrain
			if hi > n {
				hi = n
			}
			for c := range tmp {
				tmp[c] = 0
			}
			for i := lo; i < hi; i++ {
				xr := x.data[i*k : (i+1)*k]
				yr := y.data[i*k : (i+1)*k]
				for c := 0; c < k; c++ {
					tmp[c] += xr[c] * yr[c]
				}
			}
			if lo == 0 {
				copy(out[:k], tmp)
			} else {
				for c := 0; c < k; c++ {
					out[c] += tmp[c]
				}
			}
		}
		if n == 0 {
			for c := 0; c < k; c++ {
				out[c] = 0
			}
		}
		return
	}
	xd, yd := x.data, y.data
	sums := par.SumFloat64BatchW(workers, n, k, func(i, c int) float64 {
		return xd[i*k+c] * yd[i*k+c]
	})
	copy(out[:k], sums)
}

// Norm2BlockIntoW computes each lane's Euclidean norm; see DotBlockIntoW
// for the scratch contract.
func Norm2BlockIntoW(workers int, x *Block, out, tmp []float64) {
	DotBlockIntoW(workers, x, x, out, tmp)
	for c := 0; c < x.k; c++ {
		out[c] = math.Sqrt(out[c])
	}
}

// AxpyBlockW computes dst = diag(alphas)·x + y lane-wise: lane c gets
// dst[:,c] = alphas[c]·x[:,c] + y[:,c], bitwise identical to AxpyIntoW on
// that lane. dst may alias x or y.
func AxpyBlockW(workers int, dst *Block, alphas []float64, x, y *Block) {
	k := dst.k
	if k == 1 {
		AxpyIntoW(workers, dst.Vec(), alphas[0], x.Vec(), y.Vec())
		return
	}
	if par.Sequential(workers) {
		axpyBlockRows(dst, alphas, x, y, k, 0, dst.n)
		return
	}
	par.ForChunkedW(workers, dst.n, func(lo, hi int) {
		axpyBlockRows(dst, alphas, x, y, k, lo, hi)
	})
}

func axpyBlockRows(dst *Block, alphas []float64, x, y *Block, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		dr := dst.data[i*k : (i+1)*k]
		xr := x.data[i*k : (i+1)*k]
		yr := y.data[i*k : (i+1)*k]
		for c := 0; c < k; c++ {
			dr[c] = alphas[c]*xr[c] + yr[c]
		}
	}
}

// SubIntoBlockW computes dst = x − y lane-wise.
func SubIntoBlockW(workers int, dst, x, y *Block) {
	k := dst.k
	if k == 1 {
		SubIntoW(workers, dst.Vec(), x.Vec(), y.Vec())
		return
	}
	if par.Sequential(workers) {
		subBlockRows(dst, x, y, k, 0, dst.n)
		return
	}
	par.ForChunkedW(workers, dst.n, func(lo, hi int) {
		subBlockRows(dst, x, y, k, lo, hi)
	})
}

func subBlockRows(dst, x, y *Block, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		dr := dst.data[i*k : (i+1)*k]
		xr := x.data[i*k : (i+1)*k]
		yr := y.data[i*k : (i+1)*k]
		for c := 0; c < k; c++ {
			dr[c] = xr[c] - yr[c]
		}
	}
}

// ChebUpdateBlockW fuses the Chebyshev direction and iterate updates into
// one pass over the block: p = z (first iteration) or p = beta·p + z, then
// x = alpha·p + x. Both updates are elementwise with p's new value read by
// x's update at the same element, so the fusion performs per element
// exactly the float ops of the two separate kernels in the same order —
// bitwise identical, one sweep of the n×k working set instead of two.
func ChebUpdateBlockW(workers int, p, z *Block, beta float64, x *Block, alpha float64, first bool) {
	k := p.k
	if k == 1 {
		if first {
			copy(p.Vec(), z.Vec())
		} else {
			AxpyIntoW(workers, p.Vec(), beta, p.Vec(), z.Vec())
		}
		AxpyIntoW(workers, x.Vec(), alpha, p.Vec(), x.Vec())
		return
	}
	if par.Sequential(workers) {
		chebUpdateBlockRows(p, z, beta, x, alpha, first, k, 0, p.n)
		return
	}
	par.ForChunkedW(workers, p.n, func(lo, hi int) {
		chebUpdateBlockRows(p, z, beta, x, alpha, first, k, lo, hi)
	})
}

func chebUpdateBlockRows(p, z *Block, beta float64, x *Block, alpha float64, first bool, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		pr := p.data[i*k : (i+1)*k]
		zr := z.data[i*k : (i+1)*k]
		xr := x.data[i*k : (i+1)*k]
		if first {
			copy(pr, zr)
		} else {
			for c := 0; c < k; c++ {
				pr[c] = beta*pr[c] + zr[c]
			}
		}
		for c := 0; c < k; c++ {
			xr[c] = alpha*pr[c] + xr[c]
		}
	}
}

// ProjectOutConstantMaskedBlockIdxW subtracts each lane's per-component
// mean in place — lane c is bitwise identical to
// ProjectOutConstantMaskedIdxW on that lane. scratch (length >= 2k) makes
// the single-component workers==1 path allocation-free: scratch[:k] holds
// the lane means, scratch[k:2k] the chunk partials of the mean reduction.
// The multi-component path allocates its segmented sums, matching the
// single-vector kernel's behaviour.
func ProjectOutConstantMaskedBlockIdxW(workers int, x *Block, ci *CompIndex, scratch []float64) {
	k := x.k
	if k == 1 {
		ProjectOutConstantMaskedIdxW(workers, x.Vec(), ci)
		return
	}
	n := x.n
	if ci.NumComp == 1 {
		if par.Sequential(workers) {
			mus, tmp := scratch[:k], scratch[k:2*k]
			for lo := 0; lo < n; lo += par.ReduceGrain {
				hi := lo + par.ReduceGrain
				if hi > n {
					hi = n
				}
				for c := range tmp {
					tmp[c] = 0
				}
				for i := lo; i < hi; i++ {
					xr := x.data[i*k : (i+1)*k]
					for c := 0; c < k; c++ {
						tmp[c] += xr[c]
					}
				}
				if lo == 0 {
					copy(mus, tmp)
				} else {
					for c := 0; c < k; c++ {
						mus[c] += tmp[c]
					}
				}
			}
			for c := 0; c < k; c++ {
				mus[c] /= float64(n)
			}
			for i := 0; i < n; i++ {
				xr := x.data[i*k : (i+1)*k]
				for c := 0; c < k; c++ {
					xr[c] -= mus[c]
				}
			}
			return
		}
		xd := x.data
		mus := par.SumFloat64BatchW(workers, n, k, func(i, c int) float64 { return xd[i*k+c] })
		for c := range mus {
			mus[c] /= float64(n)
		}
		par.ForChunkedW(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				xr := xd[i*k : (i+1)*k]
				for c := 0; c < k; c++ {
					xr[c] -= mus[c]
				}
			}
		})
		return
	}
	xd := x.data
	mus := par.SegmentedSumFloat64BatchW(workers, k, ci.SegOff, func(i, col int) float64 {
		return xd[ci.Order[i]*k+col]
	})
	for s := 0; s < ci.NumComp; s++ {
		if sz := ci.SegOff[s+1] - ci.SegOff[s]; sz > 0 {
			for c := 0; c < k; c++ {
				mus[s*k+c] /= float64(sz)
			}
		}
	}
	comp := ci.Comp
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xr := xd[i*k : (i+1)*k]
			mr := mus[comp[i]*k : (comp[i]+1)*k]
			for c := 0; c < k; c++ {
				xr[c] -= mr[c]
			}
		}
	}
	if par.Sequential(workers) {
		body(0, n)
		return
	}
	par.ForChunkedW(workers, n, body)
}
