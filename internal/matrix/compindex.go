package matrix

import "parlap/internal/par"

// CompIndex is a component-sorted view of a partition comp: []int — the
// per-component vertex lists laid out flat, exactly what a segmented
// reduction needs to compute per-component sums without a scalar loop per
// component. Solver layers build one per chain level (and one for the input
// graph) at construction time and reuse it on every projection, the way the
// elimination caches its scatter reverse index.
//
// A CompIndex is read-only after construction and safe for concurrent use.
type CompIndex struct {
	Comp    []int // vertex -> component id (the defining labeling, retained)
	NumComp int
	// Order lists the vertices grouped by component — ascending vertex id
	// within each component — and SegOff (length NumComp+1) delimits the
	// groups: Order[SegOff[c]:SegOff[c+1]] are exactly the vertices of
	// component c.
	Order  []int
	SegOff []int
}

// NewCompIndex builds the component-sorted index with the default worker
// count.
func NewCompIndex(comp []int, numComp int) *CompIndex {
	return NewCompIndexW(0, comp, numComp)
}

// NewCompIndexW is NewCompIndex with an explicit worker count. The stable
// counting-sort pack produces the identical layout for every setting.
func NewCompIndexW(workers int, comp []int, numComp int) *CompIndex {
	if numComp < 1 {
		numComp = 1
	}
	ci := &CompIndex{Comp: comp, NumComp: numComp}
	if numComp == 1 {
		// The single-component projection never consults Order/SegOff (it
		// subtracts the global mean); skip the pack on the common case.
		ci.SegOff = []int{0, len(comp)}
		return ci
	}
	ci.SegOff, ci.Order = par.PackByKeyW(workers, len(comp), numComp, func(i int) int {
		return comp[i]
	})
	return ci
}

// MemoryBytes estimates the index's retained footprint (excluding Comp,
// which callers account for separately — the index only references it).
func (ci *CompIndex) MemoryBytes() int64 {
	return int64(len(ci.Order)+len(ci.SegOff)) * 8
}

// componentMeans returns the per-component mean of x via one flat segmented
// parallel reduction over the component-sorted order. The fold per component
// uses par's fixed-grain chunk tree, so the means are bitwise identical for
// every worker count.
func (ci *CompIndex) componentMeans(workers int, x []float64) []float64 {
	mu := par.SegmentedSumFloat64W(workers, ci.SegOff, func(i int) float64 {
		return x[ci.Order[i]]
	})
	for c := range mu {
		if sz := ci.SegOff[c+1] - ci.SegOff[c]; sz > 0 {
			mu[c] /= float64(sz)
		}
	}
	return mu
}

// ProjectOutConstantMaskedIdxW subtracts the per-component mean from x in
// place using the cached component index: a segmented parallel reduction for
// the sums, then a flat parallel subtraction pass. No per-component scalar
// loop remains; results are bitwise identical for every worker count.
func ProjectOutConstantMaskedIdxW(workers int, x []float64, ci *CompIndex) {
	if ci.NumComp == 1 {
		ProjectOutConstantW(workers, x)
		return
	}
	mu := ci.componentMeans(workers, x)
	comp := ci.Comp
	if par.Sequential(workers) {
		for i := range x {
			x[i] -= mu[comp[i]]
		}
		return
	}
	par.ForChunkedW(workers, len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] -= mu[comp[i]]
		}
	})
}

// ProjectOutConstantMaskedBatchIdxW is the batched form: one pass over the
// component-sorted order serves every column's segmented sums, and each
// column folds through exactly the single-column chunk tree, so column c is
// bitwise identical to ProjectOutConstantMaskedIdxW on that column.
func ProjectOutConstantMaskedBatchIdxW(workers int, xs [][]float64, ci *CompIndex) {
	k := len(xs)
	if k == 0 {
		return
	}
	n := len(xs[0])
	if ci.NumComp == 1 {
		mus := par.SumFloat64BatchW(workers, n, k, func(i, c int) float64 { return xs[c][i] })
		for c := range mus {
			mus[c] /= float64(n)
		}
		par.ForChunkedW(workers, n, func(lo, hi int) {
			for c := 0; c < k; c++ {
				mu, x := mus[c], xs[c]
				for i := lo; i < hi; i++ {
					x[i] -= mu
				}
			}
		})
		return
	}
	mus := par.SegmentedSumFloat64BatchW(workers, k, ci.SegOff, func(i, c int) float64 {
		return xs[c][ci.Order[i]]
	})
	for s := 0; s < ci.NumComp; s++ {
		if sz := ci.SegOff[s+1] - ci.SegOff[s]; sz > 0 {
			for c := 0; c < k; c++ {
				mus[s*k+c] /= float64(sz)
			}
		}
	}
	comp := ci.Comp
	par.ForChunkedW(workers, n, func(lo, hi int) {
		for c := 0; c < k; c++ {
			x := xs[c]
			for i := lo; i < hi; i++ {
				x[i] -= mus[comp[i]*k+c]
			}
		}
	})
}
