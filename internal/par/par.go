// Package par provides the parallel primitives used throughout parlap:
// parallel for-loops, reductions, prefix sums (scans) and chunked map
// operations.
//
// Every primitive comes in two forms: the plain form (For, SumFloat64, ...)
// which uses runtime.GOMAXPROCS(0) workers, and a W-suffixed form
// (ForW, SumFloat64W, ...) taking an explicit worker count as its first
// argument — 0 means GOMAXPROCS, 1 forces sequential execution. The solver
// threads its Options.Workers knob through the W forms, which is what makes
// parallel/sequential equivalence testable.
//
// All primitives are deterministic with respect to their results: reductions
// and scans fold fixed-size chunks (reduceGrain elements) in chunk order, so
// the combining tree shape depends only on n — never on the worker count or
// on goroutine scheduling. For exactly associative operators (integer add,
// min/max) the result equals the sequential fold; for float64 addition the
// result is bitwise identical across worker counts, including workers=1.
//
// A panic raised inside a worker body is captured and re-raised on the
// calling goroutine once all workers have stopped, so callers can recover
// from worker panics exactly as they would from a sequential loop.
package par

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// SequentialThreshold is the input size below which the primitives run
// sequentially. Chosen so that goroutine spawn cost (~1µs) stays well under
// the per-element work it amortizes.
const SequentialThreshold = 2048

// reduceGrain is the fixed chunk size used by reductions and scans. The
// chunk decomposition depends only on n, which pins the combining tree shape
// and makes results reproducible across worker counts.
const reduceGrain = 2048

// ReduceGrain exports the fixed reduction chunk size. Callers that implement
// an allocation-free sequential reduction (a hot kernel's workers==1 fast
// path) must fold chunks of exactly this size in chunk order to stay bitwise
// identical to ReduceFloat64W's combining tree.
const ReduceGrain = reduceGrain

// Workers returns the number of workers parallel primitives use by default.
func Workers() int { return runtime.GOMAXPROCS(0) }

// resolve maps the workers knob to an actual worker count: 0 (or negative)
// means GOMAXPROCS, anything else is taken literally.
func resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Sequential reports whether the workers knob resolves to one worker — the
// condition under which hot kernels take their inline (closure-free,
// allocation-free) fast paths. The fast paths are bitwise identical to the
// parallel schedules, so dispatching on the resolved count is safe.
func Sequential(workers int) bool { return resolve(workers) == 1 }

// runTasks executes task(c) for every c in [0, numTasks) on up to p
// goroutines, pulling task indices from a shared counter for load balance.
// Task-to-index assignment is fixed, so any per-task output slot is
// deterministic regardless of which worker runs it. The first panic raised
// by a task is re-raised on the caller after all workers have stopped.
func runTasks(p, numTasks int, task func(c int)) {
	if numTasks <= 0 {
		return
	}
	if p > numTasks {
		p = numTasks
	}
	if p <= 1 {
		for c := 0; c < numTasks; c++ {
			task(c)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Bool
	var panicVal any
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if panicked.CompareAndSwap(false, true) {
						panicVal = r
					}
				}
			}()
			for {
				c := int(next.Add(1)) - 1
				if c >= numTasks || panicked.Load() {
					return
				}
				task(c)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// grainChunks returns the number of fixed-grain chunks covering [0, n).
func grainChunks(n int) int { return (n + reduceGrain - 1) / reduceGrain }

// grainBounds returns chunk c's index range.
func grainBounds(c, n int) (lo, hi int) {
	lo = c * reduceGrain
	hi = lo + reduceGrain
	if hi > n {
		hi = n
	}
	return lo, hi
}

// For runs body(i) for every i in [0, n) using the default worker count.
// body must be safe to call concurrently for distinct i.
func For(n int, body func(i int)) { ForW(0, n, body) }

// ForW is For with an explicit worker count (0 = GOMAXPROCS, 1 = sequential).
func ForW(workers, n int, body func(i int)) {
	ForChunkedW(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and runs body(lo, hi) on
// each chunk in parallel. It is the preferred form when the body has
// per-chunk setup cost (e.g. a local buffer).
func ForChunked(n int, body func(lo, hi int)) { ForChunkedW(0, n, body) }

// ForChunkedW is ForChunked with an explicit worker count.
func ForChunkedW(workers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := resolve(workers)
	if n < SequentialThreshold || p == 1 {
		body(0, n)
		return
	}
	// Use more chunks than workers for load balance on skewed bodies.
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	numChunks := (n + chunkSize - 1) / chunkSize
	runTasks(p, numChunks, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

// TasksW runs task(c) for every c in [0, numTasks) on up to workers
// goroutines (0 = GOMAXPROCS, 1 = sequential), pulling task indices from a
// shared counter for load balance. Unlike ForW — whose sequential cutoff
// treats n as the element count — the task count here IS the parallel
// grain: use it when tasks are few but individually large (per-chunk BFS
// expansion, chunked scatter with per-task locals). Worker panics propagate
// to the caller like every other primitive.
func TasksW(workers, numTasks int, task func(c int)) {
	runTasks(resolve(workers), numTasks, task)
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) { DoW(0, fns...) }

// DoW is Do with an explicit worker count.
func DoW(workers int, fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 {
		fns[0]()
		return
	}
	runTasks(resolve(workers), len(fns), func(c int) { fns[c]() })
}

// ReduceFloat64 computes the reduction of f(i) over [0, n) with the
// associative combiner op and identity element id. Chunks of reduceGrain
// elements are folded left-to-right from id and the per-chunk partials are
// combined in chunk order, so the result is bitwise identical for every
// worker count (the tree shape depends only on n).
func ReduceFloat64(n int, id float64, f func(i int) float64, op func(a, b float64) float64) float64 {
	return ReduceFloat64W(0, n, id, f, op)
}

// ReduceFloat64W is ReduceFloat64 with an explicit worker count.
func ReduceFloat64W(workers, n int, id float64, f func(i int) float64, op func(a, b float64) float64) float64 {
	if n <= 0 {
		return id
	}
	numChunks := grainChunks(n)
	fold := func(lo, hi int) float64 {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	if numChunks == 1 {
		return fold(0, n)
	}
	partial := make([]float64, numChunks)
	runTasks(resolve(workers), numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		partial[c] = fold(lo, hi)
	})
	acc := partial[0]
	for _, v := range partial[1:] {
		acc = op(acc, v)
	}
	return acc
}

// SumFloat64 returns the sum of f(i) over [0, n).
func SumFloat64(n int, f func(i int) float64) float64 { return SumFloat64W(0, n, f) }

// SumFloat64W is SumFloat64 with an explicit worker count.
func SumFloat64W(workers, n int, f func(i int) float64) float64 {
	return ReduceFloat64W(workers, n, 0, f, func(a, b float64) float64 { return a + b })
}

// SumFloat64BatchW computes k sums in one pass over the index space:
// out[c] = Σ_{i<n} f(i, c). Each column folds through exactly the same
// fixed-grain chunk tree as SumFloat64W, so out[c] is bitwise identical to
// SumFloat64W(workers, n, func(i int) float64 { return f(i, c) }) — the
// batch form only shares the index traversal (and whatever memory traffic f
// amortizes across columns), never the arithmetic.
func SumFloat64BatchW(workers, n, k int, f func(i, c int) float64) []float64 {
	out := make([]float64, k)
	if n <= 0 || k == 0 {
		return out
	}
	numChunks := grainChunks(n)
	if numChunks == 1 {
		for i := 0; i < n; i++ {
			for c := 0; c < k; c++ {
				out[c] += f(i, c)
			}
		}
		return out
	}
	partial := make([]float64, numChunks*k)
	runTasks(resolve(workers), numChunks, func(ch int) {
		lo, hi := grainBounds(ch, n)
		acc := partial[ch*k : (ch+1)*k]
		for i := lo; i < hi; i++ {
			for c := 0; c < k; c++ {
				acc[c] += f(i, c)
			}
		}
	})
	copy(out, partial[:k])
	for ch := 1; ch < numChunks; ch++ {
		p := partial[ch*k : (ch+1)*k]
		for c := 0; c < k; c++ {
			out[c] += p[c]
		}
	}
	return out
}

// MinFloat64 returns the minimum of f(i) over [0, n), or id if n <= 0.
func MinFloat64(n int, id float64, f func(i int) float64) float64 {
	return ReduceFloat64(n, id, f, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

// ReduceInt computes the reduction of f(i) over [0, n) with combiner op,
// folding fixed-grain chunks in chunk order (see ReduceFloat64).
func ReduceInt(n int, id int, f func(i int) int, op func(a, b int) int) int {
	return ReduceIntW(0, n, id, f, op)
}

// ReduceIntW is ReduceInt with an explicit worker count.
func ReduceIntW(workers, n int, id int, f func(i int) int, op func(a, b int) int) int {
	if n <= 0 {
		return id
	}
	numChunks := grainChunks(n)
	fold := func(lo, hi int) int {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	if numChunks == 1 {
		return fold(0, n)
	}
	partial := make([]int, numChunks)
	runTasks(resolve(workers), numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		partial[c] = fold(lo, hi)
	})
	acc := partial[0]
	for _, v := range partial[1:] {
		acc = op(acc, v)
	}
	return acc
}

// SumInt returns the sum of f(i) over [0, n).
func SumInt(n int, f func(i int) int) int { return SumIntW(0, n, f) }

// SumIntW is SumInt with an explicit worker count.
func SumIntW(workers, n int, f func(i int) int) int {
	return ReduceIntW(workers, n, 0, f, func(a, b int) int { return a + b })
}

// MaxInt returns the maximum of f(i) over [0, n), or id if n <= 0.
func MaxInt(n int, id int, f func(i int) int) int {
	return ReduceInt(n, id, f, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// Scan computes the exclusive prefix sum of src into a new slice of length
// len(src)+1: out[0]=0, out[i+1]=out[i]+src[i]. The final element is the
// total. This is the paper's plus-scan; it runs in O(n) work and two-pass
// O(n/p + p) depth.
func Scan(src []int) []int { return ScanW(0, src) }

// ScanW is Scan with an explicit worker count.
func ScanW(workers int, src []int) []int {
	n := len(src)
	out := make([]int, n+1)
	if n == 0 {
		return out
	}
	numChunks := grainChunks(n)
	if numChunks == 1 {
		acc := 0
		for i, v := range src {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return out
	}
	p := resolve(workers)
	sums := make([]int, numChunks)
	// Pass 1: per-chunk totals.
	runTasks(p, numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		s := 0
		for i := lo; i < hi; i++ {
			s += src[i]
		}
		sums[c] = s
	})
	// Scan chunk totals sequentially (numChunks ≪ n).
	acc := 0
	for c := 0; c < numChunks; c++ {
		s := sums[c]
		sums[c] = acc
		acc += s
	}
	out[n] = acc
	// Pass 2: per-chunk local scans offset by the chunk's base.
	runTasks(p, numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		a := sums[c]
		for i := lo; i < hi; i++ {
			out[i] = a
			a += src[i]
		}
	})
	return out
}

// PrefixSumInt computes the exclusive prefix sum of src; see Scan.
func PrefixSumInt(src []int) []int { return ScanW(0, src) }

// PrefixSumIntW is PrefixSumInt with an explicit worker count.
func PrefixSumIntW(workers int, src []int) []int { return ScanW(workers, src) }

// FilterIndex returns, in increasing order, all i in [0, n) with keep(i).
// It uses a parallel count + prefix-sum + scatter, the standard PRAM pack.
func FilterIndex(n int, keep func(i int) bool) []int { return FilterIndexW(0, n, keep) }

// FilterIndexW is FilterIndex with an explicit worker count.
func FilterIndexW(workers, n int, keep func(i int) bool) []int {
	if n <= 0 {
		return nil
	}
	numChunks := grainChunks(n)
	if numChunks == 1 {
		var out []int
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, i)
			}
		}
		return out
	}
	p := resolve(workers)
	counts := make([]int, numChunks)
	runTasks(p, numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		cnt := 0
		for i := lo; i < hi; i++ {
			if keep(i) {
				cnt++
			}
		}
		counts[c] = cnt
	})
	offsets := make([]int, numChunks+1)
	for c := 0; c < numChunks; c++ {
		offsets[c+1] = offsets[c] + counts[c]
	}
	out := make([]int, offsets[numChunks])
	runTasks(p, numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		at := offsets[c]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[at] = i
				at++
			}
		}
	})
	return out
}

// HalfEdgePackW computes the CSR placement of m undirected edges over n
// vertices without the sequential cursor scatter: per-chunk degree counts,
// a prefix-sum over vertices, and per-(chunk, vertex) starting offsets let
// every chunk scatter its own edges into disjoint slots. It returns off
// (length n+1, the CSR row offsets) and pos (length 2m): pos[2i] is the slot
// of edge i's U-side half-edge and pos[2i+1] its V-side slot.
//
// The layout is identical to the classic sequential scatter (edges processed
// in index order, appending at a per-vertex cursor) for every worker count:
// chunk c's edges land after the half-edges of chunks < c at the same vertex,
// and in edge order within the chunk. Self-loops (u == v) occupy two
// consecutive slots at their vertex, as the sequential cursor would place
// them.
func HalfEdgePackW(workers, n, m int, ends func(i int) (u, v int)) (off, pos []int) {
	pos = make([]int, 2*m)
	deg := make([]int, n)
	p := resolve(workers)
	if p == 1 || m < SequentialThreshold {
		for i := 0; i < m; i++ {
			u, v := ends(i)
			deg[u]++
			deg[v]++
		}
		off = ScanW(1, deg)
		cursor := deg // reuse: overwrite with the running cursor
		copy(cursor, off[:n])
		for i := 0; i < m; i++ {
			u, v := ends(i)
			pos[2*i] = cursor[u]
			cursor[u]++
			pos[2*i+1] = cursor[v]
			cursor[v]++
		}
		return off, pos
	}
	chunks := p * 4
	if chunks > m {
		chunks = m
	}
	chunk := (m + chunks - 1) / chunks
	numChunks := (m + chunk - 1) / chunk
	local := make([][]int, numChunks)
	runTasks(p, numChunks, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > m {
			hi = m
		}
		l := make([]int, n)
		for i := lo; i < hi; i++ {
			u, v := ends(i)
			l[u]++
			l[v]++
		}
		local[c] = l
	})
	ForW(workers, n, func(v int) {
		d := 0
		for c := 0; c < numChunks; c++ {
			d += local[c][v]
		}
		deg[v] = d
	})
	off = ScanW(workers, deg)
	// Turn each chunk's count into its starting cursor at that vertex:
	// off[v] plus the half-edges earlier chunks place there.
	ForW(workers, n, func(v int) {
		run := off[v]
		for c := 0; c < numChunks; c++ {
			t := local[c][v]
			local[c][v] = run
			run += t
		}
	})
	runTasks(p, numChunks, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > m {
			hi = m
		}
		cursor := local[c]
		for i := lo; i < hi; i++ {
			u, v := ends(i)
			pos[2*i] = cursor[u]
			cursor[u]++
			pos[2*i+1] = cursor[v]
			cursor[v]++
		}
	})
	return off, pos
}

// HalfEdgePack is HalfEdgePackW with the default worker count.
func HalfEdgePack(n, m int, ends func(i int) (u, v int)) (off, pos []int) {
	return HalfEdgePackW(0, n, m, ends)
}

// PackByKeyW groups the indices [0, n) by key(i) ∈ [0, numKeys) with a
// stable parallel counting sort: per-chunk key counts, a prefix sum over
// keys, and per-(chunk, key) starting offsets let every chunk scatter its
// own indices into disjoint slots — the same offset-precomputed pack as
// HalfEdgePackW. It returns off (length numKeys+1) and order (length n):
// order[off[k]:off[k+1]] holds, in increasing order, exactly the indices i
// with key(i) == k. The layout matches the sequential stable counting sort
// for every worker count.
func PackByKeyW(workers, n, numKeys int, key func(i int) int) (off, order []int) {
	order = make([]int, n)
	cnt := make([]int, numKeys)
	p := resolve(workers)
	if p == 1 || n < SequentialThreshold {
		for i := 0; i < n; i++ {
			cnt[key(i)]++
		}
		off = ScanW(1, cnt)
		cursor := cnt // reuse: overwrite with the running cursor
		copy(cursor, off[:numKeys])
		for i := 0; i < n; i++ {
			k := key(i)
			order[cursor[k]] = i
			cursor[k]++
		}
		return off, order
	}
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunk := (n + chunks - 1) / chunks
	numChunks := (n + chunk - 1) / chunk
	local := make([][]int, numChunks)
	runTasks(p, numChunks, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		l := make([]int, numKeys)
		for i := lo; i < hi; i++ {
			l[key(i)]++
		}
		local[c] = l
	})
	ForW(workers, numKeys, func(k int) {
		d := 0
		for c := 0; c < numChunks; c++ {
			d += local[c][k]
		}
		cnt[k] = d
	})
	off = ScanW(workers, cnt)
	// Turn each chunk's count into its starting cursor at that key: off[k]
	// plus the indices earlier chunks place there.
	ForW(workers, numKeys, func(k int) {
		run := off[k]
		for c := 0; c < numChunks; c++ {
			t := local[c][k]
			local[c][k] = run
			run += t
		}
	})
	runTasks(p, numChunks, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		cursor := local[c]
		for i := lo; i < hi; i++ {
			k := key(i)
			order[cursor[k]] = i
			cursor[k]++
		}
	})
	return off, order
}

// SegmentedSumFloat64W computes one sum per segment of a segment-sorted
// index space: out[s] = Σ_{i ∈ [segOff[s], segOff[s+1])} f(i), where segOff
// (length numSeg+1, segOff[numSeg] == n) partitions [0, n) into contiguous
// segments. The index space is folded in fixed-grain chunks (the same grain
// as ReduceFloat64W) and each segment combines its chunk partials in chunk
// order, so the tree shape per segment depends only on n and the segment
// boundaries — out[s] is bitwise identical for every worker count. This is
// the flat segmented sum of Andoni–Stein–Song-style per-component
// reductions: no scalar loop per segment, one parallel pass over the data.
func SegmentedSumFloat64W(workers int, segOff []int, f func(i int) float64) []float64 {
	numSeg := len(segOff) - 1
	out := make([]float64, numSeg)
	n := segOff[numSeg]
	if n <= 0 {
		return out
	}
	numChunks := grainChunks(n)
	// segAt(i) is only ever advanced forward, so each chunk locates its
	// first segment by binary search and walks from there.
	if numChunks == 1 {
		segmentedFold(segOff, 0, n, out, f)
		return out
	}
	// partial[c] holds chunk c's per-segment sums for the (contiguous) run
	// of segments it intersects, starting at segBase[c].
	partial := make([][]float64, numChunks)
	segBase := make([]int, numChunks)
	runTasks(resolve(workers), numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		s0 := findSeg(segOff, lo)
		s1 := findSeg(segOff, hi-1)
		acc := make([]float64, s1-s0+1)
		segmentedFoldInto(segOff, lo, hi, s0, acc, f)
		partial[c] = acc
		segBase[c] = s0
	})
	for c := 0; c < numChunks; c++ {
		base := segBase[c]
		for j, v := range partial[c] {
			out[base+j] += v
		}
	}
	return out
}

// SegmentedSumFloat64BatchW is SegmentedSumFloat64W over k columns in one
// pass: out[s*k+col] = Σ_{i ∈ segment s} f(i, col). Every column folds
// through exactly the chunk tree of the single form, so column col is
// bitwise identical to SegmentedSumFloat64W with f(i) = f(i, col).
func SegmentedSumFloat64BatchW(workers, k int, segOff []int, f func(i, col int) float64) []float64 {
	numSeg := len(segOff) - 1
	out := make([]float64, numSeg*k)
	n := segOff[numSeg]
	if n <= 0 || k == 0 {
		return out
	}
	numChunks := grainChunks(n)
	fold := func(lo, hi, s0 int, acc []float64) {
		s := s0
		for i := lo; i < hi; i++ {
			for segOff[s+1] <= i {
				s++
			}
			row := acc[(s-s0)*k : (s-s0+1)*k]
			for col := 0; col < k; col++ {
				row[col] += f(i, col)
			}
		}
	}
	if numChunks == 1 {
		fold(0, n, 0, out)
		return out
	}
	partial := make([][]float64, numChunks)
	segBase := make([]int, numChunks)
	runTasks(resolve(workers), numChunks, func(c int) {
		lo, hi := grainBounds(c, n)
		s0 := findSeg(segOff, lo)
		s1 := findSeg(segOff, hi-1)
		acc := make([]float64, (s1-s0+1)*k)
		fold(lo, hi, s0, acc)
		partial[c] = acc
		segBase[c] = s0
	})
	for c := 0; c < numChunks; c++ {
		base := segBase[c]
		p := partial[c]
		for j := 0; j < len(p)/k; j++ {
			row := out[(base+j)*k : (base+j+1)*k]
			for col := 0; col < k; col++ {
				row[col] += p[j*k+col]
			}
		}
	}
	return out
}

// findSeg returns the segment containing index i: the largest s with
// segOff[s] <= i. Empty segments make segOff non-strictly increasing, so the
// search lands on the (unique) non-empty segment covering i.
func findSeg(segOff []int, i int) int {
	lo, hi := 0, len(segOff)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if segOff[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	// Skip empty segments sharing the same offset: advance to the segment
	// that actually contains i (segOff[s+1] > i).
	for segOff[lo+1] <= i {
		lo++
	}
	return lo
}

// segmentedFold accumulates f over [lo, hi) into out, indexed by absolute
// segment id.
func segmentedFold(segOff []int, lo, hi int, out []float64, f func(i int) float64) {
	s := findSeg(segOff, lo)
	for i := lo; i < hi; i++ {
		for segOff[s+1] <= i {
			s++
		}
		out[s] += f(i)
	}
}

// segmentedFoldInto accumulates f over [lo, hi) into acc, indexed relative
// to segment s0 (the segment containing lo).
func segmentedFoldInto(segOff []int, lo, hi, s0 int, acc []float64, f func(i int) float64) {
	s := s0
	for i := lo; i < hi; i++ {
		for segOff[s+1] <= i {
			s++
		}
		acc[s-s0] += f(i)
	}
}

// SortW sorts xs with the strict-weak order less, using a fixed-grain
// parallel merge sort: leaf chunks of sortGrain elements are sorted
// independently, then pairwise-merged over log(n/sortGrain) rounds with the
// independent merges of each round running in parallel. The leaf layout and
// merge schedule depend only on len(xs), so the resulting order — including
// the relative order of less-equal elements — is identical for every worker
// count.
func SortW[T any](workers int, xs []T, less func(a, b T) bool) {
	m := len(xs)
	numChunks := (m + sortGrain - 1) / sortGrain
	if numChunks <= 1 {
		sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	// runTasks directly: the parallel grain here is the chunk count, which
	// is far below the element-count SequentialThreshold that ForW applies.
	p := resolve(workers)
	runTasks(p, numChunks, func(c int) {
		lo := c * sortGrain
		hi := lo + sortGrain
		if hi > m {
			hi = m
		}
		s := xs[lo:hi]
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
	})
	buf := make([]T, m)
	src, dst := xs, buf
	for width := sortGrain; width < m; width *= 2 {
		numPairs := (m + 2*width - 1) / (2 * width)
		w := width
		s, d := src, dst
		runTasks(p, numPairs, func(pi int) {
			lo := pi * 2 * w
			mid := lo + w
			hi := lo + 2*w
			if mid > m {
				mid = m
			}
			if hi > m {
				hi = m
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				// !less(s[j], s[i]) keeps the left run first on ties: a
				// stable merge with a schedule-independent result.
				if !less(s[j], s[i]) {
					d[k] = s[i]
					i++
				} else {
					d[k] = s[j]
					j++
				}
				k++
			}
			k += copy(d[k:hi], s[i:mid])
			copy(d[k:hi], s[j:hi])
		})
		src, dst = dst, src
	}
	if m > 0 && &src[0] != &xs[0] {
		copy(xs, src)
	}
}

// Sort is SortW with the default worker count.
func Sort[T any](xs []T, less func(a, b T) bool) { SortW(0, xs, less) }

// sortGrain is the fixed leaf size of SortW's merge sort; like reduceGrain
// it depends only on the input length so sorted order is reproducible across
// worker counts.
const sortGrain = 4096
