// Package par provides the parallel primitives used throughout parlap:
// parallel for-loops, reductions, prefix sums and chunked map operations.
//
// All primitives are deterministic with respect to their results (reductions
// use a fixed tree shape) and degrade gracefully to sequential execution for
// small inputs, where goroutine overhead would dominate. The number of
// workers defaults to runtime.GOMAXPROCS(0).
package par

import (
	"runtime"
	"sync"
)

// SequentialThreshold is the input size below which the primitives run
// sequentially. Chosen so that goroutine spawn cost (~1µs) stays well under
// the per-element work it amortizes.
const SequentialThreshold = 2048

// Workers returns the number of workers parallel primitives will use.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs body(i) for every i in [0, n) using up to Workers() goroutines.
// body must be safe to call concurrently for distinct i.
func For(n int, body func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and runs body(lo, hi) on
// each chunk in parallel. It is the preferred form when the body has
// per-chunk setup cost (e.g. a local buffer).
func ForChunked(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if n < SequentialThreshold || p == 1 {
		body(0, n)
		return
	}
	// Use more chunks than workers for load balance on skewed bodies.
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// ReduceFloat64 computes the reduction of f(i) over [0, n) with the
// associative combiner op and identity element id. The combining tree shape
// is fixed (per-chunk sequential folds combined in chunk order), so results
// are deterministic for a fixed n and GOMAXPROCS-independent when op is
// exactly associative (e.g. min/max, integer add).
func ReduceFloat64(n int, id float64, f func(i int) float64, op func(a, b float64) float64) float64 {
	if n <= 0 {
		return id
	}
	p := Workers()
	if n < SequentialThreshold || p == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	numChunks := (n + chunkSize - 1) / chunkSize
	partial := make([]float64, numChunks)
	var wg sync.WaitGroup
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, f(i))
			}
			partial[c] = acc
		}(c, lo, hi)
	}
	wg.Wait()
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// SumFloat64 returns the sum of f(i) over [0, n).
func SumFloat64(n int, f func(i int) float64) float64 {
	return ReduceFloat64(n, 0, f, func(a, b float64) float64 { return a + b })
}

// ReduceInt computes the reduction of f(i) over [0, n) with combiner op.
func ReduceInt(n int, id int, f func(i int) int, op func(a, b int) int) int {
	if n <= 0 {
		return id
	}
	p := Workers()
	if n < SequentialThreshold || p == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	numChunks := (n + chunkSize - 1) / chunkSize
	partial := make([]int, numChunks)
	var wg sync.WaitGroup
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, f(i))
			}
			partial[c] = acc
		}(c, lo, hi)
	}
	wg.Wait()
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// SumInt returns the sum of f(i) over [0, n).
func SumInt(n int, f func(i int) int) int {
	return ReduceInt(n, 0, f, func(a, b int) int { return a + b })
}

// MaxInt returns the maximum of f(i) over [0, n), or id if n <= 0.
func MaxInt(n int, id int, f func(i int) int) int {
	return ReduceInt(n, id, f, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
}

// PrefixSumInt computes the exclusive prefix sum of src into a new slice of
// length len(src)+1: out[0]=0, out[i+1]=out[i]+src[i]. The final element is
// the total. Runs in O(n) work and O(log n)-style two-pass depth.
func PrefixSumInt(src []int) []int {
	n := len(src)
	out := make([]int, n+1)
	if n == 0 {
		return out
	}
	p := Workers()
	if n < SequentialThreshold || p == 1 {
		acc := 0
		for i, v := range src {
			out[i] = acc
			acc += v
		}
		out[n] = acc
		return out
	}
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	numChunks := (n + chunkSize - 1) / chunkSize
	sums := make([]int, numChunks)
	// Pass 1: per-chunk totals.
	var wg sync.WaitGroup
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			s := 0
			for i := lo; i < hi; i++ {
				s += src[i]
			}
			sums[c] = s
		}(c, lo, hi)
	}
	wg.Wait()
	// Scan chunk totals sequentially (numChunks is small).
	acc := 0
	for c := 0; c < numChunks; c++ {
		s := sums[c]
		sums[c] = acc
		acc += s
	}
	out[n] = acc
	// Pass 2: per-chunk local scans offset by the chunk's base.
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			a := sums[c]
			for i := lo; i < hi; i++ {
				out[i] = a
				a += src[i]
			}
		}(c, lo, hi)
	}
	wg.Wait()
	return out
}

// FilterIndex returns, in increasing order, all i in [0, n) with keep(i).
// It uses a parallel count + prefix-sum + scatter, the standard PRAM pack.
func FilterIndex(n int, keep func(i int) bool) []int {
	if n <= 0 {
		return nil
	}
	p := Workers()
	if n < SequentialThreshold || p == 1 {
		var out []int
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, i)
			}
		}
		return out
	}
	chunks := p * 4
	if chunks > n {
		chunks = n
	}
	chunkSize := (n + chunks - 1) / chunks
	numChunks := (n + chunkSize - 1) / chunkSize
	counts := make([]int, numChunks)
	var wg sync.WaitGroup
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			cnt := 0
			for i := lo; i < hi; i++ {
				if keep(i) {
					cnt++
				}
			}
			counts[c] = cnt
		}(c, lo, hi)
	}
	wg.Wait()
	offsets := make([]int, numChunks+1)
	for c := 0; c < numChunks; c++ {
		offsets[c+1] = offsets[c] + counts[c]
	}
	out := make([]int, offsets[numChunks])
	for c := 0; c < numChunks; c++ {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			at := offsets[c]
			for i := lo; i < hi; i++ {
				if keep(i) {
					out[at] = i
					at++
				}
			}
		}(c, lo, hi)
	}
	wg.Wait()
	return out
}
