package par

import (
	"math/rand"
	"testing"
)

// The segmented primitives back the multi-component masked projection: their
// contract is bitwise reproducibility across worker counts, including the
// sequential workers=1 path, for every segment shape (empty segments, one
// giant segment, grain-straddling segments).

func randSegments(rng *rand.Rand, n, numSeg int) []int {
	cnt := make([]int, numSeg)
	for i := 0; i < n; i++ {
		cnt[rng.Intn(numSeg)]++
	}
	// A few empty segments on purpose: move counts away from random victims.
	if numSeg > 3 {
		cnt[1] += cnt[numSeg-2]
		cnt[numSeg-2] = 0
	}
	off := make([]int, numSeg+1)
	for s, c := range cnt {
		off[s+1] = off[s] + c
	}
	return off
}

func TestPackByKeyWMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 17, SequentialThreshold - 1, 3 * SequentialThreshold, 50000} {
		numKeys := 1 + rng.Intn(37)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(numKeys)
		}
		key := func(i int) int { return keys[i] }
		refOff, refOrder := PackByKeyW(1, n, numKeys, key)
		for _, w := range []int{0, 2, 3, 4, 7} {
			off, order := PackByKeyW(w, n, numKeys, key)
			if len(off) != len(refOff) || len(order) != len(refOrder) {
				t.Fatalf("n=%d workers=%d: shape mismatch", n, w)
			}
			for k := range off {
				if off[k] != refOff[k] {
					t.Fatalf("n=%d workers=%d: off[%d]=%d want %d", n, w, k, off[k], refOff[k])
				}
			}
			for i := range order {
				if order[i] != refOrder[i] {
					t.Fatalf("n=%d workers=%d: order[%d]=%d want %d", n, w, i, order[i], refOrder[i])
				}
			}
		}
		// Stability + completeness: within each key the indices ascend.
		for k := 0; k < numKeys; k++ {
			for i := refOff[k]; i < refOff[k+1]; i++ {
				if keys[refOrder[i]] != k {
					t.Fatalf("order[%d]=%d has key %d, want %d", i, refOrder[i], keys[refOrder[i]], k)
				}
				if i > refOff[k] && refOrder[i] <= refOrder[i-1] {
					t.Fatalf("key %d not stable at %d", k, i)
				}
			}
		}
	}
}

func TestSegmentedSumWorkerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 100, reduceGrain, reduceGrain + 1, 5*reduceGrain + 123} {
		for _, numSeg := range []int{1, 2, 9, 64} {
			off := randSegments(rng, n, numSeg)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			f := func(i int) float64 { return xs[i] }
			ref := SegmentedSumFloat64W(1, off, f)
			// Sanity: totals match a plain deterministic sum of everything.
			tot := 0.0
			for _, v := range ref {
				tot += v
			}
			plain := 0.0
			for _, v := range xs {
				plain += v
			}
			if n > 0 && tot != 0 && abs(tot-plain) > 1e-9*abs(plain)+1e-12 {
				t.Fatalf("n=%d segs=%d: segment totals %.17g vs plain %.17g", n, numSeg, tot, plain)
			}
			for _, w := range []int{0, 2, 4, 5} {
				got := SegmentedSumFloat64W(w, off, f)
				for s := range ref {
					if got[s] != ref[s] {
						t.Fatalf("n=%d segs=%d workers=%d: segment %d %.17g != %.17g",
							n, numSeg, w, s, got[s], ref[s])
					}
				}
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSegmentedSumBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, numSeg, k := 3*reduceGrain+77, 13, 5
	off := randSegments(rng, n, numSeg)
	cols := make([][]float64, k)
	for c := range cols {
		cols[c] = make([]float64, n)
		for i := range cols[c] {
			cols[c][i] = rng.NormFloat64()
		}
	}
	for _, w := range []int{1, 0, 3} {
		batch := SegmentedSumFloat64BatchW(w, k, off, func(i, c int) float64 { return cols[c][i] })
		for c := 0; c < k; c++ {
			single := SegmentedSumFloat64W(w, off, func(i int) float64 { return cols[c][i] })
			for s := 0; s < numSeg; s++ {
				if batch[s*k+c] != single[s] {
					t.Fatalf("workers=%d col=%d seg=%d: batch %.17g != single %.17g",
						w, c, s, batch[s*k+c], single[s])
				}
			}
		}
	}
}
