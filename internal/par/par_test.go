package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, SequentialThreshold - 1, SequentialThreshold, 100000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	n := 50000
	seen := make([]int32, n)
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("Do did not run all functions: %d %d %d", a, b, c)
	}
}

func TestDoSingle(t *testing.T) {
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single Do did not run")
	}
}

func TestSumInt(t *testing.T) {
	for _, n := range []int{0, 1, 100, 10000} {
		got := SumInt(n, func(i int) int { return i })
		want := n * (n - 1) / 2
		if got != want {
			t.Fatalf("SumInt(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSumFloat64MatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	got := SumFloat64(n, func(i int) float64 { return xs[i] })
	seq := 0.0
	for _, v := range xs {
		seq += v
	}
	if diff := got - seq; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("parallel sum %v differs from sequential %v", got, seq)
	}
}

func TestMaxInt(t *testing.T) {
	xs := []int{3, 9, 2, 9, 1}
	got := MaxInt(len(xs), -1, func(i int) int { return xs[i] })
	if got != 9 {
		t.Fatalf("MaxInt = %d, want 9", got)
	}
	if got := MaxInt(0, -5, nil); got != -5 {
		t.Fatalf("MaxInt empty = %d, want -5", got)
	}
}

func TestPrefixSumIntSmall(t *testing.T) {
	src := []int{3, 1, 4, 1, 5}
	out := PrefixSumInt(src)
	want := []int{0, 3, 4, 8, 9, 14}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestPrefixSumIntLargeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100000
	src := make([]int, n)
	for i := range src {
		src[i] = rng.Intn(10)
	}
	out := PrefixSumInt(src)
	acc := 0
	for i := 0; i < n; i++ {
		if out[i] != acc {
			t.Fatalf("prefix[%d] = %d, want %d", i, out[i], acc)
		}
		acc += src[i]
	}
	if out[n] != acc {
		t.Fatalf("total = %d, want %d", out[n], acc)
	}
}

func TestPrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		src := make([]int, len(raw))
		for i, v := range raw {
			src[i] = int(v)
		}
		out := PrefixSumInt(src)
		acc := 0
		for i := range src {
			if out[i] != acc {
				return false
			}
			acc += src[i]
		}
		return out[len(src)] == acc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterIndex(t *testing.T) {
	got := FilterIndex(10, func(i int) bool { return i%3 == 0 })
	want := []int{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("FilterIndex = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FilterIndex = %v, want %v", got, want)
		}
	}
}

func TestFilterIndexLargeSortedAndComplete(t *testing.T) {
	n := 100000
	got := FilterIndex(n, func(i int) bool { return i%7 == 0 })
	want := 0
	for i := 0; i < n; i += 7 {
		if got[want] != i {
			t.Fatalf("element %d = %d, want %d", want, got[want], i)
		}
		want++
	}
	if len(got) != want {
		t.Fatalf("len = %d, want %d", len(got), want)
	}
}

func TestFilterIndexEmpty(t *testing.T) {
	if got := FilterIndex(0, nil); len(got) != 0 {
		t.Fatalf("FilterIndex(0) = %v", got)
	}
	if got := FilterIndex(100000, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("all-false filter returned %d elements", len(got))
	}
}

func TestReduceIntDeterministic(t *testing.T) {
	n := 500000
	a := ReduceInt(n, 0, func(i int) int { return i % 17 }, func(a, b int) int { return a + b })
	b := ReduceInt(n, 0, func(i int) int { return i % 17 }, func(a, b int) int { return a + b })
	if a != b {
		t.Fatalf("two identical reductions differ: %d vs %d", a, b)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	n := 1 << 20
	dst := make([]float64, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(n, func(j int) { dst[j] = float64(j) * 1.5 })
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	n := 1 << 20
	src := make([]int, n)
	for i := range src {
		src[i] = i & 7
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PrefixSumInt(src)
	}
}

// halfEdgePackRef is the classic sequential cursor scatter HalfEdgePackW
// must reproduce for every worker count.
func halfEdgePackRef(n, m int, ends func(i int) (u, v int)) (off, pos []int) {
	deg := make([]int, n)
	for i := 0; i < m; i++ {
		u, v := ends(i)
		deg[u]++
		deg[v]++
	}
	off = make([]int, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	cursor := make([]int, n)
	copy(cursor, off[:n])
	pos = make([]int, 2*m)
	for i := 0; i < m; i++ {
		u, v := ends(i)
		pos[2*i] = cursor[u]
		cursor[u]++
		pos[2*i+1] = cursor[v]
		cursor[v]++
	}
	return off, pos
}

func TestHalfEdgePackMatchesSequentialScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ n, m int }{
		{0, 0}, {1, 0}, {5, 3}, {100, 257},
		{300, SequentialThreshold + 500}, {37, 20000},
	} {
		us := make([]int, tc.m)
		vs := make([]int, tc.m)
		for i := range us {
			us[i] = rng.Intn(tc.n)
			if i%11 == 0 {
				vs[i] = us[i] // self-loop: two slots at one vertex
			} else {
				vs[i] = rng.Intn(tc.n)
			}
		}
		ends := func(i int) (int, int) { return us[i], vs[i] }
		wantOff, wantPos := halfEdgePackRef(tc.n, tc.m, ends)
		for _, w := range []int{1, 0, 2, 4} {
			off, pos := HalfEdgePackW(w, tc.n, tc.m, ends)
			for i := range wantOff {
				if off[i] != wantOff[i] {
					t.Fatalf("n=%d m=%d workers=%d: off[%d] = %d, want %d", tc.n, tc.m, w, i, off[i], wantOff[i])
				}
			}
			for i := range wantPos {
				if pos[i] != wantPos[i] {
					t.Fatalf("n=%d m=%d workers=%d: pos[%d] = %d, want %d", tc.n, tc.m, w, i, pos[i], wantPos[i])
				}
			}
		}
	}
}
