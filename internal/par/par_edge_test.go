package par

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// workerSet is the worker-count grid every cross-worker test sweeps. 0 is
// the GOMAXPROCS default; the rest force explicit counts regardless of the
// machine (goroutines still interleave on one core, which is exactly what
// the -race runs need).
var workerSet = []int{0, 1, 2, 3, 4, 8}

// boundarySizes straddles the fixed reduction grain and the sequential
// threshold, where chunk-count logic has off-by-one hazards.
var boundarySizes = []int{0, 1, 2, SequentialThreshold - 1, SequentialThreshold,
	SequentialThreshold + 1, reduceGrain - 1, reduceGrain, reduceGrain + 1,
	2*reduceGrain - 1, 2 * reduceGrain, 2*reduceGrain + 1, 3*reduceGrain + 17}

func TestForWEdgeSizes(t *testing.T) {
	for _, w := range workerSet {
		for _, n := range boundarySizes {
			seen := make([]int32, n)
			var mu sync.Mutex
			ForW(w, n, func(i int) {
				mu.Lock()
				seen[i]++
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestSumFloat64WBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range boundarySizes {
		xs := make([]float64, n)
		for i := range xs {
			// Values spread over magnitudes so summation order matters.
			xs[i] = rng.NormFloat64() * float64(int64(1)<<(uint(i)%40))
		}
		ref := SumFloat64W(1, n, func(i int) float64 { return xs[i] })
		for _, w := range workerSet {
			got := SumFloat64W(w, n, func(i int) float64 { return xs[i] })
			if got != ref {
				t.Fatalf("n=%d workers=%d: sum %v differs from workers=1 sum %v", n, w, got, ref)
			}
		}
	}
}

func TestReduceFloat64WMinMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 3*reduceGrain + 5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	seqMin := xs[0]
	for _, v := range xs[1:] {
		if v < seqMin {
			seqMin = v
		}
	}
	minOp := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	for _, w := range workerSet {
		got := ReduceFloat64W(w, n, xs[0], func(i int) float64 { return xs[i] }, minOp)
		if got != seqMin {
			t.Fatalf("workers=%d: min = %v, want %v", w, got, seqMin)
		}
	}
	if got := MinFloat64(n, xs[0], func(i int) float64 { return xs[i] }); got != seqMin {
		t.Fatalf("MinFloat64 = %v, want %v", got, seqMin)
	}
}

func TestScanWEdgeSizesAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range boundarySizes {
		src := make([]int, n)
		for i := range src {
			src[i] = rng.Intn(9)
		}
		want := make([]int, n+1)
		for i := 0; i < n; i++ {
			want[i+1] = want[i] + src[i]
		}
		for _, w := range workerSet {
			out := ScanW(w, src)
			if len(out) != n+1 {
				t.Fatalf("workers=%d n=%d: len(out)=%d", w, n, len(out))
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("workers=%d n=%d: out[%d]=%d want %d", w, n, i, out[i], want[i])
				}
			}
		}
	}
}

func TestFilterIndexWEdgeSizesAcrossWorkers(t *testing.T) {
	for _, n := range boundarySizes {
		for _, w := range workerSet {
			got := FilterIndexW(w, n, func(i int) bool { return i%5 == 2 })
			want := 0
			for i := 2; i < n; i += 5 {
				if want >= len(got) || got[want] != i {
					t.Fatalf("workers=%d n=%d: element %d wrong", w, n, want)
				}
				want++
			}
			if len(got) != want {
				t.Fatalf("workers=%d n=%d: len=%d want %d", w, n, len(got), want)
			}
		}
	}
}

func TestSortWAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{0, 1, 2, sortGrain - 1, sortGrain, sortGrain + 1,
		2*sortGrain + 3, 5*sortGrain + 11} {
		base := make([]int, n)
		for i := range base {
			base[i] = rng.Intn(50) // many duplicate keys
		}
		ref := append([]int(nil), base...)
		SortW(1, ref, func(a, b int) bool { return a < b })
		if !sort.IntsAreSorted(ref) {
			t.Fatalf("n=%d: workers=1 output not sorted", n)
		}
		for _, w := range workerSet {
			xs := append([]int(nil), base...)
			SortW(w, xs, func(a, b int) bool { return a < b })
			for i := range xs {
				if xs[i] != ref[i] {
					t.Fatalf("n=%d workers=%d: order diverges at %d", n, w, i)
				}
			}
		}
	}
}

// --- panic propagation ---

func mustPanic(t *testing.T, wantVal any, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic, got none")
		}
		if wantVal != nil && r != wantVal {
			t.Fatalf("panic value = %v, want %v", r, wantVal)
		}
	}()
	fn()
}

func TestForWPanicPropagatesParallel(t *testing.T) {
	n := 4 * SequentialThreshold
	for _, w := range []int{1, 2, 8} {
		mustPanic(t, "boom", func() {
			ForW(w, n, func(i int) {
				if i == n/2 {
					panic("boom")
				}
			})
		})
	}
}

func TestReducePanicPropagates(t *testing.T) {
	n := 3 * reduceGrain
	mustPanic(t, "reduce-boom", func() {
		SumFloat64W(4, n, func(i int) float64 {
			if i == n-1 {
				panic("reduce-boom")
			}
			return 1
		})
	})
}

func TestScanUsableAfterPanic(t *testing.T) {
	// A panicked parallel call must not wedge the primitives for later use.
	n := 3 * reduceGrain
	func() {
		defer func() { recover() }()
		ForW(4, n, func(i int) { panic("first") })
	}()
	src := make([]int, n)
	for i := range src {
		src[i] = 1
	}
	out := ScanW(4, src)
	if out[n] != n {
		t.Fatalf("total = %d, want %d", out[n], n)
	}
}

// --- race stress (meaningful under go test -race) ---

func TestConcurrentPrimitivesStress(t *testing.T) {
	n := 4 * reduceGrain
	src := make([]int, n)
	xs := make([]float64, n)
	for i := range src {
		src[i] = i & 15
		xs[i] = float64(i%97) * 0.5
	}
	wantSum := SumFloat64W(1, n, func(i int) float64 { return xs[i] })
	wantScan := ScanW(1, src)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				dst := make([]float64, n)
				ForChunkedW(2+g%3, n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						dst[i] = 2 * xs[i]
					}
				})
				if s := SumFloat64W(1+g%4, n, func(i int) float64 { return xs[i] }); s != wantSum {
					t.Errorf("goroutine %d: sum %v != %v", g, s, wantSum)
					return
				}
				out := ScanW(1+g%4, src)
				if out[n] != wantScan[n] {
					t.Errorf("goroutine %d: scan total %d != %d", g, out[n], wantScan[n])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
