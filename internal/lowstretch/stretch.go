package lowstretch

import (
	"math"
	"math/rand"

	"parlap/internal/graph"
	"parlap/internal/par"
)

// StretchStats aggregates per-edge stretches of a graph's edges with
// respect to a subgraph.
type StretchStats struct {
	Total   float64
	Average float64
	Max     float64
	Edges   int
}

// TreeIndex supports O(1) tree-distance queries on a spanning forest via
// Euler tour + sparse-table LCA — the standard exact method for measuring
// total stretch in O((n+m) log n).
type TreeIndex struct {
	n      int
	comp   []int32   // forest component per vertex
	wdepth []float64 // weighted depth from component root
	first  []int32   // first occurrence in the Euler tour
	tour   []int32   // Euler tour of vertices
	depth  []int32   // hop depth per vertex
	table  [][]int32 // sparse table over tour positions (argmin by depth)
	log2   []int8
}

// NewTreeIndex builds the index for the forest formed by treeEdges (edge
// ids into g). Weights are lengths.
func NewTreeIndex(g *graph.Graph, treeEdges []int) *TreeIndex {
	n := g.N
	// Forest adjacency.
	type half struct {
		to int32
		w  float64
	}
	adj := make([][]half, n)
	for _, id := range treeEdges {
		e := g.Edges[id]
		adj[e.U] = append(adj[e.U], half{int32(e.V), e.W})
		adj[e.V] = append(adj[e.V], half{int32(e.U), e.W})
	}
	ti := &TreeIndex{
		n:      n,
		comp:   make([]int32, n),
		wdepth: make([]float64, n),
		first:  make([]int32, n),
		depth:  make([]int32, n),
	}
	for i := range ti.comp {
		ti.comp[i] = -1
	}
	// Iterative Euler tour per root.
	var compID int32
	type frame struct {
		v    int32
		next int
	}
	for root := 0; root < n; root++ {
		if ti.comp[root] >= 0 {
			continue
		}
		ti.comp[root] = compID
		ti.depth[root] = 0
		ti.wdepth[root] = 0
		ti.first[root] = int32(len(ti.tour))
		ti.tour = append(ti.tour, int32(root))
		stack := []frame{{int32(root), 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next >= len(adj[f.v]) {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					ti.tour = append(ti.tour, stack[len(stack)-1].v)
				}
				continue
			}
			h := adj[f.v][f.next]
			f.next++
			if ti.comp[h.to] >= 0 {
				continue
			}
			ti.comp[h.to] = compID
			ti.depth[h.to] = ti.depth[f.v] + 1
			ti.wdepth[h.to] = ti.wdepth[f.v] + h.w
			ti.first[h.to] = int32(len(ti.tour))
			ti.tour = append(ti.tour, h.to)
			stack = append(stack, frame{h.to, 0})
		}
		compID++
	}
	// Sparse table of argmin-depth over the tour.
	m := len(ti.tour)
	ti.log2 = make([]int8, m+1)
	for i := 2; i <= m; i++ {
		ti.log2[i] = ti.log2[i/2] + 1
	}
	levels := int(ti.log2[m]) + 1
	if m == 0 {
		levels = 1
	}
	ti.table = make([][]int32, levels)
	base := make([]int32, m)
	for i := range base {
		base[i] = int32(i)
	}
	ti.table[0] = base
	for l := 1; l < levels; l++ {
		span := 1 << l
		row := make([]int32, m-span+1)
		prev := ti.table[l-1]
		half := span / 2
		for i := range row {
			a, b := prev[i], prev[i+half]
			if ti.depth[ti.tour[a]] <= ti.depth[ti.tour[b]] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		ti.table[l] = row
	}
	return ti
}

// LCA returns the lowest common ancestor of u and v, or -1 if they lie in
// different forest components.
func (ti *TreeIndex) LCA(u, v int) int {
	if ti.comp[u] != ti.comp[v] {
		return -1
	}
	a, b := ti.first[u], ti.first[v]
	if a > b {
		a, b = b, a
	}
	l := ti.log2[b-a+1]
	span := int32(1) << l
	x, y := ti.table[l][a], ti.table[l][b-span+1]
	if ti.depth[ti.tour[x]] <= ti.depth[ti.tour[y]] {
		return int(ti.tour[x])
	}
	return int(ti.tour[y])
}

// Dist returns the tree path length between u and v (+Inf across
// components).
func (ti *TreeIndex) Dist(u, v int) float64 {
	l := ti.LCA(u, v)
	if l < 0 {
		return math.Inf(1)
	}
	return ti.wdepth[u] + ti.wdepth[v] - 2*ti.wdepth[l]
}

// TreeStretch computes the exact stretch of every edge of g with respect to
// the spanning forest treeEdges: str(e) = d_T(u,v)/w(e). Edges across
// forest components (impossible for spanning forests of g) contribute +Inf.
func TreeStretch(g *graph.Graph, treeEdges []int) ([]float64, StretchStats) {
	return TreeStretchW(0, g, treeEdges)
}

// TreeStretchW is TreeStretch with an explicit worker count.
func TreeStretchW(workers int, g *graph.Graph, treeEdges []int) ([]float64, StretchStats) {
	ti := NewTreeIndex(g, treeEdges)
	m := len(g.Edges)
	str := make([]float64, m)
	par.ForChunkedW(workers, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			if e.W <= 0 {
				str[i] = 1
				continue
			}
			str[i] = ti.Dist(e.U, e.V) / e.W
		}
	})
	return str, summarizeW(workers, str)
}

// SubgraphStretchExact computes the exact stretch of every edge of g with
// respect to the subgraph formed by edge ids sub, via a bounded Dijkstra per
// edge. Exact but O(m · m̂ log n) in the worst case — intended for
// correctness tests and small experiment instances.
func SubgraphStretchExact(g *graph.Graph, sub []int) ([]float64, StretchStats) {
	h := subgraphOf(g, sub)
	m := len(g.Edges)
	str := make([]float64, m)
	par.ForChunked(m, func(lo, hi int) {
		buf := h.NewDistBuffer() // one epoch-stamped scratch per chunk
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			d := h.DijkstraToBuf(buf, e.U, e.V)
			if e.W <= 0 {
				str[i] = 1
			} else {
				str[i] = d / e.W
			}
		}
	})
	return str, summarize(str)
}

// SubgraphStretchSampled estimates the average and max stretch of g's edges
// w.r.t. the subgraph by sampling k edges uniformly. Returned stats
// extrapolate Total = Average·m.
func SubgraphStretchSampled(g *graph.Graph, sub []int, k int, rng *rand.Rand) StretchStats {
	h := subgraphOf(g, sub)
	m := len(g.Edges)
	if k > m {
		k = m
	}
	idx := rng.Perm(m)[:k]
	str := make([]float64, k)
	par.ForChunked(k, func(lo, hi int) {
		buf := h.NewDistBuffer() // one epoch-stamped scratch per chunk
		for i := lo; i < hi; i++ {
			e := g.Edges[idx[i]]
			d := h.DijkstraToBuf(buf, e.U, e.V)
			if e.W <= 0 {
				str[i] = 1
			} else {
				str[i] = d / e.W
			}
		}
	})
	st := summarize(str)
	st.Total = st.Average * float64(m)
	st.Edges = m
	return st
}

func subgraphOf(g *graph.Graph, sub []int) *graph.Graph {
	edges := make([]graph.Edge, len(sub))
	for i, id := range sub {
		edges[i] = g.Edges[id]
	}
	return graph.FromEdges(g.N, edges)
}

func summarize(str []float64) StretchStats { return summarizeW(0, str) }

func summarizeW(workers int, str []float64) StretchStats {
	st := StretchStats{Edges: len(str)}
	st.Total = par.SumFloat64W(workers, len(str), func(i int) float64 { return str[i] })
	st.Max = par.ReduceFloat64W(workers, len(str), 0, func(i int) float64 { return str[i] },
		math.Max)
	if len(str) > 0 {
		st.Average = st.Total / float64(len(str))
	}
	return st
}
