package lowstretch

import (
	"math"
	"math/rand"
	"sort"

	"parlap/internal/decomp"
	"parlap/internal/graph"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// Subgraph is the output of the ultra-sparse constructions: a spanning
// forest plus a small set of extra edges, all referencing g's edge ids.
type Subgraph struct {
	Tree  []int // spanning-forest edge ids
	Extra []int // survivor edges (stretch 1 by construction) + well-spacing returns
	Stats *Stats
}

// EdgeIDs returns the deduplicated union of tree and extra edges.
func (s *Subgraph) EdgeIDs() []int {
	seen := make(map[int]bool, len(s.Tree)+len(s.Extra))
	var out []int
	for _, lists := range [2][]int{s.Tree, s.Extra} {
		for _, id := range lists {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Graph materializes the subgraph Ĝ over g's vertex set.
func (s *Subgraph) Graph(g *graph.Graph) *graph.Graph {
	ids := s.EdgeIDs()
	edges := make([]graph.Edge, len(ids))
	for i, id := range ids {
		edges[i] = g.Edges[id]
	}
	return graph.FromEdges(g.N, edges)
}

// SparseAKPW is the Section 5.2.1 construction: Algorithm 5.1 modified to
// (1) keep only the λ most recent weight classes distinct, folding older
// classes into a generic bucket, and (2) emit the class-i edges still alive
// at iteration i+λ directly into the output subgraph (where their stretch
// is 1). The result is an ultra-sparse subgraph rather than a tree — the
// form the parallel solver needs (Lemma 6.2).
func SparseAKPW(g *graph.Graph, p Params, rng *rand.Rand, rec *wd.Recorder) (*Subgraph, *Stats) {
	st, maxClass := newAKPWState(p.Workers, g, p.Z)
	stats := &Stats{MaxClass: maxClass}
	rho := int(p.Z / 4)
	if rho < 1 {
		rho = 1
	}
	lambda := p.Lambda
	if lambda < 1 {
		lambda = 1
	}
	var tree, extra []int
	maxIters := maxClass + p.tau(g.N) + p.MaxExtraIters
	for j := 1; j <= maxIters; j++ {
		if len(st.cur.Edges) == 0 {
			break
		}
		// Retire class j−λ: emit survivors into Ĝ and fold into the generic
		// bucket (class 0).
		retire := j - lambda
		if retire >= 1 {
			for id, c := range st.class {
				if c == retire {
					extra = append(extra, st.origID[id])
					st.class[id] = 0
				}
			}
		}
		jj := j
		// Active: generic bucket plus live classes ≤ j. Class labels for
		// validation: generic → 0, class c → c − (j−λ).
		anyActive := false
		for id, c := range st.class {
			if c <= jj && st.cur.Edges[id].U != st.cur.Edges[id].V {
				anyActive = true
				_ = id
				break
			}
		}
		if !anyActive {
			continue
		}
		cut := st.iterate(rho,
			func(ce int) bool { return st.class[ce] <= jj },
			func(ce int) int {
				c := st.class[ce]
				if c == 0 {
					return 0
				}
				l := c - (jj - lambda)
				if l < 0 {
					l = 0
				}
				return l
			},
			lambda+1, p.Decomp, rng, rec, &tree)
		stats.Iterations++
		stats.CutPerIter = append(stats.CutPerIter, cut)
	}
	// Any edges remaining after the iteration cap join the output verbatim
	// (stretch 1), mirroring the emission rule.
	for id := range st.cur.Edges {
		if st.cur.Edges[id].U != st.cur.Edges[id].V {
			extra = append(extra, st.origID[id])
		}
	}
	tree = patchSpanning(g, tree, stats)
	stats.TreeEdges = len(tree)
	stats.ExtraEdges = len(extra)
	if rec != nil {
		stats.Work, stats.Depth = rec.Work(), rec.Depth()
	}
	sort.Ints(tree)
	return &Subgraph{Tree: tree, Extra: extra, Stats: stats}, stats
}

// WellSpacing is the outcome of the Lemma 5.7 transform.
type WellSpacing struct {
	Removed []int // edge ids deleted from g (returned to Ĝ at the end)
	Keep    []bool
	Special []int // special class indices (each preceded by ≥ τ empty classes)
}

// WellSpace deletes at most θ·|E| edges so that the remaining classes are
// (4τ/θ, τ)-well-spaced: classes are grouped into runs of ⌈τ/θ⌉, and within
// each group the lightest-population window of τ consecutive classes is
// removed, making the class after it "special" (Lemma 5.7). Runs in O(m)
// work and O(log n)-style depth (a bucket count plus a prefix scan).
func WellSpace(g *graph.Graph, z float64, tau int, theta float64) *WellSpacing {
	if theta <= 0 || theta >= 1 {
		theta = 0.25
	}
	if tau < 1 {
		tau = 1
	}
	wmin := math.Inf(1)
	for _, e := range g.Edges {
		if e.W > 0 && e.W < wmin {
			wmin = e.W
		}
	}
	if math.IsInf(wmin, 1) {
		wmin = 1
	}
	maxClass := 1
	class := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		class[i] = classOf(e.W, wmin, z)
		if class[i] > maxClass {
			maxClass = class[i]
		}
	}
	count := make([]int, maxClass+2)
	for _, c := range class {
		count[c]++
	}
	groupLen := int(math.Ceil(float64(tau) / theta))
	if groupLen < tau {
		groupLen = tau
	}
	ws := &WellSpacing{Keep: make([]bool, len(g.Edges))}
	for i := range ws.Keep {
		ws.Keep[i] = true
	}
	removedClass := make([]bool, maxClass+2)
	for lo := 1; lo <= maxClass; lo += groupLen {
		hi := lo + groupLen - 1
		if hi > maxClass {
			hi = maxClass
		}
		if hi-lo+1 < tau {
			continue // trailing stub group: too short to host a window
		}
		groupEdges := 0
		for c := lo; c <= hi; c++ {
			groupEdges += count[c]
		}
		// Lightest window of τ consecutive classes within [lo, hi].
		winSum := 0
		for c := lo; c < lo+tau; c++ {
			winSum += count[c]
		}
		best, bestAt := winSum, lo
		for s := lo + 1; s+tau-1 <= hi; s++ {
			winSum += count[s+tau-1] - count[s-1]
			if winSum < best {
				best, bestAt = winSum, s
			}
		}
		// By averaging, best ≤ θ·groupEdges whenever the group holds
		// ⌊len/τ⌋ ≥ 1/θ disjoint windows; for stub-sized groups we still
		// remove the lightest window (possibly above budget, still correct —
		// removed edges are returned to Ĝ verbatim).
		_ = groupEdges
		for c := bestAt; c < bestAt+tau; c++ {
			removedClass[c] = true
		}
		if bestAt+tau <= maxClass {
			ws.Special = append(ws.Special, bestAt+tau)
		}
	}
	for i, c := range class {
		if removedClass[c] {
			ws.Keep[i] = false
			ws.Removed = append(ws.Removed, i)
		}
	}
	return ws
}

// LSSubgraph is the Theorem 5.9 construction: well-space the graph, run
// SparseAKPW independently (and in parallel) on each well-spaced segment of
// weight classes — each segment's starting vertex set is recovered by
// contracting all lighter kept edges, which is valid because classes below a
// special bucket are fully contracted by then (Lemma 5.8) — and return the
// union plus the removed edges.
//
// The recorder is charged the maximum depth over segments (they run in
// parallel) and the sum of their work.
func LSSubgraph(g *graph.Graph, p Params, rng *rand.Rand, rec *wd.Recorder) (*Subgraph, *Stats) {
	tau := p.tau(g.N)
	ws := WellSpace(g, p.Z, tau, p.Theta)
	// Segment boundaries: class 1 plus every special class.
	bounds := append([]int{1}, ws.Special...)
	segRecs := make([]*wd.Recorder, len(bounds))
	segSubs := make([]*Subgraph, len(bounds))
	segOrig := make([][]int, len(bounds)) // segment edge id -> g edge id
	// Per-segment RNGs derived from the caller's stream for determinism.
	segSeeds := make([]int64, len(bounds))
	for i := range segSeeds {
		segSeeds[i] = rng.Int63()
	}
	wmin := math.Inf(1)
	for _, e := range g.Edges {
		if e.W > 0 && e.W < wmin {
			wmin = e.W
		}
	}
	if math.IsInf(wmin, 1) {
		wmin = 1
	}
	class := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		class[i] = classOf(e.W, wmin, p.Z)
	}
	segEnd := func(s int) int {
		if s+1 < len(bounds) {
			return bounds[s+1]
		}
		return math.MaxInt32
	}
	fns := make([]func(), len(bounds))
	for s := range bounds {
		s := s
		fns[s] = func() {
			lo, hi := bounds[s], segEnd(s)
			// Starting supernodes: contract kept edges of classes < lo.
			uf := graph.NewUnionFind(g.N)
			for id, e := range g.Edges {
				if ws.Keep[id] && class[id] < lo {
					uf.Union(e.U, e.V)
				}
			}
			label, numSup := uf.Labels()
			var edges []graph.Edge
			var orig []int
			for id, e := range g.Edges {
				if !ws.Keep[id] || class[id] < lo || class[id] >= hi {
					continue
				}
				cu, cv := label[e.U], label[e.V]
				if cu == cv {
					continue
				}
				edges = append(edges, graph.Edge{U: cu, V: cv, W: e.W})
				orig = append(orig, id)
			}
			segG := graph.FromEdgesW(p.Workers, numSup, edges)
			segRecs[s] = &wd.Recorder{}
			srng := rand.New(rand.NewSource(segSeeds[s]))
			sub, _ := SparseAKPW(segG, p, srng, segRecs[s])
			segSubs[s] = sub
			segOrig[s] = orig
		}
	}
	// Segments fan out on the same worker budget as everything else;
	// Workers:1 runs them sequentially in index order (each segment has its
	// own rng stream, so the results are schedule-free either way).
	par.DoW(p.Workers, fns...)
	// Merge. Map segment-local edge ids back through orig.
	stats := &Stats{}
	var tree, extra []int
	var maxDepth int64
	for s := range bounds {
		sub := segSubs[s]
		for _, id := range sub.Tree {
			tree = append(tree, segOrig[s][id])
		}
		for _, id := range sub.Extra {
			extra = append(extra, segOrig[s][id])
		}
		stats.Iterations += sub.Stats.Iterations
		if sub.Stats.MaxClass > stats.MaxClass {
			stats.MaxClass = sub.Stats.MaxClass
		}
		stats.CutPerIter = append(stats.CutPerIter, sub.Stats.CutPerIter...)
		if d := segRecs[s].Depth(); d > maxDepth {
			maxDepth = d
		}
		stats.Work += segRecs[s].Work()
	}
	stats.Depth = maxDepth
	rec.Add(stats.Work, maxDepth)
	// Removed (well-spacing) edges rejoin the output verbatim (Fact 5.6).
	extra = append(extra, ws.Removed...)
	tree = patchSpanning(g, tree, stats)
	stats.TreeEdges = len(tree)
	stats.ExtraEdges = len(extra)
	sort.Ints(tree)
	return &Subgraph{Tree: tree, Extra: extra, Stats: stats}, stats
}

// ParamsForBeta instantiates Theorem 5.9's parameter schedule for a target
// sparsity/stretch trade-off β (≥ 1): larger β means fewer extra edges in
// Ĝ and higher stretch. In paper mode the exact formulas
// y = β/(c2·log³n), z = 4·c1·y·(λ+1)·log³n, θ = (log³n/β)^λ are used; in
// practical mode β sets the decay Y directly with Z = 8·Y and
// θ = min(0.5, 1/β).
func ParamsForBeta(n int, beta float64, lambda int, paper bool) Params {
	if lambda < 1 {
		lambda = 1
	}
	if beta < 2 {
		beta = 2
	}
	if paper {
		ln := math.Log2(float64(n))
		if ln < 2 {
			ln = 2
		}
		c1 := 272.0
		c2 := 2 * math.Pow(4*c1*float64(lambda+1), 0.5*float64(lambda-1))
		y := beta / (c2 * ln * ln * ln)
		if y < 2 {
			y = 2
		}
		z := 4 * c1 * y * float64(lambda+1) * ln * ln * ln
		theta := math.Pow(ln*ln*ln/beta, float64(lambda))
		if theta > 0.5 {
			theta = 0.5
		}
		return Params{Y: y, Z: z, Lambda: lambda, Theta: theta,
			Decomp: decomp.PaperParams(), MaxExtraIters: 200}
	}
	y := beta
	z := 8 * y
	if z < 16 {
		z = 16
	}
	theta := 1 / beta
	if theta > 0.5 {
		theta = 0.5
	}
	return Params{Y: y, Z: z, Lambda: lambda, Theta: theta,
		Decomp: decomp.PracticalParams(), MaxExtraIters: 200}
}
