package lowstretch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/wd"
)

// checkSpanningForest verifies that treeEdges form a spanning forest of g:
// acyclic and connecting every connected component.
func checkSpanningForest(t *testing.T, g *graph.Graph, treeEdges []int) {
	t.Helper()
	uf := graph.NewUnionFind(g.N)
	for _, id := range treeEdges {
		e := g.Edges[id]
		if !uf.Union(e.U, e.V) {
			t.Fatalf("tree edge %d (%d,%d) creates a cycle", id, e.U, e.V)
		}
	}
	_, want := g.ConnectedComponents()
	if uf.Count() != want {
		t.Fatalf("forest has %d components, graph has %d", uf.Count(), want)
	}
}

func TestAKPWSpanningOnGrid(t *testing.T) {
	g := gen.Grid2D(20, 20)
	rng := rand.New(rand.NewSource(1))
	tree, stats := AKPW(g, PracticalParams(), rng, nil)
	checkSpanningForest(t, g, tree)
	if len(tree) != g.N-1 {
		t.Fatalf("tree has %d edges, want %d", len(tree), g.N-1)
	}
	if stats.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestAKPWWeighted(t *testing.T) {
	g := gen.WithExponentialWeights(gen.Grid2D(16, 16), 32, 4, 2)
	rng := rand.New(rand.NewSource(3))
	tree, stats := AKPW(g, PracticalParams(), rng, nil)
	checkSpanningForest(t, g, tree)
	if stats.MaxClass < 2 {
		t.Fatalf("expected multiple weight classes, got %d", stats.MaxClass)
	}
}

func TestAKPWDisconnected(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i+1 < 8; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
		edges = append(edges, graph.Edge{U: 10 + i, V: 10 + i + 1, W: 1})
	}
	g := graph.FromEdges(20, edges)
	rng := rand.New(rand.NewSource(4))
	tree, _ := AKPW(g, PracticalParams(), rng, nil)
	checkSpanningForest(t, g, tree)
}

func TestAKPWStretchBounded(t *testing.T) {
	// On a modest grid the practical AKPW tree must achieve average stretch
	// far below the trivial worst case (n).
	g := gen.Grid2D(24, 24)
	rng := rand.New(rand.NewSource(5))
	tree, _ := AKPW(g, PracticalParams(), rng, nil)
	_, st := TreeStretch(g, tree)
	if math.IsInf(st.Max, 1) {
		t.Fatal("infinite stretch: not spanning")
	}
	if st.Average > 50 {
		t.Fatalf("average stretch %.1f suspiciously large for 24x24 grid", st.Average)
	}
}

func TestAKPWWorkDepth(t *testing.T) {
	g := gen.Grid2D(24, 24)
	rng := rand.New(rand.NewSource(6))
	var rec wd.Recorder
	_, stats := AKPW(g, PracticalParams(), rng, &rec)
	if stats.Work == 0 || stats.Depth == 0 {
		t.Fatalf("work/depth not recorded: %+v", stats)
	}
}

func TestTreeIndexDistOnPath(t *testing.T) {
	g := gen.WithUniformWeights(gen.Path(10), 1, 2, 7)
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	ti := NewTreeIndex(g, ids)
	// Distance 0..9 equals sum of weights.
	want := 0.0
	for i := 0; i < 9; i++ {
		want += g.Edges[i].W
	}
	if d := ti.Dist(0, 9); math.Abs(d-want) > 1e-12 {
		t.Fatalf("Dist(0,9) = %v, want %v", d, want)
	}
	if d := ti.Dist(3, 3); d != 0 {
		t.Fatalf("Dist(3,3) = %v", d)
	}
}

func TestTreeIndexLCA(t *testing.T) {
	// Star: LCA of any two leaves is the center.
	g := gen.Star(6)
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	ti := NewTreeIndex(g, ids)
	if l := ti.LCA(1, 2); l != 0 {
		t.Fatalf("LCA(1,2) = %d, want 0", l)
	}
	if l := ti.LCA(0, 3); l != 0 {
		t.Fatalf("LCA(0,3) = %d, want 0", l)
	}
}

func TestTreeIndexAcrossComponents(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	ti := NewTreeIndex(g, []int{0, 1})
	if l := ti.LCA(0, 2); l != -1 {
		t.Fatalf("cross-component LCA = %d, want -1", l)
	}
	if d := ti.Dist(0, 3); !math.IsInf(d, 1) {
		t.Fatalf("cross-component Dist = %v, want +Inf", d)
	}
}

func TestTreeDistMatchesDijkstraProperty(t *testing.T) {
	// For random spanning trees of random graphs, TreeIndex.Dist must equal
	// Dijkstra on the tree-only subgraph.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.WithUniformWeights(gen.GNP(60, 0.08, seed), 0.5, 3, seed)
		tree := g.MSTKruskal()
		ti := NewTreeIndex(g, tree)
		h := subgraphOf(g, tree)
		for trial := 0; trial < 10; trial++ {
			u, v := rng.Intn(g.N), rng.Intn(g.N)
			want := h.DijkstraTo(u, v)
			got := ti.Dist(u, v)
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				return false
			}
			if !math.IsInf(want, 1) && math.Abs(want-got) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeStretchIdentityOnTree(t *testing.T) {
	// Stretch of tree edges w.r.t. the tree itself is exactly 1.
	g := gen.WithUniformWeights(gen.Path(50), 1, 5, 9)
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	str, st := TreeStretch(g, ids)
	for i, s := range str {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("tree edge %d has stretch %v", i, s)
		}
	}
	if math.Abs(st.Average-1) > 1e-12 {
		t.Fatalf("average = %v", st.Average)
	}
}

func TestTreeStretchCycle(t *testing.T) {
	// Unit cycle of length n, tree = path: the chord has stretch n−1.
	n := 12
	g := gen.Cycle(n)
	var tree []int
	for i := 0; i < n; i++ {
		e := g.Edges[i]
		if !(e.U == n-1 && e.V == 0) && !(e.U == 0 && e.V == n-1) {
			tree = append(tree, i)
		}
	}
	_, st := TreeStretch(g, tree)
	if st.Max != float64(n-1) {
		t.Fatalf("max stretch = %v, want %d", st.Max, n-1)
	}
}

func TestSubgraphStretchExactMatchesTreeStretch(t *testing.T) {
	g := gen.WithUniformWeights(gen.Grid2D(8, 8), 1, 3, 11)
	tree := g.MSTKruskal()
	strT, _ := TreeStretch(g, tree)
	strS, _ := SubgraphStretchExact(g, tree)
	for i := range strT {
		// Subgraph distance can only match the unique tree path.
		if math.Abs(strT[i]-strS[i]) > 1e-9*(1+strT[i]) {
			t.Fatalf("edge %d: tree stretch %v vs subgraph stretch %v", i, strT[i], strS[i])
		}
	}
}

func TestSubgraphStretchSampled(t *testing.T) {
	g := gen.Grid2D(12, 12)
	tree := g.MSTKruskal()
	rng := rand.New(rand.NewSource(13))
	st := SubgraphStretchSampled(g, tree, 50, rng)
	if st.Average < 1 {
		t.Fatalf("sampled average stretch %v < 1", st.Average)
	}
	if st.Edges != g.M() {
		t.Fatalf("extrapolated edge count %d != %d", st.Edges, g.M())
	}
}

func TestSparseAKPWGrid(t *testing.T) {
	g := gen.Grid2D(20, 20)
	rng := rand.New(rand.NewSource(15))
	sub, stats := SparseAKPW(g, PracticalParams(), rng, nil)
	checkSpanningForest(t, g, sub.Tree)
	total := len(sub.EdgeIDs())
	if total < g.N-1 {
		t.Fatalf("subgraph too small: %d edges", total)
	}
	if total > g.M() {
		t.Fatalf("subgraph larger than graph: %d > %d", total, g.M())
	}
	if stats.ExtraEdges != len(sub.Extra) {
		t.Fatalf("stats extra %d != %d", stats.ExtraEdges, len(sub.Extra))
	}
	// Stretch of all edges w.r.t. Ĝ is finite and small.
	_, st := SubgraphStretchExact(g, sub.EdgeIDs())
	if math.IsInf(st.Max, 1) {
		t.Fatal("subgraph does not span")
	}
}

func TestSparseAKPWSurvivorsHaveStretchOne(t *testing.T) {
	g := gen.WithExponentialWeights(gen.GNP(150, 0.05, 16), 32, 3, 17)
	rng := rand.New(rand.NewSource(18))
	sub, _ := SparseAKPW(g, PracticalParams(), rng, nil)
	ids := sub.EdgeIDs()
	inSub := make(map[int]bool)
	for _, id := range ids {
		inSub[id] = true
	}
	str, _ := SubgraphStretchExact(g, ids)
	for _, id := range sub.Extra {
		if !inSub[id] {
			t.Fatalf("extra edge %d missing from EdgeIDs", id)
		}
		if str[id] > 1+1e-9 {
			t.Fatalf("survivor edge %d has stretch %v > 1", id, str[id])
		}
	}
}

func TestWellSpaceBudget(t *testing.T) {
	g := gen.WithExponentialWeights(gen.GNP(400, 0.03, 19), 4, 40, 20)
	theta := 0.25
	ws := WellSpace(g, 4, 2, theta)
	if len(ws.Removed) > int(theta*float64(g.M()))+g.M()/10 {
		t.Fatalf("well-spacing removed %d of %d edges, budget θ=%v", len(ws.Removed), g.M(), theta)
	}
	for _, id := range ws.Removed {
		if ws.Keep[id] {
			t.Fatalf("edge %d both kept and removed", id)
		}
	}
	// Special classes must be preceded by τ removed (empty) classes — by
	// construction they follow the removed window; verify they are sorted
	// and in range.
	last := 0
	for _, s := range ws.Special {
		if s <= last {
			t.Fatalf("special classes not increasing: %v", ws.Special)
		}
		last = s
	}
}

func TestWellSpaceUniformWeightsNoop(t *testing.T) {
	// Single weight class: nothing to remove.
	g := gen.Grid2D(10, 10)
	ws := WellSpace(g, 32, 2, 0.25)
	if len(ws.Removed) != 0 {
		t.Fatalf("uniform-weight graph lost %d edges", len(ws.Removed))
	}
}

func TestLSSubgraphGrid(t *testing.T) {
	g := gen.Grid2D(20, 20)
	rng := rand.New(rand.NewSource(21))
	sub, stats := LSSubgraph(g, PracticalParams(), rng, nil)
	checkSpanningForest(t, g, sub.Tree)
	_, st := SubgraphStretchExact(g, sub.EdgeIDs())
	if math.IsInf(st.Max, 1) {
		t.Fatal("LSSubgraph does not span")
	}
	if stats.TreeEdges != len(sub.Tree) {
		t.Fatalf("stats tree edges %d != %d", stats.TreeEdges, len(sub.Tree))
	}
}

func TestLSSubgraphMultiScaleWeights(t *testing.T) {
	// Wide weight spread exercises well-spacing segmentation.
	g := gen.WithExponentialWeights(gen.GNP(300, 0.03, 22), 16, 30, 23)
	rng := rand.New(rand.NewSource(24))
	sub, _ := LSSubgraph(g, PracticalParams(), rng, nil)
	checkSpanningForest(t, g, sub.Tree)
	ids := sub.EdgeIDs()
	h := subgraphOf(g, ids)
	if !sameComponents(g, h) {
		t.Fatal("LSSubgraph changes connectivity")
	}
}

func sameComponents(a, b *graph.Graph) bool {
	ca, ka := a.ConnectedComponents()
	cb, kb := b.ConnectedComponents()
	if ka != kb {
		return false
	}
	remap := make(map[int]int)
	for v := range ca {
		if w, ok := remap[ca[v]]; ok {
			if w != cb[v] {
				return false
			}
		} else {
			remap[ca[v]] = cb[v]
		}
	}
	return true
}

func TestLSSubgraphBetaTradeoff(t *testing.T) {
	// Theorem 5.9's knob: larger β ⇒ fewer extra edges (and higher stretch).
	g := gen.WithExponentialWeights(gen.Torus2D(24, 24), 16, 8, 25)
	extras := func(beta float64) int {
		rng := rand.New(rand.NewSource(26))
		p := ParamsForBeta(g.N, beta, 2, false)
		sub, _ := LSSubgraph(g, p, rng, nil)
		return len(sub.EdgeIDs()) - (g.N - 1)
	}
	lo, hi := extras(2), extras(16)
	if hi > lo {
		t.Fatalf("β=16 gave more extra edges (%d) than β=2 (%d)", hi, lo)
	}
}

func TestParamsForBetaPaperMode(t *testing.T) {
	p := ParamsForBeta(1<<20, 1e9, 2, true)
	if p.Y < 2 || p.Z < 8 {
		t.Fatalf("paper params degenerate: %+v", p)
	}
	if p.Theta <= 0 || p.Theta > 0.5 {
		t.Fatalf("theta out of range: %v", p.Theta)
	}
}

func TestAKPWPaperParamsSmall(t *testing.T) {
	// Paper constants on a small graph: z is astronomical so everything is
	// one class and one partition call — the tree must still span.
	g := gen.Grid2D(8, 8)
	rng := rand.New(rand.NewSource(27))
	tree, _ := AKPW(g, PaperParams(g.N), rng, nil)
	checkSpanningForest(t, g, tree)
}

func TestStretchDecreasesWithSubgraphDensity(t *testing.T) {
	// Adding extra edges to a tree can only reduce stretch.
	g := gen.Torus2D(12, 12)
	rng := rand.New(rand.NewSource(28))
	tree := g.MSTKruskal()
	_, stTree := SubgraphStretchExact(g, tree)
	sub, _ := SparseAKPW(g, PracticalParams(), rng, nil)
	ids := sub.EdgeIDs()
	if len(ids) > len(tree) {
		_, stSub := SubgraphStretchExact(g, ids)
		if stSub.Average > stTree.Average*2 {
			t.Fatalf("denser subgraph has far worse stretch: %.2f vs %.2f", stSub.Average, stTree.Average)
		}
	}
}
