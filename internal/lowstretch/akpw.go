// Package lowstretch implements the paper's Section 5: parallel low-stretch
// spanning trees (the AKPW construction driven by the parallel low-diameter
// decomposition of Section 4) and parallel low-stretch ultra-sparse
// subgraphs (SparseAKPW with the well-spacing transform).
//
// Edge weights are interpreted as *lengths* throughout this package, exactly
// as in the paper: the stretch of edge e = {u,v} with respect to a subgraph
// G' is d_{G'}(u,v) / w(e). Callers coming from the Laplacian world
// (weights as conductances) must invert weights first; the solver package
// does this at its boundary.
package lowstretch

import (
	"math"
	"math/rand"
	"sort"

	"parlap/internal/decomp"
	"parlap/internal/graph"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// Params controls the AKPW family. Obtain via PaperParams or
// PracticalParams and override fields as needed.
type Params struct {
	// Y is the per-iteration decay target: each weight class should lose
	// all but a 1/Y fraction of its edges per iteration.
	// Paper (Thm 5.1): y = 2^√(6·log n·log log n).
	Y float64
	// Z is the weight bucket ratio (class i holds lengths in
	// [Z^(i−1), Z^i)); the decomposition radius each iteration is Z/4.
	// Paper: z = 4·c1·y·τ·log³n. Fact 5.3 requires Z ≥ 8.
	Z float64
	// Lambda is SparseAKPW's count of "live" weight classes; older classes
	// collapse into the generic bucket and their survivors are emitted into
	// the output subgraph. Theorem 5.9's λ.
	Lambda int
	// Theta is the well-spacing deletion budget of Lemma 5.7 (fraction of
	// edges set aside); Theorem 5.9 uses θ = (log³n/β)^λ.
	Theta float64
	// Decomp carries the Section 4 constants used by each Partition call.
	Decomp decomp.Params
	// MaxExtraIters bounds the tail iterations after the last weight class
	// enters (safety net; the expected tail is τ = log_Y(n²) iterations).
	MaxExtraIters int
	// Workers selects the goroutine count of the construction's parallel
	// loops (bucketing, packing, contraction relabeling, per-segment
	// fan-out): 0 = GOMAXPROCS, 1 = the sequential reference path. It does
	// NOT implicitly override Decomp.Workers — callers wanting a uniform
	// policy set both (the solver boundary does).
	Workers int
}

// tau returns the class-emptying horizon τ = ⌈3·log n / log y⌉ (paper §5.1).
func (p Params) tau(n int) int {
	ly := math.Log2(p.Y)
	if ly <= 0 {
		ly = 1
	}
	t := int(math.Ceil(3 * math.Log2(float64(n)) / ly))
	if t < 1 {
		t = 1
	}
	return t
}

// PaperParams returns the constants of Algorithm 5.1 (with c1 = 272 from
// Theorem 4.1). These are astronomically conservative at practical n — they
// exist so experiments can report the theory-faithful settings.
func PaperParams(n int) Params {
	ln := math.Log2(float64(n))
	if ln < 2 {
		ln = 2
	}
	y := math.Pow(2, math.Sqrt(6*ln*math.Log2(ln)))
	c1 := 272.0
	tauV := math.Ceil(3 * ln / math.Log2(y))
	z := 4 * c1 * y * tauV * ln * ln * ln
	return Params{
		Y: y, Z: z, Lambda: 2, Theta: 0.1,
		Decomp:        decomp.PaperParams(),
		MaxExtraIters: 200,
	}
}

// PracticalParams keeps every structural relationship (bucket ratio Z,
// radius Z/4, per-class decay Y, λ live classes) at magnitudes that produce
// informative spanning trees for n ≤ 10⁶.
func PracticalParams() Params {
	return Params{
		Y: 3, Z: 32, Lambda: 3, Theta: 0.125,
		Decomp:        decomp.PracticalParams(),
		MaxExtraIters: 200,
	}
}

// Stats reports what an AKPW-family run did, for the experiment harness.
type Stats struct {
	Iterations  int
	MaxClass    int   // highest populated weight class
	TreeEdges   int   // edges contributed via BFS trees
	ExtraEdges  int   // SparseAKPW survivors + well-spacing returns
	PatchEdges  int   // MST fallback edges used to restore spanning (0 normally)
	CutPerIter  []int // inter-component edges after each iteration's partition
	Work, Depth int64 // from the wd recorder when one was supplied
}

// classOf assigns 1-based weight classes E_i = {e : w(e)/wmin ∈ [Z^(i−1), Z^i)}.
func classOf(w, wmin, z float64) int {
	if w <= wmin {
		return 1
	}
	c := int(math.Floor(math.Log(w/wmin)/math.Log(z))) + 1
	if c < 1 {
		c = 1
	}
	return c
}

// akpwState is the contracted multigraph threaded through iterations.
type akpwState struct {
	cur     *graph.Graph
	origID  []int // cur edge -> original edge id
	class   []int // cur edge -> weight class (1-based; 0 = generic bucket)
	workers int   // goroutine count for this construction's parallel loops
}

// newAKPWState buckets g's edges by length class. The minimum-weight scan
// and the per-edge class assignment are parallel (min is exactly
// associative, so the fixed reduction tree gives the sequential answer).
func newAKPWState(workers int, g *graph.Graph, z float64) (*akpwState, int) {
	m := len(g.Edges)
	wmin := par.ReduceFloat64W(workers, m, math.Inf(1), func(i int) float64 {
		if w := g.Edges[i].W; w > 0 {
			return w
		}
		return math.Inf(1)
	}, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
	if math.IsInf(wmin, 1) {
		wmin = 1
	}
	st := &akpwState{
		cur:     g,
		origID:  make([]int, m),
		class:   make([]int, m),
		workers: workers,
	}
	par.ForW(workers, m, func(i int) {
		st.origID[i] = i
		st.class[i] = classOf(g.Edges[i].W, wmin, z)
	})
	maxClass := par.ReduceIntW(workers, m, 1, func(i int) int { return st.class[i] }, maxInt)
	return st, maxClass
}

// maxInt is the exactly-associative max combiner for the reductions above.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// iterate performs one AKPW iteration: partition the subgraph of active
// edges with radius ρ, add BFS trees (in original-edge ids) to tree, and
// contract. active reports whether a cur edge participates this round.
// Returns the number of surviving (inter-component) active edges.
func (st *akpwState) iterate(rho int, active func(curEdge int) bool, classLabel func(curEdge int) int, k int,
	p decomp.Params, rng *rand.Rand, rec *wd.Recorder, tree *[]int) int {
	cur := st.cur
	w := st.workers
	// Active subgraph over the same vertex set: a parallel pack of the
	// participating edges (the per-iteration edge-bucketing hot loop).
	actCur := par.FilterIndexW(w, len(cur.Edges), active) // active edge -> cur edge id
	actEdges := make([]graph.Edge, len(actCur))
	par.ForW(w, len(actCur), func(i int) { actEdges[i] = cur.Edges[actCur[i]] })
	actG := graph.FromEdgesW(w, cur.N, actEdges)
	var class []int
	if k > 1 {
		class = make([]int, len(actEdges))
		par.ForW(w, len(class), func(i int) { class[i] = classLabel(actCur[i]) })
	}
	pr, _ := decomp.Partition(actG, class, k, rho, p, rng, rec)
	// BFS trees over the active subgraph, mapped to original ids.
	for _, aid := range decomp.BFSTrees(actG, pr.Result) {
		*tree = append(*tree, st.origID[actCur[aid]])
	}
	// Contract the whole current graph (active and future edges alike) by
	// the partition's components. Label copies and the surviving-edge
	// relabeling are embarrassingly parallel.
	comp := make([]int, cur.N)
	par.ForW(w, cur.N, func(v int) { comp[v] = int(pr.Comp[v]) })
	contracted, keptCur := cur.ContractW(w, comp, pr.NumComp)
	newOrig := make([]int, len(keptCur))
	newClass := make([]int, len(keptCur))
	par.ForW(w, len(keptCur), func(i int) {
		newOrig[i] = st.origID[keptCur[i]]
		newClass[i] = st.class[keptCur[i]]
	})
	st.cur = contracted
	st.origID = newOrig
	st.class = newClass
	return pr.Cut.Total
}

// AKPW builds a low-stretch spanning forest of g per Algorithm 5.1: edges
// are bucketed by length into classes with ratio Z, and iteration j
// partitions the contracted multigraph of classes ≤ j with radius Z/4,
// adding each component's BFS tree to the output and contracting.
//
// The returned slice holds edge ids of g forming a spanning forest (a
// spanning tree when g is connected). Stats captures per-iteration
// measurements for the experiment harness.
func AKPW(g *graph.Graph, p Params, rng *rand.Rand, rec *wd.Recorder) ([]int, *Stats) {
	st, maxClass := newAKPWState(p.Workers, g, p.Z)
	stats := &Stats{MaxClass: maxClass}
	rho := int(p.Z / 4)
	if rho < 1 {
		rho = 1
	}
	var tree []int
	maxIters := maxClass + p.tau(g.N) + p.MaxExtraIters
	for j := 1; j <= maxIters; j++ {
		if len(st.cur.Edges) == 0 {
			break
		}
		jj := j
		// Classes present and ≤ j participate; relabel them densely for the
		// multi-class cut validation.
		present := map[int]int{}
		for id, c := range st.class {
			if c <= jj && st.cur.Edges[id].U != st.cur.Edges[id].V {
				if _, ok := present[c]; !ok {
					present[c] = len(present)
				}
			}
		}
		if len(present) == 0 {
			continue // no active edges yet at this class index
		}
		k := len(present)
		cut := st.iterate(rho,
			func(ce int) bool { return st.class[ce] <= jj },
			func(ce int) int { return present[st.class[ce]] },
			k, p.Decomp, rng, rec, &tree)
		stats.Iterations++
		stats.CutPerIter = append(stats.CutPerIter, cut)
	}
	tree = patchSpanning(g, tree, stats)
	stats.TreeEdges = len(tree)
	if rec != nil {
		stats.Work, stats.Depth = rec.Work(), rec.Depth()
	}
	sort.Ints(tree)
	return tree, stats
}

// patchSpanning guarantees the output spans every connected component of g:
// if the iteration cap left residual connectivity uncovered (possible only
// under extreme parameter settings), minimum-length edges are added. The
// number added is reported in stats.PatchEdges; it is zero in normal runs.
// The result is also deduplicated and cycle-free.
func patchSpanning(g *graph.Graph, tree []int, stats *Stats) []int {
	uf := graph.NewUnionFind(g.N)
	var out []int
	for _, id := range tree {
		e := g.Edges[id]
		if uf.Union(e.U, e.V) {
			out = append(out, id)
		}
	}
	if uf.Count() > 1 {
		for _, id := range g.MSTKruskal() {
			e := g.Edges[id]
			if uf.Union(e.U, e.V) {
				out = append(out, id)
				stats.PatchEdges++
			}
		}
	}
	return out
}
