package solver

import (
	"math"
	"testing"

	"parlap/internal/gen"
)

// Precision-gate regression wall: PrecisionF32 chains must (a) keep the gate's
// per-level promise — every level kept in float32 measured a κ inside the
// EigSafety envelope of its float64 baseline, level 0 is never converted —
// (b) converge within a pinned iteration band on the testbed (the f32
// counterpart of TestConvergenceIterationPins), and (c) produce solutions
// within 10·eps of the f64 chain's in the A-norm. The pins were measured at
// gate introduction; like the f64 table, deliberate numerical changes update
// them and note the move in ROADMAP.md.

var convergencePinsF32 = []convergencePin{
	{spec: "grid2d:64x64", iters: 110, band: 11},
	{spec: "regular:4000:8", iters: 235, band: 24},
	{spec: "pa:4000:4", iters: 93, band: 9},
	{spec: "grid2d:128x128", iters: 184, band: 18},
}

// buildVariant builds a solver over g with the given precision/layout knobs.
func buildVariant(t testing.TB, spec string, prec Precision, reorder bool, workers int) *Solver {
	t.Helper()
	g, err := gen.FromSpec(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultChainParams()
	p.Precision = prec
	p.ReorderLevels = reorder
	s, err := NewWithOptions(g, p, Options{Workers: workers}, nil)
	if err != nil {
		t.Fatalf("%s (prec=%s reorder=%v): build: %v", spec, prec, reorder, err)
	}
	return s
}

// relANorm returns ‖x−y‖_A / ‖y‖_A under the solver's Laplacian.
func relANorm(s *Solver, x, y []float64) float64 {
	n := len(x)
	d := make([]float64, n)
	for i := range d {
		d[i] = x[i] - y[i]
	}
	ad := make([]float64, n)
	ay := make([]float64, n)
	s.Lap.MulVecW(1, d, ad)
	s.Lap.MulVecW(1, y, ay)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		num += d[i] * ad[i]
		den += y[i] * ay[i]
	}
	return math.Sqrt(num / den)
}

func TestF32GateInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed chain builds are too heavy for -short")
	}
	for _, spec := range []string{"grid2d:64x64", "regular:4000:8", "pa:4000:4"} {
		t.Run(spec, func(t *testing.T) {
			s := buildVariant(t, spec, PrecisionF32, false, 0)
			c := s.Chain
			if c.Levels[0].ValF32 || c.Levels[0].Lap.ValuesF32() {
				t.Fatal("level 0 converted to float32 — the gate must exempt the top operator")
			}
			kept := 0
			for i := 1; i < len(c.Levels); i++ {
				lvl := &c.Levels[i]
				if lvl.ValF32 != lvl.Lap.ValuesF32() {
					t.Fatalf("level %d: ValF32=%v but storage f32=%v", i, lvl.ValF32, lvl.Lap.ValuesF32())
				}
				if !lvl.ValF32 {
					continue
				}
				kept++
				// The gate's promise: the κ measured on the REAL converted
				// operator stayed inside the EigSafety envelope of the f64
				// baseline (KappaF64 == 0 means the baseline measurement
				// failed and the gate accepted on the f32 measurement alone).
				if lvl.KappaF64 > 0 && lvl.KappaMeasured > lvl.KappaF64*c.Params.EigSafety {
					t.Fatalf("level %d: f32 κ %.4g exceeds f64 baseline %.4g × safety %.3g",
						i, lvl.KappaMeasured, lvl.KappaF64, c.Params.EigSafety)
				}
				if !lvl.Calibrated {
					t.Fatalf("level %d kept f32 without a successful measurement", i)
				}
			}
			if kept == 0 {
				t.Fatal("gate kept no level in float32 on a well-conditioned testbed graph")
			}
			t.Logf("%s: %d/%d levels kept f32", spec, kept, len(c.Levels))
		})
	}
}

func TestConvergenceIterationPinsF32(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed chain builds are too heavy for -short")
	}
	const eps = 1e-6
	workers := testWorkers(t)
	for _, pin := range convergencePinsF32 {
		pin := pin
		t.Run(pin.spec, func(t *testing.T) {
			if raceDetectorEnabled && pin.spec == "grid2d:128x128" {
				t.Skip("128x128 pin is too heavy under the race detector; covered by the non-race run")
			}
			s := buildVariant(t, pin.spec, PrecisionF32, false, workers)
			b := benchRHS(s.G.N)
			x, st := s.Solve(b, eps)
			if !st.Converged {
				t.Fatalf("f32-chain solve did not converge: %+v", st)
			}
			if r := s.Residual(x, b); r > 10*eps {
				t.Fatalf("residual %.3e exceeds %g", r, 10*eps)
			}
			lo, hi := pin.iters-pin.band, pin.iters+pin.band
			if st.Iterations < lo || st.Iterations > hi {
				t.Fatalf("outer PCG took %d iterations on the f32 chain, pinned to %d±%d — "+
					"a precision-gate or κ-schedule regression (or an improvement: "+
					"update convergencePinsF32 and note it in ROADMAP.md)",
					st.Iterations, pin.iters, pin.band)
			}
			// The f32 chain preconditions; it does not limit attainable
			// accuracy. Its converged solution must sit within 10·eps of the
			// f64 chain's in the energy norm (measured ≤ 0.26·eps at pin time).
			ref := buildVariant(t, pin.spec, PrecisionF64, false, workers)
			xRef, _ := ref.Solve(b, eps)
			if d := relANorm(s, x, xRef); d > 10*eps {
				t.Fatalf("f32 solution is %.3e from the f64 solution in the A-norm, want <= %g", d, 10*eps)
			}
			t.Logf("%s: %d iterations (pin %d±%d), f32 levels %d/%d",
				pin.spec, st.Iterations, pin.iters, pin.band, s.Chain.F32Levels(), s.Chain.Depth())
		})
	}
}

// The 128×128 grid pin for the default chain — the iteration-vs-n
// trajectory's next point (64×64 pins 105; ×1.67 growth per 4× vertices),
// promoted from a BENCH_solve.json observation to an enforced wall alongside
// the layout/precision work that touches every apply kernel.
func TestConvergenceIterationPinGrid128(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed chain builds are too heavy for -short")
	}
	if raceDetectorEnabled {
		t.Skip("128x128 pin is too heavy under the race detector; covered by the non-race run")
	}
	const eps = 1e-6
	s := buildVariant(t, "grid2d:128x128", PrecisionF64, false, testWorkers(t))
	b := benchRHS(s.G.N)
	x, st := s.Solve(b, eps)
	if !st.Converged {
		t.Fatalf("solve did not converge: %+v", st)
	}
	if r := s.Residual(x, b); r > 10*eps {
		t.Fatalf("residual %.3e exceeds %g", r, 10*eps)
	}
	const pin, band = 175, 18
	if st.Iterations < pin-band || st.Iterations > pin+band {
		t.Fatalf("outer PCG took %d iterations, pinned to %d±%d (see convergence_test.go)",
			st.Iterations, pin, band)
	}
}

// Reordering relabels the sweep; it must not move iteration counts at all on
// the f64 chain (the schedule is measured through the same operator) and the
// reordered chain must report its layout in the schedule.
func TestReorderScheduleInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed chain builds are too heavy for -short")
	}
	const eps = 1e-6
	for _, spec := range []string{"grid2d:64x64", "pa:4000:4"} {
		t.Run(spec, func(t *testing.T) {
			nat := buildVariant(t, spec, PrecisionF64, false, 0)
			ro := buildVariant(t, spec, PrecisionF64, true, 0)
			if got := ro.Chain.ReorderedLevels(); got != ro.Chain.Depth()-1 {
				t.Fatalf("reordered %d levels, want every sub-top level (%d)", got, ro.Chain.Depth()-1)
			}
			if ro.Chain.Levels[0].Perm != nil {
				t.Fatal("level 0 reordered — the top operator must stay natural")
			}
			b := benchRHS(nat.G.N)
			xN, stN := nat.Solve(b, eps)
			xR, stR := ro.Solve(b, eps)
			// Different within-row summation order: same iteration count up
			// to rounding jitter, solutions equal in the A-norm up to eps.
			if d := stR.Iterations - stN.Iterations; d < -3 || d > 3 {
				t.Fatalf("reorder moved iterations %d -> %d", stN.Iterations, stR.Iterations)
			}
			if d := relANorm(nat, xR, xN); d > 10*eps {
				t.Fatalf("reordered solution %.3e from natural in A-norm, want <= %g", d, 10*eps)
			}
			for _, ls := range ro.Chain.Schedule()[1:] {
				if !ls.Reordered {
					t.Fatalf("schedule does not report level %d as reordered", ls.Level)
				}
			}
		})
	}
}
