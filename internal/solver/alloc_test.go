package solver

import (
	"testing"

	"parlap/internal/gen"
	"parlap/internal/matrix"
	"parlap/internal/obs"
)

// The allocation wall for the apply path: a steady-state preconditioner
// application at Workers:1 must perform ZERO heap allocations — every
// scratch vector lives in the per-solve workspace, every hot kernel takes
// its sequential fast path before building a parallel closure. (At
// workers > 1 goroutine fan-out inherently allocates; the equivalence
// suites prove the arithmetic is identical, so the sequential path is the
// one to lock.) Connected testbed graph: the single-component projection is
// the allocation-free one; per-component mean buffers on disconnected
// graphs are small and documented.

func TestPrecondApplyZeroAllocs(t *testing.T) {
	g := gen.Grid2D(48, 48)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Chain
	r := randRHS(g.N, 7)
	ws := newWorkspace(c, 1) // held directly: immune to pool/GC interplay
	c.applyHTop(1, r, ws)    // warm up (lazy growth done)
	allocs := testing.AllocsPerRun(20, func() {
		c.applyHTop(1, r, ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state preconditioner application allocated %.1f objects/op, want 0", allocs)
	}
}

// The instrumented solve path must cost nothing on the allocation wall:
// SolveTraced with a caller-held trace may not allocate more than the
// untraced SolveOpts baseline (the trace lives in the pooled workspace and
// the copy-out is a plain struct assignment), and it must actually populate
// the trace — nonzero outer/preconditioner time, level count, and a stage
// partition that accounts for the preconditioner total.
func TestSolveTracedNoExtraAllocs(t *testing.T) {
	g := gen.Grid2D(32, 32)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 11)
	const eps = 1e-4
	opt := Options{Workers: 1}
	s.SolveOpts(b, eps, opt) // warm the pool (lazy outer scratch growth done)
	base := testing.AllocsPerRun(10, func() {
		s.SolveOpts(b, eps, opt)
	})
	var tr obs.SolveTrace
	traced := testing.AllocsPerRun(10, func() {
		s.SolveTraced(b, eps, opt, &tr)
	})
	// Under -race sync.Pool randomly drops items, so both measurements carry
	// pool-miss noise and the comparison is only meaningful on normal builds.
	if traced > base && !raceDetectorEnabled {
		t.Fatalf("traced solve allocated %.1f objects/op, untraced baseline %.1f", traced, base)
	}
	if tr.OuterNS <= 0 || tr.PrecondNS <= 0 || tr.TotalNS < 0 {
		t.Fatalf("trace not populated: %+v", tr)
	}
	if tr.Levels != len(s.Chain.Levels) {
		t.Fatalf("trace Levels = %d, want %d", tr.Levels, len(s.Chain.Levels))
	}
	if tr.OuterNS < tr.PrecondNS {
		t.Fatalf("OuterNS %d < PrecondNS %d", tr.OuterNS, tr.PrecondNS)
	}
	// Exclusive stages partition the preconditioner time; clock granularity
	// and loop overhead leave a small unattributed remainder, never an excess.
	sum := tr.StageNS(obs.StageCheb) + tr.StageNS(obs.StageForward) +
		tr.StageNS(obs.StageBack) + tr.StageNS(obs.StageBottom)
	if sum > tr.PrecondNS {
		t.Fatalf("exclusive stages sum to %d > PrecondNS %d", sum, tr.PrecondNS)
	}
	if sum <= 0 {
		t.Fatalf("exclusive stages recorded no time: %+v", tr)
	}
}

// The block apply path is held to the same wall as the single path: a
// steady-state k-wide preconditioner application at Workers:1 must perform
// ZERO heap allocations — the block workspace reshapes in place, every
// block kernel takes its sequential fast path, and lane compaction is pure
// data movement. k >= 2 is the interesting case (the k==1 path delegates to
// the single kernels, covered above).
func TestPrecondApplyBlockZeroAllocs(t *testing.T) {
	g := gen.Grid2D(48, 48)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Chain
	const k = 8
	var rs matrix.Block
	rs.Reshape(g.N, k)
	for j := 0; j < k; j++ {
		rs.SetCol(j, randRHS(g.N, int64(7+j)))
	}
	ws := newWorkspace(c, k) // held directly: immune to pool/GC interplay
	c.applyHTopBlock(1, &rs, ws)
	allocs := testing.AllocsPerRun(20, func() {
		c.applyHTopBlock(1, &rs, ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state block preconditioner application allocated %.1f objects/op, want 0", allocs)
	}
}

// The full traced block solve must also be allocation-free at steady state
// when the caller retains the RHS/solution blocks and the stats buffer:
// SolveBlockTraced reshapes them in place, the workspace comes from the
// warm pool, and the trace copy-out is a struct assignment. This is the
// wall the streaming driver (internal/service/stream.go) relies on — a long
// stream's windows after the first must not allocate inside the solver.
func TestSolveBlockTracedZeroAllocs(t *testing.T) {
	g := gen.Grid2D(32, 32)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	var rhs, out matrix.Block
	rhs.Reshape(g.N, k)
	for j := 0; j < k; j++ {
		rhs.SetCol(j, randRHS(g.N, int64(11+j)))
	}
	const eps = 1e-4
	opt := Options{Workers: 1}
	var tr obs.SolveTrace
	var sts []SolveStats
	sts = s.SolveBlockTraced(&rhs, &out, eps, opt, &tr, sts) // warm pool + buffers
	allocs := testing.AllocsPerRun(10, func() {
		sts = s.SolveBlockTraced(&rhs, &out, eps, opt, &tr, sts)
	})
	// Under -race sync.Pool intentionally drops items, so the pooled
	// workspace misses and reallocates; the wall only holds on normal builds.
	if allocs != 0 && !raceDetectorEnabled {
		t.Fatalf("steady-state block solve allocated %.1f objects/op, want 0", allocs)
	}
	if len(sts) != k {
		t.Fatalf("got %d stats rows, want %d", len(sts), k)
	}
	for j, st := range sts {
		if !st.Converged {
			t.Fatalf("lane %d did not converge: %+v", j, st)
		}
	}
	if tr.OuterNS <= 0 || tr.PrecondNS <= 0 {
		t.Fatalf("trace not populated: %+v", tr)
	}
}

// BenchmarkPrecondApply reports ns/op and (via ReportAllocs) allocs/op for
// the public pooled entry point — the CI-visible record of the
// allocation-free apply path.
func BenchmarkPrecondApply(b *testing.B) {
	g := gen.Grid2D(64, 64)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	r := randRHS(g.N, 7)
	dst := make([]float64, g.N)
	s.Chain.PrecondApplyIntoW(1, r, dst) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Chain.PrecondApplyIntoW(1, r, dst)
	}
}
