package solver

import (
	"testing"

	"parlap/internal/gen"
)

// The allocation wall for the apply path: a steady-state preconditioner
// application at Workers:1 must perform ZERO heap allocations — every
// scratch vector lives in the per-solve workspace, every hot kernel takes
// its sequential fast path before building a parallel closure. (At
// workers > 1 goroutine fan-out inherently allocates; the equivalence
// suites prove the arithmetic is identical, so the sequential path is the
// one to lock.) Connected testbed graph: the single-component projection is
// the allocation-free one; per-component mean buffers on disconnected
// graphs are small and documented.

func TestPrecondApplyZeroAllocs(t *testing.T) {
	g := gen.Grid2D(48, 48)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Chain
	r := randRHS(g.N, 7)
	ws := newWorkspace(c, 1) // held directly: immune to pool/GC interplay
	c.applyHTop(1, r, ws)    // warm up (lazy growth done)
	allocs := testing.AllocsPerRun(20, func() {
		c.applyHTop(1, r, ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state preconditioner application allocated %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkPrecondApply reports ns/op and (via ReportAllocs) allocs/op for
// the public pooled entry point — the CI-visible record of the
// allocation-free apply path.
func BenchmarkPrecondApply(b *testing.B) {
	g := gen.Grid2D(64, 64)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	r := randRHS(g.N, 7)
	dst := make([]float64, g.N)
	s.Chain.PrecondApplyIntoW(1, r, dst) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Chain.PrecondApplyIntoW(1, r, dst)
	}
}
