package solver

import (
	"testing"

	"parlap/internal/gen"
	"parlap/internal/obs"
)

// The allocation wall for the apply path: a steady-state preconditioner
// application at Workers:1 must perform ZERO heap allocations — every
// scratch vector lives in the per-solve workspace, every hot kernel takes
// its sequential fast path before building a parallel closure. (At
// workers > 1 goroutine fan-out inherently allocates; the equivalence
// suites prove the arithmetic is identical, so the sequential path is the
// one to lock.) Connected testbed graph: the single-component projection is
// the allocation-free one; per-component mean buffers on disconnected
// graphs are small and documented.

func TestPrecondApplyZeroAllocs(t *testing.T) {
	g := gen.Grid2D(48, 48)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Chain
	r := randRHS(g.N, 7)
	ws := newWorkspace(c, 1) // held directly: immune to pool/GC interplay
	c.applyHTop(1, r, ws)    // warm up (lazy growth done)
	allocs := testing.AllocsPerRun(20, func() {
		c.applyHTop(1, r, ws)
	})
	if allocs != 0 {
		t.Fatalf("steady-state preconditioner application allocated %.1f objects/op, want 0", allocs)
	}
}

// The instrumented solve path must cost nothing on the allocation wall:
// SolveTraced with a caller-held trace may not allocate more than the
// untraced SolveOpts baseline (the trace lives in the pooled workspace and
// the copy-out is a plain struct assignment), and it must actually populate
// the trace — nonzero outer/preconditioner time, level count, and a stage
// partition that accounts for the preconditioner total.
func TestSolveTracedNoExtraAllocs(t *testing.T) {
	g := gen.Grid2D(32, 32)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 11)
	const eps = 1e-4
	opt := Options{Workers: 1}
	s.SolveOpts(b, eps, opt) // warm the pool (lazy outer scratch growth done)
	base := testing.AllocsPerRun(10, func() {
		s.SolveOpts(b, eps, opt)
	})
	var tr obs.SolveTrace
	traced := testing.AllocsPerRun(10, func() {
		s.SolveTraced(b, eps, opt, &tr)
	})
	if traced > base {
		t.Fatalf("traced solve allocated %.1f objects/op, untraced baseline %.1f", traced, base)
	}
	if tr.OuterNS <= 0 || tr.PrecondNS <= 0 || tr.TotalNS < 0 {
		t.Fatalf("trace not populated: %+v", tr)
	}
	if tr.Levels != len(s.Chain.Levels) {
		t.Fatalf("trace Levels = %d, want %d", tr.Levels, len(s.Chain.Levels))
	}
	if tr.OuterNS < tr.PrecondNS {
		t.Fatalf("OuterNS %d < PrecondNS %d", tr.OuterNS, tr.PrecondNS)
	}
	// Exclusive stages partition the preconditioner time; clock granularity
	// and loop overhead leave a small unattributed remainder, never an excess.
	sum := tr.StageNS(obs.StageCheb) + tr.StageNS(obs.StageForward) +
		tr.StageNS(obs.StageBack) + tr.StageNS(obs.StageBottom)
	if sum > tr.PrecondNS {
		t.Fatalf("exclusive stages sum to %d > PrecondNS %d", sum, tr.PrecondNS)
	}
	if sum <= 0 {
		t.Fatalf("exclusive stages recorded no time: %+v", tr)
	}
}

// BenchmarkPrecondApply reports ns/op and (via ReportAllocs) allocs/op for
// the public pooled entry point — the CI-visible record of the
// allocation-free apply path.
func BenchmarkPrecondApply(b *testing.B) {
	g := gen.Grid2D(64, 64)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	r := randRHS(g.N, 7)
	dst := make([]float64, g.N)
	s.Chain.PrecondApplyIntoW(1, r, dst) // warm the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Chain.PrecondApplyIntoW(1, r, dst)
	}
}
