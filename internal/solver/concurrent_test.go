package solver

import (
	"fmt"
	"sync"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
)

// The concurrent-solve equivalence suite locks down the serving-layer
// contract: a Solver (and its Chain) is read-only after construction, so N
// goroutines solving distinct right-hand sides on ONE shared Solver must
// produce bitwise-identical results to the same solves run sequentially.
// Run under -race this also proves the absence of data races on the shared
// chain state (the atomic bottomSolves counter and recorder are the only
// writers).

func concurrencyGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":          gen.Grid2D(30, 30),
		"weighted-grid": gen.WithExponentialWeights(gen.Grid2D(24, 24), 8, 4, 5),
		"pa":            gen.PreferentialAttachment(700, 3, 19),
	}
}

func TestConcurrentSolveEquivalence(t *testing.T) {
	const (
		eps        = 1e-7
		goroutines = 8
	)
	for name, g := range concurrencyGraphs() {
		t.Run(name, func(t *testing.T) {
			s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 2}, nil)
			if err != nil {
				t.Fatal(err)
			}
			bs := make([][]float64, goroutines)
			for i := range bs {
				bs[i] = randRHS(g.N, int64(300+i))
			}
			// Sequential reference pass.
			refs := make([][]float64, goroutines)
			refSts := make([]SolveStats, goroutines)
			for i, b := range bs {
				refs[i], refSts[i] = s.Solve(b, eps)
				if !refSts[i].Converged {
					t.Fatalf("reference solve %d did not converge", i)
				}
			}
			// Concurrent pass on the same shared Solver.
			got := make([][]float64, goroutines)
			gotSts := make([]SolveStats, goroutines)
			var wg sync.WaitGroup
			for i := range bs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], gotSts[i] = s.Solve(bs[i], eps)
				}(i)
			}
			wg.Wait()
			for i := range bs {
				requireBitwiseVec(t, fmt.Sprintf("goroutine %d", i), got[i], refs[i])
				if gotSts[i].Iterations != refSts[i].Iterations {
					t.Fatalf("goroutine %d: %d iterations concurrent vs %d sequential",
						i, gotSts[i].Iterations, refSts[i].Iterations)
				}
			}
		})
	}
}

// TestConcurrentMixedSolveAndBatch interleaves single solves, batched
// solves and per-call worker overrides on one shared Solver — the exact
// access pattern of the HTTP serving layer.
func TestConcurrentMixedSolveAndBatch(t *testing.T) {
	const eps = 1e-7
	g := gen.Grid2D(26, 26)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b0 := randRHS(g.N, 41)
	b1 := randRHS(g.N, 42)
	b2 := randRHS(g.N, 43)
	ref0, _ := s.Solve(b0, eps)
	ref1, _ := s.Solve(b1, eps)
	ref2, _ := s.Solve(b2, eps)
	var wg sync.WaitGroup
	results := make([][][]float64, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				x, _ := s.SolveOpts(b0, eps, Options{Workers: 1 + i%2})
				results[i] = [][]float64{x}
			case 1:
				xs, _ := s.SolveBatch([][]float64{b1, b2}, eps)
				results[i] = xs
			default:
				x, _ := s.Solve(b2, eps)
				results[i] = [][]float64{x}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 6; i++ {
		switch i % 3 {
		case 0:
			requireBitwiseVec(t, fmt.Sprintf("task %d", i), results[i][0], ref0)
		case 1:
			requireBitwiseVec(t, fmt.Sprintf("task %d col 0", i), results[i][0], ref1)
			requireBitwiseVec(t, fmt.Sprintf("task %d col 1", i), results[i][1], ref2)
		default:
			requireBitwiseVec(t, fmt.Sprintf("task %d", i), results[i][0], ref2)
		}
	}
}
