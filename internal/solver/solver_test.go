package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/wd"
)

// randRHS returns a mean-zero right-hand side.
func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	return b
}

// --- GreedyElimination ---

func TestEliminatePathToNothing(t *testing.T) {
	// A path is all degree ≤ 2: elimination should reduce it to nothing
	// (or nearly), in O(log n) rounds.
	g := gen.Path(256)
	rng := rand.New(rand.NewSource(1))
	el := GreedyElimination(g, rng, nil)
	if el.Reduced.N > 2 {
		t.Fatalf("path reduced to %d vertices", el.Reduced.N)
	}
	if el.Rounds > 60 {
		t.Fatalf("path elimination took %d rounds", el.Rounds)
	}
}

func TestEliminateLeavesHighDegreeCore(t *testing.T) {
	// A 3-regular-ish core must survive: elimination removes only deg ≤ 2.
	g := gen.Complete(6) // all degree 5
	rng := rand.New(rand.NewSource(2))
	el := GreedyElimination(g, rng, nil)
	if el.Reduced.N != 6 {
		t.Fatalf("K6 lost vertices: %d", el.Reduced.N)
	}
	if el.Reduced.M() != 15 {
		t.Fatalf("K6 lost edges: %d", el.Reduced.M())
	}
}

func TestEliminateTreePlusEdges(t *testing.T) {
	// Lemma 6.5: a graph with n vertices and n−1+m edges reduces to at most
	// ~2m−2 vertices... our greedy variant reaches the 2-core; verify the
	// reduced graph has min degree ≥ 3 and size O(m).
	rng := rand.New(rand.NewSource(3))
	n := 500
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: rng.Intn(i), V: i, W: 1 + rng.Float64()})
	}
	extra := 20
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		}
	}
	g := graph.FromEdges(n, edges)
	el := GreedyElimination(g, rng, nil)
	for v := 0; v < el.Reduced.N; v++ {
		// Degrees in the reduced multigraph (parallels already merged).
		if el.Reduced.Degree(v) <= 2 {
			t.Fatalf("reduced vertex %d has degree %d", v, el.Reduced.Degree(v))
		}
	}
	if el.Reduced.N > 4*extra {
		t.Fatalf("reduced size %d not O(extra=%d)", el.Reduced.N, extra)
	}
}

func TestEliminationRoundsLogarithmic(t *testing.T) {
	// E7's shape: rounds grow like log n on paths.
	rng := rand.New(rand.NewSource(4))
	r1 := GreedyElimination(gen.Path(1<<8), rng, nil).Rounds
	r2 := GreedyElimination(gen.Path(1<<12), rng, nil).Rounds
	if r2 > r1*4 {
		t.Fatalf("rounds scaled badly: %d (n=2^8) vs %d (n=2^12)", r1, r2)
	}
}

func TestEliminateBackSolveExact(t *testing.T) {
	// Eliminating and back-solving with an exact reduced solve must solve
	// the original system exactly.
	g := gen.WithUniformWeights(gen.Grid2D(8, 8), 0.5, 2, 5)
	rng := rand.New(rand.NewSource(6))
	el := GreedyElimination(g, rng, nil)
	lap := matrix.LaplacianOf(g)
	b := randRHS(g.N, 7)
	red, carry := el.ForwardRHS(b)
	// Exact reduced solve.
	comp, k := el.Reduced.ConnectedComponents()
	lf, err := matrix.NewLaplacianFactor(matrix.LaplacianOf(el.Reduced), comp, k)
	if err != nil {
		t.Fatal(err)
	}
	xr := lf.Solve(red)
	x := el.BackSolve(xr, carry)
	res := lap.Apply(x)
	for i := range b {
		if math.Abs(res[i]-b[i]) > 1e-7 {
			t.Fatalf("residual %v at %d", res[i]-b[i], i)
		}
	}
}

func TestEliminateBackSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.WithUniformWeights(gen.GNP(80, 0.04, seed), 0.5, 4, seed+1)
		el := GreedyElimination(g, rng, nil)
		lap := matrix.LaplacianOf(g)
		b := randRHS(g.N, seed+2)
		// Project b per component of g (null space of L).
		comp, k := g.ConnectedComponents()
		matrix.ProjectOutConstantMasked(b, comp, k)
		red, carry := el.ForwardRHS(b)
		rcomp, rk := el.Reduced.ConnectedComponents()
		lf, err := matrix.NewLaplacianFactor(matrix.LaplacianOf(el.Reduced), rcomp, rk)
		if err != nil {
			return false
		}
		x := el.BackSolve(lf.Solve(red), carry)
		res := lap.Apply(x)
		for i := range b {
			if math.Abs(res[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEliminationOpsIndependentWithinRounds(t *testing.T) {
	g := gen.Grid2D(12, 12)
	rng := rand.New(rand.NewSource(8))
	el := GreedyElimination(g, rng, nil)
	start := 0
	for _, end := range el.RoundEnd {
		touched := make(map[int32]bool)
		for _, op := range el.Ops[start:end] {
			if touched[op.V] {
				t.Fatal("vertex eliminated twice in a round")
			}
			touched[op.V] = true
		}
		for _, op := range el.Ops[start:end] {
			if op.Kind == ElimDeg1 && touched[op.A] {
				t.Fatal("deg1 neighbor also eliminated in same round")
			}
			if op.Kind == ElimDeg2 && (touched[op.A] || touched[op.B]) {
				t.Fatal("deg2 neighbor also eliminated in same round")
			}
		}
		start = end
	}
}

// --- IncrementalSparsify ---

func TestSparsifyShrinksAndSpans(t *testing.T) {
	g := gen.Torus2D(32, 32)
	rng := rand.New(rand.NewSource(9))
	res := IncrementalSparsify(g, DefaultSparsifyParams(), rng, nil)
	if res.H.M() >= g.M() {
		t.Fatalf("sparsifier did not shrink: %d >= %d", res.H.M(), g.M())
	}
	if !res.H.IsConnected() {
		t.Fatal("H lost connectivity")
	}
}

func TestSparsifySpectralSandwich(t *testing.T) {
	// Empirical Lemma 6.1 check via generalized Rayleigh quotients on random
	// vectors: 1 ≲ xᵀHx/xᵀGx ≲ O(κ) for x ⊥ 1. Random vectors cannot prove
	// the eigenvalue bound but wild violations would show up immediately.
	g := gen.Grid2D(24, 24)
	rng := rand.New(rand.NewSource(10))
	p := DefaultSparsifyParams()
	res := IncrementalSparsify(g, p, rng, nil)
	lg := matrix.LaplacianOf(g)
	lh := matrix.LaplacianOf(res.H)
	for trial := 0; trial < 30; trial++ {
		x := randRHS(g.N, int64(100+trial))
		qg, qh := lg.QuadForm(x), lh.QuadForm(x)
		ratio := qh / qg
		if ratio < 0.5 {
			t.Fatalf("H much smaller than G: ratio %v (violates G ⪯ H)", ratio)
		}
		if ratio > 50*p.Kappa {
			t.Fatalf("H much larger than κG: ratio %v vs κ=%v", ratio, p.Kappa)
		}
	}
}

func TestSparsifyKappaTradeoff(t *testing.T) {
	// Larger κ ⇒ fewer sampled edges (Lemma 6.1's S·log n/κ term).
	g := gen.Torus2D(40, 40)
	count := func(kappa float64) int {
		rng := rand.New(rand.NewSource(11))
		p := DefaultSparsifyParams()
		p.Kappa = kappa
		return IncrementalSparsify(g, p, rng, nil).Sampled
	}
	lo, hi := count(8), count(256)
	if hi >= lo {
		t.Fatalf("κ=256 sampled %d ≥ κ=8's %d", hi, lo)
	}
}

// --- Chain ---

func TestBuildChainShape(t *testing.T) {
	g := gen.Grid2D(40, 40)
	ch, err := BuildChain(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := ch.EdgeCounts()
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("chain grew at level %d: %v", i, counts)
		}
	}
	if ch.BottomG.N > DefaultChainParams().MaxBottomVertices {
		t.Fatalf("bottom too large: %d", ch.BottomG.N)
	}
}

func TestChainPrecondReducesError(t *testing.T) {
	// One preconditioner application must reduce the A-norm error of the
	// zero iterate substantially (it is an approximate inverse).
	g := gen.Grid2D(24, 24)
	ch, err := BuildChain(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lap := matrix.LaplacianOf(g)
	b := randRHS(g.N, 12)
	z := ch.PrecondApply(b)
	// Rayleigh check: z should positively correlate with the true solution
	// direction: zᵀb > 0 strongly.
	if matrix.Dot(z, b) <= 0 {
		t.Fatal("preconditioner output not positively correlated with rhs")
	}
	// A z should not be wildly off b in scale.
	az := lap.Apply(z)
	num := matrix.Dot(az, b) / (matrix.Norm2(az) * matrix.Norm2(b))
	if num < 0.1 {
		t.Fatalf("preconditioned direction nearly orthogonal to b: cos=%v", num)
	}
}

// --- Solver end to end ---

func solveAndCheck(t *testing.T, g *graph.Graph, eps float64) SolveStats {
	t.Helper()
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 13)
	x, st := s.Solve(b, eps)
	res := s.Residual(x, b)
	if res > eps*10 {
		t.Fatalf("residual %v after %d iterations (target %v)", res, st.Iterations, eps)
	}
	return st
}

func TestSolveGrid(t *testing.T) {
	solveAndCheck(t, gen.Grid2D(32, 32), 1e-8)
}

func TestSolveWeightedGrid(t *testing.T) {
	solveAndCheck(t, gen.WithUniformWeights(gen.Grid2D(24, 24), 0.01, 100, 14), 1e-8)
}

func TestSolveGNP(t *testing.T) {
	solveAndCheck(t, gen.GNP(800, 0.01, 15), 1e-8)
}

func TestSolvePathOfCliques(t *testing.T) {
	solveAndCheck(t, gen.PathOfCliques(8, 40), 1e-8)
}

func TestSolve3DGrid(t *testing.T) {
	solveAndCheck(t, gen.Grid3D(10, 10, 10), 1e-6)
}

func TestSolveDisconnected(t *testing.T) {
	var edges []graph.Edge
	off := 0
	for c := 0; c < 3; c++ {
		for i := 0; i+1 < 50; i++ {
			edges = append(edges, graph.Edge{U: off + i, V: off + i + 1, W: 1})
		}
		off += 50
	}
	g := graph.FromEdges(150, edges)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 16)
	comp, k := g.ConnectedComponents()
	matrix.ProjectOutConstantMasked(b, comp, k)
	x, _ := s.Solve(b, 1e-8)
	if res := s.Residual(x, b); res > 1e-6 {
		t.Fatalf("disconnected residual %v", res)
	}
}

func TestSolveChebyshev(t *testing.T) {
	g := gen.Grid2D(24, 24)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 17)
	x, st := s.SolveChebyshev(b, 1e-6)
	if !st.Converged {
		t.Fatalf("Chebyshev did not converge: residual %v", st.Residual)
	}
	if res := s.Residual(x, b); res > 1e-5 {
		t.Fatalf("Chebyshev residual %v", res)
	}
}

func TestSolveMatchesDirect(t *testing.T) {
	// Compare against the dense pseudo-inverse on a small graph.
	g := gen.Grid2D(8, 8)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, k := g.ConnectedComponents()
	lf, err := matrix.NewLaplacianFactor(matrix.LaplacianOf(g), comp, k)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 18)
	want := lf.Solve(b)
	got, _ := s.Solve(b, 1e-10)
	matrix.ProjectOutConstant(got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveEpsilonSweep(t *testing.T) {
	// log(1/ε) scaling: tighter ε must not blow up iteration counts.
	g := gen.Grid2D(32, 32)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 19)
	_, st1 := s.Solve(b, 1e-2)
	_, st2 := s.Solve(b, 1e-10)
	if st2.Iterations > 10*st1.Iterations+20 {
		t.Fatalf("ε=1e-10 took %d iters vs %d for 1e-2: not log(1/ε)-like", st2.Iterations, st1.Iterations)
	}
}

func TestBaselinesConverge(t *testing.T) {
	g := gen.Grid2D(16, 16)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	b := randRHS(g.N, 20)
	x, st := CG(lap, b, comp, k, 1e-8, 10000, nil)
	if !st.Converged {
		t.Fatalf("CG did not converge: %v", st.Residual)
	}
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-5 {
			t.Fatalf("CG residual at %d: %v", i, ax[i]-b[i])
		}
	}
	_, st2 := JacobiPCG(lap, b, comp, k, 1e-8, 10000, nil)
	if !st2.Converged {
		t.Fatalf("Jacobi-PCG did not converge: %v", st2.Residual)
	}
}

func TestChainBeatsCGIterationsIllConditioned(t *testing.T) {
	// The headline practical claim: on an ill-conditioned weighted grid
	// (exponentially spread weight classes — the regime where low-stretch
	// structure matters), the chain-preconditioned solver needs far fewer
	// iterations than plain CG.
	g := gen.WithExponentialWeights(gen.Grid2D(40, 40), 8, 8, 21)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	b := randRHS(g.N, 22)
	_, cgStats := CG(lap, b, comp, k, 1e-8, 20000, nil)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, chStats := s.Solve(b, 1e-8)
	if chStats.Iterations >= cgStats.Iterations {
		t.Fatalf("chain (%d iters) did not beat CG (%d iters)", chStats.Iterations, cgStats.Iterations)
	}
}

func TestSDDSolverLaplacianPassThrough(t *testing.T) {
	g := gen.Grid2D(12, 12)
	lap := matrix.LaplacianOf(g)
	s, err := NewSDD(lap, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.direct {
		t.Fatal("Laplacian input should bypass Gremban")
	}
	b := randRHS(g.N, 23)
	x, _ := s.Solve(b, 1e-8)
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-5 {
			t.Fatalf("residual %v", ax[i]-b[i])
		}
	}
}

func TestSDDSolverGeneral(t *testing.T) {
	// SDD matrix with positive off-diagonals and slack: route via Gremban.
	n := 40
	var rows, cols []int
	var vals []float64
	add := func(r, c int, v float64) {
		rows = append(rows, r)
		cols = append(cols, c)
		vals = append(vals, v)
	}
	for i := 0; i < n; i++ {
		diag := 0.1
		if i > 0 {
			sign := 1.0
			if i%3 == 0 {
				sign = -1
			}
			add(i, i-1, sign*1.0)
			add(i-1, i, sign*1.0)
			diag += 1
		}
		if i < n-1 {
			diag += 1
		}
		add(i, i, diag)
	}
	a, err := matrix.NewSparseFromTriplets(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSDD(a, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(n, 24)
	x, _ := s.Solve(b, 1e-9)
	ax := a.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-5 {
			t.Fatalf("SDD residual %v at %d", ax[i]-b[i], i)
		}
	}
}

func TestSolverWorkDepthRecorded(t *testing.T) {
	var rec wd.Recorder
	g := gen.Grid2D(24, 24)
	s, err := New(g, DefaultChainParams(), &rec)
	if err != nil {
		t.Fatal(err)
	}
	build := rec.Work()
	if build == 0 {
		t.Fatal("construction recorded no work")
	}
	b := randRHS(g.N, 25)
	_, _ = s.Solve(b, 1e-6)
	if rec.Work() <= build {
		t.Fatal("solve recorded no work")
	}
}

func TestSolveZeroRHS(t *testing.T) {
	g := gen.Grid2D(8, 8)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x, st := s.Solve(make([]float64, g.N), 1e-8)
	if !st.Converged {
		t.Fatal("zero rhs should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestSolveConstantRHSProjected(t *testing.T) {
	// b = 1 is pure null space: solution is 0 after projection.
	g := gen.Grid2D(8, 8)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N)
	for i := range b {
		b[i] = 3.5
	}
	x, st := s.Solve(b, 1e-8)
	if !st.Converged {
		t.Fatal("constant rhs should converge immediately after projection")
	}
	for _, v := range x {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("nonzero solution %v for null-space rhs", v)
		}
	}
}
