package solver

import (
	"math"
	"math/rand"

	"parlap/internal/graph"
	"parlap/internal/lowstretch"
	"parlap/internal/wd"
)

// SparsifyParams tunes IncrementalSparsify.
type SparsifyParams struct {
	// Kappa is the target relative condition number: the output satisfies
	// (approximately, whp) G ⪯ H ⪯ O(κ)·G.
	Kappa float64
	// OversampleC multiplies the per-edge sampling probability
	// p_e = min(1, C·str_e·log n/κ). The paper's cIS; default 1.
	OversampleC float64
	// Beta and Lambda select the low-stretch subgraph (Theorem 5.9 knobs).
	Beta   float64
	Lambda int
	// PaperConstants switches the subgraph construction to the paper-exact
	// parameter schedule.
	PaperConstants bool
	// Workers is the goroutine count threaded into the sparsification
	// sub-stages (low-stretch subgraph construction, decomposition, stretch
	// machinery): 0 = GOMAXPROCS, 1 = sequential. BuildChainOpts sets it
	// from Options.Workers, making Workers:1 single-goroutine end-to-end.
	Workers int
}

// DefaultSparsifyParams returns settings that shrink benchmark graphs by a
// solid factor per level while keeping measured condition numbers near κ.
// The relatively large κ keeps the recursion budget Π√κᵢ affordable by
// making each level shrink hard (the §6.3 trade: fewer, coarser levels).
func DefaultSparsifyParams() SparsifyParams {
	return SparsifyParams{Kappa: 100, OversampleC: 0.15, Beta: 4, Lambda: 2}
}

// SparsifyResult couples the preconditioner H with its provenance.
type SparsifyResult struct {
	H        *graph.Graph // the preconditioner graph (conductances)
	Subgraph []int        // edge ids of Ĝ within G
	Sampled  int          // off-subgraph edges that survived sampling
	StretchS float64      // average stretch of G w.r.t. the tree part of Ĝ
}

// IncrementalSparsify implements Lemma 6.1 with the KMP oversampling
// scheme, using a low-stretch *subgraph* Ĝ in place of the spanning tree —
// the substitution at the heart of the paper's Section 6 (Lemma 6.2):
//
//  1. build Ĝ = LSSubgraph(G) on the length graph (length = 1/conductance);
//  2. compute every off-subgraph edge's stretch with respect to Ĝ's tree
//     part (an upper bound on its stretch w.r.t. Ĝ, hence a valid
//     oversampling weight);
//  3. H := κ·Ĝ ∪ {off-subgraph e sampled with p_e = min(1, C·str_e·ln n/κ),
//     reweighted to w_e/p_e}.
//
// Scaling Ĝ by κ bounds H ⪯ κ·G on the subgraph part while the sampled
// part reconstructs G's remaining spectrum whp, giving G ⪯ H ⪯ O(κ)·G with
// |E(H)| = |E(Ĝ)| + O(S·log n/κ) as in the lemma.
func IncrementalSparsify(g *graph.Graph, p SparsifyParams, rng *rand.Rand, rec *wd.Recorder) *SparsifyResult {
	n := g.N
	if p.Kappa < 2 {
		p.Kappa = 2
	}
	// Length view for the stretch machinery.
	lengths := make([]graph.Edge, len(g.Edges))
	for i, e := range g.Edges {
		w := e.W
		if w <= 0 {
			w = 1e-300
		}
		lengths[i] = graph.Edge{U: e.U, V: e.V, W: 1 / w}
	}
	lg := graph.FromEdgesW(p.Workers, n, lengths)
	lsp := lowstretch.ParamsForBeta(n, p.Beta, p.Lambda, p.PaperConstants)
	lsp.Workers = p.Workers
	lsp.Decomp.Workers = p.Workers
	sub, _ := lowstretch.LSSubgraph(lg, lsp, rng, rec)
	inSub := make([]bool, len(g.Edges))
	for _, id := range sub.EdgeIDs() {
		inSub[id] = true
	}
	// Stretch w.r.t. the tree part (upper bounds stretch w.r.t. Ĝ).
	ti := lowstretch.NewTreeIndex(lg, sub.Tree)
	logn := math.Log(float64(n) + 2)
	var edges []graph.Edge
	res := &SparsifyResult{Subgraph: sub.EdgeIDs()}
	totalStretch := 0.0
	for id, e := range g.Edges {
		if inSub[id] {
			edges = append(edges, graph.Edge{U: e.U, V: e.V, W: e.W * p.Kappa})
			continue
		}
		str := ti.Dist(e.U, e.V) / lg.Edges[id].W // d_T(u,v)/len(e)
		if math.IsInf(str, 1) || math.IsNaN(str) {
			str = 1 // disconnected tree part (cannot happen for spanning forests)
		}
		if str < 1 {
			str = 1 // stretch of any edge w.r.t. a subgraph of G is ≥ 1... for trees
		}
		totalStretch += str
		pe := p.OversampleC * str * logn / p.Kappa
		if pe >= 1 {
			edges = append(edges, e)
			res.Sampled++
			continue
		}
		if rng.Float64() < pe {
			edges = append(edges, graph.Edge{U: e.U, V: e.V, W: e.W / pe})
			res.Sampled++
		}
	}
	if off := len(g.Edges) - len(res.Subgraph); off > 0 {
		res.StretchS = totalStretch / float64(off)
	}
	res.H = graph.FromEdgesW(p.Workers, n, edges)
	rec.Add(int64(len(g.Edges)), 1)
	return res
}
