// Package solver implements the paper's Section 6: the parallel SDD solver
// built from a preconditioner chain (Definition 6.3) whose levels are
// produced by incremental sparsification (Lemma 6.1) over low-stretch
// subgraphs (Theorem 5.9) and shrunk by parallel greedy elimination
// (Lemma 6.5), solved by recursive preconditioned Chebyshev iteration with
// a dense LDLᵀ factorization at the bottom (Fact 6.4).
package solver

import (
	"math/rand"
	"sort"

	"parlap/internal/graph"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// elimKind distinguishes the three elimination operations.
type elimKind uint8

const (
	elimDeg0 elimKind = iota // isolated vertex: x_v := 0
	elimDeg1                 // leaf: x_v = x_a + b_v/w1
	elimDeg2                 // series splice: x_v = (w1·x_a + w2·x_b + b_v)/(w1+w2)
)

// ElimOp is one recorded partial-Cholesky elimination. Ops within a round
// touch pairwise non-adjacent vertices, so each round's back-substitutions
// are independent (parallelizable).
type ElimOp struct {
	Kind   elimKind
	V      int32 // eliminated vertex (original numbering of the input graph)
	A, B   int32 // neighbors (deg1 uses A; deg2 uses A and B)
	W1, W2 float64
}

// Elimination is the result of GreedyElimination: the reduced graph, the
// vertex mapping, and the replayable elimination log.
type Elimination struct {
	OrigN    int
	Ops      []ElimOp
	RoundEnd []int // Ops prefix length after each round
	Keep     []int // reduced index -> original vertex
	Pos      []int // original vertex -> reduced index (-1 if eliminated)
	Reduced  *graph.Graph
	Rounds   int
}

// coin3 is a deterministic 1/3-probability coin: a splitmix64-style hash of
// (seed, v). Using a counter-free hash instead of a shared rng stream lets
// the per-round marking run in parallel without changing its outcome.
func coin3(seed uint64, v int32) bool {
	x := seed ^ (uint64(uint32(v))+1)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x%3 == 0
}

// GreedyElimination performs the parallel partial Cholesky factorization of
// Lemma 6.5 on a Laplacian graph with the default worker count; see
// GreedyEliminationW.
func GreedyElimination(g *graph.Graph, rng *rand.Rand, rec *wd.Recorder) *Elimination {
	return GreedyEliminationW(0, g, rng, rec)
}

// GreedyEliminationW performs the parallel partial Cholesky factorization of
// Lemma 6.5 on a Laplacian graph (weights are conductances): repeatedly
// eliminate all degree-≤1 vertices (rake) and a random independent set of
// degree-2 vertices (compress, via the paper's 1/3-coin marking), recording
// every operation for exact back-substitution. Parallel edges are merged and
// self-loops dropped on entry.
//
// Each round's candidate scan, coin marking and willingness test run with
// workers goroutines (0 = GOMAXPROCS, 1 = sequential); the coins are a hash
// of a per-round seed drawn from rng, so the elimination is identical for
// every worker count given the same rng state. The greedy independent-set
// pass and the adjacency splice stay sequential — they are O(candidates)
// and mutate shared maps.
//
// The recorder is charged work = adjacency touched and depth = 1 per round,
// matching the O(n+m) work / O(log n) depth bound.
func GreedyEliminationW(workers int, g *graph.Graph, rng *rand.Rand, rec *wd.Recorder) *Elimination {
	n := g.N
	// Adjacency as conductance maps with parallels merged.
	adj := make([]map[int32]float64, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]float64)
	}
	for _, e := range g.Edges {
		if e.U == e.V || e.W == 0 {
			continue
		}
		adj[e.U][int32(e.V)] += e.W
		adj[e.V][int32(e.U)] += e.W
	}
	el := &Elimination{OrigN: n, Pos: make([]int, n)}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	heads := make([]bool, n)
	accepted := make([]bool, n)
	for {
		// Candidates at round start (parallel pack over the vertex set;
		// adjacency maps are read-only during the scan).
		cand := par.FilterIndexW(workers, n, func(v int) bool {
			return alive[v] && len(adj[v]) <= 2
		})
		if len(cand) == 0 {
			break
		}
		// Coin flips for degree-2 vertices (the paper's independent-set
		// marking); degree ≤ 1 vertices are always willing. The round seed
		// is drawn sequentially so the rng stream stays schedule-free.
		roundSeed := uint64(rng.Int63())
		par.ForW(workers, len(cand), func(i int) {
			v := cand[i]
			if len(adj[v]) == 2 {
				heads[v] = coin3(roundSeed, int32(v))
			}
		})
		willing := make([]bool, len(cand))
		par.ForW(workers, len(cand), func(i int) {
			v := int32(cand[i])
			if len(adj[v]) < 2 {
				willing[i] = true
				return
			}
			if !heads[v] {
				return
			}
			for u := range adj[v] {
				if du := len(adj[u]); du == 2 && heads[u] {
					return // neighbor flipped heads too: unmarked
				}
			}
			willing[i] = true
		})
		// Greedy pass enforcing strict independence (no two eliminated
		// vertices adjacent), which keeps intra-round back-substitutions
		// independent even across rake/compress interactions.
		var roundOps []ElimOp
		touched := 0
		for i, vi := range cand {
			if !willing[i] {
				continue
			}
			v := int32(vi)
			conflict := false
			for u := range adj[v] {
				if accepted[u] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			switch len(adj[v]) {
			case 0:
				roundOps = append(roundOps, ElimOp{Kind: elimDeg0, V: v})
			case 1:
				var a int32
				var w float64
				for u, wu := range adj[v] {
					a, w = u, wu
				}
				roundOps = append(roundOps, ElimOp{Kind: elimDeg1, V: v, A: a, W1: w})
			case 2:
				var ns [2]int32
				var ws [2]float64
				i := 0
				for u, wu := range adj[v] {
					ns[i], ws[i] = u, wu
					i++
				}
				// Canonical order for determinism.
				if ns[0] > ns[1] {
					ns[0], ns[1] = ns[1], ns[0]
					ws[0], ws[1] = ws[1], ws[0]
				}
				roundOps = append(roundOps, ElimOp{Kind: elimDeg2, V: v, A: ns[0], B: ns[1], W1: ws[0], W2: ws[1]})
			}
			accepted[v] = true
			touched += len(adj[v]) + 1
		}
		// Reset the per-round marks (only candidate slots were written).
		for _, v := range cand {
			heads[v] = false
			accepted[v] = false
		}
		if len(roundOps) == 0 {
			// All willing vertices conflicted — possible only when every
			// candidate had an accepted neighbor, which cannot happen in a
			// greedy pass (first willing vertex is always accepted); if no
			// vertex was willing (all deg-2 coin flips failed), re-flip.
			continue
		}
		// Apply the round: remove vertices, splice degree-2 edges.
		for _, op := range roundOps {
			v := op.V
			switch op.Kind {
			case elimDeg1:
				delete(adj[op.A], v)
			case elimDeg2:
				delete(adj[op.A], v)
				delete(adj[op.B], v)
				w := op.W1 * op.W2 / (op.W1 + op.W2)
				adj[op.A][op.B] += w
				adj[op.B][op.A] += w
			}
			adj[v] = nil
			alive[v] = false
			aliveCount--
		}
		el.Ops = append(el.Ops, roundOps...)
		el.RoundEnd = append(el.RoundEnd, len(el.Ops))
		el.Rounds++
		rec.Add(int64(touched+len(cand)), 1)
		if aliveCount == 0 {
			break
		}
	}
	// Build the reduced graph.
	for v := 0; v < n; v++ {
		if alive[v] {
			el.Pos[v] = len(el.Keep)
			el.Keep = append(el.Keep, v)
		} else {
			el.Pos[v] = -1
		}
	}
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		for u, w := range adj[v] {
			if int32(v) < u {
				edges = append(edges, graph.Edge{U: el.Pos[v], V: el.Pos[int(u)], W: w})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	el.Reduced = graph.FromEdgesW(workers, len(el.Keep), edges)
	return el
}

// roundBounds returns the Ops index range of round ri.
func (el *Elimination) roundBounds(ri int) (lo, hi int) {
	lo = 0
	if ri > 0 {
		lo = el.RoundEnd[ri-1]
	}
	return lo, el.RoundEnd[ri]
}

// ForwardRHS pushes a right-hand side through the elimination with the
// default worker count; see ForwardRHSW.
func (el *Elimination) ForwardRHS(b []float64) (reduced, carry []float64) {
	return el.ForwardRHSW(0, b)
}

// ForwardRHSW pushes a right-hand side through the elimination: eliminated
// vertices forward their b-mass to their neighbors. It returns the reduced
// right-hand side and the per-op carried values needed by BackSolve.
// The input b is not modified.
//
// Within a round the eliminated vertices form an independent set, and a
// round's scatter targets (neighbors) are never that round's eliminated
// vertices — so the carry reads of a round see no same-round writes and run
// in parallel. The scatter itself stays sequential in op order: two ops may
// share a neighbor, and a fixed accumulation order keeps the float64 sums
// deterministic.
func (el *Elimination) ForwardRHSW(workers int, b []float64) (reduced, carry []float64) {
	work := make([]float64, el.OrigN)
	copy(work, b)
	carry = make([]float64, len(el.Ops))
	for ri := 0; ri < el.Rounds; ri++ {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				carry[lo+k] = work[ops[k].V]
			}
		})
		for k := range ops {
			op := &ops[k]
			bv := carry[lo+k]
			switch op.Kind {
			case elimDeg1:
				work[op.A] += bv
			case elimDeg2:
				s := op.W1 + op.W2
				work[op.A] += bv * op.W1 / s
				work[op.B] += bv * op.W2 / s
			}
		}
	}
	reduced = make([]float64, len(el.Keep))
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			reduced[j] = work[el.Keep[j]]
		}
	})
	return reduced, carry
}

// ForwardRHSBatchW pushes k right-hand sides through the elimination with
// one replay of the op log: each op's reads and writes loop over the columns
// before advancing, so the log (and its cache traffic) is traversed once per
// round instead of once per RHS. Column c of the result is bitwise identical
// to ForwardRHSW on bs[c] alone.
func (el *Elimination) ForwardRHSBatchW(workers int, bs [][]float64) (reduced, carry [][]float64) {
	kcols := len(bs)
	if kcols == 1 {
		r1, c1 := el.ForwardRHSW(workers, bs[0])
		return [][]float64{r1}, [][]float64{c1}
	}
	works := make([][]float64, kcols)
	for c := range works {
		works[c] = make([]float64, el.OrigN)
		copy(works[c], bs[c])
	}
	carry = make([][]float64, kcols)
	for c := range carry {
		carry[c] = make([]float64, len(el.Ops))
	}
	for ri := 0; ri < el.Rounds; ri++ {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				v := ops[k].V
				for c := 0; c < kcols; c++ {
					carry[c][lo+k] = works[c][v]
				}
			}
		})
		for k := range ops {
			op := &ops[k]
			switch op.Kind {
			case elimDeg1:
				for c := 0; c < kcols; c++ {
					works[c][op.A] += carry[c][lo+k]
				}
			case elimDeg2:
				s := op.W1 + op.W2
				for c := 0; c < kcols; c++ {
					bv := carry[c][lo+k]
					works[c][op.A] += bv * op.W1 / s
					works[c][op.B] += bv * op.W2 / s
				}
			}
		}
	}
	reduced = make([][]float64, kcols)
	for c := range reduced {
		reduced[c] = make([]float64, len(el.Keep))
	}
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			kv := el.Keep[j]
			for c := 0; c < kcols; c++ {
				reduced[c][j] = works[c][kv]
			}
		}
	})
	return reduced, carry
}

// BackSolve extends a solution of the reduced system with the default worker
// count; see BackSolveW.
func (el *Elimination) BackSolve(xReduced, carry []float64) []float64 {
	return el.BackSolveW(0, xReduced, carry)
}

// BackSolveW extends a solution of the reduced system to the full system by
// replaying the elimination log in reverse, round by round. carry must come
// from the ForwardRHS call for the same right-hand side.
//
// Each op writes only x[op.V], and a round's neighbor reads (x[op.A],
// x[op.B]) refer to vertices eliminated in later rounds or kept — already
// final when the round replays — so ops within a round run in parallel,
// realizing the Lemma 6.5 claim that rounds are the only sequential
// dependency.
func (el *Elimination) BackSolveW(workers int, xReduced, carry []float64) []float64 {
	x := make([]float64, el.OrigN)
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			x[el.Keep[j]] = xReduced[j]
		}
	})
	for ri := el.Rounds - 1; ri >= 0; ri-- {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				op := &ops[k]
				switch op.Kind {
				case elimDeg0:
					x[op.V] = 0
				case elimDeg1:
					x[op.V] = x[op.A] + carry[lo+k]/op.W1
				case elimDeg2:
					x[op.V] = (op.W1*x[op.A] + op.W2*x[op.B] + carry[lo+k]) / (op.W1 + op.W2)
				}
			}
		})
	}
	return x
}

// BackSolveBatchW is BackSolveW over k columns with one reverse replay of
// the op log. Column c is bitwise identical to BackSolveW on column c.
func (el *Elimination) BackSolveBatchW(workers int, xReduced, carry [][]float64) [][]float64 {
	kcols := len(xReduced)
	if kcols == 1 {
		return [][]float64{el.BackSolveW(workers, xReduced[0], carry[0])}
	}
	xs := make([][]float64, kcols)
	for c := range xs {
		xs[c] = make([]float64, el.OrigN)
	}
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			kv := el.Keep[j]
			for c := 0; c < kcols; c++ {
				xs[c][kv] = xReduced[c][j]
			}
		}
	})
	for ri := el.Rounds - 1; ri >= 0; ri-- {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				op := &ops[k]
				switch op.Kind {
				case elimDeg0:
					for c := 0; c < kcols; c++ {
						xs[c][op.V] = 0
					}
				case elimDeg1:
					for c := 0; c < kcols; c++ {
						xs[c][op.V] = xs[c][op.A] + carry[c][lo+k]/op.W1
					}
				case elimDeg2:
					for c := 0; c < kcols; c++ {
						xs[c][op.V] = (op.W1*xs[c][op.A] + op.W2*xs[c][op.B] + carry[c][lo+k]) / (op.W1 + op.W2)
					}
				}
			}
		})
	}
	return xs
}
