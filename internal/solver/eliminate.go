// Package solver implements the paper's Section 6: the parallel SDD solver
// built from a preconditioner chain (Definition 6.3) whose levels are
// produced by incremental sparsification (Lemma 6.1) over low-stretch
// subgraphs (Theorem 5.9) and shrunk by parallel greedy elimination
// (Lemma 6.5), solved by recursive preconditioned Chebyshev iteration with
// a dense LDLᵀ factorization at the bottom (Fact 6.4).
package solver

import (
	"fmt"
	"math/rand"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// ElimKind distinguishes the three elimination operations. It is exported
// (with its constants) so the chain snapshot codec can encode op logs with a
// stable one-byte wire form.
type ElimKind uint8

const (
	ElimDeg0 ElimKind = iota // isolated vertex: x_v := 0
	ElimDeg1                 // leaf: x_v = x_a + b_v/w1
	ElimDeg2                 // series splice: x_v = (w1·x_a + w2·x_b + b_v)/(w1+w2)
)

// ElimOp is one recorded partial-Cholesky elimination. Ops within a round
// touch pairwise non-adjacent vertices, so each round's back-substitutions
// are independent (parallelizable).
type ElimOp struct {
	Kind   ElimKind
	V      int32 // eliminated vertex (original numbering of the input graph)
	A, B   int32 // neighbors (deg1 uses A; deg2 uses A and B)
	W1, W2 float64
}

// Elimination is the result of GreedyElimination: the reduced graph, the
// vertex mapping, and the replayable elimination log.
//
// Alongside the op log it carries an owner-computes reverse index: for each
// round, the ops' scatter targets (the op.A/op.B neighbors that receive
// forwarded b-mass) grouped by receiving vertex, in op order within each
// group. ForwardRHS uses it to let every receiver accumulate its own round
// contributions in parallel — two ops sharing a neighbor no longer force a
// sequential scatter — while reproducing the sequential op-order float sums
// bitwise (per receiver, the accumulation order is unchanged).
type Elimination struct {
	OrigN    int
	Ops      []ElimOp
	RoundEnd []int // Ops prefix length after each round
	Keep     []int // reduced index -> original vertex
	Pos      []int // original vertex -> reduced index (-1 if eliminated)
	Reduced  *graph.Graph
	Rounds   int

	// Owner-computes reverse index, flattened across rounds: round ri owns
	// receiver groups recvRoundEnd[ri-1]..recvRoundEnd[ri]; group gi receives
	// at vertex recvVert[gi] the contributions of items
	// recvItemEnd[gi-1]..recvItemEnd[gi], each naming an op (recvOp, a global
	// Ops index) and carrying the precomputed forwarding coefficient
	// (recvCoef: 1 for a rake, wᵢ/(w₁+w₂) for the receiver's side of a
	// splice) so the scatter is one multiply-add per item with no op load.
	// Items within a group are in ascending op order.
	recvRoundEnd []int32
	recvVert     []int32
	recvItemEnd  []int32
	recvOp       []int32
	recvCoef     []float64
}

// coin3 is a deterministic 1/3-probability coin: a splitmix64-style hash of
// (seed, v). Using a counter-free hash instead of a shared rng stream lets
// the per-round marking run in parallel without changing its outcome.
func coin3(seed uint64, v int32) bool {
	x := seed ^ (uint64(uint32(v))+1)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x%3 == 0
}

// elimEdge is one live undirected edge of the elimination's working graph,
// normalized to u < v. Parallel edges are merged on entry and after every
// splice round, so adjacency lists are duplicate-free. seq is the edge's
// position in the array handed to dedupElimEdges — the sort's explicit
// tie-breaker (par.SortW's leaf pass is not stable, so input order must be
// part of the key to be preserved).
type elimEdge struct {
	u, v, seq int32
	w         float64
}

// dedupElimEdges sorts edges by (u, v, input position) and merges duplicates
// by summing weights in segment order. The position tie-breaker makes the
// key a total order, so segment order equals input order for every worker
// count and schedule; callers arrange the input as "surviving edges first,
// then splice edges in op order", reproducing the incremental accumulation
// a mutable adjacency would do.
func dedupElimEdges(workers int, edges []elimEdge) []elimEdge {
	par.ForChunkedW(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			edges[i].seq = int32(i)
		}
	})
	par.SortW(workers, edges, func(a, b elimEdge) bool {
		if a.u != b.u {
			return a.u < b.u
		}
		if a.v != b.v {
			return a.v < b.v
		}
		return a.seq < b.seq
	})
	m := len(edges)
	heads := par.FilterIndexW(workers, m, func(i int) bool {
		return i == 0 || edges[i].u != edges[i-1].u || edges[i].v != edges[i-1].v
	})
	out := make([]elimEdge, len(heads))
	par.ForW(workers, len(heads), func(j int) {
		lo := heads[j]
		hi := m
		if j+1 < len(heads) {
			hi = heads[j+1]
		}
		e := edges[lo]
		for i := lo + 1; i < hi; i++ {
			e.w += edges[i].w
		}
		out[j] = e
	})
	return out
}

// buildElimCSR packs the (deduped, (u,v)-sorted) edge list into half-edge
// CSR arrays via the offset-precomputed pack. Because edges are sorted and
// scattered in index order, every vertex's adjacency comes out sorted
// ascending — the canonical neighbor order the op log relies on.
func buildElimCSR(workers, n int, edges []elimEdge) (off []int32, nbr []int32, wt []float64) {
	offInt, pos := par.HalfEdgePackW(workers, n, len(edges), func(i int) (int, int) {
		return int(edges[i].u), int(edges[i].v)
	})
	off = make([]int32, n+1)
	par.ForChunkedW(workers, n+1, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			off[v] = int32(offInt[v])
		}
	})
	nbr = make([]int32, 2*len(edges))
	wt = make([]float64, 2*len(edges))
	par.ForChunkedW(workers, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			pu, pv := pos[2*i], pos[2*i+1]
			nbr[pu], wt[pu] = e.v, e.w
			nbr[pv], wt[pv] = e.u, e.w
		}
	})
	return off, nbr, wt
}

// recvItem is one scatter contribution during reverse-index construction.
type recvItem struct {
	tgt  int32   // receiving vertex
	op   int32   // global Ops index
	coef float64 // forwarding coefficient for this (op, target) pair
}

// GreedyElimination performs the parallel partial Cholesky factorization of
// Lemma 6.5 on a Laplacian graph with the default worker count; see
// GreedyEliminationW.
func GreedyElimination(g *graph.Graph, rng *rand.Rand, rec *wd.Recorder) *Elimination {
	return GreedyEliminationW(0, g, rng, rec)
}

// GreedyEliminationW performs the parallel partial Cholesky factorization of
// Lemma 6.5 on a Laplacian graph (weights are conductances): repeatedly
// eliminate all degree-≤1 vertices (rake) and a random independent set of
// degree-2 vertices (compress, via the paper's 1/3-coin marking), recording
// every operation for exact back-substitution. Parallel edges are merged and
// self-loops dropped on entry.
//
// The working graph is a compact slice-CSR rebuilt by pack after each round
// (candidate filter, coin marking, willingness, acceptance, op emission and
// the edge splice are all flat par.ForW / par.FilterIndexW passes — no
// per-vertex maps anywhere on the path). The acceptance pass computes the
// lexicographically-first independent set of willing vertices in one
// parallel sweep: two willing degree-2 vertices are never adjacent (mutual
// heads unmark both), so conflict chains among willing vertices have at most
// three vertices and a depth-2 neighbor lookahead decides every vertex
// exactly as the sequential greedy scan would.
//
// The coins are a hash of a per-round seed drawn from rng, so the op log is
// identical for every worker count given the same rng state; merged edge
// weights are too, because the rebuild's stable sort fixes the summation
// order of spliced parallel edges independent of the schedule.
//
// The recorder is charged work = adjacency touched and depth = 1 per round,
// matching the O(n+m) work / O(log n) depth bound.
func GreedyEliminationW(workers int, g *graph.Graph, rng *rand.Rand, rec *wd.Recorder) *Elimination {
	n := g.N
	// Normalize and merge the input edge list (drop self-loops and zero
	// weights, u < v, parallels summed in edge-list order).
	liveIdx := par.FilterIndexW(workers, len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U != e.V && e.W != 0
	})
	edges := make([]elimEdge, len(liveIdx))
	par.ForW(workers, len(liveIdx), func(i int) {
		e := g.Edges[liveIdx[i]]
		u, v := int32(e.U), int32(e.V)
		if u > v {
			u, v = v, u
		}
		edges[i] = elimEdge{u: u, v: v, w: e.W}
	})
	edges = dedupElimEdges(workers, edges)
	off, nbr, wt := buildElimCSR(workers, n, edges)

	el := &Elimination{OrigN: n, Pos: make([]int, n)}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	heads := make([]bool, n)
	willing := make([]bool, n)
	accepted := make([]bool, n)
	deg := func(v int) int32 { return off[v+1] - off[v] }
	for {
		// Candidates at round start: alive vertices of (deduped) degree ≤ 2.
		// The CSR is rebuilt each round, so degrees are exact.
		cand := par.FilterIndexW(workers, n, func(v int) bool {
			return alive[v] && deg(v) <= 2
		})
		if len(cand) == 0 {
			break
		}
		// Coin flips for degree-2 vertices (the paper's independent-set
		// marking); degree ≤ 1 vertices are always willing. The round seed
		// is drawn sequentially so the rng stream stays schedule-free.
		roundSeed := uint64(rng.Int63())
		par.ForW(workers, len(cand), func(i int) {
			v := cand[i]
			if deg(v) == 2 {
				heads[v] = coin3(roundSeed, int32(v))
			}
		})
		par.ForW(workers, len(cand), func(i int) {
			v := cand[i]
			if deg(v) < 2 {
				willing[v] = true
				return
			}
			if !heads[v] {
				return
			}
			for j := off[v]; j < off[v+1]; j++ {
				if u := nbr[j]; deg(int(u)) == 2 && heads[u] {
					return // neighbor flipped heads too: unmarked
				}
			}
			willing[v] = true
		})
		// Acceptance: the lexicographically-first MIS of the willing set,
		// in one parallel pass. v is rejected by a willing neighbor u < v
		// unless u is itself rejected by a willing neighbor w < u (w ≠ v);
		// since willing conflict chains have ≤ 3 vertices, this depth-2
		// rule terminates the recursion exactly.
		par.ForW(workers, len(cand), func(i int) {
			v := cand[i]
			if !willing[v] {
				return
			}
			ok := true
			for j := off[v]; j < off[v+1] && ok; j++ {
				u := int(nbr[j])
				if !willing[u] || u >= v {
					continue
				}
				uAccepted := true
				for jj := off[u]; jj < off[u+1]; jj++ {
					if w := int(nbr[jj]); w != v && w < u && willing[w] {
						uAccepted = false
						break
					}
				}
				if uAccepted {
					ok = false
				}
			}
			accepted[v] = ok
		})
		accIdx := par.FilterIndexW(workers, len(cand), func(i int) bool {
			return accepted[cand[i]]
		})
		if len(accIdx) == 0 {
			// No degree-≤1 vertices and every degree-2 coin flip failed:
			// reset the marks and re-flip with a fresh seed.
			par.ForW(workers, len(cand), func(i int) {
				v := cand[i]
				heads[v], willing[v] = false, false
			})
			continue
		}
		// Emit the round's ops (accepted vertices in ascending id order; CSR
		// adjacency is sorted, so deg-2 neighbor order is canonical A < B).
		base := len(el.Ops)
		el.Ops = append(el.Ops, make([]ElimOp, len(accIdx))...)
		ops := el.Ops[base:]
		par.ForW(workers, len(accIdx), func(k int) {
			v := cand[accIdx[k]]
			lo := off[v]
			switch deg(v) {
			case 0:
				ops[k] = ElimOp{Kind: ElimDeg0, V: int32(v)}
			case 1:
				ops[k] = ElimOp{Kind: ElimDeg1, V: int32(v), A: nbr[lo], W1: wt[lo]}
			case 2:
				ops[k] = ElimOp{Kind: ElimDeg2, V: int32(v),
					A: nbr[lo], B: nbr[lo+1], W1: wt[lo], W2: wt[lo+1]}
			}
		})
		touched := par.SumIntW(workers, len(accIdx), func(k int) int {
			return int(deg(cand[accIdx[k]])) + 1
		})
		par.ForW(workers, len(accIdx), func(k int) {
			alive[cand[accIdx[k]]] = false
		})
		aliveCount -= len(accIdx)
		el.appendRecvRound(workers, base, ops)

		// Rebuild-by-pack: drop every edge incident to an eliminated vertex,
		// append the deg-2 splice edges (in op order, after the survivors so
		// the stable dedup sums them onto any existing A–B edge in exactly
		// the order an in-place adjacency update would), and re-pack the CSR.
		kept := par.FilterIndexW(workers, len(edges), func(i int) bool {
			e := edges[i]
			return !accepted[e.u] && !accepted[e.v]
		})
		splices := par.FilterIndexW(workers, len(ops), func(k int) bool {
			return ops[k].Kind == ElimDeg2
		})
		next := make([]elimEdge, len(kept)+len(splices))
		par.ForW(workers, len(kept), func(i int) {
			next[i] = edges[kept[i]]
		})
		par.ForW(workers, len(splices), func(j int) {
			op := &ops[splices[j]]
			next[len(kept)+j] = elimEdge{u: op.A, v: op.B, w: op.W1 * op.W2 / (op.W1 + op.W2)}
		})
		if len(splices) == 0 {
			// Survivors are already sorted and duplicate-free.
			edges = next
		} else {
			edges = dedupElimEdges(workers, next)
		}
		off, nbr, wt = buildElimCSR(workers, n, edges)

		// Reset the per-round marks (only candidate slots were written).
		par.ForW(workers, len(cand), func(i int) {
			v := cand[i]
			heads[v], willing[v], accepted[v] = false, false, false
		})
		el.RoundEnd = append(el.RoundEnd, len(el.Ops))
		el.Rounds++
		rec.Add(int64(touched+len(cand)), 1)
		if aliveCount == 0 {
			break
		}
	}
	// Build the reduced graph: every remaining edge joins two kept vertices.
	el.Keep = par.FilterIndexW(workers, n, func(v int) bool { return alive[v] })
	par.ForChunkedW(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			el.Pos[v] = -1
		}
	})
	par.ForW(workers, len(el.Keep), func(j int) {
		el.Pos[el.Keep[j]] = j
	})
	redEdges := make([]graph.Edge, len(edges))
	par.ForW(workers, len(edges), func(i int) {
		e := edges[i]
		redEdges[i] = graph.Edge{U: el.Pos[e.u], V: el.Pos[e.v], W: e.w}
	})
	el.Reduced = graph.FromEdgesW(workers, len(el.Keep), redEdges)
	return el
}

// appendRecvRound extends the owner-computes reverse index with one round:
// the round's scatter targets, grouped by receiving vertex with items in
// ascending op order. (tgt, op) pairs are distinct — an op touches a target
// at most once — so the sort key is a total order and needs no stability.
// base is the round's first global op index.
func (el *Elimination) appendRecvRound(workers, base int, ops []ElimOp) {
	cnt := make([]int, len(ops))
	par.ForW(workers, len(ops), func(k int) {
		switch ops[k].Kind {
		case ElimDeg1:
			cnt[k] = 1
		case ElimDeg2:
			cnt[k] = 2
		}
	})
	itemOff := par.ScanW(workers, cnt)
	items := make([]recvItem, itemOff[len(ops)])
	par.ForW(workers, len(ops), func(k int) {
		at := itemOff[k]
		op := &ops[k]
		switch op.Kind {
		case ElimDeg1:
			items[at] = recvItem{op.A, int32(base + k), 1}
		case ElimDeg2:
			s := op.W1 + op.W2
			items[at] = recvItem{op.A, int32(base + k), op.W1 / s}
			items[at+1] = recvItem{op.B, int32(base + k), op.W2 / s}
		}
	})
	par.SortW(workers, items, func(a, b recvItem) bool {
		if a.tgt != b.tgt {
			return a.tgt < b.tgt
		}
		return a.op < b.op
	})
	groups := par.FilterIndexW(workers, len(items), func(i int) bool {
		return i == 0 || items[i].tgt != items[i-1].tgt
	})
	itemBase := int32(len(el.recvOp))
	for _, gi := range groups {
		el.recvVert = append(el.recvVert, items[gi].tgt)
	}
	for j := range groups {
		hi := len(items)
		if j+1 < len(groups) {
			hi = groups[j+1]
		}
		el.recvItemEnd = append(el.recvItemEnd, itemBase+int32(hi))
	}
	for i := range items {
		el.recvOp = append(el.recvOp, items[i].op)
		el.recvCoef = append(el.recvCoef, items[i].coef)
	}
	el.recvRoundEnd = append(el.recvRoundEnd, int32(len(el.recvVert)))
}

// roundBounds returns the Ops index range of round ri.
func (el *Elimination) roundBounds(ri int) (lo, hi int) {
	lo = 0
	if ri > 0 {
		lo = el.RoundEnd[ri-1]
	}
	return lo, el.RoundEnd[ri]
}

// recvBounds returns the receiver-group index range of round ri.
func (el *Elimination) recvBounds(ri int) (lo, hi int) {
	lo = 0
	if ri > 0 {
		lo = int(el.recvRoundEnd[ri-1])
	}
	return lo, int(el.recvRoundEnd[ri])
}

// itemBounds returns the reverse-index item range of group gi.
func (el *Elimination) itemBounds(gi int) (lo, hi int32) {
	lo = 0
	if gi > 0 {
		lo = el.recvItemEnd[gi-1]
	}
	return lo, el.recvItemEnd[gi]
}

// ForwardRHS pushes a right-hand side through the elimination with the
// default worker count; see ForwardRHSW.
func (el *Elimination) ForwardRHS(b []float64) (reduced, carry []float64) {
	return el.ForwardRHSW(0, b)
}

// ForwardRHSW pushes a right-hand side through the elimination: eliminated
// vertices forward their b-mass to their neighbors. It returns the reduced
// right-hand side and the per-op carried values needed by BackSolve.
// The input b is not modified.
//
// Within a round the eliminated vertices form an independent set, and a
// round's scatter targets (neighbors) are never that round's eliminated
// vertices — so the carry reads of a round see no same-round writes and run
// in parallel. The scatter runs in parallel too, over the owner-computes
// reverse index: each receiving vertex accumulates its own incoming
// contributions (carry × precomputed coefficient) in ascending op order —
// a fixed summation order that makes the result bitwise identical for
// every worker count, and matches what a sequential op-order scatter of
// the same contributions would produce.
func (el *Elimination) ForwardRHSW(workers int, b []float64) (reduced, carry []float64) {
	work := make([]float64, el.OrigN)
	carry = make([]float64, len(el.Ops))
	reduced = make([]float64, len(el.Keep))
	el.ForwardRHSIntoW(workers, b, work, carry, reduced)
	return reduced, carry
}

// ForwardRHSIntoW is ForwardRHSW into caller-provided buffers: work (length
// OrigN), carry (length len(Ops)) and reduced (length len(Keep)), each fully
// overwritten. b is not modified. At workers==1 the replay runs as plain
// loops — no closures, no goroutines, no allocation — with arithmetic
// bitwise identical to every parallel schedule (the scatter order per
// receiver is fixed by the reverse index either way).
func (el *Elimination) ForwardRHSIntoW(workers int, b, work, carry, reduced []float64) {
	copy(work, b)
	seq := par.Sequential(workers)
	for ri := 0; ri < el.Rounds; ri++ {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		gLo, gHi := el.recvBounds(ri)
		if seq {
			for k := range ops {
				carry[lo+k] = work[ops[k].V]
			}
			for g := gLo; g < gHi; g++ {
				acc := work[el.recvVert[g]]
				iLo, iHi := el.itemBounds(g)
				for it := iLo; it < iHi; it++ {
					acc += carry[el.recvOp[it]] * el.recvCoef[it]
				}
				work[el.recvVert[g]] = acc
			}
			continue
		}
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				carry[lo+k] = work[ops[k].V]
			}
		})
		par.ForChunkedW(workers, gHi-gLo, func(clo, chi int) {
			for g := gLo + clo; g < gLo+chi; g++ {
				acc := work[el.recvVert[g]]
				iLo, iHi := el.itemBounds(g)
				for it := iLo; it < iHi; it++ {
					acc += carry[el.recvOp[it]] * el.recvCoef[it]
				}
				work[el.recvVert[g]] = acc
			}
		})
	}
	if seq {
		for j := range el.Keep {
			reduced[j] = work[el.Keep[j]]
		}
		return
	}
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			reduced[j] = work[el.Keep[j]]
		}
	})
}

// ForwardRHSBatchW pushes k right-hand sides through the elimination with
// one replay of the op log: each round's carry gather and owner-computes
// scatter loop over the columns before advancing, so the log (and its cache
// traffic) is traversed once per round instead of once per RHS. Column c of
// the result is bitwise identical to ForwardRHSW on bs[c] alone.
func (el *Elimination) ForwardRHSBatchW(workers int, bs [][]float64) (reduced, carry [][]float64) {
	kcols := len(bs)
	works := make([][]float64, kcols)
	carry = make([][]float64, kcols)
	reduced = make([][]float64, kcols)
	for c := range works {
		works[c] = make([]float64, el.OrigN)
		carry[c] = make([]float64, len(el.Ops))
		reduced[c] = make([]float64, len(el.Keep))
	}
	el.ForwardRHSBatchIntoW(workers, bs, works, carry, reduced)
	return reduced, carry
}

// ForwardRHSBatchIntoW is ForwardRHSBatchW into caller-provided column
// buffers (sizes as in ForwardRHSIntoW, one per column, fully overwritten).
// Column c is bitwise identical to ForwardRHSIntoW on bs[c] alone.
func (el *Elimination) ForwardRHSBatchIntoW(workers int, bs, works, carry, reduced [][]float64) {
	kcols := len(bs)
	if kcols == 1 {
		el.ForwardRHSIntoW(workers, bs[0], works[0], carry[0], reduced[0])
		return
	}
	for c := range bs {
		copy(works[c], bs[c])
	}
	for ri := 0; ri < el.Rounds; ri++ {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				v := ops[k].V
				for c := 0; c < kcols; c++ {
					carry[c][lo+k] = works[c][v]
				}
			}
		})
		gLo, gHi := el.recvBounds(ri)
		par.ForChunkedW(workers, gHi-gLo, func(clo, chi int) {
			for g := gLo + clo; g < gLo+chi; g++ {
				v := el.recvVert[g]
				iLo, iHi := el.itemBounds(g)
				for c := 0; c < kcols; c++ {
					acc := works[c][v]
					for it := iLo; it < iHi; it++ {
						acc += carry[c][el.recvOp[it]] * el.recvCoef[it]
					}
					works[c][v] = acc
				}
			}
		})
	}
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			kv := el.Keep[j]
			for c := 0; c < kcols; c++ {
				reduced[c][j] = works[c][kv]
			}
		}
	})
}

// BackSolve extends a solution of the reduced system with the default worker
// count; see BackSolveW.
func (el *Elimination) BackSolve(xReduced, carry []float64) []float64 {
	return el.BackSolveW(0, xReduced, carry)
}

// BackSolveW extends a solution of the reduced system to the full system by
// replaying the elimination log in reverse, round by round. carry must come
// from the ForwardRHS call for the same right-hand side.
//
// The reverse replay is owner-computes by construction: each op writes only
// x[op.V] and gathers its neighbor reads (x[op.A], x[op.B]) from vertices
// eliminated in later rounds or kept — already final when the round replays
// — so ops within a round run in parallel, realizing the Lemma 6.5 claim
// that rounds are the only sequential dependency.
func (el *Elimination) BackSolveW(workers int, xReduced, carry []float64) []float64 {
	x := make([]float64, el.OrigN)
	el.BackSolveIntoW(workers, xReduced, carry, x)
	return x
}

// BackSolveIntoW is BackSolveW into a caller-provided x (length OrigN, fully
// overwritten: every vertex is either kept or eliminated by exactly one op).
// At workers==1 the reverse replay runs as plain loops with no allocation.
func (el *Elimination) BackSolveIntoW(workers int, xReduced, carry, x []float64) {
	seq := par.Sequential(workers)
	if seq {
		for j := range el.Keep {
			x[el.Keep[j]] = xReduced[j]
		}
	} else {
		par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
			for j := clo; j < chi; j++ {
				x[el.Keep[j]] = xReduced[j]
			}
		})
	}
	for ri := el.Rounds - 1; ri >= 0; ri-- {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		if seq {
			for k := range ops {
				op := &ops[k]
				switch op.Kind {
				case ElimDeg0:
					x[op.V] = 0
				case ElimDeg1:
					x[op.V] = x[op.A] + carry[lo+k]/op.W1
				case ElimDeg2:
					x[op.V] = (op.W1*x[op.A] + op.W2*x[op.B] + carry[lo+k]) / (op.W1 + op.W2)
				}
			}
			continue
		}
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				op := &ops[k]
				switch op.Kind {
				case ElimDeg0:
					x[op.V] = 0
				case ElimDeg1:
					x[op.V] = x[op.A] + carry[lo+k]/op.W1
				case ElimDeg2:
					x[op.V] = (op.W1*x[op.A] + op.W2*x[op.B] + carry[lo+k]) / (op.W1 + op.W2)
				}
			}
		})
	}
}

// BackSolveBatchW is BackSolveW over k columns with one reverse replay of
// the op log: each op's neighbor gather loops over the columns before
// advancing. Column c is bitwise identical to BackSolveW on column c.
func (el *Elimination) BackSolveBatchW(workers int, xReduced, carry [][]float64) [][]float64 {
	xs := make([][]float64, len(xReduced))
	for c := range xs {
		xs[c] = make([]float64, el.OrigN)
	}
	el.BackSolveBatchIntoW(workers, xReduced, carry, xs)
	return xs
}

// BackSolveBatchIntoW is BackSolveBatchW into caller-provided columns (each
// length OrigN, fully overwritten). Column c is bitwise identical to
// BackSolveIntoW on column c.
func (el *Elimination) BackSolveBatchIntoW(workers int, xReduced, carry, xs [][]float64) {
	kcols := len(xReduced)
	if kcols == 1 {
		el.BackSolveIntoW(workers, xReduced[0], carry[0], xs[0])
		return
	}
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			kv := el.Keep[j]
			for c := 0; c < kcols; c++ {
				xs[c][kv] = xReduced[c][j]
			}
		}
	})
	for ri := el.Rounds - 1; ri >= 0; ri-- {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				op := &ops[k]
				switch op.Kind {
				case ElimDeg0:
					for c := 0; c < kcols; c++ {
						xs[c][op.V] = 0
					}
				case ElimDeg1:
					for c := 0; c < kcols; c++ {
						xs[c][op.V] = xs[c][op.A] + carry[c][lo+k]/op.W1
					}
				case ElimDeg2:
					for c := 0; c < kcols; c++ {
						xs[c][op.V] = (op.W1*xs[c][op.A] + op.W2*xs[c][op.B] + carry[c][lo+k]) / (op.W1 + op.W2)
					}
				}
			}
		})
	}
}

// ForwardRHSBlockIntoW is ForwardRHSIntoW over contiguous matrix.Block
// multi-vectors: b and work are OrigN×k, carry is len(Ops)×k (row = op
// index), reduced is len(Keep)×k. One replay of the op log serves all k
// lanes, with the k values per vertex/op adjacent in memory; lane c is
// bitwise identical to ForwardRHSIntoW on lane c. At workers==1 the replay
// runs as plain loops with no allocation.
func (el *Elimination) ForwardRHSBlockIntoW(workers int, b, work, carry, reduced *matrix.Block) {
	kcols := b.K()
	if kcols == 1 {
		el.ForwardRHSIntoW(workers, b.Vec(), work.Vec(), carry.Vec(), reduced.Vec())
		return
	}
	work.CopyFrom(b)
	// The sequential fast path inlines every loop: a closure passed to
	// par.ForChunkedW escapes and heap-allocates at its declaration even if
	// that branch never runs, which would break the allocation wall.
	seq := par.Sequential(workers)
	for ri := 0; ri < el.Rounds; ri++ {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		gLo, gHi := el.recvBounds(ri)
		if seq {
			for k := range ops {
				copy(carry.Row(lo+k), work.Row(int(ops[k].V)))
			}
			for g := gLo; g < gHi; g++ {
				wrow := work.Row(int(el.recvVert[g]))
				iLo, iHi := el.itemBounds(g)
				for it := iLo; it < iHi; it++ {
					crow := carry.Row(int(el.recvOp[it]))
					coef := el.recvCoef[it]
					for c := 0; c < kcols; c++ {
						wrow[c] += crow[c] * coef
					}
				}
			}
			continue
		}
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			for k := clo; k < chi; k++ {
				copy(carry.Row(lo+k), work.Row(int(ops[k].V)))
			}
		})
		par.ForChunkedW(workers, gHi-gLo, func(clo, chi int) {
			for g := gLo + clo; g < gLo+chi; g++ {
				wrow := work.Row(int(el.recvVert[g]))
				iLo, iHi := el.itemBounds(g)
				for it := iLo; it < iHi; it++ {
					crow := carry.Row(int(el.recvOp[it]))
					coef := el.recvCoef[it]
					for c := 0; c < kcols; c++ {
						wrow[c] += crow[c] * coef
					}
				}
			}
		})
	}
	if seq {
		for j := range el.Keep {
			copy(reduced.Row(j), work.Row(int(el.Keep[j])))
		}
		return
	}
	par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
		for j := clo; j < chi; j++ {
			copy(reduced.Row(j), work.Row(int(el.Keep[j])))
		}
	})
}

// BackSolveBlockIntoW is BackSolveIntoW over contiguous matrix.Block
// multi-vectors: xReduced is len(Keep)×k, carry is len(Ops)×k (from
// ForwardRHSBlockIntoW for the same right-hand sides), x is OrigN×k, fully
// overwritten. Lane c is bitwise identical to BackSolveIntoW on lane c; at
// workers==1 the reverse replay runs as plain loops with no allocation.
func (el *Elimination) BackSolveBlockIntoW(workers int, xReduced, carry, x *matrix.Block) {
	kcols := xReduced.K()
	if kcols == 1 {
		el.BackSolveIntoW(workers, xReduced.Vec(), carry.Vec(), x.Vec())
		return
	}
	// Closures only on the parallel branch: an escaping func value allocates
	// at declaration, which the sequential allocation wall forbids.
	seq := par.Sequential(workers)
	if seq {
		for j := range el.Keep {
			copy(x.Row(int(el.Keep[j])), xReduced.Row(j))
		}
	} else {
		par.ForChunkedW(workers, len(el.Keep), func(clo, chi int) {
			for j := clo; j < chi; j++ {
				copy(x.Row(int(el.Keep[j])), xReduced.Row(j))
			}
		})
	}
	for ri := el.Rounds - 1; ri >= 0; ri-- {
		lo, hi := el.roundBounds(ri)
		ops := el.Ops[lo:hi]
		if seq {
			el.backSolveBlockOps(ops, lo, 0, len(ops), kcols, carry, x)
			continue
		}
		par.ForChunkedW(workers, len(ops), func(clo, chi int) {
			el.backSolveBlockOps(ops, lo, clo, chi, kcols, carry, x)
		})
	}
}

// backSolveBlockOps replays ops[clo:chi] of one elimination round across all
// k lanes; shared by the sequential and chunk-parallel branches of
// BackSolveBlockIntoW.
func (el *Elimination) backSolveBlockOps(ops []ElimOp, lo, clo, chi, kcols int, carry, x *matrix.Block) {
	for k := clo; k < chi; k++ {
		op := &ops[k]
		xv := x.Row(int(op.V))
		switch op.Kind {
		case ElimDeg0:
			for c := 0; c < kcols; c++ {
				xv[c] = 0
			}
		case ElimDeg1:
			xa := x.Row(int(op.A))
			crow := carry.Row(lo + k)
			for c := 0; c < kcols; c++ {
				xv[c] = xa[c] + crow[c]/op.W1
			}
		case ElimDeg2:
			xa, xb := x.Row(int(op.A)), x.Row(int(op.B))
			crow := carry.Row(lo + k)
			for c := 0; c < kcols; c++ {
				xv[c] = (op.W1*xa[c] + op.W2*xb[c] + crow[c]) / (op.W1 + op.W2)
			}
		}
	}
}

// ReindexW rebuilds every derived structure of an elimination whose OrigN,
// Ops and RoundEnd came from a snapshot: the Keep/Pos vertex maps, the round
// count, and the owner-computes reverse index. The replay runs the exact
// passes GreedyEliminationW ran at build time (appendRecvRound per round,
// ascending-vertex Keep), so the reconstructed index — including the
// recomputed forwarding coefficients wᵢ/(w₁+w₂) from the ops' exact weight
// bits — is bit-identical to the one the original elimination carried, and
// ForwardRHS/BackSolve replay bitwise. It validates the op log (vertex
// ranges, monotone round boundaries, no vertex eliminated twice) and returns
// an error instead of building an index that could panic or scatter out of
// bounds. Reduced is left untouched; callers attach the next level's graph.
func (el *Elimination) ReindexW(workers int) error {
	n := el.OrigN
	if n < 0 {
		return fmt.Errorf("solver: elimination has negative vertex count %d", n)
	}
	if len(el.RoundEnd) > 0 && el.RoundEnd[len(el.RoundEnd)-1] != len(el.Ops) {
		return fmt.Errorf("solver: elimination round boundaries end at %d, op log has %d ops", el.RoundEnd[len(el.RoundEnd)-1], len(el.Ops))
	}
	if len(el.RoundEnd) == 0 && len(el.Ops) != 0 {
		return fmt.Errorf("solver: elimination has %d ops but no round boundaries", len(el.Ops))
	}
	prev := 0
	for ri, end := range el.RoundEnd {
		if end < prev || end > len(el.Ops) {
			return fmt.Errorf("solver: elimination round %d boundary %d out of order", ri, end)
		}
		prev = end
	}
	eliminated := make([]bool, n)
	for i := range el.Ops {
		op := &el.Ops[i]
		if op.V < 0 || int(op.V) >= n {
			return fmt.Errorf("solver: elimination op %d eliminates out-of-range vertex %d", i, op.V)
		}
		if eliminated[op.V] {
			return fmt.Errorf("solver: elimination op %d eliminates vertex %d twice", i, op.V)
		}
		eliminated[op.V] = true
		switch op.Kind {
		case ElimDeg0:
		case ElimDeg1:
			if op.A < 0 || int(op.A) >= n || op.W1 == 0 {
				return fmt.Errorf("solver: elimination op %d has invalid rake target/weight", i)
			}
		case ElimDeg2:
			if op.A < 0 || int(op.A) >= n || op.B < 0 || int(op.B) >= n || op.W1+op.W2 == 0 {
				return fmt.Errorf("solver: elimination op %d has invalid splice targets/weights", i)
			}
		default:
			return fmt.Errorf("solver: elimination op %d has unknown kind %d", i, op.Kind)
		}
	}
	el.Rounds = len(el.RoundEnd)
	el.Keep = par.FilterIndexW(workers, n, func(v int) bool { return !eliminated[v] })
	el.Pos = make([]int, n)
	par.ForChunkedW(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			el.Pos[v] = -1
		}
	})
	par.ForW(workers, len(el.Keep), func(j int) {
		el.Pos[el.Keep[j]] = j
	})
	el.recvRoundEnd, el.recvVert, el.recvItemEnd = nil, nil, nil
	el.recvOp, el.recvCoef = nil, nil
	for ri := 0; ri < el.Rounds; ri++ {
		lo, hi := el.roundBounds(ri)
		el.appendRecvRound(workers, lo, el.Ops[lo:hi])
	}
	return nil
}

// MemoryBytes estimates the elimination's retained footprint: the op log,
// the round/vertex maps and the owner-computes reverse index. The reduced
// graph is excluded — chains account it as the next level's graph.
func (el *Elimination) MemoryBytes() int64 {
	b := int64(len(el.Ops)) * 32
	b += int64(len(el.RoundEnd)+len(el.Keep)+len(el.Pos)) * 8
	b += int64(len(el.recvRoundEnd)+len(el.recvVert)+len(el.recvItemEnd)+len(el.recvOp)) * 4
	b += int64(len(el.recvCoef)) * 8
	return b
}
