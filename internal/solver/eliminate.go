// Package solver implements the paper's Section 6: the parallel SDD solver
// built from a preconditioner chain (Definition 6.3) whose levels are
// produced by incremental sparsification (Lemma 6.1) over low-stretch
// subgraphs (Theorem 5.9) and shrunk by parallel greedy elimination
// (Lemma 6.5), solved by recursive preconditioned Chebyshev iteration with
// a dense LDLᵀ factorization at the bottom (Fact 6.4).
package solver

import (
	"math/rand"
	"sort"

	"parlap/internal/graph"
	"parlap/internal/wd"
)

// elimKind distinguishes the three elimination operations.
type elimKind uint8

const (
	elimDeg0 elimKind = iota // isolated vertex: x_v := 0
	elimDeg1                 // leaf: x_v = x_a + b_v/w1
	elimDeg2                 // series splice: x_v = (w1·x_a + w2·x_b + b_v)/(w1+w2)
)

// ElimOp is one recorded partial-Cholesky elimination. Ops within a round
// touch pairwise non-adjacent vertices, so each round's back-substitutions
// are independent (parallelizable).
type ElimOp struct {
	Kind   elimKind
	V      int32 // eliminated vertex (original numbering of the input graph)
	A, B   int32 // neighbors (deg1 uses A; deg2 uses A and B)
	W1, W2 float64
}

// Elimination is the result of GreedyElimination: the reduced graph, the
// vertex mapping, and the replayable elimination log.
type Elimination struct {
	OrigN    int
	Ops      []ElimOp
	RoundEnd []int // Ops prefix length after each round
	Keep     []int // reduced index -> original vertex
	Pos      []int // original vertex -> reduced index (-1 if eliminated)
	Reduced  *graph.Graph
	Rounds   int
}

// GreedyElimination performs the parallel partial Cholesky factorization of
// Lemma 6.5 on a Laplacian graph (weights are conductances): repeatedly
// eliminate all degree-≤1 vertices (rake) and a random independent set of
// degree-2 vertices (compress, via the paper's 1/3-coin marking), recording
// every operation for exact back-substitution. Parallel edges are merged and
// self-loops dropped on entry.
//
// The recorder is charged work = adjacency touched and depth = 1 per round,
// matching the O(n+m) work / O(log n) depth bound.
func GreedyElimination(g *graph.Graph, rng *rand.Rand, rec *wd.Recorder) *Elimination {
	n := g.N
	// Adjacency as conductance maps with parallels merged.
	adj := make([]map[int32]float64, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]float64)
	}
	for _, e := range g.Edges {
		if e.U == e.V || e.W == 0 {
			continue
		}
		adj[e.U][int32(e.V)] += e.W
		adj[e.V][int32(e.U)] += e.W
	}
	el := &Elimination{OrigN: n, Pos: make([]int, n)}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	for {
		// Candidates at round start.
		var cand []int32
		for v := 0; v < n; v++ {
			if alive[v] && len(adj[v]) <= 2 {
				cand = append(cand, int32(v))
			}
		}
		if len(cand) == 0 {
			break
		}
		// Coin flips for degree-2 vertices (the paper's independent-set
		// marking); degree ≤ 1 vertices are always willing.
		heads := make(map[int32]bool)
		for _, v := range cand {
			if len(adj[v]) == 2 {
				heads[v] = rng.Intn(3) == 0
			}
		}
		willing := func(v int32) bool {
			if len(adj[v]) < 2 {
				return true
			}
			if !heads[v] {
				return false
			}
			for u := range adj[v] {
				if du := len(adj[u]); du == 2 && heads[u] {
					return false // neighbor flipped heads too: unmarked
				}
			}
			return true
		}
		// Greedy pass enforcing strict independence (no two eliminated
		// vertices adjacent), which keeps intra-round back-substitutions
		// independent even across rake/compress interactions.
		accepted := make(map[int32]bool)
		var roundOps []ElimOp
		touched := 0
		for _, v := range cand {
			if !willing(v) {
				continue
			}
			conflict := false
			for u := range adj[v] {
				if accepted[u] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			switch len(adj[v]) {
			case 0:
				roundOps = append(roundOps, ElimOp{Kind: elimDeg0, V: v})
			case 1:
				var a int32
				var w float64
				for u, wu := range adj[v] {
					a, w = u, wu
				}
				roundOps = append(roundOps, ElimOp{Kind: elimDeg1, V: v, A: a, W1: w})
			case 2:
				var ns [2]int32
				var ws [2]float64
				i := 0
				for u, wu := range adj[v] {
					ns[i], ws[i] = u, wu
					i++
				}
				// Canonical order for determinism.
				if ns[0] > ns[1] {
					ns[0], ns[1] = ns[1], ns[0]
					ws[0], ws[1] = ws[1], ws[0]
				}
				roundOps = append(roundOps, ElimOp{Kind: elimDeg2, V: v, A: ns[0], B: ns[1], W1: ws[0], W2: ws[1]})
			}
			accepted[v] = true
			touched += len(adj[v]) + 1
		}
		if len(roundOps) == 0 {
			// All willing vertices conflicted — possible only when every
			// candidate had an accepted neighbor, which cannot happen in a
			// greedy pass (first willing vertex is always accepted); if no
			// vertex was willing (all deg-2 coin flips failed), re-flip.
			continue
		}
		// Apply the round: remove vertices, splice degree-2 edges.
		for _, op := range roundOps {
			v := op.V
			switch op.Kind {
			case elimDeg1:
				delete(adj[op.A], v)
			case elimDeg2:
				delete(adj[op.A], v)
				delete(adj[op.B], v)
				w := op.W1 * op.W2 / (op.W1 + op.W2)
				adj[op.A][op.B] += w
				adj[op.B][op.A] += w
			}
			adj[v] = nil
			alive[v] = false
			aliveCount--
		}
		el.Ops = append(el.Ops, roundOps...)
		el.RoundEnd = append(el.RoundEnd, len(el.Ops))
		el.Rounds++
		rec.Add(int64(touched+len(cand)), 1)
		if aliveCount == 0 {
			break
		}
	}
	// Build the reduced graph.
	for v := 0; v < n; v++ {
		if alive[v] {
			el.Pos[v] = len(el.Keep)
			el.Keep = append(el.Keep, v)
		} else {
			el.Pos[v] = -1
		}
	}
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		for u, w := range adj[v] {
			if int32(v) < u {
				edges = append(edges, graph.Edge{U: el.Pos[v], V: el.Pos[int(u)], W: w})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	el.Reduced = graph.FromEdges(len(el.Keep), edges)
	return el
}

// ForwardRHS pushes a right-hand side through the elimination: eliminated
// vertices forward their b-mass to their neighbors. It returns the reduced
// right-hand side and the per-op carried values needed by BackSolve.
// The input b is not modified.
func (el *Elimination) ForwardRHS(b []float64) (reduced, carry []float64) {
	work := make([]float64, el.OrigN)
	copy(work, b)
	carry = make([]float64, len(el.Ops))
	for i, op := range el.Ops {
		bv := work[op.V]
		carry[i] = bv
		switch op.Kind {
		case elimDeg1:
			work[op.A] += bv
		case elimDeg2:
			s := op.W1 + op.W2
			work[op.A] += bv * op.W1 / s
			work[op.B] += bv * op.W2 / s
		}
	}
	reduced = make([]float64, len(el.Keep))
	for j, v := range el.Keep {
		reduced[j] = work[v]
	}
	return reduced, carry
}

// BackSolve extends a solution of the reduced system to the full system by
// replaying the elimination log in reverse. carry must come from the
// ForwardRHS call for the same right-hand side.
func (el *Elimination) BackSolve(xReduced, carry []float64) []float64 {
	x := make([]float64, el.OrigN)
	for j, v := range el.Keep {
		x[v] = xReduced[j]
	}
	for i := len(el.Ops) - 1; i >= 0; i-- {
		op := el.Ops[i]
		switch op.Kind {
		case elimDeg0:
			x[op.V] = 0
		case elimDeg1:
			x[op.V] = x[op.A] + carry[i]/op.W1
		case elimDeg2:
			x[op.V] = (op.W1*x[op.A] + op.W2*x[op.B] + carry[i]) / (op.W1 + op.W2)
		}
	}
	return x
}
