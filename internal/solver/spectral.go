package solver

import (
	"math"
	"math/rand"

	"parlap/internal/matrix"
)

// The spectral layer of chain calibration: a small preconditioned Lanczos
// estimator that measures BOTH ends of spec(H⁻¹A) per level. The old power
// iteration only estimated λmax and assumed the lower bound from the static
// κ·ChebSlack product, so every level's Chebyshev interval was pessimistic
// by whatever slack the sparsifier didn't actually use; measuring the
// interval is what turns the paper's known-κᵢ Chebyshev bounds into
// practice ("measure, don't assume").
//
// The operator K = A·P (P = the chain's preconditioner application H⁻¹,
// A = the level Laplacian) is self-adjoint in the P-inner product
// ⟨r, s⟩_P = rᵀPs, and spec(A·P) = spec(H⁻¹A). Lanczos in that inner
// product needs exactly one P application per iteration — the quantities
// ⟨·,·⟩_P fall out of the z = P·v vectors the recursion already produces:
//
//	β₀ v₁ = r₀,          z₁ = P v₁
//	u  = A zⱼ − βⱼ₋₁ vⱼ₋₁
//	αⱼ = u · zⱼ                     (= ⟨u, vⱼ⟩_P)
//	u  = u − αⱼ vⱼ,  pu = P u
//	βⱼ = √(u · pu)                  (= ‖u‖_P)
//	vⱼ₊₁ = u/βⱼ,      zⱼ₊₁ = pu/βⱼ
//
// The extreme eigenvalues of the tridiagonal T = tridiag(β, α, β)
// approximate the extremes of spec(H⁻¹A) from inside (λmax(T) ≤ λmax,
// λmin(T) ≥ λmin by Rayleigh–Ritz), which is why calibrate pads both ends
// by ChainParams.EigSafety before trusting them as a Chebyshev interval.
//
// Determinism: the start vector is drawn from the (sequential) build rng,
// and every kernel below is one of the fixed-tree W kernels, so the
// estimates — and hence the whole calibrated schedule — are bitwise
// identical for every worker count.

// lanczosBounds runs iters Lanczos steps on level i's preconditioned
// operator and returns the extreme Ritz values. The level's Chebyshev
// scratch in ws doubles as the Lanczos vector storage (calibration runs
// before any solve), so the loop allocates only the O(iters) tridiagonal
// coefficients. ok is false when the estimate is unusable (zero or NaN
// norms before any Ritz value was produced) and the caller should fall back
// to the static schedule.
func (c *Chain) lanczosBounds(workers, i, iters int, rng *rand.Rand, ws *workspace) (lo, hi float64, ok bool) {
	lvl := &c.Levels[i]
	n := lvl.G.N
	l := &ws.lvl[i]
	v, vPrev, u, z := l.chebX.Vec(), l.chebR.Vec(), l.chebP.Vec(), l.chebAp.Vec()

	// Start vector: random normal, projected onto range(A) per component.
	for j := 0; j < n; j++ {
		v[j] = rng.NormFloat64()
	}
	matrix.ProjectOutConstantMaskedIdxW(workers, v, lvl.CompIdx)
	pu := c.applyH(workers, i, v, ws) // P v₀ (projected by applyH)
	t := matrix.DotW(workers, v, pu)  // ‖v₀‖²_P
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, 0, false
	}
	beta := math.Sqrt(t)
	matrix.ScaleIntoW(workers, z, 1/beta, pu) // z₁
	matrix.ScaleIntoW(workers, v, 1/beta, v)  // v₁
	for j := range vPrev {
		vPrev[j] = 0
	}

	alphas := make([]float64, 0, iters)
	betas := make([]float64, 0, iters)
	betaPrev := 0.0
	for it := 0; it < iters; it++ {
		lvl.Lap.MulVecW(workers, z, u) // u = A zⱼ
		if betaPrev != 0 {
			matrix.AxpyIntoW(workers, u, -betaPrev, vPrev, u)
		}
		alpha := matrix.DotW(workers, u, z)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			break
		}
		alphas = append(alphas, alpha)
		matrix.AxpyIntoW(workers, u, -alpha, v, u)
		matrix.ProjectOutConstantMaskedIdxW(workers, u, lvl.CompIdx) // kill null-space drift
		if it == iters-1 {
			break // last α recorded; no successor vector needed
		}
		pu = c.applyH(workers, i, u, ws)
		t = matrix.DotW(workers, u, pu)
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			break // invariant subspace found (or roundoff floor): T is complete
		}
		betaPrev = math.Sqrt(t)
		betas = append(betas, betaPrev)
		vPrev, v = v, vPrev
		matrix.ScaleIntoW(workers, v, 1/betaPrev, u)
		matrix.ScaleIntoW(workers, z, 1/betaPrev, pu)
	}
	if len(alphas) == 0 {
		return 0, 0, false
	}
	betas = betas[:len(alphas)-1]
	lo, hi = tridiagExtremes(alphas, betas)
	if math.IsNaN(lo) || math.IsNaN(hi) || lo <= 0 || hi <= 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// tridiagExtremes returns the smallest and largest eigenvalues of the
// symmetric tridiagonal matrix with diagonal a (length m ≥ 1) and
// off-diagonal b (length m−1), by Sturm-sequence bisection from the
// Gershgorin enclosure. Deterministic, allocation-free, ~50 bisection steps
// per end.
func tridiagExtremes(a, b []float64) (lo, hi float64) {
	m := len(a)
	glo, ghi := a[0], a[0]
	for i := 0; i < m; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(b[i-1])
		}
		if i < m-1 {
			r += math.Abs(b[i])
		}
		if a[i]-r < glo {
			glo = a[i] - r
		}
		if a[i]+r > ghi {
			ghi = a[i] + r
		}
	}
	if m == 1 {
		return a[0], a[0]
	}
	lo = bisectEig(a, b, glo, ghi, 1) // smallest: first x with count(x) ≥ 1
	hi = bisectEig(a, b, glo, ghi, m) // largest: first x with count(x) ≥ m
	return lo, hi
}

// bisectEig returns (within ~1e-12 relative width) the k-th smallest
// eigenvalue: the infimum of x with sturmCount(x) ≥ k.
func bisectEig(a, b []float64, glo, ghi float64, k int) float64 {
	lo, hi := glo, ghi
	for it := 0; it < 100 && hi-lo > 1e-13*(math.Abs(lo)+math.Abs(hi)+1e-300); it++ {
		mid := 0.5 * (lo + hi)
		if sturmCount(a, b, mid) >= k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// sturmCount returns the number of eigenvalues of tridiag(a, b) strictly
// below x, via the standard LDLᵀ sign-count recurrence with underflow
// guarding.
func sturmCount(a, b []float64, x float64) int {
	count := 0
	d := a[0] - x
	if d < 0 {
		count++
	}
	for i := 1; i < len(a); i++ {
		if d == 0 {
			d = 1e-300
		}
		d = a[i] - x - b[i-1]*b[i-1]/d
		if d < 0 {
			count++
		}
	}
	return count
}
