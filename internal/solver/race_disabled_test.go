//go:build !race

package solver

// raceDetectorEnabled mirrors the -race build tag; see race_enabled_test.go.
const raceDetectorEnabled = false
