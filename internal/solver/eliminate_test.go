package solver

import (
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/matrix"
)

// exactElimSolve eliminates g, solves the reduced system directly, and
// back-substitutes; it fails the test if L x != b beyond tol.
func exactElimSolve(t *testing.T, g *graph.Graph, el *Elimination, b []float64, tol float64) []float64 {
	t.Helper()
	red, carry := el.ForwardRHS(b)
	var xr []float64
	if len(el.Keep) > 0 {
		comp, k := el.Reduced.ConnectedComponents()
		lf, err := matrix.NewLaplacianFactor(matrix.LaplacianOf(el.Reduced), comp, k)
		if err != nil {
			t.Fatal(err)
		}
		xr = lf.Solve(red)
	}
	x := el.BackSolve(xr, carry)
	ax := matrix.LaplacianOf(g).Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > tol {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
	return x
}

// TestEliminationParallelEdgesMergeToLeaf covers the dedup edge case: a
// vertex whose two CSR half-edges point at the same neighbor is degree 1
// after parallel-edge merging, and must be raked as a leaf with the summed
// conductance — not treated as a degree-2 splice.
func TestEliminationParallelEdgesMergeToLeaf(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 0, V: 1, W: 3}, // parallel pair: deg(0) = 1 merged
		{U: 1, V: 2, W: 5},
	})
	if g.Degree(0) != 2 {
		t.Fatalf("raw CSR degree of 0 = %d, want 2 half-edges", g.Degree(0))
	}
	rng := rand.New(rand.NewSource(5))
	el := GreedyElimination(g, rng, nil)
	var op0 *ElimOp
	for i := range el.Ops {
		if el.Ops[i].V == 0 {
			op0 = &el.Ops[i]
			break
		}
	}
	if op0 == nil {
		t.Fatal("vertex 0 never eliminated")
	}
	if op0.Kind != ElimDeg1 || op0.A != 1 || op0.W1 != 5 {
		t.Fatalf("vertex 0 eliminated as %+v, want deg1 to 1 with merged weight 5", *op0)
	}
	exactElimSolve(t, g, el, []float64{1, 1, -2}, 1e-9)
}

// TestEliminationCycleReflipRounds runs the all-degree-2 extreme: every
// round depends entirely on the coin flips, some seeds produce rounds where
// every coin fails (the re-flip path), and repeated splices create parallel
// edges that must merge. The elimination must terminate with a consistent
// round log (RoundEnd strictly increasing — re-flips never record empty
// rounds) and an exact solve.
func TestEliminationCycleReflipRounds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := gen.WithExponentialWeights(gen.Cycle(257), 4, 3, seed)
		rng := rand.New(rand.NewSource(seed))
		el := GreedyElimination(g, rng, nil)
		if el.Reduced.N > 2 {
			t.Fatalf("seed %d: cycle reduced only to %d vertices", seed, el.Reduced.N)
		}
		prev := 0
		for ri, end := range el.RoundEnd {
			if end <= prev {
				t.Fatalf("seed %d: round %d recorded empty (RoundEnd %v)", seed, ri, el.RoundEnd)
			}
			prev = end
		}
		if el.RoundEnd[len(el.RoundEnd)-1] != len(el.Ops) {
			t.Fatalf("seed %d: RoundEnd does not cover the op log", seed)
		}
		b := randRHS(g.N, seed+100)
		exactElimSolve(t, g, el, b, 1e-7)
	}
}

// TestForwardRHSSharedNeighborHotspot is the owner-computes hot spot: on a
// star every leaf is eliminated in round one and all of them forward their
// b-mass to the single hub. The parallel scatter must accumulate the hub's
// contributions in op order — bitwise identical to the sequential replay —
// for every worker count.
func TestForwardRHSSharedNeighborHotspot(t *testing.T) {
	g := gen.Star(3000)
	rng := rand.New(rand.NewSource(11))
	el := GreedyEliminationW(1, g, rng, nil)
	lo, hi := el.roundBounds(0)
	if hi-lo != g.N-1 {
		t.Fatalf("round 1 eliminated %d vertices, want all %d leaves", hi-lo, g.N-1)
	}
	b := randRHS(g.N, 12)
	redRef, carryRef := el.ForwardRHSW(1, b)
	for _, w := range []int{0, 2, 4} {
		red, carry := el.ForwardRHSW(w, b)
		for i := range redRef {
			if red[i] != redRef[i] {
				t.Fatalf("workers=%d: reduced rhs diverges at %d", w, i)
			}
		}
		for i := range carryRef {
			if carry[i] != carryRef[i] {
				t.Fatalf("workers=%d: carry diverges at %d", w, i)
			}
		}
	}
	// The batch form must reproduce the same columns bitwise.
	bs := [][]float64{b, randRHS(g.N, 13), randRHS(g.N, 14)}
	for _, w := range []int{1, 4} {
		reds, carries := el.ForwardRHSBatchW(w, bs)
		for c := range bs {
			redC, carryC := el.ForwardRHSW(1, bs[c])
			for i := range redC {
				if reds[c][i] != redC[i] {
					t.Fatalf("workers=%d: batch column %d reduced diverges at %d", w, c, i)
				}
			}
			for i := range carryC {
				if carries[c][i] != carryC[i] {
					t.Fatalf("workers=%d: batch column %d carry diverges at %d", w, c, i)
				}
			}
		}
	}
	exactElimSolve(t, g, el, b, 1e-7)
}

// TestEliminationEmptyAndEdgelessGraphs: no edges means one all-deg0 round.
func TestEliminationEmptyAndEdgelessGraphs(t *testing.T) {
	g := graph.FromEdges(5, nil)
	rng := rand.New(rand.NewSource(3))
	el := GreedyElimination(g, rng, nil)
	if el.Reduced.N != 0 || el.Rounds != 1 || len(el.Ops) != 5 {
		t.Fatalf("edgeless: reduced %d, rounds %d, ops %d", el.Reduced.N, el.Rounds, len(el.Ops))
	}
	x := el.BackSolve(nil, make([]float64, len(el.Ops)))
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %v, want 0", i, v)
		}
	}
	g0 := graph.FromEdges(0, nil)
	el0 := GreedyElimination(g0, rand.New(rand.NewSource(4)), nil)
	if el0.Rounds != 0 || el0.Reduced.N != 0 {
		t.Fatalf("empty graph: rounds %d, reduced %d", el0.Rounds, el0.Reduced.N)
	}
}

// TestEliminationSpliceMergesOntoExistingEdge: eliminating the middle of a
// triangle's path splices a parallel edge onto the surviving triangle edge;
// the rebuild must merge them into one conductance (series + direct).
func TestEliminationSpliceMergesOntoExistingEdge(t *testing.T) {
	// Triangle 0–1–2 plus a pendant path to keep 0 and 2 from being raked
	// before the splice can land on edge (0,2).
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 1},
	})
	rng := rand.New(rand.NewSource(21))
	el := GreedyElimination(g, rng, nil)
	b := []float64{1, 0, -1}
	exactElimSolve(t, g, el, b, 1e-9)
	// However the coins landed, the log must stay within-round independent.
	start := 0
	for _, end := range el.RoundEnd {
		elim := map[int32]bool{}
		for _, op := range el.Ops[start:end] {
			elim[op.V] = true
		}
		for _, op := range el.Ops[start:end] {
			if op.Kind == ElimDeg1 && elim[op.A] {
				t.Fatal("deg1 neighbor eliminated in same round")
			}
			if op.Kind == ElimDeg2 && (elim[op.A] || elim[op.B]) {
				t.Fatal("deg2 neighbor eliminated in same round")
			}
		}
		start = end
	}
}
