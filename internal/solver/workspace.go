package solver

import (
	"sync"
	"sync/atomic"

	"parlap/internal/matrix"
	"parlap/internal/obs"
)

// workspace holds every per-solve scratch buffer of the chain's apply path
// and the outer PCG driver: per level the Chebyshev recurrence blocks, the
// elimination forward/back buffers, at the bottom the dense-solve pair, and
// (lazily) the outer iteration's blocks. One workspace serves one
// Solve/SolveBlock/stream-window at a time; a wsPool (sync.Pool) on the
// Solver and on the Chain reuses them across requests, so steady-state
// preconditioner applications allocate nothing.
//
// Every buffer is fully overwritten before it is read on each use — the
// chain's kernels either copy into them or write every slot — so a recycled
// workspace produces bitwise-identical results to a fresh one, preserving
// the Chain/Solver equivalence contracts. Scratch is held as contiguous
// matrix.Block multi-vectors (vertex-major interleaved); grow reshapes them
// in place to the batch width of the current solve, and the single-RHS path
// runs at width 1 and views each block as a plain vector.
type workspace struct {
	c    *Chain
	cols int

	// trace is the solve's fixed-slot stage timer. The chain kernels
	// accumulate per-level nanoseconds into it as they run; keeping it in
	// the pooled workspace (a plain value, fixed arrays) is what lets the
	// instrumented steady-state apply path stay at zero heap allocations.
	// wsPool.get resets it, so every checkout starts a fresh trace.
	trace obs.SolveTrace

	lvl []levelWS
	bot bottomWS

	// charged is the byte footprint recorded by wsPool.get, so put can
	// reconcile growth that happened while checked out (ensureOuter).
	charged int64

	// outer PCG scratch, built lazily by ensureOuter (chain-only workspaces
	// never pay for it). pcgScal packs the block driver's per-lane scalar
	// scratch (dots, norms, step sizes, projection partials); pcgLane its
	// lane bookkeeping (original column per lane + the compaction keep
	// list); pcgCol a single plain column for finishing dropped lanes.
	outerN                                    int
	pcgX, pcgR, pcgAp, pcgPrev, pcgDiff, pcgP matrix.Block
	pcgScal                                   []float64
	pcgLane                                   []int
	pcgCol                                    []float64
}

// levelWS is one level's scratch: the Chebyshev recurrence blocks (sized to
// the level's vertex count), the elimination replay buffers and the
// back-substitution output (which is also what applyH returns).
type levelWS struct {
	chebX, chebR, chebP, chebAp matrix.Block // n_i × k
	fwdWork                     matrix.Block // n_i × k
	fwdCarry                    matrix.Block // len(Elim.Ops) × k
	fwdRed                      matrix.Block // len(Elim.Keep) × k
	backX                       matrix.Block // n_i × k
	// permNat/permZ are the reordered sweep's natural-order staging and
	// permuted-z buffers (n_i × k); zero-sized on levels without a Perm.
	permNat, permZ matrix.Block
	scal           []float64 // 2k projection scratch
}

// bottomWS is the dense bottom solve's scratch: the solution block and the
// grounded right-hand side.
type bottomWS struct {
	x, g matrix.Block
	scal []float64 // 2k projection scratch
}

// growFloats returns buf resized to length k, reusing its backing when
// capacity allows; contents are undefined.
func growFloats(buf []float64, k int) []float64 {
	if cap(buf) < k {
		return make([]float64, k)
	}
	return buf[:k]
}

func growInts(buf []int, k int) []int {
	if cap(buf) < k {
		return make([]int, k)
	}
	return buf[:k]
}

// newWorkspace builds a workspace for k columns over chain c.
func newWorkspace(c *Chain, k int) *workspace {
	ws := &workspace{c: c}
	ws.lvl = make([]levelWS, len(c.Levels))
	ws.grow(k)
	return ws
}

// grow reshapes the chain-level scratch to exactly k columns. Reshape reuses
// each block's backing array whenever capacity allows, so width changes on a
// pooled workspace are slice-header work, not allocation, once the widest
// batch has been seen. Width must be exact (not merely "at least k"): the
// interleaved layout bakes the lane stride into every block, so a stale
// wider shape would misindex.
func (ws *workspace) grow(k int) {
	if k == ws.cols {
		return
	}
	c := ws.c
	for i := range c.Levels {
		lvl := &c.Levels[i]
		n := lvl.G.N
		l := &ws.lvl[i]
		l.chebX.Reshape(n, k)
		l.chebR.Reshape(n, k)
		l.chebP.Reshape(n, k)
		l.chebAp.Reshape(n, k)
		l.fwdWork.Reshape(lvl.Elim.OrigN, k)
		l.fwdCarry.Reshape(len(lvl.Elim.Ops), k)
		l.fwdRed.Reshape(len(lvl.Elim.Keep), k)
		l.backX.Reshape(lvl.Elim.OrigN, k)
		if lvl.Perm != nil {
			l.permNat.Reshape(n, k)
			l.permZ.Reshape(n, k)
		}
		l.scal = growFloats(l.scal, 2*k)
	}
	ws.bot.x.Reshape(c.Bottom.N(), k)
	ws.bot.g.Reshape(c.Bottom.GroundedLen(), k)
	ws.bot.scal = growFloats(ws.bot.scal, 2*k)
	ws.cols = k
}

// ensureOuter equips the workspace with the outer PCG scratch for a k-column
// solve over vectors of length n (the solver's top-level system size).
// Blocks are reshaped in place; the scalar scratch packs 13 k-sized lanes
// (see pcgFlexibleBlock) plus the 2k projection partials.
func (ws *workspace) ensureOuter(n, k int) {
	if n < ws.outerN {
		n = ws.outerN
	}
	ws.outerN = n
	ws.pcgX.Reshape(n, k)
	ws.pcgR.Reshape(n, k)
	ws.pcgAp.Reshape(n, k)
	ws.pcgPrev.Reshape(n, k)
	ws.pcgDiff.Reshape(n, k)
	ws.pcgP.Reshape(n, k)
	ws.pcgScal = growFloats(ws.pcgScal, 13*k)
	ws.pcgLane = growInts(ws.pcgLane, 2*k)
	ws.pcgCol = growFloats(ws.pcgCol, n)
}

// bytes estimates the workspace's retained footprint (backing capacities —
// Reshape never shrinks them).
func (ws *workspace) bytes() int64 {
	var n int64
	blk := func(b *matrix.Block) {
		n += int64(b.Cap()) * 8
	}
	for i := range ws.lvl {
		l := &ws.lvl[i]
		blk(&l.chebX)
		blk(&l.chebR)
		blk(&l.chebP)
		blk(&l.chebAp)
		blk(&l.fwdWork)
		blk(&l.fwdCarry)
		blk(&l.fwdRed)
		blk(&l.backX)
		blk(&l.permNat)
		blk(&l.permZ)
		n += int64(cap(l.scal)) * 8
	}
	blk(&ws.bot.x)
	blk(&ws.bot.g)
	n += int64(cap(ws.bot.scal)) * 8
	blk(&ws.pcgX)
	blk(&ws.pcgR)
	blk(&ws.pcgAp)
	blk(&ws.pcgPrev)
	blk(&ws.pcgDiff)
	blk(&ws.pcgP)
	n += int64(cap(ws.pcgScal))*8 + int64(cap(ws.pcgLane))*8 + int64(cap(ws.pcgCol))*8
	return n
}

// wsPool reuses workspaces across solve requests via a sync.Pool while
// tracking an accountable footprint: outstanding is the byte sum of
// workspaces currently checked out, peak its high-water mark. The pool
// retains roughly one workspace per concurrent solve between GCs, so peak is
// the honest estimate a byte-budgeted cache should charge (see
// Solver.MemoryBytes).
type wsPool struct {
	pool        sync.Pool
	outstanding atomic.Int64
	peak        atomic.Int64
}

// get returns a workspace for chain c shaped to exactly k columns.
func (p *wsPool) get(c *Chain, k int) *workspace {
	ws, _ := p.pool.Get().(*workspace)
	if ws == nil {
		ws = newWorkspace(c, k)
	} else {
		ws.grow(k)
	}
	ws.trace.Reset()
	ws.charged = ws.bytes()
	p.raise(p.outstanding.Add(ws.charged))
	return ws
}

// put returns a workspace to the pool, reconciling any growth that happened
// while it was checked out (the outer driver's lazy ensureOuter): the
// workspace is released at its CURRENT footprint, so outstanding never
// drifts and peak reflects the scratch the pool really retains.
func (p *wsPool) put(ws *workspace) {
	b := ws.bytes()
	if b != ws.charged {
		p.raise(p.outstanding.Add(b - ws.charged))
	}
	p.outstanding.Add(-b)
	p.pool.Put(ws)
}

// raise lifts the peak high-water mark to cur if it exceeds it.
func (p *wsPool) raise(cur int64) {
	for {
		old := p.peak.Load()
		if cur <= old || p.peak.CompareAndSwap(old, cur) {
			return
		}
	}
}

// seed places a pre-built workspace in the pool, charging its footprint to
// the high-water estimate: the workspace is retained from the moment the
// chain is built, and MemoryBytes snapshots taken right after build — the
// service's cache-budget charge happens exactly then — must already see it.
func (p *wsPool) seed(ws *workspace) {
	ws.charged = ws.bytes()
	p.raise(ws.charged)
	p.pool.Put(ws)
}

// PeakBytes reports the pool's high-water footprint estimate.
func (p *wsPool) PeakBytes() int64 { return p.peak.Load() }
