package solver

import (
	"sync"
	"sync/atomic"

	"parlap/internal/obs"
)

// workspace holds every per-solve scratch vector of the chain's apply path
// and the outer PCG driver: per level the Chebyshev recurrence vectors, the
// elimination forward/back buffers, at the bottom the dense-solve pair, and
// (lazily) the outer iteration's vectors. One workspace serves one
// Solve/SolveBatch/stream-window at a time; a wsPool (sync.Pool) on the
// Solver and on the Chain reuses them across requests, so steady-state
// preconditioner applications allocate nothing.
//
// Every buffer is fully overwritten before it is read on each use — the
// chain's kernels either copy into them or write every slot — so a recycled
// workspace produces bitwise-identical results to a fresh one, preserving
// the Chain/Solver equivalence contracts. Buffers are column-major over the
// batch width: the single-RHS path uses column 0.
type workspace struct {
	c    *Chain
	cols int

	// trace is the solve's fixed-slot stage timer. The chain kernels
	// accumulate per-level nanoseconds into it as they run; keeping it in
	// the pooled workspace (a plain value, fixed arrays) is what lets the
	// instrumented steady-state apply path stay at zero heap allocations.
	// wsPool.get resets it, so every checkout starts a fresh trace.
	trace obs.SolveTrace

	lvl []levelWS
	bot bottomWS

	// charged is the byte footprint recorded by wsPool.get, so put can
	// reconcile growth that happened while checked out (ensureOuter).
	charged int64

	// outer PCG scratch, built lazily by ensureOuter (chain-only workspaces
	// never pay for it).
	outerN                              int
	pcgR, pcgAp, pcgPrev, pcgDiff, pcgP [][]float64
	pcgScal                             []float64
}

// levelWS is one level's scratch: the Chebyshev recurrence vectors (sized to
// the level's vertex count), the elimination replay buffers and the
// back-substitution output (which is also what applyH returns).
type levelWS struct {
	chebX, chebR, chebP, chebAp [][]float64 // n_i
	fwdWork                     [][]float64 // n_i
	fwdCarry                    [][]float64 // len(Elim.Ops)
	fwdRed                      [][]float64 // len(Elim.Keep)
	backX                       [][]float64 // n_i
	scal                        []float64   // per-column Chebyshev scalars
}

// bottomWS is the dense bottom solve's scratch: the solution vector and the
// grounded right-hand side.
type bottomWS struct {
	x, g [][]float64
}

func newCols(k, n int) [][]float64 {
	out := make([][]float64, k)
	for c := range out {
		out[c] = make([]float64, n)
	}
	return out
}

func growCols(buf [][]float64, k, n int) [][]float64 {
	for len(buf) < k {
		buf = append(buf, make([]float64, n))
	}
	return buf
}

// newWorkspace builds a workspace for k columns over chain c.
func newWorkspace(c *Chain, k int) *workspace {
	ws := &workspace{c: c}
	ws.lvl = make([]levelWS, len(c.Levels))
	ws.grow(k)
	return ws
}

// grow ensures the workspace covers k columns (existing columns are kept —
// growing never reallocates a column another caller could hold).
func (ws *workspace) grow(k int) {
	if k <= ws.cols {
		return
	}
	c := ws.c
	for i := range c.Levels {
		lvl := &c.Levels[i]
		n := lvl.G.N
		l := &ws.lvl[i]
		l.chebX = growCols(l.chebX, k, n)
		l.chebR = growCols(l.chebR, k, n)
		l.chebP = growCols(l.chebP, k, n)
		l.chebAp = growCols(l.chebAp, k, n)
		l.fwdWork = growCols(l.fwdWork, k, lvl.Elim.OrigN)
		l.fwdCarry = growCols(l.fwdCarry, k, len(lvl.Elim.Ops))
		l.fwdRed = growCols(l.fwdRed, k, len(lvl.Elim.Keep))
		l.backX = growCols(l.backX, k, lvl.Elim.OrigN)
		for len(l.scal) < k {
			l.scal = append(l.scal, 0)
		}
	}
	ws.bot.x = growCols(ws.bot.x, k, c.Bottom.N())
	ws.bot.g = growCols(ws.bot.g, k, c.Bottom.GroundedLen())
	if ws.outerN > 0 {
		ws.growOuter(k, ws.outerN)
	}
	ws.cols = k
}

// ensureOuter equips the workspace with the outer PCG scratch for vectors of
// length n (the solver's top-level system size) and the current column count.
func (ws *workspace) ensureOuter(n int) {
	if ws.outerN >= n && len(ws.pcgR) >= ws.cols {
		return
	}
	if n < ws.outerN {
		n = ws.outerN
	}
	ws.growOuter(ws.cols, n)
	ws.outerN = n
}

func (ws *workspace) growOuter(k, n int) {
	ws.pcgR = growCols(ws.pcgR, k, n)
	ws.pcgAp = growCols(ws.pcgAp, k, n)
	ws.pcgPrev = growCols(ws.pcgPrev, k, n)
	ws.pcgDiff = growCols(ws.pcgDiff, k, n)
	ws.pcgP = growCols(ws.pcgP, k, n)
	for len(ws.pcgScal) < k {
		ws.pcgScal = append(ws.pcgScal, 0)
	}
}

// bytes estimates the workspace's retained footprint.
func (ws *workspace) bytes() int64 {
	var n int64
	count := func(buf [][]float64) {
		for _, col := range buf {
			n += int64(len(col)) * 8
		}
	}
	for i := range ws.lvl {
		l := &ws.lvl[i]
		count(l.chebX)
		count(l.chebR)
		count(l.chebP)
		count(l.chebAp)
		count(l.fwdWork)
		count(l.fwdCarry)
		count(l.fwdRed)
		count(l.backX)
		n += int64(len(l.scal)) * 8
	}
	count(ws.bot.x)
	count(ws.bot.g)
	count(ws.pcgR)
	count(ws.pcgAp)
	count(ws.pcgPrev)
	count(ws.pcgDiff)
	count(ws.pcgP)
	n += int64(len(ws.pcgScal)) * 8
	return n
}

// wsPool reuses workspaces across solve requests via a sync.Pool while
// tracking an accountable footprint: outstanding is the byte sum of
// workspaces currently checked out, peak its high-water mark. The pool
// retains roughly one workspace per concurrent solve between GCs, so peak is
// the honest estimate a byte-budgeted cache should charge (see
// Solver.MemoryBytes).
type wsPool struct {
	pool        sync.Pool
	outstanding atomic.Int64
	peak        atomic.Int64
}

// get returns a workspace for chain c covering at least k columns.
func (p *wsPool) get(c *Chain, k int) *workspace {
	ws, _ := p.pool.Get().(*workspace)
	if ws == nil {
		ws = newWorkspace(c, k)
	} else {
		ws.grow(k)
	}
	ws.trace.Reset()
	ws.charged = ws.bytes()
	p.raise(p.outstanding.Add(ws.charged))
	return ws
}

// put returns a workspace to the pool, reconciling any growth that happened
// while it was checked out (pcgFlexible's lazy ensureOuter): the workspace
// is released at its CURRENT footprint, so outstanding never drifts and
// peak reflects the scratch the pool really retains.
func (p *wsPool) put(ws *workspace) {
	b := ws.bytes()
	if b != ws.charged {
		p.raise(p.outstanding.Add(b - ws.charged))
	}
	p.outstanding.Add(-b)
	p.pool.Put(ws)
}

// raise lifts the peak high-water mark to cur if it exceeds it.
func (p *wsPool) raise(cur int64) {
	for {
		old := p.peak.Load()
		if cur <= old || p.peak.CompareAndSwap(old, cur) {
			return
		}
	}
}

// seed places a pre-built workspace in the pool, charging its footprint to
// the high-water estimate: the workspace is retained from the moment the
// chain is built, and MemoryBytes snapshots taken right after build — the
// service's cache-budget charge happens exactly then — must already see it.
func (p *wsPool) seed(ws *workspace) {
	ws.charged = ws.bytes()
	p.raise(ws.charged)
	p.pool.Put(ws)
}

// PeakBytes reports the pool's high-water footprint estimate.
func (p *wsPool) PeakBytes() int64 { return p.peak.Load() }
