package solver

// Options selects the runtime execution policy of a solver, independently of
// the numerical ChainParams. It exists so the same chain can be driven
// sequentially and in parallel and the two runs compared: the pipeline's
// iteration-time kernels (CSR construction, AXPY/dot/residual, the
// elimination forward/back substitutions, Chebyshev and PCG iteration) and
// the chain-level construction kernels are selected through Workers, and
// par's fixed-grain reductions make the results bitwise identical across
// settings.
//
// Scope note: the sparsification sub-stages reached through
// IncrementalSparsify (low-stretch subgraph construction, stretch scoring,
// low-diameter decomposition) currently run on the process-default worker
// count regardless of Workers — their results are worker-count-independent
// by the same fixed-grain design, but Workers:1 does not make *construction*
// single-goroutine end-to-end (see ROADMAP open items).
type Options struct {
	// Workers is the number of goroutines used by the solver's parallel
	// kernels: 0 means runtime.GOMAXPROCS(0), 1 forces the sequential
	// reference path (for the kernels listed above), and any other value is
	// used literally.
	Workers int
}
