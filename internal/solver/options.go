package solver

// Options selects the runtime execution policy of a solver, independently of
// the numerical ChainParams. It exists so the same chain can be driven
// sequentially and in parallel and the two runs compared: the pipeline's
// iteration-time kernels (CSR construction, AXPY/dot/residual, the
// elimination forward/back substitutions, Chebyshev and PCG iteration),
// the chain-level construction kernels, AND the sparsification sub-stages
// (low-stretch subgraph construction, stretch scoring, low-diameter
// decomposition — threaded through lowstretch.Params.Workers and
// decomp.Params.Workers) are all selected through Workers, so Workers:1 is
// single-goroutine end-to-end, and par's fixed-grain reductions make the
// results bitwise identical across settings.
type Options struct {
	// Workers is the number of goroutines used by the solver's parallel
	// kernels: 0 means runtime.GOMAXPROCS(0), 1 forces the sequential
	// reference path (for the kernels listed above), and any other value is
	// used literally.
	Workers int
}
