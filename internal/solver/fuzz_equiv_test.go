package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"parlap/internal/decomp"
	"parlap/internal/gen"
	"parlap/internal/graph"
)

// The cross-worker equivalence fuzz suite: a seeded generator sweeps random
// graph specs across the families the service actually meets (grids,
// random-regular meshes, preferential attachment, disconnected unions) and
// asserts that the Workers knob changes NOTHING — the decomposition, the
// built chain (level graphs compared edge-for-edge with exact weight bits),
// and single + batch solves are bitwise identical for
// Workers ∈ {1, 2, 4, GOMAXPROCS}. With the jittered-BFS frontier rounds
// and the segmented masked projection now parallel, this closes the loop
// the PR-1 suite opened: no stage of the pipeline is exempt.

// fuzzWorkers: 1 is the sequential reference; 0 = GOMAXPROCS.
var fuzzWorkers = []int{2, 4, 0}

// randomFuzzGraph draws one spec from the sweep families.
func randomFuzzGraph(rng *rand.Rand) (string, *graph.Graph) {
	build := func() (string, *graph.Graph) {
		switch rng.Intn(4) {
		case 0:
			r, c := 8+rng.Intn(16), 8+rng.Intn(16)
			return fmt.Sprintf("grid2d:%dx%d", r, c), gen.Grid2D(r, c)
		case 1:
			n, d := 100+rng.Intn(400), 3+rng.Intn(3)
			return fmt.Sprintf("regular:%d:%d", n, d), gen.RandomRegular(n, d, rng.Int63())
		case 2:
			n, m := 150+rng.Intn(450), 2+rng.Intn(3)
			return fmt.Sprintf("pa:%d:%d", n, m), gen.PreferentialAttachment(n, m, rng.Int63())
		default:
			// Disconnected union of two smaller draws (multi-component
			// chains exercise the masked projection's segmented sums).
			g1 := gen.Grid2D(5+rng.Intn(8), 5+rng.Intn(8))
			g2 := gen.PreferentialAttachment(80+rng.Intn(150), 2, rng.Int63())
			var edges []graph.Edge
			edges = append(edges, g1.Edges...)
			for _, e := range g2.Edges {
				edges = append(edges, graph.Edge{U: e.U + g1.N, V: e.V + g1.N, W: e.W})
			}
			u := graph.FromEdges(g1.N+g2.N, edges)
			return fmt.Sprintf("union(n=%d+%d)", g1.N, g2.N), u
		}
	}
	return build()
}

// sameEdges compares two edge lists with exact float64 weight bits.
func sameEdges(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].U != b[i].U || a[i].V != b[i].V ||
			math.Float64bits(a[i].W) != math.Float64bits(b[i].W) {
			return false
		}
	}
	return true
}

func TestFuzzCrossWorkerEquivalence(t *testing.T) {
	const sweeps = 8
	rng := rand.New(rand.NewSource(20260727))
	for sweep := 0; sweep < sweeps; sweep++ {
		spec, g := randomFuzzGraph(rng)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("%02d-%s", sweep, spec), func(t *testing.T) {
			// (1) Partition: the decomposition behind AKPW must be bitwise
			// identical across workers for identical rng streams.
			partWith := func(w int) *decomp.PartitionResult {
				p := decomp.PracticalParams()
				p.Workers = w
				pr, _ := decomp.Partition(g, nil, 1, 8, p, rand.New(rand.NewSource(seed)), nil)
				return pr
			}
			refPart := partWith(1)
			for _, w := range fuzzWorkers {
				got := partWith(w)
				if got.NumComp != refPart.NumComp || got.Trials != refPart.Trials {
					t.Fatalf("workers=%d: partition shape differs", w)
				}
				for v := range refPart.Comp {
					if got.Comp[v] != refPart.Comp[v] {
						t.Fatalf("workers=%d: partition differs at vertex %d", w, v)
					}
				}
			}

			// (2) Chain build: every level graph (and the bottom) must match
			// edge-for-edge with exact weight bits, and the calibrated
			// schedule must agree.
			params := DefaultChainParams()
			params.Seed = seed
			buildWith := func(w int) *Solver {
				s, err := NewWithOptions(g, params, Options{Workers: w}, nil)
				if err != nil {
					t.Fatalf("workers=%d: build: %v", w, err)
				}
				return s
			}
			ref := buildWith(1)
			solvers := map[int]*Solver{1: ref}
			for _, w := range fuzzWorkers {
				s := buildWith(w)
				solvers[w] = s
				if s.Chain.Depth() != ref.Chain.Depth() {
					t.Fatalf("workers=%d: chain depth %d vs %d", w, s.Chain.Depth(), ref.Chain.Depth())
				}
				for i := range ref.Chain.Levels {
					lr, lg := &ref.Chain.Levels[i], &s.Chain.Levels[i]
					if !sameEdges(lr.G.Edges, lg.G.Edges) {
						t.Fatalf("workers=%d: level %d graph differs", w, i)
					}
					if !sameEdges(lr.Spars.H.Edges, lg.Spars.H.Edges) {
						t.Fatalf("workers=%d: level %d sparsifier differs", w, i)
					}
					if lr.ChebIts != lg.ChebIts ||
						math.Float64bits(lr.EigHi) != math.Float64bits(lg.EigHi) ||
						math.Float64bits(lr.EigLo) != math.Float64bits(lg.EigLo) {
						t.Fatalf("workers=%d: level %d schedule differs", w, i)
					}
					if len(lr.Elim.Ops) != len(lg.Elim.Ops) {
						t.Fatalf("workers=%d: level %d op log differs", w, i)
					}
				}
				if !sameEdges(ref.Chain.BottomG.Edges, s.Chain.BottomG.Edges) {
					t.Fatalf("workers=%d: bottom graph differs", w)
				}
			}

			// (3) Solve and SolveBatch: bitwise identical solutions and
			// identical iteration counts across every worker setting.
			const eps = 1e-8
			bs := make([][]float64, 3)
			brng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for c := range bs {
				b := make([]float64, g.N)
				for i := range b {
					b[i] = brng.NormFloat64()
				}
				bs[c] = b
			}
			xRef, stRef := ref.Solve(bs[0], eps)
			xsRef, _ := ref.SolveBatch(bs, eps)
			for _, w := range fuzzWorkers {
				s := solvers[w]
				x, st := s.Solve(bs[0], eps)
				if st.Iterations != stRef.Iterations {
					t.Fatalf("workers=%d: %d iterations vs %d", w, st.Iterations, stRef.Iterations)
				}
				for i := range xRef {
					if math.Float64bits(x[i]) != math.Float64bits(xRef[i]) {
						t.Fatalf("workers=%d: solve differs at entry %d", w, i)
					}
				}
				xs, _ := s.SolveBatch(bs, eps)
				for c := range xsRef {
					for i := range xsRef[c] {
						if math.Float64bits(xs[c][i]) != math.Float64bits(xsRef[c][i]) {
							t.Fatalf("workers=%d: batch col %d differs at entry %d", w, c, i)
						}
					}
				}
			}
		})
	}
}
