package solver

import (
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/matrix"
)

// The equivalence suite locks down the tentpole property of the parallel
// pipeline: the Workers knob changes only the schedule, never the numbers.
// Workers:1 is the sequential reference; every other setting must reproduce
// its reductions bitwise (par's fixed combining trees) and its solves to
// within strict tolerance.

// equivalenceWorkers are the parallel settings compared against Workers:1.
var equivalenceWorkers = []int{0, 2, 4}

// solverGraphs is the cross-topology test matrix: regular mesh, the two
// elimination extremes (path: everything is degree ≤ 2; star: one hub that
// must survive), an expander, and a weighted mesh with a wide conductance
// spread.
func solverGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":           gen.Grid2D(40, 40),
		"path":           gen.Path(1600),
		"star":           gen.Star(1200),
		"random-regular": gen.RandomRegular(700, 4, 7),
		"weighted-grid":  gen.WithExponentialWeights(gen.Grid2D(32, 32), 8, 4, 5),
	}
}

func relDiff(a, b []float64) float64 {
	num, den := 0.0, 1.0
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += a[i] * a[i]
	}
	return math.Sqrt(num / den)
}

func TestSolveWorkerEquivalence(t *testing.T) {
	const eps = 1e-8
	for name, g := range solverGraphs() {
		t.Run(name, func(t *testing.T) {
			b := randRHS(g.N, 11)
			ref, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			xRef, stRef := ref.Solve(b, eps)
			if !stRef.Converged {
				t.Fatalf("sequential reference did not converge: %+v", stRef)
			}
			if r := ref.Residual(xRef, b); r > 10*eps {
				t.Fatalf("sequential residual %.3e exceeds %g", r, 10*eps)
			}
			for _, w := range equivalenceWorkers {
				s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: w}, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				x, st := s.Solve(b, eps)
				if !st.Converged {
					t.Fatalf("workers=%d did not converge: %+v", w, st)
				}
				if st.Iterations != stRef.Iterations {
					t.Errorf("workers=%d: %d iterations, sequential took %d",
						w, st.Iterations, stRef.Iterations)
				}
				if r := s.Residual(x, b); r > 10*eps {
					t.Errorf("workers=%d: residual %.3e exceeds %g", w, r, 10*eps)
				}
				if d := relDiff(xRef, x); d > 1e-10 {
					t.Errorf("workers=%d: solution diverges from sequential by %.3e", w, d)
				}
			}
		})
	}
}

func TestSolveChebyshevWorkerEquivalence(t *testing.T) {
	g := gen.Grid2D(36, 36)
	b := randRHS(g.N, 13)
	ref, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	xRef, stRef := ref.SolveChebyshev(b, 1e-6)
	if !stRef.Converged {
		t.Fatalf("sequential Chebyshev did not converge: %+v", stRef)
	}
	for _, w := range equivalenceWorkers {
		s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		x, st := s.SolveChebyshev(b, 1e-6)
		if !st.Converged {
			t.Fatalf("workers=%d: not converged: %+v", w, st)
		}
		if d := relDiff(xRef, x); d > 1e-10 {
			t.Errorf("workers=%d: Chebyshev solution diverges by %.3e", w, d)
		}
	}
}

// tridiagSDD returns a strictly diagonally dominant matrix with positive
// off-diagonals — NOT a Laplacian, so NewSDD must take the Gremban
// double-cover path.
func tridiagSDD(t *testing.T, n int) *matrix.Sparse {
	t.Helper()
	var rows, cols []int
	var vals []float64
	for i := 0; i < n; i++ {
		rows = append(rows, i)
		cols = append(cols, i)
		vals = append(vals, 4)
		if i+1 < n {
			rows = append(rows, i, i+1)
			cols = append(cols, i+1, i)
			vals = append(vals, 1, 1)
		}
	}
	a, err := matrix.NewSparseFromTriplets(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.IsLaplacian(a, 1e-9) {
		t.Fatal("test matrix unexpectedly a Laplacian")
	}
	return a
}

func TestSDDGrembanWorkerEquivalence(t *testing.T) {
	const eps = 1e-8
	n := 1200
	a := tridiagSDD(t, n)
	b := randRHS(n, 17)
	ref, err := NewSDDWithOptions(a, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	xRef, stRef := ref.Solve(b, eps)
	if !stRef.Converged {
		t.Fatalf("sequential Gremban solve did not converge: %+v", stRef)
	}
	// Direct residual on the original SDD system.
	resOf := func(x []float64) float64 {
		r := a.Apply(x)
		matrix.SubInto(r, b, r)
		return matrix.Norm2(r) / matrix.Norm2(b)
	}
	if r := resOf(xRef); r > 100*eps {
		t.Fatalf("sequential SDD residual %.3e", r)
	}
	for _, w := range equivalenceWorkers {
		s, err := NewSDDWithOptions(a, DefaultChainParams(), Options{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		x, st := s.Solve(b, eps)
		if !st.Converged {
			t.Fatalf("workers=%d: not converged: %+v", w, st)
		}
		if r := resOf(x); r > 100*eps {
			t.Errorf("workers=%d: SDD residual %.3e", w, r)
		}
		if d := relDiff(xRef, x); d > 1e-10 {
			t.Errorf("workers=%d: SDD solution diverges by %.3e", w, d)
		}
	}
}

// TestEliminationWorkerEquivalence pins the parallel forward/back
// substitutions (per-round two-phase scatter, round-parallel replay) to the
// sequential reference bitwise: the op log is identical by construction
// (hash coins), and within-round independence means the float operations are
// literally the same.
func TestEliminationWorkerEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":     gen.Path(5000),
		"grid":     gen.Grid2D(50, 50),
		"weighted": gen.WithExponentialWeights(gen.Grid2D(40, 40), 4, 5, 3),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			elims := map[int]*Elimination{}
			for _, w := range []int{1, 0, 4} {
				rng := rand.New(rand.NewSource(21))
				elims[w] = GreedyEliminationW(w, g, rng, nil)
			}
			ref := elims[1]
			for _, w := range []int{0, 4} {
				e := elims[w]
				if len(e.Ops) != len(ref.Ops) || e.Rounds != ref.Rounds {
					t.Fatalf("workers=%d: op log shape differs (%d ops/%d rounds vs %d/%d)",
						w, len(e.Ops), e.Rounds, len(ref.Ops), ref.Rounds)
				}
				for i := range ref.Ops {
					if e.Ops[i] != ref.Ops[i] {
						t.Fatalf("workers=%d: op %d differs: %+v vs %+v", w, i, e.Ops[i], ref.Ops[i])
					}
				}
			}
			b := randRHS(g.N, 23)
			redRef, carryRef := ref.ForwardRHSW(1, b)
			xr := make([]float64, len(redRef))
			for i := range xr {
				xr[i] = float64(i%13) * 0.25
			}
			xRef := ref.BackSolveW(1, xr, carryRef)
			for _, w := range []int{0, 2, 4} {
				red, carry := ref.ForwardRHSW(w, b)
				for i := range redRef {
					if red[i] != redRef[i] {
						t.Fatalf("workers=%d: ForwardRHS diverges at %d", w, i)
					}
				}
				for i := range carryRef {
					if carry[i] != carryRef[i] {
						t.Fatalf("workers=%d: carry diverges at %d", w, i)
					}
				}
				x := ref.BackSolveW(w, xr, carry)
				for i := range xRef {
					if x[i] != xRef[i] {
						t.Fatalf("workers=%d: BackSolve diverges at %d", w, i)
					}
				}
			}
		})
	}
}
