package solver

import (
	"fmt"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
)

// The SolveBatch acceptance contract: k batched right-hand sides return
// bitwise-identical vectors to k independent Solve calls (batching shares
// traversals, never arithmetic), while the whole batch drives one
// preconditioner-chain pass per PCG iteration.

func batchGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":          gen.Grid2D(32, 32),
		"path":          gen.Path(900),
		"weighted-grid": gen.WithExponentialWeights(gen.Grid2D(24, 24), 8, 4, 5),
		"pa":            gen.PreferentialAttachment(800, 3, 17),
	}
}

func requireBitwiseVec(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d differs: %g vs %g", label, i, got[i], want[i])
		}
	}
}

func TestSolveBatchBitwiseEquivalence(t *testing.T) {
	const eps = 1e-7
	for name, g := range batchGraphs() {
		t.Run(name, func(t *testing.T) {
			s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 2}, nil)
			if err != nil {
				t.Fatal(err)
			}
			const k = 4
			bs := make([][]float64, k)
			for c := range bs {
				bs[c] = randRHS(g.N, int64(100+c))
			}
			xs, sts := s.SolveBatch(bs, eps)
			if len(xs) != k || len(sts) != k {
				t.Fatalf("batch returned %d/%d results, want %d", len(xs), len(sts), k)
			}
			for c := range bs {
				ref, refSt := s.Solve(bs[c], eps)
				requireBitwiseVec(t, fmt.Sprintf("column %d", c), xs[c], ref)
				if sts[c].Iterations != refSt.Iterations {
					t.Fatalf("column %d: batch took %d iterations, single %d",
						c, sts[c].Iterations, refSt.Iterations)
				}
				if sts[c].Converged != refSt.Converged {
					t.Fatalf("column %d: converged mismatch", c)
				}
				if sts[c].Residual != refSt.Residual {
					t.Fatalf("column %d: residual %g vs %g", c, sts[c].Residual, refSt.Residual)
				}
				if !refSt.Converged {
					t.Fatalf("column %d did not converge", c)
				}
			}
		})
	}
}

// TestSolveBatchWorkerEquivalence: the batch path must also be worker-count
// independent (same fixed reduction trees as the single path).
func TestSolveBatchWorkerEquivalence(t *testing.T) {
	g := gen.Grid2D(28, 28)
	const eps = 1e-7
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bs := [][]float64{randRHS(g.N, 1), randRHS(g.N, 2), randRHS(g.N, 3)}
	ref, _ := s.SolveBatchOpts(bs, eps, Options{Workers: 1})
	for _, w := range []int{0, 2, 4} {
		xs, _ := s.SolveBatchOpts(bs, eps, Options{Workers: w})
		for c := range xs {
			requireBitwiseVec(t, fmt.Sprintf("workers=%d column %d", w, c), xs[c], ref[c])
		}
	}
}

// TestSolveBatchZeroAndMixedRHS: zero columns converge immediately (like the
// single driver) without disturbing their batch-mates.
func TestSolveBatchZeroRHS(t *testing.T) {
	g := gen.Grid2D(20, 20)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, g.N)
	bs := [][]float64{randRHS(g.N, 5), zero, randRHS(g.N, 6)}
	xs, sts := s.SolveBatch(bs, 1e-7)
	for c, b := range bs {
		ref, refSt := s.Solve(b, 1e-7)
		requireBitwiseVec(t, fmt.Sprintf("column %d", c), xs[c], ref)
		if sts[c].Converged != refSt.Converged || sts[c].Iterations != refSt.Iterations {
			t.Fatalf("column %d stats mismatch: %+v vs %+v", c, sts[c], refSt)
		}
	}
}

// TestSolveBatchSharesChainPasses verifies the amortization claim behind
// SolveBatch: one preconditioner-chain pass per PCG iteration serves the
// whole batch. The chain's PrecondApplies counter increments once per
// top-level apply regardless of batch width, so the count consumed by a
// batched solve must equal the iteration count of the slowest column (+1
// for the init pass) — NOT k times it, which is what k independent solves
// would cost.
func TestSolveBatchSharesChainPasses(t *testing.T) {
	g := gen.Grid2D(24, 24)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	bs := make([][]float64, k)
	for c := range bs {
		bs[c] = randRHS(g.N, int64(200+c))
	}
	before := s.Chain.PrecondApplies()
	_, sts := s.SolveBatch(bs, 1e-7)
	passes := int(s.Chain.PrecondApplies() - before)
	maxIters := 0
	for c := range sts {
		if !sts[c].Converged {
			t.Fatalf("column %d did not converge", c)
		}
		if sts[c].Iterations > maxIters {
			maxIters = sts[c].Iterations
		}
	}
	// Init pass + one pass per iteration that entered the precond step.
	// Converging columns skip the precond of their final iteration, so the
	// pass count is at most maxIters (the slowest column's final iteration
	// contributes none) + 1 for init.
	if passes > maxIters+1 {
		t.Fatalf("batch used %d chain passes for max %d iterations — not shared across the batch", passes, maxIters)
	}
	sumIters := 0
	for c := range sts {
		sumIters += sts[c].Iterations
	}
	if k > 1 && passes >= sumIters {
		t.Fatalf("batch used %d chain passes vs %d summed column iterations — no amortization", passes, sumIters)
	}
}

// TestPrecondApplyBatchBitwise pins the chain-internal batch recursion to
// the single-column recursion.
func TestPrecondApplyBatchBitwise(t *testing.T) {
	g := gen.WithExponentialWeights(gen.Grid2D(20, 20), 6, 3, 7)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := [][]float64{randRHS(g.N, 11), randRHS(g.N, 12), randRHS(g.N, 13)}
	zs := s.Chain.PrecondApplyBatchW(0, rs)
	for c := range rs {
		requireBitwiseVec(t, fmt.Sprintf("column %d", c), zs[c], s.Chain.PrecondApply(rs[c]))
	}
}
