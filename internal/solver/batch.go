package solver

import (
	"math"
	"time"

	"parlap/internal/matrix"
	"parlap/internal/obs"
	"parlap/internal/wd"
)

// The batched solve path: the whole preconditioner-chain recursion — the
// elimination-log replays, the per-level Chebyshev sweeps, the CSR
// mat-vecs, the dense bottom solve — operates on k right-hand-side columns
// per pass, amortizing every traversal of the chain's (large, shared)
// static structure across the batch. Column arithmetic is never mixed:
// each batched kernel performs, per column, exactly the floating-point
// operations of its single-vector form in the same order, so SolveBatch
// returns bitwise-identical vectors to k independent Solve calls. Columns
// that converge (or break down) drop out of the active set exactly where
// the single-column driver would have stopped.
//
// Scratch lives in the same per-solve workspace as the single path (one
// column set per batch column), so steady-state batch applications reuse
// buffers across iterations and stream windows.

// solveLevelBatch is solveLevel over k columns: one Chebyshev sweep (or one
// bottom direct solve) serving the whole batch. Results are workspace
// column views.
func (c *Chain) solveLevelBatch(workers, i int, bs [][]float64, ws *workspace) [][]float64 {
	if i >= len(c.Levels) {
		c.bottomSolves.Add(int64(len(bs)))
		nb := int64(c.BottomG.N)
		c.rec.Add(int64(len(bs))*nb*nb, 1)
		xs := ws.bot.x[:len(bs)]
		t0 := time.Now()
		c.Bottom.SolveBatchIntoW(workers, bs, xs, ws.bot.g[:len(bs)])
		ws.trace.BottomNS += time.Since(t0).Nanoseconds()
		return xs
	}
	return c.chebLevelBatch(workers, i, bs, ws)
}

// applyHBatch is applyH over k columns: one forward/backward replay of the
// elimination log per batch instead of per RHS.
func (c *Chain) applyHBatch(workers, i int, rs [][]float64, ws *workspace) [][]float64 {
	k := len(rs)
	lvl := &c.Levels[i]
	l := &ws.lvl[i]
	li := obs.LevelIndex(i)
	t0 := time.Now()
	lvl.Elim.ForwardRHSBatchIntoW(workers, rs, l.fwdWork[:k], l.fwdCarry[:k], l.fwdRed[:k])
	ws.trace.FwdNS[li] += time.Since(t0).Nanoseconds()
	xr := c.solveLevelBatch(workers, i+1, l.fwdRed[:k], ws)
	t1 := time.Now()
	zs := l.backX[:k]
	lvl.Elim.BackSolveBatchIntoW(workers, xr, l.fwdCarry[:k], zs)
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, lvl.CompIdx)
	ws.trace.BackNS[li] += time.Since(t1).Nanoseconds()
	c.rec.Add(int64(k)*(int64(len(lvl.Elim.Ops))+int64(len(rs[0]))), int64(lvl.Elim.Rounds)+1)
	return zs
}

// applyHTopBatch applies the whole-chain preconditioner to k residuals into
// ws and returns the workspace-resident columns.
func (c *Chain) applyHTopBatch(workers int, rs [][]float64, ws *workspace) [][]float64 {
	t0 := time.Now()
	var zs [][]float64
	if len(c.Levels) == 0 {
		zs = ws.bot.x[:len(rs)]
		c.Bottom.SolveBatchIntoW(workers, rs, zs, ws.bot.g[:len(rs)])
		ws.trace.BottomNS += time.Since(t0).Nanoseconds()
	} else {
		zs = c.applyHBatch(workers, 0, rs, ws)
	}
	ws.trace.PrecondNS += time.Since(t0).Nanoseconds()
	return zs
}

// PrecondApplyBatchW applies the top-level preconditioner to k residuals in
// one chain pass. Column c is bitwise identical to PrecondApplyW on that
// column; the returned columns are freshly allocated (caller-owned). Safe
// for concurrent use (the Chain is read-only after build).
func (c *Chain) PrecondApplyBatchW(workers int, rs [][]float64) [][]float64 {
	ws := c.ws.get(c, len(rs))
	zs := c.applyHTopBatch(workers, rs, ws)
	out := matrix.CopyVecBatch(zs)
	c.ws.put(ws)
	return out
}

// fillScalar broadcasts v into dst (scratch for the batch AXPY kernels,
// whose per-column scalars here are column-independent).
func fillScalar(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// chebLevelBatch runs chebLevel's fixed-degree preconditioned Chebyshev
// iteration on k columns at once. The recurrence scalars depend only on the
// spectral interval and the iteration index — never on the data — so one
// scalar schedule drives all columns and each column reproduces the
// single-column iteration bitwise.
func (c *Chain) chebLevelBatch(workers, i int, bs [][]float64, ws *workspace) [][]float64 {
	k := len(bs)
	if k == 1 {
		return [][]float64{c.chebLevel(workers, i, bs[0], ws)}
	}
	lvl := &c.Levels[i]
	a := lvl.Lap
	ci := lvl.CompIdx
	l := &ws.lvl[i]
	xs, rs, ps, aps := l.chebX[:k], l.chebR[:k], l.chebP[:k], l.chebAp[:k]
	scal := l.scal[:k]
	n := a.N
	// Exclusive stage timing, mirroring chebLevel: the recursion's time
	// lands in deeper levels' slots, not this one's.
	t0 := time.Now()
	var innerNS int64
	for col := 0; col < k; col++ {
		x := xs[col]
		for j := 0; j < n; j++ {
			x[j] = 0
		}
		copy(rs[col], bs[col])
	}
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, rs, ci)
	co := newChebCoeffs(lvl.EigLo, lvl.EigHi)
	for it := 0; it < lvl.ChebIts; it++ {
		ta := time.Now()
		zs := c.applyHBatch(workers, i, rs, ws)
		innerNS += time.Since(ta).Nanoseconds()
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, ci)
		alpha, beta, first := co.step(it)
		if first {
			for col := 0; col < k; col++ {
				copy(ps[col], zs[col])
			}
		} else {
			fillScalar(scal, beta)
			matrix.AxpyBatchW(workers, ps, scal, ps, zs)
		}
		fillScalar(scal, alpha)
		matrix.AxpyBatchW(workers, xs, scal, ps, xs)
		a.MulVecBatchW(workers, ps, aps)
		fillScalar(scal, -alpha)
		matrix.AxpyBatchW(workers, rs, scal, aps, rs)
		c.rec.Add(int64(k)*int64(a.NNZ()+6*n), 2)
	}
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, xs, ci)
	ws.trace.ChebNS[obs.LevelIndex(i)] += time.Since(t0).Nanoseconds() - innerNS
	return xs
}

// gatherCols views the columns of src selected by idx (no copies — columns
// are independent slices, so a sub-batch is just a slice of pointers).
func gatherCols(src [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, c := range idx {
		out[i] = src[c]
	}
	return out
}

// pcgFlexibleBatch runs pcgFlexible on k right-hand sides, sharing one
// preconditioner-chain pass per iteration across all still-active columns.
// Every column follows the exact operation sequence of the single-column
// driver — same kernels, same order, same break points — so xs[c] is
// bitwise identical to pcgFlexible on bs[c]. Columns leave the active set
// when they converge or the preconditioner breaks down for them, exactly
// where pcgFlexible would have returned. ws supplies the iteration scratch
// (nil allocates fresh buffers, the baseline drivers' path).
func pcgFlexibleBatch(workers int, a *matrix.Sparse, bs [][]float64,
	precond func([][]float64) [][]float64, ci *matrix.CompIndex,
	tol float64, maxIter int, ws *workspace, rec *wd.Recorder) ([][]float64, []SolveStats) {
	k := len(bs)
	n := a.N
	xs := make([][]float64, k)
	stats := make([]SolveStats, k)
	for c := range xs {
		xs[c] = make([]float64, n)
	}
	var aps, rs, prevRs, diffBuf, ps [][]float64
	var scal []float64
	if ws != nil {
		ws.ensureOuter(n)
		aps, rs, prevRs = ws.pcgAp[:k], ws.pcgR[:k], ws.pcgPrev[:k]
		diffBuf, ps, scal = ws.pcgDiff[:k], ws.pcgP[:k], ws.pcgScal[:k]
	} else {
		aps, rs, prevRs = newCols(k, n), newCols(k, n), newCols(k, n)
		diffBuf, ps, scal = newCols(k, n), newCols(k, n), make([]float64, k)
	}
	for c := range bs {
		copy(rs[c], bs[c])
	}
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, rs, ci)
	bnorms := matrix.Norm2BatchW(workers, rs)
	// needsProject marks columns whose x must be projected on exit (every
	// exit path of the single driver except the zero-RHS early return).
	needsProject := make([]bool, k)
	var active []int
	for c := 0; c < k; c++ {
		if bnorms[c] == 0 {
			stats[c].Converged = true // x stays zero, like the single driver
			continue
		}
		needsProject[c] = true
		active = append(active, c)
	}
	rzs := make([]float64, k)
	if len(active) > 0 {
		zs := precond(gatherCols(rs, active))
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, ci)
		dots := matrix.DotBatchW(workers, gatherCols(rs, active), zs)
		for i, c := range active {
			copy(ps[c], zs[i])
			rzs[c] = dots[i]
			copy(prevRs[c], rs[c])
		}
	}
	for it := 0; it < maxIter && len(active) > 0; it++ {
		for _, c := range active {
			stats[c].Iterations = it + 1
		}
		actP := gatherCols(ps, active)
		actAP := gatherCols(aps, active)
		a.MulVecBatchW(workers, actP, actAP)
		paps := matrix.DotBatchW(workers, actP, actAP)
		// Columns whose preconditioner broke positive-definiteness stop here.
		alive := active[:0:len(active)]
		alphas := scal[:0]
		for i, c := range active {
			pap := paps[i]
			if pap <= 0 || math.IsNaN(pap) {
				continue
			}
			alive = append(alive, c)
			alphas = append(alphas, rzs[c]/pap)
		}
		active = alive
		if len(active) == 0 {
			break
		}
		matrix.AxpyBatchW(workers, gatherCols(xs, active), alphas, gatherCols(ps, active), gatherCols(xs, active))
		negAlphas := make([]float64, len(alphas))
		for i := range alphas {
			negAlphas[i] = -alphas[i]
		}
		matrix.AxpyBatchW(workers, gatherCols(rs, active), negAlphas, gatherCols(aps, active), gatherCols(rs, active))
		norms := matrix.Norm2BatchW(workers, gatherCols(rs, active))
		rec.Add(int64(len(active))*int64(a.NNZ()+10*n), 2)
		alive = active[:0:len(active)]
		for i, c := range active {
			res := norms[i] / bnorms[c]
			stats[c].Residual = res
			if res <= tol {
				stats[c].Converged = true
				continue
			}
			alive = append(alive, c)
		}
		active = alive
		if len(active) == 0 {
			break
		}
		// One chain pass for every still-active column.
		zs := precond(gatherCols(rs, active))
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, ci)
		diffs := gatherCols(diffBuf, active)
		matrix.SubIntoBatchW(workers, diffs, gatherCols(rs, active), gatherCols(prevRs, active))
		zdiffs := matrix.DotBatchW(workers, zs, diffs)
		newRzs := matrix.DotBatchW(workers, gatherCols(rs, active), zs)
		betas := make([]float64, len(active))
		var fallback []int // active positions needing the unpreconditioned direction
		for i, c := range active {
			beta := zdiffs[i] / rzs[c]
			if beta < 0 || math.IsNaN(beta) {
				beta = 0 // restart
			}
			betas[i] = beta
			rzs[c] = newRzs[i]
			if rzs[c] <= 0 || math.IsNaN(rzs[c]) {
				fallback = append(fallback, i)
			}
		}
		if len(fallback) > 0 {
			fbCols := make([]int, len(fallback))
			for j, i := range fallback {
				fbCols[j] = active[i]
			}
			fbRs := gatherCols(rs, fbCols)
			rrs := matrix.DotBatchW(workers, fbRs, fbRs)
			for j, i := range fallback {
				c := active[i]
				rzs[c] = rrs[j]
				copy(zs[i], rs[c]) // zs[i] is chain (or fresh) scratch: safe to overwrite
			}
		}
		matrix.AxpyBatchW(workers, gatherCols(ps, active), betas, gatherCols(ps, active), zs)
		for _, c := range active {
			copy(prevRs[c], rs[c])
		}
	}
	var project []int
	for c := 0; c < k; c++ {
		if needsProject[c] {
			project = append(project, c)
		}
	}
	if len(project) > 0 {
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, gatherCols(xs, project), ci)
	}
	w, dep := rec.Work(), rec.Depth()
	for c := range stats {
		stats[c].Work, stats[c].Depth = w, dep
	}
	return xs, stats
}
