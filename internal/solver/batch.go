package solver

import (
	"math"

	"parlap/internal/matrix"
	"parlap/internal/wd"
)

// The batched solve path: the whole preconditioner-chain recursion — the
// elimination-log replays, the per-level Chebyshev sweeps, the CSR
// mat-vecs, the dense bottom solve — operates on k right-hand-side columns
// per pass, amortizing every traversal of the chain's (large, shared)
// static structure across the batch. Column arithmetic is never mixed:
// each batched kernel performs, per column, exactly the floating-point
// operations of its single-vector form in the same order, so SolveBatch
// returns bitwise-identical vectors to k independent Solve calls. Columns
// that converge (or break down) drop out of the active set exactly where
// the single-column driver would have stopped.

// solveLevelBatch is solveLevel over k columns: one Chebyshev sweep (or one
// bottom direct solve) serving the whole batch.
func (c *Chain) solveLevelBatch(workers, i int, bs [][]float64) [][]float64 {
	if i >= len(c.Levels) {
		c.bottomSolves.Add(int64(len(bs)))
		nb := int64(c.BottomG.N)
		c.rec.Add(int64(len(bs))*nb*nb, 1)
		return c.Bottom.SolveBatchW(workers, bs)
	}
	lvl := &c.Levels[i]
	return chebyshevBatch(workers, lvl.Lap, bs, lvl.ChebIts, lvl.EigLo, lvl.EigHi,
		func(rs [][]float64) [][]float64 { return c.applyHBatch(workers, i, rs) },
		lvl.CompIdx, c.rec)
}

// applyHBatch is applyH over k columns: one forward/backward replay of the
// elimination log per batch instead of per RHS.
func (c *Chain) applyHBatch(workers, i int, rs [][]float64) [][]float64 {
	lvl := &c.Levels[i]
	red, carry := lvl.Elim.ForwardRHSBatchW(workers, rs)
	xr := c.solveLevelBatch(workers, i+1, red)
	zs := lvl.Elim.BackSolveBatchW(workers, xr, carry)
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, lvl.CompIdx)
	c.rec.Add(int64(len(rs))*(int64(len(lvl.Elim.Ops))+int64(len(rs[0]))), int64(lvl.Elim.Rounds)+1)
	return zs
}

// PrecondApplyBatchW applies the top-level preconditioner to k residuals in
// one chain pass. Column c is bitwise identical to PrecondApplyW on that
// column. Safe for concurrent use (the Chain is read-only after build).
func (c *Chain) PrecondApplyBatchW(workers int, rs [][]float64) [][]float64 {
	if len(c.Levels) == 0 {
		return c.Bottom.SolveBatchW(workers, rs)
	}
	return c.applyHBatch(workers, 0, rs)
}

// fillScalar broadcasts v into dst (scratch for the batch AXPY kernels,
// whose per-column scalars here are column-independent).
func fillScalar(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// chebyshevBatch runs the fixed-degree preconditioned Chebyshev iteration of
// chebyshev() on k columns at once. The Chebyshev recurrence scalars depend
// only on the spectral interval and the iteration index — never on the data
// — so one scalar schedule drives all columns and each column reproduces the
// single-column iteration bitwise.
func chebyshevBatch(workers int, a *matrix.Sparse, bs [][]float64, iters int, lo, hi float64,
	precond func([][]float64) [][]float64, ci *matrix.CompIndex, rec *wd.Recorder) [][]float64 {
	k := len(bs)
	if k == 1 {
		single := func(r []float64) []float64 { return precond([][]float64{r})[0] }
		return [][]float64{chebyshev(workers, a, bs[0], iters, lo, hi, single, ci, rec)}
	}
	n := a.N
	xs := make([][]float64, k)
	aps := make([][]float64, k)
	for c := range xs {
		xs[c] = make([]float64, n)
		aps[c] = make([]float64, n)
	}
	rs := matrix.CopyVecBatch(bs)
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, rs, ci)
	d := (hi + lo) / 2
	cc := (hi - lo) / 2
	var ps [][]float64
	var alpha, beta float64
	scal := make([]float64, k)
	for it := 0; it < iters; it++ {
		zs := precond(rs)
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, ci)
		switch it {
		case 0:
			ps = matrix.CopyVecBatch(zs)
			alpha = 1 / d
		case 1:
			beta = 0.5 * (cc * alpha) * (cc * alpha)
			alpha = 1 / (d - beta/alpha)
			fillScalar(scal, beta)
			matrix.AxpyBatchW(workers, ps, scal, ps, zs)
		default:
			beta = (cc * alpha / 2) * (cc * alpha / 2)
			alpha = 1 / (d - beta/alpha)
			fillScalar(scal, beta)
			matrix.AxpyBatchW(workers, ps, scal, ps, zs)
		}
		fillScalar(scal, alpha)
		matrix.AxpyBatchW(workers, xs, scal, ps, xs)
		a.MulVecBatchW(workers, ps, aps)
		fillScalar(scal, -alpha)
		matrix.AxpyBatchW(workers, rs, scal, aps, rs)
		rec.Add(int64(k)*int64(a.NNZ()+6*n), 2)
	}
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, xs, ci)
	return xs
}

// gatherCols views the columns of src selected by idx (no copies — columns
// are independent slices, so a sub-batch is just a slice of pointers).
func gatherCols(src [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, c := range idx {
		out[i] = src[c]
	}
	return out
}

// pcgFlexibleBatch runs pcgFlexible on k right-hand sides, sharing one
// preconditioner-chain pass per iteration across all still-active columns.
// Every column follows the exact operation sequence of the single-column
// driver — same kernels, same order, same break points — so xs[c] is
// bitwise identical to pcgFlexible on bs[c]. Columns leave the active set
// when they converge or the preconditioner breaks down for them, exactly
// where pcgFlexible would have returned.
func pcgFlexibleBatch(workers int, a *matrix.Sparse, bs [][]float64,
	precond func([][]float64) [][]float64, ci *matrix.CompIndex,
	tol float64, maxIter int, rec *wd.Recorder) ([][]float64, []SolveStats) {
	k := len(bs)
	n := a.N
	xs := make([][]float64, k)
	aps := make([][]float64, k)
	stats := make([]SolveStats, k)
	for c := range xs {
		xs[c] = make([]float64, n)
		aps[c] = make([]float64, n)
	}
	rs := matrix.CopyVecBatch(bs)
	matrix.ProjectOutConstantMaskedBatchIdxW(workers, rs, ci)
	bnorms := matrix.Norm2BatchW(workers, rs)
	// needsProject marks columns whose x must be projected on exit (every
	// exit path of the single driver except the zero-RHS early return).
	needsProject := make([]bool, k)
	var active []int
	for c := 0; c < k; c++ {
		if bnorms[c] == 0 {
			stats[c].Converged = true // x stays zero, like the single driver
			continue
		}
		needsProject[c] = true
		active = append(active, c)
	}
	rzs := make([]float64, k)
	ps := make([][]float64, k)
	prevRs := make([][]float64, k)
	if len(active) > 0 {
		zs := precond(gatherCols(rs, active))
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, ci)
		dots := matrix.DotBatchW(workers, gatherCols(rs, active), zs)
		for i, c := range active {
			ps[c] = matrix.CopyVec(zs[i])
			rzs[c] = dots[i]
			prevRs[c] = matrix.CopyVec(rs[c])
		}
	}
	scal := make([]float64, k)
	for it := 0; it < maxIter && len(active) > 0; it++ {
		for _, c := range active {
			stats[c].Iterations = it + 1
		}
		actP := gatherCols(ps, active)
		actAP := gatherCols(aps, active)
		a.MulVecBatchW(workers, actP, actAP)
		paps := matrix.DotBatchW(workers, actP, actAP)
		// Columns whose preconditioner broke positive-definiteness stop here.
		alive := active[:0:len(active)]
		alphas := scal[:0]
		for i, c := range active {
			pap := paps[i]
			if pap <= 0 || math.IsNaN(pap) {
				continue
			}
			alive = append(alive, c)
			alphas = append(alphas, rzs[c]/pap)
		}
		active = alive
		if len(active) == 0 {
			break
		}
		matrix.AxpyBatchW(workers, gatherCols(xs, active), alphas, gatherCols(ps, active), gatherCols(xs, active))
		negAlphas := make([]float64, len(alphas))
		for i := range alphas {
			negAlphas[i] = -alphas[i]
		}
		matrix.AxpyBatchW(workers, gatherCols(rs, active), negAlphas, gatherCols(aps, active), gatherCols(rs, active))
		norms := matrix.Norm2BatchW(workers, gatherCols(rs, active))
		rec.Add(int64(len(active))*int64(a.NNZ()+10*n), 2)
		alive = active[:0:len(active)]
		for i, c := range active {
			res := norms[i] / bnorms[c]
			stats[c].Residual = res
			if res <= tol {
				stats[c].Converged = true
				continue
			}
			alive = append(alive, c)
		}
		active = alive
		if len(active) == 0 {
			break
		}
		// One chain pass for every still-active column.
		zs := precond(gatherCols(rs, active))
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, zs, ci)
		diffs := make([][]float64, len(active))
		for i := range diffs {
			diffs[i] = make([]float64, n)
		}
		matrix.SubIntoBatchW(workers, diffs, gatherCols(rs, active), gatherCols(prevRs, active))
		zdiffs := matrix.DotBatchW(workers, zs, diffs)
		newRzs := matrix.DotBatchW(workers, gatherCols(rs, active), zs)
		betas := make([]float64, len(active))
		var fallback []int // active positions needing the unpreconditioned direction
		for i, c := range active {
			beta := zdiffs[i] / rzs[c]
			if beta < 0 || math.IsNaN(beta) {
				beta = 0 // restart
			}
			betas[i] = beta
			rzs[c] = newRzs[i]
			if rzs[c] <= 0 || math.IsNaN(rzs[c]) {
				fallback = append(fallback, i)
			}
		}
		if len(fallback) > 0 {
			fbCols := make([]int, len(fallback))
			for j, i := range fallback {
				fbCols[j] = active[i]
			}
			fbRs := gatherCols(rs, fbCols)
			rrs := matrix.DotBatchW(workers, fbRs, fbRs)
			for j, i := range fallback {
				c := active[i]
				rzs[c] = rrs[j]
				zs[i] = matrix.CopyVec(rs[c])
			}
		}
		matrix.AxpyBatchW(workers, gatherCols(ps, active), betas, gatherCols(ps, active), zs)
		for _, c := range active {
			copy(prevRs[c], rs[c])
		}
	}
	var project []int
	for c := 0; c < k; c++ {
		if needsProject[c] {
			project = append(project, c)
		}
	}
	if len(project) > 0 {
		matrix.ProjectOutConstantMaskedBatchIdxW(workers, gatherCols(xs, project), ci)
	}
	w, dep := rec.Work(), rec.Depth()
	for c := range stats {
		stats[c].Work, stats[c].Depth = w, dep
	}
	return xs, stats
}
