package solver

import (
	"math"
	"time"

	"parlap/internal/matrix"
	"parlap/internal/obs"
	"parlap/internal/wd"
)

// The batched solve path: the whole preconditioner-chain recursion — the
// elimination-log replays, the per-level Chebyshev sweeps, the CSR
// mat-vecs, the dense bottom solve — operates on one contiguous n×k
// matrix.Block per stage, amortizing every traversal of the chain's (large,
// shared) static structure across the batch and streaming the k lane values
// per vertex from adjacent memory (the vertex-major interleaved layout).
// Lane arithmetic is never mixed: each block kernel performs, per lane,
// exactly the floating-point operations of its single-vector form in the
// same order, so SolveBlock returns bitwise-identical vectors to k
// independent Solve calls. Lanes that converge (or break down) are
// compacted out of the block — pure data movement via Block.KeepLanes —
// exactly where the single-column driver would have stopped.
//
// Scratch lives in the same per-solve workspace as the single path (each
// buffer a Block reshaped to the batch width), so steady-state batch
// applications reuse backing arrays across iterations and stream windows
// and the Workers:1 apply path performs zero heap allocations.

// solveLevelBlock is solveLevel over the k lanes of bs: one Chebyshev sweep
// (or one bottom direct solve) serving the whole batch. The result is a
// workspace-resident block.
func (c *Chain) solveLevelBlock(workers, i int, bs *matrix.Block, ws *workspace) *matrix.Block {
	if i >= len(c.Levels) {
		k := bs.K()
		c.bottomSolves.Add(int64(k))
		nb := int64(c.BottomG.N)
		c.rec.Add(int64(k)*nb*nb, 1)
		t0 := time.Now()
		c.Bottom.SolveBlockIntoW(workers, bs, &ws.bot.x, &ws.bot.g, ws.bot.scal)
		ws.trace.BottomNS += time.Since(t0).Nanoseconds()
		return &ws.bot.x
	}
	return c.chebLevelBlock(workers, i, bs, ws)
}

// applyHBlock is applyH over the k lanes of r: one forward/backward replay
// of the elimination log per batch instead of per RHS.
func (c *Chain) applyHBlock(workers, i int, r *matrix.Block, ws *workspace) *matrix.Block {
	lvl := &c.Levels[i]
	l := &ws.lvl[i]
	li := obs.LevelIndex(i)
	t0 := time.Now()
	lvl.Elim.ForwardRHSBlockIntoW(workers, r, &l.fwdWork, &l.fwdCarry, &l.fwdRed)
	ws.trace.FwdNS[li] += time.Since(t0).Nanoseconds()
	xr := c.solveLevelBlock(workers, i+1, &l.fwdRed, ws)
	t1 := time.Now()
	lvl.Elim.BackSolveBlockIntoW(workers, xr, &l.fwdCarry, &l.backX)
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, &l.backX, lvl.CompIdx, l.scal)
	ws.trace.BackNS[li] += time.Since(t1).Nanoseconds()
	c.rec.Add(int64(r.K())*(int64(len(lvl.Elim.Ops))+int64(r.N())), int64(lvl.Elim.Rounds)+1)
	return &l.backX
}

// applyHTopBlock applies the whole-chain preconditioner to the k lanes of rs
// into ws and returns the workspace-resident block. It reshapes the chain
// scratch to rs's width when the batch narrowed (lane dropout in the outer
// driver), which on a warm workspace is slice-header work only.
func (c *Chain) applyHTopBlock(workers int, rs *matrix.Block, ws *workspace) *matrix.Block {
	k := rs.K()
	if ws.cols != k {
		ws.grow(k)
	}
	if k == 1 {
		// Single-lane batches run the plain path (which counts the apply
		// itself); the result buffer is the same workspace block either way.
		c.applyHTop(workers, rs.Vec(), ws)
		if len(c.Levels) == 0 {
			return &ws.bot.x
		}
		return &ws.lvl[0].backX
	}
	c.precondApplies.Add(1)
	t0 := time.Now()
	var zs *matrix.Block
	if len(c.Levels) == 0 {
		c.Bottom.SolveBlockIntoW(workers, rs, &ws.bot.x, &ws.bot.g, ws.bot.scal)
		zs = &ws.bot.x
		ws.trace.BottomNS += time.Since(t0).Nanoseconds()
	} else {
		zs = c.applyHBlock(workers, 0, rs, ws)
	}
	ws.trace.PrecondNS += time.Since(t0).Nanoseconds()
	return zs
}

// PrecondApplyBatchW applies the top-level preconditioner to k residuals in
// one chain pass. Column c is bitwise identical to PrecondApplyW on that
// column; the returned columns are freshly allocated (caller-owned). Safe
// for concurrent use (the Chain is read-only after build).
func (c *Chain) PrecondApplyBatchW(workers int, rs [][]float64) [][]float64 {
	k := len(rs)
	if k == 0 {
		return nil
	}
	n := len(rs[0])
	ws := c.ws.get(c, k)
	var rb matrix.Block
	rb.Reshape(n, k)
	for col, r := range rs {
		rb.SetCol(col, r)
	}
	zs := c.applyHTopBlock(workers, &rb, ws)
	out := make([][]float64, k)
	for col := range out {
		out[col] = make([]float64, n)
		zs.ColInto(col, out[col])
	}
	c.ws.put(ws)
	return out
}

// chebLevelBlock runs chebLevel's fixed-degree preconditioned Chebyshev
// iteration on k lanes at once. The recurrence scalars depend only on the
// spectral interval and the iteration index — never on the data — so one
// scalar schedule drives all lanes and each lane reproduces the
// single-column iteration bitwise. The direction/iterate updates and the
// mat-vec/residual updates are fused (ChebUpdateBlockW, MulVecAxpyBlockW),
// sweeping the n×k working set twice per iteration instead of four times.
func (c *Chain) chebLevelBlock(workers, i int, bs *matrix.Block, ws *workspace) *matrix.Block {
	k := bs.K()
	l := &ws.lvl[i]
	lvl := &c.Levels[i]
	if k == 1 {
		c.chebLevel(workers, i, bs.Vec(), ws)
		if lvl.Perm != nil {
			return &l.permNat // the permuted single path returns natural order
		}
		return &l.chebX
	}
	if lvl.Perm != nil {
		return c.chebLevelBlockPerm(workers, i, bs, ws)
	}
	a := lvl.Lap
	ci := lvl.CompIdx
	x, r, p, ap := &l.chebX, &l.chebR, &l.chebP, &l.chebAp
	n := a.N
	// Exclusive stage timing, mirroring chebLevel: the recursion's time
	// lands in deeper levels' slots, not this one's.
	t0 := time.Now()
	var innerNS int64
	x.Zero()
	r.CopyFrom(bs)
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, r, ci, l.scal)
	co := newChebCoeffs(lvl.EigLo, lvl.EigHi)
	for it := 0; it < lvl.ChebIts; it++ {
		ta := time.Now()
		z := c.applyHBlock(workers, i, r, ws)
		innerNS += time.Since(ta).Nanoseconds()
		matrix.ProjectOutConstantMaskedBlockIdxW(workers, z, ci, l.scal)
		alpha, beta, first := co.step(it)
		matrix.ChebUpdateBlockW(workers, p, z, beta, x, alpha, first)
		a.MulVecAxpyBlockW(workers, p, ap, -alpha, r)
		c.rec.Add(int64(k)*int64(a.NNZ()+6*n), 2)
	}
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, x, ci, l.scal)
	ws.trace.ChebNS[obs.LevelIndex(i)] += time.Since(t0).Nanoseconds() - innerNS
	return x
}

// chebLevelBlockPerm is chebLevelPerm's k-lane form: sweep state in the
// level's Cuthill–McKee order streaming LapP, with a block scatter into the
// elimination's natural order before each recursive application and a block
// gather after it. Lane c performs exactly chebLevelPerm's operations, so
// block-vs-single equivalence holds on reordered chains too.
func (c *Chain) chebLevelBlockPerm(workers, i int, bs *matrix.Block, ws *workspace) *matrix.Block {
	lvl := &c.Levels[i]
	a := lvl.LapP
	ci := lvl.CompIdxP
	perm := lvl.Perm
	l := &ws.lvl[i]
	k := bs.K()
	x, r, p, ap := &l.chebX, &l.chebR, &l.chebP, &l.chebAp
	nat, zp := &l.permNat, &l.permZ
	n := a.N
	t0 := time.Now()
	var innerNS int64
	x.Zero()
	matrix.GatherBlockW(workers, r, bs, perm)
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, r, ci, l.scal)
	co := newChebCoeffs(lvl.EigLo, lvl.EigHi)
	for it := 0; it < lvl.ChebIts; it++ {
		matrix.ScatterBlockW(workers, nat, r, perm)
		ta := time.Now()
		z := c.applyHBlock(workers, i, nat, ws)
		innerNS += time.Since(ta).Nanoseconds()
		matrix.GatherBlockW(workers, zp, z, perm)
		matrix.ProjectOutConstantMaskedBlockIdxW(workers, zp, ci, l.scal)
		alpha, beta, first := co.step(it)
		matrix.ChebUpdateBlockW(workers, p, zp, beta, x, alpha, first)
		a.MulVecAxpyBlockW(workers, p, ap, -alpha, r)
		c.rec.Add(int64(k)*int64(a.NNZ()+8*n), 2)
	}
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, x, ci, l.scal)
	matrix.ScatterBlockW(workers, nat, x, perm)
	ws.trace.ChebNS[obs.LevelIndex(i)] += time.Since(t0).Nanoseconds() - innerNS
	return nat
}

// finishBlockLane retires one lane of the outer driver's iterate block: its
// column is gathered into the plain scratch vector col, given the single
// driver's final projection, and scattered into the caller-owned output
// column. Using the single-vector projection kernel on a contiguous copy
// keeps the finished value bitwise identical to pcgFlexible's exit path.
func finishBlockLane(workers int, x *matrix.Block, lane int, ci *matrix.CompIndex, col []float64, out *matrix.Block, outCol int) {
	k := x.K()
	xd := x.Data()
	for v := range col {
		col[v] = xd[v*k+lane]
	}
	matrix.ProjectOutConstantMaskedIdxW(workers, col, ci)
	out.SetCol(outCol, col)
}

// pcgFlexibleBlock runs pcgFlexible on the k0 lanes of rhs, sharing one
// preconditioner-chain pass per iteration across all still-active lanes.
// Every lane follows the exact operation sequence of the single-column
// driver — same kernels, same order, same break points — so out's column c
// is bitwise identical to pcgFlexible on rhs's column c. Lanes leave the
// active block via KeepLanes compaction (pure data movement — surviving
// lanes' arithmetic is untouched) when they converge or the preconditioner
// breaks down for them, exactly where pcgFlexible would have returned; a
// retiring lane is finished (projected and written to out) at that moment.
//
// out must be shaped n×k0 by the caller and is fully overwritten. stats
// must hold k0 zeroed entries. All scratch comes from ws (ensureOuter), so
// the Workers:1 steady state allocates nothing.
func pcgFlexibleBlock(workers int, a *matrix.Sparse, chain *Chain, rhs *matrix.Block,
	ci *matrix.CompIndex, tol float64, maxIter int, ws *workspace, rec *wd.Recorder,
	out *matrix.Block, stats []SolveStats) {
	n := a.N
	k0 := rhs.K()
	out.Zero()
	ws.ensureOuter(n, k0)
	// Per-lane scalar scratch: 13 k0-sized lanes packed into pcgScal.
	scal := ws.pcgScal
	bnorms := scal[0:k0]
	rzs := scal[k0 : 2*k0]
	alphas := scal[2*k0 : 3*k0]
	negAlphas := scal[3*k0 : 4*k0]
	paps := scal[4*k0 : 5*k0]
	norms := scal[5*k0 : 6*k0]
	betas := scal[6*k0 : 7*k0]
	zdiffs := scal[7*k0 : 8*k0]
	newRzs := scal[8*k0 : 9*k0]
	rrs := scal[9*k0 : 10*k0]
	dotTmp := scal[10*k0 : 11*k0]
	projScratch := scal[11*k0 : 13*k0]
	laneCol := ws.pcgLane[0:k0] // original output column of each live lane
	keep := ws.pcgLane[k0 : 2*k0]
	col := ws.pcgCol[:n]

	R := &ws.pcgR
	R.Reshape(n, k0)
	R.CopyFrom(rhs)
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, R, ci, projScratch)
	matrix.Norm2BlockIntoW(workers, R, bnorms, dotTmp)
	// Zero right-hand sides converge immediately with x = 0, unprojected,
	// like the single driver's early return; everything else becomes a lane.
	lanes := 0
	for c := 0; c < k0; c++ {
		if bnorms[c] == 0 {
			stats[c].Converged = true
			continue
		}
		keep[lanes] = c
		laneCol[lanes] = c
		bnorms[lanes] = bnorms[c] // in-place compaction: lanes <= c always
		lanes++
	}
	finish := func() {
		w, dep := rec.Work(), rec.Depth()
		for c := range stats {
			stats[c].Work, stats[c].Depth = w, dep
		}
	}
	if lanes == 0 {
		finish()
		return
	}
	if lanes < k0 {
		R.KeepLanes(keep[:lanes])
	}

	X := &ws.pcgX
	X.Reshape(n, lanes)
	X.Zero()
	Z := chain.applyHTopBlock(workers, R, ws)
	matrix.ProjectOutConstantMaskedBlockIdxW(workers, Z, ci, projScratch)
	matrix.DotBlockIntoW(workers, R, Z, rzs, dotTmp)
	P := &ws.pcgP
	P.Reshape(n, lanes)
	P.CopyFrom(Z)
	PrevR := &ws.pcgPrev
	PrevR.Reshape(n, lanes)
	PrevR.CopyFrom(R)
	AP := &ws.pcgAp
	Diff := &ws.pcgDiff

	for it := 0; it < maxIter && lanes > 0; it++ {
		for j := 0; j < lanes; j++ {
			stats[laneCol[j]].Iterations = it + 1
		}
		AP.Reshape(n, lanes)
		a.MulVecBlockW(workers, P, AP)
		matrix.DotBlockIntoW(workers, P, AP, paps, dotTmp)
		// Lanes whose preconditioner broke positive-definiteness stop here,
		// with x as of BEFORE this iteration's update (the single driver's
		// break point). Survivors get their step size.
		nk := 0
		for j := 0; j < lanes; j++ {
			pap := paps[j]
			if pap <= 0 || math.IsNaN(pap) {
				continue
			}
			alphas[nk] = rzs[j] / pap
			keep[nk] = j
			nk++
		}
		if nk < lanes {
			lanes = compactLanes(workers, keep[:nk], lanes, X, ci, col, out, laneCol, rzs, bnorms,
				R, PrevR, P, AP) // AP is consumed by the residual update below
			if lanes == 0 {
				break
			}
		}
		matrix.AxpyBlockW(workers, X, alphas[:lanes], P, X)
		for j := 0; j < lanes; j++ {
			negAlphas[j] = -alphas[j]
		}
		matrix.AxpyBlockW(workers, R, negAlphas[:lanes], AP, R)
		matrix.Norm2BlockIntoW(workers, R, norms, dotTmp)
		rec.Add(int64(lanes)*int64(a.NNZ()+10*n), 2)
		nk = 0
		for j := 0; j < lanes; j++ {
			res := norms[j] / bnorms[j]
			stats[laneCol[j]].Residual = res
			if res <= tol {
				stats[laneCol[j]].Converged = true
				continue
			}
			keep[nk] = j
			nk++
		}
		if nk < lanes {
			// AP is NOT compacted: the next iteration fully overwrites it.
			lanes = compactLanes(workers, keep[:nk], lanes, X, ci, col, out, laneCol, rzs, bnorms,
				R, PrevR, P)
			if lanes == 0 {
				break
			}
		}
		// One chain pass for every still-active lane.
		Z = chain.applyHTopBlock(workers, R, ws)
		matrix.ProjectOutConstantMaskedBlockIdxW(workers, Z, ci, projScratch)
		Diff.Reshape(n, lanes)
		matrix.SubIntoBlockW(workers, Diff, R, PrevR)
		matrix.DotBlockIntoW(workers, Z, Diff, zdiffs, dotTmp)
		matrix.DotBlockIntoW(workers, R, Z, newRzs, dotTmp)
		nfall := 0 // lanes needing the unpreconditioned fallback direction
		for j := 0; j < lanes; j++ {
			beta := zdiffs[j] / rzs[j]
			if beta < 0 || math.IsNaN(beta) {
				beta = 0 // restart
			}
			betas[j] = beta
			rzs[j] = newRzs[j]
			if rzs[j] <= 0 || math.IsNaN(rzs[j]) {
				keep[nfall] = j
				nfall++
			}
		}
		if nfall > 0 {
			matrix.DotBlockIntoW(workers, R, R, rrs, dotTmp)
			zd, rd := Z.Data(), R.Data()
			zk := Z.K()
			for fi := 0; fi < nfall; fi++ {
				j := keep[fi]
				rzs[j] = rrs[j]
				for v := 0; v < n; v++ { // z lane j ← r lane j (Z is chain scratch)
					zd[v*zk+j] = rd[v*zk+j]
				}
			}
		}
		matrix.AxpyBlockW(workers, P, betas[:lanes], P, Z)
		PrevR.CopyFrom(R)
	}
	// maxIter exhausted: remaining lanes finish with their current iterate.
	for j := 0; j < lanes; j++ {
		finishBlockLane(workers, X, j, ci, col, out, laneCol[j])
	}
	finish()
}

// compactLanes retires every lane NOT listed in keep — finishing its output
// column — and compacts the listed blocks and per-lane scalars down to the
// survivors via KeepLanes (pure data movement; surviving lanes' values are
// untouched). keep must be ascending. Returns the new lane count.
func compactLanes(workers int, keep []int, lanes int, x *matrix.Block, ci *matrix.CompIndex,
	col []float64, out *matrix.Block, laneCol []int, rzs, bnorms []float64,
	blocks ...*matrix.Block) int {
	ki := 0
	for j := 0; j < lanes; j++ {
		if ki < len(keep) && keep[ki] == j {
			ki++
			continue
		}
		finishBlockLane(workers, x, j, ci, col, out, laneCol[j])
	}
	x.KeepLanes(keep)
	for _, b := range blocks {
		b.KeepLanes(keep)
	}
	for i, j := range keep {
		laneCol[i] = laneCol[j]
		rzs[i] = rzs[j]
		bnorms[i] = bnorms[j]
	}
	return len(keep)
}
