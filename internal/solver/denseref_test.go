package solver

import (
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/matrix"
)

// Dense-reference correctness: at small n every generator family is checked
// against a dense LDLᵀ pseudo-inverse (matrix.LaplacianFactor), the ground
// truth the chain preconditioner is supposed to approximate. The
// multi-component cases use right-hand sides with NONZERO per-component
// means — exactly the masked-projection case (c) the segmented reduction
// now handles in parallel: a wrong per-component mean shows up here as a
// solution offset no residual check would catch.

func denseRefGraphs() map[string]*graph.Graph {
	union := func(gs ...*graph.Graph) *graph.Graph {
		n := 0
		var edges []graph.Edge
		for _, g := range gs {
			for _, e := range g.Edges {
				edges = append(edges, graph.Edge{U: e.U + n, V: e.V + n, W: e.W})
			}
			n += g.N
		}
		return graph.FromEdges(n, edges)
	}
	return map[string]*graph.Graph{
		"grid2d":        gen.Grid2D(9, 11),
		"grid3d":        gen.Grid3D(4, 5, 4),
		"torus":         gen.Torus2D(8, 9),
		"path":          gen.Path(90),
		"cycle":         gen.Cycle(85),
		"star":          gen.Star(80),
		"gnp":           gen.GNP(100, 0.08, 3),
		"regular":       gen.RandomRegular(96, 4, 5),
		"pa":            gen.PreferentialAttachment(110, 3, 9),
		"cliques":       gen.PathOfCliques(6, 12),
		"weighted-grid": gen.WithExponentialWeights(gen.Grid2D(8, 8), 6, 2, 7),
		"union-2comp":   union(gen.Grid2D(7, 7), gen.Cycle(40)),
		"union-4comp":   union(gen.Path(30), gen.Star(25), gen.Grid2D(5, 6), gen.PreferentialAttachment(45, 2, 1)),
	}
}

// denseSolve is the reference pseudo-inverse application.
func denseSolve(t *testing.T, g *graph.Graph, b []float64) []float64 {
	t.Helper()
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	lf, err := matrix.NewLaplacianFactor(lap, comp, k)
	if err != nil {
		t.Fatalf("dense factor: %v", err)
	}
	return lf.Solve(b)
}

// offsetRHS draws a random RHS and then shifts each component by a distinct
// nonzero constant, so its per-component means are all nonzero.
func offsetRHS(g *graph.Graph, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	comp, _ := g.ConnectedComponents()
	b := make([]float64, g.N)
	for i := range b {
		b[i] = rng.NormFloat64() + 2.5*float64(comp[i]+1)
	}
	return b
}

func TestSolveMatchesDenseReference(t *testing.T) {
	const eps = 1e-9
	for name, g := range denseRefGraphs() {
		t.Run(name, func(t *testing.T) {
			s, err := New(g, DefaultChainParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			b := offsetRHS(g, 0xD15C)
			want := denseSolve(t, g, b)
			x, st := s.Solve(b, eps)
			if !st.Converged {
				t.Fatalf("did not converge: %+v", st)
			}
			if d := relDiff(want, x); d > 1e-6 {
				t.Fatalf("solve diverges from dense reference by %.3e", d)
			}
			// The canonical representative: per-component mean exactly
			// projected out (both sides re-center, so a masked-projection
			// bug in EITHER path breaks this).
			comp, k := g.ConnectedComponents()
			sums := make([]float64, k)
			cnt := make([]float64, k)
			for i, c := range comp {
				sums[c] += x[i]
				cnt[c]++
			}
			for c := range sums {
				if m := math.Abs(sums[c]) / cnt[c]; m > 1e-9 {
					t.Fatalf("component %d of solution has mean %.3e, want ~0", c, m)
				}
			}
		})
	}
}

func TestSolveBatchMatchesDenseReference(t *testing.T) {
	const eps = 1e-9
	const k = 4
	for _, name := range []string{"grid2d", "union-2comp", "union-4comp", "cliques"} {
		g := denseRefGraphs()[name]
		t.Run(name, func(t *testing.T) {
			s, err := New(g, DefaultChainParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			bs := make([][]float64, k)
			for c := range bs {
				bs[c] = offsetRHS(g, int64(0xBA7C+c))
			}
			xs, sts := s.SolveBatch(bs, eps)
			for c := range xs {
				if !sts[c].Converged {
					t.Fatalf("column %d did not converge: %+v", c, sts[c])
				}
				want := denseSolve(t, g, bs[c])
				if d := relDiff(want, xs[c]); d > 1e-6 {
					t.Fatalf("column %d diverges from dense reference by %.3e", c, d)
				}
			}
		})
	}
}

// TestDenseReferenceSelfConsistency pins the reference itself: L·(L⁺b) must
// reproduce the projected b for every family (a broken dense path would
// silently weaken every comparison above).
func TestDenseReferenceSelfConsistency(t *testing.T) {
	for name, g := range denseRefGraphs() {
		t.Run(name, func(t *testing.T) {
			lap := matrix.LaplacianOf(g)
			comp, k := g.ConnectedComponents()
			b := offsetRHS(g, 0x5E1F)
			x := denseSolve(t, g, b)
			lx := lap.Apply(x)
			pb := matrix.CopyVec(b)
			matrix.ProjectOutConstantMasked(pb, comp, k)
			num, den := 0.0, 1e-30
			for i := range pb {
				d := lx[i] - pb[i]
				num += d * d
				den += pb[i] * pb[i]
			}
			if r := math.Sqrt(num / den); r > 1e-8 {
				t.Fatalf("%s: ‖L·L⁺b − Pb‖/‖Pb‖ = %.3e", name, r)
			}
		})
	}
}
