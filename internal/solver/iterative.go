package solver

import (
	"math"

	"parlap/internal/matrix"
	"parlap/internal/wd"
)

// chebCoeffs steps the Chebyshev recurrence scalars for spec(M⁻¹A) ⊆
// [lo, hi]. The schedule depends only on the interval and the iteration
// index — never on the data — and is shared by chebyshev, chebLevel and
// chebLevelBatch so the three drivers (whose bitwise single/batch/chain
// equivalences depend on identical scalars) cannot drift. A value type with
// no allocation: safe for the zero-alloc apply path.
type chebCoeffs struct {
	d, cc, alpha, beta float64
}

func newChebCoeffs(lo, hi float64) chebCoeffs {
	return chebCoeffs{d: (hi + lo) / 2, cc: (hi - lo) / 2}
}

// step advances to iteration k and returns the iteration's (alpha, beta);
// first reports k == 0, where the search direction is initialized instead
// of beta-updated. The two beta expressions are kept verbatim from the
// original recurrence — they are algebraically equal but not bitwise, and
// the pinned schedules depend on the exact float sequence.
func (c *chebCoeffs) step(k int) (alpha, beta float64, first bool) {
	switch k {
	case 0:
		c.alpha = 1 / c.d
		return c.alpha, 0, true
	case 1:
		c.beta = 0.5 * (c.cc * c.alpha) * (c.cc * c.alpha)
		c.alpha = 1 / (c.d - c.beta/c.alpha)
	default:
		c.beta = (c.cc * c.alpha / 2) * (c.cc * c.alpha / 2)
		c.alpha = 1 / (c.d - c.beta/c.alpha)
	}
	return c.alpha, c.beta, false
}

// chebyshev runs preconditioned Chebyshev iteration on A x = b assuming
// spec(M⁻¹A) ⊆ [a, bnd], performing exactly iters iterations (a fixed
// linear operator, as Lemma 6.7 requires for the recursion). precond must
// approximate M⁻¹. ci is the component-sorted index of A's connected
// components, used for null-space projection (built once per chain level).
// workers selects the vector-kernel parallelism (0 = GOMAXPROCS,
// 1 = sequential).
func chebyshev(workers int, a *matrix.Sparse, b []float64, iters int, lo, hi float64,
	precond func([]float64) []float64, ci *matrix.CompIndex, rec *wd.Recorder) []float64 {
	n := a.N
	x := make([]float64, n)
	r := matrix.CopyVec(b)
	matrix.ProjectOutConstantMaskedIdxW(workers, r, ci)
	co := newChebCoeffs(lo, hi)
	var p []float64
	ap := make([]float64, n)
	for k := 0; k < iters; k++ {
		z := precond(r)
		matrix.ProjectOutConstantMaskedIdxW(workers, z, ci)
		alpha, beta, first := co.step(k)
		if first {
			p = matrix.CopyVec(z)
		} else {
			matrix.AxpyIntoW(workers, p, beta, p, z)
		}
		matrix.AxpyIntoW(workers, x, alpha, p, x)
		a.MulVecW(workers, p, ap)
		matrix.AxpyIntoW(workers, r, -alpha, ap, r)
		rec.Add(int64(a.NNZ()+6*n), 2)
	}
	matrix.ProjectOutConstantMaskedIdxW(workers, x, ci)
	return x
}

// SolveStats reports what an iterative solve did.
type SolveStats struct {
	Iterations   int
	Converged    bool
	Residual     float64 // final ‖b−Ax‖₂ / ‖b‖₂ (b projected onto range(A))
	BottomSolves int
	Work         int64
	Depth        int64
}

// pcgFlexible is a flexible (Polak–Ribière) preconditioned conjugate
// gradient: it tolerates the mildly nonlinear preconditioner that a
// recursive Chebyshev chain is in floating point. Stops when the relative
// residual drops below tol or after maxIter iterations. workers selects the
// vector-kernel parallelism. ws supplies the iteration scratch (r, p, ap,
// prevR, diff) so steady-state iterations are allocation-free; nil
// allocates fresh buffers (the baseline drivers' path). Only the returned
// solution vector is allocated per call — it outlives the workspace.
func pcgFlexible(workers int, a *matrix.Sparse, b []float64, precond func([]float64) []float64,
	ci *matrix.CompIndex, tol float64, maxIter int, ws *workspace, rec *wd.Recorder) ([]float64, SolveStats) {
	n := a.N
	x := make([]float64, n)
	var r, p, ap, prevR, diff []float64
	if ws != nil {
		ws.ensureOuter(n, 1)
		r, p, ap = ws.pcgR.Vec(), ws.pcgP.Vec(), ws.pcgAp.Vec()
		prevR, diff = ws.pcgPrev.Vec(), ws.pcgDiff.Vec()
	} else {
		r, p, ap = make([]float64, n), make([]float64, n), make([]float64, n)
		prevR, diff = make([]float64, n), make([]float64, n)
	}
	copy(r, b)
	matrix.ProjectOutConstantMaskedIdxW(workers, r, ci)
	bnorm := matrix.Norm2W(workers, r)
	st := SolveStats{}
	if bnorm == 0 {
		st.Converged = true
		return x, st
	}
	z := precond(r)
	matrix.ProjectOutConstantMaskedIdxW(workers, z, ci)
	copy(p, z)
	rz := matrix.DotW(workers, r, z)
	copy(prevR, r)
	for k := 0; k < maxIter; k++ {
		st.Iterations = k + 1
		a.MulVecW(workers, p, ap)
		pap := matrix.DotW(workers, p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			break // preconditioner broke positive-definiteness; stop
		}
		alpha := rz / pap
		matrix.AxpyIntoW(workers, x, alpha, p, x)
		matrix.AxpyIntoW(workers, r, -alpha, ap, r)
		res := matrix.Norm2W(workers, r) / bnorm
		st.Residual = res
		rec.Add(int64(a.NNZ()+10*n), 2)
		if res <= tol {
			st.Converged = true
			break
		}
		z = precond(r)
		matrix.ProjectOutConstantMaskedIdxW(workers, z, ci)
		// Polak–Ribière: β = z·(r − r_prev) / rz_old (flexible variant).
		matrix.SubIntoW(workers, diff, r, prevR)
		beta := matrix.DotW(workers, z, diff) / rz
		if beta < 0 || math.IsNaN(beta) {
			beta = 0 // restart
		}
		rz = matrix.DotW(workers, r, z)
		if rz <= 0 || math.IsNaN(rz) {
			rz = matrix.DotW(workers, r, r) // fall back to unpreconditioned direction
			copy(z, r)                      // z is precond scratch: safe to overwrite
		}
		matrix.AxpyIntoW(workers, p, beta, p, z)
		copy(prevR, r)
	}
	matrix.ProjectOutConstantMaskedIdxW(workers, x, ci)
	st.Work, st.Depth = rec.Work(), rec.Depth()
	return x, st
}

// CG is the unpreconditioned conjugate-gradient baseline.
func CG(a *matrix.Sparse, b []float64, comp []int, numComp int, tol float64, maxIter int, rec *wd.Recorder) ([]float64, SolveStats) {
	return pcgFlexible(0, a, b, matrix.CopyVec, matrix.NewCompIndex(comp, numComp), tol, maxIter, nil, rec)
}

// JacobiPCG is the diagonally preconditioned CG baseline.
func JacobiPCG(a *matrix.Sparse, b []float64, comp []int, numComp int, tol float64, maxIter int, rec *wd.Recorder) ([]float64, SolveStats) {
	inv := make([]float64, a.N)
	for i, d := range a.Diag {
		if d > 0 {
			inv[i] = 1 / d
		}
	}
	precond := func(r []float64) []float64 {
		z := make([]float64, len(r))
		for i := range z {
			z[i] = inv[i] * r[i]
		}
		return z
	}
	return pcgFlexible(0, a, b, precond, matrix.NewCompIndex(comp, numComp), tol, maxIter, nil, rec)
}
