package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
)

// The cross-layout fuzz suite for the block batch engine: seeded random
// graph specs across the service's families (grids, random-regular meshes,
// preferential attachment, disconnected unions) × batch widths
// k ∈ {1, 2, 5, 8} × Workers ∈ {1, 2, 4}, asserting the batch-solve
// contract end to end — every lane of a block SolveBatch is bitwise
// identical to an independent single Solve of that column, with identical
// iteration counts and convergence flags. Zero columns and mixed-difficulty
// columns are injected so the driver's initial compaction and mid-iteration
// lane dropout both run under the fuzz, and the suite counts observed
// dropouts to prove the compaction path was actually exercised, not just
// reachable.

func TestFuzzBatchLaneEquivalence(t *testing.T) {
	const (
		sweeps = 6
		eps    = 1e-8
	)
	widths := []int{1, 2, 5, 8}
	workersList := []int{2, 4}
	rng := rand.New(rand.NewSource(20260808))
	dropouts := 0
	for sweep := 0; sweep < sweeps; sweep++ {
		spec, g := randomFuzzGraph(rng)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("%02d-%s", sweep, spec), func(t *testing.T) {
			params := DefaultChainParams()
			params.Seed = seed
			solvers := map[int]*Solver{}
			for _, w := range append([]int{1}, workersList...) {
				s, err := NewWithOptions(g, params, Options{Workers: w}, nil)
				if err != nil {
					t.Fatalf("workers=%d: build: %v", w, err)
				}
				solvers[w] = s
			}
			ref := solvers[1]
			brng := rand.New(rand.NewSource(seed ^ 0xb10c))
			for _, k := range widths {
				bs := make([][]float64, k)
				for c := range bs {
					b := make([]float64, g.N)
					if k > 1 && c == 1 && brng.Intn(2) == 0 {
						// An all-zero column: converges before the first
						// iteration and exercises the initial lane compaction.
						bs[c] = b
						continue
					}
					for i := range b {
						b[i] = brng.NormFloat64()
					}
					bs[c] = b
				}
				// Golden: k independent single solves on the sequential
				// reference solver.
				want := make([][]float64, k)
				wantSt := make([]SolveStats, k)
				for c := range bs {
					want[c], wantSt[c] = ref.Solve(bs[c], eps)
				}
				for c := 1; c < k; c++ {
					if wantSt[c].Iterations != wantSt[0].Iterations {
						dropouts++
						break
					}
				}
				for _, w := range append([]int{1}, workersList...) {
					xs, sts := solvers[w].SolveBatch(bs, eps)
					for c := range want {
						if sts[c].Iterations != wantSt[c].Iterations ||
							sts[c].Converged != wantSt[c].Converged {
							t.Fatalf("workers=%d k=%d col %d: stats %+v, single solve %+v",
								w, k, c, sts[c], wantSt[c])
						}
						for i := range want[c] {
							if math.Float64bits(xs[c][i]) != math.Float64bits(want[c][i]) {
								t.Fatalf("workers=%d k=%d col %d entry %d: batch %x != single %x",
									w, k, c, i, math.Float64bits(xs[c][i]), math.Float64bits(want[c][i]))
							}
						}
					}
				}
			}
		})
	}
	// The sweep seeds are fixed, so the number of mixed-convergence batches
	// is deterministic; at least one proves the mid-batch dropout path (lane
	// compaction with live survivors) ran under the fuzz.
	if dropouts == 0 {
		t.Fatalf("no batch in the sweep had lanes converging at different iterations; dropout path untested")
	}
	t.Logf("batches with mid-batch lane dropout: %d", dropouts)
}

// TestSolveBatchMidIterationDropout pins the dropout path deterministically:
// on a disconnected union of an easy small grid and a rougher preferential-
// attachment component, a lane whose RHS lives only on the easy component
// converges strictly earlier than a lane spanning both, so the batch driver
// must compact live lanes mid-iteration — and the surviving lanes' bits must
// not move (compaction is pure data movement, never recomputation).
func TestSolveBatchMidIterationDropout(t *testing.T) {
	const eps = 1e-8
	g1 := gen.Grid2D(6, 6)
	g2 := gen.PreferentialAttachment(300, 2, 5)
	var edges []graph.Edge
	edges = append(edges, g1.Edges...)
	for _, e := range g2.Edges {
		edges = append(edges, graph.Edge{U: e.U + g1.N, V: e.V + g1.N, W: e.W})
	}
	g := graph.FromEdges(g1.N+g2.N, edges)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	easy := make([]float64, g.N) // supported on the grid component only
	for i := 0; i < g1.N; i++ {
		easy[i] = rng.NormFloat64()
	}
	hard := make([]float64, g.N)
	for i := range hard {
		hard[i] = rng.NormFloat64()
	}
	zero := make([]float64, g.N)
	bs := [][]float64{hard, easy, zero, hard}

	want := make([][]float64, len(bs))
	wantSt := make([]SolveStats, len(bs))
	for c := range bs {
		want[c], wantSt[c] = s.Solve(bs[c], eps)
	}
	if wantSt[1].Iterations >= wantSt[0].Iterations {
		t.Fatalf("component-restricted lane took %d iterations, full lane %d; dropout not forced",
			wantSt[1].Iterations, wantSt[0].Iterations)
	}
	xs, sts := s.SolveBatch(bs, eps)
	for c := range want {
		if sts[c].Iterations != wantSt[c].Iterations || !sts[c].Converged {
			t.Fatalf("col %d: stats %+v, single solve %+v", c, sts[c], wantSt[c])
		}
		for i := range want[c] {
			if math.Float64bits(xs[c][i]) != math.Float64bits(want[c][i]) {
				t.Fatalf("col %d entry %d: batch %x != single %x",
					c, i, math.Float64bits(xs[c][i]), math.Float64bits(want[c][i]))
			}
		}
	}
}
