package solver

import (
	"math"
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/matrix"
)

func TestChebyshevSolvesWithExactPreconditioner(t *testing.T) {
	// With M = A (exact preconditioner), spec(M⁻¹A) = {1}; Chebyshev on
	// [0.9, 1.1] must converge essentially immediately.
	g := gen.Grid2D(10, 10)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	lf, err := matrix.NewLaplacianFactor(lap, comp, k)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(g.N, 1)
	x := chebyshev(0, lap, b, 8, 0.9, 1.1, lf.Solve, matrix.NewCompIndex(comp, k), nil)
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}

func TestChebyshevIdentityPreconditioner(t *testing.T) {
	// M = I on a path Laplacian: spectrum within (0, 4]; enough iterations
	// with the true interval must reduce the residual substantially.
	g := gen.Path(32)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	b := randRHS(g.N, 2)
	// λmin of the path Laplacian ≈ 2(1−cos(π/n)) ≈ π²/n².
	lmin := 2 * (1 - math.Cos(math.Pi/float64(g.N)))
	x := chebyshev(0, lap, b, 200, lmin, 4, matrix.CopyVec, matrix.NewCompIndex(comp, k), nil)
	r := matrix.CopyVec(b)
	matrix.SubInto(r, r, lap.Apply(x))
	if matrix.Norm2(r)/matrix.Norm2(b) > 1e-3 {
		t.Fatalf("relative residual %v after 200 its", matrix.Norm2(r)/matrix.Norm2(b))
	}
}

func TestChebyshevFixedIterationCountIsLinear(t *testing.T) {
	// The Chebyshev operator with fixed iterations must be linear:
	// C(a·b1 + b2) = a·C(b1) + C(b2) (Lemma 6.7 requires this for the
	// recursion). Identity preconditioner, fixed bounds.
	g := gen.Grid2D(6, 6)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	apply := func(b []float64) []float64 {
		return chebyshev(0, lap, b, 5, 0.05, 8, matrix.CopyVec, matrix.NewCompIndex(comp, k), nil)
	}
	rng := rand.New(rand.NewSource(3))
	b1, b2 := make([]float64, g.N), make([]float64, g.N)
	for i := range b1 {
		b1[i], b2[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b1)
	matrix.ProjectOutConstant(b2)
	alpha := 2.7
	combo := make([]float64, g.N)
	matrix.AxpyInto(combo, alpha, b1, b2)
	y1, y2, yc := apply(b1), apply(b2), apply(combo)
	for i := range yc {
		want := alpha*y1[i] + y2[i]
		if math.Abs(yc[i]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("nonlinear at %d: %v vs %v", i, yc[i], want)
		}
	}
}

func TestPCGZeroRHS(t *testing.T) {
	g := gen.Grid2D(5, 5)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	x, st := pcgFlexible(0, lap, make([]float64, g.N), matrix.CopyVec, matrix.NewCompIndex(comp, k), 1e-10, 100, nil, nil)
	if !st.Converged || st.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", st)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero x for zero rhs")
		}
	}
}

func TestPCGMaxIterRespected(t *testing.T) {
	g := gen.WithExponentialWeights(gen.Grid2D(20, 20), 8, 6, 4)
	lap := matrix.LaplacianOf(g)
	comp, k := g.ConnectedComponents()
	b := randRHS(g.N, 5)
	_, st := pcgFlexible(0, lap, b, matrix.CopyVec, matrix.NewCompIndex(comp, k), 1e-14, 7, nil, nil)
	if st.Iterations > 7 {
		t.Fatalf("iterations %d exceed maxIter", st.Iterations)
	}
	if st.Converged {
		t.Fatal("cannot converge to 1e-14 in 7 iterations on this system")
	}
}

func TestBuildChainBottomOnlyForSmallGraphs(t *testing.T) {
	g := gen.Grid2D(5, 5)
	ch, err := BuildChain(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Levels) != 0 {
		t.Fatalf("tiny graph built %d levels", len(ch.Levels))
	}
	// PrecondApply must be the exact bottom solve.
	b := randRHS(g.N, 6)
	x := ch.PrecondApply(b)
	lap := matrix.LaplacianOf(g)
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-8 {
			t.Fatalf("bottom-only precond inexact: %v", ax[i]-b[i])
		}
	}
}

func TestBuildChainKappaGrowthSchedule(t *testing.T) {
	g := gen.Grid2D(48, 48)
	p := DefaultChainParams()
	p.KappaGrowth = 2
	ch, err := BuildChain(g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ch.Levels); i++ {
		if ch.Levels[i].Kappa < ch.Levels[i-1].Kappa {
			t.Fatalf("kappa not nondecreasing: %v then %v",
				ch.Levels[i-1].Kappa, ch.Levels[i].Kappa)
		}
	}
}

func TestBuildChainRejectsOversizedBottom(t *testing.T) {
	g := gen.Grid2D(30, 30)
	p := DefaultChainParams()
	p.MaxLevels = 1
	p.MaxBottomVertices = 10 // impossible
	p.ShrinkRetry = 0.0001   // force immediate truncation
	if _, err := BuildChain(g, p, nil); err == nil {
		t.Fatal("expected bottom-size error")
	}
}

func TestChainBottomSolvesCounted(t *testing.T) {
	g := gen.Grid2D(32, 32)
	ch, err := BuildChain(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.BottomSolves()
	ch.PrecondApply(randRHS(g.N, 7))
	if ch.BottomSolves() <= before {
		t.Fatal("bottom solves not counted")
	}
}

func TestMergeParallelCombinesEdges(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2}, // parallel, reversed
		{U: 1, V: 1, W: 5}, // self-loop: dropped
		{U: 1, V: 2, W: 3},
	})
	m := mergeParallel(g)
	if m.M() != 2 {
		t.Fatalf("merged M = %d, want 2", m.M())
	}
	total := m.TotalWeight()
	if total != 6 { // 1+2 merged + 3
		t.Fatalf("merged weight %v, want 6", total)
	}
}

func TestSolverChainDeterministicForSeed(t *testing.T) {
	g := gen.Grid2D(24, 24)
	build := func() []int {
		ch, err := BuildChain(g, DefaultChainParams(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return ch.EdgeCounts()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("chain depths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chain counts differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSolveRepeatedRHSReusesChain(t *testing.T) {
	// Solving several right-hand sides against one Solver must all converge
	// (the chain is stateless across solves).
	g := gen.Grid2D(16, 16)
	s, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		b := randRHS(g.N, 100+seed)
		x, st := s.Solve(b, 1e-8)
		if !st.Converged {
			t.Fatalf("seed %d: not converged", seed)
		}
		if res := s.Residual(x, b); res > 1e-6 {
			t.Fatalf("seed %d: residual %v", seed, res)
		}
	}
}

func TestSparsifyPreservesComponents(t *testing.T) {
	var edges []graph.Edge
	for i := 0; i+1 < 40; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
		edges = append(edges, graph.Edge{U: 50 + i, V: 50 + i + 1, W: 1})
	}
	g := graph.FromEdges(100, edges)
	rng := rand.New(rand.NewSource(8))
	res := IncrementalSparsify(g, DefaultSparsifyParams(), rng, nil)
	ca, ka := g.ConnectedComponents()
	cb, kb := res.H.ConnectedComponents()
	if ka != kb {
		t.Fatalf("components changed: %d -> %d", ka, kb)
	}
	remap := map[int]int{}
	for v := range ca {
		if w, ok := remap[ca[v]]; ok {
			if w != cb[v] {
				t.Fatal("component structure changed")
			}
		} else {
			remap[ca[v]] = cb[v]
		}
	}
}

func TestEliminationDisconnectedGraph(t *testing.T) {
	// Isolated vertices and tiny components must eliminate cleanly.
	g := graph.FromEdges(7, []graph.Edge{
		{U: 0, V: 1, W: 2},                     // pair
		{U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 1}, // path of 3
		// 5, 6 isolated
	})
	rng := rand.New(rand.NewSource(9))
	el := GreedyElimination(g, rng, nil)
	if el.Reduced.N != 0 {
		t.Fatalf("everything is degree <= 2, reduced to %d", el.Reduced.N)
	}
	// Solve L x = b with b in range (per-component mean zero).
	b := []float64{1, -1, 2, -1, -1, 0, 0}
	red, carry := el.ForwardRHS(b)
	if len(red) != 0 {
		t.Fatalf("reduced rhs nonempty: %v", red)
	}
	x := el.BackSolve(nil, carry)
	lap := matrix.LaplacianOf(g)
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}

func TestEliminationWeightedSplice(t *testing.T) {
	// Series conductances: path u—v—w with conductances 2 and 3 splices to
	// 2·3/(2+3) = 1.2.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}})
	rng := rand.New(rand.NewSource(10))
	el := GreedyElimination(g, rng, nil)
	// Everything is degree ≤ 2 so the graph empties, but the intermediate
	// splice is exercised via the op log; verify solve correctness instead.
	b := []float64{1, 0, -1}
	red, carry := el.ForwardRHS(b)
	_ = red
	x := el.BackSolve(make([]float64, len(el.Keep)), carry)
	lap := matrix.LaplacianOf(g)
	ax := lap.Apply(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("residual %v at %d", ax[i]-b[i], i)
		}
	}
}
