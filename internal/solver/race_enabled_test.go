//go:build race

package solver

// raceDetectorEnabled mirrors the -race build tag: under the race detector
// sync.Pool intentionally drops items (its race hack), so pooled
// steady-state paths allocate and the zero-allocation walls that go
// through the pool cannot hold.
const raceDetectorEnabled = true
