package solver

import (
	"fmt"
	"math"
	"time"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/obs"
	"parlap/internal/wd"
)

// Solver is the public entry point: a Laplacian solver backed by the
// paper's preconditioner chain (Theorem 1.1). Construct once per graph with
// New (or NewWithOptions to pin the worker count), then Solve any number of
// right-hand sides.
type Solver struct {
	G       *graph.Graph
	Lap     *matrix.Sparse
	Chain   *Chain
	Comp    []int
	NumComp int
	// CompIdx is the component-sorted index over Comp, built once at
	// construction and reused by every masked projection in the outer PCG.
	CompIdx *matrix.CompIndex
	Opt     Options

	rec     *wd.Recorder
	MaxIter int
	// ws pools per-solve workspaces (chain scratch + outer PCG scratch)
	// across Solve/SolveBatch/stream-window requests, making steady-state
	// preconditioner applications allocation-free. Internally synchronized;
	// exempt from the read-only-after-build contract like the chain's
	// counters.
	ws wsPool
}

// New builds a Solver for the Laplacian of g with the default execution
// policy. The recorder is optional and accumulates analytical work/depth
// across construction and solves.
func New(g *graph.Graph, p ChainParams, rec *wd.Recorder) (*Solver, error) {
	return NewWithOptions(g, p, Options{}, rec)
}

// NewWithOptions builds a Solver whose construction and iteration kernels
// run with opt.Workers goroutines (0 = GOMAXPROCS, 1 = the sequential
// reference path). Because every parallel reduction uses a fixed combining
// tree, solvers built from the same inputs produce bitwise-identical
// results for every Workers setting.
func NewWithOptions(g *graph.Graph, p ChainParams, opt Options, rec *wd.Recorder) (*Solver, error) {
	if g.N == 0 {
		return nil, fmt.Errorf("solver: empty graph")
	}
	ch, err := BuildChainOpts(g, p, opt, rec)
	if err != nil {
		return nil, err
	}
	comp, k := g.ConnectedComponents()
	s := &Solver{
		G: g, Lap: matrix.LaplacianOfW(opt.Workers, g), Chain: ch,
		Comp: comp, NumComp: k,
		CompIdx: matrix.NewCompIndexW(opt.Workers, comp, k),
		Opt:     opt, rec: rec,
		MaxIter: 10 * int(math.Sqrt(float64(g.N))+100),
	}
	return s, nil
}

// MemoryBytes estimates the solver's retained footprint — the input graph,
// its Laplacian, the component labels, the whole preconditioner chain, and
// the workspace pools' high-water scratch — the per-entry cost a serving
// layer's byte-budgeted cache accounts for.
func (s *Solver) MemoryBytes() int64 {
	b := s.G.MemoryBytes() + s.Lap.MemoryBytes() + int64(len(s.Comp))*8
	if s.CompIdx != nil {
		b += s.CompIdx.MemoryBytes()
	}
	if s.Chain != nil {
		b += s.Chain.MemoryBytes() // includes the chain pool's peak
	}
	b += s.ws.PeakBytes()
	return b
}

// WorkspaceBytes reports the workspace pools' high-water footprint (solver
// solve pool + the chain's PrecondApply pool) — the scratch a serving layer
// retains between GCs on top of the chain itself.
func (s *Solver) WorkspaceBytes() int64 {
	b := s.ws.PeakBytes()
	if s.Chain != nil {
		b += s.Chain.ws.PeakBytes()
	}
	return b
}

// Solve returns x̃ with ‖x̃−L⁺b‖_L ≤ ~ε·‖L⁺b‖_L for the graph Laplacian L,
// using flexible PCG with the chain preconditioner (the adaptive outer
// wrapper around the paper's rPCh recursion; the inner recursion is exactly
// Lemma 6.7's fixed-degree Chebyshev). The right-hand side is projected
// onto range(L) per connected component first.
//
// A Solver is read-only after construction: Solve (and SolveOpts /
// SolveBatch) keep all per-solve state in call-local buffers, so any number
// of goroutines may solve concurrently on one shared Solver, and — because
// every parallel reduction uses a fixed combining tree — each goroutine gets
// the bitwise-identical answer it would have gotten solving alone.
func (s *Solver) Solve(b []float64, eps float64) ([]float64, SolveStats) {
	return s.SolveOpts(b, eps, s.Opt)
}

// SolveOpts is Solve with a per-call execution policy: opt.Workers selects
// the worker count for this one solve without rebuilding anything, which is
// how a serving layer splits a global worker budget across concurrent
// requests. Results are bitwise identical for every Workers value.
func (s *Solver) SolveOpts(b []float64, eps float64, opt Options) ([]float64, SolveStats) {
	return s.SolveTraced(b, eps, opt, nil)
}

// SolveTraced is SolveOpts with stage timing: when tr is non-nil, the
// solve's per-stage trace (workspace acquire, outer PCG, preconditioner
// applications, per-level Chebyshev/forward/back, bottom solves) is copied
// into it before the pooled workspace is released. Timing reads the clock
// around the kernels but never touches data values, so results remain
// bitwise identical to SolveOpts, and the trace copy is a plain struct
// assignment — the traced path allocates nothing beyond the untraced one.
func (s *Solver) SolveTraced(b []float64, eps float64, opt Options, tr *obs.SolveTrace) ([]float64, SolveStats) {
	if eps <= 0 {
		eps = 1e-8
	}
	w := opt.Workers
	t0 := time.Now()
	ws := s.ws.get(s.Chain, 1)
	ws.trace.WorkspaceNS = time.Since(t0).Nanoseconds()
	ws.trace.Levels = len(s.Chain.Levels)
	pre := func(r []float64) []float64 {
		return s.Chain.applyHTop(w, r, ws)
	}
	tOuter := time.Now()
	x, st := pcgFlexible(w, s.Lap, b, pre, s.CompIdx, eps, s.MaxIter, ws, s.rec)
	ws.trace.OuterNS = time.Since(tOuter).Nanoseconds()
	if tr != nil {
		*tr = ws.trace
	}
	s.ws.put(ws)
	return x, st
}

// SolveBatch solves the k right-hand sides bs against the same Laplacian in
// one batched PCG run: every iteration performs a single pass through the
// preconditioner chain (one elimination-log replay, one Chebyshev sweep per
// level, one CSR traversal per mat-vec, one dense bottom solve) serving all
// still-active columns, amortizing the chain's memory traffic across the
// batch. Column c of the result is bitwise identical to Solve(bs[c], eps):
// batching changes traversal sharing, never arithmetic. Columns converge
// (and drop out) independently.
func (s *Solver) SolveBatch(bs [][]float64, eps float64) ([][]float64, []SolveStats) {
	return s.SolveBatchOpts(bs, eps, s.Opt)
}

// SolveBatchOpts is SolveBatch with a per-call execution policy; see
// SolveOpts.
func (s *Solver) SolveBatchOpts(bs [][]float64, eps float64, opt Options) ([][]float64, []SolveStats) {
	return s.SolveBatchTraced(bs, eps, opt, nil)
}

// SolveBatchTraced is SolveBatchOpts with stage timing; the trace covers
// the whole batch (the chain passes are shared across columns, so per-column
// attribution does not exist). See SolveTraced. It is a staging wrapper over
// SolveBlockTraced: the slice columns are packed into a contiguous block,
// solved, and unpacked into freshly allocated output columns.
func (s *Solver) SolveBatchTraced(bs [][]float64, eps float64, opt Options, tr *obs.SolveTrace) ([][]float64, []SolveStats) {
	if len(bs) == 0 {
		return nil, nil
	}
	if len(bs) == 1 {
		x, st := s.SolveTraced(bs[0], eps, opt, tr)
		return [][]float64{x}, []SolveStats{st}
	}
	k := len(bs)
	n := len(bs[0])
	var rhs, out matrix.Block
	rhs.Reshape(n, k)
	for c, b := range bs {
		rhs.SetCol(c, b)
	}
	sts := s.SolveBlockTraced(&rhs, &out, eps, opt, tr, nil)
	xs := make([][]float64, k)
	for c := range xs {
		xs[c] = make([]float64, n)
		out.ColInto(c, xs[c])
	}
	return xs, sts
}

// SolveBlockTraced is the allocation-free batched entry point: the k lanes
// of rhs are solved in one block PCG run (one contiguous pass through the
// preconditioner chain per iteration serving every still-active lane) into
// out, which is reshaped to rhs's shape and fully overwritten. Lane c is
// bitwise identical to Solve on rhs's column c for every Workers setting.
//
// sts is reused for the returned stats when its capacity allows, so a
// steady-state caller (the streaming driver) that holds rhs, out and sts
// across windows performs zero heap allocations per solve at Workers:1 for
// k ≥ 2. (k == 1 delegates to SolveTraced, which allocates its result
// vector; single-RHS callers use Solve directly.)
func (s *Solver) SolveBlockTraced(rhs, out *matrix.Block, eps float64, opt Options, tr *obs.SolveTrace, sts []SolveStats) []SolveStats {
	k := rhs.K()
	if cap(sts) >= k {
		sts = sts[:k]
		for i := range sts {
			sts[i] = SolveStats{}
		}
	} else {
		sts = make([]SolveStats, k)
	}
	if k == 0 {
		return sts
	}
	if eps <= 0 {
		eps = 1e-8
	}
	n := rhs.N()
	out.Reshape(n, k)
	if k == 1 {
		x, st := s.SolveTraced(rhs.Vec(), eps, opt, tr)
		copy(out.Vec(), x)
		sts[0] = st
		return sts
	}
	w := opt.Workers
	t0 := time.Now()
	ws := s.ws.get(s.Chain, k)
	ws.trace.WorkspaceNS = time.Since(t0).Nanoseconds()
	ws.trace.Levels = len(s.Chain.Levels)
	tOuter := time.Now()
	pcgFlexibleBlock(w, s.Lap, s.Chain, rhs, s.CompIdx, eps, s.MaxIter, ws, s.rec, out, sts)
	ws.trace.OuterNS = time.Since(tOuter).Nanoseconds()
	if tr != nil {
		*tr = ws.trace
	}
	s.ws.put(ws)
	return sts
}

// SolveChebyshev is the paper-faithful solver: top-level preconditioned
// Chebyshev (no adaptivity) run in rounds of ⌈√κ₁⌉ iterations with
// iterative refinement between rounds until the residual target is met.
func (s *Solver) SolveChebyshev(b []float64, eps float64) ([]float64, SolveStats) {
	if eps <= 0 {
		eps = 1e-8
	}
	w := s.Opt.Workers
	n := s.G.N
	x := make([]float64, n)
	r := matrix.CopyVec(b)
	matrix.ProjectOutConstantMaskedIdxW(w, r, s.CompIdx)
	bnorm := matrix.Norm2W(w, r)
	st := SolveStats{}
	if bnorm == 0 {
		st.Converged = true
		return x, st
	}
	lo, hi := 0.25, 1.0
	its := 16
	if len(s.Chain.Levels) > 0 {
		l0 := s.Chain.Levels[0]
		lo, hi = l0.EigLo, l0.EigHi
		// A full √κ sweep per refinement round (the work-balanced ChebIts
		// is tuned for inner recursion, not the top level).
		its = int(math.Ceil(math.Sqrt(hi / lo)))
		if its < 16 {
			its = 16
		}
	}
	pre := func(z []float64) []float64 { return s.Chain.PrecondApply(z) }
	ax := make([]float64, n)
	maxRounds := 200
	for round := 0; round < maxRounds; round++ {
		dx := chebyshev(w, s.Lap, r, its, lo, hi, pre, s.CompIdx, s.rec)
		matrix.AddIntoW(w, x, x, dx)
		s.Lap.MulVecW(w, x, ax)
		matrix.SubIntoW(w, r, b, ax)
		matrix.ProjectOutConstantMaskedIdxW(w, r, s.CompIdx)
		st.Iterations += its
		st.Residual = matrix.Norm2W(w, r) / bnorm
		if st.Residual <= eps {
			st.Converged = true
			break
		}
		if math.IsNaN(st.Residual) || st.Residual > 1e6 {
			break // diverged: caller should fall back to Solve
		}
	}
	st.Work, st.Depth = s.rec.Work(), s.rec.Depth()
	return x, st
}

// Residual returns ‖b − L x‖₂ / ‖b‖₂ with b projected per component.
func (s *Solver) Residual(x, b []float64) float64 {
	w := s.Opt.Workers
	r := matrix.CopyVec(b)
	matrix.ProjectOutConstantMaskedIdxW(w, r, s.CompIdx)
	bn := matrix.Norm2W(w, r)
	ax := s.Lap.Apply(x)
	matrix.SubIntoW(w, r, r, ax)
	// L x is automatically in range(L); projection of r keeps comparisons fair.
	matrix.ProjectOutConstantMaskedIdxW(w, r, s.CompIdx)
	if bn == 0 {
		return 0
	}
	return matrix.Norm2W(w, r) / bn
}

// SDDSolver solves general symmetric diagonally dominant systems by the
// Gremban double-cover reduction to a Laplacian (§2 of the paper).
type SDDSolver struct {
	A      *matrix.Sparse
	gr     *matrix.GrembanReduction
	lap    *Solver // solver over the double cover (or directly when A is a Laplacian)
	direct bool    // A was already a Laplacian; no reduction employed
}

// NewSDD builds a solver for the SDD matrix a with the default execution
// policy.
func NewSDD(a *matrix.Sparse, p ChainParams, rec *wd.Recorder) (*SDDSolver, error) {
	return NewSDDWithOptions(a, p, Options{}, rec)
}

// NewSDDWithOptions is NewSDD with an explicit execution policy.
func NewSDDWithOptions(a *matrix.Sparse, p ChainParams, opt Options, rec *wd.Recorder) (*SDDSolver, error) {
	if matrix.IsLaplacian(a, 1e-9) {
		ls, err := NewWithOptions(matrix.GraphOfW(opt.Workers, a), p, opt, rec)
		if err != nil {
			return nil, err
		}
		return &SDDSolver{A: a, lap: ls, direct: true}, nil
	}
	gr, err := matrix.NewGrembanReductionW(opt.Workers, a, 0)
	if err != nil {
		return nil, err
	}
	ls, err := NewWithOptions(gr.G, p, opt, rec)
	if err != nil {
		return nil, err
	}
	return &SDDSolver{A: a, gr: gr, lap: ls}, nil
}

// Solve returns x̃ ≈ A⁺b.
func (s *SDDSolver) Solve(b []float64, eps float64) ([]float64, SolveStats) {
	if s.direct {
		return s.lap.Solve(b, eps)
	}
	y, st := s.lap.Solve(s.gr.Lift(b), eps)
	return s.gr.Project(y), st
}

// SolveBatch solves k right-hand sides in one batched run; see
// Solver.SolveBatch for the sharing and bitwise-equivalence guarantees.
func (s *SDDSolver) SolveBatch(bs [][]float64, eps float64) ([][]float64, []SolveStats) {
	if s.direct {
		return s.lap.SolveBatch(bs, eps)
	}
	lifted := make([][]float64, len(bs))
	for c, b := range bs {
		lifted[c] = s.gr.Lift(b)
	}
	ys, sts := s.lap.SolveBatch(lifted, eps)
	xs := make([][]float64, len(ys))
	for c, y := range ys {
		xs[c] = s.gr.Project(y)
	}
	return xs, sts
}
