package solver

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/matrix"
)

// Convergence regression wall for the κ-schedule concern: outer PCG
// iteration counts on the fixed testbed graphs are pinned with a tolerance
// band, so a chain-construction or schedule change that silently degrades
// convergence fails CI instead of drifting. cmd/benchsolve records the same
// counts (same specs, seed and RHS stream) in BENCH_solve.json on every CI
// run, giving the trajectory a tracked artifact; keep its spec list and
// this table in sync.
//
// The pins are exact today (iteration counts are bitwise-deterministic
// across worker counts — the equivalence suites lock that); the band only
// buys headroom for deliberate numerical changes, which must update this
// table and note the move in ROADMAP.md.

type convergencePin struct {
	spec string
	// iters is the count measured at pin time; band is the allowed absolute
	// deviation (~10%) before the test fails.
	iters, band int
}

// History: the pre-calibration schedule (assumed κ·ChebSlack intervals,
// ChebBudget 1.5) pinned 175 / 558 / 98. The PR-5 measured-κ calibration
// (Lanczos two-sided bounds, ChebBudget 3) cut them to 105 / 227 / 90 and
// flattened the grid iteration growth (64→128 grid: ×1.67 instead of ×3.3;
// grid2d:128x128 records 175 in BENCH_solve.json).
var convergencePins = []convergencePin{
	{spec: "grid2d:64x64", iters: 105, band: 11},
	{spec: "regular:4000:8", iters: 227, band: 23},
	{spec: "pa:4000:4", iters: 90, band: 9},
}

// benchRHS reproduces cmd/benchsolve's right-hand-side stream (seed 1):
// rng seed+7, standard normals, global mean removed.
func benchRHS(n int) []float64 {
	rng := rand.New(rand.NewSource(1 + 7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	return b
}

// testWorkers reads PARLAP_TEST_WORKERS so CI can run the pins on the
// parallel path (workers-4 on the 4-vCPU runner) as well as the default:
// iteration counts are bitwise-deterministic across worker counts, so a
// divergence on the parallel path alone is a parallel-schedule regression.
func testWorkers(t *testing.T) int {
	v := os.Getenv("PARLAP_TEST_WORKERS")
	if v == "" {
		return 0
	}
	w, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("bad PARLAP_TEST_WORKERS %q: %v", v, err)
	}
	return w
}

func TestConvergenceIterationPins(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed chain builds are too heavy for -short")
	}
	const eps = 1e-6 // benchsolve's default target
	workers := testWorkers(t)
	for _, pin := range convergencePins {
		pin := pin
		t.Run(pin.spec, func(t *testing.T) {
			g, err := gen.FromSpec(pin.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: workers}, nil)
			if err != nil {
				t.Fatal(err)
			}
			x, st := s.Solve(benchRHS(g.N), eps)
			if !st.Converged {
				t.Fatalf("testbed solve did not converge: %+v", st)
			}
			if r := s.Residual(x, benchRHS(g.N)); r > 10*eps {
				t.Fatalf("residual %.3e exceeds %g", r, 10*eps)
			}
			lo, hi := pin.iters-pin.band, pin.iters+pin.band
			if st.Iterations < lo || st.Iterations > hi {
				t.Fatalf("outer PCG took %d iterations, pinned to %d±%d — a κ-schedule regression "+
					"(or an improvement: update convergencePins and note it in ROADMAP.md)",
					st.Iterations, pin.iters, pin.band)
			}
			t.Logf("%s: %d iterations (pin %d±%d), residual %.2e",
				pin.spec, st.Iterations, pin.iters, pin.band, st.Residual)
		})
	}
}
