package solver

import (
	"math/rand"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/matrix"
)

// Convergence regression wall for the κ-schedule concern: outer PCG
// iteration counts on the fixed testbed graphs are pinned with a tolerance
// band, so a chain-construction or schedule change that silently degrades
// convergence fails CI instead of drifting. cmd/benchsolve records the same
// counts (same specs, seed and RHS stream) in BENCH_solve.json on every CI
// run, giving the trajectory a tracked artifact; keep its spec list and
// this table in sync.
//
// The pins are exact today (iteration counts are bitwise-deterministic
// across worker counts — the equivalence suites lock that); the band only
// buys headroom for deliberate numerical changes, which must update this
// table and note the move in ROADMAP.md.

type convergencePin struct {
	spec string
	// iters is the count measured at pin time; band is the allowed absolute
	// deviation (~10%) before the test fails.
	iters, band int
}

var convergencePins = []convergencePin{
	{spec: "grid2d:64x64", iters: 175, band: 18},
	{spec: "regular:4000:8", iters: 558, band: 56},
	{spec: "pa:4000:4", iters: 98, band: 10},
}

// benchRHS reproduces cmd/benchsolve's right-hand-side stream (seed 1):
// rng seed+7, standard normals, global mean removed.
func benchRHS(n int) []float64 {
	rng := rand.New(rand.NewSource(1 + 7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matrix.ProjectOutConstant(b)
	return b
}

func TestConvergenceIterationPins(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed chain builds are too heavy for -short")
	}
	const eps = 1e-6 // benchsolve's default target
	for _, pin := range convergencePins {
		pin := pin
		t.Run(pin.spec, func(t *testing.T) {
			g, err := gen.FromSpec(pin.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(g, DefaultChainParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			x, st := s.Solve(benchRHS(g.N), eps)
			if !st.Converged {
				t.Fatalf("testbed solve did not converge: %+v", st)
			}
			if r := s.Residual(x, benchRHS(g.N)); r > 10*eps {
				t.Fatalf("residual %.3e exceeds %g", r, 10*eps)
			}
			lo, hi := pin.iters-pin.band, pin.iters+pin.band
			if st.Iterations < lo || st.Iterations > hi {
				t.Fatalf("outer PCG took %d iterations, pinned to %d±%d — a κ-schedule regression "+
					"(or an improvement: update convergencePins and note it in ROADMAP.md)",
					st.Iterations, pin.iters, pin.band)
			}
			t.Logf("%s: %d iterations (pin %d±%d), residual %.2e",
				pin.spec, st.Iterations, pin.iters, pin.band, st.Residual)
		})
	}
}
