package solver

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The precision/layout fuzz suite: every (Precision, ReorderLevels)
// configuration must preserve the cross-worker bitwise contract — the Workers
// knob changes nothing, per configuration — and the f32 configurations must
// land within 10·eps of their f64 counterpart in the A-norm (the f32 chain
// preconditions; it does not limit attainable accuracy). Graph families and
// worker set mirror TestFuzzCrossWorkerEquivalence; this suite adds the two
// new chain axes the bandwidth work introduced.

type precLayoutCfg struct {
	prec    Precision
	reorder bool
}

func (c precLayoutCfg) String() string {
	s := c.prec.String()
	if c.reorder {
		s += "+reorder"
	}
	return s
}

var precLayoutCfgs = []precLayoutCfg{
	{PrecisionF64, false},
	{PrecisionF64, true},
	{PrecisionF32, false},
	{PrecisionF32, true},
}

func TestFuzzPrecisionLayoutEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chain-build sweeps are too heavy for -short")
	}
	sweeps := 5
	if raceDetectorEnabled {
		// Chain builds are ~20x slower under the race detector; two sweeps
		// still cover every configuration while keeping the package inside
		// the CI race budget. The full five run in the non-race suite.
		sweeps = 2
	}
	const eps = 1e-6
	rng := rand.New(rand.NewSource(20260808))
	for sweep := 0; sweep < sweeps; sweep++ {
		spec, g := randomFuzzGraph(rng)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("%02d-%s", sweep, spec), func(t *testing.T) {
			b := make([]float64, g.N)
			brng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for i := range b {
				b[i] = brng.NormFloat64()
			}
			var f64x []float64
			var f64s *Solver
			for _, cfg := range precLayoutCfgs {
				params := DefaultChainParams()
				params.Seed = seed
				params.Precision = cfg.prec
				params.ReorderLevels = cfg.reorder
				build := func(w int) *Solver {
					s, err := NewWithOptions(g, params, Options{Workers: w}, nil)
					if err != nil {
						t.Fatalf("%s workers=%d: build: %v", cfg, w, err)
					}
					return s
				}
				ref := build(1)
				xRef, stRef := ref.Solve(b, eps)
				if !stRef.Converged {
					t.Fatalf("%s: solve did not converge: %+v", cfg, stRef)
				}
				bs := [][]float64{b, b, b}
				xsRef, _ := ref.SolveBatch(bs, eps)
				// Bitwise across workers, within the configuration: chain
				// construction, gate decisions, and solves all replay.
				for _, w := range []int{2, 4} {
					s := build(w)
					for i := range ref.Chain.Levels {
						lr, lg := &ref.Chain.Levels[i], &s.Chain.Levels[i]
						if lr.ValF32 != lg.ValF32 {
							t.Fatalf("%s workers=%d: level %d gate decision differs", cfg, w, i)
						}
						if (lr.Perm == nil) != (lg.Perm == nil) {
							t.Fatalf("%s workers=%d: level %d layout differs", cfg, w, i)
						}
						for j := range lr.Perm {
							if lr.Perm[j] != lg.Perm[j] {
								t.Fatalf("%s workers=%d: level %d permutation differs at %d", cfg, w, i, j)
							}
						}
					}
					x, st := s.Solve(b, eps)
					if st.Iterations != stRef.Iterations {
						t.Fatalf("%s workers=%d: %d iterations vs %d", cfg, w, st.Iterations, stRef.Iterations)
					}
					for i := range xRef {
						if math.Float64bits(x[i]) != math.Float64bits(xRef[i]) {
							t.Fatalf("%s workers=%d: solve differs at entry %d", cfg, w, i)
						}
					}
					// Block path too: batch-of-3 must stay bitwise across
					// workers (the permuted/f32 block kernels share the
					// single path's chunk trees).
					xs, _ := s.SolveBatch(bs, eps)
					for c := range xsRef {
						for i := range xsRef[c] {
							if math.Float64bits(xs[c][i]) != math.Float64bits(xsRef[c][i]) {
								t.Fatalf("%s workers=%d: batch col %d differs at entry %d", cfg, w, c, i)
							}
						}
					}
				}
				if cfg.prec == PrecisionF64 && !cfg.reorder {
					f64x, f64s = xRef, ref
					continue
				}
				if d := relANorm(f64s, xRef, f64x); d > 10*eps {
					t.Fatalf("%s: solution %.3e from f64 in the A-norm, want <= %g", cfg, d, 10*eps)
				}
			}
		})
	}
}
