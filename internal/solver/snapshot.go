package solver

import (
	"fmt"

	"parlap/internal/graph"
	"parlap/internal/matrix"
)

// This file is the solver half of chain persistence (the serving half and
// the byte-level container live in internal/chainio): a built Solver
// deconstructs into SnapshotData — only the state that cannot be recomputed
// cheaply and deterministically — and AssembleSnapshot reconstructs a Solver
// from it. What is persisted: per-level graphs and sparsifier outputs with
// exact float64 weight bits, the elimination op logs, the calibrated
// Chebyshev schedule, the dense bottom factor, ChainParams and MaxIter.
// What is recomputed on restore: Laplacian CSRs, connected components and
// their sorted indexes, the eliminations' owner-computes reverse indexes,
// the bottom grounding bookkeeping, and the workspace pools. Every
// recomputation is one of the fixed-schedule deterministic passes the build
// itself ran, so a restored chain solves bit-for-bit like the original for
// every Workers setting — the invariant chainio's round-trip tests lock.

// SnapshotLevel is one chain level's persisted payload.
type SnapshotLevel struct {
	G        *graph.Graph // A_i (level 0: the merged input; else prior Reduced)
	H        *graph.Graph // B_i, the sparsifier output the elimination ran on
	Subgraph []int        // low-stretch subgraph edge ids within A_i
	Sampled  int
	StretchS float64
	Ops      []ElimOp // partial-Cholesky op log B_i -> A_{i+1}
	RoundEnd []int
	// Calibrated schedule (exact bits; never re-measured on restore).
	Kappa         float64
	ChebIts       int
	EigHi, EigLo  float64
	KappaMeasured float64
	Calibrated    bool
	// Precision-gate and layout outcomes (format v3). Restore re-applies
	// them mechanically — the f64→f32 rounding and the permutation build
	// are deterministic — so the restored apply path is bit-identical.
	ValF32   bool
	KappaF64 float64
	Perm     []int32 // Cuthill–McKee relabeling, nil/empty when not reordered
}

// SnapshotData is a built Solver's persisted payload.
type SnapshotData struct {
	Params  ChainParams
	MaxIter int
	G       *graph.Graph // the registered input graph
	Levels  []SnapshotLevel
	BottomG *graph.Graph
	Bottom  *matrix.DenseFactor // grounded dense LDL^T of BottomG's Laplacian
}

// Snapshot deconstructs a built Solver into its persisted payload. The
// returned structure shares the solver's backing arrays — treat it (and the
// solver) as read-only until encoding finishes, which the read-only-after-
// build contract already guarantees.
func (s *Solver) Snapshot() *SnapshotData {
	d := &SnapshotData{
		Params:  s.Chain.Params,
		MaxIter: s.MaxIter,
		G:       s.G,
		BottomG: s.Chain.BottomG,
		Bottom:  s.Chain.Bottom.Factor(),
		Levels:  make([]SnapshotLevel, len(s.Chain.Levels)),
	}
	for i := range s.Chain.Levels {
		lvl := &s.Chain.Levels[i]
		d.Levels[i] = SnapshotLevel{
			G: lvl.G, H: lvl.Spars.H,
			Subgraph: lvl.Spars.Subgraph,
			Sampled:  lvl.Spars.Sampled,
			StretchS: lvl.Spars.StretchS,
			Ops:      lvl.Elim.Ops,
			RoundEnd: lvl.Elim.RoundEnd,
			Kappa:    lvl.Kappa, ChebIts: lvl.ChebIts,
			EigHi: lvl.EigHi, EigLo: lvl.EigLo,
			KappaMeasured: lvl.KappaMeasured,
			Calibrated:    lvl.Calibrated,
			ValF32:        lvl.ValF32,
			KappaF64:      lvl.KappaF64,
			Perm:          lvl.Perm,
		}
	}
	return d
}

// AssembleSnapshot reconstructs a ready-to-solve Solver from a snapshot
// payload, recomputing every derived structure with opt.Workers goroutines
// (results are bitwise identical for every setting). It validates the
// payload's internal consistency — graph shapes, op-log ranges, schedule
// sanity, factor dimensions — and returns an error rather than a solver
// that could panic or silently solve a different system.
func AssembleSnapshot(d *SnapshotData, opt Options) (*Solver, error) {
	w := opt.Workers
	if d.G == nil || d.BottomG == nil || d.Bottom == nil {
		return nil, fmt.Errorf("solver: snapshot missing graph or bottom factor")
	}
	if d.G.N == 0 {
		return nil, fmt.Errorf("solver: snapshot of empty graph")
	}
	if err := d.G.Validate(); err != nil {
		return nil, fmt.Errorf("solver: snapshot input graph: %w", err)
	}
	if d.MaxIter < 1 {
		return nil, fmt.Errorf("solver: snapshot MaxIter %d < 1", d.MaxIter)
	}
	c := &Chain{Params: d.Params, Opt: opt, BottomG: d.BottomG}
	c.Levels = make([]Level, len(d.Levels))
	for i := range d.Levels {
		sl := &d.Levels[i]
		if sl.G == nil || sl.H == nil {
			return nil, fmt.Errorf("solver: snapshot level %d missing graph", i)
		}
		if err := sl.G.Validate(); err != nil {
			return nil, fmt.Errorf("solver: snapshot level %d graph: %w", i, err)
		}
		if err := sl.H.Validate(); err != nil {
			return nil, fmt.Errorf("solver: snapshot level %d sparsifier: %w", i, err)
		}
		if sl.H.N != sl.G.N {
			return nil, fmt.Errorf("solver: snapshot level %d sparsifier has %d vertices, level has %d", i, sl.H.N, sl.G.N)
		}
		for _, id := range sl.Subgraph {
			if id < 0 || id >= sl.G.M() {
				return nil, fmt.Errorf("solver: snapshot level %d subgraph edge id %d out of range", i, id)
			}
		}
		if sl.ChebIts < 1 || sl.ChebIts > 1<<20 {
			return nil, fmt.Errorf("solver: snapshot level %d has implausible ChebIts %d", i, sl.ChebIts)
		}
		if !(sl.EigLo > 0) || !(sl.EigHi >= sl.EigLo) {
			return nil, fmt.Errorf("solver: snapshot level %d has invalid Chebyshev interval [%g, %g]", i, sl.EigLo, sl.EigHi)
		}
		el := &Elimination{OrigN: sl.H.N, Ops: sl.Ops, RoundEnd: sl.RoundEnd}
		if err := el.ReindexW(w); err != nil {
			return nil, fmt.Errorf("solver: snapshot level %d: %w", i, err)
		}
		next := d.BottomG
		if i+1 < len(d.Levels) {
			next = d.Levels[i+1].G
		}
		if len(el.Keep) != next.N {
			return nil, fmt.Errorf("solver: snapshot level %d elimination keeps %d vertices, next level has %d", i, len(el.Keep), next.N)
		}
		el.Reduced = next
		if sl.ValF32 && i == 0 {
			return nil, fmt.Errorf("solver: snapshot marks top level as float32 (the gate never converts level 0)")
		}
		if len(sl.Perm) > 0 && i == 0 {
			return nil, fmt.Errorf("solver: snapshot carries a top-level permutation (level 0 is never reordered)")
		}
		comp, k := sl.G.ConnectedComponents()
		c.Levels[i] = Level{
			G: sl.G, Lap: matrix.LaplacianOfW(w, sl.G),
			Comp: comp, NumComp: k,
			CompIdx: matrix.NewCompIndexW(w, comp, k),
			Spars: &SparsifyResult{
				H: sl.H, Subgraph: sl.Subgraph,
				Sampled: sl.Sampled, StretchS: sl.StretchS,
			},
			Elim:  el,
			Kappa: sl.Kappa, ChebIts: sl.ChebIts,
			EigHi: sl.EigHi, EigLo: sl.EigLo,
			KappaMeasured: sl.KappaMeasured,
			Calibrated:    sl.Calibrated,
			ValF32:        sl.ValF32,
			KappaF64:      sl.KappaF64,
		}
		// Re-apply the persisted layout and precision outcomes in build
		// order (permute, then convert) — both passes are deterministic, so
		// the restored LapP/Val32 arrays match the original bit-for-bit.
		nl := &c.Levels[i]
		if len(sl.Perm) > 0 {
			if !matrix.IsPermutation(sl.Perm, sl.G.N) {
				return nil, fmt.Errorf("solver: snapshot level %d permutation is not a permutation of %d vertices", i, sl.G.N)
			}
			nl.applyReorder(w, sl.Perm)
		}
		if sl.ValF32 {
			nl.Lap.ConvertValues32()
			if nl.LapP != nil {
				nl.LapP.ConvertValues32()
			}
		}
	}
	if err := d.BottomG.Validate(); err != nil {
		return nil, fmt.Errorf("solver: snapshot bottom graph: %w", err)
	}
	bComp, bk := d.BottomG.ConnectedComponents()
	bf, err := matrix.NewLaplacianFactorFromFactor(w, d.BottomG.N, bComp, bk, d.Bottom)
	if err != nil {
		return nil, fmt.Errorf("solver: snapshot bottom factor: %w", err)
	}
	c.Bottom = bf
	// Warm the chain's workspace pool exactly as calibrate does at build
	// time, so the restored chain's first preconditioner application is
	// allocation-free and MemoryBytes already accounts the retained scratch.
	c.ws.seed(newWorkspace(c, 1))
	comp, k := d.G.ConnectedComponents()
	s := &Solver{
		G: d.G, Lap: matrix.LaplacianOfW(w, d.G), Chain: c,
		Comp: comp, NumComp: k,
		CompIdx: matrix.NewCompIndexW(w, comp, k),
		Opt:     opt,
		MaxIter: d.MaxIter,
	}
	return s, nil
}
