package solver

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"parlap/internal/gen"
)

// The workspace-reuse equivalence wall: recycling per-solve scratch through
// the sync.Pool must never change a bit of any answer. Every buffer is
// fully overwritten before it is read, so a pooled workspace behaves
// exactly like a fresh one — these tests lock that for repeated solves,
// for concurrent pool sharing (run under -race), and for the calibrated
// schedule across worker counts.

// TestWorkspaceReuseBitwise solves the same right-hand sides repeatedly on
// one Solver (forcing workspace recycling) and compares every answer
// bitwise against a fresh Solver built from the same inputs.
func TestWorkspaceReuseBitwise(t *testing.T) {
	g := gen.Grid2D(28, 28)
	shared, err := New(g, DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-7
	for round := 0; round < 3; round++ {
		for seed := int64(0); seed < 3; seed++ {
			b := randRHS(g.N, 500+seed)
			got, gotSt := shared.Solve(b, eps)
			fresh, err := New(g, DefaultChainParams(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want, wantSt := fresh.Solve(b, eps)
			requireBitwiseVec(t, fmt.Sprintf("round %d seed %d", round, seed), got, want)
			if gotSt.Iterations != wantSt.Iterations {
				t.Fatalf("round %d seed %d: %d iterations on reused workspace vs %d fresh",
					round, seed, gotSt.Iterations, wantSt.Iterations)
			}
		}
	}
	// Batch path through the same pool: columns bitwise equal to singles.
	bs := [][]float64{randRHS(g.N, 600), randRHS(g.N, 601), randRHS(g.N, 602)}
	xs, _ := shared.SolveBatch(bs, eps)
	for c, b := range bs {
		want, _ := shared.Solve(b, eps)
		requireBitwiseVec(t, fmt.Sprintf("batch col %d", c), xs[c], want)
	}
}

// TestWorkspacePoolConcurrent hammers one Solver from many goroutines with
// several solves each, so pool workspaces are stolen, recycled and grown
// (single and batch widths interleave). Every result must be bitwise equal
// to the sequential reference; -race proves the pool hand-off is clean.
func TestWorkspacePoolConcurrent(t *testing.T) {
	g := gen.Grid2D(24, 24)
	s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const (
		eps        = 1e-7
		goroutines = 6
		solvesEach = 3
	)
	bs := make([][]float64, goroutines)
	refs := make([][]float64, goroutines)
	for i := range bs {
		bs[i] = randRHS(g.N, int64(700+i))
		refs[i], _ = s.Solve(bs[i], eps)
	}
	refBatch, _ := s.SolveBatch([][]float64{bs[0], bs[1]}, eps)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*solvesEach)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < solvesEach; r++ {
				if i%2 == 0 {
					x, _ := s.Solve(bs[i], eps)
					for j := range x {
						if math.Float64bits(x[j]) != math.Float64bits(refs[i][j]) {
							errs <- fmt.Sprintf("goroutine %d solve %d: bit mismatch at %d", i, r, j)
							return
						}
					}
				} else {
					xs, _ := s.SolveBatch([][]float64{bs[0], bs[1]}, eps)
					for c := range xs {
						for j := range xs[c] {
							if math.Float64bits(xs[c][j]) != math.Float64bits(refBatch[c][j]) {
								errs <- fmt.Sprintf("goroutine %d batch %d col %d: bit mismatch at %d", i, r, c, j)
								return
							}
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestCalibrationWorkerEquivalence locks the calibrated schedule — the
// Lanczos-measured bounds, the measured κ and the derived ChebIts — to be
// bitwise reproducible for every worker count, and the solves with it too.
func TestCalibrationWorkerEquivalence(t *testing.T) {
	g := gen.WithExponentialWeights(gen.Grid2D(40, 40), 6, 4, 9)
	ref, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	refSched := ref.Chain.Schedule()
	b := randRHS(g.N, 800)
	refX, refSt := ref.Solve(b, 1e-7)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		s, err := NewWithOptions(g, DefaultChainParams(), Options{Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched := s.Chain.Schedule()
		if len(sched) != len(refSched) {
			t.Fatalf("workers=%d: %d levels vs %d", w, len(sched), len(refSched))
		}
		for i := range sched {
			a, r := sched[i], refSched[i]
			if a.ChebIts != r.ChebIts || a.Calibrated != r.Calibrated ||
				math.Float64bits(a.EigHi) != math.Float64bits(r.EigHi) ||
				math.Float64bits(a.EigLo) != math.Float64bits(r.EigLo) ||
				math.Float64bits(a.KappaMeasured) != math.Float64bits(r.KappaMeasured) {
				t.Fatalf("workers=%d level %d: schedule diverged: %+v vs %+v", w, i, a, r)
			}
		}
		x, st := s.Solve(b, 1e-7)
		requireBitwiseVec(t, fmt.Sprintf("workers %d", w), x, refX)
		if st.Iterations != refSt.Iterations {
			t.Fatalf("workers=%d: %d iterations vs %d", w, st.Iterations, refSt.Iterations)
		}
	}
}
