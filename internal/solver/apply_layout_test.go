package solver

import (
	"fmt"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/matrix"
	"parlap/internal/obs"
)

// The allocation walls of alloc_test.go, re-run on the new apply-path
// variants: float32 value storage and the Cuthill–McKee layout route through
// different kernels (f32 row loops, permuted sweeps with gather/scatter via
// the pooled permNat/permZ scratch), and each must hold the same steady-state
// zero-allocation guarantee as the natural f64 path.

func applyVariants() []precLayoutCfg {
	return []precLayoutCfg{
		{PrecisionF32, false},
		{PrecisionF64, true},
		{PrecisionF32, true},
	}
}

func TestPrecondApplyZeroAllocsVariants(t *testing.T) {
	for _, cfg := range applyVariants() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			g := gen.Grid2D(48, 48)
			p := DefaultChainParams()
			p.Precision = cfg.prec
			p.ReorderLevels = cfg.reorder
			s, err := NewWithOptions(g, p, Options{Workers: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			c := s.Chain
			if cfg.prec == PrecisionF32 && c.F32Levels() == 0 {
				t.Fatal("gate kept no f32 level; the wall would test the f64 path")
			}
			if cfg.reorder && c.ReorderedLevels() == 0 {
				t.Fatal("no level reordered; the wall would test the natural path")
			}
			r := randRHS(g.N, 7)
			ws := newWorkspace(c, 1)
			c.applyHTop(1, r, ws)
			allocs := testing.AllocsPerRun(20, func() {
				c.applyHTop(1, r, ws)
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s application allocated %.1f objects/op, want 0", cfg, allocs)
			}
		})
	}
}

func TestPrecondApplyBlockZeroAllocsVariants(t *testing.T) {
	for _, cfg := range applyVariants() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			g := gen.Grid2D(48, 48)
			p := DefaultChainParams()
			p.Precision = cfg.prec
			p.ReorderLevels = cfg.reorder
			s, err := NewWithOptions(g, p, Options{Workers: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			c := s.Chain
			const k = 8
			var rs matrix.Block
			rs.Reshape(g.N, k)
			for j := 0; j < k; j++ {
				rs.SetCol(j, randRHS(g.N, int64(7+j)))
			}
			ws := newWorkspace(c, k)
			c.applyHTopBlock(1, &rs, ws)
			allocs := testing.AllocsPerRun(20, func() {
				c.applyHTopBlock(1, &rs, ws)
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s block application allocated %.1f objects/op, want 0", cfg, allocs)
			}
		})
	}
}

func TestSolveBlockTracedZeroAllocsVariants(t *testing.T) {
	for _, cfg := range applyVariants() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			g := gen.Grid2D(32, 32)
			p := DefaultChainParams()
			p.Precision = cfg.prec
			p.ReorderLevels = cfg.reorder
			s, err := NewWithOptions(g, p, Options{Workers: 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			const k = 4
			var rhs, out matrix.Block
			rhs.Reshape(g.N, k)
			for j := 0; j < k; j++ {
				rhs.SetCol(j, randRHS(g.N, int64(11+j)))
			}
			const eps = 1e-4
			opt := Options{Workers: 1}
			var tr obs.SolveTrace
			var sts []SolveStats
			sts = s.SolveBlockTraced(&rhs, &out, eps, opt, &tr, sts)
			allocs := testing.AllocsPerRun(10, func() {
				sts = s.SolveBlockTraced(&rhs, &out, eps, opt, &tr, sts)
			})
			if allocs != 0 && !raceDetectorEnabled {
				t.Fatalf("steady-state %s block solve allocated %.1f objects/op, want 0", cfg, allocs)
			}
			for j, st := range sts {
				if !st.Converged {
					t.Fatalf("lane %d did not converge: %+v", j, st)
				}
			}
		})
	}
}

// BenchmarkApplyLayout measures a full preconditioner application on
// grid2d:128x128 across the layout/precision matrix — the CI-visible record
// of what the compact CSR, the float32 values, and the Cuthill–McKee
// reordering each buy on the bandwidth-bound sweep. Sub-benchmarks cover
// workers 1 and 4 (the CI runner's core count).
func BenchmarkApplyLayout(b *testing.B) {
	g := gen.Grid2D(128, 128)
	cfgs := append([]precLayoutCfg{{PrecisionF64, false}}, applyVariants()...)
	for _, cfg := range cfgs {
		p := DefaultChainParams()
		p.Precision = cfg.prec
		p.ReorderLevels = cfg.reorder
		s, err := NewWithOptions(g, p, Options{Workers: 4}, nil)
		if err != nil {
			b.Fatal(err)
		}
		r := randRHS(g.N, 7)
		dst := make([]float64, g.N)
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers-%d", cfg, w), func(b *testing.B) {
				s.Chain.PrecondApplyIntoW(w, r, dst)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Chain.PrecondApplyIntoW(w, r, dst)
				}
			})
		}
	}
}
