package solver

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/obs"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// Precision selects the storage width of the per-level sparsifier CSR
// values (the Laplacians the Chebyshev sweeps stream). The outer PCG
// vectors, the top-level operator, the elimination coefficients and the
// dense bottom factor always stay float64; accumulation is float64 at
// either storage width, so worker and block-vs-single equivalence hold
// per precision.
type Precision uint8

const (
	// PrecisionF64 stores level values as float64 (the default).
	PrecisionF64 Precision = iota
	// PrecisionF32 stores sub-top level values as float32 where the
	// calibration gate confirms the measured κ stays inside the safety
	// envelope (per level; degraded levels fall back to f64).
	PrecisionF32
)

// String returns the flag-friendly name ("f64"/"f32").
func (p Precision) String() string {
	if p == PrecisionF32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision inverts String (accepting also "float64"/"float32").
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return PrecisionF64, nil
	case "f32", "float32":
		return PrecisionF32, nil
	}
	return PrecisionF64, fmt.Errorf("solver: unknown precision %q (want f64 or f32)", s)
}

// ChainParams controls preconditioner-chain construction (Definition 6.3
// with the Section 6.3 truncation).
type ChainParams struct {
	Sparsify SparsifyParams
	// BottomSizeEdges truncates the chain once a level has at most this
	// many edges; §6.3 sets it near m^(1/3) to balance the dense bottom
	// solve against chain depth. ≤0 means use ⌈m^(1/3)⌉ + BottomFloor.
	BottomSizeEdges int
	// BottomFloor is the minimum truncation size (avoids silly chains on
	// small inputs). Default 64.
	BottomFloor int
	// MaxBottomVertices caps the dense factorization size (O(n³) work).
	MaxBottomVertices int
	// MaxLevels caps chain length.
	MaxLevels int
	// ShrinkRetry: if a level fails to shrink by at least this factor, the
	// sparsifier is retried once with doubled κ, then the chain truncates.
	ShrinkRetry float64
	// KappaGrowth multiplies the sparsifier's κ at each successive level,
	// mirroring §6.3's increasing κᵢ = (2c₄)^(i−1)·κ₁ schedule: the top
	// level gets the most faithful preconditioner (it bounds the outer
	// iteration count) while deeper levels trade fidelity for shrinkage.
	// Default 2.
	KappaGrowth float64
	// ChebSlack multiplies κ when setting the STATIC Chebyshev lower bound
	// EigHi/(κ·ChebSlack), absorbing the sampling constants in H ⪯ O(κ)·G.
	// Since calibration measures the interval, this bound only acts as the
	// safety envelope: the measured EigLo is never allowed below it.
	// Default 1.5.
	ChebSlack float64
	// MaxChebIts caps the per-level Chebyshev iteration count ⌈√κ⌉,
	// bounding the recursion fan-out. Default 24.
	MaxChebIts int
	// MinChebIts floors the calibrated per-level iteration count (replaces
	// the previously hardcoded 4). Default 4.
	MinChebIts int
	// CalibIters is the Lanczos iteration count per level used to measure
	// both ends of spec(H⁻¹A) at calibration time (replaces the fixed
	// 12-step λmax-only power iteration). Default 16.
	CalibIters int
	// EigSafety pads the measured spectral bounds — EigHi = λmax·EigSafety,
	// EigLo = λmin/√EigSafety — because Ritz values approach the spectrum
	// from inside; the upper end gets the full margin (beyond it a fixed-
	// degree Chebyshev polynomial diverges), the lower end only a square
	// root (a high floor merely under-damps the lowest modes). Replaces
	// the hardcoded 1.3 power-iteration margin. Default 1.2.
	EigSafety float64
	// ChebBudget multiplies the measured per-level shrink m_{i-1}/m_i to
	// form the work-balance cap on ChebIts (replaces the hardcoded 1.5,
	// which pushed nearly all convergence work into the outer PCG loop):
	// level i may spend at most ChebBudget·(m_{i-1}/m_i) inner iterations,
	// keeping one preconditioner application O(ChebBudget·m) work. The
	// default 3 trades ~1.5× per-application work for a 1.7–2.6× cut in
	// outer iterations on the benchmark testbed and near-flat iteration
	// growth with n (the measured ⌈√κ⌉ schedule binds before the budget on
	// well-sparsified levels). See calibrate.
	ChebBudget float64
	// BudgetLiftVertices lifts the ChebBudget work-balance cap on chains
	// whose TOP level has at least this many vertices, letting every level
	// run its full measured ⌈√κ⌉ Chebyshev schedule. At small sizes the
	// budget wins: the outer PCG loop is cheap, so weak inner solves trade
	// well. At large sizes each outer iteration sweeps the full top-level
	// working set from DRAM, so the balance inverts — spending the measured
	// iteration count inside the (smaller, cache-resident) deeper levels
	// cuts outer iterations where they are most expensive. 0 means the
	// default threshold (65536 vertices, ~256×256 grid); negative disables
	// the lift entirely (budget always applies).
	BudgetLiftVertices int
	// Precision opts sub-top chain levels into float32 value storage
	// (PrecisionF32), roughly halving the value traffic of the bandwidth-
	// bound Chebyshev sweeps. The choice is gated per level at calibration
	// time: the Lanczos estimator re-measures κ on the converted level and
	// reverts it to float64 if the measurement degrades beyond EigSafety,
	// so the schedule stays measured, not assumed. Default PrecisionF64.
	Precision Precision
	// ReorderLevels applies a deterministic Cuthill–McKee relabeling to
	// each sub-top level's Laplacian at build time, so the Chebyshev CSR
	// sweeps run on a bandwidth-reduced layout (permute-in/permute-out via
	// pooled workspace scratch; see BenchmarkApplyLayout for the measured
	// effect). Off by default.
	ReorderLevels bool
	Seed          int64
}

// DefaultChainParams returns the settings used by the public solver API.
func DefaultChainParams() ChainParams {
	return ChainParams{
		Sparsify:           DefaultSparsifyParams(),
		BottomFloor:        100,
		MaxBottomVertices:  1500,
		MaxLevels:          8,
		ShrinkRetry:        0.5,
		KappaGrowth:        2,
		ChebSlack:          1.5,
		MaxChebIts:         24,
		MinChebIts:         4,
		CalibIters:         16,
		EigSafety:          1.2,
		ChebBudget:         3,
		BudgetLiftVertices: 65536,
		Seed:               1,
	}
}

// Level is one link A_i → B_i → A_{i+1} of the chain.
type Level struct {
	G       *graph.Graph   // A_i as a graph (conductances)
	Lap     *matrix.Sparse // Laplacian of A_i
	Comp    []int          // connected components of A_i
	NumComp int
	// CompIdx is the component-sorted index over Comp, built once here and
	// reused by every per-iteration masked projection (the segmented-
	// reduction analogue of the elimination's cached reverse index).
	CompIdx *matrix.CompIndex
	Spars   *SparsifyResult // B_i = Spars.H
	Elim    *Elimination    // partial Cholesky B_i → A_{i+1}
	Kappa   float64         // condition target used for B_i
	ChebIts int             // inner Chebyshev iterations ⌈√(EigHi/EigLo)⌉ when recursing
	// EigHi/EigLo bound spec(H⁻¹A) at this level. Both ends are MEASURED at
	// construction time by the Lanczos estimator (spectral.go), padded by
	// EigSafety; EigLo is additionally floored by the static theory envelope
	// EigHi/(κ·ChebSlack), so the calibrated interval is never wider than
	// the pre-measurement schedule would have assumed.
	EigHi, EigLo float64
	// KappaMeasured is the measured condition number λmax/λmin of the
	// preconditioned operator (raw Ritz ratio, before safety padding);
	// 0 when calibration fell back to the static schedule.
	KappaMeasured float64
	// Calibrated reports whether the Lanczos measurement succeeded.
	Calibrated bool
	// ValF32 reports that the precision gate kept this level's values as
	// float32 (PrecisionF32 chains only; a degraded level stays false and
	// keeps float64 storage).
	ValF32 bool
	// KappaF64 is the float64 baseline κ measured by the precision gate
	// just before conversion (0 when the gate did not run or the baseline
	// measurement failed) — what KappaMeasured is compared against in the
	// f32 quality check.
	KappaF64 float64
	// Perm, when non-nil, is the level's Cuthill–McKee relabeling
	// (new → old): the Chebyshev sweep runs on LapP (= P·Lap·Pᵀ) with
	// CompIdxP, gathering in and scattering out at the applyH boundary.
	Perm     []int32
	LapP     *matrix.Sparse
	CompIdxP *matrix.CompIndex
}

// Chain is the full preconditioning chain (Definition 6.3).
//
// Concurrency contract: a Chain is READ-ONLY after Build returns. All
// level state — graphs, Laplacians, elimination logs, the calibrated
// Chebyshev schedule (calibration runs exclusively at build time) — is
// immutable thereafter, and every per-solve temporary lives in
// solve-call-local buffers, so any number of goroutines may call
// PrecondApply/PrecondApplyW (and the Solver's Solve methods above it)
// concurrently on one Chain. The only mutating fields are the atomic
// bottomSolves counter and the (atomic) work/depth recorder.
type Chain struct {
	Levels  []Level
	Bottom  *matrix.LaplacianFactor
	BottomG *graph.Graph
	Params  ChainParams
	Opt     Options // runtime execution policy threaded into every kernel

	bottomSolves atomic.Int64
	// precondApplies counts top-level preconditioner applications — one per
	// applyHTop/applyHTopBlock call regardless of batch width, so a k-column
	// block apply that shares every chain pass across lanes counts once
	// where k single applies would count k times.
	precondApplies atomic.Int64
	rec            *wd.Recorder
	// ws pools per-solve workspaces for the public PrecondApply entry
	// points (the Solver keeps its own pool for full solves). Like the
	// bottomSolves counter it is internally synchronized and exempt from
	// the read-only-after-build contract.
	ws wsPool
}

// BottomSolves returns the number of bottom-level direct solves performed
// so far — the quantity Π√κᵢ that Lemma 6.6's depth bound counts.
func (c *Chain) BottomSolves() int64 { return c.bottomSolves.Load() }

// PrecondApplies returns the number of top-level preconditioner applications
// performed so far. A batched apply counts ONE regardless of its width —
// the ratio of right-hand sides served to PrecondApplies is the chain-pass
// sharing the batch engine exists for.
func (c *Chain) PrecondApplies() int64 { return c.precondApplies.Load() }

// BuildChain constructs the preconditioner chain for the Laplacian graph g
// with the default execution policy. The recorder (optional) accumulates
// construction work/depth.
func BuildChain(g *graph.Graph, p ChainParams, rec *wd.Recorder) (*Chain, error) {
	return BuildChainOpts(g, p, Options{}, rec)
}

// BuildChainOpts is BuildChain with an explicit execution policy: every
// parallel kernel in construction (Laplacian CSR builds, parallel-edge
// merging, elimination sweeps, calibration) runs with opt.Workers.
func BuildChainOpts(g *graph.Graph, p ChainParams, opt Options, rec *wd.Recorder) (*Chain, error) {
	if p.BottomFloor <= 0 {
		p.BottomFloor = 64
	}
	if p.MaxBottomVertices <= 0 {
		p.MaxBottomVertices = 3000
	}
	if p.MaxLevels <= 0 {
		p.MaxLevels = 12
	}
	if p.ChebSlack <= 0 {
		p.ChebSlack = 1.5
	}
	if p.MaxChebIts <= 0 {
		p.MaxChebIts = 24
	}
	if p.MinChebIts <= 0 {
		p.MinChebIts = 4
	}
	if p.CalibIters <= 0 {
		p.CalibIters = 16
	}
	if p.EigSafety <= 1 {
		p.EigSafety = 1.2
	}
	if p.ChebBudget <= 0 {
		p.ChebBudget = 3
	}
	if p.BudgetLiftVertices == 0 {
		p.BudgetLiftVertices = 65536
	}
	bottomEdges := p.BottomSizeEdges
	if bottomEdges <= 0 {
		bottomEdges = int(math.Ceil(math.Cbrt(float64(g.M())))) + p.BottomFloor
	}
	if p.KappaGrowth < 1 {
		p.KappaGrowth = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Chain{Params: p, Opt: opt, rec: rec}
	w := opt.Workers
	cur := mergeParallelW(w, g)
	kappa := p.Sparsify.Kappa
	for len(c.Levels) < p.MaxLevels {
		if cur.M() <= bottomEdges || cur.N <= p.BottomFloor {
			break
		}
		sp := p.Sparsify
		sp.Workers = w
		sp.Kappa = kappa
		kappa *= p.KappaGrowth
		res := IncrementalSparsify(cur, sp, rng, rec)
		elim := GreedyEliminationW(w, res.H, rng, rec)
		// The shrink-retry decision uses the MEASURED edge shrink but the
		// nominal κ for the retry: a level's measured condition number needs
		// the completed chain below it (calibrate's Lanczos applies the full
		// recursive preconditioner), which does not exist yet mid-build.
		// Calibration then measures the retried level like any other, so a
		// coarser retry still ends up with a measured, not assumed, interval.
		if float64(elim.Reduced.M()) > p.ShrinkRetry*float64(cur.M()) {
			// Retry once with a coarser preconditioner.
			sp.Kappa *= 2
			res = IncrementalSparsify(cur, sp, rng, rec)
			elim = GreedyEliminationW(w, res.H, rng, rec)
			if float64(elim.Reduced.M()) > p.ShrinkRetry*float64(cur.M()) {
				break // cannot shrink further; truncate here
			}
		}
		comp, k := cur.ConnectedComponents()
		its := int(math.Ceil(math.Sqrt(sp.Kappa * p.ChebSlack)))
		if its > p.MaxChebIts {
			its = p.MaxChebIts
		}
		lvl := Level{
			G: cur, Lap: matrix.LaplacianOfW(w, cur), Comp: comp, NumComp: k,
			CompIdx: matrix.NewCompIndexW(w, comp, k),
			Spars:   res, Elim: elim, Kappa: sp.Kappa,
			ChebIts: its, EigHi: 1, EigLo: 1 / (sp.Kappa * p.ChebSlack),
		}
		c.Levels = append(c.Levels, lvl)
		cur = elim.Reduced
	}
	if cur.N > p.MaxBottomVertices {
		return nil, fmt.Errorf("solver: chain truncation left %d vertices (> %d) for the dense bottom solve; increase MaxLevels or adjust sparsifier", cur.N, p.MaxBottomVertices)
	}
	comp, k := cur.ConnectedComponents()
	bf, err := matrix.NewLaplacianFactorW(w, matrix.LaplacianOfW(w, cur), comp, k)
	if err != nil {
		return nil, fmt.Errorf("solver: bottom factorization: %w", err)
	}
	c.Bottom = bf
	c.BottomG = cur
	// Dense factorization: n³ work, n depth (Fact 6.4).
	nb := int64(cur.N)
	rec.Add(nb*nb*nb, nb)
	// Cache-aware layout before calibration: the Lanczos measurement then
	// runs against the exact apply path production solves will use.
	if p.ReorderLevels {
		for i := 1; i < len(c.Levels); i++ {
			c.Levels[i].applyReorder(w, matrix.CMOrder(c.Levels[i].Lap))
		}
	}
	c.calibrate(rng)
	return c, nil
}

// applyReorder installs the relabeling perm on the level: the permuted
// Laplacian and component index the Chebyshev sweep runs on. The top level
// is never reordered (its sweep never runs: applyHTop enters the chain
// through the elimination, and the outer PCG works on the caller's
// natural-order vectors).
func (lvl *Level) applyReorder(workers int, perm []int32) {
	lvl.Perm = perm
	lvl.LapP = matrix.PermuteSparse(workers, lvl.Lap, perm)
	compP := make([]int, len(perm))
	for j, v := range perm {
		compP[j] = lvl.Comp[v]
	}
	lvl.CompIdxP = matrix.NewCompIndexW(workers, compP, lvl.NumComp)
}

// calibrate finalizes the chain's runtime schedule bottom-up, measuring
// instead of assuming:
//
//  1. Work balance. The theory affords ⌈√κᵢ⌉ recursive calls per level
//     because its levels shrink by κ^Ω(1) ≫ √κ; at practical sizes the
//     measured shrink is a small constant, so a √κ budget makes total work
//     grow geometrically with depth. Each level's Chebyshev budget is
//     capped at ChebBudget × the measured shrink m_{i-1}/m_i (and by √κ
//     and MaxChebIts), which keeps one top-level preconditioner
//     application at O(m) work — the near-linear-work discipline of
//     Theorem 1.1 — and lets the adaptive outer iteration absorb the
//     weaker inner solves.
//  2. Spectral bounds. Measure BOTH ends of each level's preconditioned
//     spectrum spec(H⁻¹A) with the Lanczos estimator (spectral.go) and set
//     the Chebyshev interval to the safety-padded measurement, floored by
//     the static theory envelope EigHi/(κ·ChebSlack). The per-level
//     iteration count becomes ⌈√(EigHi/EigLo)⌉ — the measured condition
//     number, not the nominal κ·slack product, so levels whose sparsifier
//     beat its target run proportionally fewer (and better-centered)
//     Chebyshev iterations. Without the measured upper bound a single
//     under-sampled edge can push spec(H⁻¹A) above the assumed interval,
//     where a fixed-degree Chebyshev polynomial blows up exponentially.
//
// The loop runs bottom-up and finalizes each level's ChebIts BEFORE
// measuring the level above, so every measurement sees the actual adapted
// preconditioner it will run against. The rng is consumed in a fixed
// sequential order and every kernel uses par's fixed reduction trees, so
// the calibrated schedule is bitwise identical for every worker count.
func (c *Chain) calibrate(rng *rand.Rand) {
	if len(c.Levels) == 0 {
		return
	}
	w := c.Opt.Workers
	p := &c.Params
	ws := newWorkspace(c, 1)
	// Size-adaptive schedule policy: past the lift threshold the work-balance
	// budget stops binding and every level runs its measured ⌈√κ⌉ count (see
	// ChainParams.BudgetLiftVertices for the rationale).
	lift := p.BudgetLiftVertices > 0 && c.Levels[0].G.N >= p.BudgetLiftVertices
	// Work-balance budget per level from the measured shrink. lvl.ChebIts
	// still holds the static ⌈√(κ·slack)⌉ cap from the build loop.
	budget := make([]int, len(c.Levels))
	for i := range c.Levels {
		lvl := &c.Levels[i]
		prevM := lvl.G.M() // top level: budget vs itself (outer is adaptive)
		if i > 0 {
			prevM = c.Levels[i-1].G.M()
		}
		shrink := float64(prevM) / float64(lvl.G.M()+1)
		its := int(math.Ceil(p.ChebBudget * shrink))
		if its < p.MinChebIts {
			its = p.MinChebIts
		}
		if its > lvl.ChebIts {
			its = lvl.ChebIts
		}
		budget[i] = its
	}
	for i := len(c.Levels) - 1; i >= 0; i-- {
		lvl := &c.Levels[i]
		lo, hi, ok := c.lanczosBounds(w, i, p.CalibIters, rng, ws)
		if p.Precision == PrecisionF32 && i > 0 {
			// Precision gate, measured not assumed: convert this level's
			// values to float32 (deeper levels are already final), re-run
			// the Lanczos measurement through the REAL converted operator,
			// and keep the conversion only if the measured κ stays within
			// EigSafety of the float64 baseline. The schedule below then
			// uses whichever measurement matches the kept storage. Level 0
			// is exempt: its Laplacian is the (unsparsified) top operator
			// and its Chebyshev sweep never runs.
			lvl.KappaF64 = 0
			if ok {
				lvl.KappaF64 = hi / lo
			}
			saved := lvl.Lap.ConvertValues32()
			var savedP []float64
			if lvl.LapP != nil {
				savedP = lvl.LapP.ConvertValues32()
			}
			lo32, hi32, ok32 := c.lanczosBounds(w, i, p.CalibIters, rng, ws)
			keep := ok32 && (!ok || hi32/lo32 <= (hi/lo)*p.EigSafety)
			if keep {
				lvl.ValF32 = true
				lo, hi, ok = lo32, hi32, true
			} else {
				lvl.Lap.RestoreValues64(saved)
				if lvl.LapP != nil {
					lvl.LapP.RestoreValues64(savedP)
				}
			}
		}
		lvl.Calibrated = ok
		if !ok {
			// Unusable measurement: fall back to the static schedule (the
			// envelope the pre-measurement chain would have assumed).
			lvl.EigHi = p.EigSafety
			lvl.EigLo = lvl.EigHi / (lvl.Kappa * p.ChebSlack)
			lvl.KappaMeasured = 0
			if !lift {
				lvl.ChebIts = budget[i]
			}
			continue
		}
		lvl.KappaMeasured = hi / lo
		lvl.EigHi = hi * p.EigSafety
		staticLo := lvl.EigHi / (lvl.Kappa * p.ChebSlack)
		// Asymmetric padding: EigHi gets the full safety margin (outside
		// the interval a fixed-degree Chebyshev polynomial diverges), EigLo
		// only √EigSafety (a slightly-high floor merely under-damps the
		// lowest modes, which the adaptive outer iteration absorbs).
		measLo := lo / math.Sqrt(p.EigSafety)
		if measLo < staticLo {
			measLo = staticLo // safety envelope: never schedule worse than κ·slack
		}
		if measLo > lvl.EigHi/2 {
			measLo = lvl.EigHi / 2 // keep a non-degenerate interval
		}
		lvl.EigLo = measLo
		its := int(math.Ceil(math.Sqrt(lvl.EigHi / lvl.EigLo)))
		if its > budget[i] && i > 0 && !lift {
			its = budget[i]
		}
		if its > p.MaxChebIts {
			its = p.MaxChebIts
		}
		if its < p.MinChebIts {
			its = p.MinChebIts
		}
		lvl.ChebIts = its
	}
	// Seed the chain's workspace pool with the calibration workspace (its
	// footprint charged, so the build-time MemoryBytes snapshot the serving
	// cache budgets against already includes the retained scratch) — the
	// first PrecondApply reuses it.
	c.ws.seed(ws)
}

// mergeParallelW merges parallel edges (summing conductances) and drops
// self-loops and zero-weight edges, via a parallel sort + segmented sum.
// The sort's fixed-grain schedule keeps the summation order — and thus the
// merged weights — identical for every worker count.
func mergeParallelW(workers int, g *graph.Graph) *graph.Graph {
	live := par.FilterIndexW(workers, len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U != e.V && e.W != 0
	})
	norm := make([]graph.Edge, len(live))
	par.ForW(workers, len(live), func(i int) {
		e := g.Edges[live[i]]
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm[i] = e
	})
	par.SortW(workers, norm, func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	m := len(norm)
	heads := par.FilterIndexW(workers, m, func(i int) bool {
		return i == 0 || norm[i].U != norm[i-1].U || norm[i].V != norm[i-1].V
	})
	edges := make([]graph.Edge, len(heads))
	par.ForW(workers, len(heads), func(j int) {
		lo := heads[j]
		hi := m
		if j+1 < len(heads) {
			hi = heads[j+1]
		}
		e := norm[lo]
		for i := lo + 1; i < hi; i++ {
			e.W += norm[i].W
		}
		edges[j] = e
	})
	return graph.FromEdgesW(workers, g.N, edges)
}

// mergeParallel is mergeParallelW with the default worker count.
func mergeParallel(g *graph.Graph) *graph.Graph { return mergeParallelW(0, g) }

// Depth returns the number of levels above the bottom solve.
func (c *Chain) Depth() int { return len(c.Levels) }

// MemoryBytes estimates the chain's retained footprint: per level the graph,
// its Laplacian, the sparsifier output and the elimination log; at the bottom
// the dense factorization. Each elimination's Reduced graph is the next
// level's G (the same object), so it is counted exactly once.
func (c *Chain) MemoryBytes() int64 {
	var b int64
	for i := range c.Levels {
		lvl := &c.Levels[i]
		b += lvl.G.MemoryBytes() + lvl.Lap.MemoryBytes()
		b += int64(len(lvl.Comp)) * 8
		if lvl.CompIdx != nil {
			b += lvl.CompIdx.MemoryBytes()
		}
		if lvl.LapP != nil {
			b += lvl.LapP.MemoryBytes() + int64(len(lvl.Perm))*4
		}
		if lvl.CompIdxP != nil {
			b += lvl.CompIdxP.MemoryBytes()
		}
		if lvl.Spars != nil {
			b += lvl.Spars.H.MemoryBytes() + int64(len(lvl.Spars.Subgraph))*8
		}
		b += lvl.Elim.MemoryBytes()
	}
	if c.BottomG != nil {
		b += c.BottomG.MemoryBytes()
	}
	if c.Bottom != nil {
		b += c.Bottom.MemoryBytes()
	}
	// Workspace pool: the high-water estimate of per-solve scratch retained
	// between GCs by the chain's own PrecondApply pool.
	b += c.ws.PeakBytes()
	return b
}

// LevelSchedule is one level's calibrated runtime schedule — the quantities
// a serving layer exposes so κ-schedule behavior is observable in
// production. KappaTarget is the nominal κ fed to the sparsifier;
// KappaMeasured the measured condition number of the preconditioned
// operator (0 when calibration fell back to the static envelope).
type LevelSchedule struct {
	Level         int     `json:"level"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	KappaTarget   float64 `json:"kappa_target"`
	KappaMeasured float64 `json:"kappa_measured"`
	EigLo         float64 `json:"eig_lo"`
	EigHi         float64 `json:"eig_hi"`
	ChebIts       int     `json:"cheb_its"`
	Calibrated    bool    `json:"calibrated"`
	// Precision is this level's value storage ("f32" only where the
	// precision gate kept the conversion); KappaF64 the gate's float64
	// baseline κ (0 when the gate did not run). Reordered reports the
	// Cuthill–McKee layout.
	Precision string  `json:"precision"`
	KappaF64  float64 `json:"kappa_f64,omitempty"`
	Reordered bool    `json:"reordered,omitempty"`
}

// Schedule returns the calibrated per-level schedule (top level first).
func (c *Chain) Schedule() []LevelSchedule {
	out := make([]LevelSchedule, len(c.Levels))
	for i := range c.Levels {
		lvl := &c.Levels[i]
		prec := PrecisionF64
		if lvl.ValF32 {
			prec = PrecisionF32
		}
		out[i] = LevelSchedule{
			Level: i, N: lvl.G.N, M: lvl.G.M(),
			KappaTarget: lvl.Kappa, KappaMeasured: lvl.KappaMeasured,
			EigLo: lvl.EigLo, EigHi: lvl.EigHi,
			ChebIts: lvl.ChebIts, Calibrated: lvl.Calibrated,
			Precision: prec.String(), KappaF64: lvl.KappaF64,
			Reordered: lvl.Perm != nil,
		}
	}
	return out
}

// F32Levels reports how many levels the precision gate kept in float32
// value storage (always 0 on a ChainParams.Precision == PrecisionF64 chain).
func (c *Chain) F32Levels() int {
	n := 0
	for i := range c.Levels {
		if c.Levels[i].ValF32 {
			n++
		}
	}
	return n
}

// ReorderedLevels reports how many levels carry a Cuthill–McKee layout.
func (c *Chain) ReorderedLevels() int {
	n := 0
	for i := range c.Levels {
		if c.Levels[i].Perm != nil {
			n++
		}
	}
	return n
}

// EdgeCounts returns the edge count of every level plus the bottom graph,
// the m_i sequence of Lemma 6.6.
func (c *Chain) EdgeCounts() []int {
	var out []int
	for _, l := range c.Levels {
		out = append(out, l.G.M())
	}
	out = append(out, c.BottomG.M())
	return out
}

// solveLevel approximately solves A_i x = b by preconditioned Chebyshev
// iteration with the next level as preconditioner; the bottom level solves
// exactly (Lemma 6.7 / 6.8 recursion). The result lives in ws (the level's
// Chebyshev x, or the bottom solution buffer) and stays valid until the
// level's scratch is next used.
func (c *Chain) solveLevel(workers, i int, b []float64, ws *workspace) []float64 {
	if i >= len(c.Levels) {
		c.bottomSolves.Add(1)
		nb := int64(c.BottomG.N)
		c.rec.Add(nb*nb, 1)
		t0 := time.Now()
		c.Bottom.SolveIntoW(workers, b, ws.bot.x.Vec(), ws.bot.g.Vec())
		ws.trace.BottomNS += time.Since(t0).Nanoseconds()
		return ws.bot.x.Vec()
	}
	return c.chebLevel(workers, i, b, ws)
}

// chebLevel runs level i's fixed-degree preconditioned Chebyshev iteration
// (the recurrence of iterative.go's chebyshev, specialized to the chain) on
// workspace-resident vectors: spec(M⁻¹A) ⊆ [EigLo, EigHi], exactly ChebIts
// iterations, preconditioned by applyH(i). Keeping the recursion closure-
// free and the scratch level-resident is what makes a steady-state
// preconditioner application allocation-free.
func (c *Chain) chebLevel(workers, i int, b []float64, ws *workspace) []float64 {
	lvl := &c.Levels[i]
	if lvl.Perm != nil {
		return c.chebLevelPerm(workers, i, b, ws)
	}
	a := lvl.Lap
	ci := lvl.CompIdx
	l := &ws.lvl[i]
	x, r, p, ap := l.chebX.Vec(), l.chebR.Vec(), l.chebP.Vec(), l.chebAp.Vec()
	n := a.N
	// Stage timing: the sweep's own kernel time, EXCLUSIVE of the recursive
	// preconditioner applications (those attribute to deeper levels' trace
	// slots), so the per-level stage series partition the apply time.
	t0 := time.Now()
	var innerNS int64
	for j := 0; j < n; j++ {
		x[j] = 0
	}
	copy(r, b)
	matrix.ProjectOutConstantMaskedIdxW(workers, r, ci)
	co := newChebCoeffs(lvl.EigLo, lvl.EigHi)
	for k := 0; k < lvl.ChebIts; k++ {
		ta := time.Now()
		z := c.applyH(workers, i, r, ws)
		innerNS += time.Since(ta).Nanoseconds()
		matrix.ProjectOutConstantMaskedIdxW(workers, z, ci)
		alpha, beta, first := co.step(k)
		if first {
			copy(p, z)
		} else {
			matrix.AxpyIntoW(workers, p, beta, p, z)
		}
		matrix.AxpyIntoW(workers, x, alpha, p, x)
		a.MulVecW(workers, p, ap)
		matrix.AxpyIntoW(workers, r, -alpha, ap, r)
		c.rec.Add(int64(a.NNZ()+6*n), 2)
	}
	matrix.ProjectOutConstantMaskedIdxW(workers, x, ci)
	ws.trace.ChebNS[obs.LevelIndex(i)] += time.Since(t0).Nanoseconds() - innerNS
	return x
}

// chebLevelPerm is chebLevel on the level's Cuthill–McKee relabeling: the
// sweep state (x, r, p, ap) lives in permuted space so the CSR traversal
// streams LapP with bandwidth-reduced column locality, and only the
// boundary to applyH (whose elimination log speaks the natural order) pays
// a scatter on the way in and a gather on the way out, both into pooled
// level scratch. Gather/scatter are pure data movement, so the permuted
// sweep keeps the same worker-equivalence and block-vs-single walls as the
// natural one.
func (c *Chain) chebLevelPerm(workers, i int, b []float64, ws *workspace) []float64 {
	lvl := &c.Levels[i]
	a := lvl.LapP
	ci := lvl.CompIdxP
	perm := lvl.Perm
	l := &ws.lvl[i]
	x, r, p, ap := l.chebX.Vec(), l.chebR.Vec(), l.chebP.Vec(), l.chebAp.Vec()
	nat, zp := l.permNat.Vec(), l.permZ.Vec()
	n := a.N
	t0 := time.Now()
	var innerNS int64
	for j := 0; j < n; j++ {
		x[j] = 0
	}
	matrix.GatherW(workers, r, b, perm)
	matrix.ProjectOutConstantMaskedIdxW(workers, r, ci)
	co := newChebCoeffs(lvl.EigLo, lvl.EigHi)
	for k := 0; k < lvl.ChebIts; k++ {
		matrix.ScatterW(workers, nat, r, perm)
		ta := time.Now()
		z := c.applyH(workers, i, nat, ws)
		innerNS += time.Since(ta).Nanoseconds()
		matrix.GatherW(workers, zp, z, perm)
		matrix.ProjectOutConstantMaskedIdxW(workers, zp, ci)
		alpha, beta, first := co.step(k)
		if first {
			copy(p, zp)
		} else {
			matrix.AxpyIntoW(workers, p, beta, p, zp)
		}
		matrix.AxpyIntoW(workers, x, alpha, p, x)
		a.MulVecW(workers, p, ap)
		matrix.AxpyIntoW(workers, r, -alpha, ap, r)
		c.rec.Add(int64(a.NNZ()+8*n), 2)
	}
	matrix.ProjectOutConstantMaskedIdxW(workers, x, ci)
	// Return in natural order: the caller's back-substitution reads the
	// elimination's vertex numbering. nat is dead after the last scatter
	// above, so it doubles as the result buffer (valid until this level's
	// scratch is next used, same contract as the natural path).
	matrix.ScatterW(workers, nat, x, perm)
	ws.trace.ChebNS[obs.LevelIndex(i)] += time.Since(t0).Nanoseconds() - innerNS
	return nat
}

// applyH solves the preconditioner system H_i z = r by partial-Cholesky
// elimination into A_{i+1}, a recursive solve there, and back-substitution,
// entirely in level-resident workspace buffers. The κ scaling of the
// subgraph inside H is part of H's definition, so no extra scaling appears
// here. The returned z is ws's level-i back-substitution buffer.
func (c *Chain) applyH(workers, i int, r []float64, ws *workspace) []float64 {
	lvl := &c.Levels[i]
	l := &ws.lvl[i]
	li := obs.LevelIndex(i)
	t0 := time.Now()
	lvl.Elim.ForwardRHSIntoW(workers, r, l.fwdWork.Vec(), l.fwdCarry.Vec(), l.fwdRed.Vec())
	ws.trace.FwdNS[li] += time.Since(t0).Nanoseconds()
	xr := c.solveLevel(workers, i+1, l.fwdRed.Vec(), ws)
	t1 := time.Now()
	lvl.Elim.BackSolveIntoW(workers, xr, l.fwdCarry.Vec(), l.backX.Vec())
	z := l.backX.Vec()
	matrix.ProjectOutConstantMaskedIdxW(workers, z, lvl.CompIdx)
	ws.trace.BackNS[li] += time.Since(t1).Nanoseconds()
	c.rec.Add(int64(len(lvl.Elim.Ops))+int64(len(r)), int64(lvl.Elim.Rounds)+1)
	return z
}

// applyHTop applies the whole-chain preconditioner into ws and returns the
// workspace-resident result (valid until ws is reused).
func (c *Chain) applyHTop(workers int, r []float64, ws *workspace) []float64 {
	c.precondApplies.Add(1)
	t0 := time.Now()
	var z []float64
	if len(c.Levels) == 0 {
		c.Bottom.SolveIntoW(workers, r, ws.bot.x.Vec(), ws.bot.g.Vec())
		z = ws.bot.x.Vec()
		ws.trace.BottomNS += time.Since(t0).Nanoseconds()
	} else {
		z = c.applyH(workers, 0, r, ws)
	}
	ws.trace.PrecondNS += time.Since(t0).Nanoseconds()
	return z
}

// PrecondApply exposes one application of the top-level preconditioner
// (H_1⁻¹ through the whole chain), used by the PCG driver and experiments.
// Safe for concurrent use (see the Chain concurrency contract).
func (c *Chain) PrecondApply(r []float64) []float64 {
	return c.PrecondApplyW(c.Opt.Workers, r)
}

// PrecondApplyW is PrecondApply with a per-call worker count, letting a
// serving layer split a global worker budget across concurrent solves
// without rebuilding the chain. Results are bitwise identical for every
// workers value. The returned vector is freshly allocated (caller-owned);
// repeated callers who want the allocation-free path should use
// PrecondApplyIntoW.
func (c *Chain) PrecondApplyW(workers int, r []float64) []float64 {
	out := make([]float64, len(r))
	c.PrecondApplyIntoW(workers, r, out)
	return out
}

// PrecondApplyIntoW applies the top-level preconditioner into dst (length
// n, fully overwritten; dst must not alias r). Scratch comes from the
// chain's workspace pool, so steady-state applications perform zero heap
// allocations at Workers:1 (locked by the solver package's allocation
// test). Safe for concurrent use.
func (c *Chain) PrecondApplyIntoW(workers int, r, dst []float64) {
	ws := c.ws.get(c, 1)
	copy(dst, c.applyHTop(workers, r, ws))
	c.ws.put(ws)
}
