package solver

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/par"
	"parlap/internal/wd"
)

// ChainParams controls preconditioner-chain construction (Definition 6.3
// with the Section 6.3 truncation).
type ChainParams struct {
	Sparsify SparsifyParams
	// BottomSizeEdges truncates the chain once a level has at most this
	// many edges; §6.3 sets it near m^(1/3) to balance the dense bottom
	// solve against chain depth. ≤0 means use ⌈m^(1/3)⌉ + BottomFloor.
	BottomSizeEdges int
	// BottomFloor is the minimum truncation size (avoids silly chains on
	// small inputs). Default 64.
	BottomFloor int
	// MaxBottomVertices caps the dense factorization size (O(n³) work).
	MaxBottomVertices int
	// MaxLevels caps chain length.
	MaxLevels int
	// ShrinkRetry: if a level fails to shrink by at least this factor, the
	// sparsifier is retried once with doubled κ, then the chain truncates.
	ShrinkRetry float64
	// KappaGrowth multiplies the sparsifier's κ at each successive level,
	// mirroring §6.3's increasing κᵢ = (2c₄)^(i−1)·κ₁ schedule: the top
	// level gets the most faithful preconditioner (it bounds the outer
	// iteration count) while deeper levels trade fidelity for shrinkage.
	// Default 2.
	KappaGrowth float64
	// ChebSlack multiplies κ when setting Chebyshev's spectral lower bound,
	// absorbing the sampling constants in H ⪯ O(κ)·G. Default 1.5.
	ChebSlack float64
	// MaxChebIts caps the per-level Chebyshev iteration count ⌈√κ⌉,
	// bounding the recursion fan-out. Default 24.
	MaxChebIts int
	Seed       int64
}

// DefaultChainParams returns the settings used by the public solver API.
func DefaultChainParams() ChainParams {
	return ChainParams{
		Sparsify:          DefaultSparsifyParams(),
		BottomFloor:       100,
		MaxBottomVertices: 1500,
		MaxLevels:         8,
		ShrinkRetry:       0.5,
		KappaGrowth:       2,
		ChebSlack:         1.5,
		MaxChebIts:        24,
		Seed:              1,
	}
}

// Level is one link A_i → B_i → A_{i+1} of the chain.
type Level struct {
	G       *graph.Graph   // A_i as a graph (conductances)
	Lap     *matrix.Sparse // Laplacian of A_i
	Comp    []int          // connected components of A_i
	NumComp int
	// CompIdx is the component-sorted index over Comp, built once here and
	// reused by every per-iteration masked projection (the segmented-
	// reduction analogue of the elimination's cached reverse index).
	CompIdx *matrix.CompIndex
	Spars   *SparsifyResult // B_i = Spars.H
	Elim    *Elimination    // partial Cholesky B_i → A_{i+1}
	Kappa   float64         // condition target used for B_i
	ChebIts int             // inner Chebyshev iterations ≈ ⌈√κ⌉ when recursing
	// EigHi/EigLo bound spec(H⁻¹A) at this level. EigHi is calibrated by
	// power iteration at construction time (the sampling constants hidden
	// in "H ⪯ O(κ)G" make a fixed a-priori bound unsafe); EigLo is
	// EigHi/(κ·ChebSlack).
	EigHi, EigLo float64
}

// Chain is the full preconditioning chain (Definition 6.3).
//
// Concurrency contract: a Chain is READ-ONLY after Build returns. All
// level state — graphs, Laplacians, elimination logs, the calibrated
// Chebyshev schedule (calibration runs exclusively at build time) — is
// immutable thereafter, and every per-solve temporary lives in
// solve-call-local buffers, so any number of goroutines may call
// PrecondApply/PrecondApplyW (and the Solver's Solve methods above it)
// concurrently on one Chain. The only mutating fields are the atomic
// bottomSolves counter and the (atomic) work/depth recorder.
type Chain struct {
	Levels  []Level
	Bottom  *matrix.LaplacianFactor
	BottomG *graph.Graph
	Params  ChainParams
	Opt     Options // runtime execution policy threaded into every kernel

	bottomSolves atomic.Int64
	rec          *wd.Recorder
}

// BottomSolves returns the number of bottom-level direct solves performed
// so far — the quantity Π√κᵢ that Lemma 6.6's depth bound counts.
func (c *Chain) BottomSolves() int64 { return c.bottomSolves.Load() }

// BuildChain constructs the preconditioner chain for the Laplacian graph g
// with the default execution policy. The recorder (optional) accumulates
// construction work/depth.
func BuildChain(g *graph.Graph, p ChainParams, rec *wd.Recorder) (*Chain, error) {
	return BuildChainOpts(g, p, Options{}, rec)
}

// BuildChainOpts is BuildChain with an explicit execution policy: every
// parallel kernel in construction (Laplacian CSR builds, parallel-edge
// merging, elimination sweeps, calibration) runs with opt.Workers.
func BuildChainOpts(g *graph.Graph, p ChainParams, opt Options, rec *wd.Recorder) (*Chain, error) {
	if p.BottomFloor <= 0 {
		p.BottomFloor = 64
	}
	if p.MaxBottomVertices <= 0 {
		p.MaxBottomVertices = 3000
	}
	if p.MaxLevels <= 0 {
		p.MaxLevels = 12
	}
	if p.ChebSlack <= 0 {
		p.ChebSlack = 1.5
	}
	if p.MaxChebIts <= 0 {
		p.MaxChebIts = 24
	}
	bottomEdges := p.BottomSizeEdges
	if bottomEdges <= 0 {
		bottomEdges = int(math.Ceil(math.Cbrt(float64(g.M())))) + p.BottomFloor
	}
	if p.KappaGrowth < 1 {
		p.KappaGrowth = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	c := &Chain{Params: p, Opt: opt, rec: rec}
	w := opt.Workers
	cur := mergeParallelW(w, g)
	kappa := p.Sparsify.Kappa
	for len(c.Levels) < p.MaxLevels {
		if cur.M() <= bottomEdges || cur.N <= p.BottomFloor {
			break
		}
		sp := p.Sparsify
		sp.Workers = w
		sp.Kappa = kappa
		kappa *= p.KappaGrowth
		res := IncrementalSparsify(cur, sp, rng, rec)
		elim := GreedyEliminationW(w, res.H, rng, rec)
		if float64(elim.Reduced.M()) > p.ShrinkRetry*float64(cur.M()) {
			// Retry once with a coarser preconditioner.
			sp.Kappa *= 2
			res = IncrementalSparsify(cur, sp, rng, rec)
			elim = GreedyEliminationW(w, res.H, rng, rec)
			if float64(elim.Reduced.M()) > p.ShrinkRetry*float64(cur.M()) {
				break // cannot shrink further; truncate here
			}
		}
		comp, k := cur.ConnectedComponents()
		its := int(math.Ceil(math.Sqrt(sp.Kappa * p.ChebSlack)))
		if its > p.MaxChebIts {
			its = p.MaxChebIts
		}
		lvl := Level{
			G: cur, Lap: matrix.LaplacianOfW(w, cur), Comp: comp, NumComp: k,
			CompIdx: matrix.NewCompIndexW(w, comp, k),
			Spars:   res, Elim: elim, Kappa: sp.Kappa,
			ChebIts: its, EigHi: 1, EigLo: 1 / (sp.Kappa * p.ChebSlack),
		}
		c.Levels = append(c.Levels, lvl)
		cur = elim.Reduced
	}
	if cur.N > p.MaxBottomVertices {
		return nil, fmt.Errorf("solver: chain truncation left %d vertices (> %d) for the dense bottom solve; increase MaxLevels or adjust sparsifier", cur.N, p.MaxBottomVertices)
	}
	comp, k := cur.ConnectedComponents()
	bf, err := matrix.NewLaplacianFactorW(w, matrix.LaplacianOfW(w, cur), comp, k)
	if err != nil {
		return nil, fmt.Errorf("solver: bottom factorization: %w", err)
	}
	c.Bottom = bf
	c.BottomG = cur
	// Dense factorization: n³ work, n depth (Fact 6.4).
	nb := int64(cur.N)
	rec.Add(nb*nb*nb, nb)
	c.calibrate(rng)
	return c, nil
}

// calibrate finalizes the chain's runtime schedule bottom-up:
//
//  1. Work balance. The theory affords ⌈√κᵢ⌉ recursive calls per level
//     because its levels shrink by κ^Ω(1) ≫ √κ; at practical sizes the
//     measured shrink is a small constant, so a √κ budget makes total work
//     grow geometrically with depth. We instead set each level's Chebyshev
//     budget to ~80% of the measured shrink m_{i-1}/m_i (capped by √κ and
//     MaxChebIts), which keeps one top-level preconditioner application at
//     O(m) work — the near-linear-work discipline of Theorem 1.1 — and
//     lets the adaptive outer iteration absorb the weaker inner solves.
//  2. Spectral bounds. Estimate λmax of each level's preconditioned
//     operator H⁻¹A by power iteration and derive the Chebyshev interval
//     [EigHi/(κ·slack), EigHi]. Without calibration a single under-sampled
//     edge can push spec(H⁻¹A) above the assumed bound, where a fixed-
//     degree Chebyshev polynomial blows up exponentially.
func (c *Chain) calibrate(rng *rand.Rand) {
	w := c.Opt.Workers
	for i := range c.Levels {
		lvl := &c.Levels[i]
		var prevM int
		if i == 0 {
			prevM = lvl.G.M() // top level: budget vs itself (outer is adaptive)
		} else {
			prevM = c.Levels[i-1].G.M()
		}
		shrink := float64(prevM) / float64(lvl.G.M()+1)
		its := int(math.Ceil(1.5 * shrink))
		if its < 4 {
			its = 4
		}
		if its < lvl.ChebIts {
			lvl.ChebIts = its
		}
	}
	for i := len(c.Levels) - 1; i >= 0; i-- {
		lvl := &c.Levels[i]
		n := lvl.G.N
		x := make([]float64, n)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		matrix.ProjectOutConstantMaskedIdxW(w, x, lvl.CompIdx)
		lam := 1.0
		ax := make([]float64, n)
		for it := 0; it < 12; it++ {
			lvl.Lap.MulVecW(w, x, ax)
			y := c.applyH(w, i, ax)
			matrix.ProjectOutConstantMaskedIdxW(w, y, lvl.CompIdx)
			ny := matrix.Norm2W(w, y)
			if ny == 0 {
				break
			}
			lam = ny / matrix.Norm2W(w, x)
			matrix.ScaleIntoW(w, y, 1/ny, y)
			x = y
		}
		lvl.EigHi = lam * 1.3 // safety margin over the power-iteration estimate
		lvl.EigLo = lvl.EigHi / (lvl.Kappa * c.Params.ChebSlack)
	}
}

// mergeParallelW merges parallel edges (summing conductances) and drops
// self-loops and zero-weight edges, via a parallel sort + segmented sum.
// The sort's fixed-grain schedule keeps the summation order — and thus the
// merged weights — identical for every worker count.
func mergeParallelW(workers int, g *graph.Graph) *graph.Graph {
	live := par.FilterIndexW(workers, len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U != e.V && e.W != 0
	})
	norm := make([]graph.Edge, len(live))
	par.ForW(workers, len(live), func(i int) {
		e := g.Edges[live[i]]
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm[i] = e
	})
	par.SortW(workers, norm, func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	m := len(norm)
	heads := par.FilterIndexW(workers, m, func(i int) bool {
		return i == 0 || norm[i].U != norm[i-1].U || norm[i].V != norm[i-1].V
	})
	edges := make([]graph.Edge, len(heads))
	par.ForW(workers, len(heads), func(j int) {
		lo := heads[j]
		hi := m
		if j+1 < len(heads) {
			hi = heads[j+1]
		}
		e := norm[lo]
		for i := lo + 1; i < hi; i++ {
			e.W += norm[i].W
		}
		edges[j] = e
	})
	return graph.FromEdgesW(workers, g.N, edges)
}

// mergeParallel is mergeParallelW with the default worker count.
func mergeParallel(g *graph.Graph) *graph.Graph { return mergeParallelW(0, g) }

// Depth returns the number of levels above the bottom solve.
func (c *Chain) Depth() int { return len(c.Levels) }

// MemoryBytes estimates the chain's retained footprint: per level the graph,
// its Laplacian, the sparsifier output and the elimination log; at the bottom
// the dense factorization. Each elimination's Reduced graph is the next
// level's G (the same object), so it is counted exactly once.
func (c *Chain) MemoryBytes() int64 {
	var b int64
	for i := range c.Levels {
		lvl := &c.Levels[i]
		b += lvl.G.MemoryBytes() + lvl.Lap.MemoryBytes()
		b += int64(len(lvl.Comp)) * 8
		if lvl.CompIdx != nil {
			b += lvl.CompIdx.MemoryBytes()
		}
		if lvl.Spars != nil {
			b += lvl.Spars.H.MemoryBytes() + int64(len(lvl.Spars.Subgraph))*8
		}
		b += lvl.Elim.MemoryBytes()
	}
	if c.BottomG != nil {
		b += c.BottomG.MemoryBytes()
	}
	if c.Bottom != nil {
		b += c.Bottom.MemoryBytes()
	}
	return b
}

// EdgeCounts returns the edge count of every level plus the bottom graph,
// the m_i sequence of Lemma 6.6.
func (c *Chain) EdgeCounts() []int {
	var out []int
	for _, l := range c.Levels {
		out = append(out, l.G.M())
	}
	out = append(out, c.BottomG.M())
	return out
}

// solveLevel approximately solves A_i x = b by preconditioned Chebyshev
// iteration with the next level as preconditioner; the bottom level solves
// exactly (Lemma 6.7 / 6.8 recursion).
func (c *Chain) solveLevel(workers, i int, b []float64) []float64 {
	if i >= len(c.Levels) {
		c.bottomSolves.Add(1)
		nb := int64(c.BottomG.N)
		c.rec.Add(nb*nb, 1)
		return c.Bottom.SolveW(workers, b)
	}
	lvl := &c.Levels[i]
	return chebyshev(workers, lvl.Lap, b, lvl.ChebIts, lvl.EigLo, lvl.EigHi,
		func(r []float64) []float64 { return c.applyH(workers, i, r) },
		lvl.CompIdx, c.rec)
}

// applyH solves the preconditioner system H_i z = r by partial-Cholesky
// elimination into A_{i+1}, a recursive solve there, and back-substitution.
// The κ scaling of the subgraph inside H is part of H's definition, so no
// extra scaling appears here.
func (c *Chain) applyH(workers, i int, r []float64) []float64 {
	lvl := &c.Levels[i]
	red, carry := lvl.Elim.ForwardRHSW(workers, r)
	xr := c.solveLevel(workers, i+1, red)
	z := lvl.Elim.BackSolveW(workers, xr, carry)
	matrix.ProjectOutConstantMaskedIdxW(workers, z, lvl.CompIdx)
	c.rec.Add(int64(len(lvl.Elim.Ops))+int64(len(r)), int64(lvl.Elim.Rounds)+1)
	return z
}

// PrecondApply exposes one application of the top-level preconditioner
// (H_1⁻¹ through the whole chain), used by the PCG driver and experiments.
// Safe for concurrent use (see the Chain concurrency contract).
func (c *Chain) PrecondApply(r []float64) []float64 {
	return c.PrecondApplyW(c.Opt.Workers, r)
}

// PrecondApplyW is PrecondApply with a per-call worker count, letting a
// serving layer split a global worker budget across concurrent solves
// without rebuilding the chain. Results are bitwise identical for every
// workers value.
func (c *Chain) PrecondApplyW(workers int, r []float64) []float64 {
	if len(c.Levels) == 0 {
		return c.Bottom.SolveW(workers, r)
	}
	return c.applyH(workers, 0, r)
}
