// Package apps implements the applications the paper claims for its solver
// (Section 1): spectral sparsification via effective resistances [SS08],
// approximate maximum flow via electrical flows [CKM+10], and a
// harmonic-interpolation (Dirichlet) solver representative of the
// vision/graphics workloads the paper cites. An exact max-flow baseline
// (Dinic's algorithm) is built from scratch as the comparator.
package apps

import (
	"math"

	"parlap/internal/graph"
)

// MaxFlowExact computes the exact maximum s-t flow value in an undirected
// capacitated graph (edge weights are capacities) using Dinic's algorithm
// with BFS level graphs and DFS blocking flows. Each undirected edge becomes
// a pair of arcs sharing capacity.
func MaxFlowExact(g *graph.Graph, s, t int) float64 {
	if s == t {
		return math.Inf(1)
	}
	n := g.N
	type arc struct {
		to  int32
		rev int32 // index of reverse arc in arcs[to]
		cap float64
	}
	arcs := make([][]arc, n)
	addEdge := func(u, v int, c float64) {
		arcs[u] = append(arcs[u], arc{int32(v), int32(len(arcs[v])), c})
		arcs[v] = append(arcs[v], arc{int32(u), int32(len(arcs[u]) - 1), c})
	}
	for _, e := range g.Edges {
		if e.U != e.V && e.W > 0 {
			addEdge(e.U, e.V, e.W)
		}
	}
	level := make([]int32, n)
	iter := make([]int, n)
	queue := make([]int32, 0, n)
	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range arcs[u] {
				if a.cap > 1e-12 && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[t] >= 0
	}
	var dfs func(u int, f float64) float64
	dfs = func(u int, f float64) float64 {
		if u == t {
			return f
		}
		for ; iter[u] < len(arcs[u]); iter[u]++ {
			a := &arcs[u][iter[u]]
			if a.cap <= 1e-12 || level[a.to] != level[u]+1 {
				continue
			}
			d := dfs(int(a.to), math.Min(f, a.cap))
			if d > 0 {
				a.cap -= d
				arcs[a.to][a.rev].cap += d
				return d
			}
		}
		return 0
	}
	flow := 0.0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, math.Inf(1))
			if f <= 0 {
				break
			}
			flow += f
		}
	}
	return flow
}
