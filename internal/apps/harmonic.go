package apps

import (
	"fmt"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/solver"
)

// HarmonicInterpolation solves the discrete Dirichlet problem: given fixed
// values on a boundary vertex set, extend harmonically to the interior
// (each interior vertex's value is the weighted average of its neighbors).
// This is the canonical "vision and graphics" Laplacian workload the paper
// cites (colorization, image matting, mesh parameterization all reduce to
// it). The interior system L_II·x_I = −L_IB·x_B is SDD (strictly dominant
// at the boundary-adjacent rows), solved through the Gremban reduction.
func HarmonicInterpolation(g *graph.Graph, boundary map[int]float64, eps float64) ([]float64, error) {
	n := g.N
	if len(boundary) == 0 {
		return nil, fmt.Errorf("apps: harmonic interpolation requires at least one boundary vertex")
	}
	interior := make([]int, 0, n)
	pos := make([]int, n)
	for v := 0; v < n; v++ {
		if _, ok := boundary[v]; ok {
			pos[v] = -1
		} else {
			pos[v] = len(interior)
			interior = append(interior, v)
		}
	}
	ni := len(interior)
	out := make([]float64, n)
	for v, val := range boundary {
		out[v] = val
	}
	if ni == 0 {
		return out, nil
	}
	// Assemble L_II and the right-hand side −L_IB·x_B.
	var rows, cols []int
	var vals []float64
	rhs := make([]float64, ni)
	for _, v := range interior {
		deg := 0.0
		g.Neighbors(v, func(u int, w float64, _ int) {
			if u == v {
				return
			}
			deg += w
			if pos[u] >= 0 {
				rows = append(rows, pos[v])
				cols = append(cols, pos[u])
				vals = append(vals, -w)
			} else {
				rhs[pos[v]] += w * boundary[u]
			}
		})
		rows = append(rows, pos[v])
		cols = append(cols, pos[v])
		vals = append(vals, deg)
	}
	lii, err := matrix.NewSparseFromTriplets(ni, rows, cols, vals)
	if err != nil {
		return nil, err
	}
	s, err := solver.NewSDD(lii, solver.DefaultChainParams(), nil)
	if err != nil {
		return nil, err
	}
	xi, _ := s.Solve(rhs, eps)
	for i, v := range interior {
		out[v] = xi[i]
	}
	return out, nil
}

// HarmonicResidual returns the maximum deviation of interior vertices from
// the harmonic (weighted-average) condition, a correctness diagnostic.
func HarmonicResidual(g *graph.Graph, boundary map[int]float64, x []float64) float64 {
	worst := 0.0
	for v := 0; v < g.N; v++ {
		if _, ok := boundary[v]; ok {
			continue
		}
		sum, deg := 0.0, 0.0
		g.Neighbors(v, func(u int, w float64, _ int) {
			if u != v {
				sum += w * x[u]
				deg += w
			}
		})
		if deg == 0 {
			continue
		}
		if d := abs(x[v] - sum/deg); d > worst {
			worst = d
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
