package apps

import (
	"math"

	"parlap/internal/graph"
	"parlap/internal/solver"
)

// ElectricalFlow computes the electrical s-t flow of value f in a graph
// whose edge conductances are given by cond (indexed by g's edges): solve
// L x = f·(χ_s − χ_t) and read flows off potential differences,
// flow_e = cond_e·(x_u − x_v). Returns per-edge flows (oriented U→V) and
// the vertex potentials.
func ElectricalFlow(sol *solver.Solver, g *graph.Graph, cond []float64, s, t int, f, eps float64) (flows, potentials []float64) {
	b := make([]float64, g.N)
	b[s] = f
	b[t] = -f
	x, _ := sol.Solve(b, eps)
	flows = make([]float64, len(g.Edges))
	for i, e := range g.Edges {
		flows[i] = cond[i] * (x[e.U] - x[e.V])
	}
	return flows, x
}

// ApproxMaxFlowResult reports the [CKM+10]-style approximate max-flow.
type ApproxMaxFlowResult struct {
	Value      float64   // feasible flow value achieved
	Flow       []float64 // per-edge flow, oriented U→V
	Iterations int       // electrical-flow solves performed
	Solves     int
}

// ApproxMaxFlow computes a (1−O(ε))-approximate maximum s-t flow in an
// undirected capacitated graph via the electrical-flow multiplicative-
// weights method of Christiano–Kelner–Mądry–Spielman–Teng, the application
// highlighted in the paper's introduction. Each round solves one Laplacian
// system with the parlap solver (resistances r_e = w_e/u_e²), updates edge
// weights by observed congestion, and averages the flows; the average is
// scaled to feasibility at the end. A binary search over the flow value F
// brackets the optimum.
//
// This is the practical variant of [CKM+10]: iteration counts are capped at
// rounds (the paper's O~(m^{1/3}ε^{-11/3}) bound is asymptotic), and
// feasibility is enforced by congestion scaling, preserving the
// approximation guarantee direction (the returned flow is always feasible;
// only optimality is approximate).
func ApproxMaxFlow(g *graph.Graph, s, t int, eps float64, rounds int) (*ApproxMaxFlowResult, error) {
	if eps <= 0 || eps > 0.5 {
		eps = 0.1
	}
	if rounds <= 0 {
		rounds = 30
	}
	m := len(g.Edges)
	caps := make([]float64, m)
	capOut := 0.0
	for i, e := range g.Edges {
		caps[i] = e.W
		if e.U == s || e.V == s {
			capOut += e.W
		}
	}
	res := &ApproxMaxFlowResult{}
	// flowFor runs the MW loop at target value F and returns the best
	// feasible value obtainable by scaling the averaged flow.
	flowFor := func(F float64) (float64, []float64, int) {
		w := make([]float64, m)
		for i := range w {
			w[i] = 1
		}
		avg := make([]float64, m)
		solves := 0
		for it := 0; it < rounds; it++ {
			wsum := 0.0
			for _, wi := range w {
				wsum += wi
			}
			cond := make([]float64, m)
			edges := make([]graph.Edge, m)
			for i, e := range g.Edges {
				r := (w[i] + eps*wsum/float64(3*m)) / (caps[i] * caps[i])
				cond[i] = 1 / r
				edges[i] = graph.Edge{U: e.U, V: e.V, W: cond[i]}
			}
			eg := graph.FromEdges(g.N, edges)
			sol, err := solver.New(eg, solver.DefaultChainParams(), nil)
			if err != nil {
				return 0, nil, solves
			}
			flows, _ := ElectricalFlow(sol, g, cond, s, t, F, 1e-8)
			solves++
			// Congestion-driven weight update.
			rho := 0.0
			for i := range flows {
				c := math.Abs(flows[i]) / caps[i]
				if c > rho {
					rho = c
				}
			}
			if rho == 0 {
				break
			}
			for i := range w {
				c := math.Abs(flows[i]) / caps[i]
				w[i] *= 1 + eps*c/rho
			}
			for i := range avg {
				avg[i] += flows[i]
			}
		}
		if solves == 0 {
			return 0, nil, 0
		}
		for i := range avg {
			avg[i] /= float64(solves)
		}
		// Scale the averaged flow to feasibility.
		rho := 0.0
		for i := range avg {
			c := math.Abs(avg[i]) / caps[i]
			if c > rho {
				rho = c
			}
		}
		if rho <= 0 {
			return 0, avg, solves
		}
		scale := 1 / rho
		val := 0.0
		for i, e := range g.Edges {
			avg[i] *= scale
			if e.U == s {
				val += avg[i]
			} else if e.V == s {
				val -= avg[i]
			}
		}
		return val, avg, solves
	}
	best, bestFlow, solves := flowFor(capOut)
	res.Solves = solves
	res.Iterations = solves
	// One refinement pass at the achieved value tightens the weights around
	// the binding cut, typically recovering a few percent.
	if best > 0 {
		v2, f2, s2 := flowFor(best * (1 + eps))
		res.Solves += s2
		res.Iterations += s2
		if v2 > best {
			best, bestFlow = v2, f2
		}
	}
	res.Value = best
	res.Flow = bestFlow
	return res, nil
}

// FlowConservationError returns the maximum violation of flow conservation
// at non-terminal vertices — a correctness diagnostic for flows.
func FlowConservationError(g *graph.Graph, flow []float64, s, t int) float64 {
	net := make([]float64, g.N)
	for i, e := range g.Edges {
		net[e.U] -= flow[i]
		net[e.V] += flow[i]
	}
	worst := 0.0
	for v := range net {
		if v == s || v == t {
			continue
		}
		if a := math.Abs(net[v]); a > worst {
			worst = a
		}
	}
	return worst
}

// MaxCongestion returns max_e |flow_e|/cap_e.
func MaxCongestion(g *graph.Graph, flow []float64) float64 {
	worst := 0.0
	for i, e := range g.Edges {
		if e.W <= 0 {
			continue
		}
		if c := math.Abs(flow[i]) / e.W; c > worst {
			worst = c
		}
	}
	return worst
}

// EffectiveResistance returns R_eff(u,v) computed with one solve:
// R = (χ_u − χ_v)ᵀ L⁺ (χ_u − χ_v).
func EffectiveResistance(sol *solver.Solver, n, u, v int, eps float64) float64 {
	b := make([]float64, n)
	b[u] = 1
	b[v] = -1
	x, _ := sol.Solve(b, eps)
	return x[u] - x[v]
}
