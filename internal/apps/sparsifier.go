package apps

import (
	"math"
	"math/rand"

	"parlap/internal/graph"
	"parlap/internal/matrix"
	"parlap/internal/par"
	"parlap/internal/solver"
)

// SpectralSparsifier implements Spielman–Srivastava sampling by effective
// resistances [SS08], the first application in the paper's introduction:
// approximate all R_eff(u,v) with k = O(log n) Laplacian solves via a
// Johnson–Lindenstrauss sketch of W^{1/2}·B·L⁺, then keep q samples drawn
// with probability proportional to w_e·R_eff(e), reweighted to be unbiased.
//
// The output H satisfies (1−ε)·L_G ⪯ L_H ⪯ (1+ε)·L_G whp for
// q = O(n log n/ε²); callers choose q directly.
func SpectralSparsifier(g *graph.Graph, q, jlDims int, seed int64) (*graph.Graph, error) {
	n := g.N
	m := len(g.Edges)
	if jlDims <= 0 {
		jlDims = int(math.Ceil(8 * math.Log(float64(n)+2)))
	}
	sol, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Sketch rows: z_i = L⁺·(Bᵀ W^{1/2} q_i) with q_i ∈ {±1/√k}^m.
	// Generate the random signs deterministically per (row, edge).
	zs := make([][]float64, jlDims)
	scale := 1 / math.Sqrt(float64(jlDims))
	seeds := make([]int64, jlDims)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	for i := 0; i < jlDims; i++ {
		rrow := rand.New(rand.NewSource(seeds[i]))
		b := make([]float64, n)
		for eIdx, e := range g.Edges {
			s := scale
			if rrow.Intn(2) == 0 {
				s = -s
			}
			c := s * math.Sqrt(e.W)
			b[e.U] += c
			b[e.V] -= c
			_ = eIdx
		}
		x, _ := sol.Solve(b, 1e-8)
		zs[i] = x
	}
	// Approximate leverage scores w_e·R_eff(e) = w_e·‖Z(χ_u − χ_v)‖².
	lev := make([]float64, m)
	par.ForChunked(m, func(lo, hi int) {
		for eIdx := lo; eIdx < hi; eIdx++ {
			e := g.Edges[eIdx]
			r := 0.0
			for i := 0; i < jlDims; i++ {
				d := zs[i][e.U] - zs[i][e.V]
				r += d * d
			}
			lev[eIdx] = e.W * r
		}
	})
	total := 0.0
	for _, l := range lev {
		total += l
	}
	if total <= 0 {
		return graph.FromEdges(n, nil), nil
	}
	// Sample q edges with replacement ∝ leverage; aggregate weights.
	cum := make([]float64, m+1)
	for i, l := range lev {
		cum[i+1] = cum[i] + l
	}
	acc := make(map[int]float64)
	for s := 0; s < q; s++ {
		x := rng.Float64() * total
		// Binary search in the cumulative table.
		lo, hi := 0, m
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		pe := lev[lo] / total
		acc[lo] += g.Edges[lo].W / (float64(q) * pe)
	}
	var edges []graph.Edge
	for id, w := range acc {
		e := g.Edges[id]
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: w})
	}
	return graph.FromEdges(n, edges), nil
}

// QuadFormDistortion measures max over probe vectors of
// |xᵀL_H x / xᵀL_G x − 1| — the empirical spectral-approximation quality of
// a sparsifier on random mean-zero probes.
func QuadFormDistortion(g, h *graph.Graph, probes int, seed int64) float64 {
	lg := matrix.LaplacianOf(g)
	lh := matrix.LaplacianOf(h)
	rng := rand.New(rand.NewSource(seed))
	worst := 0.0
	for p := 0; p < probes; p++ {
		x := make([]float64, g.N)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		matrix.ProjectOutConstant(x)
		qg := lg.QuadForm(x)
		if qg <= 0 {
			continue
		}
		d := math.Abs(lh.QuadForm(x)/qg - 1)
		if d > worst {
			worst = d
		}
	}
	return worst
}
