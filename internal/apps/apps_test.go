package apps

import (
	"math"
	"testing"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/solver"
)

// --- Dinic ---

func TestMaxFlowExactPath(t *testing.T) {
	// Path with capacities 3,1,2: bottleneck 1.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 3}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 2}})
	if f := MaxFlowExact(g, 0, 3); f != 1 {
		t.Fatalf("flow = %v, want 1", f)
	}
}

func TestMaxFlowExactParallelPaths(t *testing.T) {
	// Two disjoint s-t paths of capacities 2 and 3.
	g := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 3, W: 2},
		{U: 0, V: 2, W: 3}, {U: 2, V: 3, W: 3},
	})
	if f := MaxFlowExact(g, 0, 3); f != 5 {
		t.Fatalf("flow = %v, want 5", f)
	}
}

func TestMaxFlowExactUndirectedDiamond(t *testing.T) {
	// Classic diamond with a cross edge; undirected max-flow 0→3 is 4
	// (both unit paths plus the cross edge reused both ways is not allowed;
	// capacities: all edges capacity 2 → min cut {0-1, 0-2} = 4).
	g := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 0, V: 2, W: 2},
		{U: 1, V: 2, W: 2},
		{U: 1, V: 3, W: 2}, {U: 2, V: 3, W: 2},
	})
	if f := MaxFlowExact(g, 0, 3); f != 4 {
		t.Fatalf("flow = %v, want 4", f)
	}
}

func TestMaxFlowExactGridCut(t *testing.T) {
	// On a k×k unit grid, corner-to-corner max flow equals the corner
	// degree (2), the minimum cut.
	g := gen.Grid2D(6, 6)
	if f := MaxFlowExact(g, 0, g.N-1); f != 2 {
		t.Fatalf("grid flow = %v, want 2", f)
	}
}

func TestMaxFlowExactDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if f := MaxFlowExact(g, 0, 3); f != 0 {
		t.Fatalf("disconnected flow = %v, want 0", f)
	}
}

// --- Electrical flow / approximate max flow ---

func TestElectricalFlowConservation(t *testing.T) {
	g := gen.Grid2D(8, 8)
	sol, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cond := make([]float64, g.M())
	for i, e := range g.Edges {
		cond[i] = e.W
	}
	flows, _ := ElectricalFlow(sol, g, cond, 0, g.N-1, 1, 1e-10)
	if errv := FlowConservationError(g, flows, 0, g.N-1); errv > 1e-6 {
		t.Fatalf("conservation violated by %v", errv)
	}
	// Net outflow at s equals the demanded value 1.
	net := 0.0
	for i, e := range g.Edges {
		if e.U == 0 {
			net += flows[i]
		} else if e.V == 0 {
			net -= flows[i]
		}
	}
	if math.Abs(net-1) > 1e-6 {
		t.Fatalf("source outflow %v, want 1", net)
	}
}

func TestElectricalFlowSeriesParallel(t *testing.T) {
	// Two parallel unit-resistance paths: flow splits inversely to
	// resistance: direct edge (R=1) carries 2/3, two-hop path (R=2) 1/3.
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 2, W: 1},                     // direct, conductance 1
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, // series pair
	})
	sol, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cond := []float64{1, 1, 1}
	flows, _ := ElectricalFlow(sol, g, cond, 0, 2, 1, 1e-10)
	if math.Abs(flows[0]-2.0/3) > 1e-6 {
		t.Fatalf("direct edge carries %v, want 2/3", flows[0])
	}
	if math.Abs(flows[1]-1.0/3) > 1e-6 {
		t.Fatalf("series path carries %v, want 1/3", flows[1])
	}
}

func TestApproxMaxFlowNearOptimal(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s, tt := 0, g.N-1
	exact := MaxFlowExact(g, s, tt)
	res, err := ApproxMaxFlow(g, s, tt, 0.1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > exact+1e-6 {
		t.Fatalf("approx flow %v exceeds exact %v (infeasible)", res.Value, exact)
	}
	if res.Value < 0.7*exact {
		t.Fatalf("approx flow %v below 70%% of exact %v", res.Value, exact)
	}
	if c := MaxCongestion(g, res.Flow); c > 1+1e-9 {
		t.Fatalf("returned flow violates capacities: congestion %v", c)
	}
	if e := FlowConservationError(g, res.Flow, s, tt); e > 1e-6 {
		t.Fatalf("returned flow violates conservation by %v", e)
	}
}

func TestApproxMaxFlowBottleneck(t *testing.T) {
	// Barbell: the path is the bottleneck (capacity 1).
	g := gen.Barbell(5, 3)
	s, tt := 0, g.N-1
	exact := MaxFlowExact(g, s, tt)
	if exact != 1 {
		t.Fatalf("barbell exact flow = %v, want 1", exact)
	}
	res, err := ApproxMaxFlow(g, s, tt, 0.1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 0.7 || res.Value > 1+1e-9 {
		t.Fatalf("approx flow %v, want within (0.7, 1]", res.Value)
	}
}

// --- Effective resistance & sparsifier ---

func TestEffectiveResistancePath(t *testing.T) {
	// Unit path: R_eff(0, k) = k.
	g := gen.Path(10)
	sol, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := EffectiveResistance(sol, g.N, 0, 9, 1e-10); math.Abs(r-9) > 1e-5 {
		t.Fatalf("R_eff = %v, want 9", r)
	}
}

func TestEffectiveResistanceParallel(t *testing.T) {
	// Two parallel unit edges: R = 1/2.
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 1}})
	sol, err := solver.New(g, solver.DefaultChainParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := EffectiveResistance(sol, g.N, 0, 1, 1e-10); math.Abs(r-0.5) > 1e-6 {
		t.Fatalf("R_eff = %v, want 0.5", r)
	}
}

func TestSpectralSparsifierQuality(t *testing.T) {
	g := gen.GNP(300, 0.08, 31)
	q := 12 * g.N // generous sample budget for a small test
	h, err := SpectralSparsifier(g, q, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() >= g.M() {
		t.Fatalf("sparsifier not sparser: %d >= %d", h.M(), g.M())
	}
	if !h.IsConnected() {
		t.Fatal("sparsifier disconnected")
	}
	if d := QuadFormDistortion(g, h, 25, 33); d > 0.7 {
		t.Fatalf("quadratic-form distortion %v too large", d)
	}
}

func TestSparsifierMoreSamplesLessDistortion(t *testing.T) {
	g := gen.GNP(200, 0.1, 34)
	d1Graph, err := SpectralSparsifier(g, 2*g.N, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	d2Graph, err := SpectralSparsifier(g, 30*g.N, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	d1 := QuadFormDistortion(g, d1Graph, 25, 36)
	d2 := QuadFormDistortion(g, d2Graph, 25, 36)
	if d2 > d1 {
		t.Fatalf("more samples increased distortion: %v -> %v", d1, d2)
	}
}

// --- Harmonic interpolation ---

func TestHarmonicInterpolationPath(t *testing.T) {
	// Boundary 0 ↦ 0, end ↦ 1 on a unit path: linear interpolation.
	n := 11
	g := gen.Path(n)
	x, err := HarmonicInterpolation(g, map[int]float64{0: 0, n - 1: 1}, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) / float64(n-1)
		if math.Abs(x[i]-want) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestHarmonicInterpolationMaxPrinciple(t *testing.T) {
	// Interior values lie within the boundary range (discrete maximum
	// principle), and the harmonic residual is tiny.
	g := gen.Grid2D(12, 12)
	boundary := map[int]float64{}
	for c := 0; c < 12; c++ {
		boundary[c] = 1        // top row
		boundary[11*12+c] = -1 // bottom row
	}
	x, err := HarmonicInterpolation(g, boundary, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range x {
		if val > 1+1e-6 || val < -1-1e-6 {
			t.Fatalf("x[%d] = %v violates maximum principle", v, val)
		}
	}
	if r := HarmonicResidual(g, boundary, x); r > 1e-5 {
		t.Fatalf("harmonic residual %v", r)
	}
}

func TestHarmonicInterpolationAllBoundary(t *testing.T) {
	g := gen.Path(3)
	x, err := HarmonicInterpolation(g, map[int]float64{0: 1, 1: 2, 2: 3}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Fatalf("boundary values not preserved: %v", x)
	}
}

func TestHarmonicInterpolationNoBoundary(t *testing.T) {
	if _, err := HarmonicInterpolation(gen.Path(3), nil, 1e-8); err == nil {
		t.Fatal("expected error with empty boundary")
	}
}
