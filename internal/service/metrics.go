package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parlap/internal/obs"
)

// Telemetry registry and the /metrics exposition. Everything here is
// observation-only: counters and histograms record around the solve path,
// never inside the arithmetic, so the bitwise determinism and zero-alloc
// contracts of the solver are untouched. The hot-path cost is a handful of
// atomic adds per solve; the mutex below guards only the HTTP route/code
// table, touched once per request after the response is written.

// metrics is the server-wide telemetry state. Per-graph series live on the
// entry (they must die with the eviction); everything global lives here.
type metrics struct {
	latency obs.Histogram // end-to-end solve latency, ns
	// rhsLatency is the per-right-hand-side view of the same solves: a
	// batch or stream window's wall time divided evenly across its k rows,
	// observed once per row. Request latency alone makes a batch look k×
	// slower than it is; this series is the per-RHS cost that batching
	// actually buys down.
	rhsLatency obs.Histogram
	stage      [obs.NumStages]obs.Histogram // per-stage solve latency, ns

	solves      atomic.Int64 // solve calls served (a stream window counts one)
	rhs         atomic.Int64 // right-hand sides solved
	solveErrors atomic.Int64 // solve/stream calls that returned an error

	streamWindows atomic.Int64
	streamRows    atomic.Int64

	mu   sync.Mutex
	http map[routeCode]int64 // finished HTTP requests by route and status
}

type routeCode struct {
	route string
	code  int
}

func newMetrics() *metrics {
	return &metrics{http: make(map[routeCode]int64)}
}

func (m *metrics) countHTTP(route string, code int) {
	m.mu.Lock()
	m.http[routeCode{route, code}]++
	m.mu.Unlock()
}

// observeSolve records one finished solve (or stream window): end-to-end
// latency into the global and per-graph histograms, each stage's duration
// into the global per-stage histograms, and the per-graph cumulative stage
// nanoseconds that back the /stats timings block and the
// parlap_graph_stage_seconds_total series.
func (s *Server) observeSolve(e *entry, tr *obs.SolveTrace, rhs int) {
	s.met.solves.Add(1)
	s.met.rhs.Add(int64(rhs))
	s.met.latency.Observe(tr.TotalNS)
	e.lat.Observe(tr.TotalNS)
	if rhs > 0 {
		per := tr.TotalNS / int64(rhs)
		for i := 0; i < rhs; i++ {
			s.met.rhsLatency.Observe(per)
			e.rhsLat.Observe(per)
		}
	}
	for _, st := range obs.Stages() {
		if st == obs.StageTotal {
			continue // the end-to-end histogram already covers it
		}
		ns := tr.StageNS(st)
		s.met.stage[st].Observe(ns)
		e.stageNS[st].Add(ns)
	}
	e.stageNS[obs.StageTotal].Add(tr.TotalNS)
}

// --- request IDs ---

type ridKey struct{}

// nextRequestID mints a process-unique request id: a per-boot prefix (the
// start time, so ids never collide across restarts in interleaved logs) and
// a sequence number.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.ridPrefix, s.ridSeq.Add(1))
}

// requestID extracts the request id the route wrapper stored in ctx; empty
// when the call did not come through the HTTP layer.
func requestID(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// --- route instrumentation ---

// statusWriter records the status code a handler writes. It forwards Flush
// so the ndjson streaming path keeps its per-row flushes, and Unwrap so
// http.ResponseController sees through it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// validRequestID reports whether an inbound X-Request-ID is safe to adopt:
// bounded length and a conservative charset, since it is echoed into logs,
// headers, and error envelopes verbatim.
func validRequestID(rid string) bool {
	if rid == "" || len(rid) > 64 {
		return false
	}
	for i := 0; i < len(rid); i++ {
		c := rid[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// route wraps a handler with the per-request plumbing: a request id (stored
// in the context, echoed in the X-Request-ID header, stamped into every
// error envelope), the route/status counter behind
// parlap_http_requests_total, and one structured log line per request. A
// sane inbound X-Request-ID — from the cluster router, or a client
// correlating its own calls — is adopted rather than replaced, so one id
// names the request across every hop's logs; anything else gets a minted
// id. The route name is passed explicitly because the Go 1.22 mux does not
// expose the matched pattern to the handler.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if !validRequestID(rid) {
			rid = s.nextRequestID()
		}
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
		w.Header().Set("X-Request-ID", rid)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		h(sw, r)
		code := sw.code()
		s.met.countHTTP(name, code)
		s.log.Info("http_request",
			"request_id", rid,
			"route", name,
			"method", r.Method,
			"path", r.URL.Path,
			"status", code,
			"duration_ms", float64(time.Since(t0).Microseconds())/1000,
		)
	}
}

// --- /metrics exposition ---

// graphRow is the per-graph slice of the exposition, captured under s.mu
// and rendered after it is released.
type graphRow struct {
	id        string
	solves    int64
	rhs       int64
	hits      int64
	bytes     int64
	precision string
	f32Levels int64
	reordered int64
	lat       obs.Snapshot
	rhsLat    obs.Snapshot
	stageNS   [obs.NumStages]int64
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format, hand-rolled via obs.Expo (no dependencies). Ordering is
// deterministic — fixed catalogue order, stages in declaration order,
// graphs sorted by id — so scrapes diff cleanly and the exposition is
// testable byte-for-byte.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	graphs := len(s.entries)
	cacheBytes := s.cacheBytes
	rows := make([]graphRow, 0, len(s.entries))
	for id, e := range s.entries {
		select {
		case <-e.built:
		default:
			continue // still building: no series yet
		}
		if e.buildErr != nil {
			continue
		}
		row := graphRow{
			id:        id,
			solves:    e.solves.Load(),
			rhs:       e.rhsServed.Load(),
			hits:      e.hits.Load(),
			bytes:     e.bytes,
			precision: e.solver.Chain.Params.Precision.String(),
			f32Levels: int64(e.solver.Chain.F32Levels()),
			reordered: int64(e.solver.Chain.ReorderedLevels()),
			lat:       e.lat.Snapshot(),
			rhsLat:    e.rhsLat.Snapshot(),
		}
		for i := range row.stageNS {
			row.stageNS[i] = e.stageNS[i].Load()
		}
		rows = append(rows, row)
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := obs.NewExpo(w)

	// Serving counters.
	e.Header("parlap_uptime_seconds", "Seconds since the server started.", "gauge")
	e.Sample("parlap_uptime_seconds", nil, time.Since(s.start).Seconds())
	e.Header("parlap_registers_total", "Graph registration requests accepted.", "counter")
	e.Int("parlap_registers_total", nil, s.registers.Load())
	e.Header("parlap_cache_hits_total", "Registrations answered from the chain cache.", "counter")
	e.Int("parlap_cache_hits_total", nil, s.cacheHits.Load())
	e.Header("parlap_evictions_total", "Chain cache evictions.", "counter")
	e.Int("parlap_evictions_total", nil, s.evictions.Load())
	e.Header("parlap_builds_total", "Preconditioner chains built or restored.", "counter")
	e.Int("parlap_builds_total", nil, s.builds.Load())
	e.Header("parlap_build_seconds_total", "Cumulative chain build/restore wall time.", "counter")
	e.Sample("parlap_build_seconds_total", nil, float64(s.buildNanos.Load())/1e9)

	// Cache occupancy.
	e.Header("parlap_cached_graphs", "Graphs currently cached.", "gauge")
	e.Int("parlap_cached_graphs", nil, int64(graphs))
	e.Header("parlap_cache_bytes", "Estimated bytes retained by cached chains.", "gauge")
	e.Int("parlap_cache_bytes", nil, cacheBytes)
	e.Header("parlap_cache_max_bytes", "Chain cache byte budget.", "gauge")
	e.Int("parlap_cache_max_bytes", nil, s.cfg.MaxCacheBytes)

	// Snapshot store.
	e.Header("parlap_snapshot_hits_total", "Chains restored from the snapshot store.", "counter")
	e.Int("parlap_snapshot_hits_total", nil, s.snapHits.Load())
	e.Header("parlap_snapshot_misses_total", "Snapshot restore attempts that fell back to a build.", "counter")
	e.Int("parlap_snapshot_misses_total", nil, s.snapMisses.Load())
	e.Header("parlap_snapshot_writes_total", "Snapshot blobs written.", "counter")
	e.Int("parlap_snapshot_writes_total", nil, s.snapWrites.Load())
	e.Header("parlap_snapshot_errors_total", "Snapshot encode/decode/IO failures (all degraded safely).", "counter")
	e.Int("parlap_snapshot_errors_total", nil, s.snapErrors.Load())

	// Admission / occupancy.
	e.Header("parlap_inflight_solves", "Solves currently executing.", "gauge")
	e.Int("parlap_inflight_solves", nil, s.inflight.Load())
	e.Header("parlap_admission_queue_depth", "Solve requests waiting for an admission slot.", "gauge")
	e.Int("parlap_admission_queue_depth", nil, int64(s.admit.QueueDepth()))
	e.Header("parlap_build_queue_depth", "Registrations waiting for a build slot.", "gauge")
	e.Int("parlap_build_queue_depth", nil, s.buildWaiting.Load())

	// Solve traffic.
	e.Header("parlap_solves_total", "Solve calls served (a stream window counts as one).", "counter")
	e.Int("parlap_solves_total", nil, s.met.solves.Load())
	e.Header("parlap_rhs_total", "Right-hand sides solved.", "counter")
	e.Int("parlap_rhs_total", nil, s.met.rhs.Load())
	e.Header("parlap_solve_errors_total", "Solve and stream calls that returned an error.", "counter")
	e.Int("parlap_solve_errors_total", nil, s.met.solveErrors.Load())
	e.Header("parlap_stream_windows_total", "Streaming solve windows executed.", "counter")
	e.Int("parlap_stream_windows_total", nil, s.met.streamWindows.Load())
	e.Header("parlap_stream_rows_total", "Streaming solve rows emitted.", "counter")
	e.Int("parlap_stream_rows_total", nil, s.met.streamRows.Load())

	// Latency histograms: end-to-end, then per stage.
	e.Header("parlap_solve_duration_seconds", "End-to-end solve latency (admission queue included).", "histogram")
	e.Histogram("parlap_solve_duration_seconds", nil, s.met.latency.Snapshot())
	e.Header("parlap_rhs_duration_seconds", "Per-right-hand-side solve latency: a batch/stream window's time divided across its rows.", "histogram")
	e.Histogram("parlap_rhs_duration_seconds", nil, s.met.rhsLatency.Snapshot())
	e.Header("parlap_solve_stage_duration_seconds", "Per-stage solve latency, exclusive attribution.", "histogram")
	for _, st := range obs.Stages() {
		if st == obs.StageTotal {
			continue
		}
		e.Histogram("parlap_solve_stage_duration_seconds",
			[]obs.Label{{K: "stage", V: st.String()}}, s.met.stage[st].Snapshot())
	}

	// Per-graph series.
	e.Header("parlap_graph_solves_total", "Solve calls served per graph.", "counter")
	for _, row := range rows {
		e.Int("parlap_graph_solves_total", []obs.Label{{K: "graph", V: row.id}}, row.solves)
	}
	e.Header("parlap_graph_rhs_total", "Right-hand sides solved per graph.", "counter")
	for _, row := range rows {
		e.Int("parlap_graph_rhs_total", []obs.Label{{K: "graph", V: row.id}}, row.rhs)
	}
	e.Header("parlap_graph_cache_hits_total", "Cache-hit registrations per graph.", "counter")
	for _, row := range rows {
		e.Int("parlap_graph_cache_hits_total", []obs.Label{{K: "graph", V: row.id}}, row.hits)
	}
	e.Header("parlap_graph_bytes", "Estimated retained chain bytes per graph.", "gauge")
	for _, row := range rows {
		e.Int("parlap_graph_bytes", []obs.Label{{K: "graph", V: row.id}}, row.bytes)
	}
	e.Header("parlap_graph_chain_precision", "Chain value-storage precision per graph (value is always 1; the precision label carries the knob).", "gauge")
	for _, row := range rows {
		e.Int("parlap_graph_chain_precision",
			[]obs.Label{{K: "graph", V: row.id}, {K: "precision", V: row.precision}}, 1)
	}
	e.Header("parlap_graph_f32_levels", "Chain levels the precision gate kept in float32 per graph.", "gauge")
	for _, row := range rows {
		e.Int("parlap_graph_f32_levels", []obs.Label{{K: "graph", V: row.id}}, row.f32Levels)
	}
	e.Header("parlap_graph_reordered_levels", "Chain levels carrying a cache-aware (Cuthill-McKee) layout per graph.", "gauge")
	for _, row := range rows {
		e.Int("parlap_graph_reordered_levels", []obs.Label{{K: "graph", V: row.id}}, row.reordered)
	}
	e.Header("parlap_graph_solve_duration_seconds", "End-to-end solve latency per graph.", "histogram")
	for _, row := range rows {
		e.Histogram("parlap_graph_solve_duration_seconds",
			[]obs.Label{{K: "graph", V: row.id}}, row.lat)
	}
	e.Header("parlap_graph_rhs_duration_seconds", "Per-right-hand-side solve latency per graph.", "histogram")
	for _, row := range rows {
		e.Histogram("parlap_graph_rhs_duration_seconds",
			[]obs.Label{{K: "graph", V: row.id}}, row.rhsLat)
	}
	e.Header("parlap_graph_stage_seconds_total", "Cumulative per-stage solve time per graph.", "counter")
	for _, row := range rows {
		for _, st := range obs.Stages() {
			e.Sample("parlap_graph_stage_seconds_total",
				[]obs.Label{{K: "graph", V: row.id}, {K: "stage", V: st.String()}},
				float64(row.stageNS[st])/1e9)
		}
	}

	// HTTP traffic.
	s.met.mu.Lock()
	keys := make([]routeCode, 0, len(s.met.http))
	for k := range s.met.http {
		keys = append(keys, k)
	}
	counts := make(map[routeCode]int64, len(keys))
	for k, v := range s.met.http {
		counts[k] = v
	}
	s.met.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	e.Header("parlap_http_requests_total", "Finished HTTP requests by route and status.", "counter")
	for _, k := range keys {
		e.Int("parlap_http_requests_total",
			[]obs.Label{{K: "route", V: k.route}, {K: "code", V: fmt.Sprintf("%d", k.code)}},
			counts[k])
	}

	// Go runtime.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.Header("go_goroutines", "Number of goroutines.", "gauge")
	e.Int("go_goroutines", nil, int64(runtime.NumGoroutine()))
	e.Header("go_memstats_alloc_bytes", "Bytes of allocated heap objects.", "gauge")
	e.Int("go_memstats_alloc_bytes", nil, int64(ms.Alloc))
	e.Header("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.", "gauge")
	e.Int("go_memstats_heap_inuse_bytes", nil, int64(ms.HeapInuse))
	e.Header("go_memstats_sys_bytes", "Bytes obtained from the OS.", "gauge")
	e.Int("go_memstats_sys_bytes", nil, int64(ms.Sys))
	e.Header("go_gc_cycles_total", "Completed GC cycles.", "counter")
	e.Int("go_gc_cycles_total", nil, int64(ms.NumGC))
	e.Header("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", "counter")
	e.Sample("go_gc_pause_seconds_total", nil, float64(ms.PauseTotalNs)/1e9)

	if err := e.Flush(); err != nil {
		s.log.Warn("metrics_write_failed", "err", err)
	}
}
