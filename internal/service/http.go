package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"parlap/internal/gen"
	"parlap/internal/graph"
	"parlap/internal/graphio"
	"parlap/internal/obs"
)

// HTTP/JSON API:
//
//	POST /graphs                      register a graph, build (or reuse) its chain
//	GET  /graphs                      list cached graph ids (MRU first)
//	POST /graphs/{id}/solve           solve one RHS ("b") or a batch ("batch")
//	POST /graphs/{id}/solve/stream    ndjson RHS rows in, ndjson solutions out (see stream.go)
//	GET  /graphs/{id}/stats           per-graph chain + serving statistics
//	GET  /healthz                     service-wide health / cache counters
//	GET  /metrics                     Prometheus text exposition (see metrics.go)
//
// Graph payloads come in the two formats the rest of the repo already
// speaks: a generator spec ("grid2d:64x64", "pa:20000:4", … — gen.FromSpec)
// or a graphio edge list ("u v w" lines, optional "n m" header).

// maxBodyBytes bounds request bodies at 512 MiB — roughly a 64-RHS batch
// on a 400k-vertex graph in JSON. Requests that are legal under MaxBatch ×
// MaxGraphVertices can exceed this; such clients should split the batch
// (the chain cache makes extra solve requests cheap). Oversized bodies get
// an explicit 413, not a generic decode error.
const maxBodyBytes = 1 << 29

// RegisterRequest is the POST /graphs body. Exactly one of Spec or EdgeList
// must be set.
type RegisterRequest struct {
	// Spec is a generator spec string, e.g. "grid2d:64x64" (see gen.FromSpec).
	Spec string `json:"spec,omitempty"`
	// Seed drives random generator families; defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// EdgeList is a whitespace edge-list document ("u v [w]" lines).
	EdgeList string `json:"edgelist,omitempty"`
}

// RegisterResponse is the POST /graphs reply.
type RegisterResponse struct {
	ID      string  `json:"id"`
	N       int     `json:"n"`
	M       int     `json:"m"`
	Cached  bool    `json:"cached"`
	BuildMS float64 `json:"build_ms"`
	Levels  int     `json:"levels"`
}

// SolveRequest is the POST /graphs/{id}/solve body. Exactly one of B or
// Batch must be set.
type SolveRequest struct {
	B     []float64   `json:"b,omitempty"`
	Batch [][]float64 `json:"batch,omitempty"`
	Eps   float64     `json:"eps,omitempty"`
}

// SolveStatsJSON is the wire form of one solve's statistics.
type SolveStatsJSON struct {
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Residual   float64 `json:"residual"`
}

// SolveResponse is the POST /graphs/{id}/solve reply: X/Stats for a single
// solve, Xs/BatchStats for a batch. Timings appears only when the request
// asked for it with ?debug=timings.
type SolveResponse struct {
	X          []float64        `json:"x,omitempty"`
	Stats      *SolveStatsJSON  `json:"stats,omitempty"`
	Xs         [][]float64      `json:"xs,omitempty"`
	BatchStats []SolveStatsJSON `json:"batch_stats,omitempty"`
	Timings    *SolveTimings    `json:"timings,omitempty"`
}

// SolveTimings is the ?debug=timings block: this request's stage trace in
// milliseconds. The per-level arrays are truncated to the chain depth;
// cheb+forward+back+bottom partition precond_ms (exclusive attribution),
// and pcg_ms is the outer driver net of preconditioning.
type SolveTimings struct {
	TotalMS     float64   `json:"total_ms"`
	QueueMS     float64   `json:"queue_ms"`
	WorkspaceMS float64   `json:"workspace_ms"`
	PCGMS       float64   `json:"pcg_ms"`
	PrecondMS   float64   `json:"precond_ms"`
	BottomMS    float64   `json:"bottom_ms"`
	Levels      int       `json:"levels"`
	ChebMS      []float64 `json:"cheb_ms_per_level"`
	ForwardMS   []float64 `json:"forward_ms_per_level"`
	BackMS      []float64 `json:"back_ms_per_level"`
}

// solveTimingsJSON renders a trace for the wire.
func solveTimingsJSON(tr *obs.SolveTrace) *SolveTimings {
	toMS := func(ns int64) float64 { return float64(ns) / 1e6 }
	lv := tr.Levels
	if lv > obs.TraceLevels {
		lv = obs.TraceLevels
	}
	out := &SolveTimings{
		TotalMS:     toMS(tr.TotalNS),
		QueueMS:     toMS(tr.QueueNS),
		WorkspaceMS: toMS(tr.WorkspaceNS),
		PCGMS:       toMS(tr.StageNS(obs.StagePCG)),
		PrecondMS:   toMS(tr.PrecondNS),
		BottomMS:    toMS(tr.BottomNS),
		Levels:      tr.Levels,
		ChebMS:      make([]float64, lv),
		ForwardMS:   make([]float64, lv),
		BackMS:      make([]float64, lv),
	}
	for i := 0; i < lv; i++ {
		out.ChebMS[i] = toMS(tr.ChebNS[i])
		out.ForwardMS[i] = toMS(tr.FwdNS[i])
		out.BackMS[i] = toMS(tr.BackNS[i])
	}
	return out
}

// errorResponse is the uniform JSON error envelope: every error path of
// every route returns it, carrying the request id the route wrapper minted
// so clients and logs can be joined.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Handler returns the service's HTTP handler. Every route runs through
// s.route, which mints the request id, counts the request in /metrics, and
// writes one structured log line. Unmatched paths get the JSON error
// envelope from the catch-all (which also means a wrong-method request gets
// a JSON 404 rather than the mux's plain-text 405 — the envelope is the
// API's contract).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graphs", s.route("register", s.handleRegister))
	mux.HandleFunc("GET /graphs", s.route("list", s.handleList))
	mux.HandleFunc("POST /graphs/{id}/solve", s.route("solve", s.handleSolve))
	mux.HandleFunc("POST /graphs/{id}/solve/stream", s.route("solve_stream", s.handleSolveStream))
	mux.HandleFunc("GET /graphs/{id}/stats", s.route("stats", s.handleStats))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.HandleFunc("/", s.route("not_found", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, http.StatusNotFound, "no such route: %s %s", r.Method, r.URL.Path)
	}))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{
		Error:     fmt.Sprintf(format, args...),
		RequestID: requestID(r.Context()),
	})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes; split the batch across requests", int64(maxBodyBytes))
			return false
		}
		writeError(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// RegisterKey computes the canonical graph id a POST /graphs body would
// register under, without registering anything. This is the cluster
// router's shard key: the router materializes the graph from the body with
// exactly the decode path handleRegister uses, so the request routes to the
// node whose cache (and whose snapshot) the id will live in.
func RegisterKey(body []byte) (string, error) {
	var req RegisterRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", err
	}
	g, _, err := graphFromRequest(&req)
	if err != nil {
		return "", err
	}
	if g.N == 0 {
		return "", errors.New("empty graph")
	}
	return GraphID(g), nil
}

// graphFromRequest materializes the request's graph payload.
func graphFromRequest(req *RegisterRequest) (*graph.Graph, string, error) {
	switch {
	case req.Spec != "" && req.EdgeList != "":
		return nil, "", errors.New("set exactly one of spec and edgelist, not both")
	case req.Spec != "":
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		g, err := gen.FromSpec(req.Spec, seed)
		if err != nil {
			return nil, "", err
		}
		return g, describeSource(fmt.Sprintf("spec:%s seed:%d", req.Spec, seed)), nil
	case req.EdgeList != "":
		g, err := graphio.ReadEdgeList(strings.NewReader(req.EdgeList))
		if err != nil {
			return nil, "", err
		}
		return g, describeSource(fmt.Sprintf("edgelist(n=%d m=%d)", g.N, g.M())), nil
	default:
		return nil, "", errors.New("set one of spec and edgelist")
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req) {
		return
	}
	g, source, err := graphFromRequest(&req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad graph payload: %v", err)
		return
	}
	if g.N == 0 {
		writeError(w, r, http.StatusBadRequest, "empty graph")
		return
	}
	e, cached, err := s.Register(r.Context(), g, source)
	if err != nil {
		var tl *TooLargeError
		switch {
		case errors.As(err, &tl):
			writeError(w, r, http.StatusBadRequest, "%v", err)
		case errors.Is(err, ErrBuildAborted):
			writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
			writeError(w, r, http.StatusServiceUnavailable, "request expired in build queue: %v", err)
		default:
			writeError(w, r, http.StatusInternalServerError, "chain build failed: %v", err)
		}
		return
	}
	// e.levels, not e.solver.Chain.Depth(): the entry may already have been
	// evicted and its solver reclaimed by the time the response is written.
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID: e.id, N: e.n, M: e.m, Cached: cached,
		BuildMS: float64(e.buildDur.Microseconds()) / 1000,
		Levels:  e.levels,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"graphs": s.List()})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req SolveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	single := req.B != nil
	var bs [][]float64
	switch {
	case single && req.Batch != nil:
		writeError(w, r, http.StatusBadRequest, "set exactly one of b and batch, not both")
		return
	case single:
		bs = [][]float64{req.B}
	case req.Batch != nil:
		bs = req.Batch
	default:
		writeError(w, r, http.StatusBadRequest, "set one of b and batch")
		return
	}
	xs, sts, tr, err := s.solveTraced(r.Context(), id, bs, req.Eps)
	if err != nil {
		var nf *NotFoundError
		switch {
		case errors.As(err, &nf):
			writeError(w, r, http.StatusNotFound, "%v", err)
		case errors.Is(err, ErrBuildAborted):
			writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
			writeError(w, r, http.StatusServiceUnavailable, "request expired in admission queue: %v", err)
		default:
			writeError(w, r, http.StatusBadRequest, "%v", err)
		}
		return
	}
	var timings *SolveTimings
	if r.URL.Query().Get("debug") == "timings" {
		timings = solveTimingsJSON(&tr)
	}
	wire := make([]SolveStatsJSON, len(sts))
	for i, st := range sts {
		wire[i] = SolveStatsJSON{Iterations: st.Iterations, Converged: st.Converged, Residual: st.Residual}
	}
	if single {
		writeJSON(w, http.StatusOK, SolveResponse{X: xs[0], Stats: &wire[0], Timings: timings})
		return
	}
	writeJSON(w, http.StatusOK, SolveResponse{Xs: xs, BatchStats: wire, Timings: timings})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats(r.Context(), r.PathValue("id"))
	if err != nil {
		var nf *NotFoundError
		if errors.As(err, &nf) {
			writeError(w, r, http.StatusNotFound, "%v", err)
			return
		}
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}
