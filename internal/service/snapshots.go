package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"parlap/internal/chainio"
	"parlap/internal/solver"
)

// Chain persistence: the serving layer's half of internal/chainio. Built
// chains are the server's only expensive state — everything else (HTTP,
// admission, the cache index) is cheap to rebuild — so persisting them is
// what turns a process restart from a rebuild stampede into a warm start.
// Three paths feed the store: write-behind after a fresh build (Register),
// the bulk shutdown pass (SnapshotAll, via Shutdown), and three paths drain
// it: restore-on-miss inside Register, the bulk boot pass (RestoreAll), and
// nothing else — solves never touch the store.

// tryRestore attempts to restore graph id's chain from the snapshot store.
// It returns (nil, false) whenever a fresh build is required: no store
// configured, blob absent, or blob unusable (corrupt, truncated, wrong
// version, wrong graph — every such failure counts as a miss and an error,
// never an outage).
func (s *Server) tryRestore(id string) (*solver.Solver, bool) {
	if s.cfg.Snapshots == nil {
		return nil, false
	}
	data, err := s.cfg.Snapshots.Get(id)
	if err != nil {
		s.snapMisses.Add(1)
		if !errors.Is(err, chainio.ErrNotFound) {
			s.snapErrors.Add(1)
		}
		return nil, false
	}
	sv, err := chainio.Decode(data, id, solver.Options{Workers: s.cfg.Workers})
	if err != nil {
		s.snapMisses.Add(1)
		s.snapErrors.Add(1)
		return nil, false
	}
	s.snapHits.Add(1)
	return sv, true
}

// snapshotOne encodes and persists one built chain, updating the counters.
func (s *Server) snapshotOne(id string, sv *solver.Solver) error {
	data, err := chainio.Encode(sv, id)
	if err == nil {
		err = s.cfg.Snapshots.Put(id, data)
	}
	if err != nil {
		s.snapErrors.Add(1)
		return fmt.Errorf("service: snapshotting %s: %w", id, err)
	}
	s.snapWrites.Add(1)
	return nil
}

// SnapshotAll persists every finished cached chain through the configured
// store and returns the number written. Put is idempotent per content
// address, so overlapping with write-behind writes is harmless. ctx bounds
// the pass between entries; the first error is returned after attempting
// the rest.
func (s *Server) SnapshotAll(ctx context.Context) (int, error) {
	if s.cfg.Snapshots == nil {
		return 0, nil
	}
	type target struct {
		id string
		sv *solver.Solver
	}
	s.mu.Lock()
	targets := make([]target, 0, len(s.entries))
	for id, e := range s.entries {
		select {
		case <-e.built:
		default:
			continue // still building; its own write-behind will cover it
		}
		if e.buildErr == nil && e.solver != nil {
			targets = append(targets, target{id, e.solver})
		}
	}
	s.mu.Unlock()
	var firstErr error
	written := 0
	for _, t := range targets {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if err := s.snapshotOne(t.id, t.sv); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written++
	}
	return written, firstErr
}

// RestoreAll loads every snapshot in the configured store into the cache —
// the boot-time warm start. Each successful restore counts as a snapshot
// hit; unusable blobs are skipped (counted as errors) and left for
// restore-on-miss or a fresh build to supersede. The cache is trimmed to
// its usual bounds afterwards, so a store holding more chains than
// MaxGraphs/MaxCacheBytes warm-starts the most recently restored ones.
func (s *Server) RestoreAll(ctx context.Context) (int, error) {
	if s.cfg.Snapshots == nil {
		return 0, nil
	}
	ids, err := s.cfg.Snapshots.List()
	if err != nil {
		return 0, fmt.Errorf("service: listing snapshots: %w", err)
	}
	var firstErr error
	restored := 0
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		s.mu.Lock()
		_, exists := s.entries[id]
		s.mu.Unlock()
		if exists {
			continue
		}
		sv, ok := s.tryRestore(id)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("service: snapshot %s unusable; skipped", id)
			}
			continue
		}
		t0 := time.Now()
		e := &entry{
			id:       id,
			source:   "snapshot",
			n:        sv.G.N,
			m:        sv.G.M(),
			built:    make(chan struct{}),
			solver:   sv,
			restored: true,
			levels:   sv.Chain.Depth(),
			bytes:    sv.MemoryBytes(),
		}
		e.buildDur = time.Since(t0)
		close(e.built)
		s.mu.Lock()
		if _, raced := s.entries[id]; raced {
			s.mu.Unlock()
			continue // a concurrent registration beat us; keep its entry
		}
		e.elem = s.lru.PushFront(e)
		s.entries[id] = e
		s.cacheBytes += e.bytes
		s.evictLocked(nil)
		s.mu.Unlock()
		restored++
	}
	return restored, firstErr
}

// Shutdown flushes chain persistence: it waits for in-flight write-behind
// snapshot writes, then runs a SnapshotAll pass so every cached chain —
// including ones built before snapshotting was enabled or restored and
// since re-registered — survives the restart. Call it after the HTTP
// server has drained so no new builds race the pass.
func (s *Server) Shutdown(ctx context.Context) error {
	s.snapWG.Wait()
	_, err := s.SnapshotAll(ctx)
	return err
}
