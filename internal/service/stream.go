package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parlap/internal/graphio"
	"parlap/internal/matrix"
	"parlap/internal/obs"
	"parlap/internal/solver"
)

// The streaming batch path: very large right-hand-side batches arrive as
// ndjson rows (one JSON array per line), are chunked into SolveBatch
// windows that each pass the same admission control as a discrete solve
// request, and the solutions stream back as ndjson rows in input order.
// A 100k-row batch therefore never holds more than one window of RHS
// vectors in memory and never monopolizes the solve slots — between
// windows, waiting requests for other graphs get their turn (the admission
// sharding applies per window). Row arithmetic is the batched kernels',
// which are bitwise identical to independent Solve calls per column.

// ErrStreamAbort wraps a row-level failure that ends a stream after rows
// may already have been emitted.
var ErrStreamAbort = errors.New("service: stream aborted")

// SolveStream drains RHS rows from next (io.EOF ends the stream), solves
// them against graph id in admission-controlled windows of the configured
// StreamWindow size, and hands each solution to emit in input order.
// It returns the number of rows fully processed. Errors from next or emit
// abort the stream; rows already emitted stay emitted.
func (s *Server) SolveStream(ctx context.Context, id string, eps float64,
	next func() ([]float64, error), emit func(row int, x []float64, st solver.SolveStats) error) (int, error) {
	rows, err := s.solveStream(ctx, id, eps, next, emit)
	if err != nil {
		s.met.solveErrors.Add(1)
	}
	return rows, err
}

func (s *Server) solveStream(ctx context.Context, id string, eps float64,
	next func() ([]float64, error), emit func(row int, x []float64, st solver.SolveStats) error) (int, error) {
	// The reference spans the whole stream, not just one window: between
	// windows the entry may be evicted (it no longer serves lookups), but
	// its solver must stay reclaimable-only-after the stream finishes.
	e, err := s.lookupOrRestoreRef(ctx, id)
	if err != nil {
		return 0, err
	}
	defer s.release(e)
	select {
	case <-e.built:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	if e.buildErr != nil {
		return 0, e.buildErr
	}
	if eps <= 0 {
		eps = s.cfg.DefaultEps
	}
	window := s.cfg.StreamWindow
	done := 0
	bs := make([][]float64, 0, window)
	// The window's contiguous RHS/solution blocks and per-row stats persist
	// across windows: SolveBlockTraced reshapes them in place, so a long
	// stream allocates its solve scratch once, on the first window, and the
	// per-window steady state stays allocation-free inside the solver.
	var rhsBlk, outBlk matrix.Block
	var stsBuf []solver.SolveStats
	for {
		// Gather one window.
		bs = bs[:0]
		var streamErr error
		for len(bs) < window {
			b, err := next()
			if err == io.EOF {
				streamErr = io.EOF
				break
			}
			if err != nil {
				return done, fmt.Errorf("%w: row %d: %v", ErrStreamAbort, done+len(bs)+1, err)
			}
			if len(b) != e.n {
				return done, fmt.Errorf("%w: row %d has %d entries, graph has %d vertices",
					ErrStreamAbort, done+len(bs)+1, len(b), e.n)
			}
			bs = append(bs, b)
		}
		if len(bs) > 0 {
			// Each window is one admitted solve: the per-graph sharding and
			// the worker-budget split apply exactly as for a discrete batch —
			// and each window records one trace (queue wait included), so a
			// long stream shows up in the latency histograms window by window.
			tWin := time.Now()
			if err := s.admit.Acquire(ctx, e.id); err != nil {
				return done, err
			}
			queueNS := time.Since(tWin).Nanoseconds()
			var tr obs.SolveTrace
			rhsBlk.Reshape(e.n, len(bs))
			for c, b := range bs {
				rhsBlk.SetCol(c, b)
			}
			sts := func() []solver.SolveStats {
				occupancy := s.inflight.Add(1)
				// Release under defer (like Server.Solve): a panicking solve
				// must not leak the slot or skew the occupancy split.
				defer func() {
					s.inflight.Add(-1)
					s.admit.Release(e.id)
				}()
				opt := solver.Options{Workers: s.workersForOccupancy(occupancy)}
				return e.solver.SolveBlockTraced(&rhsBlk, &outBlk, eps, opt, &tr, stsBuf)
			}()
			stsBuf = sts[:0]
			tr.QueueNS = queueNS
			tr.TotalNS = time.Since(tWin).Nanoseconds()
			e.solves.Add(1)
			e.rhsServed.Add(int64(len(bs)))
			for _, st := range sts {
				e.iterations.Add(int64(st.Iterations))
			}
			s.observeSolve(e, &tr, len(bs))
			s.met.streamWindows.Add(1)
			s.met.streamRows.Add(int64(len(bs)))
			s.recharge(e)
			for i := range sts {
				// Fresh vector per row: emit callbacks may retain it past the
				// next window's reuse of the block.
				x := make([]float64, e.n)
				outBlk.ColInto(i, x)
				if err := emit(done+i, x, sts[i]); err != nil {
					return done + i, fmt.Errorf("%w: emit row %d: %v", ErrStreamAbort, done+i, err)
				}
			}
			done += len(bs)
		}
		if streamErr == io.EOF {
			return done, nil
		}
		if err := ctx.Err(); err != nil {
			return done, err
		}
	}
}

// streamSolutionRow is the wire form of one streamed solution: the row
// index it answers, the solution vector (encoded with round-trip float
// formatting), and the per-solve statistics.
type streamSolutionRow struct {
	Row        int             `json:"row"`
	X          json.RawMessage `json:"x"`
	Iterations int             `json:"iterations"`
	Converged  bool            `json:"converged"`
	Residual   float64         `json:"residual"`
}

// streamErrorRow ends a broken stream in-band (the HTTP status is already
// committed once rows have been flushed). It carries the same request id as
// the error envelope and the X-Request-ID header, so a truncated stream can
// be joined to the server's request log.
type streamErrorRow struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
	// Rows is how many solution rows were emitted before the failure.
	Rows int `json:"rows_emitted"`
}

// handleSolveStream serves POST /graphs/{id}/solve/stream: ndjson RHS rows
// in, ndjson solution rows out, windowed through the admission-controlled
// batch path. eps comes from the ?eps= query parameter.
func (s *Server) handleSolveStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	eps := 0.0
	if raw := r.URL.Query().Get("eps"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 {
			writeError(w, r, http.StatusBadRequest, "bad eps %q", raw)
			return
		}
		eps = v
	}
	// The stream interleaves reading RHS rows with writing solution rows on
	// one HTTP/1.x connection, which Go serves half-duplex by default: the
	// first response write closes the unread request body (clients sending
	// Expect: 100-continue, like curl, then break on the second window).
	// Full duplex keeps the body readable; on HTTP/2 (inherently full
	// duplex) the call reports unsupported and is safely ignored.
	_ = http.NewResponseController(w).EnableFullDuplex()
	// Row length is validated against the graph's vertex count inside
	// SolveStream; the scanner only bounds row bytes here.
	sc := graphio.NewVectorScanner(r.Body, 0, s.cfg.MaxStreamRowBytes)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerSent := false
	emit := func(row int, x []float64, st solver.SolveStats) error {
		if !headerSent {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			headerSent = true
		}
		err := enc.Encode(streamSolutionRow{
			Row:        row,
			X:          json.RawMessage(graphio.AppendVectorRow(nil, x)),
			Iterations: st.Iterations,
			Converged:  st.Converged,
			Residual:   st.Residual,
		})
		if err == nil && flusher != nil {
			flusher.Flush()
		}
		return err
	}
	rows, err := s.SolveStream(r.Context(), id, eps, sc.Next, emit)
	if err == nil {
		if !headerSent {
			// Zero-row stream: still a success, with an empty body.
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		return
	}
	if headerSent {
		// Mid-stream failure: the status line is gone; report in-band.
		_ = enc.Encode(streamErrorRow{
			Error:     err.Error(),
			RequestID: requestID(r.Context()),
			Rows:      rows,
		})
		return
	}
	var nf *NotFoundError
	switch {
	case errors.As(err, &nf):
		writeError(w, r, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrBuildAborted):
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		writeError(w, r, http.StatusServiceUnavailable, "request expired: %v", err)
	default:
		writeError(w, r, http.StatusBadRequest, "%v", err)
	}
}
