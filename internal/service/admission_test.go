package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAdmitterGrantedWhileCancelling drives the narrow interleaving in
// Acquire's cancellation path deterministically: the waiter observes
// ctx.Done, and a concurrent Release grants it the slot before it retakes
// the admitter lock. The grant must be detected and the slot returned —
// otherwise a slot leaks every time a grant races a cancellation, and the
// admitter's capacity shrinks permanently by one.
//
// The test hook runs on the waiter's own goroutine strictly between "Done
// branch chosen" and "lock retaken", so the racy window is entered on every
// run regardless of scheduling: the Release inside the hook is what grants
// the already-cancelled waiter.
func TestAdmitterGrantedWhileCancelling(t *testing.T) {
	a := newAdmitter(1, 1)
	if err := a.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	a.testGrantedWhileCancelling = func() {
		// The waiter has committed to cancelling but not yet re-locked:
		// releasing the holder's slot now drains the queue and grants the
		// cancelled waiter, putting it exactly in the granted-while-
		// cancelling state.
		a.Release("holder")
		close(released)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.Acquire(ctx, "late") }()
	waitQueueLen(t, a, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	<-released

	// The cancelled waiter was granted the slot mid-cancel; Acquire must
	// have handed it straight back.
	if g, total := a.Inflight("late"); g != 0 || total != 0 {
		t.Fatalf("slot leaked to cancelled waiter: graph=%d total=%d", g, total)
	}
	if d := a.QueueDepth(); d != 0 {
		t.Fatalf("queue not empty after cancel: depth=%d", d)
	}
	// And the capacity must be immediately usable — an Acquire with a
	// deadline would hang here if the slot had leaked.
	a.testGrantedWhileCancelling = nil
	probe, cancelProbe := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelProbe()
	if err := a.Acquire(probe, "probe"); err != nil {
		t.Fatalf("slot unusable after granted-while-cancelling: %v", err)
	}
	a.Release("probe")
	if _, total := a.Inflight("probe"); total != 0 {
		t.Fatalf("total=%d after full drain, want 0", total)
	}
}
