// Package service is the serving layer over the solver: a bounded LRU cache
// of built preconditioner chains keyed by a canonical graph hash, build-once
// deduplication for concurrent registrations, and admission control that
// splits a global worker budget across bounded in-flight solves. The
// economics follow the paper directly — chain construction is the expensive,
// near-linear-work step, each subsequent solve is cheap — so the service's
// job is to make one construction serve many right-hand sides, across
// requests and across clients, the way Dhulipala–Blelloch–Shun wrap
// theoretically efficient primitives in reusable serving layers.
package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parlap/internal/chainio"
	"parlap/internal/graph"
	"parlap/internal/obs"
	"parlap/internal/solver"
)

// Config tunes a Server. The zero value is usable: every field has a
// sensible default applied by New.
type Config struct {
	// MaxGraphs bounds the chain cache (LRU eviction beyond it). Default 16.
	MaxGraphs int
	// MaxInflight bounds concurrently executing solves; further requests
	// queue until a slot frees (or their context expires). Default 4.
	MaxInflight int
	// MaxInflightPerGraph caps the solve slots one graph may hold while
	// requests for *other* graphs are waiting — the per-graph sharding that
	// keeps a hot graph from starving the rest. A graph with no competition
	// still gets every slot (fair fallback). Default max(1, MaxInflight/2).
	MaxInflightPerGraph int
	// MaxCacheBytes bounds the total estimated memory retained by cached
	// chains (graph + Laplacian + per-level sparsifier/elimination state +
	// dense bottom factor, per entry). The LRU evicts to both this byte
	// budget and the MaxGraphs count, so a handful of huge chains cannot
	// OOM the server even while the entry count looks harmless.
	// Default 2 GiB.
	MaxCacheBytes int64
	// Workers is the global worker budget split evenly across the
	// MaxInflight solve slots (each admitted solve runs with
	// max(1, Workers/MaxInflight) goroutines). 0 = GOMAXPROCS.
	Workers int
	// DefaultEps is the solve tolerance when a request omits eps.
	// Default 1e-8.
	DefaultEps float64
	// MaxBatch caps the number of right-hand sides accepted in one solve
	// request. Default 64.
	MaxBatch int
	// StreamWindow is the number of ndjson RHS rows a streaming solve
	// gathers into one SolveBatch window. Each window is admitted like a
	// discrete solve request, so a long stream shares the solve slots
	// fairly instead of holding one for its whole duration. Default
	// MaxBatch.
	StreamWindow int
	// MaxStreamRowBytes bounds one ndjson row of a streaming solve.
	// Default graphio.DefaultMaxRowBytes (16 MiB).
	MaxStreamRowBytes int
	// MaxConcurrentBuilds bounds chain constructions running at once —
	// builds are the expensive step and run with the full worker budget, so
	// without a bound a burst of registrations oversubscribes the machine.
	// Further registrations queue. Default 2.
	MaxConcurrentBuilds int
	// MaxGraphVertices / MaxGraphEdges reject oversized registration
	// payloads up front (a build is O(m log m) time and O(m) memory that
	// cannot be cancelled once started). Defaults 2e6 / 16e6.
	MaxGraphVertices int
	MaxGraphEdges    int
	// Chain are the preconditioner-chain construction parameters; the zero
	// value means solver.DefaultChainParams().
	Chain *solver.ChainParams
	// Snapshots, when non-nil, persists built chains as content-addressed
	// snapshot blobs (see internal/chainio): a registration whose chain is
	// missing from the cache first tries to restore it from the store —
	// bit-identical to a fresh build at a fraction of the cost — and falls
	// back to building on any miss or corruption. RestoreAll / SnapshotAll
	// bulk-load and bulk-persist the cache around process restarts.
	Snapshots chainio.BlobStore
	// SnapshotOnBuild writes a snapshot (write-behind, off the registration's
	// critical path) after every successful fresh build. Without it only
	// SnapshotAll — the shutdown pass — persists chains.
	SnapshotOnBuild bool
	// Logger receives the server's structured logs: one line per HTTP
	// request (with the minted request id), chain build/restore events, and
	// write-behind snapshot results. Nil discards them — the library stays
	// silent unless the embedder opts in.
	Logger *slog.Logger
	// NodeID names this server instance in a multi-node deployment. It is
	// surfaced in /healthz so routers, probes, and people can tell shards
	// apart; it has no effect on serving. Empty for single-node use.
	NodeID string
}

// Server owns the graph registry. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	chain solver.ChainParams

	mu         sync.Mutex
	entries    map[string]*entry
	lru        *list.List // front = most recently used; values are *entry
	cacheBytes int64      // Σ entry.bytes of finished cached builds

	admit    *admitter     // per-graph-sharded solve admission
	buildSem chan struct{} // build admission slots
	inflight atomic.Int64

	log *slog.Logger
	met *metrics

	// ridPrefix/ridSeq mint per-request ids (see nextRequestID).
	ridPrefix string
	ridSeq    atomic.Int64

	start        time.Time
	registers    atomic.Int64 // POST /graphs requests accepted
	cacheHits    atomic.Int64 // registrations answered from cache
	evictions    atomic.Int64
	builds       atomic.Int64 // chains built or restored
	buildNanos   atomic.Int64 // cumulative build/restore wall time
	buildWaiting atomic.Int64 // registrations queued for a build slot

	snapWG     sync.WaitGroup // in-flight write-behind snapshot writes
	snapHits   atomic.Int64   // chains restored from the snapshot store
	snapMisses atomic.Int64   // restore attempts that found no usable blob
	snapWrites atomic.Int64   // snapshot blobs written
	snapErrors atomic.Int64   // snapshot encode/decode/IO failures (all fell back safely)
}

// entry is one cached graph + its built solver. The build runs exactly once
// (the first registrar builds; concurrent registrars of the same hash wait
// on built), and the solver is read-only afterwards, so solves need no
// entry-level locking — only lifecycle does: an eviction may not reclaim
// the solver (and its pooled workspaces) while a solve or streaming window
// is executing against it, so users of e.solver pin the entry through
// lookupRef/release and reclamation waits for the last reference.
type entry struct {
	id     string
	source string
	n, m   int
	elem   *list.Element

	built    chan struct{} // closed when the build finished (ok or not)
	solver   *solver.Solver
	buildErr error
	buildDur time.Duration
	levels   int   // chain depth (set once, after build; survives reclaim)
	restored bool  // chain came from a snapshot, not a fresh build
	bytes    int64 // footprint currently charged against cacheBytes (Server.mu)
	refs     int   // active solves/streams/stat reads (Server.mu)
	evicted  bool  // dropped from the cache; reclaim when refs hits 0 (Server.mu)

	hits       atomic.Int64 // re-registrations served from cache
	solves     atomic.Int64 // solve requests served
	rhsServed  atomic.Int64 // right-hand sides solved (batch counts each)
	iterations atomic.Int64 // cumulative outer PCG iterations

	lat     obs.Histogram               // end-to-end solve latency, ns
	rhsLat  obs.Histogram               // per-RHS latency, ns (window time / batch width)
	stageNS [obs.NumStages]atomic.Int64 // cumulative per-stage solve time
}

// New returns a Server with cfg's zero fields defaulted.
func New(cfg Config) *Server {
	if cfg.MaxGraphs <= 0 {
		cfg.MaxGraphs = 16
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxInflightPerGraph <= 0 {
		cfg.MaxInflightPerGraph = cfg.MaxInflight / 2
		if cfg.MaxInflightPerGraph < 1 {
			cfg.MaxInflightPerGraph = 1
		}
	}
	if cfg.MaxCacheBytes <= 0 {
		cfg.MaxCacheBytes = 2 << 30
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultEps <= 0 {
		cfg.DefaultEps = 1e-8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = cfg.MaxBatch
	}
	if cfg.MaxConcurrentBuilds <= 0 {
		cfg.MaxConcurrentBuilds = 2
	}
	if cfg.MaxGraphVertices <= 0 {
		cfg.MaxGraphVertices = 2_000_000
	}
	if cfg.MaxGraphEdges <= 0 {
		cfg.MaxGraphEdges = 16_000_000
	}
	chain := solver.DefaultChainParams()
	if cfg.Chain != nil {
		chain = *cfg.Chain
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	now := time.Now()
	return &Server{
		cfg:       cfg,
		chain:     chain,
		entries:   make(map[string]*entry),
		lru:       list.New(),
		admit:     newAdmitter(cfg.MaxInflight, cfg.MaxInflightPerGraph),
		buildSem:  make(chan struct{}, cfg.MaxConcurrentBuilds),
		log:       logger,
		met:       newMetrics(),
		ridPrefix: fmt.Sprintf("%08x", uint32(now.UnixNano())),
		start:     now,
	}
}

// workersForOccupancy splits the global worker budget by the number of
// solves actually executing (the admitted request included), so a lone
// request on an idle server gets the whole budget while a full house gets
// Workers/MaxInflight each. The split only affects scheduling — results
// are bitwise identical for every workers value — so occupancy-raciness
// is harmless.
func (s *Server) workersForOccupancy(inflight int64) int {
	if inflight < 1 {
		inflight = 1
	}
	w := s.cfg.Workers / int(inflight)
	if w < 1 {
		w = 1
	}
	return w
}

// GraphID returns the canonical cache key of g — graph.CanonicalID, the
// same content address persisted chain snapshots are stored under. Two
// registrations hash equal iff they describe the same weighted multigraph
// (up to edge order and endpoint orientation), so a graph's chain is built
// exactly once no matter how many clients register it or in what form.
func GraphID(g *graph.Graph) string { return graph.CanonicalID(g) }

// TooLargeError rejects oversized registration payloads.
type TooLargeError struct{ msg string }

func (e *TooLargeError) Error() string { return e.msg }

// ErrBuildAborted marks an entry whose registrar left the build queue
// before a build ever started (context expiry). Waiters that inherited the
// entry should treat it as transient: the entry is removed from the cache
// before this error is published, so re-registering retries cleanly.
var ErrBuildAborted = errors.New("service: chain build aborted before it started; re-register to retry")

// Register inserts g into the cache (building its chain if absent) and
// returns the entry. cached reports whether the chain already existed —
// when true the registrar paid nothing but the hash. Builds pass their own
// admission control (MaxConcurrentBuilds); ctx governs time spent queued
// for a build slot (a build cannot be cancelled once started).
func (s *Server) Register(ctx context.Context, g *graph.Graph, source string) (e *entry, cached bool, err error) {
	if g.N > s.cfg.MaxGraphVertices {
		return nil, false, &TooLargeError{fmt.Sprintf("service: graph has %d vertices, limit %d", g.N, s.cfg.MaxGraphVertices)}
	}
	if g.M() > s.cfg.MaxGraphEdges {
		return nil, false, &TooLargeError{fmt.Sprintf("service: graph has %d edges, limit %d", g.M(), s.cfg.MaxGraphEdges)}
	}
	id := GraphID(g)
	s.registers.Add(1)
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		select {
		case <-e.built:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if e.buildErr != nil {
			// Not a hit: the build this registration would have reused
			// never produced a chain.
			return e, true, e.buildErr
		}
		e.hits.Add(1)
		s.cacheHits.Add(1)
		return e, true, nil
	}
	e = &entry{
		id:     id,
		source: source,
		n:      g.N,
		m:      g.M(),
		built:  make(chan struct{}),
	}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.evictLocked(e)
	s.mu.Unlock()

	// First registrar builds (under the build-slot bound); everyone else
	// (register or solve) waits on e.built. Construction is the expensive,
	// latency-insensitive step, so an admitted build gets the whole worker
	// budget rather than a solve slot's share.
	s.buildWaiting.Add(1)
	select {
	case s.buildSem <- struct{}{}:
		s.buildWaiting.Add(-1)
	case <-ctx.Done():
		s.buildWaiting.Add(-1)
		// Remove the entry BEFORE publishing the abort, so concurrent
		// waiters that re-register get a fresh entry (and a fresh build)
		// rather than inheriting this registrar's cancellation.
		e.buildErr = fmt.Errorf("%w (registrar: %v)", ErrBuildAborted, ctx.Err())
		s.removeFailed(e)
		close(e.built)
		return nil, false, e.buildErr
	}
	t0 := time.Now()
	// Restore-on-miss: a persisted snapshot of this exact graph (same
	// content address) reassembles into a chain that solves bit-identically
	// to the one a fresh build would produce, at a fraction of the cost.
	// Any failure — missing blob, corruption, version skew — falls back to
	// building; a snapshot store can make the server faster, never wronger.
	sv, restored := s.tryRestore(id)
	if sv == nil {
		sv, err = solver.NewWithOptions(g, s.chain, solver.Options{Workers: s.cfg.Workers}, nil)
	}
	<-s.buildSem
	e.buildDur = time.Since(t0)
	e.solver, e.buildErr, e.restored = sv, err, restored
	if err == nil {
		s.builds.Add(1)
		s.buildNanos.Add(e.buildDur.Nanoseconds())
	}
	s.log.Info("chain_build",
		"request_id", requestID(ctx),
		"graph", id,
		"n", g.N, "m", g.M(),
		"restored", restored,
		"duration_ms", float64(e.buildDur.Microseconds())/1000,
		"err", err,
	)
	if err != nil {
		// A failed build must not poison the cache key.
		s.removeFailed(e)
	}
	if err == nil {
		// Charge the entry's footprint before publishing it, so eviction
		// never sees a finished entry with unaccounted bytes.
		e.levels = sv.Chain.Depth()
		e.bytes = sv.MemoryBytes()
		s.mu.Lock()
		s.cacheBytes += e.bytes
		s.mu.Unlock()
		if !restored && s.cfg.SnapshotOnBuild && s.cfg.Snapshots != nil {
			// Write-behind: persisting the freshly built chain must not hold
			// up the registration (or the waiters on e.built). The goroutine
			// captures sv directly — the solver is read-only and outlives any
			// later eviction of the entry. The registration's request id rides
			// along so the snapshot log line joins the request's trail.
			rid := requestID(ctx)
			s.snapWG.Add(1)
			go func() {
				defer s.snapWG.Done()
				t0 := time.Now()
				serr := s.snapshotOne(id, sv)
				s.log.Info("snapshot_write_behind",
					"request_id", rid,
					"graph", id,
					"duration_ms", float64(time.Since(t0).Microseconds())/1000,
					"err", serr,
				)
			}()
		}
	}
	close(e.built)
	if err == nil {
		// Finished builds can now be eviction victims; trim any overshoot
		// (count or bytes) the in-flight-build exemption allowed. The
		// freshly built entry is exempt — its registrar is about to return
		// 200 with this id.
		s.mu.Lock()
		s.evictLocked(e)
		s.mu.Unlock()
	}
	return e, false, err
}

// removeFailed drops an entry whose build did not produce a solver.
func (s *Server) removeFailed(e *entry) {
	s.mu.Lock()
	if cur, ok := s.entries[e.id]; ok && cur == e {
		delete(s.entries, e.id)
		s.lru.Remove(e.elem)
	}
	s.mu.Unlock()
}

// evictLocked trims the cache to MaxGraphs entries AND MaxCacheBytes of
// estimated chain memory, evicting only the least recently used *finished*
// entries: evicting an in-flight build (or the exempt entry, whose registrar
// is about to hand out its id) would produce a 200 registration whose id
// immediately 404s and would waste the build. When every excess entry is
// still building the cache overshoots temporarily (bounded by the
// concurrent-registration burst); each build's completion re-trims. A lone
// entry larger than the whole byte budget is kept while it is exempt and
// becomes the first victim of the next trim. Callers hold s.mu.
func (s *Server) evictLocked(exempt *entry) {
	for len(s.entries) > s.cfg.MaxGraphs || s.cacheBytes > s.cfg.MaxCacheBytes {
		var victim *entry
		for el := s.lru.Back(); el != nil; el = el.Prev() {
			cand := el.Value.(*entry)
			if cand == exempt {
				continue
			}
			select {
			case <-cand.built:
				victim = cand
			default:
				continue
			}
			break
		}
		if victim == nil {
			return // only in-flight builds (or the exempt entry) in excess
		}
		delete(s.entries, victim.id)
		s.lru.Remove(victim.elem)
		s.cacheBytes -= victim.bytes
		victim.evicted = true
		if victim.refs == 0 {
			// No active solve/stream/stat read: drop the solver (and its
			// pooled workspaces) now. Otherwise the last release reclaims —
			// evicting out from under an executing solve must never yank its
			// chain or scratch pools away.
			victim.solver = nil
		}
		s.evictions.Add(1)
	}
}

// lookupRef returns the entry for id with a reference held, refreshing its
// LRU position. The reference pins e.solver against reclaim-on-eviction;
// every caller must pair it with release.
func (s *Server) lookupRef(id string) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if ok {
		s.lru.MoveToFront(e.elem)
		e.refs++
	}
	return e, ok
}

// lookupOrRestoreRef is lookupRef with a snapshot-store fallback: a solve
// (or stats read) for a graph this process has never built can still be
// served if a peer — or a previous life of this process — persisted the
// chain. This is what makes failover cheap in a multi-node deployment: the
// replica that inherits a graph after its owner dies warms the chain from
// the shared store on the first solve instead of answering 404 until
// someone re-registers. Restores are bounded by the build semaphore (a
// decode materializes a full chain's memory) and count as builds in the
// telemetry, with source "snapshot". On success the entry is returned with
// one reference held, exactly like lookupRef; the caller must release it.
func (s *Server) lookupOrRestoreRef(ctx context.Context, id string) (*entry, error) {
	if e, ok := s.lookupRef(id); ok {
		return e, nil
	}
	if s.cfg.Snapshots == nil {
		return nil, &NotFoundError{ID: id}
	}
	s.buildWaiting.Add(1)
	select {
	case s.buildSem <- struct{}{}:
		s.buildWaiting.Add(-1)
	case <-ctx.Done():
		s.buildWaiting.Add(-1)
		return nil, ctx.Err()
	}
	t0 := time.Now()
	sv, ok := s.tryRestore(id)
	<-s.buildSem
	if !ok {
		return nil, &NotFoundError{ID: id}
	}
	dur := time.Since(t0)
	s.builds.Add(1)
	s.buildNanos.Add(dur.Nanoseconds())
	e := &entry{
		id:       id,
		source:   "snapshot",
		n:        sv.G.N,
		m:        sv.G.M(),
		built:    make(chan struct{}),
		solver:   sv,
		restored: true,
		levels:   sv.Chain.Depth(),
		buildDur: dur,
		bytes:    sv.MemoryBytes(),
	}
	close(e.built)
	s.mu.Lock()
	if cur, raced := s.entries[id]; raced {
		// A concurrent registration or restore won the insert; drop our
		// decode and use the cache's entry (which may still be building —
		// the caller waits on built as usual).
		s.lru.MoveToFront(cur.elem)
		cur.refs++
		s.mu.Unlock()
		return cur, nil
	}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.cacheBytes += e.bytes
	e.refs++
	s.evictLocked(e)
	s.mu.Unlock()
	s.log.Info("chain_restore_on_demand",
		"request_id", requestID(ctx),
		"graph", id,
		"duration_ms", float64(dur.Microseconds())/1000,
	)
	return e, nil
}

// release drops a lookupRef reference, reclaiming the solver if the entry
// was evicted while the reference was held.
func (s *Server) release(e *entry) {
	s.mu.Lock()
	e.refs--
	if e.evicted && e.refs == 0 {
		e.solver = nil
	}
	s.mu.Unlock()
}

// recharge re-reads the entry's retained-footprint estimate after a solve
// and folds the delta into the cache accounting. Solves grow the pooled
// per-solve workspaces (a high-water charge inside Solver.MemoryBytes), so
// without this the byte budget drifts: growth was charged at build time
// only, and eviction released only the stale build-time figure — a server
// could hold MaxCacheBytes of accounted chains plus unbounded unaccounted
// pool growth. Keeping e.bytes equal to the charge makes eviction's
// release exact, and re-trimming here keeps cache_bytes within budget even
// when the growth itself causes the overshoot.
func (s *Server) recharge(e *entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.evicted || e.solver == nil {
		return
	}
	nb := e.solver.MemoryBytes()
	if nb != e.bytes {
		s.cacheBytes += nb - e.bytes
		e.bytes = nb
		s.evictLocked(nil)
	}
}

// Solve runs the k right-hand sides bs against graph id under admission
// control: the call blocks until a solve slot frees (or ctx expires), then
// solves with the per-slot share of the worker budget. Slots are sharded
// per graph — a graph already holding MaxInflightPerGraph slots queues
// behind waiting requests for other graphs, so one hot graph cannot starve
// the rest, while an uncontended graph still gets the whole budget.
// len(bs) == 1 takes the single-RHS path; larger batches share one
// preconditioner-chain pass per iteration across all columns.
func (s *Server) Solve(ctx context.Context, id string, bs [][]float64, eps float64) ([][]float64, []solver.SolveStats, error) {
	xs, sts, _, err := s.solveTraced(ctx, id, bs, eps)
	return xs, sts, err
}

// solveTraced is Solve plus the per-request stage trace: queue wait,
// workspace acquire, outer PCG, per-level preconditioner stages, and the
// end-to-end total, recorded into the telemetry registry and returned for
// the ?debug=timings surface. Timing never touches the arithmetic.
func (s *Server) solveTraced(ctx context.Context, id string, bs [][]float64, eps float64) ([][]float64, []solver.SolveStats, obs.SolveTrace, error) {
	var tr obs.SolveTrace
	fail := func(err error) ([][]float64, []solver.SolveStats, obs.SolveTrace, error) {
		s.met.solveErrors.Add(1)
		return nil, nil, tr, err
	}
	tStart := time.Now()
	e, err := s.lookupOrRestoreRef(ctx, id)
	if err != nil {
		return fail(err)
	}
	defer s.release(e)
	select {
	case <-e.built:
	case <-ctx.Done():
		return fail(ctx.Err())
	}
	if e.buildErr != nil {
		return fail(e.buildErr)
	}
	if len(bs) == 0 {
		return fail(fmt.Errorf("service: empty right-hand-side batch"))
	}
	if len(bs) > s.cfg.MaxBatch {
		return fail(fmt.Errorf("service: batch of %d exceeds limit %d", len(bs), s.cfg.MaxBatch))
	}
	for i, b := range bs {
		if len(b) != e.n {
			return fail(fmt.Errorf("service: rhs %d has %d entries, graph has %d vertices", i, len(b), e.n))
		}
	}
	if eps <= 0 {
		eps = s.cfg.DefaultEps
	}
	tQueue := time.Now()
	if err := s.admit.Acquire(ctx, e.id); err != nil {
		return fail(err)
	}
	queueNS := time.Since(tQueue).Nanoseconds()
	occupancy := s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.admit.Release(e.id)
	}()
	opt := solver.Options{Workers: s.workersForOccupancy(occupancy)}
	xs, sts := e.solver.SolveBatchTraced(bs, eps, opt, &tr)
	tr.QueueNS = queueNS
	tr.TotalNS = time.Since(tStart).Nanoseconds()
	e.solves.Add(1)
	e.rhsServed.Add(int64(len(bs)))
	for _, st := range sts {
		e.iterations.Add(int64(st.Iterations))
	}
	s.observeSolve(e, &tr, len(bs))
	s.recharge(e)
	return xs, sts, tr, nil
}

// NotFoundError reports an unknown (or evicted) graph id.
type NotFoundError struct{ ID string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("service: unknown graph %q (never registered, or evicted)", e.ID)
}

// GraphStats is the stats document of one cached graph.
type GraphStats struct {
	ID      string  `json:"id"`
	Source  string  `json:"source"`
	N       int     `json:"n"`
	M       int     `json:"m"`
	BuildMS float64 `json:"build_ms"`
	// Restored reports the chain was reassembled from a persisted snapshot
	// (bit-identical to a fresh build) rather than built; BuildMS is then
	// the restore time.
	Restored bool  `json:"restored_from_snapshot"`
	Bytes    int64 `json:"bytes"` // estimated retained chain footprint
	// WorkspaceBytes is the live high-water estimate of pooled per-solve
	// scratch this chain retains between GCs. (Bytes, charged against the
	// cache budget, snapshots Solver.MemoryBytes at build time — before any
	// solve has grown the pools — so the two are reported separately.)
	WorkspaceBytes int64 `json:"workspace_bytes"`
	Levels         int   `json:"levels"`
	EdgeCounts     []int `json:"edge_counts"`
	// Precision is the chain's value-storage knob ("f64" or "f32");
	// F32Levels counts the levels the per-level quality gate actually kept
	// in float32 (the gate falls back level-by-level, so this can be less
	// than Levels even on an f32 chain). ReorderedLevels counts levels
	// carrying a Cuthill–McKee layout. Per-level detail is in Schedule.
	Precision       string `json:"precision"`
	F32Levels       int    `json:"f32_levels"`
	ReorderedLevels int    `json:"reordered_levels"`
	// Schedule is the calibrated per-level κ schedule: measured spectral
	// bounds of the preconditioned operator, measured vs target condition
	// number, and the derived Chebyshev iteration counts — the production
	// observability for κ-schedule behavior.
	Schedule   []solver.LevelSchedule `json:"schedule"`
	CacheHits  int64                  `json:"cache_hits"`
	Solves     int64                  `json:"solves"`
	RHSServed  int64                  `json:"rhs_served"`
	Iterations int64                  `json:"iterations"`
	BottomSolv int64                  `json:"bottom_solves"`
	MaxIter    int                    `json:"max_iter"`
	// Timings summarizes this graph's solve telemetry: latency quantiles
	// from the same histogram /metrics exports, and cumulative per-stage
	// solve time (exclusive attribution — cheb+forward+back+bottom
	// partition the preconditioner time). Omitted until a solve has run.
	Timings *GraphTimings `json:"timings,omitempty"`
}

// StageTotalJSON is one stage's cumulative solve time in the stats document.
type StageTotalJSON struct {
	Stage   string  `json:"stage"`
	TotalMS float64 `json:"total_ms"`
}

// GraphTimings is the per-graph timings block of the stats document. The
// first quantile set is per solve REQUEST (a batch or stream window counts
// once); the RHS* set is per right-hand side — the window's time divided
// evenly across its rows — which is the number to compare against
// single-solve latency when judging what batching buys.
type GraphTimings struct {
	Solves  int64            `json:"solves_observed"`
	MeanMS  float64          `json:"mean_ms"`
	P50MS   float64          `json:"p50_ms"`
	P95MS   float64          `json:"p95_ms"`
	P99MS   float64          `json:"p99_ms"`
	RHS     int64            `json:"rhs_observed"`
	RHSMean float64          `json:"rhs_mean_ms"`
	RHSP50  float64          `json:"rhs_p50_ms"`
	RHSP95  float64          `json:"rhs_p95_ms"`
	RHSP99  float64          `json:"rhs_p99_ms"`
	Stages  []StageTotalJSON `json:"stages"`
}

// Stats returns the stats document for graph id. ctx bounds the wait on an
// in-flight build of that graph.
func (s *Server) Stats(ctx context.Context, id string) (*GraphStats, error) {
	e, err := s.lookupOrRestoreRef(ctx, id)
	if err != nil {
		return nil, err
	}
	defer s.release(e)
	select {
	case <-e.built:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.buildErr != nil {
		return nil, e.buildErr
	}
	st := &GraphStats{
		ID: e.id, Source: e.source, N: e.n, M: e.m,
		BuildMS:         float64(e.buildDur.Microseconds()) / 1000,
		Restored:        e.restored,
		Bytes:           e.bytes,
		WorkspaceBytes:  e.solver.WorkspaceBytes(),
		Levels:          e.solver.Chain.Depth(),
		EdgeCounts:      e.solver.Chain.EdgeCounts(),
		Schedule:        e.solver.Chain.Schedule(),
		Precision:       e.solver.Chain.Params.Precision.String(),
		F32Levels:       e.solver.Chain.F32Levels(),
		ReorderedLevels: e.solver.Chain.ReorderedLevels(),
		CacheHits:       e.hits.Load(),
		Solves:          e.solves.Load(),
		RHSServed:       e.rhsServed.Load(),
		Iterations:      e.iterations.Load(),
		BottomSolv:      e.solver.Chain.BottomSolves(),
		MaxIter:         e.solver.MaxIter,
	}
	if snap := e.lat.Snapshot(); snap.Count > 0 {
		toMS := func(ns int64) float64 { return float64(ns) / 1e6 }
		t := &GraphTimings{
			Solves: snap.Count,
			MeanMS: snap.Mean() / 1e6,
			P50MS:  toMS(snap.Quantile(0.50)),
			P95MS:  toMS(snap.Quantile(0.95)),
			P99MS:  toMS(snap.Quantile(0.99)),
		}
		if rs := e.rhsLat.Snapshot(); rs.Count > 0 {
			t.RHS = rs.Count
			t.RHSMean = rs.Mean() / 1e6
			t.RHSP50 = toMS(rs.Quantile(0.50))
			t.RHSP95 = toMS(rs.Quantile(0.95))
			t.RHSP99 = toMS(rs.Quantile(0.99))
		}
		for _, stage := range obs.Stages() {
			t.Stages = append(t.Stages, StageTotalJSON{
				Stage:   stage.String(),
				TotalMS: toMS(e.stageNS[stage].Load()),
			})
		}
		st.Timings = t
	}
	return st, nil
}

// ServerStats is the service-wide health/stats document.
type ServerStats struct {
	Status string `json:"status"`
	// NodeID is the shard name from Config.NodeID; empty on a single node.
	NodeID string `json:"node_id,omitempty"`
	// SnapshotStore reports whether a snapshot store is configured — in a
	// cluster, whether this node can warm-restore graphs owned by a failed
	// peer instead of rebuilding them.
	SnapshotStore bool `json:"snapshot_store"`
	Graphs        int  `json:"graphs"`
	MaxGraphs     int  `json:"max_graphs"`
	// CacheBytes / MaxCacheBytes are the byte-accounted cache occupancy and
	// budget: the sum of every cached chain's estimated retained footprint,
	// the quantity eviction trims alongside the entry count.
	CacheBytes    int64 `json:"cache_bytes"`
	MaxCacheBytes int64 `json:"max_cache_bytes"`
	Registers     int64 `json:"registers"`
	CacheHits     int64 `json:"cache_hits"`
	Evictions     int64 `json:"evictions"`
	// Snapshot counters (all zero when no snapshot store is configured):
	// hits are chains restored instead of rebuilt (boot-time RestoreAll and
	// registration-time restore-on-miss both count), misses are restore
	// attempts that fell back to a build, writes are blobs persisted, and
	// errors are encode/decode/IO failures — every one of which degraded to
	// a fresh build or a skipped write, never an outage.
	SnapshotHits   int64 `json:"snapshot_hits"`
	SnapshotMisses int64 `json:"snapshot_misses"`
	SnapshotWrites int64 `json:"snapshot_writes"`
	SnapshotErrors int64 `json:"snapshot_errors"`
	Inflight       int64 `json:"inflight"`
	MaxInflight    int   `json:"max_inflight"`
	// MaxInflightPerGraph is the per-graph solve-slot cap applied while
	// other graphs are waiting (the admission sharding).
	MaxInflightPerGraph int `json:"max_inflight_per_graph"`
	Workers             int `json:"workers"`
	// PerSolveW is the per-solve worker share at full occupancy; an
	// admitted solve on a quieter server gets proportionally more.
	PerSolveW int     `json:"workers_per_solve_full"`
	UptimeSec float64 `json:"uptime_sec"`
}

// Health returns the service-wide stats document.
func (s *Server) Health() *ServerStats {
	s.mu.Lock()
	n := len(s.entries)
	bytes := s.cacheBytes
	s.mu.Unlock()
	return &ServerStats{
		Status: "ok", NodeID: s.cfg.NodeID,
		SnapshotStore: s.cfg.Snapshots != nil,
		Graphs:        n, MaxGraphs: s.cfg.MaxGraphs,
		CacheBytes: bytes, MaxCacheBytes: s.cfg.MaxCacheBytes,
		Registers: s.registers.Load(), CacheHits: s.cacheHits.Load(),
		Evictions:           s.evictions.Load(),
		SnapshotHits:        s.snapHits.Load(),
		SnapshotMisses:      s.snapMisses.Load(),
		SnapshotWrites:      s.snapWrites.Load(),
		SnapshotErrors:      s.snapErrors.Load(),
		Inflight:            s.inflight.Load(),
		MaxInflight:         s.cfg.MaxInflight,
		MaxInflightPerGraph: s.cfg.MaxInflightPerGraph,
		Workers:             s.cfg.Workers,
		PerSolveW:           s.workersForOccupancy(int64(s.cfg.MaxInflight)),
		UptimeSec:           time.Since(s.start).Seconds(),
	}
}

// List returns the ids currently cached, most recently used first.
func (s *Server) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).id)
	}
	return out
}

// describeSource trims a payload description for the stats document.
func describeSource(src string) string {
	src = strings.TrimSpace(src)
	if len(src) > 80 {
		src = src[:77] + "..."
	}
	return src
}
