package service

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"parlap/internal/chainio"
	"parlap/internal/gen"
)

// Service-level chain persistence tests: warm restarts restore instead of
// rebuild and solve bit-identically; corrupt snapshots degrade to a fresh
// build, never an outage.

func snapshotStore(t *testing.T) *chainio.DirStore {
	t.Helper()
	ds, err := chainio.NewDirStore(filepath.Join(t.TempDir(), "chains"))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestWarmRestartRestoresBitwise(t *testing.T) {
	ctx := context.Background()
	ds := snapshotStore(t)
	cfg := Config{Workers: 2, Snapshots: ds, SnapshotOnBuild: true}

	// First process lifetime: build, solve, shut down.
	s1 := New(cfg)
	g := gen.Grid2D(10, 10)
	id := GraphID(g)
	if _, cached, err := s1.Register(ctx, g, "t"); err != nil || cached {
		t.Fatalf("register: cached=%v err=%v", cached, err)
	}
	bs := [][]float64{meanFreeRHS(g.N, 5), meanFreeRHS(g.N, 6)}
	xRef, _, err := s1.Solve(ctx, id, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown snapshot pass: %v", err)
	}
	ids, err := ds.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("store holds %v, %v; want [%s]", ids, err, id)
	}

	// Second process lifetime: restore on boot, hit the cache, solve the
	// same right-hand sides bit-identically.
	s2 := New(cfg)
	restored, err := s2.RestoreAll(ctx)
	if err != nil || restored != 1 {
		t.Fatalf("RestoreAll = %d, %v; want 1, nil", restored, err)
	}
	if _, cached, err := s2.Register(ctx, g, "t"); err != nil || !cached {
		t.Fatalf("post-restore register: cached=%v err=%v; want cache hit", cached, err)
	}
	xs, _, err := s2.Solve(ctx, id, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := range xRef {
		for i := range xRef[c] {
			if math.Float64bits(xs[c][i]) != math.Float64bits(xRef[c][i]) {
				t.Fatalf("restored solve differs at col %d entry %d", c, i)
			}
		}
	}
	if h := s2.Health(); h.SnapshotHits < 1 {
		t.Fatalf("snapshot_hits = %d after a boot restore", h.SnapshotHits)
	}
	st, err := s2.Stats(ctx, id)
	if err != nil || !st.Restored {
		t.Fatalf("stats restored_from_snapshot=%v err=%v", st != nil && st.Restored, err)
	}
}

func TestRegisterRestoresOnMiss(t *testing.T) {
	ctx := context.Background()
	ds := snapshotStore(t)
	cfg := Config{Workers: 2, Snapshots: ds, SnapshotOnBuild: true}
	g := gen.Grid2D(7, 9)
	id := GraphID(g)

	s1 := New(cfg)
	if _, _, err := s1.Register(ctx, g, "t"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// No RestoreAll: the registration itself finds the snapshot.
	s2 := New(cfg)
	e, cached, err := s2.Register(ctx, g, "t")
	if err != nil || cached {
		t.Fatalf("register: cached=%v err=%v", cached, err)
	}
	if !e.restored {
		t.Fatal("registration built fresh despite a usable snapshot")
	}
	h := s2.Health()
	if h.SnapshotHits != 1 || h.SnapshotErrors != 0 {
		t.Fatalf("hits=%d errors=%d; want 1, 0", h.SnapshotHits, h.SnapshotErrors)
	}
	if _, _, err := s2.Solve(ctx, id, [][]float64{meanFreeRHS(g.N, 1)}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSnapshotFallsBackToBuild(t *testing.T) {
	ctx := context.Background()
	ds := snapshotStore(t)
	cfg := Config{Workers: 2, Snapshots: ds, SnapshotOnBuild: true}
	g := gen.Grid2D(6, 8)
	id := GraphID(g)

	s1 := New(cfg)
	if _, _, err := s1.Register(ctx, g, "t"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Corrupt the persisted blob in place (truncate + flip a byte).
	data, err := ds.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	mut := data[:len(data)-7]
	mut[len(mut)/2] ^= 0x10
	if err := ds.Put(id, mut); err != nil {
		t.Fatal(err)
	}

	// Boot restore skips the corrupt blob without dying.
	s2 := New(cfg)
	restored, err := s2.RestoreAll(ctx)
	if restored != 0 || err == nil {
		t.Fatalf("RestoreAll = %d, %v; want 0 and a reported skip", restored, err)
	}
	// Registration falls back to a fresh build and re-persists.
	e, cached, err := s2.Register(ctx, g, "t")
	if err != nil || cached {
		t.Fatalf("register after corrupt snapshot: cached=%v err=%v", cached, err)
	}
	if e.restored {
		t.Fatal("corrupt snapshot claimed to restore")
	}
	h := s2.Health()
	if h.SnapshotErrors < 1 || h.SnapshotMisses < 1 {
		t.Fatalf("errors=%d misses=%d; want both >= 1", h.SnapshotErrors, h.SnapshotMisses)
	}
	if _, _, err := s2.Solve(ctx, id, [][]float64{meanFreeRHS(g.N, 2)}, 0); err != nil {
		t.Fatal(err)
	}
	s2.snapWG.Wait() // write-behind of the fresh build
	fixed, err := ds.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if gotID, err := chainio.SnapshotID(fixed); err != nil || gotID != id {
		t.Fatalf("re-persisted blob id = %q, %v", gotID, err)
	}
	if len(fixed) == len(mut) {
		t.Fatal("store still holds the corrupt blob")
	}
}

func TestWrongKeySnapshotRejected(t *testing.T) {
	// A blob filed under the wrong content address (copied/renamed) must not
	// restore as that graph.
	ctx := context.Background()
	ds := snapshotStore(t)
	cfg := Config{Workers: 1, Snapshots: ds, SnapshotOnBuild: true}
	gA, gB := gen.Grid2D(5, 5), gen.Grid2D(4, 7)
	idA, idB := GraphID(gA), GraphID(gB)

	s1 := New(cfg)
	if _, _, err := s1.Register(ctx, gA, "t"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	blobA, err := ds.Get(idA)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put(idB, blobA); err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete(idA); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	e, _, err := s2.Register(ctx, gB, "t")
	if err != nil {
		t.Fatal(err)
	}
	s2.snapWG.Wait() // the fallback build's write-behind must not outlive the test dir
	if e.restored {
		t.Fatal("wrong-key snapshot restored as a different graph")
	}
	if h := s2.Health(); h.SnapshotErrors < 1 {
		t.Fatalf("snapshot_errors = %d; want >= 1", h.SnapshotErrors)
	}
	// The solve must be gB's, not gA's: dimensions differ, so a successful
	// solve of a gB-sized RHS proves the fallback built the right chain.
	if _, _, err := s2.Solve(ctx, idB, [][]float64{meanFreeRHS(gB.N, 3)}, 0); err != nil {
		t.Fatal(err)
	}
}
