package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"parlap/internal/gen"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, req, resp any) int {
	t.Helper()
	var body bytes.Buffer
	if req != nil {
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	hr, err := http.NewRequest(method, url, &body)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	r, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r.StatusCode
}

func meanFreeRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	mean := 0.0
	for i := range b {
		b[i] = rng.NormFloat64()
		mean += b[i]
	}
	mean /= float64(n)
	for i := range b {
		b[i] -= mean
	}
	return b
}

func TestRegisterBuildsOnceAndCountsHits(t *testing.T) {
	ts := testServer(t, Config{})
	var first, second RegisterResponse
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &first); code != 200 {
		t.Fatalf("register: status %d", code)
	}
	if first.Cached {
		t.Fatal("first registration reported cached")
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &second); code != 200 {
		t.Fatalf("re-register: status %d", code)
	}
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("second registration not served from cache: %+v vs %+v", second, first)
	}
	var st GraphStats
	if code := doJSON(t, "GET", fmt.Sprintf("%s/graphs/%s/stats", ts.URL, first.ID), nil, &st); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if st.CacheHits != 1 {
		t.Fatalf("stats report %d cache hits, want 1", st.CacheHits)
	}
}

// TestRegisterCanonicalHash: the same multigraph in different clothing —
// edge order permuted, endpoints flipped — must land on one cache entry.
func TestRegisterCanonicalHash(t *testing.T) {
	ts := testServer(t, Config{})
	var a, b RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{EdgeList: "0 1 1\n1 2 2\n2 3 1.5"}, &a)
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{EdgeList: "3 2 1.5\n2 1 2\n1 0 1"}, &b)
	if a.ID != b.ID || !b.Cached {
		t.Fatalf("reordered/flipped edge list missed the cache: %+v vs %+v", a, b)
	}
}

func TestSolveSingleAndBatchBitwise(t *testing.T) {
	ts := testServer(t, Config{})
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:16x16"}, &reg)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)

	const k = 3
	bs := make([][]float64, k)
	singles := make([][]float64, k)
	for c := range bs {
		bs[c] = meanFreeRHS(reg.N, int64(50+c))
		var resp SolveResponse
		if code := doJSON(t, "POST", solveURL, SolveRequest{B: bs[c], Eps: 1e-7}, &resp); code != 200 {
			t.Fatalf("solve %d: status %d", c, code)
		}
		if resp.Stats == nil || !resp.Stats.Converged {
			t.Fatalf("solve %d did not converge: %+v", c, resp.Stats)
		}
		if resp.Stats.Residual > 1e-6 {
			t.Fatalf("solve %d residual %g too large", c, resp.Stats.Residual)
		}
		singles[c] = resp.X
	}
	var batch SolveResponse
	if code := doJSON(t, "POST", solveURL, SolveRequest{Batch: bs, Eps: 1e-7}, &batch); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Xs) != k {
		t.Fatalf("batch returned %d columns, want %d", len(batch.Xs), k)
	}
	for c := range batch.Xs {
		if len(batch.Xs[c]) != len(singles[c]) {
			t.Fatalf("column %d: length mismatch", c)
		}
		for i := range batch.Xs[c] {
			if batch.Xs[c][i] != singles[c][i] {
				t.Fatalf("column %d entry %d: batch %g != single %g", c, i, batch.Xs[c][i], singles[c][i])
			}
		}
	}
	var st GraphStats
	doJSON(t, "GET", fmt.Sprintf("%s/graphs/%s/stats", ts.URL, reg.ID), nil, &st)
	if st.Solves != k+1 || st.RHSServed != 2*k {
		t.Fatalf("stats solves=%d rhs=%d, want %d and %d", st.Solves, st.RHSServed, k+1, 2*k)
	}
}

// TestConcurrentHTTPSolves: many clients hammering one cached chain must
// produce exactly the answers sequential requests produce. Run under -race
// this is the serving-layer race check of the acceptance criteria.
func TestConcurrentHTTPSolves(t *testing.T) {
	ts := testServer(t, Config{MaxInflight: 4, Workers: 4})
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:14x14"}, &reg)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)

	const clients = 10
	bs := make([][]float64, clients)
	refs := make([][]float64, clients)
	for c := range bs {
		bs[c] = meanFreeRHS(reg.N, int64(70+c))
		var resp SolveResponse
		if code := doJSON(t, "POST", solveURL, SolveRequest{B: bs[c]}, &resp); code != 200 {
			t.Fatalf("reference solve %d: status %d", c, code)
		}
		refs[c] = resp.X
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var resp SolveResponse
			if code := doJSON(t, "POST", solveURL, SolveRequest{B: bs[c]}, &resp); code != 200 {
				errs[c] = fmt.Errorf("status %d", code)
				return
			}
			for i := range resp.X {
				if resp.X[i] != refs[c][i] {
					errs[c] = fmt.Errorf("entry %d: concurrent %g != sequential %g", i, resp.X[i], refs[c][i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	ts := testServer(t, Config{MaxGraphs: 2})
	ids := make([]string, 3)
	for i, spec := range []string{"grid2d:8x8", "grid2d:9x9", "grid2d:10x10"} {
		var reg RegisterResponse
		if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: spec}, &reg); code != 200 {
			t.Fatalf("register %s: status %d", spec, code)
		}
		ids[i] = reg.ID
	}
	// The first graph is the LRU victim; its id must now 404.
	b := meanFreeRHS(64, 1)
	code := doJSON(t, "POST", fmt.Sprintf("%s/graphs/%s/solve", ts.URL, ids[0]), SolveRequest{B: b}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("evicted graph answered with status %d, want 404", code)
	}
	// The survivors still solve.
	b = meanFreeRHS(100, 2)
	var resp SolveResponse
	if code := doJSON(t, "POST", fmt.Sprintf("%s/graphs/%s/solve", ts.URL, ids[2]), SolveRequest{B: b}, &resp); code != 200 {
		t.Fatalf("cached graph: status %d", code)
	}
	var health ServerStats
	doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
	if health.Graphs != 2 || health.Evictions != 1 {
		t.Fatalf("health reports %d graphs / %d evictions, want 2 / 1", health.Graphs, health.Evictions)
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t, Config{MaxBatch: 2})
	// Unknown id.
	if code := doJSON(t, "POST", ts.URL+"/graphs/gdeadbeef/solve", SolveRequest{B: []float64{1}}, nil); code != 404 {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	// Bad spec.
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "nosuch:1"}, nil); code != 400 {
		t.Fatalf("bad spec: status %d, want 400", code)
	}
	// Both payload kinds at once.
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "path:5", EdgeList: "0 1"}, nil); code != 400 {
		t.Fatalf("ambiguous payload: status %d, want 400", code)
	}
	var reg RegisterResponse
	doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "path:16"}, &reg)
	solveURL := fmt.Sprintf("%s/graphs/%s/solve", ts.URL, reg.ID)
	// Wrong RHS length.
	if code := doJSON(t, "POST", solveURL, SolveRequest{B: []float64{1, 2}}, nil); code != 400 {
		t.Fatalf("wrong rhs length: status %d, want 400", code)
	}
	// Batch over the limit.
	big := [][]float64{meanFreeRHS(16, 1), meanFreeRHS(16, 2), meanFreeRHS(16, 3)}
	if code := doJSON(t, "POST", solveURL, SolveRequest{Batch: big}, nil); code != 400 {
		t.Fatalf("oversized batch: status %d, want 400", code)
	}
	// Neither b nor batch.
	if code := doJSON(t, "POST", solveURL, SolveRequest{}, nil); code != 400 {
		t.Fatalf("empty solve request: status %d, want 400", code)
	}
}

// TestOversizedGraphRejected: registration payloads beyond the configured
// size caps are refused before any build work starts.
func TestOversizedGraphRejected(t *testing.T) {
	ts := testServer(t, Config{MaxGraphVertices: 100})
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:20x20"}, nil); code != 400 {
		t.Fatalf("oversized graph: status %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/graphs", RegisterRequest{Spec: "grid2d:8x8"}, nil); code != 200 {
		t.Fatalf("within-cap graph: status %d, want 200", code)
	}
}

// TestGraphIDCanonicalization exercises the hash directly.
func TestGraphIDCanonicalization(t *testing.T) {
	a := gen.Grid2D(5, 5)
	b := gen.Grid2D(5, 5)
	if GraphID(a) != GraphID(b) {
		t.Fatal("identical graphs hash differently")
	}
	c := gen.Grid2D(5, 6)
	if GraphID(a) == GraphID(c) {
		t.Fatal("different graphs collide")
	}
}
